bench/fig10.ml: L List Parad_opt Util
