bench/fig11.ml: L List Option Printf Util
