bench/fig8.ml: L List Util
