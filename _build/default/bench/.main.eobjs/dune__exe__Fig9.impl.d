bench/fig9.ml: L List MB Parad_opt Util
