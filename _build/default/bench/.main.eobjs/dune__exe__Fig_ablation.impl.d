bench/fig_ablation.ml: Func Instr L MB Parad_core Parad_ir Parad_opt Parad_runtime Printf Prog Util
