bench/fig_overhead.ml: L MB Parad_opt Printf Util
