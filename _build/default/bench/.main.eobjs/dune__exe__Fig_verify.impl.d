bench/fig_verify.ml: Array Exec Float GC L List MB Parad_core Parad_runtime Printf TC Util Value
