bench/main.mli:
