bench/util.ml: Apps_lulesh Apps_minibude Array List Parad_verify Printf String
