(* Figure 10: OpenMP weak scaling on LULESH — fixed per-thread block,
   OpenMP vs OpenMP+OpenMPOpt, forward and gradient. *)

open Util
module Pipe = Parad_opt.Pipeline

let run ~quick =
  header "Figure 10 — LULESH OpenMP weak scaling (fixed block per thread)";
  let threads = if quick then [ 1; 4; 16; 64 ] else [ 1; 2; 4; 8; 16; 32; 64 ] in
  let inp w =
    {
      L.nx = (if quick then 3 else 4);
      ny = (if quick then 3 else 4);
      nz = max 1 w;
      niter = 2;
      dt0 = 0.01;
      escale = 1.0;
    }
  in
  let fwd ?(pre = []) w = (L.run ~nthreads:w ~pre L.Omp (inp w)).L.makespan in
  let grad ?(pre = []) w =
    (L.gradient ~nthreads:w ~pre L.Omp (inp w)).L.g_makespan
  in
  cols "threads" threads;
  let rows =
    [
      "OMP forward", List.map fwd threads;
      "OMP gradient", List.map grad threads;
      "OMP+Opt forward", List.map (fwd ~pre:Pipe.o2_openmp) threads;
      "OMP+Opt gradient", List.map (grad ~pre:Pipe.o2_openmp) threads;
    ]
  in
  List.iter (fun (n, ts) -> row_of_floats n ts) rows;
  subheader "weak-scaling efficiency (T1 / TN)";
  cols "threads" threads;
  List.iter
    (fun (n, ts) -> row_of_floats n (List.map (fun t -> List.hd ts /. t) ts))
    rows
