(* Figure 11: hybrid MPI x OpenMP scaling of LULESH — forward and
   gradient across a (ranks, threads) grid. *)

open Util

let run ~quick =
  header "Figure 11 — LULESH hybrid MPI x OpenMP";
  let grid =
    if quick then [ 1, 1; 2, 2; 4, 4 ]
    else [ 1, 1; 1, 8; 2, 4; 4, 2; 8, 1; 2, 8; 4, 4; 8, 8 ]
  in
  let inp =
    { L.nx = 4; ny = 4; nz = 16; niter = 2; dt0 = 0.01; escale = 1.0 }
  in
  Printf.printf "%-14s %12s %12s %10s %10s\n" "ranks x thr" "forward"
    "gradient" "overhead" "speedup";
  let t11 = ref None in
  List.iter
    (fun (r, w) ->
      let fwd = (L.run ~nranks:r ~nthreads:w L.Hybrid inp).L.makespan in
      let grad =
        (L.gradient ~nranks:r ~nthreads:w L.Hybrid inp).L.g_makespan
      in
      (if !t11 = None then t11 := Some fwd);
      Printf.printf "%-14s %12.3g %12.3g %10.2f %10.2f\n"
        (Printf.sprintf "%d x %d" r w)
        fwd grad (grad /. fwd)
        (Option.get !t11 /. fwd))
    grid
