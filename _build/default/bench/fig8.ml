(* Figure 8: LULESH under MPI — runtime (top), strong scaling (middle),
   weak scaling (bottom) for Enzyme C++ MPI, Enzyme Julia MPI, Enzyme
   RAJA MPI and the CoDiPack (tape) C++ MPI baseline.

   Substitution note (DESIGN.md): the paper's cube decompositions
   {1,8,27,64} become slab decompositions over power-of-two rank counts;
   the dual-socket NUMA falloff past half the machine is preserved. *)

open Util

let ranks_of quick = if quick then [ 1; 4; 16; 64 ] else [ 1; 2; 8; 16; 32; 64 ]

let run ~quick =
  header "Figure 8 — LULESH MPI: runtime, strong scaling, weak scaling";
  let ranks = ranks_of quick in
  let nz = 64 in
  let base =
    {
      L.nx = (if quick then 2 else 4);
      ny = (if quick then 2 else 4);
      nz;
      niter = 2;
      dt0 = 0.01;
      escale = 1.0;
    }
  in
  let fwd flavor n = (L.run ~nranks:n flavor base).L.makespan in
  let grad flavor n = (L.gradient ~nranks:n flavor base).L.g_makespan in
  let series name f = name, List.map f ranks in
  let table =
    [
      series "C++ MPI forward" (fwd L.Mpi);
      series "C++ MPI gradient" (grad L.Mpi);
      series "Julia MPI forward" (fwd L.Jlmpi);
      series "Julia MPI gradient" (grad L.Jlmpi);
      series "RAJA MPI forward" (fwd L.RajaMpi);
      series "RAJA MPI gradient" (grad L.RajaMpi);
      series "CoDiPack MPI gradient" (fun n -> lulesh_tape_gradient base ~nranks:n);
    ]
  in
  subheader "top row: runtime (virtual cycles) vs ranks";
  cols "ranks" ranks;
  List.iter (fun (n, ts) -> row_of_floats n ts) table;
  subheader "middle row: strong-scaling speedup (T1 / TN)";
  cols "ranks" ranks;
  List.iter (fun (n, ts) -> row_of_floats n (speedups ts)) table;
  subheader "gradient/forward overhead vs ranks";
  cols "ranks" ranks;
  let over fwd_n grad_n = List.map2 (fun a b -> b /. a) fwd_n grad_n in
  let t n = List.assoc n (List.map (fun (a, b) -> a, b) table) in
  row_of_floats "C++ (Enzyme)" (over (t "C++ MPI forward") (t "C++ MPI gradient"));
  row_of_floats "Julia (Enzyme)" (over (t "Julia MPI forward") (t "Julia MPI gradient"));
  row_of_floats "C++ (CoDiPack)" (over (t "C++ MPI forward") (t "CoDiPack MPI gradient"));
  (* bottom row: weak scaling — fixed per-rank block *)
  subheader "bottom row: weak scaling efficiency (T1 / TN, fixed work per rank)";
  let block = if quick then 2 else 4 in
  let weak flavor isgrad n =
    let inp = { base with L.nz = block * n } in
    if isgrad then (L.gradient ~nranks:n flavor inp).L.g_makespan
    else (L.run ~nranks:n flavor inp).L.makespan
  in
  cols "ranks" ranks;
  List.iter
    (fun (name, flavor, isgrad) ->
      let ts = List.map (weak flavor isgrad) ranks in
      row_of_floats name (List.map (fun t -> List.hd ts /. t) ts))
    [
      "C++ MPI forward", L.Mpi, false;
      "C++ MPI gradient", L.Mpi, true;
      "Julia MPI gradient", L.Jlmpi, true;
      "RAJA MPI gradient", L.RajaMpi, true;
    ]
