(* Figure 9: thread-parallel strong scaling. Top: LULESH with OpenMP,
   OpenMP+OpenMPOpt, RAJA. Bottom: miniBUDE with OpenMP, OpenMP+OpenMPOpt,
   Julia tasks. The OpenMPOpt configurations run the parallel-region
   load-hoisting pipeline before differentiation. *)

open Util
module Pipe = Parad_opt.Pipeline

let threads_of quick = if quick then [ 1; 4; 16; 64 ] else [ 1; 2; 4; 8; 16; 32; 64 ]

let run ~quick =
  header "Figure 9 — thread strong scaling (LULESH top, miniBUDE bottom)";
  let threads = threads_of quick in
  (* LULESH *)
  let inp =
    {
      L.nx = (if quick then 3 else 4);
      ny = (if quick then 3 else 4);
      nz = 8;
      niter = 2;
      dt0 = 0.01;
      escale = 1.0;
    }
  in
  let fwd ?(pre = []) flavor w = (L.run ~nthreads:w ~pre flavor inp).L.makespan in
  let grad ?(pre = []) flavor w =
    (L.gradient ~nthreads:w ~pre flavor inp).L.g_makespan
  in
  subheader "LULESH: runtime vs threads";
  cols "threads" threads;
  let rows =
    [
      "OMP forward", List.map (fwd L.Omp) threads;
      "OMP gradient", List.map (grad L.Omp) threads;
      ( "OMP+OpenMPOpt fwd",
        List.map (fwd ~pre:Pipe.o2_openmp L.Omp) threads );
      ( "OMP+OpenMPOpt grad",
        List.map (grad ~pre:Pipe.o2_openmp L.Omp) threads );
      "RAJA forward", List.map (fwd L.Raja_) threads;
      "RAJA gradient", List.map (grad L.Raja_) threads;
    ]
  in
  List.iter (fun (n, ts) -> row_of_floats n ts) rows;
  subheader "LULESH: speedup and overhead";
  cols "threads" threads;
  List.iter (fun (n, ts) -> row_of_floats (n ^ " speedup") (speedups ts)) rows;
  let over a b = List.map2 (fun x y -> y /. x) (List.assoc a rows) (List.assoc b rows) in
  row_of_floats "OMP overhead" (over "OMP forward" "OMP gradient");
  row_of_floats "OMP+Opt overhead"
    (over "OMP+OpenMPOpt fwd" "OMP+OpenMPOpt grad");
  row_of_floats "RAJA overhead" (over "RAJA forward" "RAJA gradient");
  (* miniBUDE *)
  let deck =
    MB.deck
      ~nposes:(if quick then 32 else 64)
      ~natlig:(if quick then 6 else 8)
      ~natpro:(if quick then 8 else 10)
  in
  let bfwd ?(pre = []) v w = (MB.run ~nthreads:w ~pre v deck).MB.makespan in
  let bgrad ?(pre = []) v w =
    (MB.gradient ~nthreads:w ~pre v deck).MB.g_makespan
  in
  subheader "miniBUDE: runtime vs threads";
  cols "threads" threads;
  let rows =
    [
      "OMP forward", List.map (bfwd MB.Omp) threads;
      "OMP gradient", List.map (bgrad MB.Omp) threads;
      ( "OMP+OpenMPOpt fwd",
        List.map (bfwd ~pre:Pipe.o2_openmp MB.Omp) threads );
      ( "OMP+OpenMPOpt grad",
        List.map (bgrad ~pre:Pipe.o2_openmp MB.Omp) threads );
      ( "Julia forward",
        List.map (bfwd ~pre:Pipe.o2 MB.Julia) threads );
      ( "Julia gradient",
        List.map (bgrad ~pre:Pipe.o2 MB.Julia) threads );
    ]
  in
  List.iter (fun (n, ts) -> row_of_floats n ts) rows;
  subheader "miniBUDE: overhead vs threads";
  cols "threads" threads;
  let over a b = List.map2 (fun x y -> y /. x) (List.assoc a rows) (List.assoc b rows) in
  row_of_floats "OMP overhead" (over "OMP forward" "OMP gradient");
  row_of_floats "OMP+Opt overhead"
    (over "OMP+OpenMPOpt fwd" "OMP+OpenMPOpt grad");
  row_of_floats "Julia overhead" (over "Julia forward" "Julia gradient")
