(* Table 1 analog — the abstract's headline: differentiation overhead at
   64 threads / 64 ranks for every language x framework combination. *)

open Util
module Pipe = Parad_opt.Pipeline

let run ~quick =
  header "Overhead summary at 64 threads/ranks (abstract / Table 1 analog)";
  let n = if quick then 32 else 64 in
  Printf.printf "%-28s %12s %12s %10s\n" "configuration" "forward" "gradient"
    "overhead";
  let line name fwd grad =
    Printf.printf "%-28s %12.3g %12.3g %10.2f\n" name fwd grad (grad /. fwd)
  in
  (* LULESH *)
  let inp =
    { L.nx = 4; ny = 4; nz = 64; niter = 2; dt0 = 0.01; escale = 1.0 }
  in
  let l name ?(pre = []) ?(nranks = 1) ?(nthreads = 1) flavor =
    let f = (L.run ~nranks ~nthreads ~pre flavor inp).L.makespan in
    let g = (L.gradient ~nranks ~nthreads ~pre flavor inp).L.g_makespan in
    line name f g
  in
  l "LULESH C++ OMP" ~nthreads:n L.Omp;
  l "LULESH C++ OMP+Opt" ~pre:Pipe.o2_openmp ~nthreads:n L.Omp;
  l "LULESH C++ RAJA" ~nthreads:n L.Raja_;
  l "LULESH C++ MPI" ~nranks:n L.Mpi;
  l "LULESH Julia MPI.jl" ~nranks:n L.Jlmpi;
  l "LULESH hybrid 8x8" ~nranks:8 ~nthreads:8 L.Hybrid;
  (let f = (L.run ~nranks:n L.Mpi inp).L.makespan in
   let g = lulesh_tape_gradient inp ~nranks:n in
   line "LULESH CoDiPack MPI" f g);
  (* miniBUDE *)
  let deck = MB.deck ~nposes:n ~natlig:8 ~natpro:10 in
  let m name ?(pre = []) variant =
    let f = (MB.run ~nthreads:n ~pre variant deck).MB.makespan in
    let g = (MB.gradient ~nthreads:n ~pre variant deck).MB.g_makespan in
    line name f g
  in
  m "miniBUDE C++ OMP" MB.Omp;
  m "miniBUDE C++ OMP+Opt" ~pre:Pipe.o2_openmp MB.Omp;
  m "miniBUDE Julia tasks" MB.Julia
