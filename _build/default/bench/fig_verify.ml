(* §VII gradient verification table — the "fast mode" projection computed
   by reverse mode (Enzyme analog), the tape baseline (CoDiPack analog),
   and finite differences, on both applications. *)

open Util

let run ~quick:_ =
  header "Gradient verification (the paper's 'fast mode' projection check)";
  Printf.printf "%-26s %14s %14s %14s %14s %9s\n" "program" "reverse" "forward"
    "tape" "fd" "max rel";
  (* miniBUDE: directional derivative d/dh of sum(energies) with all
     ligand inputs perturbed together *)
  let deck = MB.deck ~nposes:6 ~natlig:4 ~natpro:5 in
  let sum = Array.fold_left ( +. ) 0.0 in
  let mb_enzyme =
    let g = MB.gradient MB.Seq deck in
    sum g.MB.d_lig +. sum g.MB.d_pro +. sum g.MB.d_poses
  in
  let mb_tape =
    let prog = MB.program () in
    let args =
      [
        GC.AHidden deck.MB.lig_data;
        GC.AHidden deck.MB.pro_data;
        GC.AHidden deck.MB.pose_data;
        GC.ATable [ 0; 1; 2 ];
        GC.ABuf (Array.make deck.MB.nposes 0.0);
        GC.AInt deck.MB.natlig;
        GC.AInt deck.MB.natpro;
        GC.AInt deck.MB.nposes;
      ]
    in
    let seeds =
      [
        Array.make (Array.length deck.MB.lig_data) 0.0;
        Array.make (Array.length deck.MB.pro_data) 0.0;
        Array.make (Array.length deck.MB.pose_data) 0.0;
        Array.make deck.MB.nposes 1.0;
      ]
    in
    let g, _ = TC.reverse prog "bude_seq" args ~seeds in
    match g.GC.d_bufs with
    | [ l; p; q; _ ] -> sum l +. sum p +. sum q
    | _ -> nan
  in
  let mb_fd =
    let h = 1e-6 in
    let loss d =
      let perturb a = Array.map (fun x -> x +. d) a in
      let inp =
        {
          deck with
          MB.lig_data = perturb deck.MB.lig_data;
          pro_data = perturb deck.MB.pro_data;
          pose_data = perturb deck.MB.pose_data;
        }
      in
      sum (MB.run MB.Seq inp).MB.energies
    in
    (loss h -. loss (-.h)) /. (2.0 *. h)
  in
  (* forward mode: one tangent run with all-ones input direction gives
     the same projection *)
  let mb_forward =
    let prog = MB.program () in
    let tprog, tname = Parad_core.Forward.tangent prog "bude_seq" in
    let open Parad_runtime in
    let tout = ref Value.VUnit in
    ignore
      (Exec.run tprog ~fname:tname ~setup:(fun ctx ->
           let ones a = Array.map (fun _ -> 1.0) a in
           let lig = Exec.floats ctx deck.MB.lig_data in
           let pro = Exec.floats ctx deck.MB.pro_data in
           let poses = Exec.floats ctx deck.MB.pose_data in
           let d = Exec.ptr_table ctx [ lig; pro; poses ] in
           let e = Exec.zeros ctx deck.MB.nposes in
           let tlig = Exec.floats ctx (ones deck.MB.lig_data) in
           let tpro = Exec.floats ctx (ones deck.MB.pro_data) in
           let tposes = Exec.floats ctx (ones deck.MB.pose_data) in
           let td = Exec.ptr_table ctx [ tlig; tpro; tposes ] in
           let te = Exec.zeros ctx deck.MB.nposes in
           tout := te;
           [
             d; e;
             Value.VInt deck.MB.natlig;
             Value.VInt deck.MB.natpro;
             Value.VInt deck.MB.nposes;
             td; te;
           ]));
    Array.fold_left ( +. ) 0.0 (Exec.to_floats !tout)
  in
  let rel a b = Float.abs (a -. b) /. Float.max 1.0 (Float.abs a) in
  Printf.printf "%-26s %14.6g %14.6g %14.6g %14.6g %9.2e\n"
    "miniBUDE (all inputs)" mb_enzyme mb_forward mb_tape mb_fd
    (List.fold_left Float.max 0.0
       [ rel mb_enzyme mb_tape; rel mb_enzyme mb_fd; rel mb_enzyme mb_forward ]);
  (* LULESH: energy-scaling direction *)
  let tiny = { L.nx = 2; ny = 2; nz = 4; niter = 3; dt0 = 0.01; escale = 1.0 } in
  let m = L.mesh tiny ~nranks:1 ~rank:0 in
  let dir (d_e : float array) =
    Array.fold_left ( +. ) 0.0
      (Array.mapi (fun k ek -> ek *. d_e.(k)) m.L.energy)
  in
  let lu_enzyme = dir (L.gradient L.Seq tiny).L.d_energy.(0) in
  let lu_tape =
    let g, _ =
      TC.reverse_spmd (L.program L.Mpi) "lulesh_mpi" ~nranks:1
        ~args:(fun ~rank -> lulesh_args tiny ~nranks:1 ~rank)
        ~seeds:(fun ~rank -> lulesh_zero_seeds tiny ~nranks:1 ~rank)
        ~d_ret:(fun ~rank:_ -> 1.0)
    in
    dir (List.nth g.GC.s_d_bufs.(0) 6)
  in
  let lu_fd =
    let h = 1e-6 in
    let loss s = (L.run L.Seq { tiny with L.escale = s }).L.total_energy in
    (loss (1.0 +. h) -. loss (1.0 -. h)) /. (2.0 *. h)
  in
  Printf.printf "%-26s %14.6g %14s %14.6g %14.6g %9.2e\n"
    "LULESH (energy direction)" lu_enzyme "(req arrays)" lu_tape lu_fd
    (Float.max (rel lu_enzyme lu_tape) (rel lu_enzyme lu_fd))
