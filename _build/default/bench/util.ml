(* Table formatting and shared measurement helpers for the figure
   drivers. All times are virtual cycles from the simulator (see
   DESIGN.md); "overhead" is gradient/forward, the paper's metric. *)

let header title =
  Printf.printf "\n=== %s ===\n" title

let subheader t = Printf.printf "--- %s ---\n" t

let row_of_floats name xs =
  Printf.printf "%-24s %s\n" name
    (String.concat " "
       (List.map (fun x -> Printf.sprintf "%12.3g" x) xs))

let row_of_strings name xs =
  Printf.printf "%-24s %s\n" name
    (String.concat " " (List.map (Printf.sprintf "%12s") xs))

let cols name xs =
  row_of_strings name (List.map string_of_int xs)

(* speedup series: t(first) / t(n) *)
let speedups ts =
  match ts with
  | [] -> []
  | t1 :: _ -> List.map (fun t -> t1 /. t) ts

module L = Apps_lulesh.Lulesh
module MB = Apps_minibude.Minibude
module GC = Parad_verify.Grad_check
module TC = Parad_verify.Tape_check

(* argument list for driving LULESH through the generic (tape) harness *)
let lulesh_args (inp : L.input) ~nranks ~rank =
  let m = L.mesh inp ~nranks ~rank in
  [
    GC.ABuf m.L.coords.(0);
    GC.ABuf m.L.coords.(1);
    GC.ABuf m.L.coords.(2);
    GC.ABuf m.L.vels.(0);
    GC.ABuf m.L.vels.(1);
    GC.ABuf m.L.vels.(2);
    GC.ABuf m.L.energy;
    GC.AIntBuf m.L.conn;
    GC.ABuf m.L.node_mass;
    GC.AInt inp.L.nx;
    GC.AInt inp.L.ny;
    GC.AInt m.L.nzl;
    GC.AInt inp.L.niter;
    GC.AScalar inp.L.dt0;
  ]

let lulesh_zero_seeds (inp : L.input) ~nranks ~rank =
  let m = L.mesh inp ~nranks ~rank in
  let nn = Array.length m.L.node_mass in
  let ne = Array.length m.L.energy in
  List.map (fun len -> Array.make len 0.0) [ nn; nn; nn; nn; nn; nn; ne; nn ]

(* the CoDiPack-analog gradient of LULESH-MPI in virtual time *)
let lulesh_tape_gradient (inp : L.input) ~nranks =
  let prog = L.program L.Mpi in
  let g, _ =
    TC.reverse_spmd prog "lulesh_mpi" ~nranks
      ~args:(fun ~rank -> lulesh_args inp ~nranks ~rank)
      ~seeds:(fun ~rank -> lulesh_zero_seeds inp ~nranks ~rank)
      ~d_ret:(fun ~rank -> if rank = 0 then 1.0 else 0.0)
  in
  g.GC.s_makespan
