examples/docking_opt.ml: Apps_minibude Array Printf
