examples/docking_opt.mli:
