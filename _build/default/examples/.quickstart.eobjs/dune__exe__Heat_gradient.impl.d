examples/heat_gradient.ml: Array Builder Func Interp List Parad_ir Parad_runtime Parad_verify Printf Prog Ty
