examples/heat_gradient.mli:
