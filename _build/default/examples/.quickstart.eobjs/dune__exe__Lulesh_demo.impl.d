examples/lulesh_demo.ml: Apps_lulesh Array List Printf
