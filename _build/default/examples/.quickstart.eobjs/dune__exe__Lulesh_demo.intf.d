examples/lulesh_demo.mli:
