examples/mpi_dot.ml: Array Builder Func List Parad_ir Parad_verify Printf Prog String Ty
