examples/mpi_dot.mli:
