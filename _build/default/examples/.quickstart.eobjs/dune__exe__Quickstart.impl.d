examples/quickstart.ml: Array Builder Parad_core Parad_ir Parad_verify Printer Printf Prog Ty
