examples/quickstart.mli:
