(* Using the miniBUDE gradient for what docking engines actually do:
   gradient-descend a pose to lower its binding energy, differentiating
   through the OpenMP-parallel kernel. `dune exec examples/docking_opt.exe` *)

module MB = Apps_minibude.Minibude

let () =
  let deck = MB.deck ~nposes:1 ~natlig:6 ~natpro:10 in
  let pose = Array.copy deck.MB.pose_data in
  let energy p =
    (MB.run ~nthreads:4 MB.Omp { deck with MB.pose_data = p }).MB.energies.(0)
  in
  Printf.printf "initial pose energy: %+.6f\n" (energy pose);
  let lr = 0.05 in
  for it = 1 to 20 do
    let g =
      MB.gradient ~nthreads:4 MB.Omp { deck with MB.pose_data = pose }
    in
    Array.iteri
      (fun i d -> pose.(i) <- pose.(i) -. (lr *. d))
      g.MB.d_poses;
    if it mod 5 = 0 then
      Printf.printf "  step %2d: energy %+.6f\n" it (energy pose)
  done;
  Printf.printf "final pose energy:   %+.6f\n" (energy pose);
  print_endline
    "(each step differentiated the parallel-for docking kernel end to end)"
