(* Differentiating an OpenMP-parallel stencil: a 1-D explicit heat
   equation solved with `parallel for` time steps, then the gradient of a
   terminal objective w.r.t. the initial temperature field.
   `dune exec examples/heat_gradient.exe` *)

open Parad_ir
open Parad_runtime
module B = Builder
module GC = Parad_verify.Grad_check

let n = 32
let steps = 40

let build () =
  let prog = Prog.create () in
  let b, ps =
    B.func prog "heat"
      ~attrs:[ Func.noalias; Func.noalias; Func.default_attr ]
      ~params:
        [ "u", Ty.Ptr Ty.Float; "scratch", Ty.Ptr Ty.Float; "n", Ty.Int ]
      ~ret:Ty.Float
  in
  let u, w, nn = match ps with [ a; b; c ] -> a, b, c | _ -> assert false in
  let alpha = B.f64 b 0.2 in
  let one = B.i64 b 1 in
  B.for_n b (B.i64 b steps) (fun _t ->
      (* interior update in parallel; boundaries held fixed *)
      B.parallel_for b ~lo:one ~hi:(B.sub b nn one) (fun i ->
          let um = B.load b u (B.sub b i one) in
          let uc = B.load b u i in
          let up = B.load b u (B.add b i one) in
          let lap = B.add b um (B.sub b up (B.mul b (B.f64 b 2.0) uc)) in
          B.store b w i (B.add b uc (B.mul b alpha lap)));
      B.parallel_for b ~lo:one ~hi:(B.sub b nn one) (fun i ->
          B.store b u i (B.load b w i)));
  (* objective: mean-square of the final field's right half *)
  let acc = B.alloc b Ty.Float one in
  B.store b acc (B.i64 b 0) (B.f64 b 0.0);
  B.for_ b ~lo:(B.div b nn (B.i64 b 2)) ~hi:nn (fun i ->
      let x = B.load b u i in
      let cur = B.load b acc (B.i64 b 0) in
      B.store b acc (B.i64 b 0) (B.add b cur (B.mul b x x)));
  B.return b (Some (B.load b acc (B.i64 b 0)));
  ignore (B.finish b);
  prog

let () =
  let prog = build () in
  let u0 =
    Array.init n (fun i -> if i < n / 4 then 1.0 else 0.0)
  in
  let args = [ GC.ABuf u0; GC.ABuf (Array.make n 0.0); GC.AInt n ] in
  let seeds = [ Array.make n 0.0; Array.make n 0.0 ] in
  let cfg = { Interp.default_config with nthreads = 8 } in
  let g = GC.reverse ~cfg prog "heat" args ~seeds in
  Printf.printf "objective (right-half energy after %d steps): %.6f\n" steps
    g.GC.primal;
  print_endline "d objective / d u0 (how the initial heat placement matters):";
  Array.iteri
    (fun i d -> if i mod 4 = 0 then Printf.printf "  u0[%2d]: %+.6f\n" i d)
    (List.hd g.GC.d_bufs);
  (* cross-check against finite differences *)
  match GC.check ~cfg prog "heat" args ~seeds with
  | Ok err -> Printf.printf "finite-difference check OK (max rel err %.2e)\n" err
  | Error m -> print_endline m
