(* LULESH across paradigms: the same shock-hydro step differentiated
   through OpenMP, MPI, hybrid and Julia variants — the paper's headline
   composition. `dune exec examples/lulesh_demo.exe` *)

module L = Apps_lulesh.Lulesh

let () =
  let inp = { L.nx = 3; ny = 3; nz = 4; niter = 3; dt0 = 0.01; escale = 1.0 } in
  Printf.printf "%-28s %14s %14s %10s\n" "variant" "total energy"
    "d/de[center]" "overhead";
  List.iter
    (fun (name, flavor, nranks, nthreads) ->
      let p = L.run ~nranks ~nthreads flavor inp in
      let g = L.gradient ~nranks ~nthreads flavor inp in
      (* adjoint of the central element's initial energy, on the rank that
         owns it *)
      let owner = nranks / 2 in
      let m = L.mesh inp ~nranks ~rank:owner in
      let center = ref 0.0 in
      Array.iteri
        (fun k e -> if e > 1.0 then center := g.L.d_energy.(owner).(k))
        m.L.energy;
      Printf.printf "%-28s %14.6f %14.6f %10.2f\n" name p.L.total_energy
        !center
        (g.L.g_makespan /. p.L.makespan))
    [
      "sequential C++", L.Seq, 1, 1;
      "OpenMP x4", L.Omp, 1, 4;
      "RAJA x4", L.Raja_, 1, 4;
      "MPI x4", L.Mpi, 4, 1;
      "hybrid MPI2 x OMP2", L.Hybrid, 2, 2;
      "Julia + MPI.jl x4", L.Jlmpi, 4, 1;
    ];
  print_endline
    "\nSame physics, same gradient, six parallel paradigms, one AD engine."
