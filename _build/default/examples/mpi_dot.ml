(* Differentiating distributed code: a block-distributed weighted dot
   product with a halo shift (isend/irecv/wait) and an allreduce, run on
   4 simulated ranks. `dune exec examples/mpi_dot.exe` *)

open Parad_ir
module B = Builder
module GC = Parad_verify.Grad_check

let build () =
  let prog = Prog.create () in
  let b, ps =
    B.func prog "dot"
      ~attrs:[ Func.noalias; Func.default_attr ]
      ~params:[ "x", Ty.Ptr Ty.Float; "n", Ty.Int ]
      ~ret:Ty.Float
  in
  let x, n = match ps with [ a; b ] -> a, b | _ -> assert false in
  let rank = B.call b ~ret:Ty.Int "mpi.rank" [] in
  let size = B.call b ~ret:Ty.Int "mpi.size" [] in
  let one = B.i64 b 1 in
  (* shift this rank's block to the next rank *)
  let next = B.rem b (B.add b rank one) size in
  let prev = B.rem b (B.add b rank (B.sub b size one)) size in
  let y = B.alloc b Ty.Float n in
  let tag = B.i64 b 1 in
  let s = B.call b ~ret:Ty.Int "mpi.isend" [ x; n; next; tag ] in
  let r = B.call b ~ret:Ty.Int "mpi.irecv" [ y; n; prev; tag ] in
  ignore (B.call b ~ret:Ty.Unit "mpi.wait" [ s ]);
  ignore (B.call b ~ret:Ty.Unit "mpi.wait" [ r ]);
  (* local contribution: <x, shifted x> *)
  let acc = B.alloc b Ty.Float one in
  B.store b acc (B.i64 b 0) (B.f64 b 0.0);
  B.for_n b n (fun i ->
      let cur = B.load b acc (B.i64 b 0) in
      B.store b acc (B.i64 b 0)
        (B.add b cur (B.mul b (B.load b x i) (B.load b y i))));
  let out = B.alloc b Ty.Float one in
  ignore (B.call b ~ret:Ty.Unit "mpi.allreduce_sum" [ acc; out; one ]);
  B.return b (Some (B.load b out (B.i64 b 0)));
  ignore (B.finish b);
  prog

let () =
  let prog = build () in
  let nranks = 4 and n = 4 in
  let data rank = Array.init n (fun i -> float_of_int ((rank * n) + i + 1)) in
  let g =
    GC.reverse_spmd prog "dot" ~nranks
      ~args:(fun ~rank -> [ GC.ABuf (data rank); GC.AInt n ])
      ~seeds:(fun ~rank:_ -> [ Array.make n 0.0 ])
      ~d_ret:(fun ~rank -> if rank = 0 then 1.0 else 0.0)
  in
  Printf.printf "global loss = sum_r <x_r, x_(r-1)> = %.1f\n" g.GC.s_primals.(0);
  for r = 0 to nranks - 1 do
    Printf.printf "rank %d: x = [%s]  dL/dx = [%s]\n" r
      (String.concat "; "
         (Array.to_list (Array.map (Printf.sprintf "%.0f") (data r))))
      (String.concat "; "
         (Array.to_list
            (Array.map (Printf.sprintf "%.0f") (List.hd g.GC.s_d_bufs.(r)))))
  done;
  (* each x_r[i] appears in two terms: with the previous and next block *)
  print_endline
    "(each dL/dx_r[i] = x_(r-1)[i] + x_(r+1)[i]: the adjoint of the halo\n\
    \ shift travelled the ring backwards)"
