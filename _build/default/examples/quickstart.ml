(* Quickstart: build a tiny program in the IR, differentiate it, and run
   both. `dune exec examples/quickstart.exe`

   f(x, y) = sin(x*y) + x^2   =>  df/dx = y*cos(x*y) + 2x, df/dy = x*cos(x*y)
*)

open Parad_ir
module B = Builder
module GC = Parad_verify.Grad_check

let () =
  (* 1. build f *)
  let prog = Prog.create () in
  let b, ps =
    B.func prog "f" ~params:[ "x", Ty.Float; "y", Ty.Float ] ~ret:Ty.Float
  in
  let x, y = match ps with [ a; b ] -> a, b | _ -> assert false in
  let r = B.add b (B.sin_ b (B.mul b x y)) (B.mul b x x) in
  B.return b (Some r);
  ignore (B.finish b);
  print_endline "--- the primal IR ---";
  print_endline (Printer.func_to_string (Prog.find_exn prog "f"));

  (* 2. differentiate: the program gains d_f *)
  let dprog, dname = Parad_core.Reverse.gradient prog "f" in
  Printf.printf "\ngenerated gradient function: %s\n" dname;

  (* 3. run both *)
  let xv = 1.2 and yv = 0.7 in
  let g = GC.reverse prog "f" [ GC.AScalar xv; GC.AScalar yv ] in
  Printf.printf "\nf(%.2f, %.2f)      = %.10f\n" xv yv g.GC.primal;
  Printf.printf "df/dx (reverse AD) = %.10f\n" g.GC.d_scalars.(0);
  Printf.printf "df/dx (analytic)   = %.10f\n"
    ((yv *. cos (xv *. yv)) +. (2.0 *. xv));
  Printf.printf "df/dy (reverse AD) = %.10f\n" g.GC.d_scalars.(1);
  Printf.printf "df/dy (analytic)   = %.10f\n" (xv *. cos (xv *. yv));
  ignore dprog
