lib/apps/lulesh/lulesh.ml: Array Builder Exec Func Interp List Parad_core Parad_ir Parad_julia Parad_opt Parad_raja Parad_runtime Prog Stats Ty Value Var Verifier
