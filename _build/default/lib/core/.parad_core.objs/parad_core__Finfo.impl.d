lib/core/finfo.ml: Array Fmt Func Hashtbl Instr List Parad_ir Var
