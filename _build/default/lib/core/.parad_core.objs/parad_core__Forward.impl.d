lib/core/forward.ml: Array Builder Hashtbl Instr List Option Parad_ir Plan Prog Reverse String Ty Var Verifier
