lib/core/plan.ml: Array Finfo Fmt Func Hashtbl Instr List Option Parad_ir String Ty Var
