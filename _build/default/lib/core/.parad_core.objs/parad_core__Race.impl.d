lib/core/race.ml: Array Finfo Func Hashtbl Instr Int List Parad_ir Plan Set Ty Var
