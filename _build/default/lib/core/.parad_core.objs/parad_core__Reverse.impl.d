lib/core/reverse.ml: Array Builder Finfo Func Hashtbl Instr List Option Parad_ir Plan Prog Race String Ty Var Verifier
