(** Per-function static information used by the AD planner: where every
    SSA variable is defined (instruction, region parameter, or function
    parameter), at which loop-nest depth, and inside which parallel
    region.

    Instruction *occurrences* are numbered deterministically (an
    instruction gets its number before its sub-regions are visited, in
    {!Parad_ir.Instr.regions} order), so that independent traversals — the
    planner and the two emission sweeps — can refer to the same syntactic
    occurrence. *)

open Parad_ir

type def_site =
  | DParam  (** function parameter *)
  | DRegionParam of int  (** region parameter of the instr with this occ *)
  | DInstr of Instr.t * int  (** defining instruction and its occurrence *)

type t = {
  func : Func.t;
  def : def_site option array;  (** by var id; [None] = never defined *)
  idx_depth : int array;
      (** number of enclosing iteration-indexed regions (For / While /
          Workshare / Fork) at the definition point *)
  scope_depth : int array;
      (** number of enclosing regions of any kind (including If), i.e.
          lexical nesting: only scope-depth-0 values are in scope for the
          reverse sweep of a combined-mode gradient *)
  fork_occ : int option array;
      (** innermost enclosing Fork occurrence at the definition point *)
  occ_of_region_parent : (int, int option) Hashtbl.t;
      (** fork occurrence enclosing each instruction occurrence *)
  n_occ : int;
}

let of_func (f : Func.t) =
  let def = Array.make f.var_count None in
  let idx_depth = Array.make f.var_count 0 in
  let scope_depth = Array.make f.var_count 0 in
  let fork_occ = Array.make f.var_count None in
  let occ_fork = Hashtbl.create 64 in
  let counter = ref 0 in
  let set_def v site ~depth ~sdepth ~fork =
    def.(Var.id v) <- Some site;
    idx_depth.(Var.id v) <- depth;
    scope_depth.(Var.id v) <- sdepth;
    fork_occ.(Var.id v) <- fork
  in
  List.iter (fun p -> set_def p DParam ~depth:0 ~sdepth:0 ~fork:None) f.params;
  let rec walk ~depth ~sdepth ~fork instrs =
    List.iter
      (fun (i : Instr.t) ->
        let occ = !counter in
        incr counter;
        Hashtbl.replace occ_fork occ fork;
        List.iter
          (fun v -> set_def v (DInstr (i, occ)) ~depth ~sdepth ~fork)
          (Instr.defs i);
        let sub ~depth ~fork (r : Instr.region) =
          List.iter
            (fun p -> set_def p (DRegionParam occ) ~depth ~sdepth:(sdepth + 1) ~fork)
            r.params;
          walk ~depth ~sdepth:(sdepth + 1) ~fork r.body
        in
        match i with
        | If (_, _, t, e) ->
          sub ~depth ~fork t;
          sub ~depth ~fork e
        | For { body; _ } -> sub ~depth:(depth + 1) ~fork body
        | While { cond; body } ->
          sub ~depth:(depth + 1) ~fork cond;
          sub ~depth:(depth + 1) ~fork body
        | Fork { body; _ } -> sub ~depth:(depth + 1) ~fork:(Some occ) body
        | Workshare { body; _ } -> sub ~depth:(depth + 1) ~fork body
        | Const _ | Bin _ | Cmp _ | Un _ | Select _ | Alloc _ | Free _
        | Load _ | Store _ | Gep _ | AtomicAdd _ | Call _ | Spawn _ | Sync _
        | Barrier | Return _ | Yield _ -> ())
      instrs
  in
  walk ~depth:0 ~sdepth:0 ~fork:None f.body;
  {
    func = f;
    def;
    idx_depth;
    scope_depth;
    fork_occ;
    occ_of_region_parent = occ_fork;
    n_occ = !counter;
  }

let def_site t v =
  match t.def.(Var.id v) with
  | Some s -> s
  | None -> invalid_arg (Fmt.str "Finfo: %a has no definition" Var.pp v)

let depth t v = t.idx_depth.(Var.id v)
let sdepth t v = t.scope_depth.(Var.id v)
let fork_of t v = t.fork_occ.(Var.id v)

(** Chase the static provenance of a pointer variable: the allocation or
    parameter it derives from through [Gep]/[Select] chains, or [None] if
    it was loaded from memory (unknown provenance). Returns the base
    variable. *)
let rec pointer_base t v =
  match def_site t v with
  | DParam | DRegionParam _ -> Some v
  | DInstr (Instr.Alloc _, _) -> Some v
  | DInstr (Instr.Gep (_, p, _), _) -> pointer_base t p
  | DInstr (Instr.Select (_, _, a, _), _) ->
    (* conservative: both arms should agree; use the first and let the
       thread-locality check fall back to atomics when in doubt *)
    pointer_base t a
  | DInstr (Instr.Const (_, Instr.Cnull _), _) -> Some v
  | DInstr _ -> None
