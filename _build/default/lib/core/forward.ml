(** Forward (tangent) mode.

    Each float SSA value gets a tangent SSA value computed alongside it,
    each pointer a shadow (tangent) buffer; control flow is driven by the
    primal alone, so — unlike reverse mode — no caching is ever needed and
    every parallel construct keeps its exact shape. Message passing
    duplicates each communication on the shadow buffers (tangents travel
    with the primals, the classic forward-mode MPI treatment).

    Calling convention of the generated [t_f]:
    [t_f(args..., shadow-ptr-args..., tangent-scalar-args..., t_ret?)]
    where [t_ret : Ptr Float] receives the return tangent when [f]
    returns a float; the primal value is returned. *)

open Parad_ir
module B = Builder
open Plan

let tangent_tag_base = 3_000_000

type st = {
  eng_src : Prog.t;
  dst : Prog.t;
  prefix : string;
  b : B.t;
  vmap : Var.t option array;
  tmap : Var.t option array;  (** tangents of float vars *)
  smap : (int, Var.t) Hashtbl.t;  (** shadows of pointer (and request) vars *)
  seen : (string, unit) Hashtbl.t;  (** callees already being transformed *)
}

let fwd st v =
  match st.vmap.(Var.id v) with
  | Some x -> x
  | None -> unsupported "forward mode: unmapped %a" Var.pp v

let tan st v =
  match st.tmap.(Var.id v) with
  | Some x -> x
  | None -> unsupported "forward mode: no tangent for %a" Var.pp v

let shadow st v =
  match Hashtbl.find_opt st.smap (Var.id v) with
  | Some x -> x
  | None -> unsupported "forward mode: no shadow for %a" Var.pp v

let set_fwd st v x = st.vmap.(Var.id v) <- Some x
let set_tan st v x = st.tmap.(Var.id v) <- Some x
let set_shadow st v x = Hashtbl.replace st.smap (Var.id v) x
let is_float v = Ty.equal (Var.ty v) Ty.Float

let rec emit st ~on_yield (instrs : Instr.t list) =
  List.iter (emit_instr st ~on_yield) instrs

and emit_instr st ~on_yield (ins : Instr.t) =
  let b = st.b in
  let g = fwd st in
  let t = tan st in
  match ins with
  | Const (v, c) ->
    set_fwd st v (B.const b ~name:(Var.name v) c);
    (match c with
    | Cfloat _ -> set_tan st v (B.f64 b 0.0)
    | Cnull ty -> set_shadow st v (B.null b ty)
    | _ -> ())
  | Bin (v, op, x, y) ->
    let r = B.bin b op (g x) (g y) in
    set_fwd st v r;
    if is_float v then
      set_tan st v
        (match op with
        | Add -> B.add b (t x) (t y)
        | Sub -> B.sub b (t x) (t y)
        | Mul -> B.add b (B.mul b (t x) (g y)) (B.mul b (g x) (t y))
        | Div -> B.div b (B.sub b (t x) (B.mul b r (t y))) (g y)
        | Min -> B.select b (B.le b (g x) (g y)) (t x) (t y)
        | Max -> B.select b (B.ge b (g x) (g y)) (t x) (t y)
        | Pow ->
          B.add b
            (B.mul b (t x)
               (B.mul b (g y)
                  (B.pow b (g x) (B.sub b (g y) (B.f64 b 1.0)))))
            (B.mul b (t y) (B.mul b r (B.log_ b (g x))))
        | Rem -> B.f64 b 0.0)
  | Cmp (v, op, x, y) -> set_fwd st v (B.cmp b op (g x) (g y))
  | Un (v, op, x) ->
    let r = B.un b op (g x) in
    set_fwd st v r;
    if is_float v then
      set_tan st v
        (match op with
        | Neg -> B.neg b (t x)
        | Sqrt -> B.div b (B.mul b (t x) (B.f64 b 0.5)) r
        | Sin -> B.mul b (t x) (B.cos_ b (g x))
        | Cos -> B.neg b (B.mul b (t x) (B.sin_ b (g x)))
        | Exp -> B.mul b (t x) r
        | Log -> B.div b (t x) (g x)
        | Abs ->
          B.select b (B.ge b (g x) (B.f64 b 0.0)) (t x) (B.neg b (t x))
        | Floor | ToFloat -> B.f64 b 0.0
        | ToInt | Not -> B.f64 b 0.0)
  | Select (v, c, x, y) ->
    set_fwd st v (B.select b (g c) (g x) (g y));
    if is_float v then set_tan st v (B.select b (g c) (t x) (t y));
    if Ty.is_ptr (Var.ty v) then
      set_shadow st v (B.select b (g c) (shadow st x) (shadow st y))
  | Alloc (v, elem, n, kind) ->
    set_fwd st v (B.alloc b ~kind elem (g n));
    set_shadow st v (B.alloc b ~kind elem (g n))
  | Free p ->
    B.free b (g p);
    (match Var.ty p with
    | Ty.Ptr _ -> B.free b (shadow st p)
    | _ -> ())
  | Load (v, p, ix) ->
    set_fwd st v (B.load b (g p) (g ix));
    if is_float v then set_tan st v (B.load b (shadow st p) (g ix))
    else if Ty.is_ptr (Var.ty v) then
      set_shadow st v (B.load b (shadow st p) (g ix))
    else if Ty.equal (Var.ty v) Ty.Int then
      (* possible request slot: mirror lazily on demand *)
      ()
  | Store (p, ix, x) ->
    B.store b (g p) (g ix) (g x);
    if is_float x then B.store b (shadow st p) (g ix) (t x)
    else if Ty.is_ptr (Var.ty x) then
      B.store b (shadow st p) (g ix) (shadow st x)
    else if Ty.equal (Var.ty x) Ty.Int && Hashtbl.mem st.smap (Var.id x)
    then B.store b (shadow st p) (g ix) (shadow st x)
  | Gep (v, p, ix) ->
    set_fwd st v (B.gep b (g p) (g ix));
    set_shadow st v (B.gep b (shadow st p) (g ix))
  | AtomicAdd (p, ix, x) ->
    B.atomic_add b (g p) (g ix) (g x);
    B.atomic_add b (shadow st p) (g ix) (t x)
  | Call (v, name, args) -> emit_call st v name args
  | Spawn (v, gname, args) ->
    let tname = ensure_callee st gname in
    let args' =
      List.map g args
      @ List.concat_map
          (fun a ->
            if Ty.is_ptr (Var.ty a) then [ shadow st a ]
            else if is_float a then [ tan st a ]
            else [])
          args
    in
    set_fwd st v (B.spawn b tname args')
  | Sync h -> B.sync b (g h)
  | If (rs, c, then_r, else_r) ->
    let strip (r : Instr.region) =
      match List.rev r.Instr.body with
      | Yield vs :: rest -> List.rev rest, vs
      | _ -> r.Instr.body, []
    in
    let tb, ty_ = strip then_r and eb, ey = strip else_r in
    ignore ty_;
    ignore ey;
    let float_rs = List.filter is_float rs in
    let ptr_rs = List.filter (fun r -> Ty.is_ptr (Var.ty r)) rs in
    let res_tys =
      List.map Var.ty rs
      @ List.map (fun _ -> Ty.Float) float_rs
      @ List.map Var.ty ptr_rs
    in
    let branch body yields () =
      emit st ~on_yield body;
      List.map g yields
      @ List.filter_map
          (fun (r, y) -> if is_float r then Some (t y) else None)
          (List.combine rs yields)
      @ List.filter_map
          (fun (r, y) ->
            if Ty.is_ptr (Var.ty r) then Some (shadow st y) else None)
          (List.combine rs yields)
    in
    let out =
      B.if_ b (g c) ~results:res_tys
        ~then_:(branch tb (snd (strip then_r)))
        ~else_:(branch eb (snd (strip else_r)))
    in
    let n = List.length rs and nf = List.length float_rs in
    List.iteri (fun i r -> if i < n then set_fwd st r (List.nth out i)) rs;
    List.iteri (fun i r -> set_tan st r (List.nth out (n + i))) float_rs;
    List.iteri
      (fun i r -> set_shadow st r (List.nth out (n + nf + i)))
      ptr_rs
  | For { iv; lo; hi; step; body } ->
    B.for_ b ~lo:(g lo) ~hi:(g hi) ~step:(g step) (fun iv' ->
        set_fwd st iv iv';
        emit st ~on_yield body.Instr.body)
  | While { cond; body } ->
    let strip (r : Instr.region) =
      match List.rev r.Instr.body with
      | Yield [ v ] :: rest -> List.rev rest, v
      | _ -> unsupported "forward: malformed while condition"
    in
    let cb, cv = strip cond in
    B.while_ b
      ~cond:(fun () ->
        emit st ~on_yield cb;
        fwd st cv)
      ~body:(fun () -> emit st ~on_yield body.Instr.body)
  | Fork { tid; nth; body } ->
    let nth_param =
      match body.Instr.params with [ _; q ] -> q | _ -> assert false
    in
    B.fork b ~nth:(g nth) (fun ~tid:tid' ~nth:nth' ->
        set_fwd st tid tid';
        set_fwd st nth_param nth';
        emit st ~on_yield body.Instr.body)
  | Workshare { iv; lo; hi; body; schedule; nowait } ->
    B.workshare b ~schedule ~nowait ~lo:(g lo) ~hi:(g hi) (fun iv' ->
        set_fwd st iv iv';
        emit st ~on_yield body.Instr.body)
  | Barrier -> B.barrier b
  | Return v -> on_yield (`Return (Option.map (fun x -> x) v))
  | Yield _ -> unsupported "forward: unexpected yield"

and emit_call st v name args =
  let b = st.b in
  let g = fwd st in
  if String.contains name '.' then (
    match name, args with
    | ("mpi.isend" | "mpi.irecv"), [ p; n; peer; tag ] ->
      let r = B.call b ~ret:Ty.Int name [ g p; g n; g peer; g tag ] in
      set_fwd st v r;
      (* tangents travel on a parallel channel *)
      let tagt = B.add b (g tag) (B.i64 b tangent_tag_base) in
      let rt =
        B.call b ~ret:Ty.Int name [ shadow st p; g n; g peer; tagt ]
      in
      set_shadow st v rt
    | "mpi.wait", [ r ] ->
      ignore (B.call b ~ret:Ty.Unit "mpi.wait" [ g r ]);
      let sh = shadow_of_int st r in
      set_fwd st v (B.call b ~ret:Ty.Unit "mpi.wait" [ sh ])
    | ("mpi.send" | "mpi.recv"), [ p; n; peer; tag ] ->
      set_fwd st v (B.call b ~ret:Ty.Unit name [ g p; g n; g peer; g tag ]);
      let tagt = B.add b (g tag) (B.i64 b tangent_tag_base) in
      ignore (B.call b ~ret:Ty.Unit name [ shadow st p; g n; g peer; tagt ])
    | "mpi.allreduce_sum", [ s; r; n ] ->
      set_fwd st v (B.call b ~ret:Ty.Unit name [ g s; g r; g n ]);
      ignore
        (B.call b ~ret:Ty.Unit name [ shadow st s; shadow st r; g n ])
    | ("mpi.allreduce_min" | "mpi.allreduce_max"), [ s; r; n ] ->
      set_fwd st v (B.call b ~ret:Ty.Unit name [ g s; g r; g n ]);
      (* tangent of the winner: mask my tangent by (mine == result),
         then sum-reduce *)
      let masked = B.alloc b Ty.Float (g n) in
      B.for_n b (g n) (fun i ->
          let mine = B.load b (g s) i in
          let win = B.load b (g r) i in
          let tm = B.load b (shadow st s) i in
          let zero = B.f64 b 0.0 in
          B.store b masked i (B.select b (B.eq b mine win) tm zero));
      ignore
        (B.call b ~ret:Ty.Unit "mpi.allreduce_sum"
           [ masked; shadow st r; g n ]);
      B.free b masked
    | "mpi.bcast", [ p; n; root ] ->
      set_fwd st v (B.call b ~ret:Ty.Unit name [ g p; g n; g root ]);
      ignore (B.call b ~ret:Ty.Unit name [ shadow st p; g n; g root ])
    | "gc.preserve_begin", _ ->
      let ext =
        List.map g args
        @ List.filter_map
            (fun x ->
              if Ty.is_ptr (Var.ty x) then Some (shadow st x) else None)
            args
      in
      set_fwd st v (B.call b ~ret:Ty.Int name ext)
    | _ ->
      set_fwd st v
        (B.call b ~ret:(Reverse.intrinsic_ret_ty name) name (List.map g args)))
  else begin
    let tname = ensure_callee st name in
    let orig = Prog.find_exn st.eng_src name in
    let args' =
      List.map g args
      @ List.concat_map
          (fun a ->
            if Ty.is_ptr (Var.ty a) then [ shadow st a ]
            else if is_float a then [ tan st a ]
            else [])
          args
    in
    if Ty.equal orig.ret_ty Ty.Float then begin
      let tret = B.alloc b Ty.Float (B.i64 b 1) in
      let r = B.call b ~ret:orig.ret_ty tname (args' @ [ tret ]) in
      set_fwd st v r;
      set_tan st v (B.load b tret (B.i64 b 0));
      B.free b tret
    end
    else set_fwd st v (B.call b ~ret:orig.ret_ty tname args')
  end

and shadow_of_int st (v : Var.t) =
  match Hashtbl.find_opt st.smap (Var.id v) with
  | Some s -> s
  | None ->
    unsupported
      "forward: request arrays are not supported in tangent mode (%a)" Var.pp
      v

(* generate (and memoize) the tangent of a callee *)
and ensure_callee st gname =
  ignore (transform ~prefix:st.prefix ~src:st.eng_src ~dst:st.dst ~seen:st.seen gname);
  st.prefix ^ "t_" ^ gname

and transform ~prefix ~src ~dst ~seen fname =
  let f = Prog.find_exn src fname in
  let tname = prefix ^ "t_" ^ fname in
  if not (Hashtbl.mem seen fname) then begin
    Hashtbl.add seen fname ();
    let ret_float = Ty.equal f.ret_ty Ty.Float in
    let params_spec =
      List.map (fun p -> Var.name p, Var.ty p) f.params
      @ List.concat_map
          (fun p ->
            if Ty.is_ptr (Var.ty p) then [ "t_" ^ Var.name p, Var.ty p ]
            else if Ty.equal (Var.ty p) Ty.Float then
              [ "t_" ^ Var.name p, Ty.Float ]
            else [])
          f.params
      @ if ret_float then [ "t_ret", Ty.Ptr Ty.Float ] else []
    in
    let b, newparams = B.func dst tname ~params:params_spec ~ret:f.ret_ty in
    let st =
      {
        eng_src = src;
        dst;
        prefix;
        b;
        vmap = Array.make f.var_count None;
        tmap = Array.make f.var_count None;
        smap = Hashtbl.create 16;
        seen;
      }
    in
    let np = List.length f.params in
    List.iteri
      (fun i v -> if i < np then set_fwd st (List.nth f.params i) v)
      newparams;
    let extras = List.filteri (fun i _ -> i >= np) newparams in
    let rec bind ps extras =
      match ps, extras with
      | [], rest -> rest
      | p :: ps, e :: rest when Ty.is_ptr (Var.ty p) ->
        set_shadow st p e;
        bind ps rest
      | p :: ps, e :: rest when Ty.equal (Var.ty p) Ty.Float ->
        set_tan st p e;
        bind ps rest
      | _ :: ps, rest -> bind ps rest
    in
    let shadow_like =
      List.filter
        (fun p -> Ty.is_ptr (Var.ty p) || Ty.equal (Var.ty p) Ty.Float)
        f.params
    in
    let rest = bind shadow_like extras in
    let t_ret = match rest with [ r ] -> Some r | _ -> None in
    let returned = ref None in
    emit st
      ~on_yield:(fun (`Return v) -> returned := Some v)
      f.body;
    (match !returned with
    | Some (Some v) when ret_float ->
      (match t_ret with
      | Some tr -> B.store b tr (B.i64 b 0) (tan st v)
      | None -> ());
      B.return b (Some (fwd st v))
    | Some (Some v) -> B.return b (Some (fwd st v))
    | _ -> B.return b None);
    ignore (B.finish b)
  end;
  tname

(** [tangent prog fname] extends a copy of [prog] with [t_<fname>] (and
    tangents of callees); returns the program and the new name. *)
let tangent ?(prefix = "") prog fname =
  let dst = Prog.copy prog in
  let tname =
    transform ~prefix ~src:prog ~dst ~seen:(Hashtbl.create 8) fname
  in
  Verifier.check_prog dst;
  dst, tname
