(** Thread-locality analysis for adjoint accumulation (paper §VI-A1).

    When the reverse pass increments shadow memory inside a parallel
    region, the increment must be atomic unless the target cell is private
    to the executing thread. A shadow cell is provably private when the
    buffer's provenance is alias-free (a non-escaping allocation, or a
    [noalias] parameter) and *every* access to it inside a parallel region
    uses an index that is affine in a thread-distinguishing variable (the
    worksharing induction variable or the thread id), so distinct threads
    touch distinct cells.

    Buffers allocated inside the parallel region itself are private by
    construction and classified separately by the emitter. The legal
    fallback — treating everything as shared, i.e. atomics everywhere — is
    what [atomic_always] selects (the [abl-tl] ablation). *)

open Parad_ir

type t = {
  private_base : (int, unit) Hashtbl.t;
  escaped_base : (int, unit) Hashtbl.t;
}

let is_private t base = Hashtbl.mem t.private_base (Var.id base)
let is_escaped t base = Hashtbl.mem t.escaped_base (Var.id base)

module IS = Set.Make (Int)

(* Is [ix] affine in one of the thread-distinguishing variables
   [qual_ivs], with all other contributions invariant across the team
   (defined outside fork [fork_occ])? *)
let rec affine fi ~qual_ivs ~fork_occ (ix : Var.t) =
  if IS.mem (Var.id ix) qual_ivs then true
  else
    match Finfo.def_site fi ix with
    | Finfo.DInstr (Instr.Bin (_, Instr.Add, a, b), _) ->
      (affine fi ~qual_ivs ~fork_occ a && invariant fi ~fork_occ b)
      || (invariant fi ~fork_occ a && affine fi ~qual_ivs ~fork_occ b)
    | Finfo.DInstr (Instr.Bin (_, Instr.Sub, a, b), _) ->
      affine fi ~qual_ivs ~fork_occ a && invariant fi ~fork_occ b
    | Finfo.DInstr (Instr.Bin (_, Instr.Mul, a, b), _) -> (
      let nonzero_const v =
        match Finfo.def_site fi v with
        | Finfo.DInstr (Instr.Const (_, Instr.Cint c), _) -> c <> 0
        | _ -> false
      in
      (affine fi ~qual_ivs ~fork_occ a && nonzero_const b)
      || (nonzero_const a && affine fi ~qual_ivs ~fork_occ b))
    | _ -> false

and invariant fi ~fork_occ v =
  match Finfo.fork_of fi v, fork_occ with
  | None, _ -> true
  | Some f, Some f' -> f <> f'
  | Some _, None -> false

let analyze (fi : Finfo.t) (f : Func.t) =
  let escaped : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let disqualified : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let seen : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let escape v =
    if Ty.is_ptr (Var.ty v) then
      match Finfo.pointer_base fi v with
      | Some base -> Hashtbl.replace escaped (Var.id base) ()
      | None -> ()
  in
  let access ~qual_ivs ~fork_occ p ix =
    match Finfo.pointer_base fi p with
    | None -> ()
    | Some base ->
      Hashtbl.replace seen (Var.id base) ();
      (match fork_occ with
      | None -> () (* sequential access: no cross-thread race *)
      | Some _ ->
        if not (affine fi ~qual_ivs ~fork_occ ix) then
          Hashtbl.replace disqualified (Var.id base) ())
  in
  let rec walk ~qual_ivs ~fork_occ occ_counter instrs =
    List.iter
      (fun (i : Instr.t) ->
        let occ = !occ_counter in
        incr occ_counter;
        (match i with
        | Instr.Store (p, ix, x) ->
          escape x;
          if Ty.equal (Var.ty x) Ty.Float then access ~qual_ivs ~fork_occ p ix
        | Instr.Load (v, p, ix) when Ty.equal (Var.ty v) Ty.Float ->
          access ~qual_ivs ~fork_occ p ix
        | Instr.AtomicAdd (p, ix, _) -> access ~qual_ivs ~fork_occ p ix
        | Instr.Call (_, _, args) | Instr.Spawn (_, _, args) ->
          List.iter escape args
        | Instr.Return (Some v) -> escape v
        | Instr.Yield vs -> List.iter escape vs
        | _ -> ());
        let recurse ~qual_ivs ~fork_occ (r : Instr.region) =
          walk ~qual_ivs ~fork_occ occ_counter r.body
        in
        match i with
        | Instr.If (_, _, t, e) ->
          recurse ~qual_ivs ~fork_occ t;
          recurse ~qual_ivs ~fork_occ e
        | Instr.For { body; _ } -> recurse ~qual_ivs ~fork_occ body
        | Instr.While { cond; body } ->
          recurse ~qual_ivs ~fork_occ cond;
          recurse ~qual_ivs ~fork_occ body
        | Instr.Fork { tid; body; _ } ->
          recurse ~qual_ivs:(IS.singleton (Var.id tid)) ~fork_occ:(Some occ)
            body
        | Instr.Workshare { iv; body; _ } ->
          recurse ~qual_ivs:(IS.add (Var.id iv) qual_ivs) ~fork_occ body
        | _ -> ())
      instrs
  in
  walk ~qual_ivs:IS.empty ~fork_occ:None (ref 0) f.body;
  let t = { private_base = Hashtbl.create 16; escaped_base = escaped } in
  let vars = Plan.vars_of f in
  Hashtbl.iter
    (fun id () ->
      if (not (Hashtbl.mem disqualified id)) && not (Hashtbl.mem escaped id)
      then
        (* base must be an allocation or a noalias parameter *)
        match vars.(id) with
        | None -> ()
        | Some v -> (
          match Finfo.def_site fi v with
          | Finfo.DInstr (Instr.Alloc _, _) ->
            Hashtbl.replace t.private_base id ()
          | Finfo.DParam -> (
            match Func.param_attr f v with
            | Some a when a.Func.noalias -> Hashtbl.replace t.private_base id ()
            | _ -> ())
          | _ -> ())
    )
    seen;
  t
