lib/ir/builder.ml: Func Instr List Option Prog Ty Var
