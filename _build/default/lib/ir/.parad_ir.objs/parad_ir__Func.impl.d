lib/ir/func.ml: Instr List Ty Var
