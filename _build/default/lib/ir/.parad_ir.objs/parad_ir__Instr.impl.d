lib/ir/instr.ml: List Option Ty Var
