lib/ir/printer.ml: Fmt Func Instr List Prog String Ty Var
