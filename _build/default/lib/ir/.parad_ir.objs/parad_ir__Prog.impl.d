lib/ir/prog.ml: Func Hashtbl List Printf
