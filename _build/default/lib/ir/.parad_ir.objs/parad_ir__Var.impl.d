lib/ir/var.ml: Fmt Int Map Set Ty
