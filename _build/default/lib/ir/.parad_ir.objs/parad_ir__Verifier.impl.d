lib/ir/verifier.ml: Fmt Func Instr List Prog Ty Var
