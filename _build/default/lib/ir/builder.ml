(** Imperative IR builder — the embedded frontend used by examples and the
    proxy applications. A builder accumulates instructions into the current
    (innermost) region; structured constructs take OCaml closures that build
    their bodies.

    {[
      let b, ps = Builder.func prog "axpy" ~params:[ "a", Ty.Float; ... ] ... in
      ...
      Builder.return b None;
      Builder.finish b
    ]} *)

open Instr

type t = {
  prog : Prog.t;
  fname : string;
  params : Var.t list;
  attrs : Func.attr list;
  ret_ty : Ty.t;
  mutable next_id : int;
  mutable scopes : Instr.t list ref list;  (* innermost first *)
  mutable finished : bool;
}

let func ?attrs prog fname ~params ~ret =
  let next = ref 0 in
  let mk (name, ty) =
    let v = Var.make ~id:!next ~ty ~name in
    incr next;
    v
  in
  let pvars = List.map mk params in
  let attrs =
    match attrs with
    | Some l ->
      if List.length l <> List.length params then
        invalid_arg "Builder.func: attrs length mismatch";
      l
    | None -> List.map (fun _ -> Func.default_attr) params
  in
  let b =
    {
      prog;
      fname;
      params = pvars;
      attrs;
      ret_ty = ret;
      next_id = !next;
      scopes = [ ref [] ];
      finished = false;
    }
  in
  b, pvars

let fresh b ty name =
  let v = Var.make ~id:b.next_id ~ty ~name in
  b.next_id <- b.next_id + 1;
  v

let emit b i =
  match b.scopes with
  | top :: _ -> top := i :: !top
  | [] -> invalid_arg "Builder.emit: no open scope"

(* Run [f] with a fresh scope collecting instructions; return them. *)
let in_scope b f =
  let scope = ref [] in
  b.scopes <- scope :: b.scopes;
  let finally () =
    match b.scopes with
    | s :: rest when s == scope -> b.scopes <- rest
    | _ -> invalid_arg "Builder.in_scope: unbalanced scopes"
  in
  (match f () with
  | () -> finally ()
  | exception e ->
    finally ();
    raise e);
  List.rev !scope

(* ---- constants ---- *)

let const b ?(name = "c") c =
  let ty =
    match c with
    | Cunit -> Ty.Unit
    | Cbool _ -> Ty.Bool
    | Cint _ -> Ty.Int
    | Cfloat _ -> Ty.Float
    | Cnull t -> Ty.Ptr t
  in
  let v = fresh b ty name in
  emit b (Const (v, c));
  v

let f64 b x = const b ~name:"f" (Cfloat x)
let i64 b x = const b ~name:"i" (Cint x)
let bool b x = const b ~name:"b" (Cbool x)
let unit_ b = const b ~name:"u" Cunit
let null b t = const b ~name:"null" (Cnull t)

(* ---- arithmetic ---- *)

let bin b op x y =
  let ty =
    match op with
    | Add | Sub | Mul | Div | Rem | Min | Max | Pow -> Var.ty x
  in
  let v = fresh b ty (binop_name op) in
  emit b (Bin (v, op, x, y));
  v

let add b x y = bin b Add x y
let sub b x y = bin b Sub x y
let mul b x y = bin b Mul x y
let div b x y = bin b Div x y
let rem b x y = bin b Rem x y
let min_ b x y = bin b Min x y
let max_ b x y = bin b Max x y
let pow b x y = bin b Pow x y

let cmp b op x y =
  let v = fresh b Ty.Bool (cmpop_name op) in
  emit b (Cmp (v, op, x, y));
  v

let eq b x y = cmp b Eq x y
let ne b x y = cmp b Ne x y
let lt b x y = cmp b Lt x y
let le b x y = cmp b Le x y
let gt b x y = cmp b Gt x y
let ge b x y = cmp b Ge x y

let un b op x =
  let ty =
    match op with
    | Neg -> Var.ty x
    | Sqrt | Sin | Cos | Exp | Log | Abs | Floor -> Ty.Float
    | ToFloat -> Ty.Float
    | ToInt -> Ty.Int
    | Not -> Ty.Bool
  in
  let ty = match op, Var.ty x with Abs, Ty.Int -> Ty.Int | _ -> ty in
  let v = fresh b ty (unop_name op) in
  emit b (Un (v, op, x));
  v

let neg b x = un b Neg x
let sqrt_ b x = un b Sqrt x
let sin_ b x = un b Sin x
let cos_ b x = un b Cos x
let exp_ b x = un b Exp x
let log_ b x = un b Log x
let abs_ b x = un b Abs x
let floor_ b x = un b Floor x
let to_float b x = un b ToFloat x
let to_int b x = un b ToInt x
let not_ b x = un b Not x

let select b c x y =
  let v = fresh b (Var.ty x) "select" in
  emit b (Select (v, c, x, y));
  v

(* ---- memory ---- *)

let alloc b ?(kind = Heap) ty n =
  let v = fresh b (Ty.Ptr ty) "p" in
  emit b (Alloc (v, ty, n, kind));
  v

let free b p = emit b (Free p)

let load b p i =
  let v = fresh b (Ty.elem (Var.ty p)) "ld" in
  emit b (Load (v, p, i));
  v

let store b p i x = emit b (Store (p, i, x))

let gep b p i =
  let v = fresh b (Var.ty p) "gep" in
  emit b (Gep (v, p, i));
  v

let atomic_add b p i x = emit b (AtomicAdd (p, i, x))

(* ---- calls / tasks ---- *)

let call b ~ret name args =
  let v = fresh b ret name in
  emit b (Call (v, name, args));
  v

let spawn b name args =
  let v = fresh b Ty.Int ("task_" ^ name) in
  emit b (Spawn (v, name, args));
  v

let sync b t = emit b (Sync t)

(* ---- control flow ---- *)

let if_ b ?(results = []) c ~then_ ~else_ =
  let collect f =
    let yielded = ref None in
    let body =
      in_scope b (fun () ->
          let vs = f () in
          yielded := Some vs)
    in
    let vs = Option.get !yielded in
    if List.length vs <> List.length results then
      invalid_arg "Builder.if_: yielded arity mismatch";
    { params = []; body = body @ [ Yield vs ] }
  in
  let then_r = collect then_ in
  let else_r = collect else_ in
  let res = List.map (fun ty -> fresh b ty "ifres") results in
  emit b (If (res, c, then_r, else_r));
  res

(** [ite b c f g]: if-then-else with no results. *)
let ite b c f g =
  ignore
    (if_ b c
       ~then_:(fun () ->
         f ();
         [])
       ~else_:(fun () ->
         g ();
         []))

let when_ b c f = ite b c f (fun () -> ())

let for_ b ?step ~lo ~hi f =
  let step = match step with Some s -> s | None -> i64 b 1 in
  let iv = fresh b Ty.Int "i" in
  let body = in_scope b (fun () -> f iv) in
  emit b (For { iv; lo; hi; step; body = { params = [ iv ]; body } })

(** [for_n b n f] iterates [f] over [0, n). *)
let for_n b n f = for_ b ~lo:(i64 b 0) ~hi:n f

let while_ b ~cond ~body =
  let cond_res = ref None in
  let cond_body =
    in_scope b (fun () ->
        let c = cond () in
        cond_res := Some c)
  in
  let c = Option.get !cond_res in
  let cond_r = { params = []; body = cond_body @ [ Yield [ c ] ] } in
  let body_instrs = in_scope b body in
  emit b (While { cond = cond_r; body = { params = []; body = body_instrs } })

let fork b ?nth f =
  let nth = match nth with Some v -> v | None -> i64 b 0 in
  let tid = fresh b Ty.Int "tid" in
  let nthv = fresh b Ty.Int "nth" in
  let body = in_scope b (fun () -> f ~tid ~nth:nthv) in
  emit b (Fork { tid; nth; body = { params = [ tid; nthv ]; body } })

let workshare b ?(schedule = Chunked) ?(nowait = false) ~lo ~hi f =
  let iv = fresh b Ty.Int "wi" in
  let body = in_scope b (fun () -> f iv) in
  emit b
    (Workshare { iv; lo; hi; body = { params = [ iv ]; body }; schedule; nowait })

let barrier b = emit b Barrier

(** [parallel_for b ~lo ~hi f] — the `#pragma omp parallel for` sugar:
    a fork whose body is a single worksharing loop. *)
let parallel_for b ?nth ?schedule ~lo ~hi f =
  fork b ?nth (fun ~tid:_ ~nth:_ -> workshare b ?schedule ~lo ~hi f)

let return b v = emit b (Return v)

let finish b =
  if b.finished then invalid_arg "Builder.finish: already finished";
  b.finished <- true;
  (match b.scopes with
  | [ _ ] -> ()
  | _ -> invalid_arg "Builder.finish: unbalanced scopes");
  let body =
    match b.scopes with [ top ] -> List.rev !top | _ -> assert false
  in
  (* Ensure a terminating return for unit functions. *)
  let body =
    match b.ret_ty, List.rev body with
    | Ty.Unit, Return None :: _ -> body
    | Ty.Unit, _ -> body @ [ Return None ]
    | _ -> body
  in
  let f =
    Func.make ~name:b.fname ~params:b.params ~attrs:b.attrs ~ret_ty:b.ret_ty
      ~body ~var_count:b.next_id
  in
  Prog.add b.prog f;
  f
