(** Functions: a parameter list with attributes, a return type, and a body
    region whose terminator is [Return]. *)

type attr = {
  noalias : bool;
      (** the pointer does not alias any other pointer argument or global *)
  readonly : bool;  (** the callee never writes through this pointer *)
}

let default_attr = { noalias = false; readonly = false }
let noalias = { noalias = true; readonly = false }
let readonly = { noalias = false; readonly = true }
let noalias_readonly = { noalias = true; readonly = true }

type t = {
  name : string;
  params : Var.t list;
  attrs : attr list;  (** same length as [params] *)
  ret_ty : Ty.t;
  body : Instr.t list;
  var_count : int;  (** all var ids in the function are < [var_count] *)
}

let make ~name ~params ~attrs ~ret_ty ~body ~var_count =
  if List.length params <> List.length attrs then
    invalid_arg "Func.make: params/attrs length mismatch";
  { name; params; attrs; ret_ty; body; var_count }

let param_attr f v =
  let rec go ps ats =
    match ps, ats with
    | p :: ps, a :: ats -> if Var.equal p v then Some a else go ps ats
    | _, _ -> None
  in
  go f.params f.attrs
