(** The instruction set.

    Structured-control-flow SSA: straight-line instructions plus region-based
    [If]/[For]/[While], fork-join parallel constructs ([Fork], [Workshare],
    [Barrier]), task parallelism ([Spawn]/[Sync]) and calls. Message passing
    and other runtime services are intrinsic [Call]s (names with a dotted
    prefix, e.g. ["mpi.isend"]); see {!module:Parad_runtime.Intrinsics}. *)

type const =
  | Cunit
  | Cbool of bool
  | Cint of int
  | Cfloat of float
  | Cnull of Ty.t  (** null pointer of element type *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem  (** integer remainder *)
  | Min
  | Max
  | Pow  (** float only *)

type cmpop = Eq | Ne | Lt | Le | Gt | Ge

type unop =
  | Neg
  | Sqrt
  | Sin
  | Cos
  | Exp
  | Log
  | Abs
  | Floor
  | ToFloat  (** int -> float *)
  | ToInt  (** float -> int, truncating *)
  | Not  (** bool -> bool *)

type alloc_kind =
  | Stack  (** scoped to the enclosing region instance *)
  | Heap  (** freed explicitly *)
  | Gc  (** garbage collected (Julia-frontend arrays) *)

(** Static worksharing schedule: [Chunked] assigns each thread one
    contiguous chunk (LLVM's static schedule); [Cyclic] round-robins
    iterations. *)
type schedule = Chunked | Cyclic

type t =
  | Const of Var.t * const
  | Bin of Var.t * binop * Var.t * Var.t
  | Cmp of Var.t * cmpop * Var.t * Var.t
  | Un of Var.t * unop * Var.t
  | Select of Var.t * Var.t * Var.t * Var.t  (** dst, cond, if-true, if-false *)
  | Alloc of Var.t * Ty.t * Var.t * alloc_kind  (** dst, elem type, size *)
  | Free of Var.t
  | Load of Var.t * Var.t * Var.t  (** dst, ptr, index *)
  | Store of Var.t * Var.t * Var.t  (** ptr, index, value *)
  | Gep of Var.t * Var.t * Var.t  (** dst = ptr + index *)
  | AtomicAdd of Var.t * Var.t * Var.t  (** ptr, index, value (float) *)
  | Call of Var.t * string * Var.t list
  | If of Var.t list * Var.t * region * region
      (** results, cond, then-region, else-region; regions end in [Yield] *)
  | For of { iv : Var.t; lo : Var.t; hi : Var.t; step : Var.t; body : region }
      (** [for iv = lo; iv < hi; iv += step], step > 0 *)
  | While of { cond : region; body : region }
      (** [cond] yields one Bool; loop-carried state lives in memory *)
  | Fork of { tid : Var.t; nth : Var.t; body : region }
      (** parallel region over [nth] threads (0 = runtime default);
          body params are bound per thread: [tid] in \[0, width) *)
  | Workshare of {
      iv : Var.t;
      lo : Var.t;
      hi : Var.t;
      body : region;
      schedule : schedule;
      nowait : bool;
    }  (** worksharing loop; only valid inside a [Fork] body *)
  | Barrier  (** team barrier; only valid inside a [Fork] body *)
  | Spawn of Var.t * string * Var.t list
      (** dst = task handle; asynchronously run a named function *)
  | Sync of Var.t  (** wait for a task handle *)
  | Return of Var.t option
  | Yield of Var.t list  (** region terminator carrying region results *)

and region = { params : Var.t list; body : t list }

let region ?(params = []) body = { params; body }

(** [def i] is the variable defined by [i], if any. *)
let def = function
  | Const (v, _)
  | Bin (v, _, _, _)
  | Cmp (v, _, _, _)
  | Un (v, _, _)
  | Select (v, _, _, _)
  | Alloc (v, _, _, _)
  | Load (v, _, _)
  | Gep (v, _, _)
  | Call (v, _, _)
  | Spawn (v, _, _) -> Some v
  | Free _ | Store _ | AtomicAdd _ | If _ | For _ | While _ | Fork _
  | Workshare _ | Barrier | Sync _ | Return _ | Yield _ -> None

(** [defs i] is every variable defined by [i], including region results. *)
let defs = function If (rs, _, _, _) -> rs | i -> Option.to_list (def i)

(** [uses i] is the list of variables read by [i] itself (region bodies
    excluded; region parameters are definitions, not uses). *)
let uses = function
  | Const _ -> []
  | Bin (_, _, a, b) | Cmp (_, _, a, b) -> [ a; b ]
  | Un (_, _, a) -> [ a ]
  | Select (_, c, a, b) -> [ c; a; b ]
  | Alloc (_, _, n, _) -> [ n ]
  | Free p -> [ p ]
  | Load (_, p, i) -> [ p; i ]
  | Store (p, i, v) -> [ p; i; v ]
  | Gep (_, p, i) -> [ p; i ]
  | AtomicAdd (p, i, v) -> [ p; i; v ]
  | Call (_, _, args) | Spawn (_, _, args) -> args
  | If (_, c, _, _) -> [ c ]
  | For { lo; hi; step; _ } -> [ lo; hi; step ]
  | While _ -> []
  | Fork { nth; _ } -> [ nth ]
  | Workshare { lo; hi; _ } -> [ lo; hi ]
  | Barrier -> []
  | Sync t -> [ t ]
  | Return None | Yield [] -> []
  | Return (Some v) -> [ v ]
  | Yield vs -> vs

(** Sub-regions of [i], outermost first. *)
let regions = function
  | If (_, _, t, e) -> [ t; e ]
  | For { body; _ } | Fork { body; _ } | Workshare { body; _ } -> [ body ]
  | While { cond; body } -> [ cond; body ]
  | Const _ | Bin _ | Cmp _ | Un _ | Select _ | Alloc _ | Free _ | Load _
  | Store _ | Gep _ | AtomicAdd _ | Call _ | Spawn _ | Sync _ | Barrier
  | Return _ | Yield _ -> []

(** Fold [f] over every instruction in [body], recursing into regions,
    in forward program order. *)
let rec fold_instrs f acc body =
  List.fold_left
    (fun acc i ->
      let acc = f acc i in
      List.fold_left (fun acc r -> fold_instrs f acc r.body) acc (regions i))
    acc body

let iter_instrs f body = fold_instrs (fun () i -> f i) () body

let binop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | Min -> "min"
  | Max -> "max"
  | Pow -> "pow"

let cmpop_name = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"

let unop_name = function
  | Neg -> "neg"
  | Sqrt -> "sqrt"
  | Sin -> "sin"
  | Cos -> "cos"
  | Exp -> "exp"
  | Log -> "log"
  | Abs -> "abs"
  | Floor -> "floor"
  | ToFloat -> "tofloat"
  | ToInt -> "toint"
  | Not -> "not"
