(** Human-readable IR printer (LLVM-flavoured). *)

open Instr

let pp_const ppf = function
  | Cunit -> Fmt.string ppf "unit"
  | Cbool x -> Fmt.bool ppf x
  | Cint x -> Fmt.int ppf x
  | Cfloat x -> Fmt.pf ppf "%h" x
  | Cnull t -> Fmt.pf ppf "null<%a>" Ty.pp t

let pp_vars = Fmt.(list ~sep:comma Var.pp)

let rec pp_instr ind ppf i =
  let pad ppf = Fmt.pf ppf "%s" (String.make ind ' ') in
  match i with
  | Const (v, c) -> Fmt.pf ppf "%t%a = const %a" pad Var.pp v pp_const c
  | Bin (v, op, a, b) ->
    Fmt.pf ppf "%t%a = %s %a, %a" pad Var.pp v (binop_name op) Var.pp a Var.pp b
  | Cmp (v, op, a, b) ->
    Fmt.pf ppf "%t%a = cmp.%s %a, %a" pad Var.pp v (cmpop_name op) Var.pp a
      Var.pp b
  | Un (v, op, a) -> Fmt.pf ppf "%t%a = %s %a" pad Var.pp v (unop_name op) Var.pp a
  | Select (v, c, a, b) ->
    Fmt.pf ppf "%t%a = select %a, %a, %a" pad Var.pp v Var.pp c Var.pp a Var.pp b
  | Alloc (v, t, n, k) ->
    let ks = match k with Stack -> "stack" | Heap -> "heap" | Gc -> "gc" in
    Fmt.pf ppf "%t%a = alloc.%s %a x %a" pad Var.pp v ks Ty.pp t Var.pp n
  | Free p -> Fmt.pf ppf "%tfree %a" pad Var.pp p
  | Load (v, p, ix) -> Fmt.pf ppf "%t%a = load %a[%a]" pad Var.pp v Var.pp p Var.pp ix
  | Store (p, ix, x) -> Fmt.pf ppf "%tstore %a[%a] <- %a" pad Var.pp p Var.pp ix Var.pp x
  | Gep (v, p, ix) -> Fmt.pf ppf "%t%a = gep %a, %a" pad Var.pp v Var.pp p Var.pp ix
  | AtomicAdd (p, ix, x) ->
    Fmt.pf ppf "%tatomic.add %a[%a] += %a" pad Var.pp p Var.pp ix Var.pp x
  | Call (v, f, args) ->
    Fmt.pf ppf "%t%a = call @%s(%a)" pad Var.pp v f pp_vars args
  | Spawn (v, f, args) ->
    Fmt.pf ppf "%t%a = spawn @%s(%a)" pad Var.pp v f pp_vars args
  | Sync t -> Fmt.pf ppf "%tsync %a" pad Var.pp t
  | If (rs, c, t, e) ->
    Fmt.pf ppf "%t%a = if %a {@\n%a@\n%t} else {@\n%a@\n%t}" pad pp_vars rs
      Var.pp c (pp_region (ind + 2)) t pad (pp_region (ind + 2)) e pad
  | For { iv; lo; hi; step; body } ->
    Fmt.pf ppf "%tfor %a = %a to %a step %a {@\n%a@\n%t}" pad Var.pp iv Var.pp
      lo Var.pp hi Var.pp step (pp_region (ind + 2)) body pad
  | While { cond; body } ->
    Fmt.pf ppf "%twhile {@\n%a@\n%t} do {@\n%a@\n%t}" pad
      (pp_region (ind + 2)) cond pad (pp_region (ind + 2)) body pad
  | Fork { tid = _; nth; body } ->
    Fmt.pf ppf "%tfork[%a] (%a) {@\n%a@\n%t}" pad Var.pp nth pp_vars
      body.params (pp_region (ind + 2)) body pad
  | Workshare { iv; lo; hi; body; schedule; nowait } ->
    Fmt.pf ppf "%tworkshare%s%s %a = %a to %a {@\n%a@\n%t}" pad
      (match schedule with Chunked -> "" | Cyclic -> ".cyclic")
      (if nowait then ".nowait" else "")
      Var.pp iv Var.pp lo Var.pp hi (pp_region (ind + 2)) body pad
  | Barrier -> Fmt.pf ppf "%tbarrier" pad
  | Return None -> Fmt.pf ppf "%treturn" pad
  | Return (Some v) -> Fmt.pf ppf "%treturn %a" pad Var.pp v
  | Yield vs -> Fmt.pf ppf "%tyield %a" pad pp_vars vs

and pp_region ind ppf (r : region) =
  Fmt.pf ppf "%a"
    (Fmt.list ~sep:(Fmt.any "@\n") (pp_instr ind))
    r.body

let pp_func ppf (f : Func.t) =
  let pp_param ppf (v, (a : Func.attr)) =
    Fmt.pf ppf "%a%s%s" Var.pp_typed v
      (if a.noalias then " noalias" else "")
      (if a.readonly then " readonly" else "")
  in
  Fmt.pf ppf "func @%s(%a) -> %a {@\n%a@\n}" f.name
    Fmt.(list ~sep:comma pp_param)
    (List.combine f.params f.attrs)
    Ty.pp f.ret_ty
    (Fmt.list ~sep:(Fmt.any "@\n") (pp_instr 2))
    f.body

let pp_prog ppf p =
  Fmt.pf ppf "%a"
    (Fmt.list ~sep:(Fmt.any "@\n@\n") pp_func)
    (Prog.functions p)

let func_to_string f = Fmt.str "%a" pp_func f
let prog_to_string p = Fmt.str "%a" pp_prog p
