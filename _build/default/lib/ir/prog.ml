(** A program: a set of functions, analogous to an LLVM module. *)

type t = { funcs : (string, Func.t) Hashtbl.t; mutable order : string list }

let create () = { funcs = Hashtbl.create 16; order = [] }

let add p (f : Func.t) =
  if not (Hashtbl.mem p.funcs f.name) then p.order <- f.name :: p.order;
  Hashtbl.replace p.funcs f.name f

let find p name = Hashtbl.find_opt p.funcs name

let find_exn p name =
  match find p name with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Prog.find_exn: no function %S" name)

let mem p name = Hashtbl.mem p.funcs name
let functions p = List.rev_map (Hashtbl.find p.funcs) p.order

(** A deep copy sharing no mutable structure (function bodies are
    immutable, so only the table is copied). *)
let copy p = { funcs = Hashtbl.copy p.funcs; order = p.order }
