(** Types of SSA values and memory buffers.

    The IR is a small, typed, SSA-register machine in the spirit of LLVM IR
    after lowering: scalar integers and floats, booleans (i1), and typed
    pointers into homogeneous buffers. Buffers of pointers are allowed so
    that descriptor-based arrays (the Julia-frontend indirection) can be
    expressed. *)

type t =
  | Unit
  | Bool
  | Int
  | Float
  | Ptr of t  (** pointer into a buffer whose cells have the element type *)

let rec equal a b =
  match a, b with
  | Unit, Unit | Bool, Bool | Int, Int | Float, Float -> true
  | Ptr a, Ptr b -> equal a b
  | (Unit | Bool | Int | Float | Ptr _), _ -> false

let rec pp ppf = function
  | Unit -> Fmt.string ppf "unit"
  | Bool -> Fmt.string ppf "i1"
  | Int -> Fmt.string ppf "i64"
  | Float -> Fmt.string ppf "f64"
  | Ptr t -> Fmt.pf ppf "%a*" pp t

let to_string t = Fmt.str "%a" pp t

let is_ptr = function Ptr _ -> true | Unit | Bool | Int | Float -> false

let elem = function
  | Ptr t -> t
  | (Unit | Bool | Int | Float) as t ->
    invalid_arg (Fmt.str "Ty.elem: %a is not a pointer" pp t)
