(** SSA variables.

    Identifiers are dense and local to their enclosing function: the builder
    numbers them from 0, and the interpreter uses them to index frame
    arrays. Names are for printing only. *)

type t = { id : int; ty : Ty.t; name : string }

let make ~id ~ty ~name = { id; ty; name }
let id v = v.id
let ty v = v.ty
let name v = v.name
let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id
let pp ppf v = Fmt.pf ppf "%%%s.%d" v.name v.id
let pp_typed ppf v = Fmt.pf ppf "%a : %a" pp v Ty.pp v.ty

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)
