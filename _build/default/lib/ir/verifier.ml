(** IR well-formedness checks: SSA single definition, defs dominate uses
    (lexically, which is dominance in a structured IR), type agreement,
    region terminators, and placement rules for parallel constructs
    ([Workshare]/[Barrier] only inside [Fork], no nested [Fork], no [While]
    inside parallel regions — a documented restriction of the caching
    planner). *)

open Instr

exception Ill_formed of string

let fail fmt = Fmt.kstr (fun s -> raise (Ill_formed s)) fmt

type ctx = { in_fork : bool; in_loop : bool }

let check_ty what got want =
  if not (Ty.equal got want) then
    fail "%s: expected %a, got %a" what Ty.pp want Ty.pp got

let rec check_region (f : Func.t) ctx defined (r : region) ~terminator =
  let defined = ref defined in
  let define v =
    if Var.id v < 0 || Var.id v >= f.var_count then
      fail "%s: var %a out of range" f.name Var.pp v;
    if Var.Set.mem v !defined then
      fail "%s: variable %a defined twice" f.name Var.pp v;
    defined := Var.Set.add v !defined
  in
  List.iter define r.params;
  let use v =
    if not (Var.Set.mem v !defined) then
      fail "%s: use of undefined variable %a" f.name Var.pp v
  in
  let n = List.length r.body in
  List.iteri
    (fun idx i ->
      let is_last = idx = n - 1 in
      (match i with
      | Return _ when not is_last ->
        fail "%s: return not in tail position" f.name
      | Yield _ when not is_last -> fail "%s: yield not in tail position" f.name
      | _ -> ());
      List.iter use (uses i);
      check_instr f ctx !defined i;
      List.iter define (defs i))
    r.body;
  (* terminator discipline *)
  (match terminator, List.rev r.body with
  | `Return, Return r :: _ ->
    (match r, f.ret_ty with
    | None, Ty.Unit -> ()
    | Some v, t -> check_ty (f.name ^ ": return") (Var.ty v) t
    | None, t -> fail "%s: missing return value of type %a" f.name Ty.pp t)
  | `Return, _ -> fail "%s: body must end in return" f.name
  | `Yield tys, Yield vs :: _ ->
    if List.length vs <> List.length tys then
      fail "%s: yield arity mismatch" f.name;
    List.iter2 (fun v t -> check_ty (f.name ^ ": yield") (Var.ty v) t) vs tys
  | `Yield _, _ -> fail "%s: region must end in yield" f.name
  | `None, (Yield _ :: _ | Return _ :: _) ->
    fail "%s: unexpected terminator in plain region" f.name
  | `None, _ -> ());
  ()

and check_instr f ctx defined i =
  let t v = Var.ty v in
  match i with
  | Const (v, c) ->
    let want =
      match c with
      | Cunit -> Ty.Unit
      | Cbool _ -> Ty.Bool
      | Cint _ -> Ty.Int
      | Cfloat _ -> Ty.Float
      | Cnull e -> Ty.Ptr e
    in
    check_ty "const" (t v) want
  | Bin (v, op, a, b) ->
    check_ty "bin lhs/rhs" (t a) (t b);
    check_ty "bin result" (t v) (t a);
    (match op, t a with
    | Pow, Ty.Float -> ()
    | Pow, ty -> fail "pow on %a" Ty.pp ty
    | Rem, Ty.Int -> ()
    | Rem, ty -> fail "rem on %a" Ty.pp ty
    | (Add | Sub | Mul | Div | Min | Max), (Ty.Int | Ty.Float) -> ()
    | (Add | Sub | Mul | Div | Min | Max), ty ->
      fail "arith on %a" Ty.pp ty)
  | Cmp (v, _, a, b) ->
    check_ty "cmp operands" (t a) (t b);
    check_ty "cmp result" (t v) Ty.Bool
  | Un (v, op, a) -> (
    match op with
    | Neg ->
      (match t a with
      | Ty.Int | Ty.Float -> ()
      | ty -> fail "neg on %a" Ty.pp ty);
      check_ty "neg" (t v) (t a)
    | Abs ->
      (match t a with
      | Ty.Int | Ty.Float -> ()
      | ty -> fail "abs on %a" Ty.pp ty);
      check_ty "abs" (t v) (t a)
    | Sqrt | Sin | Cos | Exp | Log | Floor ->
      check_ty "float unop arg" (t a) Ty.Float;
      check_ty "float unop" (t v) Ty.Float
    | ToFloat ->
      check_ty "tofloat arg" (t a) Ty.Int;
      check_ty "tofloat" (t v) Ty.Float
    | ToInt ->
      check_ty "toint arg" (t a) Ty.Float;
      check_ty "toint" (t v) Ty.Int
    | Not ->
      check_ty "not arg" (t a) Ty.Bool;
      check_ty "not" (t v) Ty.Bool)
  | Select (v, c, a, b) ->
    check_ty "select cond" (t c) Ty.Bool;
    check_ty "select arms" (t a) (t b);
    check_ty "select result" (t v) (t a)
  | Alloc (v, ty, n, _) ->
    check_ty "alloc size" (t n) Ty.Int;
    check_ty "alloc result" (t v) (Ty.Ptr ty)
  | Free p ->
    if not (Ty.is_ptr (t p)) then fail "free of non-pointer"
  | Load (v, p, ix) ->
    if not (Ty.is_ptr (t p)) then fail "load of non-pointer";
    check_ty "load index" (t ix) Ty.Int;
    check_ty "load result" (t v) (Ty.elem (t p))
  | Store (p, ix, x) ->
    if not (Ty.is_ptr (t p)) then fail "store to non-pointer";
    check_ty "store index" (t ix) Ty.Int;
    check_ty "store value" (t x) (Ty.elem (t p))
  | Gep (v, p, ix) ->
    if not (Ty.is_ptr (t p)) then fail "gep of non-pointer";
    check_ty "gep index" (t ix) Ty.Int;
    check_ty "gep result" (t v) (t p)
  | AtomicAdd (p, ix, x) ->
    check_ty "atomic.add ptr" (t p) (Ty.Ptr Ty.Float);
    check_ty "atomic.add index" (t ix) Ty.Int;
    check_ty "atomic.add value" (t x) Ty.Float
  | Call _ | Spawn _ ->
    (* Signatures of user functions and intrinsics are checked by the
       interpreter at dispatch; cross-module checking would need the
       whole program here. *)
    ()
  | Sync h -> check_ty "sync handle" (t h) Ty.Int
  | If (rs, c, then_r, else_r) ->
    check_ty "if cond" (t c) Ty.Bool;
    let tys = List.map t rs in
    check_region f ctx defined then_r ~terminator:(`Yield tys);
    check_region f ctx defined else_r ~terminator:(`Yield tys)
  | For { iv; lo; hi; step; body } ->
    check_ty "for lo" (t lo) Ty.Int;
    check_ty "for hi" (t hi) Ty.Int;
    check_ty "for step" (t step) Ty.Int;
    check_ty "for iv" (t iv) Ty.Int;
    (match body.params with
    | [ p ] when Var.equal p iv -> ()
    | _ -> fail "for body params must be [iv]");
    check_region f { ctx with in_loop = true } defined body ~terminator:`None
  | While { cond; body } ->
    if ctx.in_fork then fail "%s: while inside a parallel region" f.name;
    check_region f { ctx with in_loop = true } defined cond
      ~terminator:(`Yield [ Ty.Bool ]);
    check_region f { ctx with in_loop = true } defined body ~terminator:`None
  | Fork { tid; nth; body } ->
    if ctx.in_fork then fail "%s: nested fork" f.name;
    check_ty "fork width" (t nth) Ty.Int;
    (match body.params with
    | [ p; q ] when Var.equal p tid && Ty.equal (t q) Ty.Int -> ()
    | _ -> fail "fork body params must be [tid; nth]");
    check_region f { ctx with in_fork = true } defined body ~terminator:`None
  | Workshare { iv; lo; hi; body; _ } ->
    if not ctx.in_fork then fail "%s: workshare outside fork" f.name;
    check_ty "workshare lo" (t lo) Ty.Int;
    check_ty "workshare hi" (t hi) Ty.Int;
    (match body.params with
    | [ p ] when Var.equal p iv -> ()
    | _ -> fail "workshare body params must be [iv]");
    check_region f ctx defined body ~terminator:`None
  | Barrier -> if not ctx.in_fork then fail "%s: barrier outside fork" f.name
  | Return _ | Yield _ -> ()

let check_func f =
  let defined = List.fold_left (fun s v -> Var.Set.add v s) Var.Set.empty [] in
  let r = { params = f.Func.params; body = f.Func.body } in
  check_region f { in_fork = false; in_loop = false } defined r
    ~terminator:`Return

let check_prog p = List.iter check_func (Prog.functions p)

(** [check_prog_result p] is [Ok ()] or [Error message]. *)
let check_prog_result p =
  match check_prog p with () -> Ok () | exception Ill_formed m -> Error m
