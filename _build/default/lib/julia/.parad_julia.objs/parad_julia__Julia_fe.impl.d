lib/julia/julia_fe.ml: Builder Instr Parad_ir Ty Var
