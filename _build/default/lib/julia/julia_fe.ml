(** Julia-analog frontend.

    Models the three Julia properties the paper's evaluation isolates:

    - {b Arrays carry an extra pointer indirection}: a GC-allocated
      descriptor cell holds the data pointer, and element access loads the
      data pointer first. Alias analysis cannot track loaded pointers, so
      the AD planner must cache them per iteration — the source of the
      Julia variants' higher gradient overhead (§VIII).
    - {b Shared-memory parallelism is task-based} ([Threads.@threads]):
      a parallel for spawns chunk tasks and waits for them; task shadows
      are not thread-local, so adjoint accumulation is atomic (§VI-A1).
    - {b Foreign (MPI) calls need GC preservation} ([GC.@preserve]): the
      MPI.jl-style wrappers bracket communication with
      [gc.preserve_begin]/[gc.preserve_end]; the AD engine extends the
      preservation to shadows and mirrors it in the reverse pass
      (§VI-C2). *)

open Parad_ir
module B = Builder

(** A Julia array value: the descriptor (a 1-cell GC buffer of pointers),
    the data pointer loaded from it, and its static length expression.

    The data-pointer load happens once where the array enters scope (as
    Julia's compiler hoists `pointer(arr)`), so the *primal* pays the
    indirection only once per function — but because that pointer was
    loaded from memory, the AD planner's alias analysis cannot prove the
    pointee unchanged and must cache values loaded through it (§VIII). *)
type arr = { desc : Var.t; data : Var.t; len : Var.t }

let desc_ty = Ty.Ptr (Ty.Ptr Ty.Float)

(** Allocate a fresh array of [len] float zeros (GC-managed, with the
    descriptor indirection). *)
let zeros b len =
  let d = B.alloc b ~kind:Instr.Gc Ty.Float len in
  let desc = B.alloc b ~kind:Instr.Gc (Ty.Ptr Ty.Float) (B.i64 b 1) in
  B.store b desc (B.i64 b 0) d;
  { desc; data = B.load b desc (B.i64 b 0); len }

(** View a descriptor passed as a function parameter as an array (loads
    the data pointer once, at function entry). *)
let of_param b desc ~len = { desc; data = B.load b desc (B.i64 b 0); len }

let data _b (a : arr) = a.data
let get b (a : arr) i = B.load b a.data i
let set b (a : arr) i v = B.store b a.data i v

(** [Threads.@threads]-style parallel for: spawn [ntasks] chunk tasks
    running [worker] and wait for all of them. The worker function
    receives [args @ [chunk_lo; chunk_hi]] and must return unit. *)
let threads_for b ~worker ~args ~lo ~hi ~ntasks =
  let handles = B.alloc b Ty.Int ntasks in
  let len = B.sub b hi lo in
  B.for_n b ntasks (fun t ->
      let clo = B.add b lo (B.div b (B.mul b len t) ntasks) in
      let chi =
        B.add b lo (B.div b (B.mul b len (B.add b t (B.i64 b 1))) ntasks)
      in
      let h = B.spawn b worker (args @ [ clo; chi ]) in
      B.store b handles t h);
  B.for_n b ntasks (fun t -> B.sync b (B.load b handles t));
  B.free b handles

(* ---- MPI.jl-style wrappers: foreign calls under GC.@preserve ---- *)

(** Nonblocking send of a whole array; returns (request, preserve token).
    The preservation models MPI.jl keeping the buffer alive across the
    foreign call until the wait. *)
let isend b (a : arr) ~dst ~tag =
  let d = data b a in
  let tok = B.call b ~ret:Ty.Int "gc.preserve_begin" [ d ] in
  let req = B.call b ~ret:Ty.Int "mpi.isend" [ d; a.len; dst; tag ] in
  req, tok

let irecv b (a : arr) ~src ~tag =
  let d = data b a in
  let tok = B.call b ~ret:Ty.Int "gc.preserve_begin" [ d ] in
  let req = B.call b ~ret:Ty.Int "mpi.irecv" [ d; a.len; src; tag ] in
  req, tok

let wait b (req, tok) =
  ignore (B.call b ~ret:Ty.Unit "mpi.wait" [ req ]);
  ignore (B.call b ~ret:Ty.Unit "gc.preserve_end" [ tok ])

let allreduce_sum b ~(send : arr) ~(recv : arr) =
  let ds = data b send and dr = data b recv in
  let tok = B.call b ~ret:Ty.Int "gc.preserve_begin" [ ds; dr ] in
  ignore (B.call b ~ret:Ty.Unit "mpi.allreduce_sum" [ ds; dr; send.len ]);
  ignore (B.call b ~ret:Ty.Unit "gc.preserve_end" [ tok ])

let allreduce_min b ~(send : arr) ~(recv : arr) =
  let ds = data b send and dr = data b recv in
  let tok = B.call b ~ret:Ty.Int "gc.preserve_begin" [ ds; dr ] in
  ignore (B.call b ~ret:Ty.Unit "mpi.allreduce_min" [ ds; dr; send.len ]);
  ignore (B.call b ~ret:Ty.Unit "gc.preserve_end" [ tok ])
