lib/opt/inline.ml: Array Func Hashtbl Instr List Option Parad_ir Prog Rewrite String Var
