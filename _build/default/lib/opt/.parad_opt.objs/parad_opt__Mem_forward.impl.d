lib/opt/mem_forward.ml: Fun Func Hashtbl Instr List Parad_ir Rewrite Ty Var
