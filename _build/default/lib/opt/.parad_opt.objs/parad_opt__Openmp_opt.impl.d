lib/opt/openmp_opt.ml: Func Hashtbl Instr List Parad_ir Rewrite Var
