lib/opt/passes.ml: Array Fmt Func Hashtbl Instr List Parad_ir Rewrite Var
