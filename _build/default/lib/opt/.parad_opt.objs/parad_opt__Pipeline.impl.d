lib/opt/pipeline.ml: Fmt Func Inline List Mem_forward Openmp_opt Parad_ir Passes Prog Verifier
