lib/opt/rewrite.ml: Func Instr List Option Parad_ir Ty Var
