(** Function inlining. Differentiating after inlining gives the AD engine
    whole-kernel visibility (Enzyme inlines aggressively for the same
    reason); the pre-AD-optimization ablation measures its effect. *)

open Parad_ir
open Rewrite

let body_size (f : Func.t) = Instr.fold_instrs (fun n _ -> n + 1) 0 f.body

let rec has_parallel instrs =
  List.exists
    (fun (i : Instr.t) ->
      match i with
      | Instr.Fork _ | Instr.Workshare _ | Instr.Barrier | Instr.Spawn _
      | Instr.Sync _ -> true
      | _ ->
        List.exists
          (fun (r : Instr.region) -> has_parallel r.Instr.body)
          (Instr.regions i))
    instrs

(* Remap every variable (defs, uses, region params) through [remap]. *)
let rec remap_instrs remap instrs =
  List.map
    (fun (i : Instr.t) ->
      let open Instr in
      let r = remap in
      let i =
        match i with
        | Const (v, c) -> Const (r v, c)
        | Bin (v, op, a, b) -> Bin (r v, op, r a, r b)
        | Cmp (v, op, a, b) -> Cmp (r v, op, r a, r b)
        | Un (v, op, a) -> Un (r v, op, r a)
        | Select (v, c, a, b) -> Select (r v, r c, r a, r b)
        | Alloc (v, t, n, k) -> Alloc (r v, t, r n, k)
        | Free p -> Free (r p)
        | Load (v, p, ix) -> Load (r v, r p, r ix)
        | Store (p, ix, x) -> Store (r p, r ix, r x)
        | Gep (v, p, ix) -> Gep (r v, r p, r ix)
        | AtomicAdd (p, ix, x) -> AtomicAdd (r p, r ix, r x)
        | Call (v, g, args) -> Call (r v, g, List.map r args)
        | Spawn (v, g, args) -> Spawn (r v, g, List.map r args)
        | Sync h -> Sync (r h)
        | If (rs, c, t, e) -> If (List.map r rs, r c, t, e)
        | For x ->
          For { x with iv = r x.iv; lo = r x.lo; hi = r x.hi; step = r x.step }
        | While _ -> i
        | Fork x -> Fork { x with tid = r x.tid; nth = r x.nth }
        | Workshare x ->
          Workshare { x with iv = r x.iv; lo = r x.lo; hi = r x.hi }
        | Barrier -> Barrier
        | Return v -> Return (Option.map r v)
        | Yield vs -> Yield (List.map r vs)
      in
      with_regions i
        (List.map
           (fun (reg : Instr.region) ->
             {
               Instr.params = List.map r reg.Instr.params;
               body = remap_instrs remap reg.Instr.body;
             })
           (Instr.regions i)))
    instrs

(* Clone a callee body with fresh ids, substituting arguments; returns the
   cloned instructions (Return stripped) and the return variable. *)
let instantiate ctx (g : Func.t) (args : Var.t list) =
  let map = Array.make g.var_count None in
  List.iter2 (fun p a -> map.(Var.id p) <- Some a) g.params args;
  let remap v =
    if Var.id v >= Array.length map then v
    else
      match map.(Var.id v) with
      | Some v' -> v'
      | None ->
        let v' = fresh ctx (Var.ty v) (Var.name v) in
        map.(Var.id v) <- Some v';
        v'
  in
  let body = remap_instrs remap g.body in
  let rec strip = function
    | [ Instr.Return v ] -> [], v
    | i :: rest ->
      let rest', rv = strip rest in
      i :: rest', rv
    | [] -> [], None
  in
  strip body

(* Inline direct calls to small callees (never into a parallel region if
   the callee itself contains parallelism, and never self-recursively). *)
let inline_func ?(max_size = 200) (prog : Prog.t) (f : Func.t) : Func.t =
  let ctx = ctx_of f in
  let alias : (int, Var.t) Hashtbl.t = Hashtbl.create 8 in
  let rec go ~in_parallel instrs =
    List.concat_map
      (fun (i : Instr.t) ->
        match i with
        | Instr.Call (v, gname, args) when not (String.contains gname '.') -> (
          match Prog.find prog gname with
          | Some g
            when body_size g <= max_size
                 && gname <> f.name
                 && not (in_parallel && has_parallel g.body) ->
            let body, ret = instantiate ctx g args in
            let body = go ~in_parallel body in
            (match ret with
            | Some rv -> Hashtbl.replace alias (Var.id v) rv
            | None -> ());
            body
          | _ -> [ i ])
        | i ->
          let par =
            in_parallel
            || match i with Instr.Fork _ -> true | _ -> false
          in
          [
            with_regions i
              (List.map
                 (fun (r : Instr.region) ->
                   { r with Instr.body = go ~in_parallel:par r.Instr.body })
                 (Instr.regions i));
          ])
      instrs
  in
  let body = go ~in_parallel:false f.body in
  let rec sub v =
    match Hashtbl.find_opt alias (Var.id v) with
    | Some v' -> sub v'
    | None -> v
  in
  let body = subst_deep sub body in
  Func.make ~name:f.name ~params:f.params ~attrs:f.attrs ~ret_ty:f.ret_ty
    ~body ~var_count:ctx.next
