(** Store-to-load forwarding and dead-store elimination for non-escaping
    allocations accessed at constant indices.

    The reverse-mode transform materializes SSA adjoints as slots in an
    "adjoint register" buffer; a real compiler (LLVM's SROA/mem2reg, which
    Enzyme relies on) promotes those slots to registers. This pass models
    that: within a straight-line segment, a load from a non-escaping
    allocation at a known constant index is replaced by the last value
    stored there, and stores that are overwritten (or freed) before any
    possible read are deleted. Knowledge is dropped at region boundaries
    and barriers (other strands may observe captured pointers there), so
    the transformation is conservative for parallel code. *)

open Parad_ir
open Rewrite

module IH = Hashtbl

(* bases eligible for tracking: Alloc results used only as the direct
   pointer of Load/Store/AtomicAdd/Free *)
let eligible_bases (f : Func.t) =
  let alloc : (int, unit) IH.t = IH.create 16 in
  let bad : (int, unit) IH.t = IH.create 16 in
  Instr.iter_instrs
    (fun i ->
      (match i with
      | Instr.Alloc (v, _, _, _) -> IH.replace alloc (Var.id v) ()
      | _ -> ());
      let direct_ptr =
        match i with
        | Instr.Load (_, p, _) | Instr.Store (p, _, _)
        | Instr.AtomicAdd (p, _, _) | Instr.Free p -> Some (Var.id p)
        | _ -> None
      in
      List.iter
        (fun u ->
          if Some (Var.id u) <> direct_ptr && Ty.is_ptr (Var.ty u) then
            IH.replace bad (Var.id u) ())
        (Instr.uses i))
    f.body;
  fun id -> IH.mem alloc id && not (IH.mem bad id)

let run_func (f : Func.t) : Func.t =
  let eligible = eligible_bases f in
  let consts : (int, int) IH.t = IH.create 64 in
  Instr.iter_instrs
    (fun i ->
      match i with
      | Instr.Const (v, Instr.Cint x) -> IH.replace consts (Var.id v) x
      | _ -> ())
    f.body;
  let cint v = IH.find_opt consts (Var.id v) in
  let alias : (int, Var.t) IH.t = IH.create 32 in
  let rec sub v =
    match IH.find_opt alias (Var.id v) with
    | Some v' -> sub v'
    | None -> v
  in
  (* process one instruction list as a sequence of segments *)
  let rec go instrs =
    (* known: (base id, idx) -> value var; pending: (base id, idx) ->
       store cell ref (set to None if the store turns out dead) *)
    let known : (int * int, Var.t) IH.t = IH.create 32 in
    let pending : (int * int, Instr.t option ref) IH.t = IH.create 32 in
    let observe_all () = IH.reset pending in
    let clear_base b =
      IH.filter_map_inplace
        (fun (b', _) v -> if b' = b then None else Some v)
        known;
      IH.filter_map_inplace
        (fun (b', _) v -> if b' = b then None else Some v)
        pending
    in
    let out : Instr.t option ref list ref = ref [] in
    let emit i =
      let cell = ref (Some i) in
      out := cell :: !out;
      cell
    in
    List.iter
      (fun (i : Instr.t) ->
        let i = map_uses sub i in
        let has_regions = Instr.regions i <> [] in
        if has_regions then begin
          (* bodies may read and write everything reachable *)
          observe_all ();
          IH.reset known;
          let i =
            with_regions i
              (List.map
                 (fun (r : Instr.region) -> { r with Instr.body = go r.body })
                 (Instr.regions i))
          in
          ignore (emit i)
        end
        else
          match i with
          | Instr.Store (p, ix, x) when eligible (Var.id p) -> (
            match cint ix with
            | Some idx ->
              let key = Var.id p, idx in
              (* previous unobserved store to the same cell is dead *)
              (match IH.find_opt pending key with
              | Some cell -> cell := None
              | None -> ());
              IH.replace known key (sub x);
              IH.replace pending key (emit i)
            | None ->
              clear_base (Var.id p);
              ignore (emit i))
          | Instr.Load (v, p, ix) when eligible (Var.id p) -> (
            match cint ix with
            | Some idx -> (
              match IH.find_opt known (Var.id p, idx) with
              | Some value -> IH.replace alias (Var.id v) value
              | None ->
                (* reading an unknown cell observes all pending stores to
                   this base *)
                IH.filter_map_inplace
                  (fun (b, _) c ->
                    if b = Var.id p then None else Some c)
                  pending;
                IH.replace known (Var.id p, idx) v;
                ignore (emit i))
            | None ->
              IH.filter_map_inplace
                (fun (b, _) c -> if b = Var.id p then None else Some c)
                pending;
              ignore (emit i))
          | Instr.AtomicAdd (p, _, _) when eligible (Var.id p) ->
            clear_base (Var.id p);
            ignore (emit i)
          | Instr.Free p when eligible (Var.id p) ->
            (* stores never observed before the free are dead *)
            IH.iter
              (fun (b, _) cell -> if b = Var.id p then cell := None)
              pending;
            clear_base (Var.id p);
            ignore (emit i)
          | Instr.Barrier ->
            observe_all ();
            IH.reset known;
            ignore (emit i)
          | Instr.Return _ | Instr.Yield _ ->
            observe_all ();
            ignore (emit i)
          | i -> ignore (emit i))
      instrs;
    List.rev_map (fun cell -> !cell) !out |> List.filter_map Fun.id
  in
  let body = go f.body in
  { f with body = subst_deep sub body }
