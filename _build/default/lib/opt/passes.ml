(** Scalar and loop optimization passes: constant folding with algebraic
    simplification, common-subexpression elimination, dead-code
    elimination, and loop-invariant code motion (including loads when the
    loop body is store-free).

    Running these *before* differentiation shrinks both the primal and the
    generated adjoint (paper §V-E); the benchmark harness measures that
    ablation. *)

open Parad_ir
open Rewrite

(* ---- constant folding + algebraic simplification ---- *)

type cval = CI of int | CF of float | CB of bool

let fold_func (f : Func.t) : Func.t =
  let consts : (int, cval) Hashtbl.t = Hashtbl.create 64 in
  let alias : (int, Var.t) Hashtbl.t = Hashtbl.create 16 in
  let rec sub v =
    match Hashtbl.find_opt alias (Var.id v) with
    | Some v' -> sub v'
    | None -> v
  in
  let cv v = Hashtbl.find_opt consts (Var.id (sub v)) in
  let rec go instrs =
    List.filter_map
      (fun i ->
        let i = map_uses sub i in
        let open Instr in
        let keep_const v c k =
          Hashtbl.replace consts (Var.id v) k;
          Some (Const (v, c))
        in
        match i with
        | Const (v, Cint x) ->
          Hashtbl.replace consts (Var.id v) (CI x);
          Some i
        | Const (v, Cfloat x) ->
          Hashtbl.replace consts (Var.id v) (CF x);
          Some i
        | Const (v, Cbool x) ->
          Hashtbl.replace consts (Var.id v) (CB x);
          Some i
        | Bin (v, op, a, b) -> (
          match op, cv a, cv b with
          | Add, Some (CI x), Some (CI y) -> keep_const v (Cint (x + y)) (CI (x + y))
          | Sub, Some (CI x), Some (CI y) -> keep_const v (Cint (x - y)) (CI (x - y))
          | Mul, Some (CI x), Some (CI y) -> keep_const v (Cint (x * y)) (CI (x * y))
          | Min, Some (CI x), Some (CI y) ->
            keep_const v (Cint (min x y)) (CI (min x y))
          | Max, Some (CI x), Some (CI y) ->
            keep_const v (Cint (max x y)) (CI (max x y))
          | Add, Some (CF x), Some (CF y) -> keep_const v (Cfloat (x +. y)) (CF (x +. y))
          | Sub, Some (CF x), Some (CF y) -> keep_const v (Cfloat (x -. y)) (CF (x -. y))
          | Mul, Some (CF x), Some (CF y) -> keep_const v (Cfloat (x *. y)) (CF (x *. y))
          | Div, Some (CF x), Some (CF y) -> keep_const v (Cfloat (x /. y)) (CF (x /. y))
          | (Add | Sub), _, Some (CI 0) | Mul, _, Some (CI 1)
          | Div, _, Some (CI 1) ->
            Hashtbl.replace alias (Var.id v) (sub a);
            None
          | Add, Some (CI 0), _ | Mul, Some (CI 1), _ ->
            Hashtbl.replace alias (Var.id v) (sub b);
            None
          | Mul, Some (CI 0), _ ->
            Hashtbl.replace alias (Var.id v) (sub a);
            None
          | Mul, _, Some (CI 0) ->
            Hashtbl.replace alias (Var.id v) (sub b);
            None
          | (Add | Sub), _, Some (CF 0.0) | (Mul | Div), _, Some (CF 1.0) ->
            Hashtbl.replace alias (Var.id v) (sub a);
            None
          | Add, Some (CF 0.0), _ | Mul, Some (CF 1.0), _ ->
            Hashtbl.replace alias (Var.id v) (sub b);
            None
          | _ -> Some i)
        | Un (v, op, a) -> (
          match op, cv a with
          | Neg, Some (CI x) -> keep_const v (Cint (-x)) (CI (-x))
          | Neg, Some (CF x) -> keep_const v (Cfloat (-.x)) (CF (-.x))
          | ToFloat, Some (CI x) ->
            keep_const v (Cfloat (float_of_int x)) (CF (float_of_int x))
          | Not, Some (CB x) -> keep_const v (Cbool (not x)) (CB (not x))
          | _ -> Some i)
        | Cmp (v, op, a, b) -> (
          match cv a, cv b with
          | Some (CI x), Some (CI y) ->
            let r =
              match op with
              | Eq -> x = y
              | Ne -> x <> y
              | Lt -> x < y
              | Le -> x <= y
              | Gt -> x > y
              | Ge -> x >= y
            in
            keep_const v (Cbool r) (CB r)
          | _ -> Some i)
        | Select (v, c, a, b) -> (
          match cv c with
          | Some (CB true) ->
            Hashtbl.replace alias (Var.id v) (sub a);
            None
          | Some (CB false) ->
            Hashtbl.replace alias (Var.id v) (sub b);
            None
          | _ -> Some i)
        | Gep (v, p, ix) -> (
          match cv ix with
          | Some (CI 0) ->
            Hashtbl.replace alias (Var.id v) (sub p);
            None
          | _ -> Some i)
        | i ->
          let rs =
            List.map
              (fun (r : Instr.region) -> { r with Instr.body = go r.body })
              (Instr.regions i)
          in
          Some (with_regions i rs))
      instrs
  in
  let body = go f.body in
  { f with body = subst_deep sub body }

(* ---- common subexpression elimination (pure ops, region-scoped) ---- *)

let cse_func (f : Func.t) : Func.t =
  let alias : (int, Var.t) Hashtbl.t = Hashtbl.create 16 in
  let rec sub v =
    match Hashtbl.find_opt alias (Var.id v) with
    | Some v' -> sub v'
    | None -> v
  in
  let key (i : Instr.t) : string option =
    let open Instr in
    let id v = string_of_int (Var.id v) in
    match i with
    | Bin (_, op, a, b) ->
      Some (Fmt.str "b%s,%s,%s" (binop_name op) (id a) (id b))
    | Cmp (_, op, a, b) ->
      Some (Fmt.str "c%s,%s,%s" (cmpop_name op) (id a) (id b))
    | Un (_, op, a) -> Some (Fmt.str "u%s,%s" (unop_name op) (id a))
    | Gep (_, p, ix) -> Some (Fmt.str "g%s,%s" (id p) (id ix))
    | Select (_, c, a, b) ->
      Some (Fmt.str "s%s,%s,%s" (id c) (id a) (id b))
    | Const (_, Cint x) -> Some (Fmt.str "ki%d" x)
    | Const (_, Cbool x) -> Some (Fmt.str "kb%b" x)
    | Const (_, Cfloat x) -> Some (Fmt.str "kf%h" x)
    | _ -> None
  in
  let rec go (seen : (string, Var.t) Hashtbl.t) instrs =
    List.filter_map
      (fun i ->
        let i = map_uses sub i in
        match key i, Instr.def i with
        | Some k, Some v -> (
          match Hashtbl.find_opt seen k with
          | Some prior ->
            Hashtbl.replace alias (Var.id v) prior;
            None
          | None ->
            Hashtbl.replace seen k v;
            Some i)
        | _ ->
          let rs =
            List.map
              (fun (r : Instr.region) ->
                { r with Instr.body = go (Hashtbl.copy seen) r.body })
              (Instr.regions i)
          in
          Some (with_regions i rs))
      instrs
  in
  let body = go (Hashtbl.create 64) f.body in
  { f with body = subst_deep sub body }

(* ---- dead code elimination ---- *)

let dce_func (f : Func.t) : Func.t =
  let body = ref f.body in
  let changed = ref true in
  while !changed do
    changed := false;
    let used = Array.make f.var_count false in
    Instr.iter_instrs
      (fun i -> List.iter (fun v -> used.(Var.id v) <- true) (Instr.uses i))
      !body;
    let any_def_used i =
      List.exists (fun v -> used.(Var.id v)) (Instr.defs i)
    in
    let rec drop instrs =
      List.filter_map
        (fun (i : Instr.t) ->
          let i =
            with_regions i
              (List.map
                 (fun (r : Instr.region) -> { r with Instr.body = drop r.body })
                 (Instr.regions i))
          in
          let deletable =
            match i with
            | Instr.Load _ | Instr.Alloc _ -> not (any_def_used i)
            | Instr.If _ | Instr.For _ | Instr.While _ | Instr.Fork _
            | Instr.Workshare _ ->
              (not (has_effects i)) && not (any_def_used i)
            | _ -> pure i && not (any_def_used i)
          in
          if deletable then begin
            changed := true;
            None
          end
          else Some i)
        instrs
    in
    body := drop !body
  done;
  { f with body = !body }

(* ---- loop-invariant code motion ---- *)

module IH = Hashtbl

let licm_func (f : Func.t) : Func.t =
  let rec walk (scope : (int, unit) IH.t) instrs =
    let out = ref [] in
    List.iter
      (fun (i : Instr.t) ->
        let child_scope (r : Instr.region) =
          let s = IH.copy scope in
          List.iter (fun v -> IH.replace s (Var.id v) ()) (Instr.defs i);
          List.iter (fun p -> IH.replace s (Var.id p) ()) r.Instr.params;
          s
        in
        let i =
          with_regions i
            (List.map
               (fun (r : Instr.region) ->
                 (* inner defs become visible inside *)
                 let s = child_scope r in
                 { r with Instr.body = walk s r.body })
               (Instr.regions i))
        in
        (match i with
        | Instr.For ({ body; _ } as r) ->
          let store_free =
            not (List.exists clobbers body.Instr.body)
          in
          let hoistable : (int, unit) IH.t = IH.create 8 in
          let avail u =
            IH.mem scope (Var.id u) || IH.mem hoistable (Var.id u)
          in
          let hoisted = ref [] and kept = ref [] in
          List.iter
            (fun (j : Instr.t) ->
              let movable =
                (pure j
                || match j with Instr.Load _ -> store_free | _ -> false)
                && List.for_all avail (Instr.uses j)
              in
              if movable then begin
                List.iter
                  (fun v -> IH.replace hoistable (Var.id v) ())
                  (Instr.defs j);
                hoisted := j :: !hoisted
              end
              else kept := j :: !kept)
            body.Instr.body;
          out := !out @ List.rev !hoisted;
          out :=
            !out
            @ [ Instr.For { r with body = { body with body = List.rev !kept } } ]
        | i -> out := !out @ [ i ]);
        List.iter (fun v -> IH.replace scope (Var.id v) ()) (Instr.defs i))
      instrs;
    !out
  in
  let scope = IH.create 64 in
  List.iter (fun p -> IH.replace scope (Var.id p) ()) f.params;
  { f with body = walk scope f.body }
