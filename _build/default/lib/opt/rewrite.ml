(** Shared infrastructure for optimization passes: operand substitution,
    fresh variables, structural rebuilding, and effect/purity queries. *)

open Parad_ir

type ctx = { mutable next : int }

let ctx_of (f : Func.t) = { next = f.var_count }

let fresh ctx ty name =
  let v = Var.make ~id:ctx.next ~ty ~name in
  ctx.next <- ctx.next + 1;
  v

(* Apply a variable substitution to every operand of an instruction
   (regions are NOT entered — callers recurse explicitly). *)
let map_uses (s : Var.t -> Var.t) (i : Instr.t) : Instr.t =
  let open Instr in
  match i with
  | Const _ -> i
  | Bin (v, op, a, b) -> Bin (v, op, s a, s b)
  | Cmp (v, op, a, b) -> Cmp (v, op, s a, s b)
  | Un (v, op, a) -> Un (v, op, s a)
  | Select (v, c, a, b) -> Select (v, s c, s a, s b)
  | Alloc (v, t, n, k) -> Alloc (v, t, s n, k)
  | Free p -> Free (s p)
  | Load (v, p, ix) -> Load (v, s p, s ix)
  | Store (p, ix, x) -> Store (s p, s ix, s x)
  | Gep (v, p, ix) -> Gep (v, s p, s ix)
  | AtomicAdd (p, ix, x) -> AtomicAdd (s p, s ix, s x)
  | Call (v, f, args) -> Call (v, f, List.map s args)
  | Spawn (v, f, args) -> Spawn (v, f, List.map s args)
  | Sync h -> Sync (s h)
  | If (rs, c, t, e) -> If (rs, s c, t, e)
  | For r -> For { r with lo = s r.lo; hi = s r.hi; step = s r.step }
  | While _ -> i
  | Fork r -> Fork { r with nth = s r.nth }
  | Workshare r -> Workshare { r with lo = s r.lo; hi = s r.hi }
  | Barrier -> Barrier
  | Return v -> Return (Option.map s v)
  | Yield vs -> Yield (List.map s vs)

(* Replace sub-regions wholesale. *)
let with_regions (i : Instr.t) (rs : Instr.region list) : Instr.t =
  let open Instr in
  match i, rs with
  | If (res, c, _, _), [ t; e ] -> If (res, c, t, e)
  | For r, [ body ] -> For { r with body }
  | While _, [ cond; body ] -> While { cond; body }
  | Fork r, [ body ] -> Fork { r with body }
  | Workshare r, [ body ] -> Workshare { r with body }
  | _, [] -> i
  | _ -> invalid_arg "with_regions: arity mismatch"

(* Recursively apply a substitution everywhere (operands at all depths). *)
let rec subst_deep (s : Var.t -> Var.t) (instrs : Instr.t list) =
  List.map
    (fun i ->
      let i = map_uses s i in
      let rs =
        List.map
          (fun (r : Instr.region) -> { r with Instr.body = subst_deep s r.body })
          (Instr.regions i)
      in
      with_regions i rs)
    instrs

(* Pure instructions: no side effects, freely removable / movable
   (integer division excluded: it can trap). *)
let pure (i : Instr.t) =
  let open Instr in
  match i with
  | Const _ | Cmp _ | Select _ | Gep _ -> true
  | Bin (v, (Div | Rem), _, _) -> Ty.equal (Var.ty v) Ty.Float
  | Bin _ -> true
  | Un _ -> true
  | Call (_, ("mpi.rank" | "mpi.size" | "omp.max_threads"), _) -> true
  | _ -> false

(* Instructions with observable effects that must be preserved even if
   their results are unused. *)
let rec has_effects (i : Instr.t) =
  let open Instr in
  match i with
  | Store _ | AtomicAdd _ | Free _ | Spawn _ | Sync _ | Barrier | Return _
  | Yield _ -> true
  | Call _ -> not (pure i)
  | Alloc _ -> false
  | Load _ -> false
  | Const _ | Bin _ | Cmp _ | Un _ | Select _ | Gep _ -> false
  | If (_, _, t, e) ->
    List.exists has_effects t.body || List.exists has_effects e.body
  | For { body; _ } -> List.exists has_effects body.body
  | While { cond; body } ->
    List.exists has_effects cond.body || List.exists has_effects body.body
  | Fork { body; _ } -> List.exists has_effects body.body
  | Workshare { body; _ } -> List.exists has_effects body.body

(* Does this instruction (or any nested one) write memory or synchronize?
   Used to decide whether loads can move across it. *)
let rec clobbers (i : Instr.t) =
  let open Instr in
  match i with
  | Store _ | AtomicAdd _ | Free _ | Spawn _ | Sync _ | Barrier -> true
  | Call (_, n, _) ->
    not
      (List.mem n [ "mpi.rank"; "mpi.size"; "omp.max_threads"; "cache.get" ])
  | Const _ | Bin _ | Cmp _ | Un _ | Select _ | Gep _ | Alloc _ | Load _
  | Return _ | Yield _ -> false
  | If (_, _, t, e) ->
    List.exists clobbers t.body || List.exists clobbers e.body
  | For { body; _ } -> List.exists clobbers body.body
  | While { cond; body } ->
    List.exists clobbers cond.body || List.exists clobbers body.body
  | Fork { body; _ } -> List.exists clobbers body.body
  | Workshare { body; _ } -> List.exists clobbers body.body
