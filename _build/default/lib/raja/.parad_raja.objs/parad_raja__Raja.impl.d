lib/raja/raja.ml: Builder Instr Parad_ir Ty Var
