(** RAJA-analog frontend: portable parallel templates that *lower onto the
    OpenMP-level IR constructs* ([Fork]/[Workshare]/[Barrier]).

    This is the paper's §V-D point made executable: the AD engine has no
    RAJA-specific rules whatsoever — kernels written against this API
    differentiate because they lower to constructs the engine already
    handles. [Reduce_min]/[Reduce_sum] mirror RAJA's reducer templates and
    lower to the per-thread-slot + combine pattern of Fig 7. *)

open Parad_ir
module B = Builder

(** [forall b ~lo ~hi body] — RAJA::forall<omp_parallel_for_exec>. *)
let forall b ~lo ~hi body = B.parallel_for b ~lo ~hi body

(** [forall_seq] — RAJA::forall<seq_exec>, for the sequential policy. *)
let forall_seq b ~lo ~hi body = B.for_ b ~lo ~hi body

type reducer = {
  slots : Var.t;  (** per-thread partials *)
  combine : Instr.binop;
  init : float;
}

(** Create a reducer (RAJA::ReduceMin / ReduceSum analog): allocates one
    slot per available thread, initialized to the identity. *)
let reducer b ~combine ~init =
  let nt = B.call b ~ret:Ty.Int "omp.max_threads" [] in
  let slots = B.alloc b Ty.Float nt in
  B.for_n b nt (fun t -> B.store b slots t (B.f64 b init));
  { slots; combine; init }

let reduce_min b = reducer b ~combine:Instr.Min ~init:infinity
let reduce_sum b = reducer b ~combine:Instr.Add ~init:0.0

(** Inside a [forall_reduce] region: fold a contribution into the
    executing thread's slot. *)
let contribute b (r : reducer) ~tid v =
  let cur = B.load b r.slots tid in
  B.store b r.slots tid (B.bin b r.combine cur v)

(** A parallel loop carrying reducers: the body receives the iteration
    variable and the thread id (RAJA hides the tid inside the reducer
    object; here it is explicit but the lowering is identical). *)
let forall_reduce b ~lo ~hi body =
  B.fork b (fun ~tid ~nth:_ ->
      B.workshare b ~lo ~hi (fun i -> body ~i ~tid))

(** Combine a reducer's per-thread slots into a single value (runs after
    the parallel region, like reading a RAJA reducer). *)
let get b (r : reducer) =
  let nt = B.call b ~ret:Ty.Int "omp.max_threads" [] in
  let acc = B.alloc b Ty.Float (B.i64 b 1) in
  B.store b acc (B.i64 b 0) (B.f64 b r.init);
  B.for_n b nt (fun t ->
      let v = B.load b r.slots t in
      let cur = B.load b acc (B.i64 b 0) in
      B.store b acc (B.i64 b 0) (B.bin b r.combine cur v));
  let out = B.load b acc (B.i64 b 0) in
  B.free b acc;
  B.free b r.slots;
  out
