lib/runtime/cache_rt.ml: Array Value
