lib/runtime/exec.ml: Array Instr Interp List Memory Mpi_state Parad_ir Sim Stats Ty Value
