lib/runtime/interp.ml: Array Bool Cache_rt Cost_model Float Format Hashtbl Instr Int List Memory Mpi_state Option Parad_ir Prog Sim String Ty Value Var
