lib/runtime/memory.ml: Array Hashtbl Instr List Parad_ir Ty Value
