lib/runtime/mpi_state.ml: Array Cost_model Hashtbl Memory Queue Sim Value
