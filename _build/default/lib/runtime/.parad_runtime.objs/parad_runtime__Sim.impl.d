lib/runtime/sim.ml: Cost_model Effect Float List Printf Queue Stats
