lib/runtime/stats.ml: Fmt
