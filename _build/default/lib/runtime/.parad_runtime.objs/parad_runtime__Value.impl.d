lib/runtime/value.ml: Fmt Instr Parad_ir Ty
