lib/tape/tape.ml: Array Cost_model Hashtbl Interp List Memory Mpi_state Parad_ir Parad_runtime Sim Stats Value
