lib/verify/grad_check.ml: Array Exec Float Fmt Func Interp List Parad_core Parad_ir Parad_opt Parad_runtime Prog Stats Ty Value
