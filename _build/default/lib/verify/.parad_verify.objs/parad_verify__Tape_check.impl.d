lib/verify/tape_check.ml: Array Exec Grad_check Interp List Parad_ir Parad_runtime Parad_tape Value
