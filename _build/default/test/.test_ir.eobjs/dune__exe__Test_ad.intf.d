test/test_ad.mli:
