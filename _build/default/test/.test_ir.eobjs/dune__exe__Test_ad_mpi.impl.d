test/test_ad_mpi.ml: Alcotest Array Builder Func List Parad_ir Parad_verify Printf Prog Ty
