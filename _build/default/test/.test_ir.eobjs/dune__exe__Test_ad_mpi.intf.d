test/test_ad_mpi.mli:
