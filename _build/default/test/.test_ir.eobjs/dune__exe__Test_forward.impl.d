test/test_forward.ml: Alcotest Array Builder Exec Float Func Interp List Parad_core Parad_ir Parad_runtime Parad_verify Printf Prog QCheck QCheck_alcotest Ty Value Verifier
