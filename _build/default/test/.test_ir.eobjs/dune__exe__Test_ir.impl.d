test/test_ir.ml: Alcotest Builder Instr List Parad_ir Printer Prog QCheck QCheck_alcotest String Ty Var Verifier
