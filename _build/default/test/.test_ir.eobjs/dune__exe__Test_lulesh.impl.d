test/test_lulesh.ml: Alcotest Apps_lulesh Array Float Printf
