test/test_lulesh.mli:
