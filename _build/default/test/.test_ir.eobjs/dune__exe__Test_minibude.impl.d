test/test_minibude.ml: Alcotest Apps_minibude Array Float Parad_opt Printf
