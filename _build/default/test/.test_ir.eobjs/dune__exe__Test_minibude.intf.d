test/test_minibude.mli:
