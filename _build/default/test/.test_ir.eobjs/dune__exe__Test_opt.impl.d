test/test_opt.ml: Alcotest Array Builder Exec Float Func Instr Interp List Parad_ir Parad_opt Parad_runtime Parad_verify Prog QCheck QCheck_alcotest Ty Value
