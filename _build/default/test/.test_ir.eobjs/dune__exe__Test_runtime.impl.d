test/test_runtime.ml: Alcotest Array Builder Exec Instr Interp List Option Parad_ir Parad_runtime Printf Prog Sim Stats Ty Value Verifier
