test/test_tape.ml: Alcotest Array Builder Exec Func List Parad_ir Parad_runtime Parad_tape Parad_verify Printf Prog Ty Value
