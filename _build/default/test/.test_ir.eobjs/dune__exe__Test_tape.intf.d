test/test_tape.mli:
