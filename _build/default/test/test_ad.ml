(* Reverse-mode AD: finite-difference verification across language
   features — straight-line code, branches, loops, memory, calls, tasks,
   fork/join parallelism, and message passing. *)

open Parad_ir
open Parad_runtime
module B = Builder
module GC = Parad_verify.Grad_check

let feq = Alcotest.float 1e-6

let cfg nthreads = { Interp.default_config with nthreads }

let check_ok ?cfg ?opts ?seeds ?d_ret ?tol name prog fname args =
  match GC.check ?cfg ?opts ?seeds ?d_ret ?tol prog fname args with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "%s: %s" name m

let two ps = match ps with [ a; b ] -> a, b | _ -> assert false
let three ps = match ps with [ a; b; c ] -> a, b, c | _ -> assert false

(* ---- scalar programs ---- *)

let test_square () =
  let prog = Prog.create () in
  let b, ps = B.func prog "sq" ~params:[ "x", Ty.Float ] ~ret:Ty.Float in
  let x = List.hd ps in
  B.return b (Some (B.mul b x x));
  ignore (B.finish b);
  let g = GC.reverse prog "sq" [ GC.AScalar 3.0 ] in
  Alcotest.check feq "primal" 9.0 g.GC.primal;
  Alcotest.check feq "d/dx x^2 = 2x" 6.0 g.GC.d_scalars.(0)

let test_transcendental () =
  let prog = Prog.create () in
  let b, ps =
    B.func prog "tf" ~params:[ "x", Ty.Float; "y", Ty.Float ] ~ret:Ty.Float
  in
  let x, y = two ps in
  (* sin(x*y) + exp(x) / (1 + y^2) + sqrt(x) * log(y) *)
  let t1 = B.sin_ b (B.mul b x y) in
  let t2 = B.div b (B.exp_ b x) (B.add b (B.f64 b 1.0) (B.mul b y y)) in
  let t3 = B.mul b (B.sqrt_ b x) (B.log_ b y) in
  B.return b (Some (B.add b (B.add b t1 t2) t3));
  ignore (B.finish b);
  check_ok "transcendental" prog "tf" [ GC.AScalar 1.3; GC.AScalar 0.8 ]

let test_minmax_abs_select () =
  let prog = Prog.create () in
  let b, ps =
    B.func prog "mm" ~params:[ "x", Ty.Float; "y", Ty.Float ] ~ret:Ty.Float
  in
  let x, y = two ps in
  let m = B.min_ b (B.mul b x x) (B.mul b y y) in
  let n = B.max_ b x (B.neg b y) in
  let c = B.gt b x y in
  let s = B.select b c (B.mul b x y) (B.add b x y) in
  B.return b (Some (B.add b (B.add b m n) (B.add b s (B.abs_ b y))));
  ignore (B.finish b);
  check_ok "minmax" prog "mm" [ GC.AScalar 1.7; GC.AScalar (-0.6) ];
  check_ok "minmax2" prog "mm" [ GC.AScalar (-0.4); GC.AScalar 2.0 ]

let test_pow () =
  let prog = Prog.create () in
  let b, ps =
    B.func prog "pw" ~params:[ "x", Ty.Float; "y", Ty.Float ] ~ret:Ty.Float
  in
  let x, y = two ps in
  B.return b (Some (B.pow b x y));
  ignore (B.finish b);
  check_ok "pow" prog "pw" [ GC.AScalar 1.8; GC.AScalar 2.3 ]

(* ---- memory and loops ---- *)

(* out[i] = in[i]^2; loss = sum out *)
let test_buffer_map () =
  let prog = Prog.create () in
  let b, ps =
    B.func prog "bm"
      ~params:[ "inp", Ty.Ptr Ty.Float; "out", Ty.Ptr Ty.Float; "n", Ty.Int ]
      ~ret:Ty.Unit
  in
  let inp, out, n = three ps in
  B.for_n b n (fun i ->
      let x = B.load b inp i in
      B.store b out i (B.mul b x x));
  B.return b None;
  ignore (B.finish b);
  let input = [| 1.0; -2.0; 0.5; 3.0 |] in
  let g =
    GC.reverse prog "bm"
      [ GC.ABuf input; GC.ABuf (Array.make 4 0.0); GC.AInt 4 ]
      ~seeds:[ Array.make 4 0.0; Array.make 4 1.0 ]
  in
  Array.iteri
    (fun i x ->
      Alcotest.check feq (Printf.sprintf "d in[%d]" i) (2.0 *. x)
        (List.hd g.GC.d_bufs).(i))
    input;
  check_ok "buffer map fd" prog "bm"
    [ GC.ABuf input; GC.ABuf (Array.make 4 0.0); GC.AInt 4 ]

(* loop-carried dependence through memory: acc = acc * x[i] *)
let test_product_reduction () =
  let prog = Prog.create () in
  let b, ps =
    B.func prog "prod" ~params:[ "x", Ty.Ptr Ty.Float; "n", Ty.Int ]
      ~ret:Ty.Float
  in
  let x, n = two ps in
  let acc = B.alloc b Ty.Float (B.i64 b 1) in
  B.store b acc (B.i64 b 0) (B.f64 b 1.0);
  B.for_n b n (fun i ->
      let cur = B.load b acc (B.i64 b 0) in
      B.store b acc (B.i64 b 0) (B.mul b cur (B.load b x i)));
  let r = B.load b acc (B.i64 b 0) in
  B.free b acc;
  B.return b (Some r);
  ignore (B.finish b);
  check_ok "product" prog "prod"
    [ GC.ABuf [| 1.5; 2.0; 0.5; -1.2; 3.0 |]; GC.AInt 5 ]
    ~seeds:[ Array.make 5 0.0 ]

let test_nested_loops () =
  let prog = Prog.create () in
  let b, ps =
    B.func prog "nest" ~params:[ "x", Ty.Ptr Ty.Float; "n", Ty.Int ]
      ~ret:Ty.Float
  in
  let x, n = two ps in
  let acc = B.alloc b Ty.Float (B.i64 b 1) in
  B.store b acc (B.i64 b 0) (B.f64 b 0.0);
  B.for_n b n (fun i ->
      B.for_n b n (fun j ->
          let xi = B.load b x i and xj = B.load b x j in
          let cur = B.load b acc (B.i64 b 0) in
          B.store b acc (B.i64 b 0)
            (B.add b cur (B.mul b (B.sin_ b xi) xj))));
  let r = B.load b acc (B.i64 b 0) in
  B.return b (Some r);
  ignore (B.finish b);
  check_ok "nested loops" prog "nest"
    [ GC.ABuf [| 0.3; 1.1; -0.7 |]; GC.AInt 3 ]
    ~seeds:[ Array.make 3 0.0 ]

let test_branches () =
  let prog = Prog.create () in
  let b, ps =
    B.func prog "br" ~params:[ "x", Ty.Ptr Ty.Float; "n", Ty.Int ]
      ~ret:Ty.Float
  in
  let x, n = two ps in
  let acc = B.alloc b Ty.Float (B.i64 b 1) in
  B.store b acc (B.i64 b 0) (B.f64 b 0.0);
  B.for_n b n (fun i ->
      let xi = B.load b x i in
      let c = B.gt b xi (B.f64 b 0.0) in
      let v =
        B.if_ b c ~results:[ Ty.Float ]
          ~then_:(fun () -> [ B.mul b xi xi ])
          ~else_:(fun () -> [ B.neg b (B.mul b xi (B.f64 b 3.0)) ])
      in
      let cur = B.load b acc (B.i64 b 0) in
      B.store b acc (B.i64 b 0) (B.add b cur (List.hd v)));
  let r = B.load b acc (B.i64 b 0) in
  B.return b (Some r);
  ignore (B.finish b);
  check_ok "branches" prog "br"
    [ GC.ABuf [| 0.5; -1.5; 2.0; -0.1 |]; GC.AInt 4 ]
    ~seeds:[ Array.make 4 0.0 ]

let test_while_loop () =
  (* newton-ish iteration with data-dependent trip count:
     y = x; while (y > 1.5) y = y * 0.7; return y * y *)
  let prog = Prog.create () in
  let b, ps = B.func prog "wh" ~params:[ "x", Ty.Float ] ~ret:Ty.Float in
  let x = List.hd ps in
  let cell = B.alloc b Ty.Float (B.i64 b 1) in
  B.store b cell (B.i64 b 0) x;
  B.while_ b
    ~cond:(fun () -> B.gt b (B.load b cell (B.i64 b 0)) (B.f64 b 1.5))
    ~body:(fun () ->
      let y = B.load b cell (B.i64 b 0) in
      B.store b cell (B.i64 b 0) (B.mul b y (B.f64 b 0.7)));
  let y = B.load b cell (B.i64 b 0) in
  B.return b (Some (B.mul b y y));
  ignore (B.finish b);
  check_ok "while" prog "wh" [ GC.AScalar 10.0 ];
  check_ok "while short" prog "wh" [ GC.AScalar 1.2 ]

let test_gep_aliasing_views () =
  (* two gep views into one buffer *)
  let prog = Prog.create () in
  let b, ps =
    B.func prog "gp" ~params:[ "x", Ty.Ptr Ty.Float; "n", Ty.Int ]
      ~ret:Ty.Float
  in
  let x, n = two ps in
  let lo = x in
  let hi = B.gep b x n in
  let acc = B.alloc b Ty.Float (B.i64 b 1) in
  B.store b acc (B.i64 b 0) (B.f64 b 0.0);
  B.for_n b n (fun i ->
      let a = B.load b lo i and c = B.load b hi i in
      let cur = B.load b acc (B.i64 b 0) in
      B.store b acc (B.i64 b 0) (B.add b cur (B.mul b a c)));
  B.return b (Some (B.load b acc (B.i64 b 0)));
  ignore (B.finish b);
  check_ok "gep views" prog "gp"
    [ GC.ABuf [| 1.0; 2.0; 3.0; 4.0; 5.0; 6.0 |]; GC.AInt 3 ]
    ~seeds:[ Array.make 6 0.0 ]

(* ---- calls and tasks ---- *)

let test_call_split () =
  let prog = Prog.create () in
  (* helper: g(x) = x^3 + sin x *)
  let b, ps = B.func prog "g" ~params:[ "x", Ty.Float ] ~ret:Ty.Float in
  let x = List.hd ps in
  B.return b
    (Some (B.add b (B.mul b x (B.mul b x x)) (B.sin_ b x)));
  ignore (B.finish b);
  (* f(x,y) = g(x) * g(y) + g(x*y) *)
  let b, ps =
    B.func prog "f" ~params:[ "x", Ty.Float; "y", Ty.Float ] ~ret:Ty.Float
  in
  let x, y = two ps in
  let gx = B.call b ~ret:Ty.Float "g" [ x ] in
  let gy = B.call b ~ret:Ty.Float "g" [ y ] in
  let gxy = B.call b ~ret:Ty.Float "g" [ B.mul b x y ] in
  B.return b (Some (B.add b (B.mul b gx gy) gxy));
  ignore (B.finish b);
  check_ok "split calls" prog "f" [ GC.AScalar 0.9; GC.AScalar 1.4 ]

let test_call_with_buffers () =
  let prog = Prog.create () in
  (* scale(v, n, a): v[i] *= a *)
  let b, ps =
    B.func prog "scale"
      ~params:[ "v", Ty.Ptr Ty.Float; "n", Ty.Int; "a", Ty.Float ]
      ~ret:Ty.Unit
  in
  let v, n, a = three ps in
  B.for_n b n (fun i -> B.store b v i (B.mul b (B.load b v i) a));
  B.return b None;
  ignore (B.finish b);
  let b, ps =
    B.func prog "drv" ~params:[ "v", Ty.Ptr Ty.Float; "n", Ty.Int ]
      ~ret:Ty.Float
  in
  let v, n = two ps in
  ignore (B.call b ~ret:Ty.Unit "scale" [ v; n; B.f64 b 2.5 ]);
  ignore (B.call b ~ret:Ty.Unit "scale" [ v; n; B.f64 b 0.5 ]);
  let acc = B.alloc b Ty.Float (B.i64 b 1) in
  B.store b acc (B.i64 b 0) (B.f64 b 0.0);
  B.for_n b n (fun i ->
      let cur = B.load b acc (B.i64 b 0) in
      let x = B.load b v i in
      B.store b acc (B.i64 b 0) (B.add b cur (B.mul b x x)));
  B.return b (Some (B.load b acc (B.i64 b 0)));
  ignore (B.finish b);
  check_ok "callee mutating buffers" prog "drv"
    [ GC.ABuf [| 1.0; -2.0; 0.25 |]; GC.AInt 3 ]
    ~seeds:[ Array.make 3 0.0 ]

let test_recursive_call () =
  let prog = Prog.create () in
  (* pow4(x, k): x^(2^k) by recursive squaring *)
  let b, ps =
    B.func prog "pk" ~params:[ "x", Ty.Float; "k", Ty.Int ] ~ret:Ty.Float
  in
  let x, k = two ps in
  let c = B.le b k (B.i64 b 0) in
  let r =
    B.if_ b c ~results:[ Ty.Float ]
      ~then_:(fun () -> [ x ])
      ~else_:(fun () ->
        let sub =
          B.call b ~ret:Ty.Float "pk" [ x; B.sub b k (B.i64 b 1) ]
        in
        [ B.mul b sub sub ])
  in
  B.return b (Some (List.hd r));
  ignore (B.finish b);
  check_ok "recursion" prog "pk" [ GC.AScalar 1.1; GC.AInt 3 ]

let test_tasks_gradient () =
  let prog = Prog.create () in
  (* worker(x, out, i): out[i] = sin(x[i]) * x[i] *)
  let b, ps =
    B.func prog "worker"
      ~params:[ "x", Ty.Ptr Ty.Float; "out", Ty.Ptr Ty.Float; "i", Ty.Int ]
      ~ret:Ty.Unit
  in
  let x, out, i = three ps in
  let xi = B.load b x i in
  B.store b out i (B.mul b (B.sin_ b xi) xi);
  B.return b None;
  ignore (B.finish b);
  let b, ps =
    B.func prog "spawnmain"
      ~params:[ "x", Ty.Ptr Ty.Float; "out", Ty.Ptr Ty.Float; "n", Ty.Int ]
      ~ret:Ty.Unit
  in
  let x, out, n = three ps in
  let hs = B.alloc b Ty.Int n in
  B.for_n b n (fun i -> B.store b hs i (B.spawn b "worker" [ x; out; i ]));
  B.for_n b n (fun i -> B.sync b (B.load b hs i));
  B.free b hs;
  B.return b None;
  ignore (B.finish b);
  let input = [| 0.4; 1.9; -0.8; 2.2 |] in
  check_ok "task gradient" prog "spawnmain"
    [ GC.ABuf input; GC.ABuf (Array.make 4 0.0); GC.AInt 4 ]
    ~seeds:[ Array.make 4 0.0; Array.make 4 1.0 ]

(* ---- fork/join parallelism ---- *)

let omp_square_prog () =
  let prog = Prog.create () in
  let b, ps =
    B.func prog "psq"
      ~attrs:[ Func.noalias; Func.noalias; Func.default_attr ]
      ~params:[ "x", Ty.Ptr Ty.Float; "out", Ty.Ptr Ty.Float; "n", Ty.Int ]
      ~ret:Ty.Unit
  in
  let x, out, n = three ps in
  B.parallel_for b ~lo:(B.i64 b 0) ~hi:n (fun i ->
      let xi = B.load b x i in
      B.store b out i (B.mul b (B.exp_ b xi) xi));
  B.return b None;
  ignore (B.finish b);
  prog

let test_parallel_for_gradient () =
  let prog = omp_square_prog () in
  let input = [| 0.1; 0.9; -1.1; 0.6; 1.4; -0.2 |] in
  List.iter
    (fun w ->
      check_ok
        (Printf.sprintf "omp gradient w=%d" w)
        ~cfg:(cfg w) prog "psq"
        [ GC.ABuf input; GC.ABuf (Array.make 6 0.0); GC.AInt 6 ]
        ~seeds:[ Array.make 6 0.0; Array.make 6 1.0 ])
    [ 1; 3; 8 ]

let test_parallel_gradient_matches_serial () =
  let prog = omp_square_prog () in
  let input = [| 0.1; 0.9; -1.1; 0.6; 1.4; -0.2 |] in
  let grad w =
    let g =
      GC.reverse ~cfg:(cfg w) prog "psq"
        [ GC.ABuf input; GC.ABuf (Array.make 6 0.0); GC.AInt 6 ]
        ~seeds:[ Array.make 6 0.0; Array.make 6 1.0 ]
    in
    List.hd g.GC.d_bufs
  in
  let g1 = grad 1 and g8 = grad 8 in
  Array.iteri
    (fun i x -> Alcotest.check feq (Printf.sprintf "elt %d" i) x g8.(i))
    g1

let () =
  Alcotest.run "ad"
    [
      ( "scalar",
        [
          Alcotest.test_case "square" `Quick test_square;
          Alcotest.test_case "transcendental" `Quick test_transcendental;
          Alcotest.test_case "min/max/abs/select" `Quick
            test_minmax_abs_select;
          Alcotest.test_case "pow" `Quick test_pow;
        ] );
      ( "memory+control",
        [
          Alcotest.test_case "buffer map" `Quick test_buffer_map;
          Alcotest.test_case "product reduction" `Quick
            test_product_reduction;
          Alcotest.test_case "nested loops" `Quick test_nested_loops;
          Alcotest.test_case "branches" `Quick test_branches;
          Alcotest.test_case "while" `Quick test_while_loop;
          Alcotest.test_case "gep views" `Quick test_gep_aliasing_views;
        ] );
      ( "calls",
        [
          Alcotest.test_case "split calls" `Quick test_call_split;
          Alcotest.test_case "buffer-mutating callee" `Quick
            test_call_with_buffers;
          Alcotest.test_case "recursion" `Quick test_recursive_call;
          Alcotest.test_case "tasks" `Quick test_tasks_gradient;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "parallel for" `Quick test_parallel_for_gradient;
          Alcotest.test_case "parallel == serial" `Quick
            test_parallel_gradient_matches_serial;
        ] );
    ]
