(* Reverse-mode AD of message passing (paper §IV-B, Fig 5): nonblocking
   send/recv/wait duality through shadow requests, request arrays,
   blocking p2p, and collective adjoints. *)

open Parad_ir
module B = Builder
module GC = Parad_verify.Grad_check

let feq = Alcotest.float 1e-6

let seed0 n ~rank:_ = [ Array.make n 0.0 ]
let dret_rank0 ~rank = if rank = 0 then 1.0 else 0.0

let check name r =
  match r with Ok _ -> () | Error m -> Alcotest.failf "%s: %s" name m

(* each rank: isend x to next, irecv y from prev, wait; return weighted
   local energy allreduced *)
let ring_prog () =
  let prog = Prog.create () in
  let b, ps =
    B.func prog "ring"
      ~attrs:[ Func.noalias; Func.default_attr ]
      ~params:[ "x", Ty.Ptr Ty.Float; "n", Ty.Int ]
      ~ret:Ty.Float
  in
  let x, n = match ps with [ a; b ] -> a, b | _ -> assert false in
  let rank = B.call b ~ret:Ty.Int "mpi.rank" [] in
  let size = B.call b ~ret:Ty.Int "mpi.size" [] in
  let one = B.i64 b 1 in
  let next = B.rem b (B.add b rank one) size in
  let prev = B.rem b (B.add b rank (B.sub b size one)) size in
  let y = B.alloc b Ty.Float n in
  let tag = B.i64 b 3 in
  let sreq = B.call b ~ret:Ty.Int "mpi.isend" [ x; n; next; tag ] in
  let rreq = B.call b ~ret:Ty.Int "mpi.irecv" [ y; n; prev; tag ] in
  ignore (B.call b ~ret:Ty.Unit "mpi.wait" [ sreq ]);
  ignore (B.call b ~ret:Ty.Unit "mpi.wait" [ rreq ]);
  (* local = (rank+1) * sum_i y_i^2 *)
  let acc = B.alloc b Ty.Float one in
  B.store b acc (B.i64 b 0) (B.f64 b 0.0);
  B.for_n b n (fun i ->
      let yi = B.load b y i in
      let cur = B.load b acc (B.i64 b 0) in
      B.store b acc (B.i64 b 0) (B.add b cur (B.mul b yi yi)));
  let w = B.to_float b (B.add b rank one) in
  let local = B.mul b w (B.load b acc (B.i64 b 0)) in
  B.store b acc (B.i64 b 0) local;
  let out = B.alloc b Ty.Float one in
  ignore (B.call b ~ret:Ty.Unit "mpi.allreduce_sum" [ acc; out; one ]);
  B.return b (Some (B.load b out (B.i64 b 0)));
  ignore (B.finish b);
  prog

let test_ring_gradient_exact () =
  let prog = ring_prog () in
  let nranks = 4 in
  let n = 3 in
  let data rank = Array.init n (fun i -> float_of_int ((rank * n) + i) /. 5.0) in
  let g =
    GC.reverse_spmd prog "ring" ~nranks
      ~args:(fun ~rank -> [ GC.ABuf (data rank); GC.AInt n ])
      ~seeds:(seed0 n) ~d_ret:dret_rank0
  in
  (* x of rank r is received by rank r+1 with weight (r+1 mod R)+1:
     d x_r[i] = 2 * w * x_r[i] *)
  for r = 0 to nranks - 1 do
    let w = float_of_int (((r + 1) mod nranks) + 1) in
    let x = data r in
    Array.iteri
      (fun i xi ->
        Alcotest.check feq
          (Printf.sprintf "rank %d d x[%d]" r i)
          (2.0 *. w *. xi)
          (List.hd g.GC.s_d_bufs.(r)).(i))
      x
  done

let test_ring_gradient_fd () =
  let prog = ring_prog () in
  let n = 2 in
  check "ring vs fd"
    (GC.check_spmd prog "ring" ~nranks:3
       ~args:(fun ~rank ->
         [ GC.ABuf (Array.init n (fun i -> 0.3 +. float_of_int (rank + i))); GC.AInt n ])
       ~seeds:(seed0 n) ~d_ret:dret_rank0)

(* request ARRAYS: requests stored to and loaded from memory, waited in a
   separate loop — the shadow-request-through-memory path (LULESH's
   communication structure) *)
let reqarray_prog () =
  let prog = Prog.create () in
  let b, ps =
    B.func prog "reqarr"
      ~attrs:[ Func.noalias; Func.default_attr ]
      ~params:[ "x", Ty.Ptr Ty.Float; "n", Ty.Int ]
      ~ret:Ty.Float
  in
  let x, n = match ps with [ a; b ] -> a, b | _ -> assert false in
  let rank = B.call b ~ret:Ty.Int "mpi.rank" [] in
  let size = B.call b ~ret:Ty.Int "mpi.size" [] in
  let one = B.i64 b 1 in
  let next = B.rem b (B.add b rank one) size in
  let prev = B.rem b (B.add b rank (B.sub b size one)) size in
  let y = B.alloc b Ty.Float n in
  let reqs = B.alloc b Ty.Int (B.i64 b 2) in
  let tag = B.i64 b 9 in
  let sreq = B.call b ~ret:Ty.Int "mpi.isend" [ x; n; next; tag ] in
  B.store b reqs (B.i64 b 0) sreq;
  let rreq = B.call b ~ret:Ty.Int "mpi.irecv" [ y; n; prev; tag ] in
  B.store b reqs (B.i64 b 1) rreq;
  (* waitall loop over the request array *)
  B.for_n b (B.i64 b 2) (fun i ->
      let r = B.load b reqs i in
      ignore (B.call b ~ret:Ty.Unit "mpi.wait" [ r ]));
  let acc = B.alloc b Ty.Float one in
  B.store b acc (B.i64 b 0) (B.f64 b 0.0);
  B.for_n b n (fun i ->
      let yi = B.load b y i in
      let cur = B.load b acc (B.i64 b 0) in
      B.store b acc (B.i64 b 0) (B.add b cur (B.mul b (B.sin_ b yi) yi)));
  let out = B.alloc b Ty.Float one in
  ignore (B.call b ~ret:Ty.Unit "mpi.allreduce_sum" [ acc; out; one ]);
  B.return b (Some (B.load b out (B.i64 b 0)));
  ignore (B.finish b);
  prog

let test_request_array_gradient () =
  let prog = reqarray_prog () in
  let n = 2 in
  check "request arrays vs fd"
    (GC.check_spmd prog "reqarr" ~nranks:3
       ~args:(fun ~rank ->
         [
           GC.ABuf (Array.init n (fun i -> 0.2 +. (0.7 *. float_of_int (rank + i))));
           GC.AInt n;
         ])
       ~seeds:(seed0 n) ~d_ret:dret_rank0)

(* blocking send/recv in two phases to avoid deadlock *)
let blocking_prog () =
  let prog = Prog.create () in
  let b, ps =
    B.func prog "blk"
      ~attrs:[ Func.noalias; Func.default_attr ]
      ~params:[ "x", Ty.Ptr Ty.Float; "n", Ty.Int ]
      ~ret:Ty.Float
  in
  let x, n = match ps with [ a; b ] -> a, b | _ -> assert false in
  let rank = B.call b ~ret:Ty.Int "mpi.rank" [] in
  let one = B.i64 b 1 in
  let y = B.alloc b Ty.Float n in
  let tag = B.i64 b 4 in
  let is_even = B.eq b (B.rem b rank (B.i64 b 2)) (B.i64 b 0) in
  let peer =
    B.select b is_even (B.add b rank one) (B.sub b rank one)
  in
  (* even ranks send then recv; odd ranks recv then send *)
  B.ite b is_even
    (fun () ->
      ignore (B.call b ~ret:Ty.Unit "mpi.send" [ x; n; peer; tag ]);
      ignore (B.call b ~ret:Ty.Unit "mpi.recv" [ y; n; peer; tag ]))
    (fun () ->
      ignore (B.call b ~ret:Ty.Unit "mpi.recv" [ y; n; peer; tag ]);
      ignore (B.call b ~ret:Ty.Unit "mpi.send" [ x; n; peer; tag ]));
  let acc = B.alloc b Ty.Float one in
  B.store b acc (B.i64 b 0) (B.f64 b 0.0);
  B.for_n b n (fun i ->
      let yi = B.load b y i in
      let xi = B.load b x i in
      let cur = B.load b acc (B.i64 b 0) in
      B.store b acc (B.i64 b 0) (B.add b cur (B.mul b yi (B.exp_ b xi))));
  let out = B.alloc b Ty.Float one in
  ignore (B.call b ~ret:Ty.Unit "mpi.allreduce_sum" [ acc; out; one ]);
  B.return b (Some (B.load b out (B.i64 b 0)));
  ignore (B.finish b);
  prog

let test_blocking_p2p_gradient () =
  let prog = blocking_prog () in
  let n = 2 in
  check "blocking p2p vs fd"
    (GC.check_spmd prog "blk" ~nranks:4
       ~args:(fun ~rank ->
         [
           GC.ABuf (Array.init n (fun i -> 0.1 +. (0.3 *. float_of_int (rank + i))));
           GC.AInt n;
         ])
       ~seeds:(seed0 n) ~d_ret:dret_rank0)

(* allreduce_min adjoint: gradient flows only to the winning rank *)
let test_allreduce_min_gradient () =
  let prog = Prog.create () in
  let b, ps =
    B.func prog "armin"
      ~attrs:[ Func.noalias ]
      ~params:[ "x", Ty.Ptr Ty.Float ]
      ~ret:Ty.Float
  in
  let x = List.hd ps in
  let one = B.i64 b 1 in
  let s = B.alloc b Ty.Float one in
  (* contribute x[0]^2 *)
  let x0 = B.load b x (B.i64 b 0) in
  B.store b s (B.i64 b 0) (B.mul b x0 x0) ;
  let out = B.alloc b Ty.Float one in
  ignore (B.call b ~ret:Ty.Unit "mpi.allreduce_min" [ s; out; one ]);
  B.return b (Some (B.load b out (B.i64 b 0)));
  ignore (B.finish b);
  let g =
    GC.reverse_spmd prog "armin" ~nranks:3
      ~args:(fun ~rank -> [ GC.ABuf [| float_of_int (3 - rank) |] ])
      ~seeds:(fun ~rank:_ -> [ [| 0.0 |] ])
      ~d_ret:dret_rank0
  in
  (* min of {9, 4, 1}: rank 2 wins; d/dx = 2*x = 2 on rank 2 only *)
  Alcotest.check feq "rank0" 0.0 (List.hd g.GC.s_d_bufs.(0)).(0);
  Alcotest.check feq "rank1" 0.0 (List.hd g.GC.s_d_bufs.(1)).(0);
  Alcotest.check feq "rank2" 2.0 (List.hd g.GC.s_d_bufs.(2)).(0)

(* bcast adjoint: non-root adjoints fold back to the root *)
let test_bcast_gradient () =
  let prog = Prog.create () in
  let b, ps =
    B.func prog "bc"
      ~attrs:[ Func.noalias; Func.default_attr ]
      ~params:[ "x", Ty.Ptr Ty.Float; "n", Ty.Int ]
      ~ret:Ty.Float
  in
  let x, n = match ps with [ a; b ] -> a, b | _ -> assert false in
  let rank = B.call b ~ret:Ty.Int "mpi.rank" [] in
  ignore (B.call b ~ret:Ty.Unit "mpi.bcast" [ x; n; B.i64 b 0 ]);
  (* each rank: (rank+1) * sum x_i^2, allreduced *)
  let one = B.i64 b 1 in
  let acc = B.alloc b Ty.Float one in
  B.store b acc (B.i64 b 0) (B.f64 b 0.0);
  B.for_n b n (fun i ->
      let xi = B.load b x i in
      let cur = B.load b acc (B.i64 b 0) in
      B.store b acc (B.i64 b 0) (B.add b cur (B.mul b xi xi)));
  let w = B.to_float b (B.add b rank one) in
  B.store b acc (B.i64 b 0) (B.mul b w (B.load b acc (B.i64 b 0)));
  let out = B.alloc b Ty.Float one in
  ignore (B.call b ~ret:Ty.Unit "mpi.allreduce_sum" [ acc; out; one ]);
  B.return b (Some (B.load b out (B.i64 b 0)));
  ignore (B.finish b);
  let nranks = 3 in
  let xr = [| 0.5; -1.0 |] in
  let g =
    GC.reverse_spmd prog "bc" ~nranks
      ~args:(fun ~rank:_ -> [ GC.ABuf xr; GC.AInt 2 ])
      ~seeds:(seed0 2) ~d_ret:dret_rank0
  in
  (* loss = (1+2+3) * sum x_i^2 with x = root's x: d x_i = 12 x_i at root *)
  Array.iteri
    (fun i xi ->
      Alcotest.check feq
        (Printf.sprintf "root d x[%d]" i)
        (12.0 *. xi)
        (List.hd g.GC.s_d_bufs.(0)).(i))
    xr;
  (* non-root shadows are zeroed by the bcast adjoint *)
  Alcotest.check feq "nonroot zero" 0.0 (List.hd g.GC.s_d_bufs.(1)).(0)

(* two messages on the same channel + multiple tags *)
let test_multi_message () =
  let prog = Prog.create () in
  let b, ps =
    B.func prog "mm2"
      ~attrs:[ Func.noalias; Func.default_attr ]
      ~params:[ "x", Ty.Ptr Ty.Float; "n", Ty.Int ]
      ~ret:Ty.Float
  in
  let x, n = match ps with [ a; b ] -> a, b | _ -> assert false in
  let rank = B.call b ~ret:Ty.Int "mpi.rank" [] in
  let one = B.i64 b 1 in
  let y = B.alloc b Ty.Float n in
  let z = B.alloc b Ty.Float n in
  let t0 = B.i64 b 0 and t1 = B.i64 b 1 in
  let is0 = B.eq b rank (B.i64 b 0) in
  B.ite b is0
    (fun () ->
      ignore (B.call b ~ret:Ty.Unit "mpi.send" [ x; n; one; t0 ]);
      ignore (B.call b ~ret:Ty.Unit "mpi.send" [ x; n; one; t1 ]);
      B.for_n b n (fun i ->
          B.store b y i (B.f64 b 0.0);
          B.store b z i (B.f64 b 0.0)))
    (fun () ->
      ignore (B.call b ~ret:Ty.Unit "mpi.recv" [ y; n; B.i64 b 0; t0 ]);
      ignore (B.call b ~ret:Ty.Unit "mpi.recv" [ z; n; B.i64 b 0; t1 ]));
  let acc = B.alloc b Ty.Float one in
  B.store b acc (B.i64 b 0) (B.f64 b 0.0);
  B.for_n b n (fun i ->
      let yi = B.load b y i and zi = B.load b z i in
      let cur = B.load b acc (B.i64 b 0) in
      B.store b acc (B.i64 b 0)
        (B.add b cur (B.add b (B.mul b yi yi) (B.mul b (B.f64 b 3.0) zi))));
  let out = B.alloc b Ty.Float one in
  ignore (B.call b ~ret:Ty.Unit "mpi.allreduce_sum" [ acc; out; one ]);
  B.return b (Some (B.load b out (B.i64 b 0)));
  ignore (B.finish b);
  check "multi message vs fd"
    (GC.check_spmd prog "mm2" ~nranks:2
       ~args:(fun ~rank ->
         [ GC.ABuf [| 0.4 +. float_of_int rank; 1.3 |]; GC.AInt 2 ])
       ~seeds:(seed0 2) ~d_ret:dret_rank0)

let () =
  Alcotest.run "ad-mpi"
    [
      ( "p2p",
        [
          Alcotest.test_case "ring exact" `Quick test_ring_gradient_exact;
          Alcotest.test_case "ring vs fd" `Quick test_ring_gradient_fd;
          Alcotest.test_case "request arrays" `Quick
            test_request_array_gradient;
          Alcotest.test_case "blocking p2p" `Quick test_blocking_p2p_gradient;
          Alcotest.test_case "multi message" `Quick test_multi_message;
        ] );
      ( "collectives",
        [
          Alcotest.test_case "allreduce_min" `Quick
            test_allreduce_min_gradient;
          Alcotest.test_case "bcast" `Quick test_bcast_gradient;
        ] );
    ]
