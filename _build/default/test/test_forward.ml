(* Forward (tangent) mode: directional derivatives must agree with the
   reverse-mode projection <adjoint, direction> — the paper's §VII
   consistency check between modes. *)

open Parad_ir
open Parad_runtime
module B = Builder
module GC = Parad_verify.Grad_check
module V = Value

let feq = Alcotest.float 1e-9

let cfgw w = { Interp.default_config with nthreads = w }

let test_forward_scalar () =
  let prog = Prog.create () in
  let b, ps =
    B.func prog "f" ~params:[ "x", Ty.Float; "y", Ty.Float ] ~ret:Ty.Float
  in
  let x, y = match ps with [ a; b ] -> a, b | _ -> assert false in
  let r = B.add b (B.sin_ b (B.mul b x y)) (B.div b x (B.exp_ b y)) in
  B.return b (Some r);
  ignore (B.finish b);
  let tprog, tname = Parad_core.Forward.tangent prog "f" in
  let xv = 0.8 and yv = 1.3 in
  let dir = [| 0.37; -0.61 |] in
  let tret = ref V.VUnit in
  let res =
    Exec.run tprog ~fname:tname ~setup:(fun ctx ->
        let t = Exec.zeros ctx 1 in
        tret := t;
        [ V.VFloat xv; V.VFloat yv; V.VFloat dir.(0); V.VFloat dir.(1); t ])
  in
  ignore res;
  let fwd = (Exec.to_floats !tret).(0) in
  let g = GC.reverse prog "f" [ GC.AScalar xv; GC.AScalar yv ] in
  let rev = (g.GC.d_scalars.(0) *. dir.(0)) +. (g.GC.d_scalars.(1) *. dir.(1)) in
  Alcotest.check feq "forward == <reverse, dir>" rev fwd

(* parallel kernel: out[i] = exp(x[i]) * x[i], forward through the fork *)
let test_forward_parallel () =
  let prog = Prog.create () in
  let b, ps =
    B.func prog "k"
      ~attrs:[ Func.noalias; Func.noalias; Func.default_attr ]
      ~params:[ "x", Ty.Ptr Ty.Float; "out", Ty.Ptr Ty.Float; "n", Ty.Int ]
      ~ret:Ty.Unit
  in
  let x, out, n = match ps with [ a; b; c ] -> a, b, c | _ -> assert false in
  B.parallel_for b ~lo:(B.i64 b 0) ~hi:n (fun i ->
      let xi = B.load b x i in
      B.store b out i (B.mul b (B.exp_ b xi) xi));
  B.return b None;
  ignore (B.finish b);
  let tprog, tname = Parad_core.Forward.tangent prog "k" in
  Verifier.check_prog tprog;
  let input = [| 0.2; -0.5; 1.1; 0.8; -1.3 |] in
  let dir = [| 1.0; 0.5; -0.25; 0.0; 2.0 |] in
  let tout = ref V.VUnit in
  ignore
    (Exec.run ~cfg:(cfgw 4) tprog ~fname:tname ~setup:(fun ctx ->
         let xs = Exec.floats ctx input in
         let os = Exec.zeros ctx 5 in
         let tx = Exec.floats ctx dir in
         let to_ = Exec.zeros ctx 5 in
         tout := to_;
         [ xs; os; V.VInt 5; tx; to_ ]));
  let fwd = Exec.to_floats !tout in
  (* reverse with each unit seed gives rows; compare the directional sum *)
  let g =
    GC.reverse ~cfg:(cfgw 4) prog "k"
      [ GC.ABuf input; GC.ABuf (Array.make 5 0.0); GC.AInt 5 ]
      ~seeds:[ Array.make 5 0.0; Array.make 5 1.0 ]
  in
  let rev_proj =
    Array.fold_left ( +. ) 0.0
      (Array.mapi (fun i d -> d *. dir.(i)) (List.hd g.GC.d_bufs))
  in
  let fwd_proj = Array.fold_left ( +. ) 0.0 fwd in
  Alcotest.check feq "sum t_out == <d_x, dir>" rev_proj fwd_proj;
  (* elementwise: t_out[i] = (exp'(x)x + exp(x)) * dir[i] *)
  Array.iteri
    (fun i xi ->
      let expect = ((exp xi *. xi) +. exp xi) *. dir.(i) in
      Alcotest.check feq (Printf.sprintf "t_out[%d]" i) expect fwd.(i))
    input

(* forward through MPI: ring shift, tangents travel with the data *)
let test_forward_mpi () =
  let prog = Prog.create () in
  let b, ps =
    B.func prog "ring"
      ~attrs:[ Func.noalias; Func.default_attr ]
      ~params:[ "x", Ty.Ptr Ty.Float; "n", Ty.Int ]
      ~ret:Ty.Float
  in
  let x, n = match ps with [ a; b ] -> a, b | _ -> assert false in
  let rank = B.call b ~ret:Ty.Int "mpi.rank" [] in
  let size = B.call b ~ret:Ty.Int "mpi.size" [] in
  let one = B.i64 b 1 in
  let next = B.rem b (B.add b rank one) size in
  let prev = B.rem b (B.add b rank (B.sub b size one)) size in
  let y = B.alloc b Ty.Float n in
  let tag = B.i64 b 2 in
  let s = B.call b ~ret:Ty.Int "mpi.isend" [ x; n; next; tag ] in
  let r = B.call b ~ret:Ty.Int "mpi.irecv" [ y; n; prev; tag ] in
  ignore (B.call b ~ret:Ty.Unit "mpi.wait" [ s ]);
  ignore (B.call b ~ret:Ty.Unit "mpi.wait" [ r ]);
  let acc = B.alloc b Ty.Float one in
  B.store b acc (B.i64 b 0) (B.f64 b 0.0);
  B.for_n b n (fun i ->
      let yi = B.load b y i in
      let cur = B.load b acc (B.i64 b 0) in
      B.store b acc (B.i64 b 0) (B.add b cur (B.mul b yi yi)));
  let out = B.alloc b Ty.Float one in
  ignore (B.call b ~ret:Ty.Unit "mpi.allreduce_sum" [ acc; out; one ]);
  B.return b (Some (B.load b out (B.i64 b 0)));
  ignore (B.finish b);
  let tprog, tname = Parad_core.Forward.tangent prog "ring" in
  let nranks = 3 and nn = 2 in
  let data rank = Array.init nn (fun i -> 0.4 +. float_of_int (rank + i)) in
  let dir rank = Array.init nn (fun i -> 0.1 *. float_of_int ((rank * nn) + i + 1)) in
  (* loss = sum_r |x_r|^2 (the ring shift preserves the multiset), so the
     tangent on every rank is sum_r <2 x_r, dir_r> *)
  let expect =
    let acc = ref 0.0 in
    for r = 0 to nranks - 1 do
      Array.iteri
        (fun i xi -> acc := !acc +. (2.0 *. xi *. (dir r).(i)))
        (data r)
    done;
    !acc
  in
  let touts = Array.make nranks V.VUnit in
  ignore
    (Exec.run_spmd tprog ~nranks ~fname:tname ~setup:(fun ctx ~rank ->
         let xs = Exec.floats ctx (data rank) in
         let tx = Exec.floats ctx (dir rank) in
         let tr = Exec.floats ctx [| 0.0 |] in
         touts.(rank) <- tr;
         [ xs; V.VInt nn; tx; tr ]));
  for r = 0 to nranks - 1 do
    Alcotest.check feq
      (Printf.sprintf "rank %d tangent" r)
      expect
      (Exec.to_floats touts.(r)).(0)
  done


(* ---- property: forward == reverse on random programs ---- *)

type gop = GAdd | GMul | GSub | GSin | GMin | GLoad of int | GConstF of float

let gen_ops =
  QCheck.Gen.(
    list_size (int_range 1 30)
      (frequency
         [
           3, return GAdd;
           3, return GMul;
           2, return GSub;
           1, return GSin;
           1, return GMin;
           3, map (fun i -> GLoad (abs i mod 6)) int;
           2, map (fun f -> GConstF (Float.of_int (f mod 9) /. 4.0)) int;
         ]))

let build_random ops =
  let prog = Prog.create () in
  let b, ps =
    B.func prog "rand"
      ~attrs:[ Func.noalias_readonly ]
      ~params:[ "x", Ty.Ptr Ty.Float ]
      ~ret:Ty.Float
  in
  let x = List.hd ps in
  let stack = ref [ B.f64 b 0.25 ] in
  let push v = stack := v :: !stack in
  let pop2 () =
    match !stack with
    | a :: c :: rest ->
      stack := rest;
      a, c
    | [ a ] -> a, a
    | [] -> assert false
  in
  List.iter
    (fun op ->
      match op with
      | GAdd ->
        let a, c = pop2 () in
        push (B.add b a c)
      | GMul ->
        let a, c = pop2 () in
        push (B.mul b a c)
      | GSub ->
        let a, c = pop2 () in
        push (B.sub b a c)
      | GSin -> push (B.sin_ b (List.hd !stack))
      | GMin ->
        let a, c = pop2 () in
        push (B.min_ b a c)
      | GLoad i -> push (B.load b x (B.i64 b i))
      | GConstF f -> push (B.f64 b f))
    ops;
  let r = List.fold_left (fun acc v -> B.add b acc v) (B.f64 b 0.0) !stack in
  B.return b (Some r);
  ignore (B.finish b);
  prog

let rand_input = [| 0.31; -0.87; 1.4; 0.52; -0.11; 0.93 |]
let rand_dir = [| 1.0; -0.5; 0.25; 2.0; -1.5; 0.75 |]

let forward_directional prog =
  let tprog, tname = Parad_core.Forward.tangent prog "rand" in
  let tret = ref V.VUnit in
  ignore
    (Exec.run tprog ~fname:tname ~setup:(fun ctx ->
         let xs = Exec.floats ctx rand_input in
         let tx = Exec.floats ctx rand_dir in
         let tr = Exec.zeros ctx 1 in
         tret := tr;
         [ xs; tx; tr ]));
  (Exec.to_floats !tret).(0)

let reverse_directional prog =
  let g =
    GC.reverse prog "rand" [ GC.ABuf rand_input ] ~seeds:[ Array.make 6 0.0 ]
  in
  Array.fold_left ( +. ) 0.0
    (Array.mapi (fun i d -> d *. rand_dir.(i)) (List.hd g.GC.d_bufs))

let prop_forward_eq_reverse =
  QCheck.Test.make ~name:"forward == reverse (random programs)" ~count:120
    (QCheck.make gen_ops) (fun ops ->
      let prog = build_random ops in
      let f = forward_directional prog in
      let r = reverse_directional prog in
      Float.abs (f -. r) <= 1e-9 *. Float.max 1.0 (Float.abs f))

(* gradients of a random parallel map must not depend on thread count *)
let prop_parallel_gradient_width_invariant =
  QCheck.Test.make ~name:"parallel gradient width-invariant" ~count:40
    (QCheck.make
       QCheck.Gen.(pair gen_ops (int_range 2 9)))
    (fun (ops, w) ->
      (* wrap the random expression in a parallel map over 6 elements *)
      let prog = Prog.create () in
      let b, ps =
        B.func prog "pmap"
          ~attrs:[ Func.noalias_readonly; Func.noalias; Func.default_attr ]
          ~params:
            [ "x", Ty.Ptr Ty.Float; "out", Ty.Ptr Ty.Float; "n", Ty.Int ]
          ~ret:Ty.Unit
      in
      let x, out, n =
        match ps with [ a; b; c ] -> a, b, c | _ -> assert false
      in
      B.parallel_for b ~lo:(B.i64 b 0) ~hi:n (fun i ->
          let xi = B.load b x i in
          let stack = ref [ xi ] in
          let push v = stack := v :: !stack in
          let pop2 () =
            match !stack with
            | a :: c :: rest ->
              stack := rest;
              a, c
            | [ a ] -> a, a
            | [] -> assert false
          in
          List.iter
            (fun op ->
              match op with
              | GAdd ->
                let a, c = pop2 () in
                push (B.add b a c)
              | GMul ->
                let a, c = pop2 () in
                push (B.mul b a c)
              | GSub ->
                let a, c = pop2 () in
                push (B.sub b a c)
              | GSin -> push (B.sin_ b (List.hd !stack))
              | GMin ->
                let a, c = pop2 () in
                push (B.min_ b a c)
              | GLoad _ -> push xi
              | GConstF f -> push (B.f64 b f))
            ops;
          B.store b out i (List.hd !stack));
      B.return b None;
      ignore (B.finish b);
      let grad w =
        let g =
          GC.reverse ~cfg:(cfgw w) prog "pmap"
            [ GC.ABuf rand_input; GC.ABuf (Array.make 6 0.0); GC.AInt 6 ]
            ~seeds:[ Array.make 6 0.0; Array.make 6 1.0 ]
        in
        List.hd g.GC.d_bufs
      in
      let g1 = grad 1 and gw = grad w in
      Array.for_all2
        (fun a c -> Float.abs (a -. c) <= 1e-10 *. Float.max 1.0 (Float.abs a))
        g1 gw)

let () =
  Alcotest.run "forward"
    [
      ( "tangent",
        [
          Alcotest.test_case "scalar directional" `Quick test_forward_scalar;
          Alcotest.test_case "parallel for" `Quick test_forward_parallel;
          Alcotest.test_case "mpi ring" `Quick test_forward_mpi;
        ] );
      ( "props",
        [
          QCheck_alcotest.to_alcotest prop_forward_eq_reverse;
          QCheck_alcotest.to_alcotest prop_parallel_gradient_width_invariant;
        ] );
    ]
