(* IR construction, verification, and printing. *)

open Parad_ir
module B = Builder

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let build_square () =
  let prog = Prog.create () in
  let b, ps = B.func prog "square" ~params:[ "x", Ty.Float ] ~ret:Ty.Float in
  let x = List.hd ps in
  let y = B.mul b x x in
  B.return b (Some y);
  ignore (B.finish b);
  prog

let test_build_and_verify () =
  let prog = build_square () in
  match Verifier.check_prog_result prog with
  | Ok () -> ()
  | Error m -> Alcotest.failf "verifier rejected valid program: %s" m

let test_printer () =
  let prog = build_square () in
  let s = Printer.prog_to_string prog in
  Alcotest.(check bool) "func header" true (contains s "func @square");
  Alcotest.(check bool) "mul op" true (contains s "mul");
  Alcotest.(check bool) "return" true (contains s "return")

let test_use_before_def_rejected () =
  let prog = Prog.create () in
  let b, _ = B.func prog "bad" ~params:[] ~ret:Ty.Float in
  let ghost = Var.make ~id:17 ~ty:Ty.Float ~name:"ghost" in
  let v = B.add b ghost ghost in
  B.return b (Some v);
  ignore (B.finish b);
  match Verifier.check_prog_result prog with
  | Ok () -> Alcotest.fail "verifier accepted use-before-def"
  | Error _ -> ()

let test_type_mismatch_rejected () =
  let prog = Prog.create () in
  let b, _ = B.func prog "bad2" ~params:[] ~ret:Ty.Float in
  let i = B.i64 b 1 in
  B.return b (Some i);
  ignore (B.finish b);
  match Verifier.check_prog_result prog with
  | Ok () -> Alcotest.fail "verifier accepted return type mismatch"
  | Error _ -> ()

let test_workshare_outside_fork_rejected () =
  let prog = Prog.create () in
  let b, _ = B.func prog "bad3" ~params:[] ~ret:Ty.Unit in
  let lo = B.i64 b 0 and hi = B.i64 b 4 in
  B.workshare b ~lo ~hi (fun _ -> ());
  B.return b None;
  ignore (B.finish b);
  match Verifier.check_prog_result prog with
  | Ok () -> Alcotest.fail "verifier accepted workshare outside fork"
  | Error _ -> ()

let test_nested_fork_rejected () =
  let prog = Prog.create () in
  let b, _ = B.func prog "bad4" ~params:[] ~ret:Ty.Unit in
  B.fork b (fun ~tid:_ ~nth:_ -> B.fork b (fun ~tid:_ ~nth:_ -> ()));
  B.return b None;
  ignore (B.finish b);
  match Verifier.check_prog_result prog with
  | Ok () -> Alcotest.fail "verifier accepted nested fork"
  | Error _ -> ()

let test_structured_builder () =
  let prog = Prog.create () in
  let b, ps = B.func prog "f" ~params:[ "n", Ty.Int ] ~ret:Ty.Float in
  let n = List.hd ps in
  let acc = B.alloc b Ty.Float (B.i64 b 1) in
  B.store b acc (B.i64 b 0) (B.f64 b 0.0);
  B.for_n b n (fun i ->
      let x = B.to_float b i in
      let cur = B.load b acc (B.i64 b 0) in
      B.store b acc (B.i64 b 0) (B.add b cur x));
  let r = B.load b acc (B.i64 b 0) in
  B.free b acc;
  B.return b (Some r);
  ignore (B.finish b);
  match Verifier.check_prog_result prog with
  | Ok () -> ()
  | Error m -> Alcotest.failf "loop program rejected: %s" m

let test_if_yield_types () =
  let prog = Prog.create () in
  let b, ps = B.func prog "g" ~params:[ "x", Ty.Float ] ~ret:Ty.Float in
  let x = List.hd ps in
  let c = B.gt b x (B.f64 b 0.0) in
  let r =
    B.if_ b c ~results:[ Ty.Float ]
      ~then_:(fun () -> [ x ])
      ~else_:(fun () -> [ B.neg b x ])
  in
  B.return b (Some (List.hd r));
  ignore (B.finish b);
  match Verifier.check_prog_result prog with
  | Ok () -> ()
  | Error m -> Alcotest.failf "if program rejected: %s" m

let test_parallel_constructs_verify () =
  let prog = Prog.create () in
  let b, ps =
    B.func prog "pf" ~params:[ "out", Ty.Ptr Ty.Float; "n", Ty.Int ]
      ~ret:Ty.Unit
  in
  let out, n = match ps with [ a; b ] -> a, b | _ -> assert false in
  B.fork b (fun ~tid ~nth:_ ->
      B.workshare b ~lo:(B.i64 b 0) ~hi:n (fun i ->
          B.store b out i (B.to_float b i));
      B.barrier b;
      ignore tid);
  B.return b None;
  ignore (B.finish b);
  match Verifier.check_prog_result prog with
  | Ok () -> ()
  | Error m -> Alcotest.failf "parallel program rejected: %s" m

let test_instr_fold_counts () =
  let prog = build_square () in
  let f = Prog.find_exn prog "square" in
  let count = Instr.fold_instrs (fun acc _ -> acc + 1) 0 f.body in
  Alcotest.(check int) "instr count" 2 count

let ty_gen =
  QCheck.make
    (QCheck.Gen.sized (fun n ->
         let rec gen n =
           if n = 0 then QCheck.Gen.oneofl [ Ty.Unit; Ty.Bool; Ty.Int; Ty.Float ]
           else
             QCheck.Gen.oneof
               [
                 QCheck.Gen.oneofl [ Ty.Unit; Ty.Bool; Ty.Int; Ty.Float ];
                 QCheck.Gen.map (fun t -> Ty.Ptr t) (gen (n / 2));
               ]
         in
         gen (min n 6)))

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"ty_equal_refl" ~count:200 ty_gen (fun t ->
           Ty.equal t t));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"ptr_elem_roundtrip" ~count:200 ty_gen (fun t ->
           Ty.equal (Ty.elem (Ty.Ptr t)) t));
  ]

let () =
  Alcotest.run "ir"
    [
      ( "builder",
        [
          Alcotest.test_case "build+verify" `Quick test_build_and_verify;
          Alcotest.test_case "printer" `Quick test_printer;
          Alcotest.test_case "loop program" `Quick test_structured_builder;
          Alcotest.test_case "if yields" `Quick test_if_yield_types;
          Alcotest.test_case "parallel constructs" `Quick
            test_parallel_constructs_verify;
          Alcotest.test_case "fold_instrs" `Quick test_instr_fold_counts;
        ] );
      ( "verifier",
        [
          Alcotest.test_case "use-before-def" `Quick
            test_use_before_def_rejected;
          Alcotest.test_case "type mismatch" `Quick test_type_mismatch_rejected;
          Alcotest.test_case "workshare placement" `Quick
            test_workshare_outside_fork_rejected;
          Alcotest.test_case "nested fork" `Quick test_nested_fork_rejected;
        ] );
      "props", qcheck_tests;
    ]
