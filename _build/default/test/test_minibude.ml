(* miniBUDE proxy: variant agreement, gradient correctness vs finite
   differences, and the Julia-overhead property the paper reports. *)

module MB = Apps_minibude.Minibude

let feq eps = Alcotest.float eps

let small = MB.deck ~nposes:6 ~natlig:3 ~natpro:4

let test_variants_agree () =
  let seq = MB.run MB.Seq small in
  let omp = MB.run ~nthreads:4 MB.Omp small in
  let jl = MB.run ~nthreads:4 MB.Julia small in
  Array.iteri
    (fun i e ->
      Alcotest.check (feq 1e-10) (Printf.sprintf "omp pose %d" i) e
        omp.MB.energies.(i);
      Alcotest.check (feq 1e-10) (Printf.sprintf "jl pose %d" i) e
        jl.MB.energies.(i))
    seq.MB.energies

let fd_check variant ~nthreads =
  (* finite differences on the ligand coordinates through the full
     variant *)
  let g = MB.gradient ~nthreads variant small in
  let h = 1e-6 in
  let loss lig_data =
    let inp = { small with MB.lig_data } in
    Array.fold_left ( +. ) 0.0 (MB.run ~nthreads variant inp).MB.energies
  in
  Array.iteri
    (fun i _ ->
      let up =
        let c = Array.copy small.MB.lig_data in
        c.(i) <- c.(i) +. h;
        loss c
      in
      let dn =
        let c = Array.copy small.MB.lig_data in
        c.(i) <- c.(i) -. h;
        loss c
      in
      let fd = (up -. dn) /. (2.0 *. h) in
      let ad = g.MB.d_lig.(i) in
      let scale = Float.max 1.0 (Float.max (Float.abs fd) (Float.abs ad)) in
      Alcotest.check (feq 1e-4)
        (Printf.sprintf "d lig[%d] (fd=%g ad=%g)" i fd ad)
        0.0
        ((fd -. ad) /. scale))
    small.MB.lig_data

let test_gradient_seq () = fd_check MB.Seq ~nthreads:1
let test_gradient_omp () = fd_check MB.Omp ~nthreads:4
let test_gradient_julia () = fd_check MB.Julia ~nthreads:3

let test_gradients_match_across_variants () =
  let gs = MB.gradient MB.Seq small in
  let go = MB.gradient ~nthreads:4 MB.Omp small in
  let gj = MB.gradient ~nthreads:4 MB.Julia small in
  Array.iteri
    (fun i x ->
      Alcotest.check (feq 1e-9) "omp poses grad" x go.MB.d_poses.(i);
      Alcotest.check (feq 1e-9) "jl poses grad" x gj.MB.d_poses.(i))
    gs.MB.d_poses

let test_julia_overhead_higher () =
  (* §VIII: miniBUDE.jl's gradient overhead is higher than the (optimized,
     as Enzyme sees it post-Clang-O2+OpenMPOpt) OpenMP version's, because
     the descriptor indirection defeats alias analysis and forces
     caching *)
  let inp = MB.deck ~nposes:16 ~natlig:6 ~natpro:8 in
  let overhead ?(pre = []) variant =
    let p = (MB.run ~nthreads:4 ~pre variant inp).MB.makespan in
    let g = (MB.gradient ~nthreads:4 ~pre variant inp).MB.g_makespan in
    g /. p
  in
  let o_omp = overhead ~pre:Parad_opt.Pipeline.o2_openmp MB.Omp in
  let o_jl = overhead ~pre:Parad_opt.Pipeline.o2 MB.Julia in
  Alcotest.(check bool)
    (Printf.sprintf "julia overhead (%.2fx) > omp overhead (%.2fx)" o_jl o_omp)
    true (o_jl > o_omp)

let test_omp_scales () =
  let inp = MB.deck ~nposes:64 ~natlig:8 ~natpro:10 in
  let t w = (MB.run ~nthreads:w MB.Omp inp).MB.makespan in
  let t1 = t 1 and t8 = t 8 in
  Alcotest.(check bool)
    (Printf.sprintf "omp speedup %.2f" (t1 /. t8))
    true
    (t8 < t1 /. 4.0)

let test_gradient_scales () =
  let inp = MB.deck ~nposes:64 ~natlig:8 ~natpro:10 in
  let t w = (MB.gradient ~nthreads:w MB.Omp inp).MB.g_makespan in
  let t1 = t 1 and t8 = t 8 in
  Alcotest.(check bool)
    (Printf.sprintf "gradient speedup %.2f" (t1 /. t8))
    true
    (t8 < t1 /. 4.0)

let () =
  Alcotest.run "minibude"
    [
      ( "primal",
        [
          Alcotest.test_case "variants agree" `Quick test_variants_agree;
          Alcotest.test_case "omp scales" `Quick test_omp_scales;
        ] );
      ( "gradient",
        [
          Alcotest.test_case "seq vs fd" `Quick test_gradient_seq;
          Alcotest.test_case "omp vs fd" `Quick test_gradient_omp;
          Alcotest.test_case "julia vs fd" `Quick test_gradient_julia;
          Alcotest.test_case "variants agree" `Quick
            test_gradients_match_across_variants;
          Alcotest.test_case "julia overhead higher" `Quick
            test_julia_overhead_higher;
          Alcotest.test_case "gradient scales" `Quick test_gradient_scales;
        ] );
    ]
