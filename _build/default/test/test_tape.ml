(* The operator-overloading tape baseline (CoDiPack analog): correctness
   against the compiler-integrated engine and finite differences, its
   adjoint-MPI extension, its OpenMP limitation, and the cost-model
   property the paper's Fig 8 analysis hinges on (high serial gradient
   overhead). *)

open Parad_ir
open Parad_runtime
module B = Builder
module GC = Parad_verify.Grad_check
module TC = Parad_verify.Tape_check

let feq = Alcotest.float 1e-8

let two ps = match ps with [ a; b ] -> a, b | _ -> assert false

(* shared serial test kernel: y = sum_i sin(x_i) * x_i^2 *)
let serial_prog () =
  let prog = Prog.create () in
  let b, ps =
    B.func prog "k" ~params:[ "x", Ty.Ptr Ty.Float; "n", Ty.Int ]
      ~ret:Ty.Float
  in
  let x, n = two ps in
  let acc = B.alloc b Ty.Float (B.i64 b 1) in
  B.store b acc (B.i64 b 0) (B.f64 b 0.0);
  B.for_n b n (fun i ->
      let xi = B.load b x i in
      let v = B.mul b (B.sin_ b xi) (B.mul b xi xi) in
      let cur = B.load b acc (B.i64 b 0) in
      B.store b acc (B.i64 b 0) (B.add b cur v));
  B.return b (Some (B.load b acc (B.i64 b 0)));
  ignore (B.finish b);
  prog

let input = [| 0.4; -1.3; 2.1; 0.9 |]

let test_tape_matches_enzyme () =
  let prog = serial_prog () in
  let args = [ GC.ABuf input; GC.AInt 4 ] in
  let seeds = [ Array.make 4 0.0 ] in
  let enzyme = GC.reverse prog "k" args ~seeds in
  let tape, _ = TC.reverse prog "k" args ~seeds in
  Alcotest.check feq "primal" enzyme.GC.primal tape.GC.primal;
  Array.iter2
    (fun a b -> Alcotest.check feq "adjoint" a b)
    (List.hd enzyme.GC.d_bufs)
    (List.hd tape.GC.d_bufs)

let test_tape_entries_recorded () =
  let prog = serial_prog () in
  let _, tape =
    TC.reverse prog "k"
      [ GC.ABuf input; GC.AInt 4 ]
      ~seeds:[ Array.make 4 0.0 ]
  in
  Alcotest.(check bool)
    "tape grew" true
    (Parad_tape.Tape.length tape > 4 * 3)

let test_tape_serial_overhead_higher_than_enzyme () =
  (* the crux of the paper's CoDiPack comparison: per-statement taping
     makes the serial gradient much slower than the compiler-generated
     one *)
  let prog = serial_prog () in
  let big = Array.init 256 (fun i -> 0.01 *. float_of_int (i + 1)) in
  let args = [ GC.ABuf big; GC.AInt 256 ] in
  let seeds = [ Array.make 256 0.0 ] in
  let primal =
    let _, _, res = GC.run_primal prog "k" args in
    res.Exec.makespan
  in
  let enzyme = (GC.reverse prog "k" args ~seeds).GC.makespan in
  let tape = (fst (TC.reverse prog "k" args ~seeds)).GC.makespan in
  let eo = enzyme /. primal and to_ = tape /. primal in
  Alcotest.(check bool)
    (Printf.sprintf "tape overhead (%.2fx) > enzyme overhead (%.2fx)" to_ eo)
    true (to_ > eo)

let test_tape_rejects_openmp () =
  let prog = Prog.create () in
  let b, ps =
    B.func prog "pf" ~params:[ "x", Ty.Ptr Ty.Float; "n", Ty.Int ]
      ~ret:Ty.Unit
  in
  let x, n = two ps in
  B.parallel_for b ~lo:(B.i64 b 0) ~hi:n (fun i ->
      B.store b x i (B.f64 b 1.0));
  B.return b None;
  ignore (B.finish b);
  match
    TC.reverse prog "pf"
      [ GC.ABuf [| 0.0; 0.0 |]; GC.AInt 2 ]
      ~seeds:[ Array.make 2 1.0 ]
  with
  | _ -> Alcotest.fail "tape accepted fork/join parallelism"
  | exception Value.Runtime_error _ -> ()

(* MPI: ring exchange, tape vs enzyme vs exact *)
let ring_prog () =
  let prog = Prog.create () in
  let b, ps =
    B.func prog "ring"
      ~attrs:[ Func.noalias; Func.default_attr ]
      ~params:[ "x", Ty.Ptr Ty.Float; "n", Ty.Int ]
      ~ret:Ty.Float
  in
  let x, n = two ps in
  let rank = B.call b ~ret:Ty.Int "mpi.rank" [] in
  let size = B.call b ~ret:Ty.Int "mpi.size" [] in
  let one = B.i64 b 1 in
  let next = B.rem b (B.add b rank one) size in
  let prev = B.rem b (B.add b rank (B.sub b size one)) size in
  let y = B.alloc b Ty.Float n in
  let tag = B.i64 b 5 in
  let sreq = B.call b ~ret:Ty.Int "mpi.isend" [ x; n; next; tag ] in
  let rreq = B.call b ~ret:Ty.Int "mpi.irecv" [ y; n; prev; tag ] in
  ignore (B.call b ~ret:Ty.Unit "mpi.wait" [ sreq ]);
  ignore (B.call b ~ret:Ty.Unit "mpi.wait" [ rreq ]);
  let acc = B.alloc b Ty.Float one in
  B.store b acc (B.i64 b 0) (B.f64 b 0.0);
  B.for_n b n (fun i ->
      let yi = B.load b y i in
      let cur = B.load b acc (B.i64 b 0) in
      B.store b acc (B.i64 b 0) (B.add b cur (B.mul b yi yi)));
  let out = B.alloc b Ty.Float one in
  ignore (B.call b ~ret:Ty.Unit "mpi.allreduce_sum" [ acc; out; one ]);
  B.return b (Some (B.load b out (B.i64 b 0)));
  ignore (B.finish b);
  prog

let test_tape_ampi_matches_enzyme () =
  let prog = ring_prog () in
  let nranks = 4 in
  let n = 3 in
  let data rank = Array.init n (fun i -> 0.2 +. (0.3 *. float_of_int (rank + i))) in
  let args ~rank = [ GC.ABuf (data rank); GC.AInt n ] in
  let seeds ~rank:_ = [ Array.make n 0.0 ] in
  let d_ret ~rank = if rank = 0 then 1.0 else 0.0 in
  let enzyme = GC.reverse_spmd prog "ring" ~nranks ~args ~seeds ~d_ret in
  let tape, _ = TC.reverse_spmd prog "ring" ~nranks ~args ~seeds ~d_ret in
  for r = 0 to nranks - 1 do
    Array.iter2
      (fun a b -> Alcotest.check feq (Printf.sprintf "rank %d" r) a b)
      (List.hd enzyme.GC.s_d_bufs.(r))
      (List.hd tape.GC.s_d_bufs.(r))
  done

let test_tape_ampi_scaling_artifact () =
  (* fig 8's analysis: tape "scales better" only because its serial
     overhead dominates at low rank counts. Check the signature: the
     tape/enzyme gradient-time ratio shrinks as ranks increase. *)
  let prog = ring_prog () in
  let total = 8192 in
  let time_of tool nranks =
    (* strong scaling: fixed total work split across ranks *)
    let n = total / nranks in
    let args ~rank =
      [ GC.ABuf (Array.init n (fun i -> 0.01 *. float_of_int (rank + i))); GC.AInt n ]
    in
    let seeds ~rank:_ = [ Array.make n 0.0 ] in
    let d_ret ~rank = if rank = 0 then 1.0 else 0.0 in
    match tool with
    | `Enzyme ->
      (GC.reverse_spmd prog "ring" ~nranks ~args ~seeds ~d_ret).GC.s_makespan
    | `Tape ->
      (fst (TC.reverse_spmd prog "ring" ~nranks ~args ~seeds ~d_ret))
        .GC.s_makespan
  in
  let ratio nranks = time_of `Tape nranks /. time_of `Enzyme nranks in
  let r2 = ratio 2 and r8 = ratio 8 in
  Alcotest.(check bool)
    (Printf.sprintf "tape/enzyme ratio shrinks with ranks (%.2f -> %.2f)" r2
       r8)
    true (r8 < r2)

let () =
  Alcotest.run "tape"
    [
      ( "serial",
        [
          Alcotest.test_case "matches enzyme" `Quick test_tape_matches_enzyme;
          Alcotest.test_case "records entries" `Quick
            test_tape_entries_recorded;
          Alcotest.test_case "higher serial overhead" `Quick
            test_tape_serial_overhead_higher_than_enzyme;
          Alcotest.test_case "rejects openmp" `Quick test_tape_rejects_openmp;
        ] );
      ( "ampi",
        [
          Alcotest.test_case "matches enzyme" `Quick
            test_tape_ampi_matches_enzyme;
          Alcotest.test_case "scaling artifact" `Quick
            test_tape_ampi_scaling_artifact;
        ] );
    ]
