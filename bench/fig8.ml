(* Figure 8: LULESH under MPI — runtime (top), strong scaling (middle),
   weak scaling (bottom) for Enzyme C++ MPI, Enzyme Julia MPI, Enzyme
   RAJA MPI and the CoDiPack (tape) C++ MPI baseline.

   Substitution note (DESIGN.md): the paper's cube decompositions
   {1,8,27,64} become slab decompositions over power-of-two rank counts;
   the dual-socket NUMA falloff past half the machine is preserved. *)

open Util

let ranks_of quick = if quick then [ 1; 4; 16; 64 ] else [ 1; 2; 8; 16; 32; 64 ]

let run ~quick =
  header "Figure 8 — LULESH MPI: runtime, strong scaling, weak scaling";
  let rmax = cli_ranks ~default:64 in
  let ranks = List.filter (fun r -> r <= rmax) (ranks_of quick) in
  let nz = 64 in
  let base =
    {
      L.nx = (if quick then 2 else 4);
      ny = (if quick then 2 else 4);
      nz;
      niter = 2;
      dt0 = 0.01;
      escale = 1.0;
    }
  in
  (* the C++ MPI rows keep their full results: the adjoint-communication
     counters go into BENCH_mpi.json and the counter table below *)
  let cpp_fwd = List.map (fun n -> L.run ~nranks:n L.Mpi base) ranks in
  let cpp_grad = List.map (fun n -> L.gradient ~nranks:n L.Mpi base) ranks in
  let cpp_fwd_t = List.map (fun (r : L.run_result) -> r.L.makespan) cpp_fwd in
  let cpp_grad_t =
    List.map (fun (r : L.grad_result) -> r.L.g_makespan) cpp_grad
  in
  let fwd flavor n = (L.run ~nranks:n flavor base).L.makespan in
  let grad flavor n = (L.gradient ~nranks:n flavor base).L.g_makespan in
  let series name f = name, List.map f ranks in
  let table =
    [
      "C++ MPI forward", cpp_fwd_t;
      "C++ MPI gradient", cpp_grad_t;
      series "Julia MPI forward" (fwd L.Jlmpi);
      series "Julia MPI gradient" (grad L.Jlmpi);
      series "RAJA MPI forward" (fwd L.RajaMpi);
      series "RAJA MPI gradient" (grad L.RajaMpi);
      series "CoDiPack MPI gradient" (fun n -> lulesh_tape_gradient base ~nranks:n);
    ]
  in
  let f1 = List.hd cpp_fwd_t and g1 = List.hd cpp_grad_t in
  List.iteri
    (fun i n ->
      let gr = List.nth cpp_grad i in
      record_mpi ~name:"lulesh_cpp_mpi" ~nranks:n ~coalesce:true
        ~forward:(List.nth cpp_fwd_t i) ~gradient:gr.L.g_makespan
        ~fwd_speedup:(f1 /. List.nth cpp_fwd_t i)
        ~grad_speedup:(g1 /. gr.L.g_makespan)
        ~stats:(Some gr.L.g_stats))
    ranks;
  subheader "top row: runtime (virtual cycles) vs ranks";
  cols "ranks" ranks;
  List.iter (fun (n, ts) -> row_of_floats n ts) table;
  subheader "middle row: strong-scaling speedup (T1 / TN)";
  cols "ranks" ranks;
  List.iter (fun (n, ts) -> row_of_floats n (speedups ts)) table;
  subheader "gradient/forward overhead vs ranks";
  cols "ranks" ranks;
  let over fwd_n grad_n = List.map2 (fun a b -> b /. a) fwd_n grad_n in
  let t n = List.assoc n (List.map (fun (a, b) -> a, b) table) in
  row_of_floats "C++ (Enzyme)" (over (t "C++ MPI forward") (t "C++ MPI gradient"));
  row_of_floats "Julia (Enzyme)" (over (t "Julia MPI forward") (t "Julia MPI gradient"));
  row_of_floats "C++ (CoDiPack)" (over (t "C++ MPI forward") (t "CoDiPack MPI gradient"));
  (* bottom row: weak scaling — fixed per-rank block *)
  subheader "bottom row: weak scaling efficiency (T1 / TN, fixed work per rank)";
  let block = if quick then 2 else 4 in
  let weak flavor isgrad n =
    let inp = { base with L.nz = block * n } in
    if isgrad then (L.gradient ~nranks:n flavor inp).L.g_makespan
    else (L.run ~nranks:n flavor inp).L.makespan
  in
  cols "ranks" ranks;
  List.iter
    (fun (name, flavor, isgrad) ->
      let ts = List.map (weak flavor isgrad) ranks in
      row_of_floats name (List.map (fun t -> List.hd ts /. t) ts))
    [
      "C++ MPI forward", L.Mpi, false;
      "C++ MPI gradient", L.Mpi, true;
      "Julia MPI gradient", L.Jlmpi, true;
      "RAJA MPI gradient", L.RajaMpi, true;
    ];
  (* gated row: always the full-size mesh, so the strong-scaling
     threshold scripts/check.sh compares against bench/mpi_threshold
     means the same thing under --quick; plus the --no-coalesce
     ablation (one blocking dual per exchange, the uncoalesced
     baseline) at the same size *)
  let last l = List.nth l (List.length l - 1) in
  let gmax = last ranks in
  let gate_inp = { base with L.nx = 4; ny = 4 } in
  let gate_fwd n = L.run ~nranks:n L.Mpi gate_inp
  and gate_grad ?opts n = L.gradient ?opts ~nranks:n L.Mpi gate_inp in
  let gf1, gg1, gfn, ggn =
    if quick then
      ( (gate_fwd 1).L.makespan,
        (gate_grad 1).L.g_makespan,
        gate_fwd gmax,
        gate_grad gmax )
    else (f1, g1, last cpp_fwd, last cpp_grad)
  in
  record_mpi ~name:"lulesh_cpp_mpi_gate" ~nranks:gmax ~coalesce:true
    ~forward:gfn.L.makespan ~gradient:ggn.L.g_makespan
    ~fwd_speedup:(gf1 /. gfn.L.makespan)
    ~grad_speedup:(gg1 /. ggn.L.g_makespan)
    ~stats:(Some ggn.L.g_stats);
  let nc_opts =
    { Parad_core.Plan.default_options with coalesce_comm = false }
  in
  let ggn_nc = gate_grad ~opts:nc_opts gmax in
  record_mpi ~name:"lulesh_cpp_mpi_gate" ~nranks:gmax ~coalesce:false
    ~forward:gfn.L.makespan ~gradient:ggn_nc.L.g_makespan
    ~fwd_speedup:(gf1 /. gfn.L.makespan)
    ~grad_speedup:(gg1 /. ggn_nc.L.g_makespan)
    ~stats:(Some ggn_nc.L.g_stats);
  subheader
    (Printf.sprintf "adjoint-communication counters (%d ranks, full size)"
       gmax);
  Printf.printf "%-24s %12s %12s %12s %12s\n" "config" "gradient"
    "msgs_sent" "cells_sent" "max_inflight";
  let counter_row name (g : L.grad_result) =
    Printf.printf "%-24s %12.3g %12d %12d %12d\n" name g.L.g_makespan
      g.L.g_stats.S.msgs_sent g.L.g_stats.S.cells_sent
      g.L.g_stats.S.max_inflight
  in
  counter_row "coalesced" ggn;
  counter_row "--no-coalesce" ggn_nc
