(* Ablations of the design choices DESIGN.md calls out:
   - abl-preopt: optimize before differentiating (§V-E)
   - abl-mincut: cache-everything vs recompute-vs-cache planning (§IV-C)
   - abl-tl: thread-locality analysis vs the all-atomic fallback (§VI-A1)
   - abl-fuse: post-AD fork fusion of the fwd/rev pair (Fig 4)
   - abl-remat: how the mincut win depends on the rematerialized
     transcendental rate (the `parad grad --transcendental-remat` knob) *)

open Util
module Pipe = Parad_opt.Pipeline
module Plan = Parad_core.Plan
module Reverse = Parad_core.Reverse
open Parad_ir

let run ~quick =
  header "Ablations";
  let w = if quick then 8 else 16 in
  let deck = MB.deck ~nposes:32 ~natlig:6 ~natpro:8 in
  let inp =
    { L.nx = 4; ny = 4; nz = 8; niter = 2; dt0 = 0.01; escale = 1.0 }
  in
  subheader "abl-preopt: optimization before AD (miniBUDE OMP gradient)";
  let g pre = (MB.gradient ~nthreads:w ~pre MB.Omp deck).MB.g_makespan in
  Printf.printf "  no pre-opt      : %12.3g\n" (g []);
  Printf.printf "  O2              : %12.3g\n" (g Pipe.o2);
  Printf.printf "  O2 + OpenMPOpt  : %12.3g\n" (g Pipe.o2_openmp);
  subheader "abl-mincut: cache-everything vs recompute-vs-cache (LULESH OMP)";
  (* the sweep's upper bound is the driver's --recompute-depth flag, so
     deeper rematerialization can be explored without a rebuild *)
  let top = cli_int "--recompute-depth" ~default:10 in
  let g depth =
    let r =
      L.gradient ~nthreads:w
        ~opts:{ Plan.default_options with Plan.recompute_depth = depth }
        L.Omp inp
    in
    r.L.g_makespan, r.L.g_stats.S.cache_cells, r.L.g_stats.S.cache_peak
  in
  List.iter
    (fun depth ->
      let t, cells, peak = g depth in
      Printf.printf
        "  recompute depth %-2d %s: %12.3g cycles, %8d cache cells, %8d peak\n"
        depth
        (if depth = 0 then "(cache everything)" else "                  ")
        t cells peak)
    (List.sort_uniq compare [ 0; 4; top ]);
  subheader
    "abl-remat: rematerialized-transcendental rate (LULESH OMP, depth 4)";
  (* recompute-vs-cache plans only beat cache-everything while a
     transcendental re-evaluated in a remat chain is cheaper than one on
     the primal path; sweep the remat rate up to the primal rate to show
     how the margin closes *)
  let cm = Parad_runtime.Cost_model.default in
  let g4 rate =
    let cost = { cm with Parad_runtime.Cost_model.transcendental_remat = rate } in
    (L.gradient ~cost ~nthreads:w
       ~opts:{ Plan.default_options with Plan.recompute_depth = 4 }
       L.Omp inp)
      .L.g_makespan
  in
  let cache_all =
    (L.gradient ~nthreads:w
       ~opts:{ Plan.default_options with Plan.recompute_depth = 0 }
       L.Omp inp)
      .L.g_makespan
  in
  List.iter
    (fun rate ->
      Printf.printf
        "  remat rate %5.1f : %12.0f cycles (cache-everything %12.0f)\n"
        rate (g4 rate) cache_all)
    [
      cm.Parad_runtime.Cost_model.transcendental_remat;
      6.0;
      cm.Parad_runtime.Cost_model.transcendental;
    ];
  subheader "abl-tl: thread-locality analysis vs all-atomic fallback";
  let g atomic_always =
    let r =
      L.gradient ~nthreads:w
        ~opts:{ Plan.default_options with Plan.atomic_always }
        L.Omp inp
    in
    r.L.g_makespan, r.L.g_stats.Parad_runtime.Stats.atomics
  in
  let t_an, a_an = g false and t_at, a_at = g true in
  Printf.printf "  analysis on  : %12.3g cycles, %8d atomics\n" t_an a_an;
  Printf.printf "  all atomics  : %12.3g cycles, %8d atomics\n" t_at a_at;
  subheader "abl-fuse: post-AD fork fusion (Fig 4) on a generated gradient";
  let prog = MB.program ~ntasks:1 () in
  let dprog, dname = Reverse.gradient prog "bude_omp" in
  let count_forks p name =
    let f = Prog.find_exn p name in
    Instr.fold_instrs
      (fun n i -> match i with Instr.Fork _ -> n + 1 | _ -> n)
      0 f.Func.body
  in
  let plain = Pipe.run dprog Pipe.post_ad in
  let fused = Pipe.run dprog Pipe.post_ad_fuse in
  Printf.printf "  forks without fusion: %d\n" (count_forks plain dname);
  Printf.printf "  forks with fusion   : %d\n" (count_forks fused dname)
