(* Batched multi-seed adjoints (ISSUE 10): one taping pass and one
   reverse sweep propagating k return seeds through k-stride adjoint
   planes, vs k sequential single-seed gradients on the same engine.

   The batched sweep amortizes everything that does not scale with the
   seed count — the forward/taping pass, cache traffic, and the
   derivative transcendentals hoisted out of the lane loop — so the
   headline LULESH OMP row should approach but never reach kx. Every
   lane column must be bit-identical to its standalone run (same d_ret,
   same engine): batching is a layout change, not a numeric one.
   scripts/check.sh compares the lulesh_omp/k8 speedup against
   bench/batch_threshold and requires bitwise=true on every row. *)

open Util
module E = Parad_engine.Engine
module Plan = Parad_core.Plan

let best_of reps f =
  let best = ref None and keep = ref None in
  for _ = 1 to reps do
    let r, ns = f () in
    match !best with
    | Some b when b <= ns -> ()
    | _ ->
      best := Some ns;
      keep := Some r
  done;
  match !keep, !best with Some r, Some ns -> r, ns | _ -> assert false

let bits_eq (a : float array) (b : float array) =
  Array.length a = Array.length b
  && (let ok = ref true in
      Array.iteri
        (fun i x ->
          if Int64.bits_of_float x <> Int64.bits_of_float b.(i) then
            ok := false)
        a;
      !ok)

let run ~quick =
  header "Batched multi-seed adjoints (one sweep, k seeds)";
  let reps = if quick then 2 else 3 in
  let engine = E.Seq in
  row_of_strings "config"
    [ "batched_ms"; "k_solo_ms"; "speedup"; "bitwise" ];

  (* ---- LULESH OMP (nthreads=64): the headline row ---- *)
  let inp =
    if quick then
      { L.nx = 4; ny = 4; nz = 16; niter = 2; dt0 = 0.01; escale = 1.0 }
    else { L.nx = 4; ny = 4; nz = 64; niter = 2; dt0 = 0.01; escale = 1.0 }
  in
  let lulesh_row k =
    let d_rets = Array.init k (fun i -> 1.0 +. float_of_int i) in
    let cb = L.compile ~opts:{ Plan.default_options with seeds = k } L.Omp in
    let c1 = L.compile L.Omp in
    let batched () =
      let gs = L.gradient_batched ~nthreads:64 ~engine cb ~d_rets inp in
      gs, float_of_int gs.(0).L.g_stats.S.wall_ns
    in
    let solo l () =
      let g =
        L.gradient_compiled ~nthreads:64 ~engine ~d_ret:d_rets.(l) c1 inp
      in
      g, float_of_int g.L.g_stats.S.wall_ns
    in
    let gs, batched_ns = best_of reps batched in
    let solo_ns = ref 0.0 in
    let bitwise = ref true in
    Array.iteri
      (fun l _ ->
        let g, ns = best_of reps (solo l) in
        solo_ns := !solo_ns +. ns;
        bitwise :=
          !bitwise
          && bits_eq g.L.d_coords.(0) gs.(l).L.d_coords.(0)
          && bits_eq g.L.d_energy.(0) gs.(l).L.d_energy.(0))
      d_rets;
    let name = Printf.sprintf "lulesh_omp/k%d" k in
    row_of_strings name
      [
        Printf.sprintf "%.1f" (batched_ns /. 1e6);
        Printf.sprintf "%.1f" (!solo_ns /. 1e6);
        Printf.sprintf "%.2fx" (!solo_ns /. batched_ns);
        string_of_bool !bitwise;
      ];
    record_batch ~name ~seeds:k ~wall_ns:batched_ns ~solo_ns:!solo_ns
      ~bitwise:!bitwise;
    !bitwise
  in
  subheader "LULESH OMP gradient (nthreads=64, engine=seq)";
  let ok = ref true in
  List.iter (fun k -> ok := lulesh_row k && !ok) (if quick then [ 2; 4; 8 ] else [ 2; 4; 8 ]);

  (* ---- miniBUDE OMP ---- *)
  subheader "miniBUDE OMP gradient (nthreads=8, engine=seq)";
  let binp =
    if quick then MB.deck ~nposes:16 ~natlig:8 ~natpro:16
    else MB.deck ~nposes:48 ~natlig:12 ~natpro:64
  in
  let bude_row k =
    let ge_seeds = Array.init k (fun i -> 1.0 +. (0.5 *. float_of_int i)) in
    let cb =
      MB.compile ~opts:{ Plan.default_options with seeds = k } ~ntasks:8
        MB.Omp
    in
    let c1 = MB.compile ~ntasks:8 MB.Omp in
    let batched () =
      let gs = MB.gradient_batched ~engine cb ~ge_seeds binp in
      gs, float_of_int gs.(0).MB.g_stats.S.wall_ns
    in
    let solo l () =
      let g = MB.gradient_compiled ~engine ~ge_seed:ge_seeds.(l) c1 binp in
      g, float_of_int g.MB.g_stats.S.wall_ns
    in
    let gs, batched_ns = best_of reps batched in
    let solo_ns = ref 0.0 in
    let bitwise = ref true in
    Array.iteri
      (fun l _ ->
        let g, ns = best_of reps (solo l) in
        solo_ns := !solo_ns +. ns;
        bitwise :=
          !bitwise
          && bits_eq g.MB.d_lig gs.(l).MB.d_lig
          && bits_eq g.MB.d_pro gs.(l).MB.d_pro
          && bits_eq g.MB.d_poses gs.(l).MB.d_poses)
      ge_seeds;
    let name = Printf.sprintf "bude_omp/k%d" k in
    row_of_strings name
      [
        Printf.sprintf "%.1f" (batched_ns /. 1e6);
        Printf.sprintf "%.1f" (!solo_ns /. 1e6);
        Printf.sprintf "%.2fx" (!solo_ns /. batched_ns);
        string_of_bool !bitwise;
      ];
    record_batch ~name ~seeds:k ~wall_ns:batched_ns ~solo_ns:!solo_ns
      ~bitwise:!bitwise;
    !bitwise
  in
  List.iter (fun k -> ok := bude_row k && !ok) [ 8 ];
  if not !ok then begin
    Printf.eprintf "fig_batch: a batched lane diverged from its standalone run\n";
    exit 1
  end
