(* Long-horizon checkpoint schedules (ROADMAP item 5, DESIGN.md's
   binomial/tiered section): the LULESH MPI gradient at >= 10x the usual
   bench horizon, store-all vs. depth-k recomputation vs. a binomial
   schedule under a fixed snapshot budget. The point of the figure is the
   memory/time trade: store-all's AD cache peak grows linearly with the
   horizon while the binomial schedule keeps it at a single timestep's
   worth (plus the bounded tiered snapshot store), at the cost of primal
   re-advance work.

   The binomial gate row always runs (even under --quick); scripts/
   check.sh compares its cache_peak against bench/checkpoint_threshold. *)

open Util
module Plan = Parad_core.Plan
module CK = Parad_runtime.Checkpoint

let bits_eq (a : float array) (b : float array) =
  Array.length a = Array.length b
  && (let ok = ref true in
      Array.iteri
        (fun i x ->
          if not (Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float b.(i)))
          then ok := false)
        a;
      !ok)

let grads_eq (a : L.grad_result) (b : L.grad_result) =
  Array.length a.L.d_coords = Array.length b.L.d_coords
  && Array.for_all2 bits_eq a.L.d_coords b.L.d_coords
  && Array.for_all2 bits_eq a.L.d_energy b.L.d_energy

let run ~quick =
  header "Long-horizon checkpoint schedules (LULESH MPI gradient)";
  let nranks = 2 in
  (* the headline MPI figure runs niter=2; the long-horizon gate row is
     >= 10x that so the store-all cache actually hurts *)
  let niter = 24 in
  let budget = 4 in
  let inp = { L.nx = 2; ny = 2; nz = 4; niter; dt0 = 0.01; escale = 1.0 } in
  Printf.printf "  niter=%d nranks=%d (bench headline horizon is 2)\n" niter
    nranks;

  subheader "store-all baseline (every intermediate cached)";
  let base = L.gradient ~nranks L.Mpi inp in
  let bs = base.L.g_stats in
  Printf.printf "  gradient %12.4g cycles, cache peak %8d cells\n"
    base.L.g_makespan bs.S.cache_peak;
  record_checkpoint ~name:"lulesh_mpi_store_all" ~niter ~budget:0 ~tiers:0
    ~gradient:base.L.g_makespan ~sweeps:1 ~segments:1 ~advances:0
    ~bitwise:true ~stats:(Some bs);

  if not quick then begin
    subheader "depth-k rematerialization (intra-iteration recompute only)";
    List.iter
      (fun depth ->
        let r =
          L.gradient ~nranks
            ~opts:{ Plan.default_options with Plan.recompute_depth = depth }
            L.Mpi inp
        in
        Printf.printf
          "  depth %-2d: gradient %12.4g cycles, cache peak %8d cells\n" depth
          r.L.g_makespan r.L.g_stats.S.cache_peak)
      [ 4; 10 ]
  end;

  subheader
    (Printf.sprintf "binomial schedule (budget %d, tiers 2) — gate row" budget);
  let b = L.gradient_binomial ~nranks ~tiers:2 ~budget L.Mpi inp in
  let g = b.L.b_grad in
  let gs = g.L.g_stats in
  let bitwise = grads_eq g base in
  Printf.printf
    "  gradient %12.4g cycles, cache peak %8d cells (store-all: %d)\n"
    g.L.g_makespan gs.S.cache_peak bs.S.cache_peak;
  Printf.printf
    "  %d worst-case sweep(s), %d reverse segment(s), %d re-advance step(s)\n"
    b.L.b_sweeps b.L.b_segments b.L.b_advances;
  Printf.printf
    "  snapshots: count=%d bytes=%d evictions=%d restores=%d degraded=%d\n"
    gs.S.snap_count gs.S.snap_bytes gs.S.snap_evictions gs.S.snap_restores
    b.L.b_degraded;
  Printf.printf "  bit-identical to store-all: %b\n" bitwise;
  record_checkpoint ~name:"lulesh_mpi_binomial_gate" ~niter ~budget ~tiers:2
    ~gradient:g.L.g_makespan ~sweeps:b.L.b_sweeps ~segments:b.L.b_segments
    ~advances:b.L.b_advances ~bitwise ~stats:(Some gs);

  if not quick then begin
    subheader "budget sweep (memory/recompute trade)";
    List.iter
      (fun budget ->
        let b = L.gradient_binomial ~nranks ~tiers:2 ~budget L.Mpi inp in
        let gs = b.L.b_grad.L.g_stats in
        Printf.printf
          "  budget %-2d: gradient %12.4g cycles, cache peak %6d, \
           %3d advances, %2d evictions, bitwise %b\n"
          budget b.L.b_grad.L.g_makespan gs.S.cache_peak b.L.b_advances
          gs.S.snap_evictions
          (grads_eq b.L.b_grad base);
        record_checkpoint
          ~name:(Printf.sprintf "lulesh_mpi_binomial_b%d" budget)
          ~niter ~budget ~tiers:2 ~gradient:b.L.b_grad.L.g_makespan
          ~sweeps:b.L.b_sweeps ~segments:b.L.b_segments
          ~advances:b.L.b_advances
          ~bitwise:(grads_eq b.L.b_grad base)
          ~stats:(Some gs))
      [ 1; 2; 8 ]
  end
