(* Execution-engine figure (ISSUE 9): wall-clock speedup of the lowered
   slot-addressed runners over the tree-walking interpreter, at identical
   virtual-time results.

   The headline row is the 64-thread LULESH OMP gradient (the mesh the
   interpreter takes ~half a second on): the same compiled plan is
   executed on engine=interp, engine=seq and engine=par, wall time taken
   from Stats.wall_ns (simulation only — plan compilation is excluded),
   best of [reps] runs. Every engine row's gradient digest must equal the
   interpreter's. scripts/check.sh compares the seq row's speedup
   against bench/engine_threshold, and requires par > seq wall-clock
   only when the host gives the pool at least one real extra core
   ("cores" is recorded in BENCH_engine.json for that gate). *)

open Util
module E = Parad_engine.Engine
module SV = Parad_server.Service

let best_of reps f =
  let best = ref None and keep = ref None in
  for _ = 1 to reps do
    let r, ns = f () in
    match !best with
    | Some b when b <= ns -> ()
    | _ ->
      best := Some ns;
      keep := Some r
  done;
  match !keep, !best with Some r, Some ns -> r, ns | _ -> assert false

let run ~quick =
  header "Execution engine (wall-clock, bit-identical gradients)";
  let cores = Domain.recommended_domain_count () in
  let domains = (Parad_engine.Pool.get ()).Parad_engine.Pool.size in
  Printf.printf "host: %d core(s) recommended, %d pool domain(s)\n" cores
    domains;
  let reps = if quick then 2 else 3 in

  subheader "LULESH OMP gradient (nthreads=64)";
  let inp =
    if quick then { L.nx = 4; ny = 4; nz = 16; niter = 2; dt0 = 0.01; escale = 1.0 }
    else { L.nx = 4; ny = 4; nz = 64; niter = 2; dt0 = 0.01; escale = 1.0 }
  in
  let c = L.compile L.Omp in
  let grad engine () =
    let g = L.gradient_compiled ~nthreads:64 ~engine c inp in
    g, float_of_int g.L.g_stats.S.wall_ns
  in
  let base, base_ns = best_of reps (grad E.Interp) in
  let base_digest = SV.digest_lulesh base in
  row_of_strings "engine" [ "wall_ms"; "speedup"; "makespan"; "bitwise" ];
  let report name ns (digest, makespan) =
    let bitwise = digest = base_digest in
    row_of_strings name
      [
        Printf.sprintf "%.1f" (ns /. 1e6);
        Printf.sprintf "%.2fx" (base_ns /. ns);
        Printf.sprintf "%.4g" makespan;
        string_of_bool bitwise;
      ];
    record_engine ~name:("lulesh_omp/" ^ name) ~cores ~domains ~wall_ns:ns
      ~speedup:(base_ns /. ns) ~makespan ~bitwise;
    bitwise
  in
  let ok = ref (report "interp" base_ns (base_digest, base.L.g_makespan)) in
  List.iter
    (fun engine ->
      let g, ns = best_of reps (grad engine) in
      let bitwise =
        report (E.choice_to_string engine) ns
          (SV.digest_lulesh g, g.L.g_makespan)
      in
      ok := !ok && bitwise)
    [ E.Seq; E.Par ];

  subheader "miniBUDE OMP gradient (nthreads=8)";
  let binp =
    if quick then MB.deck ~nposes:16 ~natlig:8 ~natpro:16
    else MB.deck ~nposes:48 ~natlig:12 ~natpro:64
  in
  let bc = MB.compile ~ntasks:8 MB.Omp in
  let bgrad engine () =
    let g = MB.gradient_compiled ~engine bc binp in
    g, float_of_int g.MB.g_stats.S.wall_ns
  in
  let bbase, bbase_ns = best_of reps (bgrad E.Interp) in
  let bdigest = SV.digest_bude bbase in
  List.iter
    (fun engine ->
      let g, ns = best_of reps (bgrad engine) in
      let bitwise = SV.digest_bude g = bdigest in
      row_of_strings
        ("bude_omp/" ^ E.choice_to_string engine)
        [
          Printf.sprintf "%.1f" (ns /. 1e6);
          Printf.sprintf "%.2fx" (bbase_ns /. ns);
          Printf.sprintf "%.4g" g.MB.g_makespan;
          string_of_bool bitwise;
        ];
      record_engine
        ~name:("bude_omp/" ^ E.choice_to_string engine)
        ~cores ~domains ~wall_ns:ns ~speedup:(bbase_ns /. ns)
        ~makespan:g.MB.g_makespan ~bitwise;
      ok := !ok && bitwise)
    [ E.Interp; E.Seq; E.Par ];
  if not !ok then begin
    Printf.eprintf "fig_engine: an engine gradient diverged from interp\n";
    exit 1
  end
