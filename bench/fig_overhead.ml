(* Table 1 analog — the abstract's headline: differentiation overhead at
   64 threads / 64 ranks for every language x framework combination,
   plus the tape-cache footprint behind each gradient run.

   Every row is also recorded into BENCH_overhead.json (see Util);
   scripts/check.sh gates on the "LULESH C++ OMP" row's overhead, so
   that configuration always runs at 64 threads even under --quick. *)

open Util
module Pipe = Parad_opt.Pipeline

let run ~quick =
  header "Overhead summary at 64 threads/ranks (abstract / Table 1 analog)";
  let n = cli_ranks ~default:(if quick then 32 else 64) in
  Printf.printf "%-28s %12s %12s %10s %12s %12s\n" "configuration" "forward"
    "gradient" "overhead" "cache-cells" "cache-peak";
  let line name ~nranks ~nthreads fwd grad stats =
    let cells =
      match (stats : S.t option) with
      | Some s -> Printf.sprintf "%12d %12d" s.S.cache_cells s.S.cache_peak
      | None -> Printf.sprintf "%12s %12s" "-" "-"
    in
    Printf.printf "%-28s %12.3g %12.3g %10.2f %s\n" name fwd grad (grad /. fwd)
      cells;
    record_overhead ~name ~nranks ~nthreads ~forward:fwd ~gradient:grad ~stats
  in
  (* LULESH *)
  let inp =
    { L.nx = 4; ny = 4; nz = 64; niter = 2; dt0 = 0.01; escale = 1.0 }
  in
  let l name ?(pre = []) ?(nranks = 1) ?(nthreads = 1) flavor =
    let f = (L.run ~nranks ~nthreads ~pre flavor inp).L.makespan in
    let g = L.gradient ~nranks ~nthreads ~pre flavor inp in
    line name ~nranks ~nthreads f g.L.g_makespan (Some g.L.g_stats)
  in
  (* the gated headline row: always 64 threads, even under --quick *)
  l "LULESH C++ OMP" ~nthreads:64 L.Omp;
  l "LULESH C++ OMP+Opt" ~pre:Pipe.o2_openmp ~nthreads:n L.Omp;
  l "LULESH C++ RAJA" ~nthreads:n L.Raja_;
  l "LULESH C++ MPI" ~nranks:n L.Mpi;
  l "LULESH Julia MPI.jl" ~nranks:n L.Jlmpi;
  l "LULESH hybrid 8x8" ~nranks:8 ~nthreads:8 L.Hybrid;
  (let f = (L.run ~nranks:n L.Mpi inp).L.makespan in
   let g = lulesh_tape_gradient inp ~nranks:n in
   line "LULESH CoDiPack MPI" ~nranks:n ~nthreads:1 f g None);
  (* miniBUDE *)
  let deck = MB.deck ~nposes:n ~natlig:8 ~natpro:10 in
  let m name ?(pre = []) variant =
    let f = (MB.run ~nthreads:n ~pre variant deck).MB.makespan in
    let g = MB.gradient ~nthreads:n ~pre variant deck in
    line name ~nranks:1 ~nthreads:n f g.MB.g_makespan (Some g.MB.g_stats)
  in
  m "miniBUDE C++ OMP" MB.Omp;
  m "miniBUDE C++ OMP+Opt" ~pre:Pipe.o2_openmp MB.Omp;
  m "miniBUDE Julia tasks" MB.Julia
