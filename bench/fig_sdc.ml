(* Silent-data-corruption figure (ISSUE 8): a seeded injection campaign
   over the full SDC envelope — bit flips into live cache memory and
   byte damage to in-flight packed messages — on both apps.

   Every trial runs a real gradient under one drawn fault and is
   classified against the faultless bits:

   - recovered : the fault landed, a checksum caught it, and the
     recovery path (retransmit or checkpoint restart) reproduced the
     clean gradient bit-for-bit;
   - masked    : the fault never landed (scheduled past the run's end,
     or aimed at a message ordinal never sent) or was overwritten
     before any read — the gradient is bit-identical without detection;
   - aborted   : detected, but the recovery budget was exhausted; the
     run ended in a structured notice, not a wrong answer;
   - silent    : a gradient whose bits differ from clean with no
     detection. The whole point of the envelope is that this row is
     zero; scripts/check.sh fails the build otherwise.

   The gate row compares detection coverage (detected / landed) against
   bench/sdc_threshold, and the protect_clean row prices the ABFT seals
   themselves: a never-firing flip plan arms protection without ever
   striking, so its makespan ratio is pure checksum overhead. *)

open Util
module L = Apps_lulesh.Lulesh
module MB = Apps_minibude.Minibude
module F = Parad_runtime.Faults
module Stats = Parad_runtime.Stats
module Exec = Parad_runtime.Exec
module Checkpoint = Parad_runtime.Checkpoint
module Mpi_state = Parad_runtime.Mpi_state

(* splitmix64, same stream construction as the chaos soak and slam *)
type rng = { mutable s : int64 }

let rng seed = { s = Int64.of_int (0x9e3779b9 + (seed * 0x85ebca6b)) }

let next r =
  r.s <- Int64.add r.s 0x9e3779b97f4a7c15L;
  let z = r.s in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let draw_int r bound =
  Int64.to_int (Int64.unsigned_rem (next r) (Int64.of_int bound))

let bits_eq a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y -> Int64.bits_of_float x = Int64.bits_of_float y)
       a b

(* one campaign: run [trials] drawn faults through [trial], classify,
   record a row. [trial] returns the landed-fault stats and makespan on
   success, or `Aborted when detection exhausted the recovery budget. *)
type outcome =
  | Done of Stats.t * float * bool  (** stats, makespan, bits identical *)
  | Aborted

let campaign ~name ~trials ~clean_makespan trial =
  let injected = ref 0 and detected = ref 0 and recovered = ref 0 in
  let masked = ref 0 and aborted = ref 0 and silent = ref 0 in
  let ratio_sum = ref 0.0 in
  for i = 1 to trials do
    match trial i with
    | Done (s, makespan, identical) ->
      if s.Stats.sdc_injected > 0 then incr injected;
      if s.Stats.sdc_detected > 0 then incr detected;
      if identical then
        if s.Stats.sdc_detected > 0 then begin
          incr recovered;
          ratio_sum := !ratio_sum +. (makespan /. clean_makespan)
        end
        else incr masked
      else incr silent
    | Aborted ->
      (* the raised notice IS the detection: the fault landed, was
         caught, and the run refused to return a wrong gradient *)
      incr injected;
      incr detected;
      incr aborted
  done;
  let overhead =
    if !recovered = 0 then 1.0 else !ratio_sum /. float_of_int !recovered
  in
  Printf.printf
    "%-22s %4d trials: %3d landed, %3d detected, %3d recovered, %3d masked, \
     %3d aborted, %d SILENT; coverage %.1f%%, recovery overhead %.2fx\n"
    name trials !injected !detected !recovered !masked !aborted !silent
    (if !injected = 0 then 100.0
     else 100.0 *. float_of_int !detected /. float_of_int !injected)
    overhead;
  record_sdc ~name ~trials ~injected:!injected ~detected:!detected
    ~recovered:!recovered ~masked:!masked ~aborted:!aborted ~silent:!silent
    ~overhead

let run ~quick =
  header "SDC resilience (seeded bit-flip and message-corruption campaign)";
  let n = if quick then 1 else 2 in
  let tiny = { L.nx = 2; ny = 2; nz = 4; niter = 2; dt0 = 0.01; escale = 1.0 } in
  let lc = L.compile L.Mpi in
  let nranks = 2 in
  let clean = L.gradient_compiled ~nranks lc tiny in
  let deck = MB.deck ~nposes:8 ~natlig:4 ~natpro:6 in
  let mc = MB.compile ~ntasks:1 MB.Omp in
  let mb_clean = MB.gradient_compiled mc deck in
  let lulesh_eq (g : L.grad_result) =
    Array.for_all2 bits_eq clean.L.d_coords g.L.d_coords
    && Array.for_all2 bits_eq clean.L.d_energy g.L.d_energy
  in
  let mb_eq (g : MB.grad_result) =
    bits_eq mb_clean.MB.g_energies g.MB.g_energies
    && bits_eq mb_clean.MB.d_lig g.MB.d_lig
    && bits_eq mb_clean.MB.d_pro g.MB.d_pro
    && bits_eq mb_clean.MB.d_poses g.MB.d_poses
  in
  let horizon = int_of_float clean.L.g_makespan in

  subheader "memory bit flips, LULESH MPI, supervised recovery";
  let r = rng 11 in
  campaign ~name:"lulesh_mpi_flip" ~trials:(70 * n)
    ~clean_makespan:clean.L.g_makespan (fun _ ->
      let spec =
        Printf.sprintf "none:retries=5,flip=%d@%d@%d@%d" (draw_int r nranks)
          (draw_int r 10_000) (draw_int r 64)
          (draw_int r (2 * horizon))
      in
      let faults = F.plan_of_spec ~seed:(draw_int r 1000) ~nranks spec in
      match
        L.gradient_recoverable_compiled ~nranks ~faults ~max_restarts:4 lc
          tiny
      with
      | g, _ -> Done (g.L.g_stats, g.L.g_makespan, lulesh_eq g)
      | exception Checkpoint.Corrupt_region _ -> Aborted);

  subheader "in-flight message corruption, LULESH MPI, retransmit";
  let r = rng 13 in
  campaign ~name:"lulesh_mpi_msg" ~trials:(60 * n)
    ~clean_makespan:clean.L.g_makespan (fun _ ->
      (* ordinals past the traffic count are provably masked; the rest
         must be caught by the trailer and retransmitted in place *)
      let spec =
        Printf.sprintf "none:retries=4,corrupt-msg=%d@%d"
          (1 + draw_int r 8) (draw_int r 512)
      in
      let faults = F.plan_of_spec ~nranks spec in
      match L.gradient_compiled ~nranks ~faults lc tiny with
      | g -> Done (g.L.g_stats, g.L.g_makespan, lulesh_eq g)
      | exception Mpi_state.Corrupt_message _ -> Aborted);

  subheader "sticky message corruption, LULESH MPI, checkpoint restart";
  let r = rng 17 in
  campaign ~name:"lulesh_mpi_msg_sticky" ~trials:(30 * n)
    ~clean_makespan:clean.L.g_makespan (fun _ ->
      (* sticky damage re-corrupts every retransmit, so the ladder
         exhausts and recovery must fall back to a verified snapshot *)
      let spec =
        Printf.sprintf "none:retries=2,corrupt-msg=%d@%d@sticky"
          (1 + draw_int r 6) (draw_int r 512)
      in
      let faults = F.plan_of_spec ~nranks spec in
      match
        L.gradient_recoverable_compiled ~nranks ~faults ~max_restarts:4 lc
          tiny
      with
      | g, _ -> Done (g.L.g_stats, g.L.g_makespan, lulesh_eq g)
      | exception Mpi_state.Corrupt_message _ -> Aborted);

  subheader "memory bit flips, miniBUDE OMP, retry consumes the flip";
  let r = rng 19 in
  campaign ~name:"bude_omp_flip" ~trials:(60 * n)
    ~clean_makespan:mb_clean.MB.g_makespan (fun _ ->
      let spec =
        Printf.sprintf "none:flip=0@%d@%d@%d" (draw_int r 10_000)
          (draw_int r 64)
          (draw_int r (int_of_float (2.0 *. mb_clean.MB.g_makespan)))
      in
      (* single-rank envelope: no supervisor, so recovery is the
         service's retry path — consume the fired flip and re-run *)
      let rec go plan tries carry =
        match MB.gradient_compiled ~faults:plan mc deck with
        | g ->
          let s = { g.MB.g_stats with
                    Stats.sdc_injected = g.MB.g_stats.Stats.sdc_injected + fst carry;
                    sdc_detected = g.MB.g_stats.Stats.sdc_detected + snd carry }
          in
          Done (s, g.MB.g_makespan, mb_eq g)
        | exception Checkpoint.Corrupt_region { cr_rank; _ } ->
          if tries >= 4 then Aborted
          else
            go (F.consume_flip plan ~rank:cr_rank) (tries + 1)
              (fst carry + 1, snd carry + 1)
      in
      go (F.plan_of_spec ~nranks:1 spec) 0 (0, 0));

  subheader "protection overhead: armed seals, never-firing flip";
  (* a flip scheduled past any reachable virtual time arms the ABFT
     machinery (sealing, boundary digests, the end-of-run sweep) but
     never strikes: the makespan ratio is the pure cost of coverage *)
  let armed = F.plan_of_spec ~nranks "none:flip=0@0@31@1e30" in
  let protected_run = L.gradient_compiled ~nranks ~faults:armed lc tiny in
  if not (lulesh_eq protected_run) then
    failwith "fig_sdc: armed-but-idle protection changed the gradient bits";
  let ratio = protected_run.L.g_makespan /. clean.L.g_makespan in
  Printf.printf "protect_clean: %.0f -> %.0f virtual cycles (%.4fx)\n"
    clean.L.g_makespan protected_run.L.g_makespan ratio;
  record_sdc ~name:"protect_clean" ~trials:1 ~injected:0 ~detected:0
    ~recovered:0 ~masked:1 ~aborted:0 ~silent:0 ~overhead:ratio
