(* Gradient-service figure (ISSUE 7): what the robustness envelope
   costs and what the plan cache buys.

   Three scenarios, all through the real request path (JSON in, JSON
   out, exactly as on the socket):

   - plan cache: the same request served cold (pipeline compile) and
     warm (LRU lookup). The warm/cold wall-time ratio is the gate row —
     scripts/check.sh compares warm_speedup against
     bench/serve_threshold.
   - throughput vs. concurrency: bursts of N simultaneous arrivals
     into a fixed worker pool; beyond workers + queue_cap the tail
     sheds, so throughput saturates while p95 latency climbs.
   - chaos: a seeded slam mix; the row records shed, breaker trips and
     recoveries under hostile traffic. *)

open Util
module SV = Parad_server.Service
module PC = Parad_server.Plan_cache
module J = Parad_server.Json
module Slam = Parad_server.Slam

let no_watchdog = { SV.default_config with SV.watchdog_ms = None }

let send svc fields =
  match J.of_string (SV.handle_line svc (J.to_string (J.Obj fields))) with
  | Ok r -> r
  | Error m -> failwith ("fig_serve: bad response: " ^ m)

let base ?(burst = false) () =
  [
    "flavor", J.Str "mpi";
    "nranks", J.Num 2.0;
    "niter", J.Num 2.0;
  ]
  @ if burst then [ "burst", J.Bool true ] else []

let run ~quick =
  header "Gradient service (plan cache, admission, chaos)";

  (* ---- cold vs warm plan acquisition ---- *)
  subheader "plan cache: cold compile vs warm lookup (wall time)";
  let svc = SV.create ~cfg:no_watchdog () in
  let reps = if quick then 8 else 32 in
  for _ = 1 to reps do
    ignore (send svc (base ()))
  done;
  let c = svc.SV.cache in
  let cold_ns = c.PC.miss_ns /. float_of_int (max 1 c.PC.misses) in
  (* a single warm lookup sits below the clock's resolution; time a
     tight loop of lookups instead of trusting per-call timestamps *)
  let warm_ns =
    let key = List.hd (PC.keys c) in
    let n = 10_000 in
    let t0 = PC.now_ns () in
    for _ = 1 to n do
      ignore
        (PC.get_or_compile c key ~compile:(fun () ->
             failwith "warm loop must not compile"))
    done;
    Float.max 1.0 ((PC.now_ns () -. t0) /. float_of_int n)
  in
  Printf.printf
    "  %d requests: %d miss (%.0f ns/compile), %d hit (%.0f ns/lookup), \
     warm speedup %.0fx\n"
    reps c.PC.misses cold_ns c.PC.hits warm_ns
    (cold_ns /. Float.max warm_ns 1.0);
  record_serve ~name:"plan_cache" ~workers:no_watchdog.SV.workers
    ~requests:reps ~ok:svc.SV.executed ~shed:0 ~trips:0 ~recoveries:0
    ~cold_ns ~warm_ns ~p95_cycles:(SV.percentile 0.95 svc.SV.latencies)
    ~throughput:0.0;

  (* ---- throughput vs concurrency ---- *)
  subheader "throughput vs concurrency (burst arrivals, workers=4 queue=8)";
  let bursts = if quick then [ 1; 4; 16 ] else [ 1; 2; 4; 8; 16; 32 ] in
  List.iter
    (fun n ->
      let cfg = { no_watchdog with SV.workers = 4; queue_cap = 8 } in
      let svc = SV.create ~cfg () in
      (* one cold compile outside the burst so the sweep measures
         steady-state interpretation, not the pipeline *)
      ignore (send svc (base ()));
      for _ = 1 to n do
        ignore (send svc (base ~burst:true ()))
      done;
      let makespan = Array.fold_left Float.max 0.0 svc.SV.pool in
      let p95 = SV.percentile 0.95 svc.SV.latencies in
      let throughput =
        float_of_int svc.SV.executed /. Float.max makespan 1.0 *. 1e6
      in
      Printf.printf
        "  burst %3d: executed %3d, shed %3d, p95 %10.4g cycles, \
         %.2f req/Mcycle\n"
        n svc.SV.executed svc.SV.shed p95 throughput;
      record_serve
        ~name:(Printf.sprintf "burst_%d" n)
        ~workers:cfg.SV.workers ~requests:n ~ok:svc.SV.executed
        ~shed:svc.SV.shed ~trips:0 ~recoveries:0 ~cold_ns:0.0 ~warm_ns:0.0
        ~p95_cycles:p95 ~throughput)
    bursts;

  (* ---- chaos ---- *)
  subheader "seeded chaos (slam mix: faults, NaNs, deadlines, overload)";
  let trials = if quick then 10 else 25 in
  let r = Slam.run ~trials ~seed:42 () in
  Printf.printf
    "  %d responses: %d unclassified, %d mismatches, %d shed, %d trip(s), \
     %d recovery(ies)\n"
    r.Slam.s_responses r.Slam.s_unclassified r.Slam.s_mismatches
    r.Slam.s_shed r.Slam.s_trips r.Slam.s_recoveries;
  if not (Slam.passed r) then
    failwith "fig_serve: chaos slam violated the robustness contract";
  record_serve ~name:"chaos" ~workers:2 ~requests:r.Slam.s_requests
    ~ok:r.Slam.s_responses ~shed:r.Slam.s_shed ~trips:r.Slam.s_trips
    ~recoveries:r.Slam.s_recoveries ~cold_ns:0.0 ~warm_ns:0.0
    ~p95_cycles:0.0 ~throughput:0.0
