(* Benchmark harness: one driver per paper figure/table (see DESIGN.md's
   per-experiment index), plus bechamel micro-benchmarks of the framework
   itself (real wall time: AD transform latency and interpreter
   throughput).

   Usage: main.exe [--quick] [--figure fig8|fig9|fig10|fig11|overhead|
                              verify|ablation|checkpoint|serve|sdc|engine|
                              batch|micro]
                   [--recompute-depth N]

   Figure drivers record machine-readable results; the run writes them
   to BENCH_overhead.json on exit (see Util.write_bench_json). *)

let figures =
  [
    "fig8", Fig8.run;
    "fig9", Fig9.run;
    "fig10", Fig10.run;
    "fig11", Fig11.run;
    "overhead", Fig_overhead.run;
    "verify", Fig_verify.run;
    "ablation", Fig_ablation.run;
    "checkpoint", Fig_checkpoint.run;
    "serve", Fig_serve.run;
    "sdc", Fig_sdc.run;
    "engine", Fig_engine.run;
    "batch", Fig_batch.run;
  ]

(* ---- bechamel micro-benchmarks (real time) ---- *)

let micro ~quick:_ =
  Util.header "Micro-benchmarks (bechamel, real wall time)";
  let open Bechamel in
  let lulesh_prog = Apps_lulesh.Lulesh.program Apps_lulesh.Lulesh.Omp in
  let bude_prog = Apps_minibude.Minibude.program () in
  let tiny =
    {
      Apps_lulesh.Lulesh.nx = 2;
      ny = 2;
      nz = 2;
      niter = 1;
      dt0 = 0.01;
      escale = 1.0;
    }
  in
  let tests =
    Test.make_grouped ~name:"parad" ~fmt:"%s %s"
      [
        Test.make ~name:"ad-transform lulesh_omp"
          (Staged.stage (fun () ->
               ignore
                 (Parad_core.Reverse.gradient lulesh_prog "lulesh_omp")));
        Test.make ~name:"ad-transform bude_omp"
          (Staged.stage (fun () ->
               ignore (Parad_core.Reverse.gradient bude_prog "bude_omp")));
        Test.make ~name:"interp lulesh 2x2x2"
          (Staged.stage (fun () ->
               ignore (Apps_lulesh.Lulesh.run Apps_lulesh.Lulesh.Seq tiny)));
        Test.make ~name:"o2 pipeline lulesh_omp"
          (Staged.stage (fun () ->
               ignore
                 (Parad_opt.Pipeline.run_on lulesh_prog "lulesh_omp"
                    Parad_opt.Pipeline.o2)));
      ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:None ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false
      ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] ->
        Printf.printf "%-32s %12.1f ns/run\n" name est;
        Util.record_micro ~name ~ns:est
      | _ -> Printf.printf "%-32s (no estimate)\n" name)
    results

let () =
  let quick = Array.exists (( = ) "--quick") Sys.argv in
  let chosen =
    let rec find i =
      if i >= Array.length Sys.argv - 1 then None
      else if Sys.argv.(i) = "--figure" then Some Sys.argv.(i + 1)
      else find (i + 1)
    in
    find 1
  in
  (match chosen with
  | Some "micro" -> micro ~quick
  | Some name -> (
    match List.assoc_opt name figures with
    | Some f -> f ~quick
    | None ->
      Printf.eprintf "unknown figure %S; available: %s micro\n" name
        (String.concat " " (List.map fst figures));
      exit 1)
  | None ->
    List.iter (fun (_, f) -> f ~quick) figures;
    micro ~quick);
  Util.write_bench_json ~quick;
  Util.write_mpi_json ~quick;
  Util.write_checkpoint_json ~quick;
  Util.write_serve_json ~quick;
  Util.write_sdc_json ~quick;
  Util.write_engine_json ~quick;
  Util.write_batch_json ~quick;
  Printf.printf "\nbench: done.\n"
