(* Table formatting and shared measurement helpers for the figure
   drivers. All times are virtual cycles from the simulator (see
   DESIGN.md); "overhead" is gradient/forward, the paper's metric. *)

let header title =
  Printf.printf "\n=== %s ===\n" title

(* optional [--flag N] integer argument to the bench driver *)
let cli_int flag ~default =
  let rec find i =
    if i >= Array.length Sys.argv - 1 then default
    else if Sys.argv.(i) = flag then
      match int_of_string_opt Sys.argv.(i + 1) with
      | Some n -> n
      | None -> default
    else find (i + 1)
  in
  find 1

(* optional [--ranks N] for the MPI figure drivers; the simulated
   communicator uses recursive-doubling collectives, so N must be a
   power of two *)
let cli_ranks ~default =
  let n = cli_int "--ranks" ~default in
  if n <= 0 || n land (n - 1) <> 0 then begin
    Printf.eprintf
      "bench: --ranks must be a power of two (got %d); the simulated \
       communicator uses recursive-doubling collectives\n"
      n;
    exit 2
  end;
  n

let subheader t = Printf.printf "--- %s ---\n" t

let row_of_floats name xs =
  Printf.printf "%-24s %s\n" name
    (String.concat " "
       (List.map (fun x -> Printf.sprintf "%12.3g" x) xs))

let row_of_strings name xs =
  Printf.printf "%-24s %s\n" name
    (String.concat " " (List.map (Printf.sprintf "%12s") xs))

let cols name xs =
  row_of_strings name (List.map string_of_int xs)

(* speedup series: t(first) / t(n) *)
let speedups ts =
  match ts with
  | [] -> []
  | t1 :: _ -> List.map (fun t -> t1 /. t) ts

module L = Apps_lulesh.Lulesh
module MB = Apps_minibude.Minibude
module GC = Parad_verify.Grad_check
module TC = Parad_verify.Tape_check
module S = Parad_runtime.Stats

(* ---- machine-readable results (BENCH_overhead.json) ----

   Figure drivers and the micro-benchmarks append records here; the main
   driver writes them out once at exit. The schema is line-oriented (one
   config object per line) so shell gates can grep it — see
   scripts/check.sh's overhead-regression gate. *)

type ovh_record = {
  o_name : string;
  o_nranks : int;
  o_nthreads : int;
  o_forward : float;
  o_gradient : float;
  o_cache_stores : int;
  o_cache_cells : int;
  o_cache_peak : int;
}

let ovh_records : ovh_record list ref = ref []
let micro_records : (string * float) list ref = ref []

let record_overhead ~name ~nranks ~nthreads ~forward ~gradient ~stats =
  let o_cache_stores, o_cache_cells, o_cache_peak =
    match (stats : S.t option) with
    | Some s -> s.S.cache_stores, s.S.cache_cells, s.S.cache_peak
    | None -> 0, 0, 0
  in
  ovh_records :=
    {
      o_name = name;
      o_nranks = nranks;
      o_nthreads = nthreads;
      o_forward = forward;
      o_gradient = gradient;
      o_cache_stores;
      o_cache_cells;
      o_cache_peak;
    }
    :: !ovh_records

let record_micro ~name ~ns = micro_records := (name, ns) :: !micro_records

(* ---- machine-readable MPI-scaling results (BENCH_mpi.json) ----

   Fig 8 appends one record per (rank count, coalescing) config; the
   main driver writes them out at exit. Line-oriented for the same
   reason as BENCH_overhead.json: scripts/check.sh's MPI strong-scaling
   gate greps the 64-rank gate row and compares the speedups against
   bench/mpi_threshold. *)

type mpi_record = {
  m_name : string;
  m_nranks : int;
  m_coalesce : bool;
  m_forward : float;
  m_gradient : float;
  m_fwd_speedup : float;
  m_grad_speedup : float;
  m_msgs_sent : int;
  m_cells_sent : int;
  m_max_inflight : int;
}

let mpi_records : mpi_record list ref = ref []

let record_mpi ~name ~nranks ~coalesce ~forward ~gradient ~fwd_speedup
    ~grad_speedup ~stats =
  let m_msgs_sent, m_cells_sent, m_max_inflight =
    match (stats : S.t option) with
    | Some s -> s.S.msgs_sent, s.S.cells_sent, s.S.max_inflight
    | None -> 0, 0, 0
  in
  mpi_records :=
    {
      m_name = name;
      m_nranks = nranks;
      m_coalesce = coalesce;
      m_forward = forward;
      m_gradient = gradient;
      m_fwd_speedup = fwd_speedup;
      m_grad_speedup = grad_speedup;
      m_msgs_sent;
      m_cells_sent;
      m_max_inflight;
    }
    :: !mpi_records

let write_mpi_json ~quick =
  if !mpi_records <> [] then begin
    let path = "BENCH_mpi.json" in
    let oc = open_out path in
    Printf.fprintf oc
      "{\n  \"schema\": \"parad-bench-mpi/1\",\n  \"quick\": %b,\n\
      \  \"configs\": [\n"
      quick;
    let rows = List.rev !mpi_records in
    let last = List.length rows - 1 in
    List.iteri
      (fun i r ->
        Printf.fprintf oc
          "    {\"name\": %S, \"nranks\": %d, \"coalesce\": %b, \
           \"forward\": %.6g, \"gradient\": %.6g, \"fwd_speedup\": %.4f, \
           \"grad_speedup\": %.4f, \"msgs_sent\": %d, \"cells_sent\": %d, \
           \"max_inflight\": %d}%s\n"
          r.m_name r.m_nranks r.m_coalesce r.m_forward r.m_gradient
          r.m_fwd_speedup r.m_grad_speedup r.m_msgs_sent r.m_cells_sent
          r.m_max_inflight
          (if i = last then "" else ","))
      rows;
    Printf.fprintf oc "  ]\n}\n";
    close_out oc;
    Printf.printf "wrote %s (%d configs)\n" path (List.length rows)
  end

(* ---- machine-readable checkpoint results (BENCH_checkpoint.json) ----

   The checkpoint figure appends one record per schedule (store-all
   baseline vs. binomial under a snapshot budget) on the long-horizon
   LULESH MPI run; the main driver writes them out at exit.
   Line-oriented for the same reason as the other BENCH files:
   scripts/check.sh's checkpoint gate greps the binomial gate row and
   compares its cache_peak against bench/checkpoint_threshold. *)

type ckpt_record = {
  c_name : string;
  c_niter : int;
  c_budget : int;  (** 0 = store-all (no snapshot budget) *)
  c_tiers : int;
  c_gradient : float;
  c_cache_peak : int;
  c_sweeps : int;
  c_segments : int;
  c_advances : int;
  c_snap_count : int;
  c_snap_bytes : int;
  c_snap_evictions : int;
  c_snap_restores : int;
  c_bitwise : bool;  (** gradient bit-identical to the store-all baseline *)
}

let ckpt_records : ckpt_record list ref = ref []

let record_checkpoint ~name ~niter ~budget ~tiers ~gradient ~sweeps ~segments
    ~advances ~bitwise ~stats =
  let peak, cnt, bytes, ev, rst =
    match (stats : S.t option) with
    | Some s ->
      ( s.S.cache_peak,
        s.S.snap_count,
        s.S.snap_bytes,
        s.S.snap_evictions,
        s.S.snap_restores )
    | None -> 0, 0, 0, 0, 0
  in
  ckpt_records :=
    {
      c_name = name;
      c_niter = niter;
      c_budget = budget;
      c_tiers = tiers;
      c_gradient = gradient;
      c_cache_peak = peak;
      c_sweeps = sweeps;
      c_segments = segments;
      c_advances = advances;
      c_snap_count = cnt;
      c_snap_bytes = bytes;
      c_snap_evictions = ev;
      c_snap_restores = rst;
      c_bitwise = bitwise;
    }
    :: !ckpt_records

let write_checkpoint_json ~quick =
  if !ckpt_records <> [] then begin
    let path = "BENCH_checkpoint.json" in
    let oc = open_out path in
    Printf.fprintf oc
      "{\n  \"schema\": \"parad-bench-checkpoint/1\",\n  \"quick\": %b,\n\
      \  \"configs\": [\n"
      quick;
    let rows = List.rev !ckpt_records in
    let last = List.length rows - 1 in
    List.iteri
      (fun i r ->
        Printf.fprintf oc
          "    {\"name\": %S, \"niter\": %d, \"budget\": %d, \"tiers\": %d, \
           \"gradient\": %.6g, \"cache_peak\": %d, \"sweeps\": %d, \
           \"segments\": %d, \"advances\": %d, \"snap_count\": %d, \
           \"snap_bytes\": %d, \"snap_evictions\": %d, \
           \"snap_restores\": %d, \"bitwise\": %b}%s\n"
          r.c_name r.c_niter r.c_budget r.c_tiers r.c_gradient r.c_cache_peak
          r.c_sweeps r.c_segments r.c_advances r.c_snap_count r.c_snap_bytes
          r.c_snap_evictions r.c_snap_restores r.c_bitwise
          (if i = last then "" else ","))
      rows;
    Printf.fprintf oc "  ]\n}\n";
    close_out oc;
    Printf.printf "wrote %s (%d configs)\n" path (List.length rows)
  end

(* ---- machine-readable gradient-service results (BENCH_serve.json) ----

   The serve figure appends one record per scenario: the plan-cache
   row (cold compile vs. warm lookup wall-ns; the warm speedup is the
   gate scripts/check.sh compares against bench/serve_threshold), one
   row per burst size in the throughput-vs-concurrency sweep, and a
   chaos row with shed/trip/recovery counts from a seeded slam. *)

type serve_record = {
  v_name : string;
  v_workers : int;
  v_requests : int;
  v_ok : int;
  v_shed : int;
  v_trips : int;
  v_recoveries : int;
  v_cold_ns : float;  (** mean plan-compile wall-ns on a cache miss *)
  v_warm_ns : float;  (** mean plan-lookup wall-ns on a cache hit *)
  v_warm_speedup : float;
  v_p95_cycles : float;  (** virtual request latency, 95th percentile *)
  v_throughput : float;  (** executed requests per virtual megacycle *)
}

let serve_records : serve_record list ref = ref []

let record_serve ~name ~workers ~requests ~ok ~shed ~trips ~recoveries
    ~cold_ns ~warm_ns ~p95_cycles ~throughput =
  serve_records :=
    {
      v_name = name;
      v_workers = workers;
      v_requests = requests;
      v_ok = ok;
      v_shed = shed;
      v_trips = trips;
      v_recoveries = recoveries;
      v_cold_ns = cold_ns;
      v_warm_ns = warm_ns;
      v_warm_speedup = (if warm_ns > 0.0 then cold_ns /. warm_ns else 0.0);
      v_p95_cycles = p95_cycles;
      v_throughput = throughput;
    }
    :: !serve_records

let write_serve_json ~quick =
  if !serve_records <> [] then begin
    let path = "BENCH_serve.json" in
    let oc = open_out path in
    Printf.fprintf oc
      "{\n  \"schema\": \"parad-bench-serve/1\",\n  \"quick\": %b,\n\
      \  \"configs\": [\n"
      quick;
    let rows = List.rev !serve_records in
    let last = List.length rows - 1 in
    List.iteri
      (fun i r ->
        Printf.fprintf oc
          "    {\"name\": %S, \"workers\": %d, \"requests\": %d, \"ok\": %d, \
           \"shed\": %d, \"trips\": %d, \"recoveries\": %d, \
           \"cold_ns\": %.1f, \"warm_ns\": %.1f, \"warm_speedup\": %.1f, \
           \"p95_cycles\": %.6g, \"throughput\": %.4f}%s\n"
          r.v_name r.v_workers r.v_requests r.v_ok r.v_shed r.v_trips
          r.v_recoveries r.v_cold_ns r.v_warm_ns r.v_warm_speedup
          r.v_p95_cycles r.v_throughput
          (if i = last then "" else ","))
      rows;
    Printf.fprintf oc "  ]\n}\n";
    close_out oc;
    Printf.printf "wrote %s (%d rows)\n" path (List.length rows)
  end

(* ---- SDC injection campaign (fault coverage and recovery cost) ---- *)

type sdc_record = {
  c_name : string;
  c_trials : int;
  c_injected : int;  (** trials where the fault actually landed *)
  c_detected : int;  (** landed faults caught by a checksum *)
  c_recovered : int;  (** detected and re-derived bit-identically *)
  c_masked : int;  (** fault never landed or was overwritten unread *)
  c_aborted : int;  (** detected but recovery budget exhausted *)
  c_silent : int;  (** wrong gradient with no detection — must be 0 *)
  c_coverage : float;  (** detected / injected, percent *)
  c_overhead : float;  (** mean recovered/clean makespan ratio *)
}

let sdc_records : sdc_record list ref = ref []

let record_sdc ~name ~trials ~injected ~detected ~recovered ~masked ~aborted
    ~silent ~overhead =
  sdc_records :=
    {
      c_name = name;
      c_trials = trials;
      c_injected = injected;
      c_detected = detected;
      c_recovered = recovered;
      c_masked = masked;
      c_aborted = aborted;
      c_silent = silent;
      c_coverage =
        (if injected = 0 then 100.0
         else 100.0 *. float_of_int detected /. float_of_int injected);
      c_overhead = overhead;
    }
    :: !sdc_records

let write_sdc_json ~quick =
  if !sdc_records <> [] then begin
    let path = "BENCH_sdc.json" in
    let oc = open_out path in
    Printf.fprintf oc
      "{\n  \"schema\": \"parad-bench-sdc/1\",\n  \"quick\": %b,\n\
      \  \"campaigns\": [\n"
      quick;
    let rows = List.rev !sdc_records in
    let last = List.length rows - 1 in
    List.iteri
      (fun i r ->
        Printf.fprintf oc
          "    {\"name\": %S, \"trials\": %d, \"injected\": %d, \
           \"detected\": %d, \"recovered\": %d, \"masked\": %d, \
           \"aborted\": %d, \"silent\": %d, \"coverage\": %.2f, \
           \"overhead\": %.4f}%s\n"
          r.c_name r.c_trials r.c_injected r.c_detected r.c_recovered
          r.c_masked r.c_aborted r.c_silent r.c_coverage r.c_overhead
          (if i = last then "" else ","))
      rows;
    Printf.fprintf oc "  ]\n}\n";
    close_out oc;
    Printf.printf "wrote %s (%d rows)\n" path (List.length rows)
  end

(* ---- machine-readable engine results (BENCH_engine.json) ----

   The engine figure appends one record per (program, engine) pair; the
   main driver writes them out at exit. scripts/check.sh's engine gate
   greps the lulesh_omp/seq row, compares its speedup against
   bench/engine_threshold, requires bitwise=true everywhere, and — only
   when "cores" shows a real multicore host — requires the par row to
   beat the seq row. *)

type eng_record = {
  e_name : string;
  e_cores : int;  (** Domain.recommended_domain_count at measurement *)
  e_domains : int;  (** worker domains in the engine's pool *)
  e_wall_ns : float;
  e_speedup : float;  (** interp wall / this wall, same program *)
  e_makespan : float;
  e_bitwise : bool;  (** gradient digest equals the interpreter's *)
}

let eng_records : eng_record list ref = ref []

let record_engine ~name ~cores ~domains ~wall_ns ~speedup ~makespan ~bitwise =
  eng_records :=
    {
      e_name = name;
      e_cores = cores;
      e_domains = domains;
      e_wall_ns = wall_ns;
      e_speedup = speedup;
      e_makespan = makespan;
      e_bitwise = bitwise;
    }
    :: !eng_records

let write_engine_json ~quick =
  if !eng_records <> [] then begin
    let path = "BENCH_engine.json" in
    let oc = open_out path in
    Printf.fprintf oc
      "{\n  \"schema\": \"parad-bench-engine/1\",\n  \"quick\": %b,\n\
      \  \"configs\": [\n"
      quick;
    let rows = List.rev !eng_records in
    let last = List.length rows - 1 in
    List.iteri
      (fun i r ->
        Printf.fprintf oc
          "    {\"name\": %S, \"cores\": %d, \"domains\": %d, \
           \"wall_ns\": %.0f, \"speedup\": %.4f, \"makespan\": %.6g, \
           \"bitwise\": %b}%s\n"
          r.e_name r.e_cores r.e_domains r.e_wall_ns r.e_speedup r.e_makespan
          r.e_bitwise
          (if i = last then "" else ","))
      rows;
    Printf.fprintf oc "  ]\n}\n";
    close_out oc;
    Printf.printf "wrote %s (%d rows)\n" path (List.length rows)
  end

(* ---- machine-readable batched-adjoint results (BENCH_batch.json) ----

   The batch figure appends one record per (program, k) pair comparing
   one k-lane batched sweep against k sequential single-seed gradients
   on the same engine. scripts/check.sh's batch gate greps the
   lulesh_omp/k8 row, compares its speedup against bench/batch_threshold,
   and requires bitwise=true (every lane column equal to its standalone
   run) everywhere. *)

type batch_record = {
  b_name : string;
  b_seeds : int;
  b_wall_ns : float;  (** one batched k-lane sweep *)
  b_solo_ns : float;  (** sum of k single-seed sweeps, same engine *)
  b_speedup : float;  (** solo / batched *)
  b_bitwise : bool;  (** every lane column equals its standalone run *)
}

let batch_records : batch_record list ref = ref []

let record_batch ~name ~seeds ~wall_ns ~solo_ns ~bitwise =
  batch_records :=
    {
      b_name = name;
      b_seeds = seeds;
      b_wall_ns = wall_ns;
      b_solo_ns = solo_ns;
      b_speedup = (if wall_ns > 0.0 then solo_ns /. wall_ns else 0.0);
      b_bitwise = bitwise;
    }
    :: !batch_records

let write_batch_json ~quick =
  if !batch_records <> [] then begin
    let path = "BENCH_batch.json" in
    let oc = open_out path in
    Printf.fprintf oc
      "{\n  \"schema\": \"parad-bench-batch/1\",\n  \"quick\": %b,\n\
      \  \"configs\": [\n"
      quick;
    let rows = List.rev !batch_records in
    let last = List.length rows - 1 in
    List.iteri
      (fun i r ->
        Printf.fprintf oc
          "    {\"name\": %S, \"seeds\": %d, \"wall_ns\": %.0f, \
           \"solo_ns\": %.0f, \"speedup\": %.4f, \"bitwise\": %b}%s\n"
          r.b_name r.b_seeds r.b_wall_ns r.b_solo_ns r.b_speedup r.b_bitwise
          (if i = last then "" else ","))
      rows;
    Printf.fprintf oc "  ]\n}\n";
    close_out oc;
    Printf.printf "wrote %s (%d rows)\n" path (List.length rows)
  end

let write_bench_json ~quick =
  if !ovh_records <> [] || !micro_records <> [] then begin
    let path = "BENCH_overhead.json" in
    let oc = open_out path in
    Printf.fprintf oc
      "{\n  \"schema\": \"parad-bench-overhead/1\",\n  \"quick\": %b,\n\
      \  \"configs\": [\n"
      quick;
    let rows = List.rev !ovh_records in
    let last = List.length rows - 1 in
    List.iteri
      (fun i r ->
        Printf.fprintf oc
          "    {\"name\": %S, \"nranks\": %d, \"nthreads\": %d, \
           \"forward\": %.6g, \"gradient\": %.6g, \"overhead\": %.4f, \
           \"cache_stores\": %d, \"cache_cells\": %d, \"cache_peak\": %d}%s\n"
          r.o_name r.o_nranks r.o_nthreads r.o_forward r.o_gradient
          (r.o_gradient /. r.o_forward)
          r.o_cache_stores r.o_cache_cells r.o_cache_peak
          (if i = last then "" else ","))
      rows;
    Printf.fprintf oc "  ],\n  \"micro\": [\n";
    let ms = List.rev !micro_records in
    let mlast = List.length ms - 1 in
    List.iteri
      (fun i (n, v) ->
        Printf.fprintf oc "    {\"name\": %S, \"ns_per_run\": %.1f}%s\n" n v
          (if i = mlast then "" else ","))
      ms;
    Printf.fprintf oc "  ]\n}\n";
    close_out oc;
    Printf.printf "\nwrote %s (%d configs, %d micro)\n" path (List.length rows)
      (List.length ms)
  end

(* argument list for driving LULESH through the generic (tape) harness *)
let lulesh_args (inp : L.input) ~nranks ~rank =
  let m = L.mesh inp ~nranks ~rank in
  [
    GC.ABuf m.L.coords.(0);
    GC.ABuf m.L.coords.(1);
    GC.ABuf m.L.coords.(2);
    GC.ABuf m.L.vels.(0);
    GC.ABuf m.L.vels.(1);
    GC.ABuf m.L.vels.(2);
    GC.ABuf m.L.energy;
    GC.AIntBuf m.L.conn;
    GC.ABuf m.L.node_mass;
    GC.AInt inp.L.nx;
    GC.AInt inp.L.ny;
    GC.AInt m.L.nzl;
    GC.AInt inp.L.niter;
    GC.AScalar inp.L.dt0;
  ]

let lulesh_zero_seeds (inp : L.input) ~nranks ~rank =
  let m = L.mesh inp ~nranks ~rank in
  let nn = Array.length m.L.node_mass in
  let ne = Array.length m.L.energy in
  List.map (fun len -> Array.make len 0.0) [ nn; nn; nn; nn; nn; nn; ne; nn ]

(* the CoDiPack-analog gradient of LULESH-MPI in virtual time *)
let lulesh_tape_gradient (inp : L.input) ~nranks =
  let prog = L.program L.Mpi in
  let g, _ =
    TC.reverse_spmd prog "lulesh_mpi" ~nranks
      ~args:(fun ~rank -> lulesh_args inp ~nranks ~rank)
      ~seeds:(fun ~rank -> lulesh_zero_seeds inp ~nranks ~rank)
      ~d_ret:(fun ~rank -> if rank = 0 then 1.0 else 0.0)
  in
  g.GC.s_makespan
