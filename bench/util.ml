(* Table formatting and shared measurement helpers for the figure
   drivers. All times are virtual cycles from the simulator (see
   DESIGN.md); "overhead" is gradient/forward, the paper's metric. *)

let header title =
  Printf.printf "\n=== %s ===\n" title

(* optional [--flag N] integer argument to the bench driver *)
let cli_int flag ~default =
  let rec find i =
    if i >= Array.length Sys.argv - 1 then default
    else if Sys.argv.(i) = flag then
      match int_of_string_opt Sys.argv.(i + 1) with
      | Some n -> n
      | None -> default
    else find (i + 1)
  in
  find 1

let subheader t = Printf.printf "--- %s ---\n" t

let row_of_floats name xs =
  Printf.printf "%-24s %s\n" name
    (String.concat " "
       (List.map (fun x -> Printf.sprintf "%12.3g" x) xs))

let row_of_strings name xs =
  Printf.printf "%-24s %s\n" name
    (String.concat " " (List.map (Printf.sprintf "%12s") xs))

let cols name xs =
  row_of_strings name (List.map string_of_int xs)

(* speedup series: t(first) / t(n) *)
let speedups ts =
  match ts with
  | [] -> []
  | t1 :: _ -> List.map (fun t -> t1 /. t) ts

module L = Apps_lulesh.Lulesh
module MB = Apps_minibude.Minibude
module GC = Parad_verify.Grad_check
module TC = Parad_verify.Tape_check
module S = Parad_runtime.Stats

(* ---- machine-readable results (BENCH_overhead.json) ----

   Figure drivers and the micro-benchmarks append records here; the main
   driver writes them out once at exit. The schema is line-oriented (one
   config object per line) so shell gates can grep it — see
   scripts/check.sh's overhead-regression gate. *)

type ovh_record = {
  o_name : string;
  o_nranks : int;
  o_nthreads : int;
  o_forward : float;
  o_gradient : float;
  o_cache_stores : int;
  o_cache_cells : int;
  o_cache_peak : int;
}

let ovh_records : ovh_record list ref = ref []
let micro_records : (string * float) list ref = ref []

let record_overhead ~name ~nranks ~nthreads ~forward ~gradient ~stats =
  let o_cache_stores, o_cache_cells, o_cache_peak =
    match (stats : S.t option) with
    | Some s -> s.S.cache_stores, s.S.cache_cells, s.S.cache_peak
    | None -> 0, 0, 0
  in
  ovh_records :=
    {
      o_name = name;
      o_nranks = nranks;
      o_nthreads = nthreads;
      o_forward = forward;
      o_gradient = gradient;
      o_cache_stores;
      o_cache_cells;
      o_cache_peak;
    }
    :: !ovh_records

let record_micro ~name ~ns = micro_records := (name, ns) :: !micro_records

let write_bench_json ~quick =
  if !ovh_records <> [] || !micro_records <> [] then begin
    let path = "BENCH_overhead.json" in
    let oc = open_out path in
    Printf.fprintf oc
      "{\n  \"schema\": \"parad-bench-overhead/1\",\n  \"quick\": %b,\n\
      \  \"configs\": [\n"
      quick;
    let rows = List.rev !ovh_records in
    let last = List.length rows - 1 in
    List.iteri
      (fun i r ->
        Printf.fprintf oc
          "    {\"name\": %S, \"nranks\": %d, \"nthreads\": %d, \
           \"forward\": %.6g, \"gradient\": %.6g, \"overhead\": %.4f, \
           \"cache_stores\": %d, \"cache_cells\": %d, \"cache_peak\": %d}%s\n"
          r.o_name r.o_nranks r.o_nthreads r.o_forward r.o_gradient
          (r.o_gradient /. r.o_forward)
          r.o_cache_stores r.o_cache_cells r.o_cache_peak
          (if i = last then "" else ","))
      rows;
    Printf.fprintf oc "  ],\n  \"micro\": [\n";
    let ms = List.rev !micro_records in
    let mlast = List.length ms - 1 in
    List.iteri
      (fun i (n, v) ->
        Printf.fprintf oc "    {\"name\": %S, \"ns_per_run\": %.1f}%s\n" n v
          (if i = mlast then "" else ","))
      ms;
    Printf.fprintf oc "  ]\n}\n";
    close_out oc;
    Printf.printf "\nwrote %s (%d configs, %d micro)\n" path (List.length rows)
      (List.length ms)
  end

(* argument list for driving LULESH through the generic (tape) harness *)
let lulesh_args (inp : L.input) ~nranks ~rank =
  let m = L.mesh inp ~nranks ~rank in
  [
    GC.ABuf m.L.coords.(0);
    GC.ABuf m.L.coords.(1);
    GC.ABuf m.L.coords.(2);
    GC.ABuf m.L.vels.(0);
    GC.ABuf m.L.vels.(1);
    GC.ABuf m.L.vels.(2);
    GC.ABuf m.L.energy;
    GC.AIntBuf m.L.conn;
    GC.ABuf m.L.node_mass;
    GC.AInt inp.L.nx;
    GC.AInt inp.L.ny;
    GC.AInt m.L.nzl;
    GC.AInt inp.L.niter;
    GC.AScalar inp.L.dt0;
  ]

let lulesh_zero_seeds (inp : L.input) ~nranks ~rank =
  let m = L.mesh inp ~nranks ~rank in
  let nn = Array.length m.L.node_mass in
  let ne = Array.length m.L.energy in
  List.map (fun len -> Array.make len 0.0) [ nn; nn; nn; nn; nn; nn; ne; nn ]

(* the CoDiPack-analog gradient of LULESH-MPI in virtual time *)
let lulesh_tape_gradient (inp : L.input) ~nranks =
  let prog = L.program L.Mpi in
  let g, _ =
    TC.reverse_spmd prog "lulesh_mpi" ~nranks
      ~args:(fun ~rank -> lulesh_args inp ~nranks ~rank)
      ~seeds:(fun ~rank -> lulesh_zero_seeds inp ~nranks ~rank)
      ~d_ret:(fun ~rank -> if rank = 0 then 1.0 else 0.0)
  in
  g.GC.s_makespan
