(* The parad command-line tool: inspect IR, differentiate, and run the
   bundled applications.

     parad ir lulesh_omp            print a variant's IR
     parad gradient bude_omp        print the generated gradient IR
     parad run lulesh --flavor mpi --ranks 8
     parad grad lulesh --flavor omp --threads 16
     parad check                    finite-difference sanity check *)

open Cmdliner
module L = Apps_lulesh.Lulesh
module MB = Apps_minibude.Minibude
module Sim = Parad_runtime.Sim
module Faults = Parad_runtime.Faults
module Mpi_state = Parad_runtime.Mpi_state
module Exec = Parad_runtime.Exec
module Comm_check = Parad_verify.Comm_check
open Parad_ir

module Checkpoint = Parad_runtime.Checkpoint

(* Uniform failure semantics for every subcommand: a deadlock prints the
   structured wait-for report and exits 3; a runtime error prints the
   message and exits 2; an exceeded --deadline-ms/--deadline-cycles
   budget exits 6 (shared with the server's "deadline" response class);
   detected-but-unsupervised data corruption (a checksum or region-digest
   mismatch with no recovery driver to absorb it) exits 9 (the server's
   "corrupted" response class) — never an uncaught exception backtrace. *)
let guarded f =
  try f () with
  | Sim.Deadlock d ->
    Format.eprintf "%a@." Sim.pp_diagnosis d;
    exit 3
  | Mpi_state.Rank_failed n ->
    Format.eprintf "%a@." Mpi_state.pp_failure n;
    exit 3
  | Sim.Deadline_exceeded d ->
    Format.eprintf "%a@." Sim.pp_deadline_hit d;
    exit 6
  | Mpi_state.Corrupt_message c ->
    Format.eprintf "%a@." Mpi_state.pp_corruption c;
    exit 9
  | Checkpoint.Corrupt_region { cr_rank; cr_cache; cr_at } ->
    Printf.eprintf
      "silent data corruption: rank %d cache %d digest mismatch at t=%.0f\n"
      cr_rank cr_cache cr_at;
    exit 9
  | Parad_runtime.Value.Runtime_error msg ->
    Printf.eprintf "runtime error: %s\n" msg;
    exit 2

let lulesh_flavors =
  [
    "seq", L.Seq; "omp", L.Omp; "raja", L.Raja_; "mpi", L.Mpi;
    "hybrid", L.Hybrid; "raja-mpi", L.RajaMpi; "julia", L.Jlmpi;
  ]

let program_of_name name =
  match List.assoc_opt (String.concat "" [ name ]) [] with
  | Some p -> p
  | None ->
    if String.length name >= 6 && String.sub name 0 6 = "lulesh" then
      let flavor =
        List.find_opt (fun (_, f) -> L.flavor_name f = name) lulesh_flavors
      in
      (match flavor with
      | Some (_, f) -> L.program f
      | None -> L.program L.Seq)
    else MB.program ()

let ir_cmd =
  let fname =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FUNC" ~doc:"function name (e.g. lulesh_omp, bude_seq)")
  in
  let run fname =
    let prog = program_of_name fname in
    match Prog.find prog fname with
    | Some f -> print_endline (Printer.func_to_string f)
    | None -> Printf.eprintf "no function %S\n" fname
  in
  Cmd.v (Cmd.info "ir" ~doc:"print the IR of a bundled kernel")
    Term.(const run $ fname)

let gradient_cmd =
  let fname =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FUNC" ~doc:"function to differentiate")
  in
  let optimize =
    Arg.(value & flag & info [ "O" ] ~doc:"run the post-AD cleanup pipeline")
  in
  let run fname optimize =
    let prog = program_of_name fname in
    let dprog, dname = Parad_core.Reverse.gradient prog fname in
    let dprog =
      if optimize then Parad_opt.Pipeline.run dprog Parad_opt.Pipeline.post_ad
      else dprog
    in
    print_endline (Printer.func_to_string (Prog.find_exn dprog dname))
  in
  Cmd.v
    (Cmd.info "gradient"
       ~doc:"differentiate a bundled kernel and print the gradient IR")
    Term.(const run $ fname $ optimize)

let flavor_arg =
  Arg.(
    value
    & opt (enum lulesh_flavors) L.Seq
    & info [ "flavor" ] ~doc:"lulesh variant: seq|omp|raja|mpi|hybrid|julia")

let engine_arg =
  Arg.(
    value
    & opt
        (enum
           [
             "interp", Parad_engine.Engine.Interp;
             "seq", Parad_engine.Engine.Seq;
             "par", Parad_engine.Engine.Par;
           ])
        Parad_engine.Engine.Interp
    & info [ "engine" ]
        ~doc:
          "execution substrate: $(b,interp) walks the IR tree, $(b,seq) \
           runs the lowered slot-addressed instruction graph on the \
           simulator's strands, $(b,par) adds a multicore work-stealing \
           domain pool for fork members (set PARAD_DOMAINS to size it). \
           All three produce bit-identical gradients and virtual time; \
           only wall-clock changes")

(* The simulated communicator builds recursive-doubling collectives and
   halo decompositions that assume a power-of-two communicator; reject
   anything else up front with a clear message instead of failing deep in
   the run. *)
let pow2_ranks_conv =
  let parse s =
    match int_of_string_opt s with
    | None -> Error (`Msg (Printf.sprintf "invalid rank count %S" s))
    | Some n when n > 0 && n land (n - 1) = 0 -> Ok n
    | Some n ->
      Error
        (`Msg
           (Printf.sprintf
              "--ranks must be a power of two (got %d); the simulated \
               communicator uses recursive-doubling collectives"
              n))
  in
  Arg.conv (parse, Format.pp_print_int)

let ranks_arg =
  Arg.(
    value
    & opt pow2_ranks_conv 1
    & info [ "ranks" ] ~doc:"MPI ranks (simulated; must be a power of two)")

let no_coalesce_arg =
  Arg.(
    value & flag
    & info [ "no-coalesce" ]
        ~doc:
          "disable adjoint-communication coalescing (ablation): the reverse \
           sweep answers each forward exchange with its own blocking \
           adjoint message instead of batching per-destination packed \
           messages")

let threads_arg =
  Arg.(value & opt int 1 & info [ "threads" ] ~doc:"OpenMP threads (simulated)")

let size_arg =
  Arg.(value & opt int 4 & info [ "size" ] ~doc:"mesh edge elements")

let iters_arg = Arg.(value & opt int 3 & info [ "iters" ] ~doc:"time steps")

let run_cmd =
  let run flavor ranks threads size iters engine =
    let inp =
      {
        L.nx = size;
        ny = size;
        nz = (size * ranks + ranks - 1) / ranks * ranks;
        niter = iters;
        dt0 = 0.01;
        escale = 1.0;
      }
    in
    guarded (fun () ->
        let r = L.run ~nranks:ranks ~nthreads:threads ~engine flavor inp in
        Printf.printf "%s: total energy %.6f, %.0f virtual cycles\n"
          (L.flavor_name flavor) r.L.total_energy r.L.makespan;
        Printf.printf "stats: %s\n"
          (Fmt.str "%a" Parad_runtime.Stats.pp r.L.stats))
  in
  Cmd.v (Cmd.info "run" ~doc:"run a LULESH variant in the simulator")
    Term.(
      const run $ flavor_arg $ ranks_arg $ threads_arg $ size_arg $ iters_arg
      $ engine_arg)

(* A negative depth has no meaning to the planner (0 already means "cache
   everything"); reject it at parse time with an actionable message
   instead of surfacing a planner invariant failure. *)
let nonneg_depth_conv =
  let parse s =
    match int_of_string_opt s with
    | None -> Error (`Msg (Printf.sprintf "invalid recompute depth %S" s))
    | Some n when n >= 0 -> Ok n
    | Some n ->
      Error
        (`Msg
           (Printf.sprintf
              "--recompute-depth must be non-negative (got %d); 0 caches \
               every needed value"
              n))
  in
  Arg.conv (parse, Format.pp_print_int)

let recompute_depth_arg =
  Arg.(
    value
    & opt nonneg_depth_conv
        Parad_core.Plan.default_options.Parad_core.Plan.recompute_depth
    & info [ "recompute-depth" ]
        ~doc:
          "planner recompute-vs-cache height bound: 0 caches every needed \
           value, larger values rematerialize taller pure expressions in \
           the reverse sweep (the abl-mincut knob)")

(* Snapshot budgets below 1 cannot hold even the segment being reversed;
   reject them up front rather than from the store constructor. *)
let snap_budget_conv =
  let parse s =
    match int_of_string_opt s with
    | None -> Error (`Msg (Printf.sprintf "invalid snapshot budget %S" s))
    | Some n when n >= 1 -> Ok n
    | Some n ->
      Error
        (`Msg
           (Printf.sprintf
              "--snap-budget must be at least 1 (got %d): the binomial \
               schedule needs at least one live snapshot slot"
              n))
  in
  Arg.conv (parse, Format.pp_print_int)

let snap_budget_arg =
  Arg.(
    value
    & opt (some snap_budget_conv) None
    & info [ "snap-budget" ]
        ~doc:
          "checkpoint the outer timestep loop under a revolve-style \
           binomial schedule with at most this many snapshots live in the \
           hot tier (default: store-all, one snapshot per step)")

let snap_tiers_conv =
  let parse s =
    match int_of_string_opt s with
    | Some (1 | 2) as n -> Ok (Option.get n)
    | Some n ->
      Error
        (`Msg
           (Printf.sprintf
              "--snap-tiers must be 1 (hot ring only, evictions drop) or 2 \
               (evictions demote to the disk tier); got %d"
              n))
    | None -> Error (`Msg (Printf.sprintf "invalid tier count %S" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let snap_tiers_arg =
  Arg.(
    value
    & opt snap_tiers_conv 2
    & info [ "snap-tiers" ]
        ~doc:
          "snapshot store tiers: 2 demotes hot-ring evictions to a \
           bandwidth-charged disk tier, 1 drops them (recovery then \
           degrades to older snapshots)")

(* Deadline budgets must be positive: a zero or negative budget would
   abort every run before its first charge, which is never what the
   caller meant — reject it at parse time. *)
let pos_float_conv what =
  let parse s =
    match float_of_string_opt s with
    | None -> Error (`Msg (Printf.sprintf "invalid %s %S" what s))
    | Some v when v > 0.0 && Float.is_finite v -> Ok v
    | Some v ->
      Error (`Msg (Printf.sprintf "%s must be > 0 (got %g)" what v))
  in
  Arg.conv (parse, Format.pp_print_float)

let deadline_ms_arg =
  Arg.(
    value
    & opt (some (pos_float_conv "--deadline-ms")) None
    & info [ "deadline-ms" ]
        ~doc:
          "wall-clock budget for the run in milliseconds (validated > 0); \
           exceeding it aborts with exit code 6. The same watchdog guards \
           every request of the gradient service, so CLI and server share \
           one timeout semantics")

let deadline_cycles_arg =
  Arg.(
    value
    & opt (some (pos_float_conv "--deadline-cycles")) None
    & info [ "deadline-cycles" ]
        ~doc:
          "virtual-time budget for the run in cycles (validated > 0); \
           exceeding it aborts with exit code 6, deterministically")

let deadline_of ms cycles =
  match ms, cycles with
  | None, None -> None
  | _ -> Some { Sim.dl_cycles = cycles; dl_wall_ms = ms }

let grad_plan_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "plan" ]
        ~doc:
          "optional fault plan spec to run the gradient under (same syntax \
           as $(b,parad faults --plan)); SDC events — bit flips, message \
           corruption — are detected by checksums and surface in the \
           stats line (sdc_inj/sdc_det/sdc_rec/retrans)")

(* Zero or negative lane counts have no meaning to the batched planner. *)
let seeds_conv =
  let parse s =
    match int_of_string_opt s with
    | None -> Error (`Msg (Printf.sprintf "invalid seed count %S" s))
    | Some n when n >= 1 -> Ok n
    | Some n ->
      Error
        (`Msg
           (Printf.sprintf
              "--seeds must be at least 1 (got %d); 1 is the classic                single-seed sweep"
              n))
  in
  Arg.conv (parse, Format.pp_print_int)

let seeds_arg =
  Arg.(
    value & opt seeds_conv 1
    & info [ "seeds" ]
        ~doc:
          "number of return seeds to propagate in one batched reverse            sweep (k-stride adjoint planes; lane l is seeded with l+1 and            is bit-identical to a standalone run with --seeds 1 scaled by            that seed). Shared-memory flavors on a single rank only")

(* The remat rate must stay positive: it is a virtual-cycle charge. *)
let remat_rate_conv =
  let parse s =
    match float_of_string_opt s with
    | None -> Error (`Msg (Printf.sprintf "invalid remat rate %S" s))
    | Some r when r > 0.0 -> Ok r
    | Some r ->
      Error
        (`Msg
           (Printf.sprintf
              "--transcendental-remat must be positive (got %g): it is                the virtual-cycle cost of a rematerialized transcendental"
              r))
  in
  Arg.conv (parse, Format.pp_print_float)

let remat_rate_arg =
  Arg.(
    value
    & opt (some remat_rate_conv) None
    & info [ "transcendental-remat" ]
        ~doc:
          (Printf.sprintf
             "virtual-cycle cost of a transcendental re-evaluated inside a               remat chain of the reverse sweep (default %g, vs %g on the               primal path): models cache-hot recomputation; raising it               toward the primal rate shows how much of the mincut               planner's win depends on cheap rematerialization"
             Parad_runtime.Cost_model.default
               .Parad_runtime.Cost_model.transcendental_remat
             Parad_runtime.Cost_model.default
               .Parad_runtime.Cost_model.transcendental))

let grad_cmd =
  let run flavor ranks threads size iters recompute_depth no_coalesce
      snap_budget snap_tiers deadline_ms deadline_cycles plan engine seeds
      remat_rate =
    let inp =
      {
        L.nx = size;
        ny = size;
        nz = (size * ranks + ranks - 1) / ranks * ranks;
        niter = iters;
        dt0 = 0.01;
        escale = 1.0;
      }
    in
    let opts =
      {
        Parad_core.Plan.default_options with
        Parad_core.Plan.recompute_depth;
        coalesce_comm = not no_coalesce;
      }
    in
    let deadline = deadline_of deadline_ms deadline_cycles in
    let faults =
      Option.map
        (fun s ->
          try Faults.plan_of_spec ~seed:42 ~at:0.0 ~nranks:ranks s
          with Invalid_argument msg ->
            Printf.eprintf "%s\n" msg;
            exit 2)
        plan
    in
    let cost =
      Option.map
        (fun r ->
          {
            Parad_runtime.Cost_model.default with
            Parad_runtime.Cost_model.transcendental_remat = r;
          })
        remat_rate
    in
    if seeds > 1 && ranks > 1 then begin
      Printf.eprintf
        "--seeds %d needs a shared-memory run: the MPI adjoint runtime \
         exchanges single-stride planes (got --ranks %d)\n"
        seeds ranks;
      exit 2
    end;
    if seeds > 1 && snap_budget <> None then begin
      Printf.eprintf
        "--seeds cannot be combined with --snap-budget: the binomial \
         driver reverses one seed per sweep\n";
      exit 2
    end;
    guarded (fun () ->
        let p = L.run ~nranks:ranks ~nthreads:threads flavor inp in
        let g, extra =
          match snap_budget with
          | None when seeds > 1 ->
            let c =
              L.compile
                ~opts:{ opts with Parad_core.Plan.seeds }
                flavor
            in
            let d_rets =
              Array.init seeds (fun l -> 1.0 +. float_of_int l)
            in
            let gs =
              L.gradient_batched ?cost ~nthreads:threads ?faults ?deadline
                ~engine c ~d_rets inp
            in
            Printf.printf
              "batched: %d seed lanes in one reverse sweep (lane l seeded \
               with l+1)\n"
              seeds;
            gs.(0), None
          | None ->
            ( L.gradient ?cost ~nranks:ranks ~nthreads:threads ~opts ?faults
                ?deadline ~engine flavor inp,
              None )
          | Some budget ->
            let b =
              L.gradient_binomial ~nranks:ranks ~nthreads:threads ~opts
                ?faults ~tiers:snap_tiers ?deadline ~engine ~budget flavor
                inp
            in
            b.L.b_grad, Some b
        in
        Printf.printf
          "%s: forward %.0f cycles, gradient %.0f cycles, overhead %.2fx\n"
          (L.flavor_name flavor) p.L.makespan g.L.g_makespan
          (g.L.g_makespan /. p.L.makespan);
        Printf.printf
          "engine %s: gradient wall %.2f ms, %d interpreter fallback(s)\n"
          (Parad_engine.Engine.choice_to_string engine)
          (float_of_int g.L.g_stats.Parad_runtime.Stats.wall_ns /. 1e6)
          g.L.g_stats.Parad_runtime.Stats.eng_fallbacks;
        (match extra with
        | None -> ()
        | Some b ->
          Printf.printf
            "binomial: budget %d, tiers %d, %d worst-case sweep(s), %d \
             reverse segment(s), %d re-advance step(s), %d degraded \
             fetch(es)\n"
            b.L.b_budget snap_tiers b.L.b_sweeps b.L.b_segments b.L.b_advances
            b.L.b_degraded);
        let d = g.L.d_energy.(0) in
        Printf.printf "d total / d e[0..3] = %.4f %.4f %.4f %.4f\n" d.(0)
          d.(1) d.(2) d.(3);
        Printf.printf "stats: %s\n"
          (Fmt.str "%a" Parad_runtime.Stats.pp g.L.g_stats);
        match faults with
        | None -> ()
        | Some _ ->
          let s = g.L.g_stats in
          Printf.printf
            "sdc: %d injected, %d detected, %d recovered, %d message \
             retransmit(s)\n"
            s.Parad_runtime.Stats.sdc_injected
            s.Parad_runtime.Stats.sdc_detected
            s.Parad_runtime.Stats.sdc_recovered
            s.Parad_runtime.Stats.msgs_retransmitted)
  in
  Cmd.v
    (Cmd.info "grad" ~doc:"differentiate a LULESH variant and report overhead")
    Term.(
      const run $ flavor_arg $ ranks_arg $ threads_arg $ size_arg $ iters_arg
      $ recompute_depth_arg $ no_coalesce_arg $ snap_budget_arg
      $ snap_tiers_arg $ deadline_ms_arg $ deadline_cycles_arg
      $ grad_plan_arg $ engine_arg $ seeds_arg $ remat_rate_arg)

let check_cmd =
  let run () =
    guarded @@ fun () ->
    let tiny =
      { L.nx = 2; ny = 2; nz = 4; niter = 3; dt0 = 0.01; escale = 1.0 }
    in
    let g = L.gradient L.Seq tiny in
    let m = L.mesh tiny ~nranks:1 ~rank:0 in
    let directional =
      Array.fold_left ( +. ) 0.0
        (Array.mapi (fun k ek -> ek *. g.L.d_energy.(0).(k)) m.L.energy)
    in
    let h = 1e-6 in
    let loss s = (L.run L.Seq { tiny with L.escale = s }).L.total_energy in
    let fd = (loss (1.0 +. h) -. loss (1.0 -. h)) /. (2.0 *. h) in
    Printf.printf "reverse-mode projection: %.10g\n" directional;
    Printf.printf "finite differences:      %.10g\n" fd;
    let rel = Float.abs (fd -. directional) /. Float.max 1.0 (Float.abs fd) in
    Printf.printf "relative error:          %.2e  (%s)\n" rel
      (if rel < 1e-5 then "OK" else "FAIL");
    if rel >= 1e-5 then exit 1
  in
  Cmd.v
    (Cmd.info "check" ~doc:"gradient vs finite differences sanity check")
    Term.(const run $ const ())

(* ---- fault injection: run an application gradient under a fault plan
   spec, print the retry/loss statistics, the structured failure or
   deadlock diagnosis if the plan is unrecoverable, and the post-run
   communication audit. Exit codes: 0 clean, 1 audit found issues,
   2 runtime error, 3 deadlock or rank failure, 9 detected data
   corruption that exhausted its retransmit budget (unsupervised run:
   no checkpoint driver to restore from). *)
let plan_spec_arg ~default =
  Arg.(
    value
    & opt string default
    & info [ "plan" ]
        ~doc:
          (Printf.sprintf
             "fault plan spec: one of %s, optionally followed by \
              :key=val,... overrides (seed, victim, at, retries, backoff, \
              deadline, prob, kill=R[@T], stall=R@T@D, \
              flip=R@CELL@BIT[@T], corrupt-msg=N[@BYTE[@sticky]]; \
              kill/stall/flip/corrupt-msg are repeatable; scalar keys at \
              most once)"
             (String.concat "|" Faults.plan_names)))

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~doc:"fault plan PRNG seed")

let victim_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "victim" ] ~doc:"rank targeted by stall/kill/blackhole/delay plans")

let at_arg =
  Arg.(
    value
    & opt float 0.0
    & info [ "at" ] ~doc:"virtual time a stall/kill fires at")

let primal_arg =
  Arg.(
    value & flag
    & info [ "primal" ] ~doc:"run the primal instead of the gradient")

let app_arg =
  Arg.(
    value
    & opt (enum [ "lulesh", `Lulesh; "bude", `Bude ]) `Lulesh
    & info [ "app" ] ~doc:"application: lulesh|bude")

let dry_run_arg =
  Arg.(
    value & flag
    & info [ "dry-run" ] ~doc:"print the parsed fault plan and exit")

let parse_plan_spec ~seed ~victim ~at ~ranks spec =
  try Faults.plan_of_spec ~seed ?rank:victim ~at ~nranks:ranks spec
  with Invalid_argument msg ->
    Printf.eprintf "%s\n" msg;
    exit 2

let faults_cmd =
  let plan_arg = plan_spec_arg ~default:"drop-retry" in
  let run app plan_name flavor ranks threads size iters seed victim at primal
      dry_run no_coalesce =
    let plan = parse_plan_spec ~seed ~victim ~at ~ranks plan_name in
    Format.printf "%a@." Faults.pp_plan plan;
    if dry_run then exit 0;
    let opts =
      {
        Parad_core.Plan.default_options with
        Parad_core.Plan.coalesce_comm = not no_coalesce;
      }
    in
    match app with
    | `Bude ->
      (* miniBUDE has no message-passing variant: the plan gates MPI
         operations only, so it cannot fire here — still run the gradient
         under the same guarded semantics. *)
      Printf.printf
        "note: miniBUDE has no MPI variant; the fault plan has nothing to \
         inject\n";
      guarded (fun () ->
          let inp = MB.deck ~nposes:16 ~natlig:8 ~natpro:16 in
          let g = MB.gradient ~nthreads:threads MB.Omp inp in
          Printf.printf "bude_omp gradient: %.0f virtual cycles, |d_poses| \
                         = %d\n"
            g.MB.g_makespan
            (Array.length g.MB.d_poses))
    | `Lulesh ->
      let inp =
        {
          L.nx = size;
          ny = size;
          nz = (size * ranks + ranks - 1) / ranks * ranks;
          niter = iters;
          dt0 = 0.01;
          escale = 1.0;
        }
      in
      let mpi_ref = ref None in
      let audit () =
        match !mpi_ref with
        | Some m ->
          let issues = Comm_check.audit m in
          print_endline (Comm_check.report issues);
          issues <> []
        | None -> false
      in
      (try
         if primal then begin
           let r =
             L.run ~nranks:ranks ~nthreads:threads ~faults:plan ~mpi_ref
               flavor inp
           in
           Printf.printf "%s under %S: total energy %.6f, %.0f virtual \
                          cycles\n"
             (L.flavor_name flavor) plan.Faults.name r.L.total_energy
             r.L.makespan;
           Printf.printf "stats: %s\n"
             (Fmt.str "%a" Parad_runtime.Stats.pp r.L.stats)
         end
         else begin
           let g =
             L.gradient ~nranks:ranks ~nthreads:threads ~opts ~faults:plan
               ~mpi_ref flavor inp
           in
           let d = g.L.d_energy.(0) in
           Printf.printf
             "%s gradient under %S: %.0f virtual cycles\nd total / d \
              e[0..3] = %.4f %.4f %.4f %.4f\n"
             (L.flavor_name flavor) plan.Faults.name g.L.g_makespan d.(0)
             d.(1) d.(2) d.(3);
           Printf.printf "stats: %s\n"
             (Fmt.str "%a" Parad_runtime.Stats.pp g.L.g_stats)
         end;
         if audit () then exit 1
       with
      | Sim.Deadlock d ->
        Format.printf "%a@." Sim.pp_diagnosis d;
        ignore (audit ());
        exit 3
      | Mpi_state.Rank_failed n ->
        Format.printf "%a@." Mpi_state.pp_failure n;
        ignore (audit ());
        exit 3
      | Mpi_state.Corrupt_message c ->
        Format.printf "%a@." Mpi_state.pp_corruption c;
        ignore (audit ());
        exit 9
      | Checkpoint.Corrupt_region { cr_rank; cr_cache; cr_at } ->
        Printf.printf
          "silent data corruption: rank %d cache %d digest mismatch at \
           t=%.0f\n"
          cr_rank cr_cache cr_at;
        ignore (audit ());
        exit 9
      | Parad_runtime.Value.Runtime_error msg ->
        Printf.printf "runtime error: %s\n" msg;
        ignore (audit ());
        exit 2)
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "run an application gradient under a deterministic fault plan and \
          report the diagnosis")
    Term.(
      const run $ app_arg $ plan_arg $ flavor_arg $ ranks_arg $ threads_arg
      $ size_arg $ iters_arg $ seed_arg $ victim_arg $ at_arg $ primal_arg
      $ dry_run_arg $ no_coalesce_arg)

(* ---- checkpoint/restart: run an application under a fault plan with
   the supervised driver, so a killed rank triggers restore-and-replay
   instead of aborting. Exit codes: 0 recovered (or no fault fired) with
   a clean audit, 1 audit found issues without any restart, 2 runtime
   error, 3 failure survived past the restart budget (or deadlock),
   4 recovered but degraded (restarted, yet messages were lost or the
   audit is dirty), 9 detected corruption that survived past the restart
   budget. *)
let recover_cmd =
  let plan_arg = plan_spec_arg ~default:"kill" in
  let max_restarts_arg =
    Arg.(
      value & opt int 8
      & info [ "max-restarts" ] ~doc:"restart budget before giving up")
  in
  let run app plan_name flavor ranks threads size iters seed victim at primal
      dry_run max_restarts engine =
    let plan = parse_plan_spec ~seed ~victim ~at ~ranks plan_name in
    Format.printf "%a@." Faults.pp_plan plan;
    if dry_run then exit 0;
    match app with
    | `Bude ->
      Printf.printf
        "note: miniBUDE has no MPI variant; the fault plan has nothing to \
         inject\n";
      guarded (fun () ->
          let inp = MB.deck ~nposes:16 ~natlig:8 ~natpro:16 in
          let g = MB.gradient ~nthreads:threads MB.Omp inp in
          Printf.printf
            "bude_omp gradient: %.0f virtual cycles, |d_poses| = %d\n"
            g.MB.g_makespan
            (Array.length g.MB.d_poses))
    | `Lulesh ->
      let inp =
        {
          L.nx = size;
          ny = size;
          nz = (size * ranks + ranks - 1) / ranks * ranks;
          niter = iters;
          dt0 = 0.01;
          escale = 1.0;
        }
      in
      let mpi_ref = ref None in
      let audit_issues () =
        match !mpi_ref with
        | Some m ->
          let issues = Comm_check.audit m in
          print_endline (Comm_check.report issues);
          issues
        | None -> []
      in
      let report_recovery (recov : Exec.recovery) =
        Printf.printf "recovery: %d restart(s)\n" recov.Exec.r_restarts;
        (* rank failures carry a notice; corruption and bad-snapshot
           restarts don't, so the two lists can differ in length *)
        List.iter
          (fun n -> Format.printf "  %a@." Mpi_state.pp_failure n)
          recov.Exec.r_failures;
        List.iter
          (function
            | Some id -> Printf.printf "  resumed from checkpoint %d\n" id
            | None ->
              Printf.printf "  cold restart (no consistent checkpoint)\n")
          recov.Exec.r_resumed_from
      in
      let finish (recov : Exec.recovery) (stats : Parad_runtime.Stats.t) =
        report_recovery recov;
        Printf.printf "wall: %.2f ms inside the simulator (replays included)\n"
          (float_of_int stats.wall_ns /. 1e6);
        let issues = audit_issues () in
        let degraded = issues <> [] || stats.messages_lost > 0 in
        if recov.Exec.r_restarts > 0 && degraded then exit 4
        else if issues <> [] then exit 1
        else exit 0
      in
      (try
         if primal then begin
           let r, recov =
             L.run_recoverable ~nranks:ranks ~nthreads:threads ~faults:plan
               ~mpi_ref ~max_restarts ~engine flavor inp
           in
           Printf.printf
             "%s under %S: total energy %.6f, %.0f virtual cycles\n"
             (L.flavor_name flavor) plan.Faults.name r.L.total_energy
             r.L.makespan;
           Printf.printf "stats: %s\n"
             (Fmt.str "%a" Parad_runtime.Stats.pp r.L.stats);
           finish recov r.L.stats
         end
         else begin
           let g, recov =
             L.gradient_recoverable ~nranks:ranks ~nthreads:threads
               ~faults:plan ~mpi_ref ~max_restarts ~engine flavor inp
           in
           let d = g.L.d_energy.(0) in
           Printf.printf
             "%s gradient under %S: %.0f virtual cycles\nd total / d \
              e[0..3] = %.4f %.4f %.4f %.4f\n"
             (L.flavor_name flavor) plan.Faults.name g.L.g_makespan d.(0)
             d.(1) d.(2) d.(3);
           Printf.printf "stats: %s\n"
             (Fmt.str "%a" Parad_runtime.Stats.pp g.L.g_stats);
           finish recov g.L.g_stats
         end
       with
      | Sim.Deadlock d ->
        Format.printf "%a@." Sim.pp_diagnosis d;
        ignore (audit_issues ());
        exit 3
      | Mpi_state.Rank_failed n ->
        Format.printf "unrecovered after %d restart(s): %a@." max_restarts
          Mpi_state.pp_failure n;
        ignore (audit_issues ());
        exit 3
      | Mpi_state.Corrupt_message c ->
        Format.printf "unrecovered corruption after %d restart(s): %a@."
          max_restarts Mpi_state.pp_corruption c;
        ignore (audit_issues ());
        exit 9
      | Checkpoint.Corrupt_region { cr_rank; cr_cache; cr_at } ->
        Printf.printf
          "unrecovered corruption after %d restart(s): rank %d cache %d \
           digest mismatch at t=%.0f\n"
          max_restarts cr_rank cr_cache cr_at;
        ignore (audit_issues ());
        exit 9
      | Parad_runtime.Value.Runtime_error msg ->
        Printf.printf "runtime error: %s\n" msg;
        ignore (audit_issues ());
        exit 2)
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:
         "run an application under a fault plan with checkpoint/restart \
          recovery and report the restart history")
    Term.(
      const run $ app_arg $ plan_arg $ flavor_arg $ ranks_arg $ threads_arg
      $ size_arg $ iters_arg $ seed_arg $ victim_arg $ at_arg $ primal_arg
      $ dry_run_arg $ max_restarts_arg $ engine_arg)

(* ---- ParSan: run an application (primal or gradient) under the runtime
   sanitizer and report the findings. Exit codes extend the fault/recover
   protocol: 0 clean, 1 findings (races, leaks, uninitialized reads),
   2 runtime error or strict-mode non-finite abort, 3 deadlock or rank
   failure, 4 degraded (non-finite values quarantined), 5 miscompilation
   (a dynamic race on a cell the static analysis claimed private). *)
module San = Parad_runtime.Sanitizer

let sanitize_cmd =
  let mode_arg =
    Arg.(
      value
      & opt (enum [ "strict", San.Strict; "degrade", San.Degrade ]) San.Strict
      & info [ "mode" ]
          ~doc:
            "non-finite policy: $(b,strict) aborts at the first originating \
             NaN/Inf with provenance; $(b,degrade) quarantines (zeroes) the \
             value, counts it, and finishes")
  in
  let no_race_arg =
    Arg.(value & flag & info [ "no-race" ] ~doc:"disable the race checker")
  in
  let no_mem_arg =
    Arg.(
      value & flag
      & info [ "no-mem" ] ~doc:"disable the memory checker (leaks, poison)")
  in
  let no_grad_arg =
    Arg.(
      value & flag
      & info [ "no-grad" ] ~doc:"disable the gradient-integrity (NaN/Inf) \
                                 checker")
  in
  let pedantic_arg =
    Arg.(
      value & flag
      & info [ "pedantic-uninit" ]
          ~doc:
            "also flag reads of never-written cells (off by default: adjoint \
             buffers legitimately read their zero initialization)")
  in
  let inject_nan_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "inject-nan" ] ~docv:"IDX"
          ~doc:
            "poison one input cell with NaN before the run (lulesh: element \
             energy IDX on rank 0; bude: pose datum IDX) to exercise GradSan")
  in
  let assume_private_arg =
    Arg.(
      value & flag
      & info [ "assume-private" ]
          ~doc:
            "compile the gradient as if every shadow buffer were \
             thread-private (deliberately unsound; seeds the miscompilation \
             RaceSan's cross-validation must catch)")
  in
  let atomic_always_arg =
    Arg.(
      value & flag
      & info [ "atomic-always" ]
          ~doc:"compile every shadow accumulation as atomic (the abl-tl \
                ablation; must sanitize clean)")
  in
  let plan_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "plan" ]
          ~doc:"optional fault plan spec to compose with sanitizing (same \
                syntax as $(b,parad faults --plan))")
  in
  let run app flavor ranks threads size iters seed victim at primal plan mode
      no_race no_mem no_grad pedantic inject_nan assume_private atomic_always =
    let san =
      San.create ~race:(not no_race) ~mem:(not no_mem) ~grad:(not no_grad)
        ~uninit:pedantic ~mode ()
    in
    let opts =
      { Parad_core.Plan.default_options with atomic_always; assume_private }
    in
    let faults =
      Option.map (fun s -> parse_plan_spec ~seed ~victim ~at ~ranks s) plan
    in
    let finish () =
      Format.printf "%a@." San.pp_report san;
      exit (San.exit_code san)
    in
    try
      (match app with
      | `Bude ->
        let inp = MB.deck ~nposes:16 ~natlig:8 ~natpro:16 in
        (match inject_nan with
        | Some i when i >= 0 && i < Array.length inp.MB.pose_data ->
          inp.MB.pose_data.(i) <- Float.nan
        | _ -> ());
        if primal then begin
          let r = MB.run ~nthreads:threads ~san MB.Omp inp in
          Printf.printf "bude_omp: energies[0..3] = %.4f %.4f %.4f %.4f, \
                         %.0f virtual cycles\n"
            r.MB.energies.(0) r.MB.energies.(1) r.MB.energies.(2)
            r.MB.energies.(3) r.MB.makespan;
          Printf.printf "stats: %s\n"
            (Fmt.str "%a" Parad_runtime.Stats.pp r.MB.stats)
        end
        else begin
          let g = MB.gradient ~nthreads:threads ~san ~opts MB.Omp inp in
          Printf.printf "bude_omp gradient: %.0f virtual cycles\nd_poses\
                         [0..3] = %.4f %.4f %.4f %.4f\n"
            g.MB.g_makespan g.MB.d_poses.(0) g.MB.d_poses.(1)
            g.MB.d_poses.(2) g.MB.d_poses.(3);
          Printf.printf "stats: %s\n"
            (Fmt.str "%a" Parad_runtime.Stats.pp g.MB.g_stats)
        end
      | `Lulesh ->
        let inp =
          {
            L.nx = size;
            ny = size;
            nz = (size * ranks + ranks - 1) / ranks * ranks;
            niter = iters;
            dt0 = 0.01;
            escale = 1.0;
          }
        in
        if primal then begin
          let r =
            L.run ~nranks:ranks ~nthreads:threads ?faults ~san ?inject_nan
              flavor inp
          in
          Printf.printf "%s: total energy %.6f, %.0f virtual cycles\n"
            (L.flavor_name flavor) r.L.total_energy r.L.makespan;
          Printf.printf "stats: %s\n"
            (Fmt.str "%a" Parad_runtime.Stats.pp r.L.stats)
        end
        else begin
          let g =
            L.gradient ~nranks:ranks ~nthreads:threads ~opts ?faults ~san
              ?inject_nan flavor inp
          in
          let d = g.L.d_energy.(0) in
          Printf.printf
            "%s gradient: %.0f virtual cycles\nd total / d e[0..3] = %.4f \
             %.4f %.4f %.4f\n"
            (L.flavor_name flavor) g.L.g_makespan d.(0) d.(1) d.(2) d.(3);
          Printf.printf "stats: %s\n"
            (Fmt.str "%a" Parad_runtime.Stats.pp g.L.g_stats)
        end);
      finish ()
    with
    | San.Nonfinite_strict msg ->
      Printf.printf "gradient-integrity violation (strict): %s\n" msg;
      Format.printf "%a@." San.pp_report san;
      exit 2
    | Sim.Deadlock d ->
      Format.printf "%a@." Sim.pp_diagnosis d;
      Format.printf "%a@." San.pp_report san;
      exit 3
    | Mpi_state.Rank_failed n ->
      Format.printf "%a@." Mpi_state.pp_failure n;
      Format.printf "%a@." San.pp_report san;
      exit 3
    | Parad_runtime.Value.Runtime_error msg ->
      Printf.printf "runtime error: %s\n" msg;
      Format.printf "%a@." San.pp_report san;
      exit 2
  in
  Cmd.v
    (Cmd.info "sanitize"
       ~doc:
         "run an application under the ParSan runtime sanitizer (race, \
          memory, and gradient-integrity checking) and report findings")
    Term.(
      const run $ app_arg $ flavor_arg $ ranks_arg $ threads_arg $ size_arg
      $ iters_arg $ seed_arg $ victim_arg $ at_arg $ primal_arg $ plan_arg
      $ mode_arg $ no_race_arg $ no_mem_arg $ no_grad_arg $ pedantic_arg
      $ inject_nan_arg $ assume_private_arg $ atomic_always_arg)

(* ---- chaos soak: randomized fault plans x checkpoint schedules, every
   trial either reproduces the faultless gradient bit-for-bit or aborts
   through a documented exit code. Exit codes: 0 zero unclassified
   trials, 1 otherwise. *)
let soak_cmd =
  let trials_arg =
    Arg.(
      value & opt int 50
      & info [ "trials" ] ~doc:"seeded fault/schedule combinations to run")
  in
  let soak_seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ]
          ~doc:
            "soak PRNG seed; the whole soak is a pure function of it, so a \
             failing trial replays exactly")
  in
  let run trials seed =
    let report =
      Apps_lulesh.Chaos.soak ~trials ~log:print_endline ~seed ()
    in
    Printf.printf
      "soak: seed %d, %d trial(s): %d bit-identical, %d classified clean \
       abort(s), %d UNCLASSIFIED\n"
      report.Apps_lulesh.Chaos.r_seed trials
      report.Apps_lulesh.Chaos.r_identical
      report.Apps_lulesh.Chaos.r_classified
      report.Apps_lulesh.Chaos.r_unclassified;
    if report.Apps_lulesh.Chaos.r_unclassified > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "chaos-soak the checkpoint/recovery stack: randomized fault plans \
          and checkpoint schedules, each trial must reproduce the faultless \
          gradient bit-for-bit or abort with a documented exit code")
    Term.(const run $ trials_arg $ soak_seed_arg)

(* ---- gradient service (ISSUE 7): a long-running daemon serving
   newline-delimited JSON gradient requests against cached plans, every
   response classified through the extended exit-code taxonomy. ---- *)

module Service = Parad_server.Service
module Slam = Parad_server.Slam
module Sjson = Parad_server.Json

let serve_cmd =
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ]
          ~docv:"PATH"
          ~doc:
            "serve a Unix-domain socket at $(docv) (one line of JSON per \
             request/response); default is --stdin batch mode")
  in
  let stdin_arg =
    Arg.(
      value & flag
      & info [ "stdin" ]
          ~doc:
            "batch mode: read requests from stdin, answer on stdout, drain \
             at EOF (the mode CI smoke-tests)")
  in
  let workers_arg =
    Arg.(
      value & opt int Service.default_config.Service.workers
      & info [ "workers" ] ~doc:"virtual worker-pool width")
  in
  let queue_arg =
    Arg.(
      value & opt int Service.default_config.Service.queue_cap
      & info [ "queue" ]
          ~doc:
            "admission-queue bound: requests beyond it shed with a \
             structured overloaded response (exit-code class 7)")
  in
  let cache_arg =
    Arg.(
      value & opt int Service.default_config.Service.cache_cap
      & info [ "cache" ] ~doc:"LRU plan-cache capacity (compiled plans)")
  in
  let breaker_k_arg =
    Arg.(
      value & opt int Service.default_config.Service.breaker_k
      & info [ "breaker-k" ]
          ~doc:"consecutive failures that trip a plan key's circuit breaker")
  in
  let breaker_cooldown_arg =
    Arg.(
      value & opt int Service.default_config.Service.breaker_cooldown
      & info [ "breaker-cooldown" ]
          ~doc:
            "submissions rejected on an open key before it half-opens \
             (submission-counted for determinism)")
  in
  let retries_arg =
    Arg.(
      value & opt int Service.default_config.Service.retries
      & info [ "retries" ]
          ~doc:
            "retry budget for transient failures (consumed rank kills, \
             missing snapshots); each retry charges exponential virtual \
             backoff")
  in
  let watchdog_arg =
    Arg.(
      value
      & opt (some (pos_float_conv "--watchdog-ms")) None
      & info [ "watchdog-ms" ]
          ~doc:
            "default wall-clock watchdog applied to requests that carry no \
             deadline_ms of their own (0 < ms); off when omitted")
  in
  let run socket stdin workers queue cache breaker_k breaker_cooldown retries
      watchdog_ms =
    let cfg =
      {
        Service.default_config with
        Service.workers;
        queue_cap = queue;
        cache_cap = cache;
        breaker_k;
        breaker_cooldown;
        retries;
        watchdog_ms;
      }
    in
    let svc =
      try Service.create ~cfg ()
      with Invalid_argument m ->
        Printf.eprintf "parad serve: %s\n" m;
        exit 2
    in
    match socket with
    | None ->
      ignore stdin;
      (* stdin batch: the default, and what scripts/check.sh smokes *)
      (try
         while true do
           let line = input_line Stdlib.stdin in
           if String.trim line <> "" then
             print_endline (Service.handle_line svc line)
         done
       with End_of_file -> ());
      print_endline (Sjson.to_string (Service.drain svc))
    | Some path ->
      let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 16;
      Printf.eprintf "parad serve: listening on %s\n%!" path;
      let drained = ref false in
      while not !drained do
        let client, _ = Unix.accept sock in
        let ic = Unix.in_channel_of_descr client in
        let oc = Unix.out_channel_of_descr client in
        (try
           while not !drained do
             let line = input_line ic in
             if String.trim line <> "" then begin
               let reply = Service.handle_line svc line in
               output_string oc (reply ^ "\n");
               flush oc;
               (* a drain command answers, then shuts the daemon down *)
               match Sjson.of_string line with
               | Ok j
                 when Sjson.str_field "cmd" j = Some "drain"
                      || Sjson.str_field "cmd" j = Some "shutdown" ->
                 drained := true
               | _ -> ()
             end
           done
         with End_of_file | Sys_error _ -> ());
        (try Unix.close client with Unix.Unix_error _ -> ())
      done;
      (try Unix.close sock with Unix.Unix_error _ -> ());
      (try Unix.unlink path with Unix.Unix_error _ -> ())
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "gradient service: cache compiled plans and serve JSON gradient \
          requests with admission control, per-request deadlines, crash \
          isolation and per-plan circuit breaking")
    Term.(
      const run $ socket_arg $ stdin_arg $ workers_arg $ queue_arg $ cache_arg
      $ breaker_k_arg $ breaker_cooldown_arg $ retries_arg $ watchdog_arg)

let slam_cmd =
  let requests_arg =
    Arg.(
      value & opt int 50
      & info [ "requests" ]
          ~doc:"seeded chaos requests in the mixed phase (plus directed phases)")
  in
  let slam_seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ]
          ~doc:
            "slam PRNG seed; the whole run is a pure function of it, so a \
             failure replays exactly")
  in
  let run requests seed =
    let report = Slam.run ~trials:requests ~log:print_endline ~seed () in
    Printf.printf
      "slam: seed %d, %d request(s), %d response(s): %d unclassified, %d \
       warm/cold mismatch(es), %d shed, breaker %d trip(s) %d recovery(ies), \
       drained %b\n"
      report.Slam.s_seed report.Slam.s_requests report.Slam.s_responses
      report.Slam.s_unclassified report.Slam.s_mismatches report.Slam.s_shed
      report.Slam.s_trips report.Slam.s_recoveries report.Slam.s_drained;
    List.iter
      (fun (cls, n) -> Printf.printf "  class %-13s %d\n" cls n)
      report.Slam.s_classes;
    if not (Slam.passed report) then exit 1
  in
  Cmd.v
    (Cmd.info "slam"
       ~doc:
         "chaos-slam the gradient service: seeded hostile request mixes \
          (invalid flags, fault plans, NaN injection, deadline busts, \
          overload bursts); every response must be classified, warm plans \
          bit-identical to cold, and the breaker must trip and recover")
    Term.(const run $ requests_arg $ slam_seed_arg)

let () =
  let info = Cmd.info "parad" ~doc:"parallel AD through compiler augmentation" in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            ir_cmd; gradient_cmd; run_cmd; grad_cmd; check_cmd; faults_cmd;
            recover_cmd; sanitize_cmd; soak_cmd; serve_cmd; slam_cmd;
          ]))
