(** Seeded chaos soak for the unified checkpoint/recovery stack.

    Each trial draws a random combination of checkpoint schedule
    (store-all supervised vs. binomial under a snapshot budget), tiering
    policy, horizon length, and fault plan (rank kills at random virtual
    times, snapshot corruption at random store points, silent bit flips
    into sealed cache memory, in-flight packed-message corruption — the
    SDC trials run on both LULESH and miniBUDE), runs the application
    gradient under it, and classifies the outcome:

    - {e Identical}: the run completed and its gradient is bit-identical
      to the faultless store-all baseline — recovery reproduced the
      derivative exactly.
    - {e Classified}: the run aborted through a structured, documented
      failure (exit-code taxonomy: rank failure/deadlock 3, runtime
      error 2, unrecovered corruption 9) — e.g. the restart budget was
      exhausted. Clean aborts are acceptable chaos outcomes.
    - {e Unclassified}: anything else — a completed run whose gradient
      differs from the baseline, or an undocumented exception. Any
      unclassified outcome is a bug in the recovery stack; the soak
      gate requires zero.

    The whole soak is a pure function of its seed: the per-trial PRNG is
    splitmix64 streams derived from [seed] and the trial index, and the
    simulator is virtual-time deterministic, so a failing trial replays
    exactly from its printed seed. *)

open Parad_runtime

(* ---- splitmix64: tiny, seedable, and plenty for drawing plans ---- *)

type rng = { mutable s : int64 }

let rng seed = { s = Int64.of_int (0x9e3779b9 + (seed * 0x85ebca6b)) }

let next r =
  r.s <- Int64.add r.s 0x9e3779b97f4a7c15L;
  let z = r.s in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let draw_int r bound = Int64.to_int (Int64.unsigned_rem (next r) (Int64.of_int bound))

let draw_float r =
  Int64.to_float (Int64.shift_right_logical (next r) 11) /. 9007199254740992.0

let draw_bool r p = draw_float r < p

(* ---- outcomes ---- *)

type outcome =
  | Identical
  | Classified of int * string  (** exit code, short reason *)
  | Unclassified of string

type trial = {
  t_index : int;
  t_desc : string;  (** replayable description of the drawn combination *)
  t_outcome : outcome;
}

type report = {
  r_seed : int;
  r_trials : trial list;  (** in execution order *)
  r_identical : int;
  r_classified : int;
  r_unclassified : int;
}

let classify = function
  | Mpi_state.Rank_failed n ->
    Classified
      (3, Printf.sprintf "rank %d failed (restart budget exhausted)" n.Mpi_state.fn_failed)
  | Sim.Deadlock _ -> Classified (3, "deadlock")
  | Value.Runtime_error m -> Classified (2, "runtime error: " ^ m)
  | Checkpoint.Snapshot_unavailable { su_id; su_corrupt; _ } ->
    Classified
      ( 2,
        Printf.sprintf "snapshot %d %s (restart budget exhausted)" su_id
          (if su_corrupt then "corrupt" else "missing") )
  | Mpi_state.Corrupt_message c ->
    Classified
      ( 9,
        Printf.sprintf "message %d->%d corrupt (retransmits exhausted)"
          c.Mpi_state.cm_src c.Mpi_state.cm_dst )
  | Checkpoint.Corrupt_region { cr_rank; cr_cache; _ } ->
    Classified
      ( 9,
        Printf.sprintf "rank %d cache %d digest mismatch (unrecovered)"
          cr_rank cr_cache )
  | e -> Unclassified (Printexc.to_string e)

let bits_eq (a : float array) (b : float array) =
  Array.length a = Array.length b
  && (let ok = ref true in
      Array.iteri
        (fun i x ->
          if not (Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float b.(i)))
          then ok := false)
        a;
      !ok)

let grads_eq (a : Lulesh.grad_result) (b : Lulesh.grad_result) =
  Array.length a.Lulesh.d_coords = Array.length b.Lulesh.d_coords
  && Array.for_all2 bits_eq a.Lulesh.d_coords b.Lulesh.d_coords
  && Array.for_all2 bits_eq a.Lulesh.d_energy b.Lulesh.d_energy

module MB = Apps_minibude.Minibude

let mb_grads_eq (a : MB.grad_result) (b : MB.grad_result) =
  bits_eq a.MB.g_energies b.MB.g_energies
  && bits_eq a.MB.d_lig b.MB.d_lig
  && bits_eq a.MB.d_pro b.MB.d_pro
  && bits_eq a.MB.d_poses b.MB.d_poses

(* ---- the soak ---- *)

let input niter = { Lulesh.nx = 2; ny = 2; nz = 4; niter; dt0 = 0.01; escale = 1.0 }

(** One soak of [trials] seeded combinations. Faultless store-all
    baselines are computed once per (flavor, horizon) and shared across
    trials. [log], when given, receives one line per finished trial. *)
let soak ?(trials = 50) ?log ~seed () : report =
  let baselines : (string * int, Lulesh.grad_result) Hashtbl.t =
    Hashtbl.create 8
  in
  let baseline flavor niter =
    let key = (Lulesh.flavor_name flavor, niter) in
    match Hashtbl.find_opt baselines key with
    | Some g -> g
    | None ->
      let g = Lulesh.gradient ~nranks:2 flavor (input niter) in
      Hashtbl.add baselines key g;
      g
  in
  let mb_baselines : (int, MB.grad_result) Hashtbl.t = Hashtbl.create 4 in
  let mb_baseline nposes =
    match Hashtbl.find_opt mb_baselines nposes with
    | Some g -> g
    | None ->
      let g = MB.gradient MB.Omp (MB.deck ~nposes ~natlig:4 ~natpro:6) in
      Hashtbl.add mb_baselines nposes g;
      g
  in
  let run_trial i =
    let r = rng ((seed * 1_000_003) + i) in
    let niter = 3 + draw_int r 4 in
    let inp = input niter in
    let flavor = Lulesh.Mpi in
    let base = baseline flavor niter in
    let fault_seed = 1 + draw_int r 1000 in
    let kills r n =
      List.init n (fun _ ->
          (* anywhere from early forward sweep to past the clean end (a
             kill beyond the makespan simply never fires) *)
          0.02 +. (draw_float r *. 1.1))
      |> List.map (fun frac -> frac *. base.Lulesh.g_makespan)
    in
    (* the plan name "kill" already carries one kill — retarget it with
       victim/at and only append the extras, so the description names
       exactly the kills that can fire *)
    let spec_of_kills = function
      | [] -> invalid_arg "spec_of_kills: no kills"
      | at :: rest ->
        Printf.sprintf "kill:victim=1,at=%.0f%s" at
          (String.concat ""
             (List.map (Printf.sprintf ",kill=1@%.0f") rest))
    in
    let scenario = draw_int r 6 in
    let desc, outcome =
      match scenario with
      | 0 ->
        (* binomial schedule + snapshot corruption at random store points *)
        let budget = 1 + draw_int r 4 in
        let tiers = 1 + draw_int r 2 in
        let corrupt_p = 0.15 +. (0.25 *. draw_float r) in
        let cr = rng ((seed * 7_368_787) + i) in
        let on_snapshot ~step ~store =
          if step > 0 && draw_bool cr corrupt_p then
            for rank = 0 to 1 do
              Checkpoint.corrupt store ~rank ~id:step
            done
        in
        let desc =
          Printf.sprintf
            "binomial niter=%d budget=%d tiers=%d corrupt_p=%.2f" niter
            budget tiers corrupt_p
        in
        ( desc,
          try
            let res =
              Lulesh.gradient_binomial ~nranks:2 ~tiers ~on_snapshot ~budget
                flavor inp
            in
            if grads_eq res.Lulesh.b_grad base then Identical
            else Unclassified "completed with non-identical gradient"
          with e -> classify e )
      | 1 ->
        (* binomial schedule + rank kills across the inner runs *)
        let budget = 1 + draw_int r 4 in
        let tiers = 1 + draw_int r 2 in
        let nkills = 1 + draw_int r 2 in
        let max_restarts = 1 + draw_int r 4 in
        let ats = kills r nkills in
        let spec = spec_of_kills ats in
        let faults =
          Faults.plan_of_spec ~seed:fault_seed ~nranks:2 spec
        in
        let desc =
          Printf.sprintf
            "binomial niter=%d budget=%d tiers=%d max_restarts=%d %s" niter
            budget tiers max_restarts spec
        in
        ( desc,
          try
            let res =
              Lulesh.gradient_binomial ~nranks:2 ~tiers ~faults ~max_restarts
                ~budget flavor inp
            in
            if grads_eq res.Lulesh.b_grad base then Identical
            else Unclassified "completed with non-identical gradient"
          with e -> classify e )
      | 3 ->
        (* SDC: seeded bit flips into sealed cache memory, supervised
           store-all recovery — every landed flip must be caught by a
           region digest and replayed away bit-identically *)
        let nflips = 1 + draw_int r 2 in
        let max_restarts = 2 + draw_int r 3 in
        let flips =
          List.init nflips (fun _ ->
              let rank = draw_int r 2 in
              let cell = draw_int r 10_000 in
              let bit = draw_int r 64 in
              let at = draw_float r *. base.Lulesh.g_makespan in
              Printf.sprintf ",flip=%d@%d@%d@%.0f" rank cell bit at)
        in
        let spec = "none:retries=5" ^ String.concat "" flips in
        let faults = Faults.plan_of_spec ~seed:fault_seed ~nranks:2 spec in
        let desc =
          Printf.sprintf "sdc-flip niter=%d max_restarts=%d %s" niter
            max_restarts spec
        in
        ( desc,
          try
            let g, _recov =
              Lulesh.gradient_recoverable ~nranks:2 ~faults ~max_restarts
                flavor inp
            in
            if grads_eq g base then Identical
            else Unclassified "completed with non-identical gradient"
          with e -> classify e )
      | 4 ->
        (* SDC: corrupt a packed adjoint message in flight (sometimes
           sticky, exhausting the retransmit ladder into a checkpoint
           restore), supervised recovery *)
        let ordinal = 1 + draw_int r 6 in
        let byte = draw_int r 512 in
        let sticky = draw_bool r 0.5 in
        let max_restarts = 2 + draw_int r 3 in
        let spec =
          Printf.sprintf "none:retries=3,corrupt-msg=%d@%d%s" ordinal byte
            (if sticky then "@sticky" else "")
        in
        let faults = Faults.plan_of_spec ~seed:fault_seed ~nranks:2 spec in
        let desc =
          Printf.sprintf "sdc-msg niter=%d max_restarts=%d %s" niter
            max_restarts spec
        in
        ( desc,
          try
            let g, _recov =
              Lulesh.gradient_recoverable ~nranks:2 ~faults ~max_restarts
                flavor inp
            in
            if grads_eq g base then Identical
            else Unclassified "completed with non-identical gradient"
          with e -> classify e )
      | 5 ->
        (* SDC on miniBUDE: single-rank bit flip under service-style
           whole-request retry (a detected region corruption consumes
           the fired flip and re-executes, like the gradient service) *)
        let nposes = 8 + (8 * draw_int r 3) in
        let inp = MB.deck ~nposes ~natlig:4 ~natpro:6 in
        let mb_base = mb_baseline nposes in
        let cell = draw_int r 10_000 in
        let bit = draw_int r 64 in
        let at = draw_float r *. mb_base.MB.g_makespan in
        let spec = Printf.sprintf "none:flip=0@%d@%d@%.0f" cell bit at in
        let plan = Faults.plan_of_spec ~seed:fault_seed ~nranks:1 spec in
        let desc = Printf.sprintf "sdc-bude nposes=%d %s" nposes spec in
        ( desc,
          try
            let rec go plan tries =
              try MB.gradient ~faults:plan MB.Omp inp
              with
              | Checkpoint.Corrupt_region { cr_rank; _ } when tries < 3 ->
                go (Faults.consume_flip plan ~rank:cr_rank) (tries + 1)
            in
            let g = go plan 0 in
            if mb_grads_eq g mb_base then Identical
            else Unclassified "completed with non-identical gradient"
          with e -> classify e )
      | _ ->
        (* supervised store-all recovery, optionally checkpointing at
           reverse entry, under rank kills *)
        let ckpt_rev = draw_bool r 0.5 in
        let nkills = 1 + draw_int r 2 in
        let max_restarts = 1 + draw_int r 4 in
        let ats = kills r nkills in
        let spec = spec_of_kills ats in
        let faults = Faults.plan_of_spec ~seed:fault_seed ~nranks:2 spec in
        let opts =
          { Parad_core.Plan.default_options with ckpt_reverse = ckpt_rev }
        in
        let desc =
          Printf.sprintf
            "supervised niter=%d ckpt_reverse=%b max_restarts=%d %s" niter
            ckpt_rev max_restarts spec
        in
        ( desc,
          try
            let g, _recov =
              Lulesh.gradient_recoverable ~nranks:2 ~opts ~faults
                ~max_restarts flavor inp
            in
            if grads_eq g base then Identical
            else Unclassified "completed with non-identical gradient"
          with e -> classify e )
    in
    let t = { t_index = i; t_desc = desc; t_outcome = outcome } in
    (match log with
    | Some f ->
      f
        (Printf.sprintf "trial %3d: %-70s %s" i desc
           (match outcome with
           | Identical -> "identical"
           | Classified (code, why) ->
             Printf.sprintf "classified(exit %d: %s)" code why
           | Unclassified why -> Printf.sprintf "UNCLASSIFIED: %s" why))
    | None -> ());
    t
  in
  let ts = List.init trials run_trial in
  let count p = List.length (List.filter p ts) in
  {
    r_seed = seed;
    r_trials = ts;
    r_identical = count (fun t -> t.t_outcome = Identical);
    r_classified =
      count (fun t -> match t.t_outcome with Classified _ -> true | _ -> false);
    r_unclassified =
      count (fun t ->
          match t.t_outcome with Unclassified _ -> true | _ -> false);
  }
