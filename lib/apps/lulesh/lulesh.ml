(** LULESH proxy: an explicit Lagrangian shock-hydrodynamics mini-app with
    the data-movement character the paper picks LULESH for — indirection-
    based gather/scatter over an element-node mesh, a manual min-reduction
    for the time-step constraint (Fig 7), and slab-decomposed ghost
    exchange with nonblocking MPI held in request arrays.

    The physics is a faithful *simplification* of LULESH's leapfrog: per
    iteration it (1) zeroes nodal forces, (2) gathers each hexahedron's
    nodes, computes volume (corner triple product), an ideal-gas pressure,
    a velocity-divergence artificial viscosity, and scatter-adds
    stress+hourglass forces to the nodes, (3) exchanges boundary-plane
    force contributions between slab neighbours, (4) integrates
    acceleration/velocity/position, (5) updates internal energy with the
    p dV work, and (6) computes the next time step as a Courant-style
    min-reduction (globally min-reduced under MPI). The returned loss is
    the total internal energy (all-reduced under MPI).

    Variants (one IR function each, sharing the same physics emitters):
    - ["lulesh_seq"]     sequential C++ baseline
    - ["lulesh_omp"]     OpenMP: worksharing loops, atomic scatter,
                         the Fig 7 manual min-reduction
    - ["lulesh_raja"]    RAJA frontend (lowers onto the OpenMP IR)
    - ["lulesh_mpi"]     MPI: serial compute per rank + ghost exchange
    - ["lulesh_hybrid"]  MPI × OpenMP
    - ["lulesh_jl"]      Julia: descriptor-indirected GC arrays + MPI.jl
                         wrappers with GC preservation (serial compute per
                         rank, as LULESH.jl) *)

open Parad_ir
module B = Builder
module Jl = Parad_julia.Julia_fe
module Raja = Parad_raja.Raja

(* ---- array handles: C++ pointers or Julia descriptor arrays ---- *)

type h = Raw of Var.t | Jla of Jl.arr

let ld b h i = match h with Raw p -> B.load b p i | Jla a -> Jl.get b a i
let st b h i v =
  match h with Raw p -> B.store b p i v | Jla a -> Jl.set b a i v

type flavor = Seq | Omp | Raja_ | Mpi | Hybrid | RajaMpi | Jlmpi

let flavor_name = function
  | Seq -> "lulesh_seq"
  | Omp -> "lulesh_omp"
  | Raja_ -> "lulesh_raja"
  | Mpi -> "lulesh_mpi"
  | Hybrid -> "lulesh_hybrid"
  | RajaMpi -> "lulesh_raja_mpi"
  | Jlmpi -> "lulesh_jl"

let uses_mpi = function
  | Mpi | Hybrid | RajaMpi | Jlmpi -> true
  | Seq | Omp | Raja_ -> false

let threaded = function
  | Omp | Raja_ | Hybrid | RajaMpi -> true
  | Seq | Mpi | Jlmpi -> false

let julia = function Jlmpi -> true | _ -> false

(* parallel-for over [0,hi) per flavor *)
let pfor flavor b ~hi body =
  match flavor with
  | Seq | Mpi | Jlmpi -> B.for_n b hi body
  | Omp | Hybrid -> B.parallel_for b ~lo:(B.i64 b 0) ~hi body
  | Raja_ | RajaMpi -> Raja.forall b ~lo:(B.i64 b 0) ~hi body

(* accumulate v into h[i]: atomic when the loop runs threaded (the
   scatter-add force accumulation; LULESH's OMP version uses atomics) *)
let scatter flavor b h i v =
  if threaded flavor then
    match h with
    | Raw p -> B.atomic_add b p i v
    | Jla _ -> invalid_arg "lulesh: threaded julia scatter"
  else begin
    let cur = ld b h i in
    st b h i (B.add b cur v)
  end

(* min over elements of [body i], per flavor:
   - threaded: the Fig 7 manual per-thread-slot reduction for Omp/Hybrid,
     RAJA's ReduceMin for Raja_
   - otherwise a serial fold *)
let min_over flavor b ~hi body =
  match flavor with
  | Seq | Mpi | Jlmpi ->
    let cell = B.alloc b Ty.Float (B.i64 b 1) in
    let z = B.i64 b 0 in
    B.store b cell z (B.f64 b infinity);
    B.for_n b hi (fun i ->
        let v = body i in
        let cur = B.load b cell z in
        B.store b cell z (B.min_ b cur v));
    let r = B.load b cell z in
    B.free b cell;
    r
  | Omp | Hybrid ->
    (* Fig 7: per-thread partial mins, then a serial combine *)
    let nt = B.call b ~ret:Ty.Int "omp.max_threads" [] in
    let per = B.alloc b Ty.Float nt in
    B.for_n b nt (fun t -> B.store b per t (B.f64 b infinity));
    B.fork b (fun ~tid ~nth:_ ->
        let local = B.alloc b Ty.Float (B.i64 b 1) in
        let z = B.i64 b 0 in
        B.store b local z (B.f64 b infinity);
        B.workshare b ~lo:(B.i64 b 0) ~hi (fun i ->
            let v = body i in
            let cur = B.load b local z in
            B.store b local z (B.min_ b cur v));
        let cur = B.load b per tid in
        B.store b per tid (B.min_ b cur (B.load b local z));
        B.free b local);
    let cell = B.alloc b Ty.Float (B.i64 b 1) in
    let z = B.i64 b 0 in
    B.store b cell z (B.f64 b infinity);
    B.for_n b nt (fun t ->
        let cur = B.load b cell z in
        B.store b cell z (B.min_ b cur (B.load b per t)));
    let r = B.load b cell z in
    B.free b cell;
    B.free b per;
    r
  | Raja_ | RajaMpi ->
    let red = Raja.reduce_min b in
    Raja.forall_reduce b ~lo:(B.i64 b 0) ~hi (fun ~i ~tid ->
        Raja.contribute b red ~tid (body i));
    Raja.get b red

(* ---- the mesh kernel ---- *)

type bufs = {
  x : h; y : h; z : h;
  xd : h; yd : h; zd : h;
  e : h;
  nodelist : Var.t;  (** Ptr Int, 8 per element *)
  mass : h;
  nx : Var.t; ny : Var.t; nzl : Var.t;  (** local element dims *)
  nn : Var.t;  (** local node count *)
  ne : Var.t;  (** local element count *)
}

(* [loss = false] emits the "steps" variant used by the binomial
   checkpointed-adjoint driver: the same timestep loop, but no loss
   reduction — the function returns the final time step instead, so a
   segment's gradient can seed the adjoint of the loop-carried dt at its
   upper boundary (via d_ret) and read the adjoint at its lower boundary
   (via d_args, dt0 being an active scalar argument). *)
let emit_body ?(loss = true) flavor b (m : bufs) ~niter ~dt0 =
  let f = B.f64 b in
  let i0 = B.i64 b 0 in
  let gamma = f 1.4 and qq = f 2.0 and hgc = f 0.02 and scale = f 0.25 in
  (* force accumulators, allocated per flavor style *)
  let mk_nodal () =
    if julia flavor then Jla (Jl.zeros b m.nn) else Raw (B.alloc b Ty.Float m.nn)
  in
  let fx = mk_nodal () and fy = mk_nodal () and fz = mk_nodal () in
  let dtcell = B.alloc b Ty.Float (B.i64 b 1) in
  B.store b dtcell i0 dt0;
  (* plane size for ghost exchange *)
  let np =
    B.mul b
      (B.add b m.nx (B.i64 b 1))
      (B.add b m.ny (B.i64 b 1))
  in
  let np3 = B.mul b np (B.i64 b 3) in
  let rank = B.call b ~ret:Ty.Int "mpi.rank" [] in
  let size = B.call b ~ret:Ty.Int "mpi.size" [] in
  let has_lo = B.gt b rank i0 in
  let has_hi = B.lt b rank (B.sub b size (B.i64 b 1)) in
  let hi_plane_base =
    (* first node index of the k = nzl plane *)
    B.mul b m.nzl np
  in
  B.for_n b niter (fun it ->
      (* checkpoint at the top of every timestep: the snapshot walk
         starts from the program arguments, extended with loop-carried
         state that is not argument-reachable (the dt cell and the raw
         force accumulators) *)
      let extras =
        dtcell
        :: List.filter_map
             (function Raw p -> Some p | Jla _ -> None)
             [ fx; fy; fz ]
      in
      ignore (B.call b ~ret:Ty.Unit "parad.checkpoint" (it :: extras));
      let dt = B.load b dtcell i0 in
      (* 1. zero forces *)
      pfor flavor b ~hi:m.nn (fun n ->
          st b fx n (f 0.0);
          st b fy n (f 0.0);
          st b fz n (f 0.0));
      (* 2. element force calculation: gather, EOS, scatter *)
      pfor flavor b ~hi:m.ne (fun k ->
          let k8 = B.mul b k (B.i64 b 8) in
          let node j = B.load b m.nodelist (B.add b k8 (B.i64 b j)) in
          let nodes = Array.init 8 node in
          let gx = Array.map (fun n -> ld b m.x n) nodes in
          let gy = Array.map (fun n -> ld b m.y n) nodes in
          let gz = Array.map (fun n -> ld b m.z n) nodes in
          let gxd = Array.map (fun n -> ld b m.xd n) nodes in
          let gyd = Array.map (fun n -> ld b m.yd n) nodes in
          let gzd = Array.map (fun n -> ld b m.zd n) nodes in
          let mean8 g =
            let s =
              Array.fold_left (fun acc v -> B.add b acc v) (f 0.0) g
            in
            B.mul b s (f 0.125)
          in
          let cx = mean8 gx and cy = mean8 gy and cz = mean8 gz in
          let mxd = mean8 gxd and myd = mean8 gyd and mzd = mean8 gzd in
          (* volume: corner triple product of edges 0->1, 0->3, 0->4 *)
          let ax = B.sub b gx.(1) gx.(0)
          and ay = B.sub b gy.(1) gy.(0)
          and az = B.sub b gz.(1) gz.(0) in
          let bx = B.sub b gx.(3) gx.(0)
          and by = B.sub b gy.(3) gy.(0)
          and bz = B.sub b gz.(3) gz.(0) in
          let cx' = B.sub b gx.(4) gx.(0)
          and cy' = B.sub b gy.(4) gy.(0)
          and cz' = B.sub b gz.(4) gz.(0) in
          let det =
            B.add b
              (B.mul b ax (B.sub b (B.mul b by cz') (B.mul b bz cy')))
              (B.add b
                 (B.mul b ay (B.sub b (B.mul b bz cx') (B.mul b bx cz')))
                 (B.mul b az (B.sub b (B.mul b bx cy') (B.mul b by cx'))))
          in
          let vol = B.max_ b det (f 1e-3) in
          (* pressure (ideal gas) and artificial viscosity *)
          let ek = ld b m.e k in
          let p = B.div b (B.mul b (B.sub b gamma (f 1.0)) ek) vol in
          (* velocity divergence surrogate *)
          let divv = ref (f 0.0) in
          for j = 0 to 7 do
            let t =
              B.add b
                (B.mul b gxd.(j) (B.sub b gx.(j) cx))
                (B.add b
                   (B.mul b gyd.(j) (B.sub b gy.(j) cy))
                   (B.mul b gzd.(j) (B.sub b gz.(j) cz)))
            in
            divv := B.add b !divv t
          done;
          let divv = B.div b !divv vol in
          let neg = B.lt b divv (f 0.0) in
          let qv =
            B.select b neg (B.mul b qq (B.mul b divv divv)) (f 0.0)
          in
          let pq = B.add b p qv in
          (* scatter stress + hourglass forces *)
          for j = 0 to 7 do
            let n = nodes.(j) in
            let fxv =
              B.sub b
                (B.mul b (B.neg b pq) (B.mul b scale (B.sub b gx.(j) cx)))
                (B.mul b hgc (B.sub b gxd.(j) mxd))
            in
            let fyv =
              B.sub b
                (B.mul b (B.neg b pq) (B.mul b scale (B.sub b gy.(j) cy)))
                (B.mul b hgc (B.sub b gyd.(j) myd))
            in
            let fzv =
              B.sub b
                (B.mul b (B.neg b pq) (B.mul b scale (B.sub b gz.(j) cz)))
                (B.mul b hgc (B.sub b gzd.(j) mzd))
            in
            scatter flavor b fx n fxv;
            scatter flavor b fy n fyv;
            scatter flavor b fz n fzv
          done);
      (* 3. ghost exchange of boundary-plane force contributions *)
      if uses_mpi flavor then begin
        let mkbuf () =
          if julia flavor then Jla (Jl.zeros b np3)
          else Raw (B.alloc b Ty.Float np3)
        in
        let pack_into buf plane_base =
          (* pack fx,fy,fz of a node plane into one buffer *)
          B.for_n b np (fun i ->
              let n = B.add b plane_base i in
              st b buf i (ld b fx n);
              st b buf (B.add b i np) (ld b fy n);
              st b buf (B.add b i (B.mul b np (B.i64 b 2))) (ld b fz n))
        in
        let unpack_add plane_base buf =
          B.for_n b np (fun i ->
              let n = B.add b plane_base i in
              let add h v =
                let cur = ld b h n in
                st b h n (B.add b cur v)
              in
              add fx (ld b buf i);
              add fy (ld b buf (B.add b i np));
              add fz (ld b buf (B.add b i (B.mul b np (B.i64 b 2)))))
        in
        let tag = B.i64 b 11 in
        (* Post-all-then-wait-all, LULESH's CommSend/CommSBN structure:
           both planes' isend/irecv are in flight before either side
           waits.  Waiting per side before posting the other would chain
           rank r's hi exchange behind rank r+1's lo exchange and
           serialise the halo into a wave down the whole communicator.
           Requests cross the conditional scopes through the [reqs]
           array: slots are lo-send, lo-recv, hi-send, hi-recv.  The
           Julia flavor takes one GC.@preserve over the whole exchange
           (as MPI.jl users write around nonblocking code) instead of a
           token per request: preserve tokens are matched symbolically
           by the reverse pass, so they cannot round-trip through
           memory the way request handles can. *)
        let lo_send = mkbuf () and lo_recv = mkbuf () in
        let hi_send = mkbuf () and hi_recv = mkbuf () in
        let bufptr = function
          | Raw p -> p
          | Jla a -> Jl.data b a
        in
        let tok =
          if julia flavor then
            Some
              (B.call b ~ret:Ty.Int "gc.preserve_begin"
                 (List.map bufptr [ lo_send; lo_recv; hi_send; hi_recv ]))
          else None
        in
        let reqs = B.alloc b Ty.Int (B.i64 b 4) in
        let slot k = B.i64 b k in
        let post plane_base side sendb recvb peer =
          pack_into sendb plane_base;
          let sp = bufptr sendb and rp = bufptr recvb in
          B.store b reqs (slot side)
            (B.call b ~ret:Ty.Int "mpi.isend" [ sp; np3; peer; tag ]);
          B.store b reqs (slot (side + 1))
            (B.call b ~ret:Ty.Int "mpi.irecv" [ rp; np3; peer; tag ])
        in
        let complete plane_base side recvb =
          ignore
            (B.call b ~ret:Ty.Unit "mpi.wait" [ B.load b reqs (slot side) ]);
          ignore
            (B.call b ~ret:Ty.Unit "mpi.wait"
               [ B.load b reqs (slot (side + 1)) ]);
          unpack_add plane_base recvb
        in
        let lo_peer = B.sub b rank (B.i64 b 1)
        and hi_peer = B.add b rank (B.i64 b 1) in
        B.when_ b has_lo (fun () -> post i0 0 lo_send lo_recv lo_peer);
        B.when_ b has_hi (fun () ->
            post hi_plane_base 2 hi_send hi_recv hi_peer);
        B.when_ b has_lo (fun () -> complete i0 0 lo_recv);
        B.when_ b has_hi (fun () -> complete hi_plane_base 2 hi_recv);
        (match tok with
        | Some t -> ignore (B.call b ~ret:Ty.Unit "gc.preserve_end" [ t ])
        | None -> ());
        B.free b reqs;
        List.iter
          (fun buf -> match buf with Raw p -> B.free b p | Jla _ -> ())
          [ lo_send; lo_recv; hi_send; hi_recv ]
      end;
      (* 4. acceleration, velocity, position integration *)
      pfor flavor b ~hi:m.nn (fun n ->
          let mss = ld b m.mass n in
          let upd pos vel fc =
            let a = B.div b (ld b fc n) mss in
            let v' = B.add b (ld b vel n) (B.mul b dt a) in
            st b vel n v';
            st b pos n (B.add b (ld b pos n) (B.mul b dt v'))
          in
          upd m.x m.xd fx;
          upd m.y m.yd fy;
          upd m.z m.zd fz);
      (* 5. energy update: p dV work *)
      pfor flavor b ~hi:m.ne (fun k ->
          let k8 = B.mul b k (B.i64 b 8) in
          let node j = B.load b m.nodelist (B.add b k8 (B.i64 b j)) in
          (* recompute divergence-ish term cheaply from node 0/6 motion *)
          let n0 = node 0 and n6 = node 6 in
          let rel =
            B.add b
              (B.mul b
                 (B.sub b (ld b m.xd n6) (ld b m.xd n0))
                 (B.sub b (ld b m.x n6) (ld b m.x n0)))
              (B.add b
                 (B.mul b
                    (B.sub b (ld b m.yd n6) (ld b m.yd n0))
                    (B.sub b (ld b m.y n6) (ld b m.y n0)))
                 (B.mul b
                    (B.sub b (ld b m.zd n6) (ld b m.zd n0))
                    (B.sub b (ld b m.z n6) (ld b m.z n0))))
          in
          let ek = ld b m.e k in
          let e' = B.sub b ek (B.mul b (B.mul b (f 0.05) dt) (B.mul b ek rel)) in
          st b m.e k (B.max_ b e' (f 1e-6)));
      (* 6. time-step constraint: Courant-style min reduction *)
      let dtmin =
        min_over flavor b ~hi:m.ne (fun k ->
            let ek = ld b m.e k in
            let ss = B.sqrt_ b (B.mul b gamma (B.max_ b ek (f 1e-6))) in
            B.div b (f 0.3) ss)
      in
      let dtnext =
        if uses_mpi flavor then begin
          let sendc = B.alloc b Ty.Float (B.i64 b 1) in
          let recvc = B.alloc b Ty.Float (B.i64 b 1) in
          B.store b sendc i0 dtmin;
          ignore
            (B.call b ~ret:Ty.Unit "mpi.allreduce_min"
               [ sendc; recvc; B.i64 b 1 ]);
          let r = B.load b recvc i0 in
          B.free b sendc;
          B.free b recvc;
          r
        end
        else dtmin
      in
      B.store b dtcell i0 (B.min_ b (f 0.05) (B.mul b (f 0.9) dtnext)));
  let total =
    if not loss then B.load b dtcell i0
    else begin
      (* loss: total internal + kinetic energy *)
      let acc = B.alloc b Ty.Float (B.i64 b 1) in
      B.store b acc i0 (f 0.0);
      B.for_n b m.ne (fun k ->
          let cur = B.load b acc i0 in
          B.store b acc i0 (B.add b cur (ld b m.e k)));
      (* nodes on a plane shared with the higher neighbour are owned by
         that neighbour — avoid double counting under MPI *)
      let owned_nn = B.select b has_hi hi_plane_base m.nn in
      B.for_n b owned_nn (fun n ->
          let mss = ld b m.mass n in
          let ke =
            B.mul b (B.mul b (f 0.5) mss)
              (B.add b
                 (B.mul b (ld b m.xd n) (ld b m.xd n))
                 (B.add b
                    (B.mul b (ld b m.yd n) (ld b m.yd n))
                    (B.mul b (ld b m.zd n) (ld b m.zd n))))
          in
          let cur = B.load b acc i0 in
          B.store b acc i0 (B.add b cur ke));
      let total =
        if uses_mpi flavor then begin
          let recvc = B.alloc b Ty.Float (B.i64 b 1) in
          ignore
            (B.call b ~ret:Ty.Unit "mpi.allreduce_sum"
               [ acc; recvc; B.i64 b 1 ]);
          let r = B.load b recvc i0 in
          B.free b recvc;
          r
        end
        else B.load b acc i0
      in
      B.free b acc;
      total
    end
  in
  (match fx with Raw p -> B.free b p | Jla _ -> ());
  (match fy with Raw p -> B.free b p | Jla _ -> ());
  (match fz with Raw p -> B.free b p | Jla _ -> ());
  B.free b dtcell;
  total

(* ---- variant construction ---- *)

let raw_float_params =
  [ "x"; "y"; "z"; "xd"; "yd"; "zd"; "e" ]

let steps_name flavor = flavor_name flavor ^ "_steps"

let build ?(steps = false) flavor prog =
  let jl = julia flavor in
  let fparams =
    List.map
      (fun n -> n, if jl then Jl.desc_ty else Ty.Ptr Ty.Float)
      raw_float_params
    @ [
        "nodelist", Ty.Ptr Ty.Int;
        "mass", (if jl then Jl.desc_ty else Ty.Ptr Ty.Float);
        "nx", Ty.Int;
        "ny", Ty.Int;
        "nzl", Ty.Int;
        "niter", Ty.Int;
        "dt0", Ty.Float;
      ]
  in
  let attrs =
    if jl then List.map (fun _ -> Func.default_attr) fparams
    else
      List.map Func.(fun _ -> noalias) raw_float_params
      @ Func.
          [
            noalias_readonly;
            noalias_readonly;
            default_attr;
            default_attr;
            default_attr;
            default_attr;
            default_attr;
          ]
  in
  let fname = if steps then steps_name flavor else flavor_name flavor in
  let b, ps = B.func prog fname ~attrs ~params:fparams ~ret:Ty.Float in
  match ps with
  | [ x; y; z; xd; yd; zd; e; nodelist; mass; nx; ny; nzl; niter; dt0 ] ->
    let wrap v = if jl then Jla (Jl.of_param b v ~len:(B.i64 b 0)) else Raw v in
    let one = B.i64 b 1 in
    let nn =
      B.mul b
        (B.mul b (B.add b nx one) (B.add b ny one))
        (B.add b nzl one)
    in
    let ne = B.mul b (B.mul b nx ny) nzl in
    let m =
      {
        x = wrap x; y = wrap y; z = wrap z;
        xd = wrap xd; yd = wrap yd; zd = wrap zd;
        e = wrap e; nodelist; mass = wrap mass;
        nx; ny; nzl; nn; ne;
      }
    in
    let total = emit_body ~loss:(not steps) flavor b m ~niter ~dt0 in
    B.return b (Some total);
    ignore (B.finish b)
  | _ -> assert false

let program flavor =
  let prog = Prog.create () in
  build flavor prog;
  Verifier.check_prog prog;
  prog

(** The loss-free "steps" variant, for the binomial segmented driver. *)
let program_steps flavor =
  let prog = Prog.create () in
  build ~steps:true flavor prog;
  Verifier.check_prog prog;
  prog

(* ---- mesh generation and harness ---- *)

open Parad_runtime
module Engine = Parad_engine.Engine

type input = {
  nx : int;
  ny : int;
  nz : int;  (** global z elements; must divide by nranks *)
  niter : int;
  dt0 : float;
  escale : float;  (** scales the initial energy field (FD probes) *)
}

type rank_mesh = {
  coords : float array array;  (** [|x; y; z|] nodal *)
  vels : float array array;  (** [|xd; yd; zd|] *)
  energy : float array;
  conn : int array;  (** nodelist, 8 per element *)
  node_mass : float array;
  nzl : int;
}

(* deterministic small perturbation from global node coordinates *)
let jiggle gi gj gk axis =
  let h = ((gi * 73856093) lxor (gj * 19349663) lxor (gk * 83492791) lxor (axis * 2654435761)) land 0xFFFF in
  (float_of_int h /. 65535.0) -. 0.5

let mesh (inp : input) ~nranks ~rank : rank_mesh =
  if inp.nz mod nranks <> 0 then
    invalid_arg "lulesh mesh: nz must be divisible by nranks";
  let nzl = inp.nz / nranks in
  let nx = inp.nx and ny = inp.ny in
  let nnx = nx + 1 and nny = ny + 1 and nnz = nzl + 1 in
  let nn = nnx * nny * nnz in
  let ne = nx * ny * nzl in
  let h = 1.0 /. float_of_int (max inp.nx inp.nz) in
  let koff = rank * nzl in
  let node i j k = (k * nny * nnx) + (j * nnx) + i in
  let coords = Array.init 3 (fun _ -> Array.make nn 0.0) in
  for k = 0 to nnz - 1 do
    for j = 0 to nny - 1 do
      for i = 0 to nnx - 1 do
        let n = node i j k in
        let gk = k + koff in
        let base = [| float_of_int i; float_of_int j; float_of_int gk |] in
        for axis = 0 to 2 do
          coords.(axis).(n) <-
            (base.(axis) +. (0.08 *. jiggle i j gk axis)) *. h
        done
      done
    done
  done;
  let conn = Array.make (ne * 8) 0 in
  let eidx = ref 0 in
  for k = 0 to nzl - 1 do
    for j = 0 to ny - 1 do
      for i = 0 to nx - 1 do
        let base = !eidx * 8 in
        conn.(base + 0) <- node i j k;
        conn.(base + 1) <- node (i + 1) j k;
        conn.(base + 2) <- node (i + 1) (j + 1) k;
        conn.(base + 3) <- node i (j + 1) k;
        conn.(base + 4) <- node i j (k + 1);
        conn.(base + 5) <- node (i + 1) j (k + 1);
        conn.(base + 6) <- node (i + 1) (j + 1) (k + 1);
        conn.(base + 7) <- node i (j + 1) (k + 1);
        incr eidx
      done
    done
  done;
  (* initial energy: ambient plus a central deposition (the sedov-like
     spike), placed by global element coordinates *)
  let energy = Array.make ne 0.0 in
  let eidx = ref 0 in
  for k = 0 to nzl - 1 do
    for j = 0 to ny - 1 do
      for i = 0 to nx - 1 do
        let gk = k + koff in
        let centerish =
          i = nx / 2 && j = ny / 2 && gk = inp.nz / 2
        in
        energy.(!eidx) <- inp.escale *. (if centerish then 3.0 else 0.2);
        incr eidx
      done
    done
  done;
  {
    coords;
    vels = Array.init 3 (fun _ -> Array.make nn 0.0);
    energy;
    conn;
    node_mass = Array.make nn 1.0;
    nzl;
  }

type run_result = {
  total_energy : float;
  makespan : float;
  stats : Stats.t;
}

let setup_args ?inject_nan flavor (inp : input) ~nranks (ctx : Interp.ctx)
    ~rank =
  let m = mesh inp ~nranks ~rank in
  (* NaN-injection hook for GradSan testing: poison one element energy on
     rank 0 before the buffers are built *)
  (match inject_nan with
  | Some i when rank = 0 && i >= 0 && i < Array.length m.energy ->
    m.energy.(i) <- Float.nan
  | _ -> ());
  let jl = julia flavor in
  let pack data =
    let d = Exec.floats ctx data in
    if jl then Exec.ptr_cell ctx d, d else d, d
  in
  let x, xb = pack m.coords.(0) in
  let y, yb = pack m.coords.(1) in
  let z, zb = pack m.coords.(2) in
  let xd, xdb = pack m.vels.(0) in
  let yd, ydb = pack m.vels.(1) in
  let zd, zdb = pack m.vels.(2) in
  let e, eb = pack m.energy in
  let nodelist = Exec.ints ctx m.conn in
  let mass, _ = pack m.node_mass in
  ( [
      x; y; z; xd; yd; zd; e; nodelist; mass;
      Value.VInt inp.nx; Value.VInt inp.ny; Value.VInt m.nzl;
      Value.VInt inp.niter; Value.VFloat inp.dt0;
    ],
    [ xb; yb; zb; xdb; ydb; zdb; eb ],
    m )

(** Run a variant; [nranks] > 1 requires an MPI-using flavor. [faults]
    injects a deterministic communication-fault plan; [mpi_ref] captures
    the MPI state for post-run audit (even on deadlock). *)
let run ?(nthreads = 1) ?(nranks = 1) ?(pre = []) ?faults ?mpi_ref ?san
    ?inject_nan ?(engine = Engine.Interp) flavor (inp : input) : run_result =
  let cfg = { Interp.default_config with nthreads } in
  let prog = program flavor in
  let prog =
    if pre = [] then prog
    else Parad_opt.Pipeline.run prog pre
  in
  let res =
    Exec.run_spmd ~cfg ?faults ?mpi_ref ?san
      ~call:(Engine.call_fn (Engine.prepare prog) engine) prog ~nranks
      ~fname:(flavor_name flavor)
      ~setup:(fun ctx ~rank ->
        let args, _, _ = setup_args ?inject_nan flavor inp ~nranks ctx ~rank in
        args)
  in
  {
    total_energy = Value.to_float res.Exec.values.(0);
    makespan = res.Exec.makespan;
    stats = res.Exec.stats;
  }

type grad_result = {
  g_total : float;
  d_coords : float array array;  (** per rank: d x (rank-concatenated) *)
  d_energy : float array array;  (** per rank *)
  g_makespan : float;
  g_stats : Stats.t;
}

(* ---- compiled plans (ISSUE 7) ----

   The full pipeline — parse-free IR build, activity/locality analyses,
   reverse generation, post-AD optimization — runs once per (flavor,
   options) pair; executing a gradient against a [compiled] plan is then
   pure interpretation. The gradient service caches these, so plans must
   be reusable: nothing below may mutate them per request (programs are
   immutable after the pipeline; all run state lives in the
   interpreter). *)

type compiled = {
  c_flavor : flavor;
  c_opts : Parad_core.Plan.options;
  c_prog : Prog.t;  (** primal, after any [pre] pipeline *)
  c_dprog : Prog.t;  (** reverse-augmented loss-carrying program *)
  c_dname : string;  (** entry of the reverse program *)
  c_steps : (Prog.t * Prog.t * string) option;
      (** steps-variant primal, its reverse, and the reverse entry —
          present when compiled with [~steps:true] (binomial driver) *)
  c_eng : Engine.prepared;
      (** lowered form of [c_dprog] for the execution engine — function
          bodies are lowered lazily on first engine-path execution, so a
          warm plan ships its lowered program with it *)
  c_steps_eng : (Engine.prepared * Engine.prepared) option;
      (** lowered steps-variant primal and reverse, mirroring [c_steps] *)
}

(** Compile [flavor] once for repeated gradient execution. [steps] also
    compiles the parameterized [program_steps] variant and its reverse,
    which {!gradient_binomial} needs. *)
let compile ?(opts = Parad_core.Plan.default_options) ?(post_opt = true)
    ?(pre = []) ?(steps = false) flavor : compiled =
  let post p =
    if post_opt then Parad_opt.Pipeline.run p Parad_opt.Pipeline.post_ad
    else p
  in
  let prog = program flavor in
  let prog = if pre = [] then prog else Parad_opt.Pipeline.run prog pre in
  let dprog, dname =
    Parad_core.Reverse.gradient ~opts prog (flavor_name flavor)
  in
  let c_steps =
    if not steps then None
    else begin
      let sprog = program_steps flavor in
      let sdprog, sdname =
        Parad_core.Reverse.gradient ~opts sprog (steps_name flavor)
      in
      Some (sprog, post sdprog, sdname)
    end
  in
  let c_dprog = post dprog in
  {
    c_flavor = flavor;
    c_opts = opts;
    c_prog = prog;
    c_dprog;
    c_dname = dname;
    c_steps;
    c_eng = Engine.prepare c_dprog;
    c_steps_eng =
      Option.map
        (fun (sp, sdp, _) -> Engine.prepare sp, Engine.prepare sdp)
        c_steps;
  }

let config_of ?cost ~nthreads (c : compiled) =
  {
    Interp.default_config with
    nthreads;
    cost = Option.value cost ~default:Interp.default_config.Interp.cost;
    coalesce = c.c_opts.Parad_core.Plan.coalesce_comm;
  }

(* Shadow-argument setup shared by every monolithic reverse sweep: seven
   zero shadow buffers (coords, velocities, energy), the nodelist and
   mass shadows, the loss seed on rank 0, and the scalar-adjoint
   spill cell for dt0. *)
let grad_setup ?inject_nan ?(d_ret = 1.0) flavor (inp : input) ~nranks
    ~shadows ctx ~rank =
  let args, bufs, m = setup_args ?inject_nan flavor inp ~nranks ctx ~rank in
  ignore bufs;
  let jl = julia flavor in
  let nn = Array.length m.node_mass in
  let ne = Array.length m.energy in
  let mk len =
    let d = Exec.floats ctx (Array.make len 0.0) in
    if jl then Exec.ptr_cell ctx d, d else d, d
  in
  let svals = Array.init 7 (fun i -> mk (if i < 6 then nn else ne)) in
  (* shadow of nodelist (Ptr Int) and mass *)
  let d_nl = Exec.ints ctx (Array.make (ne * 8) 0) in
  let d_mass, _ = mk nn in
  shadows.(rank) <- Array.map snd svals;
  (* dt0 is an active scalar argument: its adjoint lands in d_args *)
  let d_args = Exec.zeros ctx 1 in
  args
  @ Array.to_list (Array.map fst svals)
  @ [ d_nl; d_mass; Value.VFloat (if rank = 0 then d_ret else 0.0); d_args ]

let pack_grad ~nranks ~shadows ~values ~makespan ~stats =
  {
    g_total = Value.to_float values.(0);
    d_coords = Array.init nranks (fun r -> Exec.to_floats shadows.(r).(0));
    d_energy = Array.init nranks (fun r -> Exec.to_floats shadows.(r).(6));
    g_makespan = makespan;
    g_stats = stats;
  }

(** Execute one gradient request against a cached plan. Pure
    interpretation — no pipeline work — so repeated calls with equal
    inputs are bit-identical to each other and to a cold
    {!gradient}. *)
let gradient_compiled ?cost ?(nthreads = 1) ?(nranks = 1) ?faults ?mpi_ref
    ?san ?inject_nan ?deadline ?d_ret ?(engine = Engine.Interp) (c : compiled)
    (inp : input) : grad_result =
  let cfg = config_of ?cost ~nthreads c in
  let shadows = Array.make nranks [||] in
  let res =
    Exec.run_spmd ~cfg ?faults ?mpi_ref ?san ?deadline
      ~call:(Engine.call_fn c.c_eng engine) c.c_dprog ~nranks
      ~fname:c.c_dname
      ~setup:(grad_setup ?inject_nan ?d_ret c.c_flavor inp ~nranks ~shadows)
  in
  pack_grad ~nranks ~shadows ~values:res.Exec.values
    ~makespan:res.Exec.makespan ~stats:res.Exec.stats

(* ---- batched multi-seed adjoints (ISSUE 10) ----

   A plan compiled with [opts.seeds = k > 1] emits k-stride adjoint
   planes: one forward/taping pass and one reverse sweep propagate all k
   return seeds, sharing the tape, the cache stream, and every primal
   re-evaluation across lanes. *)

let grad_setup_batched flavor (inp : input) ~seeds ~d_rets ~shadows ctx ~rank
    =
  let args, bufs, m = setup_args flavor inp ~nranks:1 ctx ~rank in
  ignore bufs;
  let jl = julia flavor in
  let nn = Array.length m.node_mass in
  let ne = Array.length m.energy in
  let mk len =
    let d = Exec.floats ctx (Array.make len 0.0) in
    if jl then Exec.ptr_cell ctx d, d else d, d
  in
  let svals =
    Array.init 7 (fun i -> mk ((if i < 6 then nn else ne) * seeds))
  in
  let d_nl = Exec.ints ctx (Array.make (ne * 8) 0) in
  let d_mass, _ = mk (nn * seeds) in
  shadows.(rank) <- Array.map snd svals;
  (* d_ret is a k-cell seed buffer under batched lanes (k > 1); a 1-lane
     plan keeps the classic scalar-seed convention *)
  let d_ret =
    if seeds = 1 then Value.VFloat d_rets.(0) else Exec.floats ctx d_rets
  in
  let d_args = Exec.zeros ctx seeds in
  args
  @ Array.to_list (Array.map fst svals)
  @ [ d_nl; d_mass; d_ret; d_args ]

(** Run one batched gradient against a plan compiled with
    [opts.seeds = k > 1]: [d_rets.(l)] seeds lane [l]'s return adjoint,
    and the result array holds lane [l]'s gradient at index [l] — each
    column bit-identical to a standalone single-seed run with
    [~d_ret:d_rets.(l)]. Shared-memory flavors only (single rank): the
    MPI adjoint runtime exchanges single-stride planes, so batched MPI
    plans are rejected at compile time. *)
let gradient_batched ?cost ?(nthreads = 1) ?faults ?san ?deadline
    ?(engine = Engine.Interp) (c : compiled) ~d_rets (inp : input) :
    grad_result array =
  let seeds = c.c_opts.Parad_core.Plan.seeds in
  if Array.length d_rets <> seeds then
    invalid_arg
      (Printf.sprintf "gradient_batched: %d seed values for a %d-lane plan"
         (Array.length d_rets) seeds);
  let cfg = config_of ?cost ~nthreads c in
  let shadows = Array.make 1 [||] in
  let res =
    Exec.run_spmd ~cfg ?faults ?san ?deadline
      ~call:(Engine.call_fn c.c_eng engine) c.c_dprog ~nranks:1
      ~fname:c.c_dname
      ~setup:(grad_setup_batched c.c_flavor inp ~seeds ~d_rets ~shadows)
  in
  let coords = Exec.to_floats shadows.(0).(0) in
  let energy = Exec.to_floats shadows.(0).(6) in
  let col plane lane =
    let n = Array.length plane / seeds in
    Array.init n (fun i -> plane.((i * seeds) + lane))
  in
  Array.init seeds (fun lane ->
      {
        g_total = Value.to_float res.Exec.values.(0);
        d_coords = [| col coords lane |];
        d_energy = [| col energy lane |];
        g_makespan = res.Exec.makespan;
        g_stats = res.Exec.stats;
      })

(** Gradient of the returned total energy w.r.t. initial coordinates and
    element energies (seeded on rank 0's return, as the loss is
    all-reduced and identical on every rank). One-shot: compiles and
    executes. *)
let gradient ?cost ?(nthreads = 1) ?(nranks = 1)
    ?(opts = Parad_core.Plan.default_options) ?(post_opt = true) ?(pre = [])
    ?faults ?mpi_ref ?san ?inject_nan ?deadline ?engine flavor (inp : input) :
    grad_result =
  gradient_compiled ?cost ~nthreads ~nranks ?faults ?mpi_ref ?san ?inject_nan
    ?deadline ?engine
    (compile ~opts ~post_opt ~pre flavor)
    inp

(* ---- supervised (checkpoint/restart) harnesses ---- *)

(** Like {!run}, but under {!Exec.run_spmd_recoverable}: ranks checkpoint
    at each timestep and a killed rank triggers restore-and-replay
    instead of ending the run. *)
let run_recoverable ?(nthreads = 1) ?(nranks = 1) ?(pre = []) ?faults
    ?mpi_ref ?san ?max_restarts ?policy ?(engine = Engine.Interp) flavor
    (inp : input) : run_result * Exec.recovery =
  let cfg = { Interp.default_config with nthreads } in
  let prog = program flavor in
  let prog = if pre = [] then prog else Parad_opt.Pipeline.run prog pre in
  let res, recov =
    Exec.run_spmd_recoverable ~cfg ?faults ?mpi_ref ?san ?max_restarts ?policy
      ~call:(Engine.call_fn (Engine.prepare prog) engine) prog ~nranks
      ~fname:(flavor_name flavor)
      ~setup:(fun ctx ~rank ->
        let args, _, _ = setup_args flavor inp ~nranks ctx ~rank in
        args)
  in
  ( {
      total_energy = Value.to_float res.Exec.values.(0);
      makespan = res.Exec.makespan;
      stats = res.Exec.stats;
    },
    recov )

(** {!gradient_recoverable} against a cached plan. *)
let gradient_recoverable_compiled ?(nthreads = 1) ?(nranks = 1) ?faults
    ?mpi_ref ?san ?max_restarts ?policy ?deadline ?(engine = Engine.Interp)
    (c : compiled) (inp : input) : grad_result * Exec.recovery =
  let cfg = config_of ~nthreads c in
  let shadows = Array.make nranks [||] in
  let res, recov =
    Exec.run_spmd_recoverable ~cfg ?faults ?mpi_ref ?san ?max_restarts ?policy
      ?deadline ~call:(Engine.call_fn c.c_eng engine) c.c_dprog ~nranks
      ~fname:c.c_dname
      ~setup:(grad_setup c.c_flavor inp ~nranks ~shadows)
  in
  ( pack_grad ~nranks ~shadows ~values:res.Exec.values
      ~makespan:res.Exec.makespan ~stats:res.Exec.stats,
    recov )

(** Like {!gradient}, but supervised: the gradient's forward sweep
    checkpoints primal and shadow state, so a kill-and-recover run
    resumes the derivative computation and must reproduce the faultless
    gradient bit-for-bit. *)
let gradient_recoverable ?(nthreads = 1) ?(nranks = 1)
    ?(opts = Parad_core.Plan.default_options) ?(post_opt = true) ?(pre = [])
    ?faults ?mpi_ref ?san ?max_restarts ?policy ?deadline ?engine flavor
    (inp : input) : grad_result * Exec.recovery =
  gradient_recoverable_compiled ~nthreads ~nranks ?faults ?mpi_ref ?san
    ?max_restarts ?policy ?deadline ?engine
    (compile ~opts ~post_opt ~pre flavor)
    inp

(* ---- binomial (revolve) checkpointed adjoint driver ---- *)

(* Adjoint state carried across a segment boundary: per rank, the
   adjoints of the seven loop-carried float arrays, of the node masses,
   and of the loop-carried time step (the boundary dt, seeded into the
   preceding segment's d_ret). *)
type seg_adj = {
  ds : float array array array;  (** rank -> [|dx;dy;dz;dxd;dyd;dzd;de|] *)
  dmass : float array array;  (** rank -> nodal mass adjoints *)
  ddt : float array;  (** rank -> adjoint of the boundary time step *)
}

type binom_result = {
  b_grad : grad_result;  (** aggregate gradient result over all sweeps *)
  b_budget : int;
  b_sweeps : int;  (** worst-case repetition count of the schedule *)
  b_segments : int;  (** single-step gradient segments executed *)
  b_advances : int;  (** primal re-advance steps executed *)
  b_degraded : int;
      (** snapshot fetches that found their target missing/corrupt and
          degraded to recomputing from an older checkpoint *)
  b_store : Checkpoint.store;
}

(** Gradient of the LULESH loss via revolve-style binomial checkpointing
    of the outer timestep loop (ROADMAP item 5): at most [budget]
    loop-state snapshots live at once in the tiered store, each reverse
    segment re-advances the primal from the nearest valid snapshot, and
    the per-step reverse sweeps are exactly the per-iteration slices of
    the monolithic sweep — so the result is bit-identical to {!gradient}
    (the store-all baseline) while the AD cache peak stays that of a
    single timestep. Snapshots are fetched through the store's checksums:
    a corrupted or evicted snapshot degrades the fetch to an older valid
    one (re-advancing further) instead of aborting. [faults] supervises
    every inner simulator run with {!Exec.run_spmd_recoverable}, fired
    kills being consumed across runs; [on_snapshot] is a fault-injection
    hook invoked after each driver snapshot (chaos soak corrupts there). *)
let gradient_binomial ?(nthreads = 1) ?(nranks = 1)
    ?(opts = Parad_core.Plan.default_options) ?(post_opt = true) ?faults
    ?max_restarts ?(tiers = 2)
    ?(on_snapshot : (step:int -> store:Checkpoint.store -> unit) option)
    ?compiled ?namespace ?deadline ?(engine = Engine.Interp) ~budget flavor
    (inp : input) : binom_result =
  if budget < 1 then invalid_arg "gradient_binomial: budget must be >= 1";
  let n = inp.niter in
  if n < 1 then invalid_arg "gradient_binomial: niter must be >= 1";
  let cc =
    match compiled with
    | Some c ->
      if c.c_flavor <> flavor then
        invalid_arg "gradient_binomial: compiled plan is for another flavor";
      if c.c_steps = None then
        invalid_arg
          "gradient_binomial: compiled plan lacks the steps variant (use \
           compile ~steps:true)";
      c
    | None -> compile ~opts ~post_opt ~steps:true flavor
  in
  let cfg = config_of ~nthreads cc in
  let c = cfg.Interp.cost in
  let policy = { Checkpoint.hot_budget = Some budget; tiers } in
  let store = Checkpoint.create_store ~policy ?namespace ~nranks () in
  let dprog_full, dname_full = cc.c_dprog, cc.c_dname in
  let prog_steps, dprog_steps, dname_steps =
    match cc.c_steps with Some s -> s | None -> assert false
  in
  let eng_full = cc.c_eng in
  let eng_steps_p, eng_steps_d =
    match cc.c_steps_eng with Some e -> e | None -> assert false
  in
  let jl = julia flavor in
  let meshes = Array.init nranks (fun rank -> mesh inp ~nranks ~rank) in
  let nn = Array.length meshes.(0).node_mass in
  let ne = Array.length meshes.(0).energy in
  let state_cells = (6 * nn) + ne + 1 in
  let initial_state rank =
    let m = meshes.(rank) in
    Array.map Array.copy
      [|
        m.coords.(0); m.coords.(1); m.coords.(2);
        m.vels.(0); m.vels.(1); m.vels.(2);
        m.energy;
      |]
  in
  (* aggregates across all inner simulator runs + driver snapshot traffic *)
  let agg = Stats.create () in
  let makespan = ref 0.0 in
  let plan = ref (Option.value faults ~default:Faults.none) in
  let segments = ref 0 and advances = ref 0 and degraded = ref 0 in
  let g_total = ref 0.0 in
  let run_prog prep prog fname setup =
    let call = Engine.call_fn prep engine in
    match faults with
    | None ->
      let res =
        Exec.run_spmd ~cfg ?deadline ~call prog ~nranks ~fname ~setup
      in
      Stats.merge ~into:agg res.Exec.stats;
      makespan := !makespan +. res.Exec.makespan;
      res.Exec.values
    | Some _ ->
      let res, recov =
        Exec.run_spmd_recoverable ~cfg ~faults:!plan ?max_restarts ~policy
          ?deadline ~call prog ~nranks ~fname ~setup
      in
      List.iter
        (fun (fn : Mpi_state.failure_notice) ->
          plan := Faults.consume_kill !plan ~rank:fn.Mpi_state.fn_failed)
        recov.Exec.r_failures;
      Stats.merge ~into:agg res.Exec.stats;
      makespan := !makespan +. res.Exec.makespan;
      res.Exec.values
  in
  let pack ctx data =
    let d = Exec.floats ctx data in
    if jl then Exec.ptr_cell ctx d, d else d, d
  in
  (* primal/augmented argument list from explicit loop state *)
  let state_args ctx ~rank ~state ~dt ~nsteps =
    let m = meshes.(rank) in
    let p = Array.map (fun a -> pack ctx a) state in
    let nodelist = Exec.ints ctx m.conn in
    let mass, _ = pack ctx m.node_mass in
    ( Array.to_list (Array.map fst p)
      @ [
          nodelist; mass;
          Value.VInt inp.nx; Value.VInt inp.ny; Value.VInt m.nzl;
          Value.VInt nsteps; Value.VFloat dt;
        ],
      Array.map snd p )
  in
  (* driver snapshot traffic: charged like the checkpoint intrinsic *)
  let put_state ~step state dts =
    for rank = 0 to nranks - 1 do
      let pi =
        Checkpoint.put_floats store ~rank ~id:step ~dt:dts.(rank) state.(rank)
      in
      agg.snap_count <- agg.snap_count + 1;
      agg.snap_bytes <- agg.snap_bytes + pi.Checkpoint.p_bytes;
      agg.snap_evictions <- agg.snap_evictions + pi.Checkpoint.p_evictions;
      makespan :=
        !makespan +. c.Cost_model.ckpt_base
        +. (c.Cost_model.ckpt_per_cell *. float_of_int state_cells);
      if pi.Checkpoint.p_demoted_cells > 0 then
        makespan :=
          !makespan +. c.Cost_model.snap_disk_base
          +. (c.Cost_model.snap_disk_per_cell
             *. float_of_int pi.Checkpoint.p_demoted_cells)
    done;
    match on_snapshot with
    | Some hook -> hook ~step ~store
    | None -> ()
  in
  let all_valid id =
    let ok = ref true in
    for r = 0 to nranks - 1 do
      if not (Checkpoint.valid store ~rank:r ~id) then ok := false
    done;
    !ok
  in
  let exists_any id =
    let r = ref false in
    for rank = 0 to nranks - 1 do
      match Checkpoint.snapshot_tier store ~rank ~id with
      | Some _ -> r := true
      | None -> ()
    done;
    !r
  in
  (* run the primal forward [target - from] steps from explicit state *)
  let advance ~state ~dts ~from ~target =
    if target = from then state, dts
    else begin
      advances := !advances + (target - from);
      let out = Array.make nranks [||] in
      let values =
        run_prog eng_steps_p prog_steps (steps_name flavor) (fun ctx ~rank ->
            let args, bufs =
              state_args ctx ~rank ~state:state.(rank) ~dt:dts.(rank)
                ~nsteps:(target - from)
            in
            out.(rank) <- bufs;
            args)
      in
      ( Array.init nranks (fun r -> Array.map Exec.to_floats out.(r)),
        Array.init nranks (fun r -> Value.to_float values.(r)) )
    end
  in
  (* loop state at [step]: fetch the nearest valid snapshot at or below
     it (integrity-checked; invalid ones are skipped and counted as
     degradations) and re-advance the primal the rest of the way.
     Falls back to the deterministic initial state when nothing valid
     survives. *)
  let materialize step =
    let rec nearest id =
      if id < 0 then None
      else if all_valid id then Some id
      else nearest (id - 1)
    in
    let base, state, dts =
      match nearest step with
      | Some id ->
        for id' = id + 1 to step do
          if exists_any id' then incr degraded
        done;
        let dts = Array.make nranks 0.0 in
        let state =
          Array.init nranks (fun r ->
              match Checkpoint.get_floats store ~rank:r ~id with
              | Some (dt, arrays, tier) ->
                agg.snap_restores <- agg.snap_restores + 1;
                makespan :=
                  !makespan +. c.Cost_model.ckpt_base
                  +. (c.Cost_model.ckpt_per_cell *. float_of_int state_cells);
                (match tier with
                | Checkpoint.Disk ->
                  makespan :=
                    !makespan +. c.Cost_model.snap_disk_base
                    +. (c.Cost_model.snap_disk_per_cell
                       *. float_of_int state_cells)
                | Checkpoint.Hot -> ());
                dts.(r) <- dt;
                arrays
              | None -> assert false)
        in
        id, state, dts
      | None ->
        if step > 0 || exists_any 0 then incr degraded;
        0, Array.init nranks initial_state, Array.make nranks inp.dt0
    in
    advance ~state ~dts ~from:base ~target:step
  in
  (* reverse one timestep [step, step+1): gradient of the steps variant,
     seeded with the succeeding segment's adjoints — or of the full
     (loss-carrying) variant for the last step, seeded by the loss *)
  let seg_grad ~state ~dts ~step (d : seg_adj option) : seg_adj =
    incr segments;
    let final = step = n - 1 in
    let prep, prog, fname =
      if final then eng_full, dprog_full, dname_full
      else eng_steps_d, dprog_steps, dname_steps
    in
    let sh = Array.make nranks [||] in
    let dmass_b = Array.make nranks Value.VUnit in
    let dargs_b = Array.make nranks Value.VUnit in
    let values =
      run_prog prep prog fname (fun ctx ~rank ->
          let args, _ =
            state_args ctx ~rank ~state:state.(rank) ~dt:dts.(rank) ~nsteps:1
          in
          let seed i len =
            match d with
            | Some d -> Exec.floats ctx d.ds.(rank).(i)
            | None -> ignore i; Exec.zeros ctx len
          in
          let sv =
            Array.init 7 (fun i ->
                let dbuf = seed i (if i < 6 then nn else ne) in
                if jl then Exec.ptr_cell ctx dbuf, dbuf else dbuf, dbuf)
          in
          let d_nl = Exec.ints ctx (Array.make (ne * 8) 0) in
          let dmass =
            match d with
            | Some d -> Exec.floats ctx d.dmass.(rank)
            | None -> Exec.zeros ctx nn
          in
          let dmass_arg = if jl then Exec.ptr_cell ctx dmass else dmass in
          let d_ret =
            match d with
            | Some d -> d.ddt.(rank)
            | None -> if rank = 0 then 1.0 else 0.0
          in
          let d_args = Exec.zeros ctx 1 in
          sh.(rank) <- Array.map snd sv;
          dmass_b.(rank) <- dmass;
          dargs_b.(rank) <- d_args;
          args
          @ Array.to_list (Array.map fst sv)
          @ [ d_nl; dmass_arg; Value.VFloat d_ret; d_args ])
    in
    if final then g_total := Value.to_float values.(0);
    {
      ds = Array.init nranks (fun r -> Array.map Exec.to_floats sh.(r));
      dmass = Array.init nranks (fun r -> Exec.to_floats dmass_b.(r));
      ddt = Array.init nranks (fun r -> (Exec.to_floats dargs_b.(r)).(0));
    }
  in
  (* the revolve recursion: reverse steps [a, b) with [free] snapshot
     slots usable strictly inside the range (the snapshot at [a] is
     already placed). free = 0 peels one step at a time, re-advancing
     from [a] — the quadratic fallback the binomial split avoids. *)
  let rec rev a b free d =
    if b - a = 1 then begin
      let state, dts = materialize a in
      seg_grad ~state ~dts ~step:a d
    end
    else if free >= 1 then begin
      let adv = Parad_core.Plan.Binomial.advance ~budget:free ~steps:(b - a) in
      let mid = a + adv in
      let state, dts = materialize mid in
      put_state ~step:mid state dts;
      let d' = rev mid b (free - 1) d in
      Checkpoint.release store ~id:mid;
      rev a mid free (Some d')
    end
    else begin
      let state, dts = materialize (b - 1) in
      let d' = seg_grad ~state ~dts ~step:(b - 1) d in
      rev a (b - 1) 0 (Some d')
    end
  in
  (* the store's disk tier spills under a per-run namespace; clean it up
     whether the reversal completes or aborts (deadline, exhausted
     restarts) so a long-lived server leaks no snapshot files *)
  let d =
    Fun.protect
      ~finally:(fun () -> Checkpoint.dispose store)
      (fun () ->
        put_state ~step:0
          (Array.init nranks initial_state)
          (Array.make nranks inp.dt0);
        rev 0 n (budget - 1) None)
  in
  {
    b_grad =
      {
        g_total = !g_total;
        d_coords = Array.init nranks (fun r -> d.ds.(r).(0));
        d_energy = Array.init nranks (fun r -> d.ds.(r).(6));
        g_makespan = !makespan;
        g_stats = agg;
      };
    b_budget = budget;
    b_sweeps = Parad_core.Plan.Binomial.sweeps ~budget ~steps:n;
    b_segments = !segments;
    b_advances = !advances;
    b_degraded = !degraded;
    b_store = store;
  }
