(** miniBUDE proxy: the compute-bound molecular-docking kernel of the
    paper's second benchmark (BUDE's pose-energy evaluation).

    For every candidate pose (three Euler angles + translation) the
    ligand's atoms are rigidly transformed and their pairwise interaction
    energy with every protein atom is accumulated (a Lennard-Jones-style
    steric term plus a distance-capped electrostatic term, with the
    branchy cutoff logic that makes the kernel select-heavy).

    Variants (as in the paper's evaluation):
    - ["bude_seq"] — sequential C++-style baseline
    - ["bude_omp"] — OpenMP: `parallel for` over poses
    - ["bude_julia"] — Julia: task-chunked parallel for over poses, with
      descriptor-indirected GC arrays

    Inputs: ligand (4 floats per atom: x y z charge), protein (4 per
    atom), poses (6 per pose); output: energies (1 per pose). The
    gradient of interest is d(sum of energies)/d(atom data and poses). *)

open Parad_ir
module B = Builder
module Jl = Parad_julia.Julia_fe

(* array handle: raw pointer (C++) or descriptor array (Julia) *)
type h = Raw of Var.t | Jl of Jl.arr

let ld b h i = match h with Raw p -> B.load b p i | Jl a -> Jl.get b a i
let st b h i v = match h with Raw p -> B.store b p i v | Jl a -> Jl.set b a i v

type deck = {
  lig : h;  (** 4 * natlig *)
  pro : h;  (** 4 * natpro *)
  poses : h;  (** 6 * nposes *)
  energies : h;  (** nposes *)
  natlig : Var.t;
  natpro : Var.t;
}

(* energy of pose [p]: emitted once, shared by every variant *)
let emit_pose_energy b (d : deck) p =
  let f = B.f64 b in
  let i6 = B.mul b p (B.i64 b 6) in
  let pose k = ld b d.poses (B.add b i6 (B.i64 b k)) in
  let ax = pose 0 and ay = pose 1 and az = pose 2 in
  let tx = pose 3 and ty = pose 4 and tz = pose 5 in
  let sx = B.sin_ b ax and cx = B.cos_ b ax in
  let sy = B.sin_ b ay and cy = B.cos_ b ay in
  let sz = B.sin_ b az and cz = B.cos_ b az in
  (* rotation matrix R = Rz * Ry * Rx *)
  let r00 = B.mul b cz cy in
  let r01 = B.sub b (B.mul b (B.mul b cz sy) sx) (B.mul b sz cx) in
  let r02 = B.add b (B.mul b (B.mul b cz sy) cx) (B.mul b sz sx) in
  let r10 = B.mul b sz cy in
  let r11 = B.add b (B.mul b (B.mul b sz sy) sx) (B.mul b cz cx) in
  let r12 = B.sub b (B.mul b (B.mul b sz sy) cx) (B.mul b cz sx) in
  let r20 = B.neg b sy in
  let r21 = B.mul b cy sx in
  let r22 = B.mul b cy cx in
  let etot = B.alloc b Ty.Float (B.i64 b 1) in
  let z0 = B.i64 b 0 in
  B.store b etot z0 (f 0.0);
  B.for_n b d.natlig (fun l ->
      let l4 = B.mul b l (B.i64 b 4) in
      let lat k = ld b d.lig (B.add b l4 (B.i64 b k)) in
      let lx = lat 0 and ly = lat 1 and lz = lat 2 and lq = lat 3 in
      let x =
        B.add b tx
          (B.add b (B.mul b r00 lx) (B.add b (B.mul b r01 ly) (B.mul b r02 lz)))
      in
      let y =
        B.add b ty
          (B.add b (B.mul b r10 lx) (B.add b (B.mul b r11 ly) (B.mul b r12 lz)))
      in
      let z =
        B.add b tz
          (B.add b (B.mul b r20 lx) (B.add b (B.mul b r21 ly) (B.mul b r22 lz)))
      in
      B.for_n b d.natpro (fun q ->
          let q4 = B.mul b q (B.i64 b 4) in
          let pat k = ld b d.pro (B.add b q4 (B.i64 b k)) in
          let px = pat 0 and py = pat 1 and pz = pat 2 and pq = pat 3 in
          let dx = B.sub b x px
          and dy = B.sub b y py
          and dz = B.sub b z pz in
          let r2 =
            B.add b (B.mul b dx dx) (B.add b (B.mul b dy dy) (B.mul b dz dz))
          in
          let r2s = B.max_ b r2 (f 0.01) in
          let r = B.sqrt_ b r2s in
          (* steric 6-12 term *)
          let inv2 = B.div b (f 1.0) r2s in
          let inv6 = B.mul b inv2 (B.mul b inv2 inv2) in
          let e_lj =
            B.mul b (f 0.08) (B.sub b (B.mul b inv6 inv6) inv6)
          in
          (* electrostatic with linear distance cap (BUDE's elcdst) *)
          let cap = B.max_ b (f 0.0) (B.sub b (f 1.0) (B.div b r (f 4.0))) in
          let e_el = B.mul b (f 0.4) (B.mul b (B.mul b lq pq) cap) in
          (* hard cutoff select *)
          let within = B.lt b r2 (f 64.0) in
          let e = B.select b within (B.add b e_lj e_el) (f 0.0) in
          let cur = B.load b etot z0 in
          B.store b etot z0 (B.add b cur e)));
  let r = B.load b etot z0 in
  B.free b etot;
  r

(* The C++ variants receive the deck as a kernel-parameter struct (a
   table of pointers: lig, pro, poses), exactly like miniBUDE's params
   struct: the outlined OpenMP body loads the field pointers inside the
   parallel region, which is what OpenMPOpt's load hoisting (and the AD
   caching win that follows) is about. *)
let raw_params =
  [
    "deck", Ty.Ptr (Ty.Ptr Ty.Float);
    "energies", Ty.Ptr Ty.Float;
    "natlig", Ty.Int;
    "natpro", Ty.Int;
    "nposes", Ty.Int;
  ]

let raw_attrs =
  Func.[ noalias_readonly; noalias; default_attr; default_attr; default_attr ]

(* load the deck's field pointers (emitted inside the loop body, as the
   outlined closure would) *)
let deck_fields b deck energies natlig natpro =
  let fld k = B.load b deck (B.i64 b k) in
  {
    lig = Raw (fld 0);
    pro = Raw (fld 1);
    poses = Raw (fld 2);
    energies = Raw energies;
    natlig;
    natpro;
  }

(** Sequential variant. *)
let build_seq prog =
  let b, ps = B.func prog "bude_seq" ~attrs:raw_attrs ~params:raw_params ~ret:Ty.Unit in
  (match ps with
  | [ deck; energies; natlig; natpro; nposes ] ->
    B.for_n b nposes (fun p ->
        (* checkpoint per pose; all live state is argument-reachable *)
        ignore (B.call b ~ret:Ty.Unit "parad.checkpoint" [ p ]);
        let d = deck_fields b deck energies natlig natpro in
        st b d.energies p (emit_pose_energy b d p))
  | _ -> assert false);
  B.return b None;
  ignore (B.finish b)

(** OpenMP variant: worksharing over poses. *)
let build_omp prog =
  let b, ps = B.func prog "bude_omp" ~attrs:raw_attrs ~params:raw_params ~ret:Ty.Unit in
  (match ps with
  | [ deck; energies; natlig; natpro; nposes ] ->
    B.parallel_for b ~lo:(B.i64 b 0) ~hi:nposes (fun p ->
        let d = deck_fields b deck energies natlig natpro in
        st b d.energies p (emit_pose_energy b d p))
  | _ -> assert false);
  B.return b None;
  ignore (B.finish b)

(** Julia variant: a chunk worker spawned as tasks, GC arrays with
    descriptor indirection. *)
let jl_params =
  [
    "lig", Jl.desc_ty;
    "pro", Jl.desc_ty;
    "poses", Jl.desc_ty;
    "energies", Jl.desc_ty;
    "natlig", Ty.Int;
    "natpro", Ty.Int;
  ]

let build_julia prog ~ntasks =
  (* the @threads body, outlined as Julia lowers closures *)
  let b, ps =
    B.func prog "bude_chunk_jl"
      ~params:(jl_params @ [ "lo", Ty.Int; "hi", Ty.Int ])
      ~ret:Ty.Unit
  in
  (match ps with
  | [ lig; pro; poses; energies; natlig; natpro; lo; hi ] ->
    let arr v = Jl (Jl.of_param b v ~len:(B.i64 b 0)) in
    let d =
      { lig = arr lig; pro = arr pro; poses = arr poses;
        energies = arr energies; natlig; natpro }
    in
    B.for_ b ~lo ~hi (fun p -> st b d.energies p (emit_pose_energy b d p))
  | _ -> assert false);
  B.return b None;
  ignore (B.finish b);
  let b, ps =
    B.func prog "bude_julia"
      ~params:(jl_params @ [ "nposes", Ty.Int ])
      ~ret:Ty.Unit
  in
  (match ps with
  | [ lig; pro; poses; energies; natlig; natpro; nposes ] ->
    Jl.threads_for b ~worker:"bude_chunk_jl"
      ~args:[ lig; pro; poses; energies; natlig; natpro ]
      ~lo:(B.i64 b 0) ~hi:nposes ~ntasks:(B.i64 b ntasks)
  | _ -> assert false);
  B.return b None;
  ignore (B.finish b)

(** Build all variants into a fresh program. *)
let program ?(ntasks = 4) () =
  let prog = Prog.create () in
  build_seq prog;
  build_omp prog;
  build_julia prog ~ntasks;
  Verifier.check_prog prog;
  prog

(* ---- deck generation (deterministic synthetic inputs) ---- *)

type input = {
  lig_data : float array;
  pro_data : float array;
  pose_data : float array;
  nposes : int;
  natlig : int;
  natpro : int;
}

let deck ~nposes ~natlig ~natpro =
  let r = ref 123456789 in
  let rnd () =
    r := (!r * 1103515245) + 12345;
    float_of_int (abs !r mod 10000) /. 10000.0
  in
  let lig_data =
    Array.init (4 * natlig) (fun i ->
        if i mod 4 = 3 then (rnd () -. 0.5) *. 2.0 else (rnd () -. 0.5) *. 3.0)
  in
  let pro_data =
    Array.init (4 * natpro) (fun i ->
        if i mod 4 = 3 then (rnd () -. 0.5) *. 2.0 else (rnd () -. 0.5) *. 8.0)
  in
  let pose_data =
    Array.init (6 * nposes) (fun i ->
        if i mod 6 < 3 then rnd () *. 6.28 else (rnd () -. 0.5) *. 2.0)
  in
  { lig_data; pro_data; pose_data; nposes; natlig; natpro }

(* ---- harness: run and differentiate each variant ---- *)

open Parad_runtime
module Engine = Parad_engine.Engine

type variant = Seq | Omp | Julia

let variant_name = function
  | Seq -> "bude_seq"
  | Omp -> "bude_omp"
  | Julia -> "bude_julia"

type run_result = {
  energies : float array;
  makespan : float;
  stats : Stats.t;
}

(* build argument values for a variant; returns (args, energies buffer or
   its data buffer, julia data buffers for shadows if any) *)
let setup_args variant (inp : input) ctx =
  let open Value in
  match variant with
  | Seq | Omp ->
    let lig = Exec.floats ctx inp.lig_data in
    let pro = Exec.floats ctx inp.pro_data in
    let poses = Exec.floats ctx inp.pose_data in
    let energies = Exec.zeros ctx inp.nposes in
    let deck = Exec.ptr_table ctx [ lig; pro; poses ] in
    ( [ deck; energies; VInt inp.natlig; VInt inp.natpro; VInt inp.nposes ],
      [ lig; pro; poses; energies ] )
  | Julia ->
    let pack data =
      let d = Exec.floats ctx data in
      Exec.ptr_cell ctx d, d
    in
    let lig, lig_d = pack inp.lig_data in
    let pro, pro_d = pack inp.pro_data in
    let poses, poses_d = pack inp.pose_data in
    let energies, energies_d = pack (Array.make inp.nposes 0.0) in
    ( [
        lig; pro; poses; energies;
        VInt inp.natlig; VInt inp.natpro; VInt inp.nposes;
      ],
      [ lig_d; pro_d; poses_d; energies_d ] )

let run ?(nthreads = 1) ?(pre = []) ?san ?(engine = Engine.Interp) variant
    (inp : input) : run_result =
  let cfg = { Interp.default_config with nthreads } in
  let prog = program ~ntasks:nthreads () in
  let prog =
    if pre = [] then prog
    else Parad_opt.Pipeline.run prog pre
  in
  let call = Engine.call_fn (Engine.prepare prog) engine in
  let outs = ref [] in
  let res =
    Exec.run ~cfg ?san ~call prog ~fname:(variant_name variant)
      ~setup:(fun ctx ->
        let args, bufs = setup_args variant inp ctx in
        outs := bufs;
        args)
  in
  let energies =
    match List.rev !outs with e :: _ -> Exec.to_floats e | [] -> [||]
  in
  { energies; makespan = res.Exec.makespan; stats = res.Exec.stats }

type grad_result = {
  g_energies : float array;
  d_lig : float array;
  d_pro : float array;
  d_poses : float array;
  g_makespan : float;
  g_stats : Stats.t;
}

(* ---- compiled plans (ISSUE 7) — see Lulesh.compiled ---- *)

type compiled = {
  c_variant : variant;
  c_ntasks : int;  (** the task split is baked into the IR *)
  c_opts : Parad_core.Plan.options;
  c_prog : Parad_ir.Prog.t;
  c_dprog : Parad_ir.Prog.t;
  c_dname : string;
  c_eng : Engine.prepared;
      (** lowered form of [c_dprog] for the execution engine — populated
          lazily per function on first engine-path request *)
}

(** Compile [variant] once for repeated gradient execution. [ntasks] is
    part of the plan key: the Julia/OMP task decomposition is baked into
    the generated IR, so a different thread count is a different plan. *)
let compile ?(opts = Parad_core.Plan.default_options) ?(post_opt = true)
    ?(pre = []) ~ntasks variant : compiled =
  let prog = program ~ntasks () in
  let prog = if pre = [] then prog else Parad_opt.Pipeline.run prog pre in
  let dprog, dname =
    Parad_core.Reverse.gradient ~opts prog (variant_name variant)
  in
  let dprog =
    if post_opt then Parad_opt.Pipeline.run dprog Parad_opt.Pipeline.post_ad
    else dprog
  in
  { c_variant = variant; c_ntasks = ntasks; c_opts = opts; c_prog = prog;
    c_dprog = dprog; c_dname = dname; c_eng = Engine.prepare dprog }

(** Execute one gradient request against a cached plan (pure
    interpretation; bit-identical to a cold {!gradient}). *)
let gradient_compiled ?nthreads ?san ?faults ?deadline ?(ge_seed = 1.0)
    ?(engine = Engine.Interp) (c : compiled) (inp : input) : grad_result =
  let nthreads = Option.value nthreads ~default:c.c_ntasks in
  let cfg = { Interp.default_config with nthreads } in
  let variant = c.c_variant in
  let dprog, dname = c.c_dprog, c.c_dname in
  let shadows = ref [] in
  let outs = ref [] in
  let res =
    Exec.run ~cfg ?san ?faults ?deadline
      ~call:(Engine.call_fn c.c_eng engine) dprog ~fname:dname
      ~setup:(fun ctx ->
        let args, bufs = setup_args variant inp ctx in
        outs := bufs;
        (* shadows, in pointer-parameter order *)
        let shade len seed = Exec.floats ctx (Array.make len seed) in
        let gl = shade (Array.length inp.lig_data) 0.0 in
        let gp = shade (Array.length inp.pro_data) 0.0 in
        let gq = shade (Array.length inp.pose_data) 0.0 in
        let ge = shade inp.nposes ge_seed in
        shadows := [ gl; gp; gq; ge ];
        match variant with
        | Seq | Omp ->
          let d_deck = Exec.ptr_table ctx [ gl; gp; gq ] in
          args @ [ d_deck; ge ]
        | Julia ->
          let wrap v = Exec.ptr_cell ctx v in
          args @ [ wrap gl; wrap gp; wrap gq; wrap ge ])
  in
  match !shadows, List.rev !outs with
  | [ gl; gp; gq; _ ], e :: _ ->
    {
      g_energies = Exec.to_floats e;
      d_lig = Exec.to_floats gl;
      d_pro = Exec.to_floats gp;
      d_poses = Exec.to_floats gq;
      g_makespan = res.Exec.makespan;
      g_stats = res.Exec.stats;
    }
  | _ -> assert false

(** Batched multi-seed adjoints (ISSUE 10): against a plan compiled with
    [opts.seeds = k > 1], one taping pass and one reverse sweep propagate
    k energy seeds — lane [l] seeds every pose's energy adjoint with
    [ge_seeds.(l)]. Returns one {!grad_result} per lane, each column
    bit-identical to a standalone run with [~ge_seed:ge_seeds.(l)]. *)
let gradient_batched ?nthreads ?san ?faults ?deadline
    ?(engine = Engine.Interp) (c : compiled) ~ge_seeds (inp : input) :
    grad_result array =
  let seeds = c.c_opts.Parad_core.Plan.seeds in
  if Array.length ge_seeds <> seeds then
    invalid_arg
      (Printf.sprintf "gradient_batched: %d seed values for a %d-lane plan"
         (Array.length ge_seeds) seeds);
  let nthreads = Option.value nthreads ~default:c.c_ntasks in
  let cfg = { Interp.default_config with nthreads } in
  let variant = c.c_variant in
  let shadows = ref [] in
  let outs = ref [] in
  let res =
    Exec.run ~cfg ?san ?faults ?deadline
      ~call:(Engine.call_fn c.c_eng engine) c.c_dprog ~fname:c.c_dname
      ~setup:(fun ctx ->
        let args, bufs = setup_args variant inp ctx in
        outs := bufs;
        (* k-stride shadow planes: cell i, lane l at [i*k + l] *)
        let plane len = Exec.floats ctx (Array.make (len * seeds) 0.0) in
        let gl = plane (Array.length inp.lig_data) in
        let gp = plane (Array.length inp.pro_data) in
        let gq = plane (Array.length inp.pose_data) in
        let ge =
          Exec.floats ctx
            (Array.init (inp.nposes * seeds) (fun i ->
                 ge_seeds.(i mod seeds)))
        in
        shadows := [ gl; gp; gq; ge ];
        match variant with
        | Seq | Omp ->
          let d_deck = Exec.ptr_table ctx [ gl; gp; gq ] in
          args @ [ d_deck; ge ]
        | Julia ->
          let wrap v = Exec.ptr_cell ctx v in
          args @ [ wrap gl; wrap gp; wrap gq; wrap ge ])
  in
  match !shadows, List.rev !outs with
  | [ gl; gp; gq; _ ], e :: _ ->
    let energies = Exec.to_floats e in
    let pl = Exec.to_floats gl
    and pp = Exec.to_floats gp
    and pq = Exec.to_floats gq in
    let col plane lane =
      let n = Array.length plane / seeds in
      Array.init n (fun i -> plane.((i * seeds) + lane))
    in
    Array.init seeds (fun lane ->
        {
          g_energies = energies;
          d_lig = col pl lane;
          d_pro = col pp lane;
          d_poses = col pq lane;
          g_makespan = res.Exec.makespan;
          g_stats = res.Exec.stats;
        })
  | _ -> assert false

(** Reverse-mode gradient of sum(energies) w.r.t. ligand, protein and
    poses, through the chosen parallel variant. One-shot: compiles and
    executes. *)
let gradient ?(nthreads = 1) ?san ?faults
    ?(opts = Parad_core.Plan.default_options) ?(post_opt = true) ?(pre = [])
    ?deadline ?engine variant (inp : input) : grad_result =
  gradient_compiled ~nthreads ?san ?faults ?deadline ?engine
    (compile ~opts ~post_opt ~pre ~ntasks:nthreads variant)
    inp
