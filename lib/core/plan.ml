(** The cache-vs-recompute planner (paper §IV-C).

    The reverse pass needs certain primal values ("needed values"):
    operands of nonlinear instructions, loop bounds, branch conditions,
    shadow pointers, and transform-generated auxiliaries (shadow MPI
    requests, call cache-block handles, loop trip counts). For each needed
    value the planner picks an availability strategy:

    - [ADirect] — the value is an SSA register of the combined gradient
      function defined outside every loop, so it is still live when the
      reverse sweep runs; no caching at all (Enzyme's "stack variable"
      case degenerates to nothing in combined mode).
    - [AParam] — a region parameter (loop induction variable, thread id)
      reconstructed by the reversed region.
    - [ARecomp] — a short pure chain re-emitted in the reverse pass
      (recompute-instead-of-cache).
    - [ACache] — stored in an iteration/thread-indexed cache during the
      forward sweep (cases 2 and 3 of §IV-C; worksharing caches are
      indexed by iteration, fork caches by thread id, §VI-B).

    Keys identify what is needed: a primal SSA value, the shadow of a
    pointer value, or a per-occurrence auxiliary. *)

open Parad_ir

exception Unsupported of string

let unsupported fmt = Fmt.kstr (fun s -> raise (Unsupported s)) fmt

type key =
  | KVal of int  (** primal SSA value, by var id *)
  | KShadow of int  (** shadow of a pointer-typed value, by var id *)
  | KAux of int * int  (** transform auxiliary: (occurrence, slot) *)

let pp_key ppf = function
  | KVal i -> Fmt.pf ppf "val:%d" i
  | KShadow i -> Fmt.pf ppf "shadow:%d" i
  | KAux (o, s) -> Fmt.pf ppf "aux:%d.%d" o s

type avail =
  | ADirect
  | AParam
  | ACache of int * int  (** cache ordinal, idx-depth of the definition *)
  | ARecomp

type options = {
  atomic_always : bool;
      (** disable the thread-locality analysis: every parallel adjoint
          accumulation uses atomics (the legal fallback of §VI-A1) *)
  assume_private : bool;
      (** test-only inverse of [atomic_always]: pretend the thread-locality
          analysis proved every base private, so no parallel adjoint
          accumulation uses atomics. Deliberately unsound — it seeds the
          miscompilation that ParSan's RaceSan cross-validation must catch *)
  recompute_depth : int;
      (** maximum height of a recomputed chain before caching wins; 0
          caches everything (the "cache-all" ablation baseline) *)
  coalesce_comm : bool;
      (** emit batched nonblocking duals ([mpi.adj_send_post] /
          [mpi.adj_recv_post] + [mpi.adj_waitall]) for blocking adjoint
          exchanges, so the runtime can coalesce them into packed
          messages; off emits the one-blocking-dual-per-exchange form
          (the [--no-coalesce] ablation baseline) *)
  ckpt_reverse : bool;
      (** emit a [parad.checkpoint_rev] snapshot site at reverse entry
          (between the forward sweep and the reverse sweep) of combined
          gradient functions whose source already checkpoints, so a rank
          killed mid-reverse-sweep can restore there instead of replaying
          its whole forward sweep *)
  prefix : string;  (** prefix for generated function names *)
  seeds : int;
      (** adjoint batch width k: the reverse sweep propagates [k] seed
          vectors through contiguous k-stride adjoint planes (registers,
          shadow buffers, [d_ret]/[d_args]) in one pass over one tape.
          [1] emits the classic single-seed gradient; [k > 1] changes the
          gradient's calling convention — [d_ret] becomes a k-cell float
          buffer and every float shadow argument a k-stride plane *)
}

let default_options =
  {
    atomic_always = false;
    assume_private = false;
    recompute_depth = 10;
    coalesce_comm = true;
    ckpt_reverse = false;
    prefix = "";
    seeds = 1;
  }

type t = {
  fi : Finfo.t;
  split : bool;  (** callee (split) mode: no ADirect availability *)
  opts : options;
  vars : Var.t option array;  (** var id -> var *)
  plans : (key, avail) Hashtbl.t;
  heights : (key, int) Hashtbl.t;
  aux_ty : (int * int, Ty.t) Hashtbl.t;
  occ_depth : (int, int) Hashtbl.t;  (** occurrence -> idx-depth *)
  occ_sdepth : (int, int) Hashtbl.t;  (** occurrence -> scope-depth *)
  useful : (int, unit) Hashtbl.t;
      (** float var ids whose adjoint can be nonzero (see {!useful_of}) *)
  dup : (int, int) Hashtbl.t;
      (** duplicate Load var id -> leader Load var id (see {!dup_loads_of}) *)
  shared : (int, unit) Hashtbl.t;
      (** duplicate Load var ids that actually resolved to their leader's
          cache slot (the leader's plan was [ACache]) *)
  eff : (key, int) Hashtbl.t;
      (** effective variation depth of a planned key: the deepest loop
          level at which its value actually changes (see {!eff_depth}) *)
  mutable n_cached : int;
  mutable while_occs : int list;
}

(* Collect the vars of a function into an id-indexed array. *)
let vars_of (f : Func.t) =
  let vars = Array.make f.var_count None in
  let reg v = vars.(Var.id v) <- Some v in
  List.iter reg f.params;
  let rec walk instrs =
    List.iter
      (fun i ->
        List.iter reg (Instr.defs i);
        List.iter
          (fun (r : Instr.region) ->
            List.iter reg r.params;
            walk r.body)
          (Instr.regions i))
      instrs
  in
  walk f.body;
  vars

(* ---- adjoint-usefulness analysis (the pruning half of §V-E) ---- *)

(* Float var ids whose adjoint can be nonzero in some reverse sweep: the
   backward closure, along derivative-carrying operand edges, of the
   adjoint sources — stored values, atomic accumulations, the returned
   value, and float arguments of calls/spawns (their adjoints are folded
   back by the reverse halves). A float value outside this set receives
   only exact zeros in the reverse pass, so neither it nor its operands
   need to be made available: the planner skips their registration and
   the reverse pass skips their statements entirely. *)
let useful_of (f : Func.t) : (int, unit) Hashtbl.t =
  let useful = Hashtbl.create 64 in
  let changed = ref true in
  let is_f v = Ty.equal (Var.ty v) Ty.Float in
  let mark v =
    if is_f v && not (Hashtbl.mem useful (Var.id v)) then begin
      Hashtbl.replace useful (Var.id v) ();
      changed := true
    end
  in
  let mem v = Hashtbl.mem useful (Var.id v) in
  let rec walk ?if_results instrs =
    List.iter
      (fun (ins : Instr.t) ->
        (match ins with
        | Instr.Store (_, _, x) -> mark x
        | Instr.AtomicAdd (_, _, x) -> mark x
        | Instr.Return (Some v) -> mark v
        | Instr.Call (_, _, args) | Instr.Spawn (_, _, args) ->
          List.iter mark args
        | Instr.Bin (v, op, a, b) when is_f v && mem v -> (
          match op with
          | Rem -> ()
          | Add | Sub | Mul | Div | Min | Max | Pow ->
            mark a;
            mark b)
        | Instr.Un (v, op, a) when is_f v && mem v -> (
          match op with
          | Neg | Sqrt | Exp | Sin | Cos | Log | Abs -> mark a
          | Floor | ToFloat | ToInt | Not -> ())
        | Instr.Select (v, _, a, b) when is_f v && mem v ->
          mark a;
          mark b
        | Instr.Yield vs -> (
          (* a Yield at the top level of an If branch seeds the yielded
             values with the If results' adjoints *)
          match if_results with
          | Some rs ->
            List.iter2 (fun r v -> if is_f r && mem r then mark v) rs vs
          | None -> ())
        | _ -> ());
        match ins with
        | Instr.If (rs, _, t_, e_) ->
          walk ~if_results:rs t_.body;
          walk ~if_results:rs e_.body
        | _ ->
          List.iter
            (fun (r : Instr.region) -> walk r.body)
            (Instr.regions ins))
      instrs
  in
  while !changed do
    changed := false;
    walk f.body
  done;
  useful

(* Duplicate-load slot sharing. [dup] maps a Load's var id to an earlier
   Load of the same pointer and index SSA vars in the same straight-line
   segment — no intervening write, call, barrier, or region boundary, so
   both loads observe the same cell unchanged and are runtime-equal. The
   planner lets the duplicate share the leader's availability: one cache
   slot holds both (§V-E cache minimization), and the forward sweep skips
   the duplicate's redundant cache store. Unlike CSE on the primal this
   leaves the primal and the adjoint accumulation structure untouched, so
   gradients stay bit-identical. *)
let dup_loads_of (fi : Finfo.t) : (int, int) Hashtbl.t =
  let f = fi.Finfo.func in
  let dup = Hashtbl.create 32 in
  (* var id -> runtime-equal representative, grown by a local pure value
     numbering (so syntactically distinct address chains computing the
     same Gep match) and by the discovered duplicate loads themselves *)
  let canon_tbl = Hashtbl.create 64 in
  let rec canon id =
    match Hashtbl.find_opt canon_tbl id with Some j -> canon j | None -> id
  in
  (* a base that is provably a separate object: a local allocation, or a
     noalias parameter (nothing else in scope aliases it) *)
  let sep b =
    match Finfo.def_site fi b with
    | Finfo.DInstr (Instr.Alloc _, _) -> true
    | Finfo.DParam -> (
      match Func.param_attr f b with
      | Some a -> a.Func.noalias
      | None -> false)
    | _ -> false
  in
  let vn_key (ins : Instr.t) : string option =
    let id v = string_of_int (canon (Var.id v)) in
    match ins with
    | Instr.Bin (_, op, a, b) ->
      Some (Fmt.str "b%s,%s,%s" (Instr.binop_name op) (id a) (id b))
    | Instr.Cmp (_, op, a, b) ->
      Some (Fmt.str "c%s,%s,%s" (Instr.cmpop_name op) (id a) (id b))
    | Instr.Un (_, op, a) -> Some (Fmt.str "u%s,%s" (Instr.unop_name op) (id a))
    | Instr.Gep (_, p, ix) -> Some (Fmt.str "g%s,%s" (id p) (id ix))
    | Instr.Select (_, c, a, b) ->
      Some (Fmt.str "s%s,%s,%s" (id c) (id a) (id b))
    | Instr.Const (_, Instr.Cint x) -> Some (Fmt.str "ki%d" x)
    | Instr.Const (_, Instr.Cbool x) -> Some (Fmt.str "kb%b" x)
    | Instr.Const (_, Instr.Cfloat x) -> Some (Fmt.str "kf%h" x)
    | _ -> None
  in
  (* avail: (canon ptr id, canon idx id) -> (leader load var, its base) *)
  let invalidate avail (p : Var.t) =
    match Finfo.pointer_base fi p with
    | Some wb when sep wb ->
      Hashtbl.filter_map_inplace
        (fun _ ((_, eb) as entry) ->
          match eb with
          | Some eb when Var.id eb <> Var.id wb && (sep eb || sep wb) ->
            Some entry
          | _ -> None)
        avail
    | _ -> Hashtbl.reset avail
  in
  let rec walk vn avail instrs =
    List.iter
      (fun (ins : Instr.t) ->
        (match ins with
        | Instr.Load (v, p, ix) -> (
          let k = canon (Var.id p), canon (Var.id ix) in
          match Hashtbl.find_opt avail k with
          | Some (leader, _) ->
            Hashtbl.replace dup (Var.id v) (Var.id leader);
            Hashtbl.replace canon_tbl (Var.id v) (Var.id leader)
          | None -> Hashtbl.replace avail k (v, Finfo.pointer_base fi p))
        | Instr.Store (p, _, _) | Instr.AtomicAdd (p, _, _) | Instr.Free p ->
          invalidate avail p
        | Instr.Call (_, ("mpi.rank" | "mpi.size" | "omp.max_threads"), _) ->
          ()
        | Instr.Call _ | Instr.Spawn _ | Instr.Sync _ | Instr.Barrier ->
          Hashtbl.reset avail
        | _ -> (
          match vn_key ins, Instr.def ins with
          | Some k, Some v -> (
            match Hashtbl.find_opt vn k with
            | Some lid -> Hashtbl.replace canon_tbl (Var.id v) lid
            | None -> Hashtbl.replace vn k (Var.id v))
          | _ -> ()));
        match ins with
        | Instr.If (_, _, t_, e_) ->
          (* branches observe memory as of the If: propagate availability
             in (lexical dominance makes the leaders visible), then drop
             it below the If (either branch may have written) *)
          walk (Hashtbl.copy vn) (Hashtbl.copy avail) t_.body;
          walk (Hashtbl.copy vn) (Hashtbl.copy avail) e_.body;
          Hashtbl.reset avail
        | _ ->
          let rs = Instr.regions ins in
          (* loop/fork bodies re-execute and other strands interleave:
             start them with no availability, and drop ours after *)
          List.iter
            (fun (r : Instr.region) ->
              walk (Hashtbl.copy vn) (Hashtbl.create 16) r.body)
            rs;
          if rs <> [] then Hashtbl.reset avail)
      instrs
  in
  walk (Hashtbl.create 64) (Hashtbl.create 16) f.body;
  dup

let create ~fi ~split ~opts =
  {
    fi;
    split;
    opts;
    vars = vars_of fi.Finfo.func;
    plans = Hashtbl.create 64;
    heights = Hashtbl.create 64;
    aux_ty = Hashtbl.create 16;
    occ_depth = Hashtbl.create 64;
    occ_sdepth = Hashtbl.create 64;
    useful = useful_of fi.Finfo.func;
    dup = dup_loads_of fi;
    shared = Hashtbl.create 32;
    eff = Hashtbl.create 64;
    n_cached = 0;
    while_occs = [];
  }

let var t id =
  match t.vars.(id) with
  | Some v -> v
  | None -> unsupported "planner: unknown variable id %d" id

let key_ty t = function
  | KVal id -> Var.ty (var t id)
  | KShadow id -> Var.ty (var t id)
  | KAux (o, s) -> (
    match Hashtbl.find_opt t.aux_ty (o, s) with
    | Some ty -> ty
    | None -> unsupported "planner: untyped aux %d.%d" o s)

let fresh_cache t depth =
  let ord = t.n_cached in
  t.n_cached <- ord + 1;
  ACache (ord, depth)

(* Is this a pure instruction we may re-execute in the reverse pass? *)
let pure_def (i : Instr.t) =
  match i with
  | Const _ | Bin _ | Cmp _ | Un _ | Select _ | Gep _ -> true
  | Call (_, ("mpi.rank" | "mpi.size" | "omp.max_threads"), _) -> true
  | _ -> false

let height t k = Option.value ~default:0 (Hashtbl.find_opt t.heights k)

let is_useful t (v : Var.t) =
  Ty.equal (Var.ty v) Ty.Float && Hashtbl.mem t.useful (Var.id v)

(* A duplicate load sharing its leader's cache slot: the forward sweep
   skips its cache store (the leader, which dominates it and executes
   whenever it does, already stored the identical value). *)
let is_dup t = function
  | KVal id -> Hashtbl.mem t.shared id
  | KShadow _ | KAux _ -> false

(* Does the reverse sweep emit any work for [ins]? A region instruction
   whose reverse half would be empty is skipped entirely — no control
   values resolved, no reversed loop emitted. Must stay in sync with the
   statement-level gating in [Reverse.rev_node]. Regions containing a
   Barrier are never skipped: the reversed barrier keeps the reversed
   strands aligned even when no thread has adjoint work. *)
let rec rev_work t (ins : Instr.t) : bool =
  match ins with
  | Instr.Const _ | Instr.Cmp _ | Instr.Gep _ | Instr.Free _
  | Instr.Return _ | Instr.Yield _ -> false
  | Instr.Bin (v, _, _, _) | Instr.Un (v, _, _) | Instr.Select (v, _, _, _)
  | Instr.Load (v, _, _) -> is_useful t v
  | Instr.Store (_, _, x) -> Ty.equal (Var.ty x) Ty.Float
  | Instr.AtomicAdd _ -> true
  | Instr.Alloc (_, _, _, Instr.Gc) -> false
  | Instr.Alloc _ -> true  (* the reverse pass frees the shadow *)
  | Instr.Barrier -> true
  | Instr.Call (_, name, _) ->
    if String.contains name '.' then (
      match name with
      | "mpi.rank" | "mpi.size" | "omp.max_threads" | "gc.collect"
      | "parad.checkpoint" | "parad.checkpoint_rev" -> false
      | n when String.length n >= 6 && String.sub n 0 6 = "debug." -> false
      | _ -> true)
    else true
  | Instr.Spawn _ | Instr.Sync _ -> true
  | Instr.If (rs, _, t_, e_) ->
    List.exists (is_useful t) rs
    || List.exists (rev_work t) t_.body
    || List.exists (rev_work t) e_.body
  | Instr.For { body; _ }
  | Instr.Fork { body; _ }
  | Instr.Workshare { body; _ } -> List.exists (rev_work t) body.body
  | Instr.While { body; _ } ->
    (* the While condition is never reversed, only the body *)
    List.exists (rev_work t) body.body

(* Effective variation depth of a planned key: the deepest loop level at
   which its value can change. A directly-available value never varies
   (0); a cached value varies at its cache's index depth; a recomputed
   chain varies where its deepest operand does (recorded at planning
   time); anything else is pinned at its definition depth. Caching a
   value at its effective depth instead of its lexical depth is the
   hoisting half of §V-E: a loop-invariant needed value gets one slot per
   outer iteration, not one per inner iteration. *)
let eff_depth t (k : key) : int =
  match Hashtbl.find_opt t.eff k with
  | Some d -> d
  | None -> (
    match Hashtbl.find_opt t.plans k with
    | Some ADirect -> 0
    | Some (ACache (_, d)) -> d
    | _ -> (
      match k with
      | KVal id | KShadow id -> Finfo.depth t.fi (var t id)
      | KAux (occ, _) ->
        Option.value ~default:0 (Hashtbl.find_opt t.occ_depth occ)))

let rec plan t (k : key) : avail =
  match Hashtbl.find_opt t.plans k with
  | Some a -> a
  | None ->
    (* Guard against re-entrancy on the same key (impossible in SSA, but
       cheap to detect). *)
    Hashtbl.add t.plans k ADirect;
    let a = compute t k in
    Hashtbl.replace t.plans k a;
    a

(* A load may be re-executed in the reverse pass when the loaded memory
   provably never changes: its base is a readonly+noalias parameter.
   This is the alias-analysis-driven cache avoidance of §V-E — exactly
   what the Julia frontend's pointer indirection defeats (§VIII). *)
and reload_safe t p =
  let ro_param base =
    match Finfo.def_site t.fi base with
    | Finfo.DParam -> (
      match Func.param_attr t.fi.Finfo.func base with
      | Some a -> a.Func.readonly && a.Func.noalias
      | None -> false)
    | _ -> false
  in
  match Finfo.pointer_base t.fi p with
  | Some base -> ro_param base
  | None -> (
    (* one level of indirection: a field pointer loaded from a readonly
       noalias parameter table (a kernel-parameter struct). Inside a
       parallel region the outlined closure's captures erase aliasing
       information (as in Clang-lowered OpenMP), so the chase only
       applies when the field load sits outside every Fork — which is
       precisely what OpenMPOpt's load hoisting establishes. *)
    match Finfo.def_site t.fi p with
    | Finfo.DInstr (Instr.Load (_, q, _), _)
      when Finfo.fork_of t.fi p = None -> (
      match Finfo.pointer_base t.fi q with
      | Some qb -> ro_param qb
      | None -> false)
    | _ -> false)

and compute t k =
  let fi = t.fi in
  match k with
  | KVal id -> (
    let v = var t id in
    match Finfo.def_site fi v with
    | Finfo.DParam -> if t.split then fresh_cache t 0 else ADirect
    | Finfo.DRegionParam _ -> AParam
    | Finfo.DInstr (Instr.Load (_, p, ix), _)
      when Finfo.sdepth fi v > 0 || t.split ->
      if reload_safe t p && t.opts.recompute_depth > 0 then begin
        ignore (plan t (KVal (Var.id p)));
        ignore (plan t (KVal (Var.id ix)));
        ARecomp
      end
      else (
        match Hashtbl.find_opt t.dup id with
        | Some lid -> (
          (* runtime-equal duplicate load: share the leader's cache slot.
             The leader dominates the duplicate within the same loop nest
             (same idx-depth), so its slot holds the identical value by
             the time the reverse sweep reads it. When the leader needs
             no slot (ADirect at scope depth 0, or recomputable), give
             the duplicate its own cache — repointing at the leader's
             SSA register could cross a region boundary. *)
          match plan t (KVal lid) with
          | ACache _ as a ->
            Hashtbl.replace t.shared id ();
            a
          | ADirect | AParam | ARecomp -> fresh_cache t (Finfo.depth fi v))
        | None -> fresh_cache t (Finfo.depth fi v))
    | Finfo.DInstr (i, _) ->
      let depth = Finfo.depth fi v in
      if Finfo.sdepth fi v = 0 && not t.split then ADirect
      else if pure_def i && t.opts.recompute_depth > 0 then begin
        let operands = Instr.uses i in
        List.iter (fun o -> ignore (plan t (KVal (Var.id o)))) operands;
        let h =
          1
          + List.fold_left
              (fun acc o ->
                let ok = KVal (Var.id o) in
                let oh =
                  match Hashtbl.find t.plans ok with
                  | ARecomp -> height t ok
                  | ADirect | AParam | ACache _ -> 0
                in
                max acc oh)
              0 operands
        in
        (* deepest level at which any operand (hence the value) varies *)
        let opmax =
          List.fold_left
            (fun acc o -> max acc (eff_depth t (KVal (Var.id o))))
            0 operands
        in
        if h <= t.opts.recompute_depth then begin
          Hashtbl.replace t.heights k h;
          Hashtbl.replace t.eff k opmax;
          ARecomp
        end
        else fresh_cache t (min depth opmax)
      end
      else fresh_cache t depth)
  | KShadow id -> (
    let v = var t id in
    if not (Ty.is_ptr (Var.ty v)) then
      unsupported "shadow of non-pointer %a" Var.pp v;
    match Finfo.def_site fi v with
    | Finfo.DParam -> if t.split then fresh_cache t 0 else ADirect
    | Finfo.DRegionParam _ -> unsupported "pointer region parameter"
    | Finfo.DInstr (i, _) -> (
      let depth = Finfo.depth fi v in
      match i with
      | Instr.Gep (_, p, ix) ->
        ignore (plan t (KShadow (Var.id p)));
        ignore (plan t (KVal (Var.id ix)));
        ARecomp
      | Instr.Select (_, c, a, b) ->
        ignore (plan t (KVal (Var.id c)));
        ignore (plan t (KShadow (Var.id a)));
        ignore (plan t (KShadow (Var.id b)));
        ARecomp
      | Instr.Const (_, Instr.Cnull _) -> ARecomp
      | Instr.Alloc _ | Instr.Load _ | Instr.If _ | Instr.Call _ ->
        if Finfo.sdepth fi v = 0 && not t.split then ADirect
        else fresh_cache t depth
      | _ ->
        unsupported "shadow of %a defined by unsupported instruction" Var.pp v)
    )
  | KAux (occ, _) ->
    let depth =
      match Hashtbl.find_opt t.occ_depth occ with
      | Some d -> d
      | None -> unsupported "planner: unknown occurrence %d" occ
    in
    let sdepth =
      Option.value ~default:1 (Hashtbl.find_opt t.occ_sdepth occ)
    in
    if sdepth = 0 && not t.split then ADirect else fresh_cache t depth

let need t k = ignore (plan t k)

let need_aux t ~occ ~slot ty =
  Hashtbl.replace t.aux_ty (occ, slot) ty;
  need t (KAux (occ, slot))

(* ---- the needed-set collection walk ---- *)

(* [register_callee] is invoked for every user call/spawn so the engine
   can (recursively) plan the callee's split transform; [spawned] marks
   task entry points, whose reverse halves run concurrently and need
   atomic shadow accumulation (§VI-A1: task shadows are not
   thread-local). *)
(* [live] is false inside regions whose reverse half is skipped entirely
   (see [rev_work]): their statements register nothing — the occurrence
   counter still advances so it stays aligned with [Reverse.annotate].
   Statement-level registrations are additionally gated on [is_useful]:
   operands of a value whose adjoint is always zero are never needed. *)
let rec collect t ~(register_callee : spawned:bool -> string -> unit) =
  let f = t.fi.Finfo.func in
  let counter = ref 0 in
  let val_ k = need t (KVal (Var.id k)) in
  let shadow_ k = need t (KShadow (Var.id k)) in
  let rec walk ~live ~depth ~sdepth instrs =
    List.iter
      (fun (ins : Instr.t) ->
        let occ = !counter in
        incr counter;
        Hashtbl.replace t.occ_depth occ depth;
        Hashtbl.replace t.occ_sdepth occ sdepth;
        (* the While counter cell is a forward-sweep fixture, needed even
           when the reverse half of the loop is pruned away *)
        (match ins with
        | Instr.While _ -> t.while_occs <- occ :: t.while_occs
        | _ -> ());
        (match ins with
        | Instr.Call (_, g, _) when not (String.contains g '.') ->
          (* the forward sweep always calls aug_g, reversed or not *)
          register_callee ~spawned:false g
        | Instr.Spawn (_, g, _) -> register_callee ~spawned:true g
        | _ -> ());
        (if live then
           match ins with
           | Instr.Bin (v, op, a, b) when is_useful t v -> (
             match op with
             | Add | Sub -> ()
             | Mul | Div | Min | Max | Pow ->
               val_ a;
               val_ b
             | Rem -> ())
           | Instr.Bin _ | Instr.Cmp _ -> ()
           | Instr.Un (v, op, a) when is_useful t v -> (
             match op with
             | Neg | ToFloat | Floor -> ()
             | Sqrt | Exp -> val_ v
             | Sin | Cos | Log | Abs -> val_ a
             | ToInt | Not -> ())
           | Instr.Un _ -> ()
           | Instr.Select (v, c, _, _) when is_useful t v -> val_ c
           | Instr.Select _ -> ()
           | Instr.Const _ -> ()
           | Instr.Alloc (v, _, _, _) -> shadow_ v
           | Instr.Free _ -> ()
           | Instr.Load (v, p, ix) when is_useful t v ->
             shadow_ p;
             val_ ix
           | Instr.Load _ -> ()
           | Instr.Store (p, ix, x) when Ty.equal (Var.ty x) Ty.Float ->
             shadow_ p;
             val_ ix
           | Instr.Store _ -> ()
           | Instr.Gep _ -> ()
           | Instr.AtomicAdd (p, ix, _) ->
             shadow_ p;
             val_ ix
           | Instr.Call (v, name, args) ->
             collect_call t ~occ ~register_callee v name args
           | Instr.Spawn (v, _, _) -> val_ v
           | Instr.Sync h ->
             val_ h;
             need_aux t ~occ ~slot:0 Ty.Int (* blk handle via task.retval *)
           | Instr.If (_, c, _, _) -> if rev_work t ins then val_ c
           | Instr.For { lo; hi; step; _ } ->
             if rev_work t ins then begin
               val_ lo;
               val_ hi;
               val_ step
             end
           | Instr.While _ ->
             if rev_work t ins then begin
               need_aux t ~occ ~slot:0 Ty.Int (* trip count *);
               need_aux t ~occ ~slot:1 Ty.Int (* start offset *)
             end
           | Instr.Fork { nth; _ } -> if rev_work t ins then val_ nth
           | Instr.Workshare { lo; hi; _ } ->
             if rev_work t ins then begin
               val_ lo;
               val_ hi
             end
           | Instr.Barrier -> ()
           | Instr.Return (Some v) ->
             if Ty.is_ptr (Var.ty v) then
               unsupported "returning a pointer from a differentiated function"
           | Instr.Return None -> ()
           | Instr.Yield _ -> ());
        let subs = Instr.regions ins in
        let depth' =
          match ins with
          | Instr.For _ | Instr.While _ | Instr.Fork _ | Instr.Workshare _ ->
            depth + 1
          | _ -> depth
        in
        let live' = live && rev_work t ins in
        List.iter
          (fun (r : Instr.region) ->
            walk ~live:live' ~depth:depth' ~sdepth:(sdepth + 1) r.body)
          subs)
      instrs
  in
  walk ~live:true ~depth:0 ~sdepth:0 f.body

and collect_call t ~occ ~register_callee v name args =
  let val_ k = need t (KVal (Var.id k)) in
  let shadow_ k = need t (KShadow (Var.id k)) in
  if String.contains name '.' then
    match name, args with
    | ("mpi.isend" | "mpi.irecv"), _ ->
      need_aux t ~occ ~slot:0 Ty.Int (* shadow request id *)
    | "mpi.wait", _ -> need_aux t ~occ ~slot:0 Ty.Int
    | ("mpi.send" | "mpi.recv"), [ p; n; _; _ ] ->
      (* blocking p2p: reverse issues the dual blocking op on shadows *)
      shadow_ p;
      val_ n;
      List.iter val_ (List.tl args)
    | "mpi.allreduce_sum", [ s; r; n ] ->
      shadow_ s;
      shadow_ r;
      val_ n
    | ("mpi.allreduce_min" | "mpi.allreduce_max"), [ s; r; n ] ->
      shadow_ s;
      shadow_ r;
      val_ n;
      need_aux t ~occ ~slot:0 (Ty.Ptr Ty.Float) (* primal send snapshot *);
      need_aux t ~occ ~slot:1 (Ty.Ptr Ty.Float) (* primal result snapshot *)
    | "mpi.bcast", [ p; n; root ] ->
      shadow_ p;
      val_ n;
      val_ root
    | ("mpi.barrier" | "mpi.rank" | "mpi.size" | "omp.max_threads"), _ -> ()
    | "parad.checkpoint", _ ->
      (* a checkpoint site snapshots the extras it names, and in a
         gradient run their shadows too: keep both available in the
         forward sweep (no reverse contribution) *)
      List.iter
        (fun x ->
          val_ x;
          if Ty.is_ptr (Var.ty x) then shadow_ x)
        args
    | "gc.preserve_begin", _ ->
      List.iter
        (fun x ->
          if Ty.is_ptr (Var.ty x) then begin
            val_ x;
            shadow_ x
          end)
        args
    | "gc.preserve_end", _ | "gc.collect", _ | "parad.checkpoint_rev", _ -> ()
    | n, _ when String.length n >= 6 && String.sub n 0 6 = "debug." -> ()
    | n, _ -> unsupported "cannot differentiate intrinsic %S" n
  else begin
    register_callee ~spawned:false name;
    need_aux t ~occ ~slot:0 Ty.Int (* cache-block handle *);
    ignore v
  end

(* ---- revolve-style binomial checkpoint scheduling (ROADMAP item 5) ----

   Griewank & Walther's revolve: reversing [n] outer timesteps with at
   most [c] concurrently live snapshots costs at most [t] forward
   re-evaluations per step, where [t] is minimal with beta(c, t) =
   C(c + t, c) >= n. The planner below exposes the two decisions the
   checkpointed-adjoint driver needs: how far to advance before dropping
   the next snapshot ([advance]), and the resulting worst-case sweep
   count ([sweeps]) for reporting. The flat [recompute_depth] knob keeps
   governing intra-iteration values; this schedules the loop-level state
   snapshots themselves. *)
module Binomial = struct
  (** beta(c, t) = C(c + t, c): the longest horizon reversible with [c]
      snapshots and at most [t] repeated forward sweeps per step.
      Saturates instead of overflowing. *)
  let beta c t =
    if c < 0 || t < 0 then 0
    else begin
      let r = ref 1 in
      for i = 1 to c do
        if !r < max_int / (t + i) then r := !r * (t + i) / i
        else r := max_int
      done;
      !r
    end

  (** Minimal repetition count [t] such that [n] steps are reversible
      with [c] snapshots: the schedule's worst-case recompute depth. *)
  let sweeps ~budget:c ~steps:n =
    if n <= 1 then 0
    else if c < 1 then invalid_arg "Binomial.sweeps: budget must be >= 1"
    else begin
      let t = ref 0 in
      while beta c !t < n do
        incr t
      done;
      !t
    end

  (** Given [n] remaining steps and [c] free snapshot slots, how many
      steps to advance the primal before placing the next snapshot —
      the classic revolve split: the first child subproblem gets
      beta(c-1, t-1) fewer steps so both children fit the bound. The
      result is clamped to [1, n-1]; callers only ask when [n >= 2]. *)
  let advance ~budget:c ~steps:n =
    if n < 2 then invalid_arg "Binomial.advance: needs at least 2 steps"
    else if c < 1 then invalid_arg "Binomial.advance: budget must be >= 1"
    else begin
      let t = sweeps ~budget:c ~steps:n in
      let a = n - beta (c - 1) (t - 1) in
      max 1 (min a (n - 1))
    end

  (** The full schedule's snapshot placements for reversing steps
      [0 .. n-1] with [budget] slots, in the order the driver visits
      them on the first forward pass. Mostly for tests, docs and the
      [parad soak] report; the driver re-derives placements recursively
      so it can re-plan after a degradation. *)
  let store_points ~budget ~steps:n =
    let pts = ref [] in
    let rec go base n free =
      if n >= 2 && free >= 1 then begin
        let a = advance ~budget:free ~steps:n in
        pts := (base + a) :: !pts;
        go (base + a) (n - a) (free - 1)
      end
    in
    pts := [ 0 ];
    go 0 n (budget - 1);
    List.sort compare !pts
end

(* Key type of each cache ordinal, for the emitter: Float ordinals get
   the unboxed [cache.newf] representation. *)
let cache_tys t : Ty.t option array =
  let a = Array.make (max 1 t.n_cached) None in
  Hashtbl.iter
    (fun k av ->
      match av with
      | ACache (ord, _) -> a.(ord) <- Some (key_ty t k)
      | ADirect | AParam | ARecomp -> ())
    t.plans;
  a
