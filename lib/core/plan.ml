(** The cache-vs-recompute planner (paper §IV-C).

    The reverse pass needs certain primal values ("needed values"):
    operands of nonlinear instructions, loop bounds, branch conditions,
    shadow pointers, and transform-generated auxiliaries (shadow MPI
    requests, call cache-block handles, loop trip counts). For each needed
    value the planner picks an availability strategy:

    - [ADirect] — the value is an SSA register of the combined gradient
      function defined outside every loop, so it is still live when the
      reverse sweep runs; no caching at all (Enzyme's "stack variable"
      case degenerates to nothing in combined mode).
    - [AParam] — a region parameter (loop induction variable, thread id)
      reconstructed by the reversed region.
    - [ARecomp] — a short pure chain re-emitted in the reverse pass
      (recompute-instead-of-cache).
    - [ACache] — stored in an iteration/thread-indexed cache during the
      forward sweep (cases 2 and 3 of §IV-C; worksharing caches are
      indexed by iteration, fork caches by thread id, §VI-B).

    Keys identify what is needed: a primal SSA value, the shadow of a
    pointer value, or a per-occurrence auxiliary. *)

open Parad_ir

exception Unsupported of string

let unsupported fmt = Fmt.kstr (fun s -> raise (Unsupported s)) fmt

type key =
  | KVal of int  (** primal SSA value, by var id *)
  | KShadow of int  (** shadow of a pointer-typed value, by var id *)
  | KAux of int * int  (** transform auxiliary: (occurrence, slot) *)

let pp_key ppf = function
  | KVal i -> Fmt.pf ppf "val:%d" i
  | KShadow i -> Fmt.pf ppf "shadow:%d" i
  | KAux (o, s) -> Fmt.pf ppf "aux:%d.%d" o s

type avail =
  | ADirect
  | AParam
  | ACache of int * int  (** cache ordinal, idx-depth of the definition *)
  | ARecomp

type options = {
  atomic_always : bool;
      (** disable the thread-locality analysis: every parallel adjoint
          accumulation uses atomics (the legal fallback of §VI-A1) *)
  assume_private : bool;
      (** test-only inverse of [atomic_always]: pretend the thread-locality
          analysis proved every base private, so no parallel adjoint
          accumulation uses atomics. Deliberately unsound — it seeds the
          miscompilation that ParSan's RaceSan cross-validation must catch *)
  recompute_depth : int;
      (** maximum height of a recomputed chain before caching wins; 0
          caches everything (the "cache-all" ablation baseline) *)
  prefix : string;  (** prefix for generated function names *)
}

let default_options =
  {
    atomic_always = false;
    assume_private = false;
    recompute_depth = 10;
    prefix = "";
  }

type t = {
  fi : Finfo.t;
  split : bool;  (** callee (split) mode: no ADirect availability *)
  opts : options;
  vars : Var.t option array;  (** var id -> var *)
  plans : (key, avail) Hashtbl.t;
  heights : (key, int) Hashtbl.t;
  aux_ty : (int * int, Ty.t) Hashtbl.t;
  occ_depth : (int, int) Hashtbl.t;  (** occurrence -> idx-depth *)
  occ_sdepth : (int, int) Hashtbl.t;  (** occurrence -> scope-depth *)
  mutable n_cached : int;
  mutable while_occs : int list;
}

(* Collect the vars of a function into an id-indexed array. *)
let vars_of (f : Func.t) =
  let vars = Array.make f.var_count None in
  let reg v = vars.(Var.id v) <- Some v in
  List.iter reg f.params;
  let rec walk instrs =
    List.iter
      (fun i ->
        List.iter reg (Instr.defs i);
        List.iter
          (fun (r : Instr.region) ->
            List.iter reg r.params;
            walk r.body)
          (Instr.regions i))
      instrs
  in
  walk f.body;
  vars

let create ~fi ~split ~opts =
  {
    fi;
    split;
    opts;
    vars = vars_of fi.Finfo.func;
    plans = Hashtbl.create 64;
    heights = Hashtbl.create 64;
    aux_ty = Hashtbl.create 16;
    occ_depth = Hashtbl.create 64;
    occ_sdepth = Hashtbl.create 64;
    n_cached = 0;
    while_occs = [];
  }

let var t id =
  match t.vars.(id) with
  | Some v -> v
  | None -> unsupported "planner: unknown variable id %d" id

let key_ty t = function
  | KVal id -> Var.ty (var t id)
  | KShadow id -> Var.ty (var t id)
  | KAux (o, s) -> (
    match Hashtbl.find_opt t.aux_ty (o, s) with
    | Some ty -> ty
    | None -> unsupported "planner: untyped aux %d.%d" o s)

let fresh_cache t depth =
  let ord = t.n_cached in
  t.n_cached <- ord + 1;
  ACache (ord, depth)

(* Is this a pure instruction we may re-execute in the reverse pass? *)
let pure_def (i : Instr.t) =
  match i with
  | Const _ | Bin _ | Cmp _ | Un _ | Select _ | Gep _ -> true
  | Call (_, ("mpi.rank" | "mpi.size" | "omp.max_threads"), _) -> true
  | _ -> false

let height t k = Option.value ~default:0 (Hashtbl.find_opt t.heights k)

let rec plan t (k : key) : avail =
  match Hashtbl.find_opt t.plans k with
  | Some a -> a
  | None ->
    (* Guard against re-entrancy on the same key (impossible in SSA, but
       cheap to detect). *)
    Hashtbl.add t.plans k ADirect;
    let a = compute t k in
    Hashtbl.replace t.plans k a;
    a

(* A load may be re-executed in the reverse pass when the loaded memory
   provably never changes: its base is a readonly+noalias parameter.
   This is the alias-analysis-driven cache avoidance of §V-E — exactly
   what the Julia frontend's pointer indirection defeats (§VIII). *)
and reload_safe t p =
  let ro_param base =
    match Finfo.def_site t.fi base with
    | Finfo.DParam -> (
      match Func.param_attr t.fi.Finfo.func base with
      | Some a -> a.Func.readonly && a.Func.noalias
      | None -> false)
    | _ -> false
  in
  match Finfo.pointer_base t.fi p with
  | Some base -> ro_param base
  | None -> (
    (* one level of indirection: a field pointer loaded from a readonly
       noalias parameter table (a kernel-parameter struct). Inside a
       parallel region the outlined closure's captures erase aliasing
       information (as in Clang-lowered OpenMP), so the chase only
       applies when the field load sits outside every Fork — which is
       precisely what OpenMPOpt's load hoisting establishes. *)
    match Finfo.def_site t.fi p with
    | Finfo.DInstr (Instr.Load (_, q, _), _)
      when Finfo.fork_of t.fi p = None -> (
      match Finfo.pointer_base t.fi q with
      | Some qb -> ro_param qb
      | None -> false)
    | _ -> false)

and compute t k =
  let fi = t.fi in
  match k with
  | KVal id -> (
    let v = var t id in
    match Finfo.def_site fi v with
    | Finfo.DParam -> if t.split then fresh_cache t 0 else ADirect
    | Finfo.DRegionParam _ -> AParam
    | Finfo.DInstr (Instr.Load (_, p, ix), _)
      when Finfo.sdepth fi v > 0 || t.split ->
      if reload_safe t p && t.opts.recompute_depth > 0 then begin
        ignore (plan t (KVal (Var.id p)));
        ignore (plan t (KVal (Var.id ix)));
        ARecomp
      end
      else fresh_cache t (Finfo.depth fi v)
    | Finfo.DInstr (i, _) ->
      let depth = Finfo.depth fi v in
      if Finfo.sdepth fi v = 0 && not t.split then ADirect
      else if pure_def i && t.opts.recompute_depth > 0 then begin
        let operands = Instr.uses i in
        List.iter (fun o -> ignore (plan t (KVal (Var.id o)))) operands;
        let h =
          1
          + List.fold_left
              (fun acc o ->
                let ok = KVal (Var.id o) in
                let oh =
                  match Hashtbl.find t.plans ok with
                  | ARecomp -> height t ok
                  | ADirect | AParam | ACache _ -> 0
                in
                max acc oh)
              0 operands
        in
        if h <= t.opts.recompute_depth then begin
          Hashtbl.replace t.heights k h;
          ARecomp
        end
        else fresh_cache t depth
      end
      else fresh_cache t depth)
  | KShadow id -> (
    let v = var t id in
    if not (Ty.is_ptr (Var.ty v)) then
      unsupported "shadow of non-pointer %a" Var.pp v;
    match Finfo.def_site fi v with
    | Finfo.DParam -> if t.split then fresh_cache t 0 else ADirect
    | Finfo.DRegionParam _ -> unsupported "pointer region parameter"
    | Finfo.DInstr (i, _) -> (
      let depth = Finfo.depth fi v in
      match i with
      | Instr.Gep (_, p, ix) ->
        ignore (plan t (KShadow (Var.id p)));
        ignore (plan t (KVal (Var.id ix)));
        ARecomp
      | Instr.Select (_, c, a, b) ->
        ignore (plan t (KVal (Var.id c)));
        ignore (plan t (KShadow (Var.id a)));
        ignore (plan t (KShadow (Var.id b)));
        ARecomp
      | Instr.Const (_, Instr.Cnull _) -> ARecomp
      | Instr.Alloc _ | Instr.Load _ | Instr.If _ | Instr.Call _ ->
        if Finfo.sdepth fi v = 0 && not t.split then ADirect
        else fresh_cache t depth
      | _ ->
        unsupported "shadow of %a defined by unsupported instruction" Var.pp v)
    )
  | KAux (occ, _) ->
    let depth =
      match Hashtbl.find_opt t.occ_depth occ with
      | Some d -> d
      | None -> unsupported "planner: unknown occurrence %d" occ
    in
    let sdepth =
      Option.value ~default:1 (Hashtbl.find_opt t.occ_sdepth occ)
    in
    if sdepth = 0 && not t.split then ADirect else fresh_cache t depth

let need t k = ignore (plan t k)

let need_aux t ~occ ~slot ty =
  Hashtbl.replace t.aux_ty (occ, slot) ty;
  need t (KAux (occ, slot))

(* ---- the needed-set collection walk ---- *)

(* [register_callee] is invoked for every user call/spawn so the engine
   can (recursively) plan the callee's split transform; [spawned] marks
   task entry points, whose reverse halves run concurrently and need
   atomic shadow accumulation (§VI-A1: task shadows are not
   thread-local). *)
let rec collect t ~(register_callee : spawned:bool -> string -> unit) =
  let f = t.fi.Finfo.func in
  let counter = ref 0 in
  let val_ k = need t (KVal (Var.id k)) in
  let shadow_ k = need t (KShadow (Var.id k)) in
  let rec walk ~depth ~sdepth instrs =
    List.iter
      (fun (ins : Instr.t) ->
        let occ = !counter in
        incr counter;
        Hashtbl.replace t.occ_depth occ depth;
        Hashtbl.replace t.occ_sdepth occ sdepth;
        (match ins with
        | Instr.Bin (v, op, a, b) when Ty.equal (Var.ty v) Ty.Float -> (
          match op with
          | Add | Sub -> ()
          | Mul | Div | Min | Max | Pow ->
            val_ a;
            val_ b
          | Rem -> ())
        | Instr.Bin _ | Instr.Cmp _ -> ()
        | Instr.Un (v, op, a) when Ty.equal (Var.ty v) Ty.Float -> (
          match op with
          | Neg | ToFloat | Floor -> ()
          | Sqrt | Exp -> val_ v
          | Sin | Cos | Log | Abs -> val_ a
          | ToInt | Not -> ())
        | Instr.Un _ -> ()
        | Instr.Select (v, c, _, _) when Ty.equal (Var.ty v) Ty.Float -> val_ c
        | Instr.Select _ -> ()
        | Instr.Const _ -> ()
        | Instr.Alloc (v, _, _, _) -> shadow_ v
        | Instr.Free _ -> ()
        | Instr.Load (v, p, ix) when Ty.equal (Var.ty v) Ty.Float ->
          shadow_ p;
          val_ ix
        | Instr.Load _ -> ()
        | Instr.Store (p, ix, x) when Ty.equal (Var.ty x) Ty.Float ->
          shadow_ p;
          val_ ix
        | Instr.Store _ -> ()
        | Instr.Gep _ -> ()
        | Instr.AtomicAdd (p, ix, _) ->
          shadow_ p;
          val_ ix
        | Instr.Call (v, name, args) -> collect_call t ~occ ~register_callee v name args
        | Instr.Spawn (v, g, _) ->
          register_callee ~spawned:true g;
          val_ v
        | Instr.Sync h ->
          val_ h;
          need_aux t ~occ ~slot:0 Ty.Int (* blk handle via task.retval *)
        | Instr.If (_, c, _, _) -> val_ c
        | Instr.For { lo; hi; step; _ } ->
          val_ lo;
          val_ hi;
          val_ step
        | Instr.While _ ->
          t.while_occs <- occ :: t.while_occs;
          need_aux t ~occ ~slot:0 Ty.Int (* trip count *);
          need_aux t ~occ ~slot:1 Ty.Int (* start offset *)
        | Instr.Fork { nth; _ } -> val_ nth
        | Instr.Workshare { lo; hi; _ } ->
          val_ lo;
          val_ hi
        | Instr.Barrier -> ()
        | Instr.Return (Some v) ->
          if Ty.is_ptr (Var.ty v) then
            unsupported "returning a pointer from a differentiated function"
        | Instr.Return None -> ()
        | Instr.Yield _ -> ());
        let subs = Instr.regions ins in
        let depth' =
          match ins with
          | Instr.For _ | Instr.While _ | Instr.Fork _ | Instr.Workshare _ ->
            depth + 1
          | _ -> depth
        in
        List.iter
          (fun (r : Instr.region) ->
            walk ~depth:depth' ~sdepth:(sdepth + 1) r.body)
          subs)
      instrs
  in
  walk ~depth:0 ~sdepth:0 f.body

and collect_call t ~occ ~register_callee v name args =
  let val_ k = need t (KVal (Var.id k)) in
  let shadow_ k = need t (KShadow (Var.id k)) in
  if String.contains name '.' then
    match name, args with
    | ("mpi.isend" | "mpi.irecv"), _ ->
      need_aux t ~occ ~slot:0 Ty.Int (* shadow request id *)
    | "mpi.wait", _ -> need_aux t ~occ ~slot:0 Ty.Int
    | ("mpi.send" | "mpi.recv"), [ p; n; _; _ ] ->
      (* blocking p2p: reverse issues the dual blocking op on shadows *)
      shadow_ p;
      val_ n;
      List.iter val_ (List.tl args)
    | "mpi.allreduce_sum", [ s; r; n ] ->
      shadow_ s;
      shadow_ r;
      val_ n
    | ("mpi.allreduce_min" | "mpi.allreduce_max"), [ s; r; n ] ->
      shadow_ s;
      shadow_ r;
      val_ n;
      need_aux t ~occ ~slot:0 (Ty.Ptr Ty.Float) (* primal send snapshot *);
      need_aux t ~occ ~slot:1 (Ty.Ptr Ty.Float) (* primal result snapshot *)
    | "mpi.bcast", [ p; n; root ] ->
      shadow_ p;
      val_ n;
      val_ root
    | ("mpi.barrier" | "mpi.rank" | "mpi.size" | "omp.max_threads"), _ -> ()
    | "parad.checkpoint", _ ->
      (* a checkpoint site snapshots the extras it names, and in a
         gradient run their shadows too: keep both available in the
         forward sweep (no reverse contribution) *)
      List.iter
        (fun x ->
          val_ x;
          if Ty.is_ptr (Var.ty x) then shadow_ x)
        args
    | "gc.preserve_begin", _ ->
      List.iter
        (fun x ->
          if Ty.is_ptr (Var.ty x) then begin
            val_ x;
            shadow_ x
          end)
        args
    | "gc.preserve_end", _ | "gc.collect", _ -> ()
    | n, _ when String.length n >= 6 && String.sub n 0 6 = "debug." -> ()
    | n, _ -> unsupported "cannot differentiate intrinsic %S" n
  else begin
    register_callee ~spawned:false name;
    need_aux t ~occ ~slot:0 Ty.Int (* cache-block handle *);
    ignore v
  end
