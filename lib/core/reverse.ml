(** Reverse-mode transform: given a function, generate its gradient.

    The entry function is transformed in *combined* mode — one function
    containing the augmented forward sweep followed by the reverse sweep —
    while callees are transformed in *split* mode into an [aug_g]
    (augmented forward returning a cache-block handle) and a [rev_g]
    (reverse sweep consuming it), so that task adjoints can themselves be
    spawned as tasks (§IV-A: a primal sync becomes a reverse spawn).

    Parallel constructs reverse structurally (Fork→Fork, Workshare→
    Workshare over the same range, Barrier→Barrier, Spawn↔Sync); adjoint
    accumulation into shared shadow memory is serial, or atomic when the
    thread-locality analysis cannot prove the target thread-local
    (§VI-A1). Message passing reverses through shadow requests (§IV-B). *)

open Parad_ir
module B = Builder
open Plan

(* Slot layout of a callee's cache block: [0, n) sub-cache ids, [n] the
   scalar-adjoint buffer, [n+1] the primal return value. *)
let slot_scal n = n
let slot_ret n = n + 1

(* ---- occurrence-annotated syntax tree (must mirror Finfo's walk) ---- *)

type anode = { occ : int; ins : Instr.t; subs : anode list list }

let annotate (body : Instr.t list) : anode list =
  let counter = ref 0 in
  let rec walk instrs =
    List.map
      (fun ins ->
        let occ = !counter in
        incr counter;
        let subs =
          List.map (fun (r : Instr.region) -> walk r.body) (Instr.regions ins)
        in
        { occ; ins; subs })
      instrs
  in
  walk body

(* ---- engine ---- *)

type callee_entry = {
  aug_name : string;
  rev_name : string;
  mutable cplan : Plan.t option;
  mutable emitted : bool;
  mutable spawned : bool;  (** used as a task entry point somewhere *)
  orig : Func.t;
}

type engine = {
  src : Prog.t;
  dst : Prog.t;
  opts : Plan.options;
  callees : (string, callee_entry) Hashtbl.t;
}

let scalar_params (f : Func.t) =
  List.filteri (fun _ p -> Ty.equal (Var.ty p) Ty.Float) f.params

let ptr_params (f : Func.t) =
  List.filter (fun p -> Ty.is_ptr (Var.ty p)) f.params

let rec ensure_planned eng ~spawned gname : callee_entry =
  match Hashtbl.find_opt eng.callees gname with
  | Some e ->
    if spawned then e.spawned <- true;
    e
  | None ->
    let orig =
      match Prog.find eng.src gname with
      | Some f -> f
      | None -> unsupported "call to unknown function %S" gname
    in
    let e =
      {
        aug_name = eng.opts.prefix ^ "aug_" ^ gname;
        rev_name = eng.opts.prefix ^ "rev_" ^ gname;
        cplan = None;
        emitted = false;
        spawned;
        orig;
      }
    in
    Hashtbl.add eng.callees gname e;
    let fi = Finfo.of_func orig in
    let p = Plan.create ~fi ~split:true ~opts:eng.opts in
    Plan.collect p ~register_callee:(fun ~spawned h ->
        ignore (ensure_planned eng ~spawned h));
    e.cplan <- Some p;
    e

let callee_info eng gname =
  let e = ensure_planned eng ~spawned:false gname in
  match e.cplan with
  | Some p -> e, p
  | None -> unsupported "recursive callee %S not yet planned" gname

(* ---- shared emission state ---- *)

type fstate = {
  eng : engine;
  p : Plan.t;
  b : B.t;
  frace : Race.t;
      (** static thread-locality analysis of the source function — drives
          both the serial-accumulation decision and the [san.mark_private]
          markers that let ParSan cross-validate it at runtime *)
  vmap : Var.t option array;
  shadow : (int, Var.t) Hashtbl.t;
  auxv : (int * int, Var.t) Hashtbl.t;
  cache_h : Var.t array;  (** cache handle vars, by ordinal *)
  while_gcell : (int, Var.t) Hashtbl.t;  (** While occ -> global counter cell *)
  mutable ret_val : Var.t option;
  mutable ret_orig : Var.t option;
}

let fget st v =
  match st.vmap.(Var.id v) with
  | Some v' -> v'
  | None -> unsupported "forward: unmapped variable %a" Var.pp v

let fset st v v' = st.vmap.(Var.id v) <- Some v'

let fshadow st v =
  match Hashtbl.find_opt st.shadow (Var.id v) with
  | Some s -> s
  | None -> unsupported "forward: no shadow for %a" Var.pp v

(* Under batched seeds ([opts.seeds = k > 1]) the shadow of a float array
   is a contiguous k-stride plane — lane [l] of cell [i] lives at
   [i*k + l] — so shadow allocation lengths and shadow gep offsets scale
   by k. Pointer-array shadows (which hold shadow pointers) and int
   shadows (MPI request duals) are never scaled. At k = 1 both helpers
   are the identity and emission is unchanged. *)
let shadow_len st (elem : Ty.t) (n : Var.t) =
  let k = st.eng.opts.seeds in
  if k > 1 && Ty.equal elem Ty.Float then B.mul st.b n (B.i64 st.b k) else n

let shadow_off st (pty : Ty.t) (ix : Var.t) =
  let k = st.eng.opts.seeds in
  if k > 1 && Ty.equal pty (Ty.Ptr Ty.Float) then
    B.mul st.b ix (B.i64 st.b k)
  else ix

(* Resolve the shadow of an Int-typed value (an MPI request): either noted
   directly at its isend/irecv, or chased through a load from a request
   array (the shadow array holds shadow request ids). *)
let rec fshadow_int st (v : Var.t) =
  match Hashtbl.find_opt st.shadow (Var.id v) with
  | Some s -> s
  | None -> (
    match Finfo.def_site st.p.fi v with
    | Finfo.DInstr (Instr.Load (_, arr, ix), _) ->
      let s = B.load st.b (fshadow st arr) (fget st ix) in
      Hashtbl.replace st.shadow (Var.id v) s;
      s
    | Finfo.DInstr (Instr.Select (_, c, a, b), _) ->
      let s =
        B.select st.b (fget st c) (fshadow_int st a) (fshadow_int st b)
      in
      Hashtbl.replace st.shadow (Var.id v) s;
      s
    | _ -> unsupported "cannot resolve the shadow request of %a" Var.pp v)

(* Each region depth carries a pair of linearized indices:
   - the *member* index (fst) — unique per dynamic execution of the
     region body, the one cache operations address with;
   - the *team* index (snd) — the lineage that treats an enclosing Fork
     as transparent (no [* nth + tid] term).
   A Workshare iteration executes exactly once across its team, so its
   index builds on the team lineage: [team_parent * len + (iv - lo)].
   Building on the member lineage (as a naive structural recursion does)
   makes the tape's index space [nth] times larger than the number of
   writes — a 64-thread region then pays a 64x-oversized, 1/64-dense
   cache file, which dominates wall-clock on wide teams. Both lineages
   re-unify at the workshare (its iteration is a team-level event), and
   a nested Fork restarts the team lineage from its own member index. *)
let idx_at idxs d =
  match List.nth_opt idxs d with
  | Some (m, _) -> m
  | None -> unsupported "index depth %d out of range" d

(* Store a planned-for-caching value into its cache. *)
let maybe_cache st ~idxs k (v : Var.t) =
  match Hashtbl.find_opt st.p.plans k with
  | Some (ACache (ord, d)) when not (Plan.is_dup st.p k) ->
    ignore
      (B.call st.b ~ret:Ty.Unit "cache.set"
         [ st.cache_h.(ord); idx_at idxs d; v ])
  | Some (ADirect | AParam | ACache _ | ARecomp) | None -> ()

(* Record a static privacy claim on a shadow buffer in the generated
   code: the runtime sanitizer's RaceSan treats a dynamic race on a
   marked buffer as a miscompilation of the thread-locality analysis.
   The intrinsic is a no-op on unsanitized runs. *)
let mark_if_private st (base : Var.t) (s : Var.t) =
  if st.eng.opts.Plan.assume_private || Race.is_private st.frace base then
    ignore (B.call st.b ~ret:Ty.Unit "san.mark_private" [ s ])

(* ---- forward sweep ---- *)

let rec fwd_emit st ~idxs ~on_yield (nodes : anode list) =
  List.iter (fwd_node st ~idxs ~on_yield) nodes

and fwd_node st ~idxs ~on_yield { occ; ins; subs } =
  let b = st.b in
  let g = fget st in
  let cache_val v v' = maybe_cache st ~idxs (KVal (Var.id v)) v' in
  let cache_shadow v s = maybe_cache st ~idxs (KShadow (Var.id v)) s in
  let cache_aux slot ty v' =
    Hashtbl.replace st.auxv (occ, slot) v';
    ignore ty;
    maybe_cache st ~idxs (KAux (occ, slot)) v'
  in
  match ins with
  | Const (v, c) ->
    let v' = B.const b ~name:(Var.name v) c in
    fset st v v';
    (match c with
    | Cnull t -> Hashtbl.replace st.shadow (Var.id v) (B.null b t)
    | _ -> ());
    cache_val v v'
  | Bin (v, op, x, y) ->
    let v' = B.bin b op (g x) (g y) in
    fset st v v';
    cache_val v v'
  | Cmp (v, op, x, y) ->
    let v' = B.cmp b op (g x) (g y) in
    fset st v v';
    cache_val v v'
  | Un (v, op, x) ->
    let v' = B.un b op (g x) in
    fset st v v';
    cache_val v v'
  | Select (v, c, x, y) ->
    let v' = B.select b (g c) (g x) (g y) in
    fset st v v';
    if Ty.is_ptr (Var.ty v) then begin
      let s = B.select b (g c) (fshadow st x) (fshadow st y) in
      Hashtbl.replace st.shadow (Var.id v) s;
      cache_shadow v s
    end;
    cache_val v v'
  | Alloc (v, elem, n, kind) ->
    let v' = B.alloc b ~kind elem (g n) in
    fset st v v';
    let s = B.alloc b ~kind elem (shadow_len st elem (g n)) in
    Hashtbl.replace st.shadow (Var.id v) s;
    mark_if_private st v s;
    cache_val v v';
    cache_shadow v s
  | Free p -> B.free b (g p)
  | Load (v, p, ix) ->
    let v' = B.load b (g p) (g ix) in
    fset st v v';
    (if Ty.is_ptr (Var.ty v) then begin
       let s = B.load b (fshadow st p) (g ix) in
       Hashtbl.replace st.shadow (Var.id v) s;
       cache_shadow v s
     end);
    cache_val v v'
  | Store (p, ix, x) ->
    B.store b (g p) (g ix) (g x);
    let xt = Var.ty x in
    if Ty.is_ptr xt then B.store b (fshadow st p) (g ix) (fshadow st x)
    else if
      Ty.equal xt Ty.Int && Hashtbl.mem st.shadow (Var.id x)
    then B.store b (fshadow st p) (g ix) (fshadow_int st x)
  | Gep (v, p, ix) ->
    let v' = B.gep b (g p) (g ix) in
    fset st v v';
    let s = B.gep b (fshadow st p) (shadow_off st (Var.ty p) (g ix)) in
    Hashtbl.replace st.shadow (Var.id v) s;
    cache_val v v';
    cache_shadow v s
  | AtomicAdd (p, ix, x) -> B.atomic_add b (g p) (g ix) (g x)
  | Call (v, name, args) -> fwd_call st ~idxs ~occ v name args
  | Spawn (v, gname, args) ->
    let e, _ = callee_info st.eng gname in
    if not (Ty.equal e.orig.ret_ty Ty.Unit) then
      unsupported "spawned function %S must return unit" gname;
    let args' =
      List.map g args @ List.map (fshadow st) (List.filter (fun a -> Ty.is_ptr (Var.ty a)) args)
    in
    let h = B.spawn b e.aug_name args' in
    fset st v h;
    cache_val v h
  | Sync h ->
    B.sync b (g h);
    let blk = B.call b ~ret:Ty.Int "task.retval" [ g h ] in
    cache_aux 0 Ty.Int blk
  | If (rs, c, _, _) ->
    let then_nodes, else_nodes =
      match subs with [ t; e ] -> t, e | _ -> assert false
    in
    let ptr_rs = List.filter (fun r -> Ty.is_ptr (Var.ty r)) rs in
    let result_tys =
      List.map Var.ty rs @ List.map Var.ty ptr_rs
    in
    let emit_branch nodes () =
      let yielded = ref [] in
      fwd_emit st ~idxs
        ~on_yield:(fun vs ->
          let mapped = List.map g vs in
          let shadows =
            List.filter_map
              (fun v ->
                if Ty.is_ptr (Var.ty v) then Some (fshadow st v) else None)
              vs
          in
          yielded := mapped @ shadows)
        nodes;
      !yielded
    in
    let out =
      B.if_ b (g c) ~results:result_tys
        ~then_:(emit_branch then_nodes)
        ~else_:(emit_branch else_nodes)
    in
    let n = List.length rs in
    List.iteri
      (fun i r ->
        if i < n then begin
          fset st r (List.nth out i);
          cache_val r (List.nth out i)
        end)
      rs;
    List.iteri
      (fun i r ->
        let s = List.nth out (n + i) in
        Hashtbl.replace st.shadow (Var.id r) s;
        cache_shadow r s)
      ptr_rs
  | For { iv; lo; hi; step; _ } ->
    let body_nodes = match subs with [ x ] -> x | _ -> assert false in
    let rlo = g lo and rhi = g hi and rstep = g step in
    (* trip = max 0 ((hi - lo + step - 1) / step) *)
    let trip =
      B.max_ b (B.i64 b 0)
        (B.div b
           (B.sub b (B.add b rhi rstep) (B.add b rlo (B.i64 b 1)))
           rstep)
    in
    let pm, pt = List.nth idxs (List.length idxs - 1) in
    B.for_ b ~lo:rlo ~hi:rhi ~step:rstep (fun iv' ->
        fset st iv iv';
        let iter = B.div b (B.sub b iv' rlo) rstep in
        let inner = B.add b (B.mul b pm trip) iter in
        let tinner =
          if pm == pt then inner else B.add b (B.mul b pt trip) iter
        in
        fwd_emit st ~idxs:(idxs @ [ inner, tinner ]) ~on_yield body_nodes)
  | While _ ->
    let cond_nodes, body_nodes =
      match subs with [ c; x ] -> c, x | _ -> assert false
    in
    let gcell =
      match Hashtbl.find_opt st.while_gcell occ with
      | Some c -> c
      | None -> unsupported "while: missing counter cell"
    in
    let zero = B.i64 b 0 in
    let start = B.load b gcell zero in
    cache_aux 1 Ty.Int start;
    let itercell = B.alloc b Ty.Int (B.i64 b 1) in
    B.store b itercell zero zero;
    B.while_ b
      ~cond:(fun () ->
        let res = ref None in
        fwd_emit st ~idxs ~on_yield:(fun vs -> res := Some (List.hd vs |> g))
          cond_nodes;
        Option.get !res)
      ~body:(fun () ->
        let iter = B.load b itercell zero in
        let inner = B.add b start iter in
        fwd_emit st ~idxs:(idxs @ [ inner, inner ]) ~on_yield body_nodes;
        B.store b itercell zero (B.add b iter (B.i64 b 1)));
    let trip = B.load b itercell zero in
    cache_aux 0 Ty.Int trip;
    B.store b gcell zero (B.add b start trip);
    B.free b itercell
  | Fork { tid; nth; body } ->
    let body_nodes = match subs with [ x ] -> x | _ -> assert false in
    let nth_param =
      match body.params with [ _; q ] -> q | _ -> assert false
    in
    let pm, _ = List.nth idxs (List.length idxs - 1) in
    B.fork b ~nth:(g nth) (fun ~tid:tid' ~nth:nth' ->
        fset st tid tid';
        fset st nth_param nth';
        let inner = B.add b (B.mul b pm nth') tid' in
        fwd_emit st ~idxs:(idxs @ [ inner, pm ]) ~on_yield body_nodes)
  | Workshare { iv; lo; hi; schedule; nowait; _ } ->
    let body_nodes = match subs with [ x ] -> x | _ -> assert false in
    let rlo = g lo and rhi = g hi in
    let len = B.max_ b (B.i64 b 0) (B.sub b rhi rlo) in
    let _, pt = List.nth idxs (List.length idxs - 1) in
    B.workshare b ~schedule ~nowait ~lo:rlo ~hi:rhi (fun iv' ->
        fset st iv iv';
        let inner = B.add b (B.mul b pt len) (B.sub b iv' rlo) in
        fwd_emit st ~idxs:(idxs @ [ inner, inner ]) ~on_yield body_nodes)
  | Barrier -> B.barrier b
  | Return v ->
    st.ret_orig <- v;
    st.ret_val <- Option.map g v
  | Yield vs -> on_yield vs

and fwd_call st ~idxs ~occ v name args =
  let b = st.b in
  let g = fget st in
  let cache_aux slot ty v' =
    Hashtbl.replace st.auxv (occ, slot) v';
    ignore ty;
    maybe_cache st ~idxs (KAux (occ, slot)) v'
  in
  if String.contains name '.' then (
    match name, args with
    | "mpi.isend", [ p; n; dst; tag ] ->
      let req = B.call b ~ret:Ty.Int name (List.map g args) in
      fset st v req;
      let dreq =
        B.call b ~ret:Ty.Int "mpi.adjnote_isend"
          [ fshadow st p; g n; g dst; g tag ]
      in
      Hashtbl.replace st.shadow (Var.id v) dreq;
      cache_aux 0 Ty.Int dreq;
      maybe_cache st ~idxs (KVal (Var.id v)) req
    | "mpi.irecv", [ p; n; src; tag ] ->
      let req = B.call b ~ret:Ty.Int name (List.map g args) in
      fset st v req;
      let dreq =
        B.call b ~ret:Ty.Int "mpi.adjnote_irecv"
          [ fshadow st p; g n; g src; g tag ]
      in
      Hashtbl.replace st.shadow (Var.id v) dreq;
      cache_aux 0 Ty.Int dreq;
      maybe_cache st ~idxs (KVal (Var.id v)) req
    | "mpi.wait", [ r ] ->
      fset st v (B.call b ~ret:Ty.Unit name [ g r ]);
      let dreq = fshadow_int st r in
      cache_aux 0 Ty.Int dreq
    | ("mpi.allreduce_min" | "mpi.allreduce_max"), [ s; r; n ] ->
      (* snapshot the send buffer before (it may alias recv) and the
         result after, for the argmin-style adjoint *)
      let rn = g n in
      let snap_s = B.alloc b Ty.Float rn in
      B.for_n b rn (fun j -> B.store b snap_s j (B.load b (g s) j));
      fset st v (B.call b ~ret:Ty.Unit name (List.map g args));
      let snap_r = B.alloc b Ty.Float rn in
      B.for_n b rn (fun j -> B.store b snap_r j (B.load b (g r) j));
      cache_aux 0 (Ty.Ptr Ty.Float) snap_s;
      cache_aux 1 (Ty.Ptr Ty.Float) snap_r
    | "gc.preserve_begin", _ ->
      let extended =
        List.map g args
        @ List.filter_map
            (fun x ->
              if Ty.is_ptr (Var.ty x) then Some (fshadow st x) else None)
            args
      in
      fset st v (B.call b ~ret:Ty.Int name extended)
    | "parad.checkpoint", _ ->
      (* the gradient's forward sweep checkpoints the primal extras and
         their shadows, so a restored replay resumes the derivative
         state too *)
      let extended =
        List.map g args
        @ List.filter_map
            (fun x ->
              if Ty.is_ptr (Var.ty x) then Some (fshadow st x) else None)
            args
      in
      fset st v (B.call b ~ret:Ty.Unit name extended)
    | _ ->
      (* straight copy: mpi.send/recv/allreduce_sum/bcast/barrier/rank/
         size, omp.*, gc.*, debug.* *)
      let ret = intrinsic_ret_ty name in
      fset st v (B.call b ~ret name (List.map g args));
      maybe_cache st ~idxs (KVal (Var.id v)) (fget st v))
  else begin
    let e, cp = callee_info st.eng name in
    let args' =
      List.map g args
      @ List.map (fshadow st)
          (List.filter (fun a -> Ty.is_ptr (Var.ty a)) args)
    in
    let blk = B.call b ~ret:Ty.Int e.aug_name args' in
    cache_aux 0 Ty.Int blk;
    if not (Ty.equal e.orig.ret_ty Ty.Unit) then begin
      let r =
        B.call b ~ret:e.orig.ret_ty "cache.get"
          [ blk; B.i64 b (slot_ret cp.n_cached) ]
      in
      fset st v r;
      maybe_cache st ~idxs (KVal (Var.id v)) r
    end
    else fset st v (B.unit_ b)
  end

and intrinsic_ret_ty = function
  | "mpi.rank" | "mpi.size" | "omp.max_threads" | "gc.preserve_begin"
  | "gc.collect" -> Ty.Int
  | _ -> Ty.Unit

(* ---- reverse sweep ---- *)

type rscope = {
  rparent : rscope option;
  memo : (Plan.key, Var.t) Hashtbl.t;
  ridxs : (Var.t * Var.t) list;
      (* per-depth reverse (member, team) region indices, outermost
         first — same linearization as the forward sweep's [idxs] *)
  pmap : (int, Var.t) Hashtbl.t;  (* orig region-param id -> reverse var *)
  rfork : int option;  (* current fork occurrence in the reverse sweep *)
  dlocal : Var.t option;  (* per-thread adjoint registers inside a fork *)
  sbuf : Var.t option;
      (* per-thread k-cell scratch holding the current statement's taken
         adjoint lane group (the batched analog of the scalar [dv] SSA
         value); [None] when [opts.seeds = 1] *)
}

type rstate = {
  fs : fstate;  (* forward tables, for ADirect resolution *)
  race : Race.t;
  dreg : Var.t;  (* shared adjoint registers, indexed by orig var id *)
  fslots : (int, (int, int) Hashtbl.t * int ref) Hashtbl.t;
      (* fork occurrence -> (var id -> dense slot, count): per-thread
         adjoint registers are numbered densely per parallel region, so
         each member's [dlocal] is sized by that region's locals instead
         of the whole function's [var_count] — at [seeds = k] the plane
         is k-stride and the allocation (zeroed per member, per region)
         would otherwise dominate the batched reverse sweep *)
  prestok : (int, Var.t) Hashtbl.t;  (* preserve-begin occ -> reverse token *)
  task_mode : bool;
      (* this reverse half runs as a task, concurrently with its siblings:
         shadows of anything shared (parameters, escaped memory) must be
         accumulated atomically (§VI-A1) *)
  mutable pend_sends : bool;
      (* coalesce_comm: adjoint send-duals posted ([mpi.adj_send_post])
         whose accumulation a [mpi.adj_waitall] has not yet completed.
         Only runs of consecutive [mpi.send] reversals batch — any other
         reversal statement (which could read or accumulate the deferred
         adjoint) emits the waitall first, preserving bit-identity with
         the blocking form *)
  mutable in_remat : bool;
      (* inside an ARecomp recompute chain: [parad.remat_begin]/[_end]
         markers are emitted only at the outermost chain *)
}

let child_scope sc ~idxs ?(fork = sc.rfork) ?(dlocal = sc.dlocal)
    ?(sbuf = sc.sbuf) () =
  {
    rparent = Some sc;
    memo = Hashtbl.create 16;
    ridxs = idxs;
    pmap = Hashtbl.create 8;
    rfork = fork;
    dlocal;
    sbuf;
  }

let rec memo_find sc k =
  match Hashtbl.find_opt sc.memo k with
  | Some v -> Some v
  | None -> (
    match sc.rparent with Some p -> memo_find p k | None -> None)

let rec pmap_find sc id =
  match Hashtbl.find_opt sc.pmap id with
  | Some v -> Some v
  | None -> (
    match sc.rparent with Some p -> pmap_find p id | None -> None)

(* Resolve a needed key to an SSA value at the current reverse point. *)
let rec resolve rs sc (k : Plan.key) : Var.t =
  match memo_find sc k with
  | Some v -> v
  | None ->
    let st = rs.fs in
    let b = st.b in
    let v =
      match Hashtbl.find_opt st.p.plans k with
      | None -> unsupported "reverse: unplanned key %a" Plan.pp_key k
      | Some ADirect -> (
        match k with
        | KVal id -> (
          match st.vmap.(id) with
          | Some v -> v
          | None -> unsupported "reverse: unmapped direct value %d" id)
        | KShadow id -> (
          match Hashtbl.find_opt st.shadow id with
          | Some v -> v
          | None -> unsupported "reverse: missing direct shadow %d" id)
        | KAux (o, s) -> (
          match Hashtbl.find_opt st.auxv (o, s) with
          | Some v -> v
          | None -> unsupported "reverse: missing direct aux %d.%d" o s))
      | Some AParam -> (
        match k with
        | KVal id -> (
          match pmap_find sc id with
          | Some v -> v
          | None -> unsupported "reverse: unbound region parameter %d" id)
        | KShadow _ | KAux _ -> unsupported "reverse: bad param key")
      | Some (ACache (ord, d)) ->
        B.call b ~ret:(Plan.key_ty st.p k) "cache.get"
          [ st.cache_h.(ord); idx_at sc.ridxs d ]
      | Some ARecomp ->
        (* bracket the outermost recomputed chain so the runtime charges
           the cheaper re-evaluation rate for its transcendentals (a
           recomputation repeats work whose operands are register- or
           cache-hot; see Cost_model.transcendental_remat). Chains are
           straight-line — no blocking op can interleave another strand's
           work between the markers. *)
        if rs.in_remat then recompute rs sc k
        else begin
          rs.in_remat <- true;
          ignore (B.call b ~ret:Ty.Unit "parad.remat_begin" []);
          let v = recompute rs sc k in
          ignore (B.call b ~ret:Ty.Unit "parad.remat_end" []);
          rs.in_remat <- false;
          v
        end
    in
    Hashtbl.replace sc.memo k v;
    v

and recompute rs sc k =
  let st = rs.fs in
  let b = st.b in
  let fi = st.p.fi in
  match k with
  | KVal id -> (
    let v = Plan.var st.p id in
    match Finfo.def_site fi v with
    | Finfo.DInstr (i, _) -> (
      let r x = resolve rs sc (KVal (Var.id x)) in
      match i with
      | Const (_, c) -> B.const b c
      | Bin (_, op, a, b') -> B.bin b op (r a) (r b')
      | Cmp (_, op, a, b') -> B.cmp b op (r a) (r b')
      | Un (_, op, a) -> B.un b op (r a)
      | Select (_, c, a, b') -> B.select b (r c) (r a) (r b')
      | Gep (_, p, ix) -> B.gep b (r p) (r ix)
      | Call (_, name, []) -> B.call b ~ret:Ty.Int name []
      | Load (_, p, ix) ->
        (* reload from provably-unchanged (readonly noalias) memory *)
        B.load b (r p) (r ix)
      | _ -> unsupported "reverse: cannot recompute %a" Var.pp v)
    | _ -> unsupported "reverse: cannot recompute %a" Var.pp v)
  | KShadow id -> (
    let v = Plan.var st.p id in
    match Finfo.def_site fi v with
    | Finfo.DInstr (Gep (_, p, ix), _) ->
      B.gep b
        (resolve rs sc (KShadow (Var.id p)))
        (shadow_off st (Var.ty p) (resolve rs sc (KVal (Var.id ix))))
    | Finfo.DInstr (Select (_, c, a, b'), _) ->
      B.select b
        (resolve rs sc (KVal (Var.id c)))
        (resolve rs sc (KShadow (Var.id a)))
        (resolve rs sc (KShadow (Var.id b')))
    | Finfo.DInstr (Const (_, Cnull t), _) -> B.null b t
    | _ -> unsupported "reverse: cannot recompute shadow of %a" Var.pp v)
  | KAux _ -> unsupported "reverse: cannot recompute aux"

(* ---- batched adjoint lanes ----

   With [opts.seeds = k > 1] every adjoint slot — the register files
   ([dreg]/[dlocal]) and float shadow memory — is a contiguous k-stride
   plane (cell [i], lane [l] at [i*k + l]), and each reverse statement
   becomes one or two [adj.*_k] runtime calls that loop natively over
   the lane group ({!Interp.intrinsic}). Primal resolution ([resolve]:
   cache traffic, transcendentals, partial computation) stays outside
   those calls, so one tape and one primal stream amortize across all k
   seeds — that sharing, plus the per-lane work costing a float op
   instead of an interpreter dispatch, is the whole point of the batch.
   At k = 1 emission keeps the classic scalar layout: the intrinsic
   per-lane arithmetic mirrors it exactly (same ops, same order), which
   keeps every batched lane bit-identical to its standalone run. *)

let fork_slot_tables (fi : Finfo.t) =
  let tbl = Hashtbl.create 8 in
  Array.iteri
    (fun id fo ->
      match fo with
      | None -> ()
      | Some occ ->
        let map, n =
          match Hashtbl.find_opt tbl occ with
          | Some x -> x
          | None ->
            let x = Hashtbl.create 32, ref 0 in
            Hashtbl.add tbl occ x;
            x
        in
        Hashtbl.replace map id !n;
        incr n)
    fi.Finfo.fork_occ;
  tbl

let fork_nlocals rs occ =
  match Hashtbl.find_opt rs.fslots occ with Some (_, n) -> !n | None -> 0

(* Which adjoint-register buffer hosts the adjoint of [v] at the current
   point, and at which slot. Captured-by-value outer registers inside a
   parallel region go to the shared buffer (atomically) at their var id;
   locals go to the per-thread buffer at their dense per-region slot. *)
let adj_host rs sc (v : Var.t) : Var.t * bool (* atomic *) * int =
  let fi = rs.fs.p.fi in
  match Finfo.fork_of fi v, sc.rfork with
  | None, None -> rs.dreg, false, Var.id v
  | None, Some _ -> rs.dreg, true, Var.id v
  | Some f, Some f' when f = f' -> (
    match sc.dlocal with
    | Some d -> (
      match Hashtbl.find_opt rs.fslots f with
      | Some (map, _) -> d, false, Hashtbl.find map (Var.id v)
      | None -> unsupported "reverse: missing per-thread adjoint slots")
    | None -> unsupported "reverse: missing per-thread adjoint registers")
  | Some _, _ ->
    unsupported "reverse: adjoint of %a escapes its parallel region" Var.pp v

(* [v] owns an adjoint register: non-constant float. *)
let accumulable rs (v : Var.t) =
  let is_const =
    match Finfo.def_site rs.fs.p.fi v with
    | Finfo.DInstr (Const _, _) -> true
    | _ -> false
    | exception _ -> false
  in
  Ty.equal (Var.ty v) Ty.Float && not is_const

let accum rs sc (v : Var.t) (dv : Var.t) =
  if accumulable rs v then begin
    let b = rs.fs.b in
    let host, atomic, slot = adj_host rs sc v in
    let ix = B.i64 b slot in
    if atomic then B.atomic_add b host ix dv
    else begin
      let cur = B.load b host ix in
      B.store b host ix (B.add b cur dv)
    end
  end

let read_adj rs sc (v : Var.t) =
  let b = rs.fs.b in
  let host, _, slot = adj_host rs sc v in
  let ix = B.i64 b slot in
  let d = B.load b host ix in
  B.store b host ix (B.f64 b 0.0);
  d

(* Shadow-memory accumulation is serial when the thread-locality
   analysis proves privacy, atomic otherwise (§VI-A1). *)
let mem_atomic rs sc ~(primal_ptr : Var.t) =
  let fi = rs.fs.p.fi in
  let task_shared () =
    (* in task mode, only non-escaping local allocations are private *)
    rs.task_mode
    &&
    match Finfo.pointer_base fi primal_ptr with
    | None -> true
    | Some base -> (
      match Finfo.def_site fi base with
      | Finfo.DInstr (Alloc _, _) -> Race.is_escaped rs.race base
      | _ -> true)
  in
  match sc.rfork with
  | None -> (not rs.fs.p.opts.assume_private) && task_shared ()
  | Some focc ->
    if rs.fs.p.opts.assume_private then false
    else if rs.fs.p.opts.atomic_always then true
    else (
      match Finfo.pointer_base fi primal_ptr with
      | None -> true
      | Some base -> (
        match Finfo.def_site fi base with
        | Finfo.DInstr (Alloc _, _) when Finfo.fork_of fi base = Some focc ->
          (* allocated inside this parallel region: thread-local *)
          false
        | _ -> not (Race.is_private rs.race base)))

let accum_mem rs sc ~(primal_ptr : Var.t) (sp : Var.t) (ix : Var.t) (dv : Var.t)
    =
  let b = rs.fs.b in
  if mem_atomic rs sc ~primal_ptr then B.atomic_add b sp ix dv
  else begin
    let cur = B.load b sp ix in
    B.store b sp ix (B.add b cur dv)
  end

(* ---- statement-level reverse emission ----

   A scalar reverse statement takes the adjoint of its result [v] and
   folds a per-operand function of it into each operand's slot. The
   per-operand formulas are [aspec]s whose [amode] numbers the runtime's
   [adj.acc_k] dispatch table; [rev_stmt] emits either classic scalar IR
   (seeds = 1, [scalar_formula] below) or the k-wide intrinsic calls —
   both compute the same float ops in the same order. *)

type aspec = {
  at : Var.t;  (* accumulation target *)
  amode : int;
  ac1 : Var.t option;  (* lane-invariant coefficients, resolved once *)
  ac2 : Var.t option;
  acond : Var.t option;
}

let spec ?c1 ?c2 ?cond at amode =
  { at; amode; ac1 = c1; ac2 = c2; acond = cond }

let scalar_formula b (s : aspec) (dv : Var.t) =
  let c1 () = Option.get s.ac1 in
  let c2 () = Option.get s.ac2 in
  let cond () = Option.get s.acond in
  match s.amode with
  | 0 -> dv
  | 1 -> B.neg b dv
  | 2 -> B.mul b dv (c1 ())
  | 3 -> B.div b dv (c1 ())
  | 4 -> B.neg b (B.mul b dv (c1 ()))
  | 5 -> B.neg b (B.div b (B.mul b dv (c1 ())) (c2 ()))
  | 6 -> B.div b (B.mul b dv (c1 ())) (c2 ())
  | 7 -> B.select b (cond ()) dv (B.f64 b 0.0)
  | 8 -> B.select b (cond ()) (B.f64 b 0.0) dv
  | 9 -> B.select b (cond ()) dv (B.neg b dv)
  | _ -> assert false

let kcall rs name args = ignore (B.call rs.fs.b ~ret:Ty.Unit name args)

let sbuf_of sc =
  match sc.sbuf with
  | Some s -> s
  | None -> unsupported "reverse: missing batched adjoint scratch"

(* scratch <- v's lane group, zeroing it (the k-wide [read_adj]) *)
let emit_take_k rs sc (v : Var.t) =
  let b = rs.fs.b in
  let k = rs.fs.p.opts.seeds in
  let host, _, slot = adj_host rs sc v in
  kcall rs "adj.take_k" [ sbuf_of sc; host; B.i64 b (slot * k); B.i64 b k ]

(* The 7-var argument group describing one accumulation target: host
   plane, lane-group offset, dispatch mode, coefficients, atomicity. *)
let acc_args rs sc (s : aspec) =
  let b = rs.fs.b in
  let k = rs.fs.p.opts.seeds in
  let host, atomic, slot = adj_host rs sc s.at in
  [
    host;
    B.i64 b (slot * k);
    B.i64 b s.amode;
    (match s.ac1 with Some c -> c | None -> B.f64 b 0.0);
    (match s.ac2 with Some c -> c | None -> B.f64 b 0.0);
    (match s.acond with Some c -> c | None -> B.bool b false);
    B.i64 b (if atomic then 1 else 0);
  ]

(* target's lane group += formula(lane group of [from], default scratch) *)
let emit_acc_k ?from rs sc (s : aspec) =
  if accumulable rs s.at then begin
    let b = rs.fs.b in
    let k = rs.fs.p.opts.seeds in
    match acc_args rs sc s with
    | host :: off :: rest ->
      kcall rs "adj.acc_k"
        ((host :: off
          :: (match from with Some d -> d | None -> sbuf_of sc)
          :: rest)
        @ [ B.i64 b k ])
    | _ -> assert false
  end

let rev_stmt rs sc (v : Var.t) (specs : aspec list) =
  if rs.fs.p.opts.seeds = 1 then begin
    let b = rs.fs.b in
    let dv = read_adj rs sc v in
    List.iter (fun s -> accum rs sc s.at (scalar_formula b s dv)) specs
  end
  else begin
    let b = rs.fs.b in
    let k = rs.fs.p.opts.seeds in
    let host, _, slot = adj_host rs sc v in
    let take = [ sbuf_of sc; host; B.i64 b (slot * k) ] in
    (* one fused dispatch per statement: take + up to two accumulates
       (hot path of the batched sweep; see the engine's native
       closures) *)
    match List.filter (fun s -> accumulable rs s.at) specs with
    | [] -> emit_take_k rs sc v
    | [ s1 ] ->
      kcall rs "adj.rev1_k" (take @ acc_args rs sc s1 @ [ B.i64 b k ])
    | [ s1; s2 ] ->
      kcall rs "adj.rev2_k"
        (take @ acc_args rs sc s1 @ acc_args rs sc s2 @ [ B.i64 b k ])
    | _ ->
      emit_take_k rs sc v;
      List.iter (fun s -> emit_acc_k rs sc s) specs
  end

let rec rev_emit rs sc ?if_results (nodes : anode list) =
  List.iter (rev_node rs sc ?if_results) (List.rev nodes);
  (* close this scope's batch of adjoint send-duals before control leaves
     it: a batch must never span a structural boundary — a waitall emitted
     in a sibling scope (e.g. the other arm of an If) would run on a path
     the posts never took, leaving them forever incomplete on the path
     that posted them *)
  if rs.pend_sends then begin
    ignore (B.call rs.fs.b ~ret:Ty.Unit "mpi.adj_waitall" []);
    rs.pend_sends <- false
  end

and rev_node rs sc ?if_results { occ; ins; subs } =
  let b = rs.fs.b in
  (* complete any batched adjoint send-duals before a statement that could
     read or accumulate their still-deferred adjoints; only runs of
     consecutive sends batch (statements that provably emit no reverse
     work are transparent). [mpi.adj_waitall] completes every registered
     expectation, so emitting it on a path the posts did not take is a
     harmless no-op. *)
  (match ins with
  | Call (_, "mpi.send", _) -> ()
  | Const _ | Cmp _ | Gep _ | Free _ | Return _ -> ()
  | _ ->
    if rs.pend_sends then begin
      ignore (B.call b ~ret:Ty.Unit "mpi.adj_waitall" []);
      rs.pend_sends <- false
    end);
  let rval v = resolve rs sc (KVal (Var.id v)) in
  let rshadow v = resolve rs sc (KShadow (Var.id v)) in
  let raux slot = resolve rs sc (KAux (occ, slot)) in
  let is_f v = Ty.equal (Var.ty v) Ty.Float in
  (* adjoint of [v] is provably zero: its reverse statement is a no-op *)
  let useful v = Plan.is_useful rs.fs.p v in
  match ins with
  (* a region with no reverse work is skipped wholesale — its control
     values were never planned (see Plan.collect's liveness gating) *)
  | (If _ | For _ | While _ | Fork _ | Workshare _)
    when not (Plan.rev_work rs.fs.p ins) -> ()
  | Const _ | Cmp _ | Gep _ | Free _ | Barrier | Return _ -> (
    match ins with Barrier -> B.barrier b | _ -> ())
  | Bin (v, op, x, y) when is_f v && useful v -> (
    (* primal operands resolve once, outside the statement's adjoint
       work: cache reads and derivative transcendentals are shared by
       every seed lane *)
    match op with
    | Add -> rev_stmt rs sc v [ spec x 0; spec y 0 ]
    | Sub -> rev_stmt rs sc v [ spec x 0; spec y 1 ]
    | Mul ->
      let ry = rval y in
      let rx = rval x in
      rev_stmt rs sc v [ spec x 2 ~c1:ry; spec y 2 ~c1:rx ]
    | Div ->
      let ry = rval y in
      let rx = rval x in
      let ryy = B.mul b ry ry in
      rev_stmt rs sc v [ spec x 3 ~c1:ry; spec y 5 ~c1:rx ~c2:ryy ]
    | Min ->
      let c = B.le b (rval x) (rval y) in
      rev_stmt rs sc v [ spec x 7 ~cond:c; spec y 8 ~cond:c ]
    | Max ->
      let c = B.ge b (rval x) (rval y) in
      rev_stmt rs sc v [ spec x 7 ~cond:c; spec y 8 ~cond:c ]
    | Pow ->
      let rx = rval x and ry = rval y in
      let r = B.pow b rx ry in
      let gx = B.mul b ry (B.pow b rx (B.sub b ry (B.f64 b 1.0))) in
      let gy = B.mul b r (B.log_ b rx) in
      rev_stmt rs sc v [ spec x 2 ~c1:gx; spec y 2 ~c1:gy ]
    | Rem -> ())
  | Bin _ -> ()
  | Un (v, op, x) when is_f v && useful v -> (
    match op with
    | Neg -> rev_stmt rs sc v [ spec x 1 ]
    | Sqrt ->
      let rv = rval v in
      rev_stmt rs sc v [ spec x 6 ~c1:(B.f64 b 0.5) ~c2:rv ]
    | Exp ->
      let rv = rval v in
      rev_stmt rs sc v [ spec x 2 ~c1:rv ]
    | Sin ->
      let cx = B.cos_ b (rval x) in
      rev_stmt rs sc v [ spec x 2 ~c1:cx ]
    | Cos ->
      let sx = B.sin_ b (rval x) in
      rev_stmt rs sc v [ spec x 4 ~c1:sx ]
    | Log ->
      let rx = rval x in
      rev_stmt rs sc v [ spec x 3 ~c1:rx ]
    | Abs ->
      let c = B.ge b (rval x) (B.f64 b 0.0) in
      rev_stmt rs sc v [ spec x 9 ~cond:c ]
    | Floor | ToFloat -> ()
    | ToInt | Not -> ())
  | Un _ -> ()
  | Select (v, c, x, y) when is_f v && useful v ->
    let rc = rval c in
    rev_stmt rs sc v [ spec x 7 ~cond:rc; spec y 8 ~cond:rc ]
  | Select _ -> ()
  | Alloc (v, _, _, kind) -> (
    match kind with
    | Instr.Gc -> () (* the collector owns GC shadows *)
    | Instr.Stack | Instr.Heap -> B.free b (rshadow v))
  | Load (v, p, ix) when is_f v && useful v ->
    let sp = rshadow p in
    let k = rs.fs.p.opts.seeds in
    if k = 1 then begin
      let dv = read_adj rs sc v in
      accum_mem rs sc ~primal_ptr:p sp (rval ix) dv
    end
    else begin
      (* shadow[ix*k ..] += v's lane group, one fused dispatch *)
      let host, _, slot = adj_host rs sc v in
      let mb = B.mul b (rval ix) (B.i64 b k) in
      let atomic = mem_atomic rs sc ~primal_ptr:p in
      kcall rs "adj.mrev_k"
        [
          sbuf_of sc;
          host;
          B.i64 b (slot * k);
          sp;
          mb;
          B.i64 b (if atomic then 1 else 0);
          B.i64 b k;
        ]
    end
  | Load _ -> ()
  | Store (p, ix, x) when is_f x ->
    let sp = rshadow p in
    let k = rs.fs.p.opts.seeds in
    if k = 1 then begin
      let mix = rval ix in
      let d = B.load b sp mix in
      B.store b sp mix (B.f64 b 0.0);
      accum rs sc x d
    end
    else begin
      (* pull (and zero) the stored cell's lane group, fold it into x;
         the zeroing must happen even when x accumulates nowhere *)
      let mb = B.mul b (rval ix) (B.i64 b k) in
      if accumulable rs x then begin
        let host, atomic, slot = adj_host rs sc x in
        kcall rs "adj.srev_k"
          [
            sbuf_of sc;
            sp;
            mb;
            host;
            B.i64 b (slot * k);
            B.i64 b (if atomic then 1 else 0);
            B.i64 b k;
          ]
      end
      else kcall rs "adj.mtake_k" [ sp; mb; sbuf_of sc; B.i64 b k ]
    end
  | Store _ -> ()
  | AtomicAdd (p, ix, x) ->
    (* all contributions share the final cell adjoint; nothing is zeroed *)
    let sp = rshadow p in
    let k = rs.fs.p.opts.seeds in
    if k = 1 then accum rs sc x (B.load b sp (rval ix))
    else if accumulable rs x then begin
      let mb = B.mul b (rval ix) (B.i64 b k) in
      let host, atomic, slot = adj_host rs sc x in
      kcall rs "adj.arev_k"
        [
          sbuf_of sc;
          sp;
          mb;
          host;
          B.i64 b (slot * k);
          B.i64 b (if atomic then 1 else 0);
          B.i64 b k;
        ]
    end
  | Call (v, name, args) -> rev_call rs sc ~occ v name args
  | Spawn (v, _, args) ->
    (* reverse of spawn: wait for the adjoint task, then fold its scalar
       argument adjoints back in *)
    let h = rval v in
    let hrev = B.call b ~ret:Ty.Int "ad.map_get1" [ h ] in
    B.sync b hrev;
    let blk = B.call b ~ret:Ty.Int "ad.map_get2" [ h ] in
    let gname = match ins with Spawn (_, g, _) -> g | _ -> assert false in
    let _, cp = callee_info rs.fs.eng gname in
    let dscal =
      B.call b ~ret:(Ty.Ptr Ty.Float) "cache.get"
        [ blk; B.i64 b (slot_scal cp.n_cached) ]
    in
    let scal_args = List.filter (fun a -> Ty.equal (Var.ty a) Ty.Float) args in
    List.iteri
      (fun k a -> accum rs sc a (B.load b dscal (B.i64 b k)))
      scal_args;
    B.free b dscal;
    ignore (B.call b ~ret:Ty.Unit "cache.free" [ blk ])
  | Sync h ->
    (* reverse of sync: spawn the adjoint task (Fig 2 of the paper) *)
    let blk = raux 0 in
    let hp = rval h in
    (* We do not know statically which function the task ran; the blk
       handle is enough for rev_g, but we need its name. Task handles are
       paired with their spawn statically through SSA. *)
    let gname = task_callee rs h in
    let e, _ = callee_info rs.fs.eng gname in
    let hrev = B.spawn b e.rev_name [ blk ] in
    ignore (B.call b ~ret:Ty.Unit "ad.map_set" [ hp; hrev; blk ])
  | If (rs_vars, c, _, _) ->
    let then_nodes, else_nodes =
      match subs with [ t; e ] -> t, e | _ -> assert false
    in
    let rc = rval c in
    let branch nodes () =
      let sc' = child_scope sc ~idxs:sc.ridxs () in
      rev_emit rs sc' ~if_results:rs_vars nodes
    in
    B.ite b rc (branch then_nodes) (branch else_nodes)
  | For { iv; lo; hi; step; _ } ->
    let body_nodes = match subs with [ x ] -> x | _ -> assert false in
    let rlo = rval lo and rhi = rval hi and rstep = rval step in
    let trip =
      B.max_ b (B.i64 b 0)
        (B.div b
           (B.sub b (B.add b rhi rstep) (B.add b rlo (B.i64 b 1)))
           rstep)
    in
    let pm, pt = List.nth sc.ridxs (List.length sc.ridxs - 1) in
    B.for_ b ~lo:(B.i64 b 0) ~hi:trip (fun j ->
        let iter = B.sub b (B.sub b trip (B.i64 b 1)) j in
        let iv' = B.add b rlo (B.mul b iter rstep) in
        let inner = B.add b (B.mul b pm trip) iter in
        let tinner =
          if pm == pt then inner else B.add b (B.mul b pt trip) iter
        in
        let sc' = child_scope sc ~idxs:(sc.ridxs @ [ inner, tinner ]) () in
        Hashtbl.replace sc'.pmap (Var.id iv) iv';
        rev_emit rs sc' body_nodes)
  | While _ ->
    let body_nodes = match subs with [ _; x ] -> x | _ -> assert false in
    let trip = raux 0 and start = raux 1 in
    B.for_ b ~lo:(B.i64 b 0) ~hi:trip (fun j ->
        let iter = B.sub b (B.sub b trip (B.i64 b 1)) j in
        let inner = B.add b start iter in
        let sc' = child_scope sc ~idxs:(sc.ridxs @ [ inner, inner ]) () in
        rev_emit rs sc' body_nodes)
  | Fork { tid; nth; body } ->
    let body_nodes = match subs with [ x ] -> x | _ -> assert false in
    let nth_param =
      match body.params with [ _; q ] -> q | _ -> assert false
    in
    let rnth = rval nth in
    let pm, _ = List.nth sc.ridxs (List.length sc.ridxs - 1) in
    let seeds = rs.fs.p.opts.seeds in
    (* densely numbered per-region locals, not the function's var_count *)
    let nslots = max 1 (fork_nlocals rs occ) * seeds in
    B.fork b ~nth:rnth (fun ~tid:tid' ~nth:nth' ->
        let dlocal = B.alloc b Ty.Float (B.i64 b nslots) in
        (* members run concurrently: each needs its own lane scratch *)
        let sbuf =
          if seeds > 1 then Some (B.alloc b Ty.Float (B.i64 b seeds))
          else None
        in
        let inner = B.add b (B.mul b pm nth') tid' in
        let sc' =
          child_scope sc ~idxs:(sc.ridxs @ [ inner, pm ]) ~fork:(Some occ)
            ~dlocal:(Some dlocal) ~sbuf ()
        in
        Hashtbl.replace sc'.pmap (Var.id tid) tid';
        Hashtbl.replace sc'.pmap (Var.id nth_param) nth';
        rev_emit rs sc' body_nodes;
        (match sbuf with Some s -> B.free b s | None -> ());
        B.free b dlocal)
  | Workshare { iv; lo; hi; schedule; _ } ->
    let body_nodes = match subs with [ x ] -> x | _ -> assert false in
    let rlo = rval lo and rhi = rval hi in
    let len = B.max_ b (B.i64 b 0) (B.sub b rhi rlo) in
    let _, pt = List.nth sc.ridxs (List.length sc.ridxs - 1) in
    B.workshare b ~schedule ~nowait:false ~lo:rlo ~hi:rhi (fun iv' ->
        let inner = B.add b (B.mul b pt len) (B.sub b iv' rlo) in
        let sc' = child_scope sc ~idxs:(sc.ridxs @ [ inner, inner ]) () in
        Hashtbl.replace sc'.pmap (Var.id iv) iv';
        rev_emit rs sc' body_nodes)
  | Yield vs -> (
    (* seed the yielded values with the If results' adjoints *)
    match if_results with
    | None -> ()
    | Some results ->
      List.iter2
        (fun r v ->
          if Ty.equal (Var.ty r) Ty.Float && Plan.is_useful rs.fs.p r then
            rev_stmt rs sc r [ spec v 0 ])
        results vs)

and task_callee rs (h : Var.t) =
  let fi = rs.fs.p.fi in
  match Finfo.def_site fi h with
  | Finfo.DInstr (Spawn (_, g, _), _) -> g
  | Finfo.DInstr (Load (_, arr, _), _) -> (
    (* handle loaded from a handle array: every spawn stored into that
       array must target the same function *)
    match Finfo.pointer_base fi arr with
    | None ->
      unsupported "task handle loaded through an untracked pointer"
    | Some base ->
      let callees = ref [] in
      Instr.iter_instrs
        (fun i ->
          match i with
          | Instr.Store (p, _, x)
            when Finfo.pointer_base fi p = Some base -> (
            match Finfo.def_site fi x with
            | Finfo.DInstr (Instr.Spawn (_, g, _), _) ->
              if not (List.mem g !callees) then callees := g :: !callees
            | _ ->
              unsupported
                "non-spawn value stored into a task-handle array")
          | _ -> ())
        fi.Finfo.func.body;
      (match !callees with
      | [ g ] -> g
      | [] -> unsupported "no spawn found for the task-handle array"
      | _ ->
        unsupported
          "task-handle array mixes tasks of different functions"))
  | _ -> unsupported "sync of a non-spawned handle"

and rev_call rs sc ~occ v name args =
  let b = rs.fs.b in
  let rval x = resolve rs sc (KVal (Var.id x)) in
  let rshadow x = resolve rs sc (KShadow (Var.id x)) in
  let raux slot = resolve rs sc (KAux (occ, slot)) in
  if String.contains name '.' then (
    match name, args with
    | "mpi.isend", _ ->
      ignore (B.call b ~ret:Ty.Unit "mpi.adj_isend_finish" [ raux 0 ])
    | "mpi.irecv", _ ->
      ignore (B.call b ~ret:Ty.Unit "mpi.adj_irecv_finish" [ raux 0 ])
    | "mpi.wait", _ -> ignore (B.call b ~ret:Ty.Unit "mpi.adj_wait" [ raux 0 ])
    | "mpi.send", [ p; n; dst; tag ] ->
      let coal = rs.fs.p.opts.coalesce_comm in
      if coal then rs.pend_sends <- true;
      ignore
        (B.call b ~ret:Ty.Unit
           (if coal then "mpi.adj_send_post" else "mpi.adj_send")
           [ rshadow p; rval n; rval dst; rval tag ])
    | "mpi.recv", [ p; n; src; tag ] ->
      ignore
        (B.call b ~ret:Ty.Unit
           (if rs.fs.p.opts.coalesce_comm then "mpi.adj_recv_post"
            else "mpi.adj_recv")
           [ rshadow p; rval n; rval src; rval tag ])
    | "mpi.allreduce_sum", [ s; r; n ] ->
      ignore
        (B.call b ~ret:Ty.Unit "mpi.adj_allreduce_sum"
           [ rshadow s; rshadow r; rval n ])
    | ("mpi.allreduce_min" | "mpi.allreduce_max"), [ s; r; n ] ->
      let snap_s = raux 0 and snap_r = raux 1 in
      ignore
        (B.call b ~ret:Ty.Unit "mpi.adj_allreduce_minmax"
           [ snap_s; snap_r; rshadow s; rshadow r; rval n ]);
      B.free b snap_s;
      B.free b snap_r
    | "mpi.bcast", [ p; n; root ] ->
      ignore
        (B.call b ~ret:Ty.Unit "mpi.adj_bcast" [ rshadow p; rval n; rval root ])
    | "mpi.barrier", _ -> ignore (B.call b ~ret:Ty.Unit "mpi.barrier" [])
    | ("mpi.rank" | "mpi.size" | "omp.max_threads" | "gc.collect"
      | "parad.checkpoint"), _ -> ()
    | "gc.preserve_begin", _ -> (
      match Hashtbl.find_opt rs.prestok occ with
      | Some tok -> ignore (B.call b ~ret:Ty.Unit "gc.preserve_end" [ tok ])
      | None -> ())
    | "gc.preserve_end", [ tok ] -> (
      (* re-preserve the begin's pointers (and shadows) across the
         reverse region (§VI-C2) *)
      match Finfo.def_site rs.fs.p.fi tok with
      | Finfo.DInstr (Call (_, "gc.preserve_begin", xs), bocc) ->
        let ptrs = List.filter (fun x -> Ty.is_ptr (Var.ty x)) xs in
        let ext = List.map rval ptrs @ List.map rshadow ptrs in
        let tok2 = B.call b ~ret:Ty.Int "gc.preserve_begin" ext in
        Hashtbl.replace rs.prestok bocc tok2
      | _ -> unsupported "gc.preserve_end of an unknown token")
    | n, _ when String.length n >= 6 && String.sub n 0 6 = "debug." -> ()
    | n, _ -> unsupported "reverse of intrinsic %S" n)
  else begin
    let e, cp = callee_info rs.fs.eng name in
    let blk = raux 0 in
    let rev_args =
      [ blk ]
      @
      if Ty.equal e.orig.ret_ty Ty.Float then [ read_adj rs sc v ] else []
    in
    ignore (B.call b ~ret:Ty.Unit e.rev_name rev_args);
    let scal_args = List.filter (fun a -> Ty.equal (Var.ty a) Ty.Float) args in
    if scal_args <> [] then begin
      let dscal =
        B.call b ~ret:(Ty.Ptr Ty.Float) "cache.get"
          [ blk; B.i64 b (slot_scal cp.n_cached) ]
      in
      List.iteri
        (fun k a -> accum rs sc a (B.load b dscal (B.i64 b k)))
        scal_args;
      B.free b dscal
    end
    else begin
      (* still free the scalar-adjoint buffer allocated by aug *)
      let dscal =
        B.call b ~ret:(Ty.Ptr Ty.Float) "cache.get"
          [ blk; B.i64 b (slot_scal cp.n_cached) ]
      in
      B.free b dscal
    end;
    ignore (B.call b ~ret:Ty.Unit "cache.free" [ blk ])
  end

(* ---- function emission ---- *)

let dummy_var = Var.make ~id:(-1) ~ty:Ty.Unit ~name:"dummy"

let ret_var (f : Func.t) =
  match List.rev f.body with Instr.Return v :: _ -> v | _ -> None

let make_fstate eng p b ~race =
  {
    eng;
    p;
    b;
    frace = race;
    vmap = Array.make p.fi.Finfo.func.var_count None;
    shadow = Hashtbl.create 32;
    auxv = Hashtbl.create 32;
    cache_h = Array.make (max 1 p.n_cached) dummy_var;
    while_gcell = Hashtbl.create 4;
    ret_val = None;
    ret_orig = None;
  }

(* Create the cache handles and While counter cells in the preamble. *)
let emit_preamble st =
  let b = st.b in
  let tys = Plan.cache_tys st.p in
  for ord = 0 to st.p.n_cached - 1 do
    (* Float-typed slots use the unboxed float-array representation *)
    let ctor =
      match tys.(ord) with
      | Some Ty.Float -> "cache.newf"
      | _ -> "cache.new"
    in
    st.cache_h.(ord) <- B.call b ~ret:Ty.Int ctor [ B.i64 b 16 ]
  done;
  List.iter
    (fun occ ->
      Hashtbl.replace st.while_gcell occ (B.alloc b Ty.Int (B.i64 b 1)))
    st.p.while_occs

let free_caches st =
  let b = st.b in
  for ord = 0 to st.p.n_cached - 1 do
    ignore (B.call b ~ret:Ty.Unit "cache.free" [ st.cache_h.(ord) ])
  done;
  Hashtbl.iter (fun _ cell -> B.free b cell) st.while_gcell

let no_yield _ = unsupported "yield outside a region"

(* Combined-mode gradient of the entry function:
   d_f(args..., shadow-ptr-args..., d_ret?, d_args?) -> f's return.
   Shadow pointer arguments are accumulated into; when f has active scalar
   (float) arguments their adjoints are written to the d_args buffer in
   float-argument order; d_ret seeds the return adjoint when f returns a
   float.

   Batched seeds change the calling convention: with [opts.seeds = k > 1]
   every float shadow argument is a k-stride plane (cell i, lane l at
   [i*k + l]), [d_ret] becomes a k-cell float buffer (one seed per lane),
   and [d_args] holds k cells per scalar argument, param-major. *)
let emit_combined eng (f : Func.t) (p : Plan.t) dname =
  let race = Race.analyze p.fi f in
  let seeds = eng.opts.seeds in
  let nscal = List.length (scalar_params f) in
  let pparams = ptr_params f in
  let d_ret_ty = if seeds > 1 then Ty.Ptr Ty.Float else Ty.Float in
  let params_spec =
    List.map (fun v -> Var.name v, Var.ty v) f.params
    @ List.map (fun v -> "d_" ^ Var.name v, Var.ty v) pparams
    @ (if Ty.equal f.ret_ty Ty.Float then [ "d_ret", d_ret_ty ] else [])
    @ if nscal > 0 then [ "d_args", Ty.Ptr Ty.Float ] else []
  in
  let attrs =
    f.attrs
    @ List.filter_map
        (fun (v, a) -> if Ty.is_ptr (Var.ty v) then Some a else None)
        (List.combine f.params f.attrs)
    @ (if Ty.equal f.ret_ty Ty.Float then [ Func.default_attr ] else [])
    @ if nscal > 0 then [ Func.noalias ] else []
  in
  let b, newparams = B.func ~attrs eng.dst dname ~params:params_spec ~ret:f.ret_ty in
  let st = make_fstate eng p b ~race in
  (* bind params *)
  let nparams = List.length f.params in
  List.iteri
    (fun i v -> if i < nparams then fset st (List.nth f.params i) v)
    newparams;
  List.iteri
    (fun i v ->
      Hashtbl.replace st.shadow (Var.id (List.nth pparams i)) v)
    (List.filteri
       (fun i _ -> i >= nparams && i < nparams + List.length pparams)
       newparams);
  let rest =
    List.filteri (fun i _ -> i >= nparams + List.length pparams) newparams
  in
  let d_ret, d_args =
    match Ty.equal f.ret_ty Ty.Float, nscal > 0, rest with
    | true, true, [ a; b' ] -> Some a, Some b'
    | true, false, [ a ] -> Some a, None
    | false, true, [ b' ] -> None, Some b'
    | false, false, [] -> None, None
    | _ -> assert false
  in
  List.iter (fun pv -> mark_if_private st pv (fshadow st pv)) pparams;
  emit_preamble st;
  let idx0 = B.i64 b 0 in
  let nodes = annotate f.body in
  (* Reverse-entry checkpoint (opt-in): immediately after the last
     top-level construct that itself checkpoints (the application's outer
     timestep loop) the rank state is quiescent — nonblocking requests
     waited, collectives closed, adjoint staging not yet begun — so a
     snapshot here lets a rank killed during the reverse sweep resume at
     reverse entry instead of replaying its whole forward sweep. The site
     must precede any later forward code: a restoring replay skips the
     loop's allocations, and structural buffer correspondence only holds
     while the replay has allocated nothing beyond the snapshot's
     preamble. Only emitted when the source itself checkpoints: otherwise
     there is no recovery protocol to join. *)
  let rec node_has_ckpt { ins; subs; _ } =
    (match ins with
    | Instr.Call (_, "parad.checkpoint", _) -> true
    | _ -> false)
    || List.exists (List.exists node_has_ckpt) subs
  in
  let last_ckpt =
    if eng.opts.Plan.ckpt_reverse then (
      let idx = ref (-1) in
      List.iteri (fun i n -> if node_has_ckpt n then idx := i) nodes;
      !idx)
    else -1
  in
  if last_ckpt < 0 then
    fwd_emit st ~idxs:[ idx0, idx0 ] ~on_yield:no_yield nodes
  else begin
    fwd_emit st ~idxs:[ idx0, idx0 ] ~on_yield:no_yield
      (List.filteri (fun i _ -> i <= last_ckpt) nodes);
    ignore (B.call b ~ret:Ty.Unit "parad.checkpoint_rev" []);
    fwd_emit st ~idxs:[ idx0, idx0 ] ~on_yield:no_yield
      (List.filteri (fun i _ -> i > last_ckpt) nodes)
  end;
  (* reverse sweep *)
  let var_count = f.var_count in
  let dreg = B.alloc b Ty.Float (B.i64 b (var_count * seeds)) in
  let sbuf =
    if seeds > 1 then Some (B.alloc b Ty.Float (B.i64 b seeds)) else None
  in
  let rs =
    {
      fs = st;
      race;
      dreg;
      fslots = fork_slot_tables st.p.fi;
      prestok = Hashtbl.create 4;
      task_mode = false;
      pend_sends = false;
      in_remat = false;
    }
  in
  let root =
    {
      rparent = None;
      memo = Hashtbl.create 32;
      ridxs = [ idx0, idx0 ];
      pmap = Hashtbl.create 8;
      rfork = None;
      dlocal = None;
      sbuf;
    }
  in
  (match d_ret, st.ret_orig with
  | Some d, Some v when Ty.equal (Var.ty v) Ty.Float ->
    if seeds = 1 then accum rs root v d
    else
      (* d_ret is a k-cell buffer: lane l seeds the return with d[l] *)
      emit_acc_k ~from:d rs root (spec v 0)
  | _ -> ());
  rev_emit rs root nodes;
  (match d_args with
  | Some da ->
    List.iteri
      (fun k sp ->
        if seeds = 1 then begin
          let v = B.load b dreg (B.i64 b (Var.id sp)) in
          B.store b da (B.i64 b k) v
        end
        else
          (* param-major: param k's lane group lands at da[k*seeds ..] *)
          kcall rs "adj.pack_k"
            [
              da;
              B.i64 b (k * seeds);
              dreg;
              B.i64 b (Var.id sp * seeds);
              B.i64 b seeds;
            ])
      (scalar_params f)
  | None -> ());
  (match sbuf with Some s -> B.free b s | None -> ());
  B.free b dreg;
  free_caches st;
  (match f.ret_ty, st.ret_val with
  | Ty.Unit, _ -> B.return b None
  | _, Some v -> B.return b (Some v)
  | _, None -> unsupported "function %s has no return value" f.name);
  ignore (B.finish b)

(* Split-mode emission: aug_g and rev_g (see the module comment). *)
let emit_split eng gname =
  let e, p = callee_info eng gname in
  if not e.emitted then begin
    e.emitted <- true;
    let f = e.orig in
    let race = Race.analyze p.fi f in
    let nscal = List.length (scalar_params f) in
    let pparams = ptr_params f in
    let nodes = annotate f.body in
    (* ---- aug_g ---- *)
    let params_spec =
      List.map (fun v -> Var.name v, Var.ty v) f.params
      @ List.map (fun v -> "d_" ^ Var.name v, Var.ty v) pparams
    in
    let attrs =
      f.attrs
      @ List.filter_map
          (fun (v, a) -> if Ty.is_ptr (Var.ty v) then Some a else None)
          (List.combine f.params f.attrs)
    in
    let b, newparams =
      B.func ~attrs eng.dst e.aug_name ~params:params_spec ~ret:Ty.Int
    in
    let st = make_fstate eng p b ~race in
    let nparams = List.length f.params in
    List.iteri
      (fun i v ->
        if i < nparams then fset st (List.nth f.params i) v
        else
          Hashtbl.replace st.shadow
            (Var.id (List.nth pparams (i - nparams)))
            v)
      newparams;
    List.iter (fun pv -> mark_if_private st pv (fshadow st pv)) pparams;
    emit_preamble st;
    let blkc =
      B.call b ~ret:Ty.Int "cache.new" [ B.i64 b (p.n_cached + 2) ]
    in
    for ord = 0 to p.n_cached - 1 do
      ignore
        (B.call b ~ret:Ty.Unit "cache.set"
           [ blkc; B.i64 b ord; st.cache_h.(ord) ])
    done;
    let dscal = B.alloc b Ty.Float (B.i64 b (max 1 nscal)) in
    ignore
      (B.call b ~ret:Ty.Unit "cache.set"
         [ blkc; B.i64 b (slot_scal p.n_cached); dscal ]);
    let idx0 = B.i64 b 0 in
    (* cache parameter values and shadows (the callee's reverse half has
       no direct access to them) *)
    List.iter
      (fun v -> maybe_cache st ~idxs:[ idx0, idx0 ] (KVal (Var.id v)) (fget st v))
      f.params;
    List.iter
      (fun v ->
        maybe_cache st ~idxs:[ idx0, idx0 ] (KShadow (Var.id v)) (fshadow st v))
      pparams;
    fwd_emit st ~idxs:[ idx0, idx0 ] ~on_yield:no_yield nodes;
    (if not (Ty.equal f.ret_ty Ty.Unit) then
       match st.ret_val with
       | Some v ->
         ignore
           (B.call b ~ret:Ty.Unit "cache.set"
              [ blkc; B.i64 b (slot_ret p.n_cached); v ])
       | None -> unsupported "function %s has no return value" f.name);
    B.return b (Some blkc);
    ignore (B.finish b);
    (* ---- rev_g ---- *)
    let rev_params =
      ("blk", Ty.Int)
      :: (if Ty.equal f.ret_ty Ty.Float then [ "d_ret", Ty.Float ] else [])
    in
    let b, rps = B.func eng.dst e.rev_name ~params:rev_params ~ret:Ty.Unit in
    let blk = List.hd rps in
    let d_ret = match rps with [ _; d ] -> Some d | _ -> None in
    let st = make_fstate eng p b ~race in
    for ord = 0 to p.n_cached - 1 do
      st.cache_h.(ord) <-
        B.call b ~ret:Ty.Int "cache.get" [ blk; B.i64 b ord ]
    done;
    let dreg = B.alloc b Ty.Float (B.i64 b f.var_count) in
    let rs =
      {
        fs = st;
        race;
        dreg;
        fslots = fork_slot_tables p.fi;
        prestok = Hashtbl.create 4;
        task_mode = e.spawned;
        pend_sends = false;
        in_remat = false;
      }
    in
    let idx0 = B.i64 b 0 in
    let root =
      {
        rparent = None;
        memo = Hashtbl.create 32;
        ridxs = [ idx0, idx0 ];
        pmap = Hashtbl.create 8;
        rfork = None;
        dlocal = None;
        (* split mode is task-only, which batching rejects *)
        sbuf = None;
      }
    in
    (match d_ret, ret_var f with
    | Some d, Some v when Ty.equal (Var.ty v) Ty.Float -> accum rs root v d
    | _ -> ());
    rev_emit rs root nodes;
    let dscal =
      B.call b ~ret:(Ty.Ptr Ty.Float) "cache.get"
        [ blk; B.i64 b (slot_scal p.n_cached) ]
    in
    List.iteri
      (fun k sp ->
        let v = B.load b dreg (B.i64 b (Var.id sp)) in
        B.store b dscal (B.i64 b k) v)
      (scalar_params f);
    B.free b dreg;
    for ord = 0 to p.n_cached - 1 do
      ignore (B.call b ~ret:Ty.Unit "cache.free" [ st.cache_h.(ord) ])
    done;
    B.return b None;
    ignore (B.finish b)
  end

(** [gradient ?opts prog fname] returns a program extended with
    [d_<fname>] (and any [aug_]/[rev_] split pairs for callees and tasks)
    plus the name of the gradient function. See {!emit_combined} for the
    gradient's calling convention. *)
let gradient ?(opts = Plan.default_options) (src : Prog.t) fname =
  let f = Prog.find_exn src fname in
  if opts.seeds < 1 then unsupported "seeds must be >= 1 (got %d)" opts.seeds;
  (* Batched lanes cover the shared-memory paradigms. Split-mode callees
     and task adjoints would need k-lane scalar-adjoint blocks, and the
     MPI adjoint runtime exchanges single-stride shadow planes — both are
     rejected up front rather than silently miscomputing. *)
  if opts.seeds > 1 then
    Instr.iter_instrs
      (fun i ->
        match i with
        | Instr.Spawn _ | Instr.Sync _ ->
          unsupported "batched seeds (k>1) cannot differentiate task parallelism"
        | Instr.Call (_, n, _) when not (String.contains n '.') ->
          unsupported "batched seeds (k>1) cannot differentiate calls to %S" n
        | Instr.Call (_, n, _)
          when String.length n >= 4
               && String.sub n 0 4 = "mpi."
               && n <> "mpi.rank" && n <> "mpi.size" && n <> "mpi.barrier" ->
          unsupported "batched seeds (k>1) cannot differentiate %S" n
        | _ -> ())
      f.body;
  let dst = Prog.copy src in
  let eng = { src; dst; opts; callees = Hashtbl.create 8 } in
  let fi = Finfo.of_func f in
  let p = Plan.create ~fi ~split:false ~opts in
  Plan.collect p ~register_callee:(fun ~spawned h ->
      ignore (ensure_planned eng ~spawned h));
  let dname = opts.prefix ^ "d_" ^ fname in
  emit_combined eng f p dname;
  let rec drain () =
    let todo =
      Hashtbl.fold
        (fun name e acc -> if e.emitted then acc else name :: acc)
        eng.callees []
    in
    match todo with
    | [] -> ()
    | l ->
      List.iter (emit_split eng) (List.sort compare l);
      drain ()
  in
  drain ();
  Verifier.check_prog dst;
  dst, dname
