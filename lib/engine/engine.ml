(** The compiled execution engine (ISSUE 9).

    Lowers post-plan IR to slot-addressed native closures and runs them
    either sequentially on {!Sim} strands or in parallel on a
    work-stealing {!Pool} of OCaml domains.

    {b Lowering.} Each function's variables are assigned integer slots in
    four typed register files (float / int / bool / boxed) at compile
    time; every instruction becomes a closure over those slot ids, so the
    hot path runs with no per-step environment allocation, no variable
    hashing, and no boxing of scalar traffic. Straight-line instruction
    runs are fused into segments whose {!Stats} counters are incremented
    in one batch.

    {b Bit-identity.} The engine replicates the interpreter's observable
    semantics exactly: every virtual-time charge is issued individually,
    in the interpreter's order (float accumulation order matters), with
    the same deadline checks; scalar semantics reuse the interpreter's
    exact float discipline (Float.compare ordering, [<=]-min/max, the
    floor-through-int round trip); all non-hot intrinsics delegate to
    {!Interp.intrinsic} with the strand clock synchronized across the
    boundary. Instrumented (tape), sanitized, or fuel-limited contexts
    fall back to the interpreter entirely.

    {b Parallel runner.} A fork region that passes a static par-safety
    analysis runs its members as effect-handler fibers on the domain
    pool. Cross-member effects (atomic adds, cache stores) are deferred
    into per-member logs and replayed at each barrier in the exact order
    the interpreter's deterministic run-to-block scheduler would have
    executed the members, so gradients and virtual times stay
    bit-identical while the members themselves run on all cores. Regions
    that fail the analysis (allocation, tasking, MPI, nested forks,
    read/write cache conflicts) fall back to the sequential strand path,
    which is always correct. *)

open Parad_ir
open Parad_runtime
open Value

(* ---- runner state ---- *)

type mode = MSeq | MPar of Pool.t

(* The strand's virtual clock. A single-field all-float record is flat
   in the OCaml value model, so the per-op charge mutates it in place —
   a mutable float field in the mixed [thr] record would instead box a
   fresh float (and run the write barrier) on every instruction. *)
type clk = { mutable now : float }

(* Deadline mirror of the running Sim engine: the native charge path
   enforces the same virtual budget (bit-identical trip point) and the
   same amortized wall-clock watchdog as Sim.charge. *)
type dl = {
  vdl : float option;
  wall_stop : float option;
  wall_ms : float;
  mutable tick : int;
}

(* Per-member deferred state of a parallel fork region. *)
type mstate = {
  midx : int;
  mutable d_atomics : (Value.ptr * int * float) list;  (** reversed *)
  mutable d_csets : (int * int * Value.t) list;  (** reversed *)
  mutable remat : int;
      (** member-local rematerialization depth (snapshot of the shared
          [ctx.remat_depth] at region entry) *)
}

type eframe = {
  f : float array;
  i : int array;
  b : bool array;
  v : Value.t array;
  sl : int array;
      (** tape slots of the float registers (parallel to [f]) — sized only
          for functions compiled in taping mode, [[||]] otherwise *)
  mutable istack : Interp.frame list;
      (** synthetic interpreter view of the call stack (shares [v]) — what
          delegated intrinsics and the GC root walk see. Mutable so cached
          member frames can be re-pointed at the current call chain. *)
  mutable stack_allocs : Value.buffer list ref;
}

type thr = {
  ctx : Interp.ctx;
  fcache : (int, eframe array) Hashtbl.t;
      (** parked member-frame sets by fork site, shared by every strand of
          the run (all strands of a run that execute forks live on one OS
          thread) *)
  cost : Cost_model.t;
  st : Stats.t;
  mode : mode;
  clock : clk;  (** never shared between strands: copies get fresh cells *)
  mutable socket : int;
  mutable team : (int * int) option;
  mutable defer : mstate option;  (** [Some _] inside a parallel member *)
  dl : dl option;
  mutable retv : Value.t;  (** return-value hand-off slot *)
  mutable rets : int;  (** return-value tape-slot hand-off (taping mode) *)
  mutable yb : bool;  (** while-condition hand-off slot *)
}


type status = Next | Ret | Yld

type code = thr -> eframe -> status
type sc = thr -> eframe -> unit

type cfun = {
  fn : Func.t;
  file : int array;  (** var id -> register file (0=f 1=i 2=b 3=v) *)
  idx : int array;  (** var id -> slot in its file *)
  nf : int;
  ni : int;
  nb : int;
  nv : int;
  tp : bool;  (** compiled in taping mode: frames carry tape slots *)
  mutable code : code;
}

(* Par-safety summary of a function body or fork region (see the
   analysis further down). *)
type pflags = {
  mutable a_cset : bool;
  mutable a_cget : bool;
  mutable a_remat : bool;
  mutable a_barrier : bool;
}

type prepared = {
  prog : Prog.t;
  funcs : (string, cfun) Hashtbl.t;
  tfuncs : (string, cfun) Hashtbl.t;
      (** taping-mode compilations, kept apart so instrumented runs never
          slow the plain closures with runtime instrument checks *)
  fsafe : (string, pflags option) Hashtbl.t;
      (** function par-safety memo; [None] = unsafe *)
  plk : Mutex.t;
      (** guards [funcs]/[tfuncs]/[fsafe]: call sites resolve lazily,
          possibly from pool domains *)
}

let prepare prog =
  {
    prog;
    funcs = Hashtbl.create 16;
    tfuncs = Hashtbl.create 16;
    fsafe = Hashtbl.create 16;
    plk = Mutex.create ();
  }

(* ---- clock / deadline ---- *)

let wall_mask = 4095

let check_dl t (d : dl) =
  (match d.vdl with
  | Some lim when t.clock.now > lim ->
    raise
      (Sim.Deadline_exceeded { de_at = t.clock.now; de_limit = lim; de_wall = false })
  | _ -> ());
  match d.wall_stop with
  | Some stop ->
    d.tick <- d.tick + 1;
    if d.tick land wall_mask = 0 && Unix.gettimeofday () > stop then
      raise
        (Sim.Deadline_exceeded
           { de_at = t.clock.now; de_limit = d.wall_ms; de_wall = true })
  | None -> ()

let charge t c =
  t.clock.now <- t.clock.now +. c;
  match t.dl with None -> () | Some d -> check_dl t d

(* Trip the virtual deadline at a clock value set by a scheduling step
   (barrier release, join) — the interpreter's scheduler checks at every
   context switch, so the engine must fail at the same clock. *)
let check_sched t =
  match t.dl with
  | Some { vdl = Some lim; _ } when t.clock.now > lim ->
    raise
      (Sim.Deadline_exceeded { de_at = t.clock.now; de_limit = lim; de_wall = false })
  | _ -> ()

(* Synchronize the engine clock with the current Sim strand around any
   interaction with the cooperative scheduler (delegated intrinsics,
   fork/spawn/sync/barrier). *)
let sync_out t = (Sim.self ()).Sim.clock <- t.clock.now
let sync_in t = t.clock.now <- (Sim.self ()).Sim.clock

let get_remat t =
  match t.defer with
  | Some m -> m.remat
  | None -> t.ctx.Interp.remat_depth

let charge_mem t (buf : Value.buffer) =
  let c = t.cost in
  let mult =
    if buf.socket <> t.socket then c.Cost_model.numa_remote_mult else 1.0
  in
  charge t (c.Cost_model.mem *. mult)

(* [n] cells of traffic in one charge (the k-wide adjoint intrinsics) *)
let charge_mem_n t (buf : Value.buffer) n =
  let c = t.cost in
  let mult =
    if buf.socket <> t.socket then c.Cost_model.numa_remote_mult else 1.0
  in
  charge t (c.Cost_model.mem *. mult *. float_of_int n)

let check_rank t (buf : Value.buffer) =
  if buf.rank <> t.ctx.Interp.rank then
    error "cross-rank memory access: buffer of rank %d touched by rank %d"
      buf.rank t.ctx.Interp.rank

(* ---- taping-mode (instrument) bridge ----

   Taped closures are compiled into a separate function table and only
   ever run under an instrumented context, so the hook lookup cannot fail
   on well-formed entries. [Interp.instrument.record] charges
   [tape_record] through the Sim strand clock, so the engine clock is
   bridged across every record call. *)

let tape_ins t =
  match t.ctx.Interp.instrument with
  | Some i -> i
  | None -> error "engine: taped code run without instrumentation"

let record1 t s1 p1 =
  let ins = tape_ins t in
  sync_out t;
  let s = ins.Interp.record [ s1, p1 ] in
  sync_in t;
  s

let record2 t s1 p1 s2 p2 =
  let ins = tape_ins t in
  sync_out t;
  let s = ins.Interp.record [ s1, p1; s2, p2 ] in
  sync_in t;
  s

let tape_buf_slots t (buf : Value.buffer) = (tape_ins t).Interp.buf_slots buf

(* Replicas of the interpreter's SDC hooks with [t.clock.now] standing in for
   [Sim.now ()] (identical by the engine's charge discipline). *)
let eng_apply_flips t =
  match t.ctx.Interp.faults with
  | Some fs
    when fs.Faults.flips_left <> [] && Cache_rt.has_sealed t.ctx.Interp.cache
    -> (
    match Faults.flip_gate fs ~rank:t.ctx.Interp.rank ~now:t.clock.now with
    | Some (cell, bit) -> (
      match Cache_rt.flip t.ctx.Interp.cache ~cell ~bit with
      | Some _ -> t.st.Stats.sdc_injected <- t.st.Stats.sdc_injected + 1
      | None -> ())
    | None -> ())
  | _ -> ()

let eng_corrupt_region t ~cache_id =
  t.st.Stats.sdc_detected <- t.st.Stats.sdc_detected + 1;
  raise
    (Checkpoint.Corrupt_region
       { cr_rank = t.ctx.Interp.rank; cr_cache = cache_id; cr_at = t.clock.now })

(* ---- frames ---- *)

let new_eframe cf caller_istack =
  let v = Array.make (max cf.nv 1) VUnit in
  {
    f = Array.make (max cf.nf 1) 0.0;
    i = Array.make (max cf.ni 1) 0;
    b = Array.make (max cf.nb 1) false;
    v;
    sl = (if cf.tp then Array.make (max cf.nf 1) 0 else [||]);
    istack = { Interp.vals = v; slots = None } :: caller_istack;
    stack_allocs = ref [];
  }

(* Fork-child frame: a copy of every register file (the interpreter copies
   the whole frame into each member), sharing the caller's stack-alloc
   list and the tail of the synthetic interpreter stack. *)
let copy_eframe fr =
  let v = Array.copy fr.v in
  {
    f = Array.copy fr.f;
    i = Array.copy fr.i;
    b = Array.copy fr.b;
    v;
    sl = Array.copy fr.sl;
    istack =
      { Interp.vals = v; slots = None }
      :: (match fr.istack with [] -> [] | _ :: tl -> tl);
    stack_allocs = fr.stack_allocs;
  }

(* ---- scalar semantics (identical to the interpreter's) ---- *)

let fmin a b = if (a : float) <= b then a else b
let fmax a b = if (a : float) >= b then a else b

(* ---- deferred-effect replay (parallel members) ---- *)

(* Replay one member's deferred logs into the shared state, in program
   order. Invoked only while no member is executing (barrier rendezvous
   or region completion), in the interpreter's member execution order, so
   float accumulation order is bit-identical to the sequential run. *)
let replay_member t ~fname (m : mstate) =
  List.iter
    (fun (ptr, idx, x) ->
      let i = Memory.check_access ~who:fname ptr idx in
      match ptr.buf.data with
      | FCells a -> a.(i) <- a.(i) +. x
      | VCells _ ->
        let old = Value.to_float (Memory.load ~who:fname ptr idx) in
        Memory.store ~who:fname ptr idx (VFloat (old +. x)))
    (List.rev m.d_atomics);
  m.d_atomics <- [];
  let cache = t.ctx.Interp.cache in
  List.iter
    (fun (id, idx, v) ->
      let before = Cache_rt.cells_written cache in
      Cache_rt.set cache ~id ~idx v;
      if Cache_rt.cells_written cache > before then begin
        t.st.Stats.cache_cells <- t.st.Stats.cache_cells + 1;
        let peak = Cache_rt.peak_cells cache in
        if peak > t.st.Stats.cache_peak then t.st.Stats.cache_peak <- peak
      end)
    (List.rev m.d_csets);
  m.d_csets <- []

(* ---- parallel fork teams ---- *)

type _ Effect.t += Mbar : unit Effect.t

type pteam = {
  pwidth : int;
  pfname : string;  (** enclosing function, for memory-access provenance *)
  plock : Mutex.t;
  mutable pord : int array;
      (** the interpreter's member execution order for the current epoch:
          run-to-block FIFO scheduling runs members sequentially, and each
          barrier release permutes the order to [last-parked .. first-parked,
          last-arriver] — i.e. ord' = rev ord[0..w-2] @ [ord[w-1]] *)
  mutable parrived : int;
  mutable pparked : (int * (unit, unit) Effect.Deep.continuation) list;
  pclocks : float array;
  pmembers : mstate array;
  mutable pthrs : thr array;
  pparent : thr;  (** the forking thread — shared stats and cost live here *)
  mutable premaining : int;
  mutable pmax_finish : float;
  mutable pfailed : exn option;
  pdone : bool Atomic.t;
  ppool : Pool.t;
}

let next_ord ord =
  let w = Array.length ord in
  Array.init w (fun j -> if j = w - 1 then ord.(w - 1) else ord.(w - 2 - j))

let team_fail team ex =
  match team.pfailed with
  | None -> team.pfailed <- Some ex
  | Some _ -> ()

(* Member completion (normal or failed): record the finish clock, detect
   the all-remaining-parked deadlock, and release the team when the last
   member is done. Never called with the lock held. *)
let finish_pmember team (t : thr) midx (failure : exn option) =
  Mutex.lock team.plock;
  team.pclocks.(midx) <- t.clock.now;
  if t.clock.now > team.pmax_finish then team.pmax_finish <- t.clock.now;
  (match failure with Some ex -> team_fail team ex | None -> ());
  team.premaining <- team.premaining - 1;
  let parked_to_kill =
    if
      (failure <> None && team.pparked <> [])
      || (team.premaining > 0 && team.parrived = team.premaining)
    then begin
      (* failure, or every live member is parked at a barrier that can no
         longer fill: unwind them (the interpreter's scheduler would
         report a deadlock here) *)
      if failure = None then
        team_fail team
          (Sim.Deadlock
             {
               d_live = team.premaining;
               d_blocked = [];
               d_note =
                 "engine: fork members blocked at a team barrier that can \
                  never fill";
             });
      let p = team.pparked in
      team.pparked <- [];
      team.parrived <- 0;
      p
    end
    else []
  in
  let all_done = team.premaining = 0 in
  Mutex.unlock team.plock;
  List.iter
    (fun (_, k) ->
      try Effect.Deep.discontinue k Exit with _ -> ())
    parked_to_kill;
  if all_done then Atomic.set team.pdone true

(* Run one member body under the barrier effect handler. [body] returns
   unit or raises; barriers inside it perform {!Mbar}. *)
let run_pmember team mt midx (body : unit -> unit) () =
  Effect.Deep.match_with body ()
    {
      retc = (fun () -> finish_pmember team mt midx None);
      exnc =
        (fun ex ->
          (* [Exit] is the unwind signal of {!finish_pmember}'s kill path:
             the real failure is already recorded in [pfailed] *)
          finish_pmember team mt midx
            (match ex with Exit -> None | _ -> Some ex));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Mbar ->
            Some
              (fun (k : (a, _) Effect.Deep.continuation) ->
                Mutex.lock team.plock;
                team.pclocks.(midx) <- mt.clock.now;
                team.parrived <- team.parrived + 1;
                if team.parrived < team.pwidth then begin
                  team.pparked <- (midx, k) :: team.pparked;
                  Mutex.unlock team.plock
                end
                else begin
                  (* last arriver: replay this epoch's deferred effects in
                     the interpreter's member order, advance every clock to
                     the common release time, rotate the order, resume *)
                  let parent = team.pparent in
                  Array.iter
                    (fun tid ->
                      replay_member parent ~fname:team.pfname
                        team.pmembers.(tid))
                    team.pord;
                  let bmax =
                    Array.fold_left Float.max 0.0 team.pclocks
                  in
                  let release =
                    bmax
                    +. Cost_model.barrier_cost parent.cost
                         ~width:team.pwidth
                  in
                  Array.iteri
                    (fun j th ->
                      th.clock.now <- release;
                      team.pclocks.(j) <- release)
                    team.pthrs;
                  team.pord <- next_ord team.pord;
                  team.parrived <- 0;
                  let parked = team.pparked in
                  team.pparked <- [];
                  let tripped =
                    match parent.dl with
                    | Some { vdl = Some lim; _ } when release > lim ->
                      Some
                        (Sim.Deadline_exceeded
                           {
                             de_at = release;
                             de_limit = lim;
                             de_wall = false;
                           })
                    | _ -> None
                  in
                  (match tripped with
                  | Some ex -> team_fail team ex
                  | None -> ());
                  Mutex.unlock team.plock;
                  match tripped with
                  | Some _ ->
                    List.iter
                      (fun (_, kj) ->
                        try Effect.Deep.discontinue kj Exit with _ -> ())
                      parked;
                    Effect.Deep.discontinue k Exit
                  | None ->
                    List.iter
                      (fun (_, kj) ->
                        Pool.submit team.ppool (fun () ->
                            Effect.Deep.continue kj ()))
                      parked;
                    Effect.Deep.continue k ()
                end)
          | _ -> None);
    }

(* ---- par-safety analysis ----

   A fork region may run on the domain pool only if its members cannot
   interact through anything but (a) data-race-free memory (the program's
   own obligation, §VI-D), (b) atomic adds, and (c) cache stores — the
   last two deferred and replayed deterministically. Everything else
   (allocation, tasking, MPI/collective intrinsics, checkpoints, nested
   forks) falls back to the sequential strand path. *)

exception Par_unsafe

let merge_pflags ~into (s : pflags) =
  into.a_cset <- into.a_cset || s.a_cset;
  into.a_cget <- into.a_cget || s.a_cget;
  into.a_remat <- into.a_remat || s.a_remat;
  into.a_barrier <- into.a_barrier || s.a_barrier

let rec scan_par prep acc (il : Instr.t list) = List.iter (scan_instr prep acc) il

and scan_instr prep acc (i : Instr.t) =
  match i with
  | Instr.Alloc _ | Instr.Free _ | Instr.Spawn _ | Instr.Sync _
  | Instr.Fork _ -> raise Par_unsafe
  | Instr.Call (_, name, _) when String.contains name '.' -> (
    match name with
    | "omp.max_threads" | "mpi.rank" | "mpi.size" | "san.mark_private" -> ()
    | "parad.remat_begin" | "parad.remat_end" -> acc.a_remat <- true
    | "cache.set" -> acc.a_cset <- true
    | "cache.get" -> acc.a_cget <- true
    | _ -> raise Par_unsafe)
  | Instr.Call (_, name, _) -> (
    match fn_pflags prep name with
    | Some s -> merge_pflags ~into:acc s
    | None -> raise Par_unsafe)
  | Instr.Barrier -> acc.a_barrier <- true
  | Instr.Workshare { nowait; _ } ->
    if not nowait then acc.a_barrier <- true;
    List.iter (fun r -> scan_par prep acc r.Instr.body) (Instr.regions i)
  | _ -> List.iter (fun r -> scan_par prep acc r.Instr.body) (Instr.regions i)

and fn_pflags prep name : pflags option =
  match Hashtbl.find_opt prep.fsafe name with
  | Some s -> s
  | None ->
    (* insert the pessimistic answer first: recursion = unsafe *)
    Hashtbl.replace prep.fsafe name None;
    let r =
      match Prog.find prep.prog name with
      | None -> None
      | Some fn -> (
        let acc =
          { a_cset = false; a_cget = false; a_remat = false; a_barrier = false }
        in
        try
          scan_par prep acc fn.Func.body;
          Some acc
        with Par_unsafe -> None)
    in
    Hashtbl.replace prep.fsafe name r;
    r

let fork_par_safe prep (r : Instr.region) =
  let acc =
    { a_cset = false; a_cget = false; a_remat = false; a_barrier = false }
  in
  match scan_par prep acc r.Instr.body with
  | () ->
    (* deferred cache stores are invisible to same-epoch cache reads, and
       member-local remat depth is only exact within one epoch *)
    (not (acc.a_cset && acc.a_cget)) && not (acc.a_remat && acc.a_barrier)
  | exception Par_unsafe -> false

(* ---- lowering: slot assignment ---- *)

let make_cfun ~taped (fn : Func.t) =
  let n = max fn.Func.var_count 1 in
  let file = Array.make n 3 in
  let idx = Array.make n 0 in
  let seen = Array.make n false in
  let nf = ref 0 and ni = ref 0 and nb = ref 0 and nv = ref 0 in
  let place v =
    let id = Var.id v in
    if not seen.(id) then begin
      seen.(id) <- true;
      let fl, cell =
        match Var.ty v with
        | Ty.Float -> 0, nf
        | Ty.Int -> 1, ni
        | Ty.Bool -> 2, nb
        | Ty.Unit | Ty.Ptr _ -> 3, nv
      in
      file.(id) <- fl;
      idx.(id) <- !cell;
      incr cell
    end
  in
  List.iter place fn.Func.params;
  Instr.fold_instrs
    (fun () i ->
      List.iter place (Instr.defs i);
      List.iter place (Instr.uses i);
      (match i with
      | Instr.For { iv; _ } | Instr.Workshare { iv; _ } -> place iv
      | Instr.Fork { tid; _ } -> place tid
      | _ -> ());
      List.iter
        (fun r -> List.iter place r.Instr.params)
        (Instr.regions i))
    () fn.Func.body;
  {
    fn;
    file;
    idx;
    nf = !nf;
    ni = !ni;
    nb = !nb;
    nv = !nv;
    tp = taped;
    code = (fun _ _ -> error "engine: function compiled without a body");
  }

(* ---- member frames ----

   The interpreter enters a fork member by copying the entire enclosing
   frame — O(function vars) per member, which dwarfs the members' real
   work on wide teams. The engine's member frames instead hold compact
   slots for exactly the variables the body touches, and only the body's
   *live-in* variables (reads not dominated by a member-local write on
   every path) are copied from the parent; everything else is
   write-before-read scratch whose initial contents are unobservable.
   That same unobservability lets frames be recycled: each fork site
   parks its member frames in [thr.fcache] between executions, so a
   steady-state fork costs O(live-in) per member instead of
   O(function). *)

let next_fsite = Atomic.make 0

(* Forward dominance scan: walking the body in program order, a use of a
   variable with no write textually before it on the current path reads
   the parent's value in the first iteration. Region defs never escape
   their region (loops may run zero times, if-branches may not be taken),
   which only over-approximates the live-in set — harmless. *)
let region_live_in n (r : Instr.region) entry_defs =
  let live = Array.make n false in
  let w0 = Array.make n false in
  let def w v = w.(Var.id v) <- true in
  let use w v =
    let id = Var.id v in
    if not w.(id) then live.(id) <- true
  in
  List.iter (def w0) entry_defs;
  List.iter (def w0) r.Instr.params;
  let rec scan w il =
    List.iter
      (fun (i : Instr.t) ->
        List.iter (use w) (Instr.uses i);
        (match i with
        | Instr.If (_, _, tr, er) ->
          sub w tr;
          sub w er
        | Instr.For { iv; body; _ } | Instr.Workshare { iv; body; _ } ->
          let wb = Array.copy w in
          def wb iv;
          List.iter (def wb) body.Instr.params;
          scan wb body.Instr.body
        | Instr.While { cond; body } ->
          sub w cond;
          sub w body
        | Instr.Fork { tid; body; _ } ->
          let wb = Array.copy w in
          def wb tid;
          List.iter (def wb) body.Instr.params;
          scan wb body.Instr.body
        | _ -> ());
        List.iter (def w) (Instr.defs i))
      il
  and sub w (rg : Instr.region) =
    let wb = Array.copy w in
    List.iter (def wb) rg.Instr.params;
    scan wb rg.Instr.body
  in
  scan (Array.copy w0) r.Instr.body;
  live

let make_body_frame (parent : cfun) (r : Instr.region) ~entry_defs =
  let n = Array.length parent.file in
  let file = Array.make n 3 in
  let idx = Array.make n 0 in
  let seen = Array.make n false in
  let nf = ref 0 and ni = ref 0 and nb = ref 0 and nv = ref 0 in
  let place v =
    let id = Var.id v in
    if not seen.(id) then begin
      seen.(id) <- true;
      let fl, cell =
        match Var.ty v with
        | Ty.Float -> 0, nf
        | Ty.Int -> 1, ni
        | Ty.Bool -> 2, nb
        | Ty.Unit | Ty.Ptr _ -> 3, nv
      in
      file.(id) <- fl;
      idx.(id) <- !cell;
      incr cell
    end
  in
  List.iter place entry_defs;
  List.iter place r.Instr.params;
  Instr.fold_instrs
    (fun () i ->
      List.iter place (Instr.defs i);
      List.iter place (Instr.uses i);
      (match i with
      | Instr.For { iv; _ } | Instr.Workshare { iv; _ } -> place iv
      | Instr.Fork { tid; _ } -> place tid
      | _ -> ());
      List.iter (fun rg -> List.iter place rg.Instr.params) (Instr.regions i))
    () r.Instr.body;
  let sub =
    {
      fn = parent.fn;
      file;
      idx;
      nf = !nf;
      ni = !ni;
      nb = !nb;
      nv = !nv;
      tp = false;
      code = (fun _ _ -> error "engine: member frame has no code");
    }
  in
  (* parent-slot -> member-slot copy pairs, packed [src; dst; ...],
     live-in variables only *)
  let live = region_live_in n r entry_defs in
  let mf = ref [] and mi = ref [] and mb = ref [] and mv = ref [] in
  for id = 0 to n - 1 do
    if seen.(id) && live.(id) then begin
      let moves =
        match file.(id) with 0 -> mf | 1 -> mi | 2 -> mb | _ -> mv
      in
      moves := idx.(id) :: parent.idx.(id) :: !moves
    end
  done;
  let pack l = Array.of_list (List.rev !l) in
  let cf = pack mf and ci = pack mi and cb = pack mb and cv = pack mv in
  let site = Atomic.fetch_and_add next_fsite 1 in
  let fresh () =
    let v = Array.make (max sub.nv 1) VUnit in
    {
      f = Array.make (max sub.nf 1) 0.0;
      i = Array.make (max sub.ni 1) 0;
      b = Array.make (max sub.nb 1) false;
      v;
      sl = [||];
      istack = [ { Interp.vals = v; slots = None } ];
      stack_allocs = ref [];
    }
  in
  (* Point a (possibly recycled) member frame at the current execution:
     fresh call chain, current stack-alloc list, live-in values. *)
  let refresh (m : eframe) (fr : eframe) =
    (match m.istack with
    | h :: _ ->
      m.istack <-
        (h :: (match fr.istack with [] -> [] | _ :: tl -> tl))
    | [] -> assert false);
    m.stack_allocs <- fr.stack_allocs;
    let k = Array.length cf in
    let j = ref 0 in
    while !j < k do
      m.f.(cf.(!j + 1)) <- fr.f.(cf.(!j));
      j := !j + 2
    done;
    let k = Array.length ci in
    let j = ref 0 in
    while !j < k do
      m.i.(ci.(!j + 1)) <- fr.i.(ci.(!j));
      j := !j + 2
    done;
    let k = Array.length cb in
    let j = ref 0 in
    while !j < k do
      m.b.(cb.(!j + 1)) <- fr.b.(cb.(!j));
      j := !j + 2
    done;
    let k = Array.length cv in
    let j = ref 0 in
    while !j < k do
      m.v.(cv.(!j + 1)) <- fr.v.(cv.(!j));
      j := !j + 2
    done
  in
  let checkout (t : thr) (fr : eframe) width =
    let frames =
      match Hashtbl.find_opt t.fcache site with
      | Some a when Array.length a >= width ->
        Hashtbl.remove t.fcache site;
        a
      | _ -> Array.init width (fun _ -> fresh ())
    in
    for m = 0 to width - 1 do
      refresh frames.(m) fr
    done;
    frames
  in
  let checkin (t : thr) frames = Hashtbl.replace t.fcache site frames in
  sub, checkout, checkin

(* ---- compile-time accessors ---- *)

type ydest = YNone | YVars of Var.t list | YCond

type env = {
  prep : prepared;
  cf : cfun;
  fname : string;
  ydest : ydest;
  taped : bool;  (** compiling for an instrumented (tape-baseline) run *)
}

let slot env v = env.cf.idx.(Var.id v)

(* Boxed read of any variable. *)
let reader env v : eframe -> Value.t =
  let s = slot env v in
  match Var.ty v with
  | Ty.Float -> fun fr -> VFloat fr.f.(s)
  | Ty.Int -> fun fr -> VInt fr.i.(s)
  | Ty.Bool -> fun fr -> VBool fr.b.(s)
  | Ty.Unit | Ty.Ptr _ -> fun fr -> fr.v.(s)

(* Boxed write into a typed slot. Conversions raise the interpreter's
   error messages; on well-typed IR they never fire. *)
let writer env v : eframe -> Value.t -> unit =
  let s = slot env v in
  match Var.ty v with
  | Ty.Float -> fun fr x -> fr.f.(s) <- Value.to_float x
  | Ty.Int -> fun fr x -> fr.i.(s) <- Value.to_int x
  | Ty.Bool -> fun fr x -> fr.b.(s) <- Value.to_bool x
  | Ty.Unit | Ty.Ptr _ -> fun fr x -> fr.v.(s) <- x

let ird env v : eframe -> int =
  let s = slot env v in
  match Var.ty v with
  | Ty.Int -> fun fr -> fr.i.(s)
  | _ ->
    let r = reader env v in
    fun fr -> Value.to_int (r fr)

let frd env v : eframe -> float =
  let s = slot env v in
  match Var.ty v with
  | Ty.Float -> fun fr -> fr.f.(s)
  | _ ->
    let r = reader env v in
    fun fr -> Value.to_float (r fr)

let brd env v : eframe -> bool =
  let s = slot env v in
  match Var.ty v with
  | Ty.Bool -> fun fr -> fr.b.(s)
  | _ ->
    let r = reader env v in
    fun fr -> Value.to_bool (r fr)

(* Raw slot indices for the k-wide adjoint closures: the hot fused
   reverse-statement ops read their ~18 arguments straight out of the
   typed frame arrays (two loads each) instead of composing generic
   reader closures (a [caml_apply] per argument, and a boxed float per
   float read). The argument types are fixed by the reverse engine's
   emission; anything else is malformed IR. *)
let pslot env v =
  match Var.ty v with
  | Ty.Ptr _ -> slot env v
  | t -> error "adjoint intrinsic: pointer argument has type %a" Ty.pp t

let islot env v =
  match Var.ty v with
  | Ty.Int -> slot env v
  | t -> error "adjoint intrinsic: int argument has type %a" Ty.pp t

let fslot env v =
  match Var.ty v with
  | Ty.Float -> slot env v
  | t -> error "adjoint intrinsic: float argument has type %a" Ty.pp t

let bslot env v =
  match Var.ty v with
  | Ty.Bool -> slot env v
  | t -> error "adjoint intrinsic: bool argument has type %a" Ty.pp t

(* Same-frame move [src -> dst], register-to-register when the types
   agree, boxed otherwise. In taping mode a float move also carries the
   source's tape slot (the interpreter's [Select]/yield slot copies); a
   cross-type write into a float leaves the passive slot. *)
let xmove env src dst : eframe -> unit =
  if Ty.equal (Var.ty src) (Var.ty dst) then begin
    let s = slot env src and d = slot env dst in
    match Var.ty dst with
    | Ty.Float ->
      if env.taped then fun fr ->
        fr.f.(d) <- fr.f.(s);
        fr.sl.(d) <- fr.sl.(s)
      else fun fr -> fr.f.(d) <- fr.f.(s)
    | Ty.Int -> fun fr -> fr.i.(d) <- fr.i.(s)
    | Ty.Bool -> fun fr -> fr.b.(d) <- fr.b.(s)
    | Ty.Unit | Ty.Ptr _ -> fun fr -> fr.v.(d) <- fr.v.(s)
  end
  else begin
    let r = reader env src and w = writer env dst in
    match Var.ty dst with
    | Ty.Float when env.taped ->
      let d = slot env dst in
      fun fr ->
        w fr (r fr);
        fr.sl.(d) <- 0
    | _ -> fun fr -> w fr (r fr)
  end

(* Loop-variable write (always an int in well-formed IR). *)
let ivw env v : eframe -> int -> unit =
  let s = slot env v in
  match Var.ty v with
  | Ty.Int -> fun fr n -> fr.i.(s) <- n
  | _ ->
    let w = writer env v in
    fun fr n -> w fr (VInt n)

(* Caller-frame -> callee-frame argument move (types already checked).
   Taped calls pass the argument's tape slot along with its value. *)
let arg_move env (ccf : cfun) (p : Var.t) (a : Var.t) :
    eframe -> eframe -> unit =
  let s = env.cf.idx.(Var.id a) and d = ccf.idx.(Var.id p) in
  match Var.ty p with
  | Ty.Float ->
    if env.taped then fun src dst ->
      dst.f.(d) <- src.f.(s);
      dst.sl.(d) <- src.sl.(s)
    else fun src dst -> dst.f.(d) <- src.f.(s)
  | Ty.Int -> fun src dst -> dst.i.(d) <- src.i.(s)
  | Ty.Bool -> fun src dst -> dst.b.(d) <- src.b.(s)
  | Ty.Unit | Ty.Ptr _ -> fun src dst -> dst.v.(d) <- src.v.(s)

(* Boxed write of argument [a] into param [p]'s slot of [cf]'s frame. *)
let write_boxed (cf : cfun) (p : Var.t) fr (a : Value.t) =
  let d = cf.idx.(Var.id p) in
  match Var.ty p with
  | Ty.Float -> fr.f.(d) <- Value.to_float a
  | Ty.Int -> fr.i.(d) <- Value.to_int a
  | Ty.Bool -> fr.b.(d) <- Value.to_bool a
  | Ty.Unit | Ty.Ptr _ -> fr.v.(d) <- a

(* ---- barriers and parallel regions (runtime) ---- *)

let do_barrier t =
  match t.defer with
  | Some _ ->
    (* Sim's handler counts one barrier per performing member *)
    t.st.Stats.barriers <- t.st.Stats.barriers + 1;
    Effect.perform Mbar
  | None ->
    sync_out t;
    Sim.barrier ();
    sync_in t

let par_fork_run t ~pool ~width ~socket_of ~tidw ~nthw ~fname ~frames
    body_code =
  t.st.Stats.forks <- t.st.Stats.forks + 1;
  let start = t.clock.now +. Cost_model.fork_cost t.cost ~width in
  let members =
    Array.init width (fun m ->
        {
          midx = m;
          d_atomics = [];
          d_csets = [];
          remat = t.ctx.Interp.remat_depth;
        })
  in
  let team =
    {
      pwidth = width;
      pfname = fname;
      plock = Mutex.create ();
      pord = Array.init width Fun.id;
      parrived = 0;
      pparked = [];
      pclocks = Array.make width start;
      pmembers = members;
      pthrs = [||];
      pparent = t;
      premaining = width;
      pmax_finish = start;
      pfailed = None;
      pdone = Atomic.make false;
      ppool = pool;
    }
  in
  let thrs =
    Array.init width (fun m ->
        {
          t with
          clock = { now = start };
          socket = socket_of m;
          team = Some (m, width);
          st = Stats.create ();
          defer = Some members.(m);
          dl = Option.map (fun d -> { d with tick = 0 }) t.dl;
        })
  in
  team.pthrs <- thrs;
  for m = 0 to width - 1 do
    let mt = thrs.(m) in
    let mfr = frames.(m) in
    tidw mfr m;
    nthw mfr width;
    let body () =
      match body_code mt mfr with
      | Next -> ()
      | Ret | Yld -> error "fork body may not return/yield"
    in
    Pool.submit pool (run_pmember team mt m body)
  done;
  Pool.help_while pool (fun () -> Atomic.get team.pdone);
  (* region complete: replay the last epoch's deferred effects in the
     interpreter's member order, fold the members' scratch counters into
     the run's stats, then join *)
  Array.iter (fun tid -> replay_member t ~fname members.(tid)) team.pord;
  Array.iter (fun mt -> Stats.merge ~into:t.st mt.st) thrs;
  (match team.pfailed with Some ex -> raise ex | None -> ());
  t.clock.now <- team.pmax_finish +. t.cost.Cost_model.join;
  check_sched t

(* ---- the compiler ---- *)

let rec compile_block env (body : Instr.t list) : code =
  let is_ctrl = function
    | Instr.If _ | Instr.For _ | Instr.While _ | Instr.Return _
    | Instr.Yield _ -> true
    | _ -> false
  in
  let flush acc seg =
    match seg with [] -> acc | _ -> `Seg (List.rev seg) :: acc
  in
  let rec chunks acc seg = function
    | [] -> List.rev (flush acc seg)
    | i :: rest when is_ctrl i -> chunks (`Ctl i :: flush acc seg) [] rest
    | i :: rest -> chunks acc (i :: seg) rest
  in
  let items =
    Array.of_list
      (List.map
         (function
           | `Seg l -> compile_segment env l
           | `Ctl i -> compile_ctrl env i)
         (chunks [] [] body))
  in
  match Array.length items with
  | 0 -> fun _ _ -> Next
  | 1 -> items.(0)
  | n ->
    fun t fr ->
      let rec go k =
        if k = n then Next
        else
          match items.(k) t fr with Next -> go (k + 1) | (Ret | Yld) as o -> o
      in
      go 0

(* A straight-line segment: every instruction always executes exactly
   once, so the per-instruction Stats counters are batched into one
   prologue (virtual-time charges stay per-op — float order matters). *)
and compile_segment env (l : Instr.t list) : code =
  let ops = Array.of_list (List.map (compile_straight env) l) in
  let n = Array.length ops in
  let count p = List.fold_left (fun k i -> if p i then k + 1 else k) 0 l in
  let nins = List.length l in
  let nfl =
    count (function
      | Instr.Bin (v, _, _, _) | Instr.Un (v, _, _) -> (
        match Var.ty v with Ty.Float -> true | _ -> false)
      | _ -> false)
  in
  let nld = count (function Instr.Load _ -> true | _ -> false) in
  let nst = count (function Instr.Store _ -> true | _ -> false) in
  let nat = count (function Instr.AtomicAdd _ -> true | _ -> false) in
  let nal = count (function Instr.Alloc _ -> true | _ -> false) in
  let nfre = count (function Instr.Free _ -> true | _ -> false) in
  fun t fr ->
    let s = t.st in
    s.Stats.instrs <- s.Stats.instrs + nins;
    if nfl > 0 then s.Stats.flops <- s.Stats.flops + nfl;
    if nld > 0 then s.Stats.loads <- s.Stats.loads + nld;
    if nst > 0 then s.Stats.stores <- s.Stats.stores + nst;
    if nat > 0 then s.Stats.atomics <- s.Stats.atomics + nat;
    if nal > 0 then s.Stats.allocs <- s.Stats.allocs + nal;
    if nfre > 0 then s.Stats.frees <- s.Stats.frees + nfre;
    for k = 0 to n - 1 do
      (Array.unsafe_get ops k) t fr
    done;
    Next

and compile_straight env (i : Instr.t) : sc =
  match i with
  | Instr.Const (v, k) -> (
    match k, Var.ty v with
    | Instr.Cfloat x, Ty.Float ->
      let d = slot env v in
      if env.taped then fun t fr ->
        charge t t.cost.Cost_model.arith;
        fr.f.(d) <- x;
        fr.sl.(d) <- 0
      else fun t fr ->
        charge t t.cost.Cost_model.arith;
        fr.f.(d) <- x
    | Instr.Cint x, Ty.Int ->
      let d = slot env v in
      fun t fr ->
        charge t t.cost.Cost_model.arith;
        fr.i.(d) <- x
    | Instr.Cbool x, Ty.Bool ->
      let d = slot env v in
      fun t fr ->
        charge t t.cost.Cost_model.arith;
        fr.b.(d) <- x
    | _ ->
      let w = writer env v in
      let x =
        match k with
        | Instr.Cunit -> VUnit
        | Instr.Cbool b -> VBool b
        | Instr.Cint n -> VInt n
        | Instr.Cfloat f -> VFloat f
        | Instr.Cnull ty -> VNull ty
      in
      fun t fr ->
        charge t t.cost.Cost_model.arith;
        w fr x)
  | Instr.Bin (v, op, a, b) -> (
    match Var.ty a, Var.ty b, Var.ty v with
    | Ty.Float, Ty.Float, Ty.Float ->
      if env.taped then compile_fbin_taped env v op a b
      else compile_fbin env v op a b
    | Ty.Int, Ty.Int, Ty.Int -> compile_ibin env v op a b
    | _ -> fun _ _ -> error "bad operands for %s" (Instr.binop_name op))
  | Instr.Cmp (v, op, a, b) -> compile_cmp env v op a b
  | Instr.Un (v, op, a) -> compile_un env v op a
  | Instr.Select (v, cond, a, b) ->
    let crd = brd env cond in
    let mva = xmove env a v
    and mvb = xmove env b v in
    fun t fr ->
      charge t t.cost.Cost_model.arith;
      if crd fr then mva fr else mvb fr
  | Instr.Alloc (v, elem, n, kind) ->
    let n_rd = ird env n in
    let w = writer env v in
    let site = env.fname ^ "/" ^ Var.name v in
    let gc_extra = match kind with Instr.Gc -> true | _ -> false in
    let on_stack = match kind with Instr.Stack -> true | _ -> false in
    fun t fr ->
      let size = n_rd fr in
      t.st.Stats.alloc_cells <- t.st.Stats.alloc_cells + size;
      charge t
        (t.cost.Cost_model.alloc_base
        +. (t.cost.Cost_model.alloc_per_cell *. float_of_int size)
        +. (if gc_extra then t.cost.Cost_model.gc_alloc_extra else 0.0));
      let buf =
        Memory.alloc t.ctx.Interp.mem ~elem ~size ~kind ~socket:t.socket ~site
      in
      if on_stack then fr.stack_allocs := buf :: !(fr.stack_allocs);
      w fr (VPtr { buf; off = 0 })
  | Instr.Free p ->
    let p_rd = reader env p in
    let fname = env.fname in
    fun t fr -> (
      charge t t.cost.Cost_model.free;
      match p_rd fr with
      | VPtr { buf; off = _ } -> Memory.free ~site:fname t.ctx.Interp.mem buf
      | VNull _ -> ()
      | _ -> error "free of non-pointer")
  | Instr.Load (v, p, ix) -> (
    let p_rd = reader env p
    and ix_rd = ird env ix in
    let fname = env.fname in
    match Var.ty v with
    | Ty.Float ->
      let d = slot env v in
      if env.taped then fun t fr ->
        let ptr = Value.to_ptr (p_rd fr) in
        check_rank t ptr.buf;
        charge_mem t ptr.buf;
        let i = Memory.check_access ~who:fname ptr (ix_rd fr) in
        fr.f.(d) <-
          (match ptr.buf.data with
          | FCells a -> Array.unsafe_get a i
          | VCells a -> Value.to_float a.(i));
        fr.sl.(d) <- (tape_buf_slots t ptr.buf).(i)
      else fun t fr ->
        let ptr = Value.to_ptr (p_rd fr) in
        check_rank t ptr.buf;
        charge_mem t ptr.buf;
        let i = Memory.check_access ~who:fname ptr (ix_rd fr) in
        fr.f.(d) <-
          (match ptr.buf.data with
          | FCells a -> Array.unsafe_get a i
          | VCells a -> Value.to_float a.(i))
    | _ ->
      let w = writer env v in
      fun t fr ->
        let ptr = Value.to_ptr (p_rd fr) in
        check_rank t ptr.buf;
        charge_mem t ptr.buf;
        w fr (Memory.load ~who:fname ptr (ix_rd fr)))
  | Instr.Store (p, ix, x) -> (
    let p_rd = reader env p
    and ix_rd = ird env ix in
    let fname = env.fname in
    match Var.ty x with
    | Ty.Float ->
      let x_rd = frd env x in
      if env.taped then begin
        let sx = slot env x in
        fun t fr ->
          let ptr = Value.to_ptr (p_rd fr) in
          check_rank t ptr.buf;
          charge_mem t ptr.buf;
          let idx = ix_rd fr in
          let i = Memory.check_access ~who:fname ptr idx in
          (match ptr.buf.data with
          | FCells a -> Array.unsafe_set a i (x_rd fr)
          | VCells _ -> Memory.store ~who:fname ptr idx (VFloat (x_rd fr)));
          (tape_buf_slots t ptr.buf).(i) <- fr.sl.(sx)
      end
      else fun t fr ->
        let ptr = Value.to_ptr (p_rd fr) in
        check_rank t ptr.buf;
        charge_mem t ptr.buf;
        let idx = ix_rd fr in
        let i = Memory.check_access ~who:fname ptr idx in
        (match ptr.buf.data with
        | FCells a -> Array.unsafe_set a i (x_rd fr)
        | VCells _ -> Memory.store ~who:fname ptr idx (VFloat (x_rd fr)))
    | _ ->
      let x_rd = reader env x in
      fun t fr ->
        let ptr = Value.to_ptr (p_rd fr) in
        check_rank t ptr.buf;
        charge_mem t ptr.buf;
        let idx = ix_rd fr in
        Memory.store ~who:fname ptr idx (x_rd fr))
  | Instr.Gep (v, p, ix) ->
    let p_rd = reader env p
    and ix_rd = ird env ix in
    let w = writer env v in
    fun t fr -> (
      charge t t.cost.Cost_model.arith;
      match p_rd fr with
      | VPtr ptr -> w fr (VPtr { ptr with off = ptr.off + ix_rd fr })
      | VNull _ -> error "gep on null pointer"
      | _ -> error "gep on non-pointer")
  | Instr.AtomicAdd (p, ix, x) when env.taped ->
    (* instrumented runs are fork-free, so there is never a deferred
       member log to append to *)
    let p_rd = reader env p
    and ix_rd = ird env ix
    and x_rd = frd env x in
    let sx = slot env x in
    let fname = env.fname in
    fun t fr ->
      charge t t.cost.Cost_model.atomic;
      let ptr = Value.to_ptr (p_rd fr) in
      check_rank t ptr.buf;
      let idx = ix_rd fr in
      let i = Memory.check_access ~who:fname ptr idx in
      (match ptr.buf.data with
      | FCells a -> Array.unsafe_set a i (Array.unsafe_get a i +. x_rd fr)
      | VCells _ ->
        let old = Value.to_float (Memory.load ~who:fname ptr idx) in
        Memory.store ~who:fname ptr idx (VFloat (old +. x_rd fr)));
      let bs = tape_buf_slots t ptr.buf in
      bs.(i) <- record2 t bs.(i) 1.0 fr.sl.(sx) 1.0
  | Instr.AtomicAdd (p, ix, x) ->
    let p_rd = reader env p
    and ix_rd = ird env ix
    and x_rd = frd env x in
    let fname = env.fname in
    fun t fr ->
      charge t t.cost.Cost_model.atomic;
      let ptr = Value.to_ptr (p_rd fr) in
      check_rank t ptr.buf;
      let idx = ix_rd fr in
      (match t.defer with
      | Some m ->
        (* bounds-check now (identical failure point), accumulate at the
           next replay point *)
        ignore (Memory.check_access ~who:fname ptr idx);
        m.d_atomics <- (ptr, idx, x_rd fr) :: m.d_atomics
      | None -> (
        let i = Memory.check_access ~who:fname ptr idx in
        match ptr.buf.data with
        | FCells a -> Array.unsafe_set a i (Array.unsafe_get a i +. x_rd fr)
        | VCells _ ->
          let old = Value.to_float (Memory.load ~who:fname ptr idx) in
          Memory.store ~who:fname ptr idx (VFloat (old +. x_rd fr))))
  | Instr.Call (v, name, args) ->
    if String.contains name '.' then begin
      let base = compile_intrinsic env v name args in
      (* the interpreter's intrinsics all return the passive slot *)
      match env.taped, Var.ty v with
      | true, Ty.Float ->
        let d = slot env v in
        fun t fr ->
          base t fr;
          fr.sl.(d) <- 0
      | _ -> base
    end
    else compile_ucall env v name args
  | Instr.Spawn _ when env.taped ->
    fun _ _ -> error "tape baseline cannot differentiate task parallelism"
  | Instr.Spawn (v, name, args) ->
    let readers = List.map (reader env) args in
    let w = writer env v in
    let prep = env.prep in
    fun t fr ->
      let vals = List.map (fun r -> r fr) readers in
      let id = t.ctx.Interp.next_task in
      t.ctx.Interp.next_task <- id + 1;
      let ret = ref VUnit in
      sync_out t;
      let task =
        Sim.spawn (fun () ->
            let s = Sim.self () in
            let ct =
              {
                t with
                clock = { now = s.Sim.clock };
                socket = s.Sim.socket;
                team = None;
                defer = None;
              }
            in
            ret := call_boxed prep ct name vals;
            sync_out ct)
      in
      sync_in t;
      Hashtbl.add t.ctx.Interp.tasks id (task, ret);
      w fr (VInt id)
  | Instr.Sync h ->
    let h_rd = ird env h in
    fun t fr -> (
      let id = h_rd fr in
      match Hashtbl.find_opt t.ctx.Interp.tasks id with
      | Some (task, _) ->
        sync_out t;
        Sim.sync task;
        sync_in t
      | None -> error "sync on unknown task %d" id)
  | Instr.Barrier ->
    fun t _fr -> (
      match t.team with
      | Some (_, w) when w > 1 -> do_barrier t
      | Some _ | None -> ())
  | Instr.Workshare { iv; lo; hi; body; schedule; nowait } ->
    let body_code = compile_block env body.Instr.body in
    let ivw = ivw env iv in
    let lo_rd = ird env lo
    and hi_rd = ird env hi in
    fun t fr ->
      let tid, width =
        match t.team with
        | Some tw -> tw
        | None -> error "workshare outside a fork"
      in
      let lo = lo_rd fr
      and hi = hi_rd fr in
      let len = max 0 (hi - lo) in
      (match schedule with
      | Instr.Chunked ->
        let stop = lo + (len * (tid + 1) / width) in
        let rec go i =
          if i < stop then begin
            charge t t.cost.Cost_model.arith;
            ivw fr i;
            match body_code t fr with Next -> go (i + 1) | Ret | Yld -> ()
          end
        in
        go (lo + (len * tid / width))
      | Instr.Cyclic ->
        let rec go i =
          if i < hi then begin
            charge t t.cost.Cost_model.arith;
            ivw fr i;
            match body_code t fr with Next -> go (i + width) | Ret | Yld -> ()
          end
        in
        go (lo + tid));
      if (not nowait) && width > 1 then do_barrier t
  | Instr.Fork _ when env.taped ->
    fun _ _ ->
      error "tape baseline cannot differentiate fork/join parallelism"
  | Instr.Fork { tid; nth; body } ->
    let uses_gc_roots =
      let found = ref false in
      Instr.fold_instrs
        (fun () i ->
          match i with
          | Instr.Call (_, "gc.collect", _) -> found := true
          | _ -> ())
        () body.Instr.body;
      !found
    in
    let benv, checkout, checkin =
      if uses_gc_roots then
        (* gc.collect walks every frame's value file for roots, so members
           must see the interpreter's full-copy frames; no recycling *)
        ( env,
          (fun _t fr width -> Array.init width (fun _ -> copy_eframe fr)),
          fun _t _frames -> () )
      else begin
        let subcf, checkout, checkin =
          make_body_frame env.cf body ~entry_defs:[ tid; nth ]
        in
        { env with cf = subcf }, checkout, checkin
      end
    in
    let body_code = compile_block benv body.Instr.body in
    let tidw = ivw benv tid in
    let nth_slot =
      match body.Instr.params with [ _; q ] -> Some (ivw benv q) | _ -> None
    in
    let nth_rd = ird env nth in
    let psafe = fork_par_safe env.prep body in
    let fname = env.fname in
    fun t fr ->
      let width =
        match nth_rd fr with
        | 0 -> t.ctx.Interp.cfg.Interp.nthreads
        | n when n > 0 -> n
        | n -> error "fork with negative width %d" n
      in
      let total = t.ctx.Interp.nranks * width in
      let socket_of tt =
        Cost_model.socket_of t.cost
          ~index:((t.ctx.Interp.rank * width) + tt)
          ~width:total
      in
      let nthw =
        match nth_slot with Some w -> w | None -> error "malformed fork body"
      in
      let pool =
        match t.mode with
        | MPar pool
          when width > 1 && psafe
               && (match t.defer with None -> true | Some _ -> false)
               && not t.ctx.Interp.cache.Cache_rt.protect -> Some pool
        | _ -> None
      in
      let frames = checkout t fr width in
      (match pool with
      | Some pool ->
        par_fork_run t ~pool ~width ~socket_of ~tidw ~nthw ~fname ~frames
          body_code;
        checkin t frames
      | None ->
        sync_out t;
        Sim.fork ~socket_of ~width (fun ~tid:tt ~width:w ->
            let cfr = frames.(tt) in
            tidw cfr tt;
            nthw cfr w;
            let s = Sim.self () in
            let ct =
              {
                t with
                clock = { now = s.Sim.clock };
                socket = s.Sim.socket;
                team = Some (tt, w);
                defer = None;
              }
            in
            (match body_code ct cfr with
            | Next -> ()
            | Ret | Yld -> error "fork body may not return/yield");
            sync_out ct);
        sync_in t;
        checkin t frames)
  | Instr.If _ | Instr.For _ | Instr.While _ | Instr.Return _ | Instr.Yield _
    -> assert false (* control; routed to compile_ctrl *)

and compile_fbin env v op a b : sc =
  let sa = slot env a
  and sb = slot env b
  and d = slot env v in
  match op with
  | Instr.Add ->
    fun t fr ->
      let r = fr.f.(sa) +. fr.f.(sb) in
      charge t t.cost.Cost_model.arith;
      fr.f.(d) <- r
  | Instr.Sub ->
    fun t fr ->
      let r = fr.f.(sa) -. fr.f.(sb) in
      charge t t.cost.Cost_model.arith;
      fr.f.(d) <- r
  | Instr.Mul ->
    fun t fr ->
      let r = fr.f.(sa) *. fr.f.(sb) in
      charge t t.cost.Cost_model.arith;
      fr.f.(d) <- r
  | Instr.Div ->
    fun t fr ->
      let r = fr.f.(sa) /. fr.f.(sb) in
      charge t t.cost.Cost_model.arith;
      fr.f.(d) <- r
  | Instr.Min ->
    fun t fr ->
      let r = fmin fr.f.(sa) fr.f.(sb) in
      charge t t.cost.Cost_model.arith;
      fr.f.(d) <- r
  | Instr.Max ->
    fun t fr ->
      let r = fmax fr.f.(sa) fr.f.(sb) in
      charge t t.cost.Cost_model.arith;
      fr.f.(d) <- r
  | Instr.Pow ->
    fun t fr ->
      let r = Float.pow fr.f.(sa) fr.f.(sb) in
      charge t
        (if get_remat t > 0 then t.cost.Cost_model.transcendental_remat
         else t.cost.Cost_model.transcendental);
      fr.f.(d) <- r
  | Instr.Rem -> fun _ _ -> error "bad operands for %s" (Instr.binop_name op)

(* Taping-mode float binop: same value math and charges as the untaped
   closure, plus one tape record carrying the operand partials. *)
and compile_fbin_taped env v op a b : sc =
  let sa = slot env a
  and sb = slot env b
  and d = slot env v in
  match op with
  | Instr.Rem -> fun _ _ -> error "bad operands for %s" (Instr.binop_name op)
  | Instr.Pow ->
    fun t fr ->
      let x = fr.f.(sa)
      and y = fr.f.(sb) in
      let r = Float.pow x y in
      charge t
        (if get_remat t > 0 then t.cost.Cost_model.transcendental_remat
         else t.cost.Cost_model.transcendental);
      fr.f.(d) <- r;
      let px, py = Interp.bin_partials op x y r in
      fr.sl.(d) <- record2 t fr.sl.(sa) px fr.sl.(sb) py
  | _ ->
    let eval : float -> float -> float =
      match op with
      | Instr.Add -> ( +. )
      | Instr.Sub -> ( -. )
      | Instr.Mul -> ( *. )
      | Instr.Div -> ( /. )
      | Instr.Min -> fmin
      | Instr.Max -> fmax
      | Instr.Pow | Instr.Rem -> assert false
    in
    fun t fr ->
      let x = fr.f.(sa)
      and y = fr.f.(sb) in
      let r = eval x y in
      charge t t.cost.Cost_model.arith;
      fr.f.(d) <- r;
      let px, py = Interp.bin_partials op x y r in
      fr.sl.(d) <- record2 t fr.sl.(sa) px fr.sl.(sb) py

and compile_ibin env v op a b : sc =
  let sa = slot env a
  and sb = slot env b
  and d = slot env v in
  match op with
  | Instr.Add ->
    fun t fr ->
      let r = fr.i.(sa) + fr.i.(sb) in
      charge t t.cost.Cost_model.arith;
      fr.i.(d) <- r
  | Instr.Sub ->
    fun t fr ->
      let r = fr.i.(sa) - fr.i.(sb) in
      charge t t.cost.Cost_model.arith;
      fr.i.(d) <- r
  | Instr.Mul ->
    fun t fr ->
      let r = fr.i.(sa) * fr.i.(sb) in
      charge t t.cost.Cost_model.arith;
      fr.i.(d) <- r
  | Instr.Div ->
    fun t fr ->
      let y = fr.i.(sb) in
      if y = 0 then error "integer division by zero";
      let r = fr.i.(sa) / y in
      charge t t.cost.Cost_model.arith;
      fr.i.(d) <- r
  | Instr.Rem ->
    fun t fr ->
      let y = fr.i.(sb) in
      if y = 0 then error "integer remainder by zero";
      let r = fr.i.(sa) mod y in
      charge t t.cost.Cost_model.arith;
      fr.i.(d) <- r
  | Instr.Min ->
    fun t fr ->
      let x = fr.i.(sa)
      and y = fr.i.(sb) in
      let r = if x <= y then x else y in
      charge t t.cost.Cost_model.arith;
      fr.i.(d) <- r
  | Instr.Max ->
    fun t fr ->
      let x = fr.i.(sa)
      and y = fr.i.(sb) in
      let r = if x >= y then x else y in
      charge t t.cost.Cost_model.arith;
      fr.i.(d) <- r
  | Instr.Pow -> fun _ _ -> error "bad operands for %s" (Instr.binop_name op)

and compile_cmp env v op a b : sc =
  let d = slot env v in
  match Var.ty a, Var.ty b with
  | Ty.Int, Ty.Int ->
    let sa = slot env a
    and sb = slot env b in
    let f : int -> int -> bool =
      match op with
      | Instr.Eq -> fun x y -> x = y
      | Instr.Ne -> fun x y -> x <> y
      | Instr.Lt -> fun x y -> x < y
      | Instr.Le -> fun x y -> x <= y
      | Instr.Gt -> fun x y -> x > y
      | Instr.Ge -> fun x y -> x >= y
    in
    fun t fr ->
      charge t t.cost.Cost_model.arith;
      fr.b.(d) <- f fr.i.(sa) fr.i.(sb)
  | Ty.Float, Ty.Float ->
    let sa = slot env a
    and sb = slot env b in
    (* Float.compare semantics (total order on NaN), as the interpreter *)
    let f : float -> float -> bool =
      match op with
      | Instr.Eq -> fun x y -> Float.compare x y = 0
      | Instr.Ne -> fun x y -> Float.compare x y <> 0
      | Instr.Lt -> fun x y -> Float.compare x y < 0
      | Instr.Le -> fun x y -> Float.compare x y <= 0
      | Instr.Gt -> fun x y -> Float.compare x y > 0
      | Instr.Ge -> fun x y -> Float.compare x y >= 0
    in
    fun t fr ->
      charge t t.cost.Cost_model.arith;
      fr.b.(d) <- f fr.f.(sa) fr.f.(sb)
  | Ty.Bool, Ty.Bool ->
    let sa = slot env a
    and sb = slot env b in
    let f : bool -> bool -> bool =
      match op with
      | Instr.Eq -> fun x y -> Bool.compare x y = 0
      | Instr.Ne -> fun x y -> Bool.compare x y <> 0
      | Instr.Lt -> fun x y -> Bool.compare x y < 0
      | Instr.Le -> fun x y -> Bool.compare x y <= 0
      | Instr.Gt -> fun x y -> Bool.compare x y > 0
      | Instr.Ge -> fun x y -> Bool.compare x y >= 0
    in
    fun t fr ->
      charge t t.cost.Cost_model.arith;
      fr.b.(d) <- f fr.b.(sa) fr.b.(sb)
  | _ -> fun _ _ -> error "bad operands for comparison"

and compile_un env v op a : sc =
  let bad : sc = fun _ _ -> error "bad operand for %s" (Instr.unop_name op) in
  match Var.ty a, Var.ty v with
  | Ty.Float, Ty.Float -> (
    let sa = slot env a
    and d = slot env v in
    let transc f : sc =
      fun t fr ->
       let r = f fr.f.(sa) in
       charge t
         (if get_remat t > 0 then t.cost.Cost_model.transcendental_remat
          else t.cost.Cost_model.transcendental);
       fr.f.(d) <- r
    in
    let plain f : sc =
      fun t fr ->
       let r = f fr.f.(sa) in
       charge t t.cost.Cost_model.arith;
       fr.f.(d) <- r
    in
    let transc_taped f : sc =
      fun t fr ->
       let x = fr.f.(sa) in
       let r = f x in
       charge t
         (if get_remat t > 0 then t.cost.Cost_model.transcendental_remat
          else t.cost.Cost_model.transcendental);
       fr.f.(d) <- r;
       fr.sl.(d) <- record1 t fr.sl.(sa) (Interp.un_partial op x r)
    in
    let plain_taped f : sc =
      fun t fr ->
       let x = fr.f.(sa) in
       let r = f x in
       charge t t.cost.Cost_model.arith;
       fr.f.(d) <- r;
       fr.sl.(d) <- record1 t fr.sl.(sa) (Interp.un_partial op x r)
    in
    let transc = if env.taped then transc_taped else transc
    and plain = if env.taped then plain_taped else plain in
    match op with
    | Instr.Neg -> plain (fun x -> -.x)
    | Instr.Sqrt -> transc sqrt
    | Instr.Sin -> transc sin
    | Instr.Cos -> transc cos
    | Instr.Exp -> transc exp
    | Instr.Log -> transc log
    | Instr.Abs -> plain Float.abs
    | Instr.Floor -> plain (fun x -> Float.of_int (int_of_float (floor x)))
    | Instr.ToFloat | Instr.ToInt | Instr.Not -> bad)
  | Ty.Int, Ty.Int -> (
    let sa = slot env a
    and d = slot env v in
    match op with
    | Instr.Neg ->
      fun t fr ->
        let r = -fr.i.(sa) in
        charge t t.cost.Cost_model.arith;
        fr.i.(d) <- r
    | Instr.Abs ->
      fun t fr ->
        let r = abs fr.i.(sa) in
        charge t t.cost.Cost_model.arith;
        fr.i.(d) <- r
    | _ -> bad)
  | Ty.Int, Ty.Float when op = Instr.ToFloat ->
    let sa = slot env a
    and d = slot env v in
    if env.taped then fun t fr ->
      let r = float_of_int fr.i.(sa) in
      charge t t.cost.Cost_model.arith;
      fr.f.(d) <- r;
      (* int sources are passive; the interpreter records [slot 0, 0.0]
         which the tape short-circuits to the passive slot *)
      fr.sl.(d) <- record1 t 0 (Interp.un_partial op 0.0 r)
    else fun t fr ->
      let r = float_of_int fr.i.(sa) in
      charge t t.cost.Cost_model.arith;
      fr.f.(d) <- r
  | Ty.Float, Ty.Int when op = Instr.ToInt ->
    let sa = slot env a
    and d = slot env v in
    fun t fr ->
      let r = int_of_float fr.f.(sa) in
      charge t t.cost.Cost_model.arith;
      fr.i.(d) <- r
  | Ty.Bool, Ty.Bool when op = Instr.Not ->
    let sa = slot env a
    and d = slot env v in
    fun t fr ->
      let r = not fr.b.(sa) in
      charge t t.cost.Cost_model.arith;
      fr.b.(d) <- r
  | _ -> bad

and compile_ctrl env (i : Instr.t) : code =
  match i with
  | Instr.If (results, cond, then_r, else_r) ->
    let benv = { env with ydest = YVars results } in
    let then_code = compile_block benv then_r.Instr.body
    and else_code = compile_block benv else_r.Instr.body in
    let c_rd = brd env cond in
    fun t fr -> (
      t.st.Stats.instrs <- t.st.Stats.instrs + 1;
      charge t t.cost.Cost_model.arith;
      match (if c_rd fr then then_code t fr else else_code t fr) with
      | Yld -> Next
      | Next -> error "if-region fell through without yield"
      | Ret -> Ret)
  | Instr.For { iv; lo; hi; step; body } ->
    let body_code = compile_block env body.Instr.body in
    let ivw = ivw env iv in
    let lo_rd = ird env lo
    and hi_rd = ird env hi
    and sp_rd = ird env step in
    fun t fr ->
      t.st.Stats.instrs <- t.st.Stats.instrs + 1;
      let lo = lo_rd fr
      and hi = hi_rd fr
      and sp = sp_rd fr in
      if sp <= 0 then error "for with non-positive step %d" sp;
      let rec go i =
        if i >= hi then Next
        else begin
          charge t t.cost.Cost_model.arith;
          ivw fr i;
          match
            try body_code t fr with Checkpoint.Skip_iteration -> Next
          with
          | Next -> go (i + sp)
          | (Ret | Yld) as o -> o
        end
      in
      go lo
  | Instr.While { cond; body } ->
    let cond_code = compile_block { env with ydest = YCond } cond.Instr.body in
    let body_code = compile_block env body.Instr.body in
    fun t fr ->
      t.st.Stats.instrs <- t.st.Stats.instrs + 1;
      let rec go () =
        charge t t.cost.Cost_model.arith;
        match cond_code t fr with
        | Yld ->
          if t.yb then begin
            match
              try body_code t fr with Checkpoint.Skip_iteration -> Next
            with
            | Next -> go ()
            | (Ret | Yld) as o -> o
          end
          else Next
        | Next | Ret -> error "while condition region must yield one bool"
      in
      go ()
  | Instr.Return None ->
    if env.taped then fun t _fr ->
      t.st.Stats.instrs <- t.st.Stats.instrs + 1;
      t.retv <- VUnit;
      t.rets <- 0;
      Ret
    else fun t _fr ->
      t.st.Stats.instrs <- t.st.Stats.instrs + 1;
      t.retv <- VUnit;
      Ret
  | Instr.Return (Some v) ->
    let r = reader env v in
    if env.taped then begin
      match Var.ty v with
      | Ty.Float ->
        let s = slot env v in
        fun t fr ->
          t.st.Stats.instrs <- t.st.Stats.instrs + 1;
          t.retv <- r fr;
          t.rets <- fr.sl.(s);
          Ret
      | _ ->
        fun t fr ->
          t.st.Stats.instrs <- t.st.Stats.instrs + 1;
          t.retv <- r fr;
          t.rets <- 0;
          Ret
    end
    else fun t fr ->
      t.st.Stats.instrs <- t.st.Stats.instrs + 1;
      t.retv <- r fr;
      Ret
  | Instr.Yield vs -> (
    match env.ydest with
    | YNone ->
      fun t _fr ->
        t.st.Stats.instrs <- t.st.Stats.instrs + 1;
        Yld
    | YCond -> (
      match vs with
      | [ v ] ->
        let c_rd = brd env v in
        fun t fr ->
          t.st.Stats.instrs <- t.st.Stats.instrs + 1;
          t.yb <- c_rd fr;
          Yld
      | _ ->
        fun t _fr ->
          t.st.Stats.instrs <- t.st.Stats.instrs + 1;
          error "while condition region must yield one bool")
    | YVars results ->
      if List.length vs <> List.length results then
        fun t _fr -> (
          t.st.Stats.instrs <- t.st.Stats.instrs + 1;
          raise (Invalid_argument "List.iter2"))
      else begin
        let moves = Array.of_list (List.map2 (xmove env) vs results) in
        fun t fr ->
          t.st.Stats.instrs <- t.st.Stats.instrs + 1;
          Array.iter (fun mv -> mv fr) moves;
          Yld
      end)
  | _ -> assert false

(* ---- intrinsics ---- *)

and compile_intrinsic env v name args : sc =
  let w = writer env v in
  match name, args with
  | "omp.max_threads", _ ->
    fun t fr ->
      charge t t.cost.Cost_model.arith;
      w fr (VInt t.ctx.Interp.cfg.Interp.nthreads)
  | "mpi.rank", _ ->
    fun t fr ->
      charge t t.cost.Cost_model.arith;
      w fr (VInt t.ctx.Interp.rank)
  | "mpi.size", _ ->
    fun t fr ->
      charge t t.cost.Cost_model.arith;
      w fr (VInt t.ctx.Interp.nranks)
  | "san.mark_private", _ ->
    (* no-op unsanitized; sanitized contexts never reach the engine *)
    fun t fr ->
      charge t t.cost.Cost_model.arith;
      w fr VUnit
  | "parad.remat_begin", _ ->
    fun t fr ->
      charge t t.cost.Cost_model.arith;
      (match t.defer with
      | Some m -> m.remat <- m.remat + 1
      | None -> t.ctx.Interp.remat_depth <- t.ctx.Interp.remat_depth + 1);
      w fr VUnit
  | "parad.remat_end", _ ->
    fun t fr ->
      charge t t.cost.Cost_model.arith;
      (match t.defer with
      | Some m -> if m.remat > 0 then m.remat <- m.remat - 1
      | None ->
        if t.ctx.Interp.remat_depth > 0 then
          t.ctx.Interp.remat_depth <- t.ctx.Interp.remat_depth - 1);
      w fr VUnit
  | ("cache.new" | "cache.newf"), cap :: _ ->
    let cap_rd = ird env cap in
    let unboxed = String.equal name "cache.newf" in
    fun t fr ->
      charge t t.cost.Cost_model.arith;
      charge t t.cost.Cost_model.alloc_base;
      let id =
        Cache_rt.fresh ~unboxed t.ctx.Interp.cache ~capacity:(cap_rd fr)
      in
      w fr (VInt id)
  | "cache.set", a0 :: a1 :: a2 :: _ -> (
    let id_rd = ird env a0
    and idx_rd = ird env a1 in
    match Var.ty a2, Var.ty a0, Var.ty a1 with
    | Ty.Float, Ty.Int, Ty.Int ->
      (* unboxed write: the stored float never round-trips through a
         [VFloat] box on the sequential path (deferred par-member sets
         still box — they are queued as values for ordered replay). The
         cache record is resolved once per call and shared between the
         representation test (which picks the charge) and the write. *)
      let s_id = slot env a0
      and s_idx = slot env a1
      and s_x = slot env a2 in
      let s_v = slot env v in
      fun t fr ->
        charge t t.cost.Cost_model.arith;
        let cache = t.ctx.Interp.cache in
        let id = fr.i.(s_id) in
        let c = Cache_rt.get_cache cache id in
        charge t
          (if Cache_rt.is_floats c then t.cost.Cost_model.mem
           else t.cost.Cost_model.cache_op);
        t.st.Stats.cache_stores <- t.st.Stats.cache_stores + 1;
        let idx = fr.i.(s_idx) in
        (match t.defer with
        | Some m -> m.d_csets <- (id, idx, VFloat fr.f.(s_x)) :: m.d_csets
        | None ->
          let before = Cache_rt.cells_written cache in
          Cache_rt.set_f_c cache c ~id ~idx fr.f.(s_x);
          if Cache_rt.cells_written cache > before then begin
            t.st.Stats.cache_cells <- t.st.Stats.cache_cells + 1;
            let peak = Cache_rt.peak_cells cache in
            if peak > t.st.Stats.cache_peak then t.st.Stats.cache_peak <- peak
          end);
        fr.v.(s_v) <- VUnit
    | _ ->
      let x_rd = reader env a2 in
      fun t fr ->
        charge t t.cost.Cost_model.arith;
        let cache = t.ctx.Interp.cache in
        let id = id_rd fr in
        charge t
          (if Cache_rt.is_unboxed cache ~id then t.cost.Cost_model.mem
           else t.cost.Cost_model.cache_op);
        t.st.Stats.cache_stores <- t.st.Stats.cache_stores + 1;
        let idx = idx_rd fr
        and x = x_rd fr in
        (match t.defer with
        | Some m -> m.d_csets <- (id, idx, x) :: m.d_csets
        | None ->
          let before = Cache_rt.cells_written cache in
          Cache_rt.set cache ~id ~idx x;
          if Cache_rt.cells_written cache > before then begin
            t.st.Stats.cache_cells <- t.st.Stats.cache_cells + 1;
            let peak = Cache_rt.peak_cells cache in
            if peak > t.st.Stats.cache_peak then t.st.Stats.cache_peak <- peak
          end);
        w fr VUnit)
  | "cache.get", a0 :: a1 :: _ -> (
    let id_rd = ird env a0
    and idx_rd = ird env a1 in
    match Var.ty v, Var.ty a0, Var.ty a1 with
    | Ty.Float, Ty.Int, Ty.Int ->
      let s_id = slot env a0
      and s_idx = slot env a1 in
      let d = slot env v in
      fun t fr ->
        charge t t.cost.Cost_model.arith;
        let cache = t.ctx.Interp.cache in
        let id = fr.i.(s_id) in
        let c = Cache_rt.get_cache cache id in
        charge t
          (if Cache_rt.is_floats c then t.cost.Cost_model.mem
           else t.cost.Cost_model.cache_op);
        t.st.Stats.cache_loads <- t.st.Stats.cache_loads + 1;
        let r = Cache_rt.get_f_c cache c ~id ~idx:fr.i.(s_idx) in
        eng_apply_flips t;
        fr.f.(d) <- r
    | _ ->
      fun t fr ->
        charge t t.cost.Cost_model.arith;
        let cache = t.ctx.Interp.cache in
        let id = id_rd fr in
        charge t
          (if Cache_rt.is_unboxed cache ~id then t.cost.Cost_model.mem
           else t.cost.Cost_model.cache_op);
        t.st.Stats.cache_loads <- t.st.Stats.cache_loads + 1;
        let r = Cache_rt.get cache ~id ~idx:(idx_rd fr) in
        eng_apply_flips t;
        w fr r)
  | "cache.free", a0 :: _ ->
    let id_rd = ird env a0 in
    fun t fr ->
      charge t t.cost.Cost_model.arith;
      let cache = t.ctx.Interp.cache in
      let id = id_rd fr in
      if cache.Cache_rt.protect then begin
        charge t
          (t.cost.Cost_model.mem *. float_of_int (Cache_rt.covered_id cache ~id));
        if not (Cache_rt.verify_id cache ~id) then
          eng_corrupt_region t ~cache_id:id
      end;
      Cache_rt.free cache ~id;
      w fr VUnit
  (* ---- k-wide batched adjoint runtime (opts.seeds > 1) ----

     Hot inner ops of the batched reverse sweep: one per reverse
     statement, each looping natively over a k-lane group. Compiled
     in-engine (raw [FCells] access, no delegation, no [Value] boxing
     per argument) with charges mirroring {!Interp.intrinsic}'s
     implementation exactly, so Seq keeps interp's virtual makespans on
     batched plans. Per-lane arithmetic matches the scalar emission op
     for op — the bit-identity contract of a batched lane. *)
  | "adj.take_k", [ scr; host; voff; k ] ->
    let scr_rd = reader env scr
    and host_rd = reader env host
    and voff_rd = ird env voff
    and k_rd = ird env k in
    let fname = env.fname in
    let w = writer env v in
    fun t fr ->
      charge t t.cost.Cost_model.arith;
      let scr = Value.to_ptr (scr_rd fr) in
      let host = Value.to_ptr (host_rd fr) in
      let voff = voff_rd fr
      and k = k_rd fr in
      let sa = Interp.fplane ~who:fname scr ~base:0 ~n:k in
      let ha = Interp.fplane ~who:fname host ~base:voff ~n:k in
      let so = scr.off
      and ho = host.off + voff in
      for l = 0 to k - 1 do
        Array.unsafe_set sa (so + l) (Array.unsafe_get ha (ho + l));
        Array.unsafe_set ha (ho + l) 0.0
      done;
      charge_mem_n t host.buf (2 * k);
      w fr VUnit
  | "adj.acc_k", [ host; xoff; scr; mode; c1; c2; cond; atomic; k ] ->
    let host_rd = reader env host
    and xoff_rd = ird env xoff
    and scr_rd = reader env scr
    and mode_rd = ird env mode
    and c1_rd = frd env c1
    and c2_rd = frd env c2
    and cond_rd = brd env cond
    and atomic_rd = ird env atomic
    and k_rd = ird env k in
    let fname = env.fname in
    let w = writer env v in
    fun t fr ->
      charge t t.cost.Cost_model.arith;
      let host = Value.to_ptr (host_rd fr) in
      let scr = Value.to_ptr (scr_rd fr) in
      let xoff = xoff_rd fr
      and mode = mode_rd fr
      and c1 = c1_rd fr
      and c2 = c2_rd fr
      and cond = cond_rd fr
      and atomic = atomic_rd fr <> 0
      and k = k_rd fr in
      let ha = Interp.fplane ~who:fname host ~base:xoff ~n:k in
      let sa = Interp.fplane ~who:fname scr ~base:0 ~n:k in
      let ho = host.off + xoff
      and so = scr.off in
      Interp.adj_acc_lanes ~mode ~c1 ~c2 ~cond ha ho sa so k;
      charge t
        (t.cost.Cost_model.arith
        *. float_of_int (k * (Interp.adj_mode_flops mode + 1)));
      if atomic then charge t (t.cost.Cost_model.atomic *. float_of_int k)
      else charge_mem_n t host.buf (2 * k);
      w fr VUnit
  | "adj.rev1_k", [ scr; vhost; voff; h1; o1; m1; c11; c12; cnd1; at1; k ]
    ->
    (* Fused reverse statement, one operand: take + acc in one dispatch
       (charges mirror {!Interp.intrinsic}'s fused case). *)
    let s_scr = pslot env scr
    and s_vh = pslot env vhost
    and s_voff = islot env voff
    and s_h1 = pslot env h1
    and s_o1 = islot env o1
    and s_m1 = islot env m1
    and s_c11 = fslot env c11
    and s_c12 = fslot env c12
    and s_cnd1 = bslot env cnd1
    and s_at1 = islot env at1
    and s_k = islot env k in
    let fname = env.fname in
    let s_v = slot env v in
    fun t fr ->
      charge t t.cost.Cost_model.arith;
      let scr = Value.to_ptr fr.v.(s_scr) in
      let vhost = Value.to_ptr fr.v.(s_vh) in
      let voff = fr.i.(s_voff)
      and k = fr.i.(s_k) in
      let sa = Interp.fplane ~who:fname scr ~base:0 ~n:k in
      let ha = Interp.fplane ~who:fname vhost ~base:voff ~n:k in
      let so = scr.off
      and ho = vhost.off + voff in
      for l = 0 to k - 1 do
        Array.unsafe_set sa (so + l) (Array.unsafe_get ha (ho + l));
        Array.unsafe_set ha (ho + l) 0.0
      done;
      charge_mem_n t vhost.buf (2 * k);
      let h1 = Value.to_ptr fr.v.(s_h1) in
      let o1 = fr.i.(s_o1)
      and m1 = fr.i.(s_m1) in
      let aa = Interp.fplane ~who:fname h1 ~base:o1 ~n:k in
      Interp.adj_acc_lanes ~mode:m1 ~c1:fr.f.(s_c11) ~c2:fr.f.(s_c12)
        ~cond:fr.b.(s_cnd1) aa (h1.off + o1) sa so k;
      charge t
        (t.cost.Cost_model.arith
        *. float_of_int (k * (Interp.adj_mode_flops m1 + 1)));
      if fr.i.(s_at1) <> 0 then
        charge t (t.cost.Cost_model.atomic *. float_of_int k)
      else charge_mem_n t h1.buf (2 * k);
      fr.v.(s_v) <- VUnit
  | ( "adj.rev2_k",
      [
        scr; vhost; voff; h1; o1; m1; c11; c12; cnd1; at1; h2; o2; m2; c21;
        c22; cnd2; at2; k;
      ] ) ->
    (* Fused reverse statement, two operands. *)
    let s_scr = pslot env scr
    and s_vh = pslot env vhost
    and s_voff = islot env voff
    and s_h1 = pslot env h1
    and s_o1 = islot env o1
    and s_m1 = islot env m1
    and s_c11 = fslot env c11
    and s_c12 = fslot env c12
    and s_cnd1 = bslot env cnd1
    and s_at1 = islot env at1
    and s_h2 = pslot env h2
    and s_o2 = islot env o2
    and s_m2 = islot env m2
    and s_c21 = fslot env c21
    and s_c22 = fslot env c22
    and s_cnd2 = bslot env cnd2
    and s_at2 = islot env at2
    and s_k = islot env k in
    let fname = env.fname in
    let s_v = slot env v in
    fun t fr ->
      charge t t.cost.Cost_model.arith;
      let scr = Value.to_ptr fr.v.(s_scr) in
      let vhost = Value.to_ptr fr.v.(s_vh) in
      let voff = fr.i.(s_voff)
      and k = fr.i.(s_k) in
      let sa = Interp.fplane ~who:fname scr ~base:0 ~n:k in
      let ha = Interp.fplane ~who:fname vhost ~base:voff ~n:k in
      let so = scr.off
      and ho = vhost.off + voff in
      for l = 0 to k - 1 do
        Array.unsafe_set sa (so + l) (Array.unsafe_get ha (ho + l));
        Array.unsafe_set ha (ho + l) 0.0
      done;
      charge_mem_n t vhost.buf (2 * k);
      let h1 = Value.to_ptr fr.v.(s_h1) in
      let o1 = fr.i.(s_o1)
      and m1 = fr.i.(s_m1) in
      let aa = Interp.fplane ~who:fname h1 ~base:o1 ~n:k in
      Interp.adj_acc_lanes ~mode:m1 ~c1:fr.f.(s_c11) ~c2:fr.f.(s_c12)
        ~cond:fr.b.(s_cnd1) aa (h1.off + o1) sa so k;
      charge t
        (t.cost.Cost_model.arith
        *. float_of_int (k * (Interp.adj_mode_flops m1 + 1)));
      if fr.i.(s_at1) <> 0 then
        charge t (t.cost.Cost_model.atomic *. float_of_int k)
      else charge_mem_n t h1.buf (2 * k);
      let h2 = Value.to_ptr fr.v.(s_h2) in
      let o2 = fr.i.(s_o2)
      and m2 = fr.i.(s_m2) in
      let ba = Interp.fplane ~who:fname h2 ~base:o2 ~n:k in
      Interp.adj_acc_lanes ~mode:m2 ~c1:fr.f.(s_c21) ~c2:fr.f.(s_c22)
        ~cond:fr.b.(s_cnd2) ba (h2.off + o2) sa so k;
      charge t
        (t.cost.Cost_model.arith
        *. float_of_int (k * (Interp.adj_mode_flops m2 + 1)));
      if fr.i.(s_at2) <> 0 then
        charge t (t.cost.Cost_model.atomic *. float_of_int k)
      else charge_mem_n t h2.buf (2 * k);
      fr.v.(s_v) <- VUnit
  | "adj.mrev_k", [ scr; vhost; voff; sp; mb; atomic; k ] ->
    (* Fused Load reversal: take + accumulate into the shadow plane. *)
    let s_scr = pslot env scr
    and s_vh = pslot env vhost
    and s_voff = islot env voff
    and s_sp = pslot env sp
    and s_mb = islot env mb
    and s_at = islot env atomic
    and s_k = islot env k in
    let fname = env.fname in
    let s_v = slot env v in
    fun t fr ->
      charge t t.cost.Cost_model.arith;
      let scr = Value.to_ptr fr.v.(s_scr) in
      let vhost = Value.to_ptr fr.v.(s_vh) in
      let voff = fr.i.(s_voff)
      and k = fr.i.(s_k) in
      let sa = Interp.fplane ~who:fname scr ~base:0 ~n:k in
      let ha = Interp.fplane ~who:fname vhost ~base:voff ~n:k in
      let so = scr.off
      and ho = vhost.off + voff in
      for l = 0 to k - 1 do
        Array.unsafe_set sa (so + l) (Array.unsafe_get ha (ho + l));
        Array.unsafe_set ha (ho + l) 0.0
      done;
      charge_mem_n t vhost.buf (2 * k);
      let sp = Value.to_ptr fr.v.(s_sp) in
      let mb = fr.i.(s_mb) in
      let pa = Interp.fplane ~who:fname sp ~base:mb ~n:k in
      let po = sp.off + mb in
      for l = 0 to k - 1 do
        Array.unsafe_set pa (po + l)
          (Array.unsafe_get pa (po + l) +. Array.unsafe_get sa (so + l))
      done;
      if fr.i.(s_at) <> 0 then
        charge t (t.cost.Cost_model.atomic *. float_of_int k)
      else begin
        charge t (t.cost.Cost_model.arith *. float_of_int k);
        charge_mem_n t sp.buf (2 * k)
      end;
      fr.v.(s_v) <- VUnit
  | ("adj.srev_k" | "adj.arev_k"), [ scr; sp; mb; h1; o1; at1; k ] ->
    (* Fused Store/AtomicAdd reversal (zeroing only for the Store). *)
    let zero = name = "adj.srev_k" in
    let s_scr = pslot env scr
    and s_sp = pslot env sp
    and s_mb = islot env mb
    and s_h1 = pslot env h1
    and s_o1 = islot env o1
    and s_at1 = islot env at1
    and s_k = islot env k in
    let fname = env.fname in
    let s_v = slot env v in
    fun t fr ->
      charge t t.cost.Cost_model.arith;
      let scr = Value.to_ptr fr.v.(s_scr) in
      let sp = Value.to_ptr fr.v.(s_sp) in
      let mb = fr.i.(s_mb)
      and k = fr.i.(s_k) in
      let sa = Interp.fplane ~who:fname scr ~base:0 ~n:k in
      let pa = Interp.fplane ~who:fname sp ~base:mb ~n:k in
      let so = scr.off
      and po = sp.off + mb in
      if zero then begin
        for l = 0 to k - 1 do
          Array.unsafe_set sa (so + l) (Array.unsafe_get pa (po + l));
          Array.unsafe_set pa (po + l) 0.0
        done;
        charge_mem_n t sp.buf (2 * k)
      end
      else begin
        for l = 0 to k - 1 do
          Array.unsafe_set sa (so + l) (Array.unsafe_get pa (po + l))
        done;
        charge_mem_n t sp.buf k
      end;
      let h1 = Value.to_ptr fr.v.(s_h1) in
      let o1 = fr.i.(s_o1) in
      let aa = Interp.fplane ~who:fname h1 ~base:o1 ~n:k in
      Interp.adj_acc_lanes ~mode:0 ~c1:0.0 ~c2:0.0 ~cond:false aa
        (h1.off + o1) sa so k;
      charge t (t.cost.Cost_model.arith *. float_of_int k);
      if fr.i.(s_at1) <> 0 then
        charge t (t.cost.Cost_model.atomic *. float_of_int k)
      else charge_mem_n t h1.buf (2 * k);
      fr.v.(s_v) <- VUnit
  | "adj.macc_k", [ sp; mb; scr; atomic; k ] ->
    let sp_rd = reader env sp
    and mb_rd = ird env mb
    and scr_rd = reader env scr
    and atomic_rd = ird env atomic
    and k_rd = ird env k in
    let fname = env.fname in
    let w = writer env v in
    fun t fr ->
      charge t t.cost.Cost_model.arith;
      let sp = Value.to_ptr (sp_rd fr) in
      let scr = Value.to_ptr (scr_rd fr) in
      let mb = mb_rd fr
      and atomic = atomic_rd fr <> 0
      and k = k_rd fr in
      let pa = Interp.fplane ~who:fname sp ~base:mb ~n:k in
      let sa = Interp.fplane ~who:fname scr ~base:0 ~n:k in
      let po = sp.off + mb
      and so = scr.off in
      for l = 0 to k - 1 do
        Array.unsafe_set pa (po + l)
          (Array.unsafe_get pa (po + l) +. Array.unsafe_get sa (so + l))
      done;
      if atomic then charge t (t.cost.Cost_model.atomic *. float_of_int k)
      else begin
        charge t (t.cost.Cost_model.arith *. float_of_int k);
        charge_mem_n t sp.buf (2 * k)
      end;
      w fr VUnit
  | "adj.mtake_k", [ sp; mb; scr; k ] ->
    let sp_rd = reader env sp
    and mb_rd = ird env mb
    and scr_rd = reader env scr
    and k_rd = ird env k in
    let fname = env.fname in
    let w = writer env v in
    fun t fr ->
      charge t t.cost.Cost_model.arith;
      let sp = Value.to_ptr (sp_rd fr) in
      let scr = Value.to_ptr (scr_rd fr) in
      let mb = mb_rd fr
      and k = k_rd fr in
      let pa = Interp.fplane ~who:fname sp ~base:mb ~n:k in
      let sa = Interp.fplane ~who:fname scr ~base:0 ~n:k in
      let po = sp.off + mb
      and so = scr.off in
      for l = 0 to k - 1 do
        Array.unsafe_set sa (so + l) (Array.unsafe_get pa (po + l));
        Array.unsafe_set pa (po + l) 0.0
      done;
      charge_mem_n t sp.buf (2 * k);
      w fr VUnit
  | "adj.mread_k", [ sp; mb; scr; k ] ->
    let sp_rd = reader env sp
    and mb_rd = ird env mb
    and scr_rd = reader env scr
    and k_rd = ird env k in
    let fname = env.fname in
    let w = writer env v in
    fun t fr ->
      charge t t.cost.Cost_model.arith;
      let sp = Value.to_ptr (sp_rd fr) in
      let scr = Value.to_ptr (scr_rd fr) in
      let mb = mb_rd fr
      and k = k_rd fr in
      let pa = Interp.fplane ~who:fname sp ~base:mb ~n:k in
      let sa = Interp.fplane ~who:fname scr ~base:0 ~n:k in
      let po = sp.off + mb
      and so = scr.off in
      for l = 0 to k - 1 do
        Array.unsafe_set sa (so + l) (Array.unsafe_get pa (po + l))
      done;
      charge_mem_n t sp.buf k;
      w fr VUnit
  | "adj.pack_k", [ dst; doff; src; soff; k ] ->
    let dst_rd = reader env dst
    and doff_rd = ird env doff
    and src_rd = reader env src
    and soff_rd = ird env soff
    and k_rd = ird env k in
    let fname = env.fname in
    let w = writer env v in
    fun t fr ->
      charge t t.cost.Cost_model.arith;
      let dst = Value.to_ptr (dst_rd fr) in
      let src = Value.to_ptr (src_rd fr) in
      let doff = doff_rd fr
      and soff = soff_rd fr
      and k = k_rd fr in
      let da = Interp.fplane ~who:fname dst ~base:doff ~n:k in
      let sa = Interp.fplane ~who:fname src ~base:soff ~n:k in
      let d0 = dst.off + doff
      and s0 = src.off + soff in
      for l = 0 to k - 1 do
        Array.unsafe_set da (d0 + l) (Array.unsafe_get sa (s0 + l))
      done;
      charge_mem_n t dst.buf k;
      charge_mem_n t src.buf k;
      w fr VUnit
  | ("parad.checkpoint" | "parad.checkpoint_rev"), _ ->
    (* No-session checkpoint sites cost one arith op and touch nothing;
       only live sessions (take/restore/fast-forward) go through the
       interpreter's implementation. *)
    let del = delegate env v name args in
    fun t fr ->
      (match t.ctx.Interp.ckpt with
      | None ->
        charge t t.cost.Cost_model.arith;
        w fr VUnit
      | Some _ -> del t fr)
  | _ -> delegate env v name args

(* Any other intrinsic (MPI, checkpoint, GC, AD shadows, ...) delegates to
   the interpreter's implementation, bridging the strand clock and the
   synthetic frame stack. *)
and delegate env v name args : sc =
  let readers = List.map (reader env) args in
  let w = writer env v in
  let fname = env.fname in
  fun t fr ->
    let vals = List.map (fun r -> r fr) readers in
    t.st.Stats.eng_fallbacks <- t.st.Stats.eng_fallbacks + 1;
    sync_out t;
    let e =
      {
        Interp.stack = fr.istack;
        team = t.team;
        stack_allocs = fr.stack_allocs;
        fname;
        san_team = None;
      }
    in
    let res =
      match Interp.intrinsic t.ctx e name args vals with
      | r ->
        sync_in t;
        r
      | exception ex ->
        sync_in t;
        raise ex
    in
    w fr (fst res)

(* ---- user calls ---- *)

and compile_ucall env v name args : sc =
  let resolved : sc option ref = ref None in
  fun t fr ->
    match !resolved with
    | Some f -> f t fr
    | None ->
      let f = build_ucall env v name args in
      resolved := Some f;
      f t fr

and build_ucall env v name args : sc =
  match Prog.find env.prep.prog name with
  | None -> fun _ _ -> error "call to unknown function %S" name
  | Some f -> (
    let cf = get_cfun env.prep ~taped:env.taped name in
    if List.length args <> List.length f.Func.params then
      fun t _fr ->
        charge t t.cost.Cost_model.call;
        t.st.Stats.calls <- t.st.Stats.calls + 1;
        error "call %s: arity mismatch" name
    else
      match
        List.find_opt
          (fun (p, a) -> not (Ty.equal (Var.ty a) (Var.ty p)))
          (List.combine f.Func.params args)
      with
      | Some (p, a) ->
        fun t _fr ->
          charge t t.cost.Cost_model.call;
          t.st.Stats.calls <- t.st.Stats.calls + 1;
          error "call %s: argument %s has type %a, expected %a" name
            (Var.name p) Ty.pp (Var.ty a) Ty.pp (Var.ty p)
      | None ->
        let moves =
          Array.of_list (List.map2 (arg_move env cf) f.Func.params args)
        in
        let ret_unit = Ty.equal f.Func.ret_ty Ty.Unit in
        let w = writer env v in
        let w =
          if env.taped && Ty.equal (Var.ty v) Ty.Float then begin
            let d = slot env v in
            fun (fr : eframe) t ->
              fr.f.(d) <- Value.to_float t.retv;
              fr.sl.(d) <- t.rets
          end
          else fun fr t -> w fr t.retv
        in
        fun t fr -> (
          charge t t.cost.Cost_model.call;
          t.st.Stats.calls <- t.st.Stats.calls + 1;
          let nfr = new_eframe cf fr.istack in
          Array.iter (fun mv -> mv fr nfr) moves;
          (* the interpreter gives each call a fresh team-less ectx; the
             engine's thr is shared, so save/restore — exception-protected
             because Skip_iteration legitimately crosses call frames *)
          let saved = t.team in
          t.team <- None;
          let out =
            match cf.code t nfr with
            | o ->
              t.team <- saved;
              o
            | exception ex ->
              t.team <- saved;
              raise ex
          in
          List.iter
            (fun (b : Value.buffer) ->
              if not b.freed then Memory.free ~site:name t.ctx.Interp.mem b)
            !(nfr.stack_allocs);
          match out with
          | Ret -> w fr t
          | Next when ret_unit ->
            t.retv <- VUnit;
            t.rets <- 0;
            w fr t
          | Next | Yld -> error "function %s did not return" name))

and get_cfun prep ?(taped = false) name : cfun =
  let table = if taped then prep.tfuncs else prep.funcs in
  Mutex.lock prep.plk;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock prep.plk)
    (fun () ->
      match Hashtbl.find_opt table name with
      | Some cf -> cf
      | None -> (
        match Prog.find prep.prog name with
        | None -> error "call to unknown function %S" name
        | Some fn ->
          let cf = make_cfun ~taped fn in
          (match
             compile_block { prep; cf; fname = name; ydest = YNone; taped }
               fn.Func.body
           with
          | code ->
            cf.code <- code;
            Hashtbl.replace table name cf
          | exception ex -> raise ex);
          cf))

(* Boxed-argument call: the engine's replica of [Interp.call_function]
   with an empty caller stack — entry points and spawned tasks. *)
and call_boxed prep ?(taped = false) ?(slots = []) t name
    (args : Value.t list) : Value.t =
  match Prog.find prep.prog name with
  | None -> error "call to unknown function %S" name
  | Some f -> (
    charge t t.cost.Cost_model.call;
    t.st.Stats.calls <- t.st.Stats.calls + 1;
    if List.length args <> List.length f.Func.params then
      error "call %s: arity mismatch" name;
    let cf = get_cfun prep ~taped name in
    let nfr = new_eframe cf [] in
    List.iter2
      (fun p a ->
        if not (Ty.equal (Value.ty a) (Var.ty p)) then
          error "call %s: argument %s has type %a, expected %a" name
            (Var.name p) Ty.pp (Value.ty a) Ty.pp (Var.ty p);
        write_boxed cf p nfr a)
      f.Func.params args;
    if taped && slots <> [] then
      List.iteri
        (fun i p ->
          match Var.ty p with
          | Ty.Float -> nfr.sl.(cf.idx.(Var.id p)) <- List.nth slots i
          | _ -> ())
        f.Func.params;
    let saved = t.team in
    t.team <- None;
    let out =
      match cf.code t nfr with
      | o ->
        t.team <- saved;
        o
      | exception ex ->
        t.team <- saved;
        raise ex
    in
    List.iter
      (fun (b : Value.buffer) ->
        if not b.freed then Memory.free ~site:name t.ctx.Interp.mem b)
      !(nfr.stack_allocs);
    match out with
    | Ret -> t.retv
    | Next when Ty.equal f.Func.ret_ty Ty.Unit ->
      t.rets <- 0;
      VUnit
    | Next | Yld -> error "function %s did not return" name)

(* ---- entry points ---- *)

type choice = Interp | Seq | Par

let choice_of_string = function
  | "interp" -> Some Interp
  | "seq" -> Some Seq
  | "par" -> Some Par
  | _ -> None

let choice_to_string = function
  | Interp -> "interp"
  | Seq -> "seq"
  | Par -> "par"

(** Run [fname] on the engine inside the current Sim strand, threading
    tape slots for the arguments and the result (both all-zero on
    uninstrumented runs). Instrumented (taped) runs compile through the
    taping-mode function table and stay engine-resident on the Seq
    runner; contexts the engine cannot replicate bit-exactly
    (sanitizers, instruction budgets, taping under the Par runner whose
    fork orders records nondeterministically) fall back to the
    interpreter wholesale — and are counted in [Stats.eng_fallbacks]. *)
let exec_call_slots prep mode (ctx : Interp.ctx) fname args slots :
    Value.t * int =
  let taped =
    match ctx.Interp.instrument with Some _ -> true | None -> false
  in
  let fallback =
    (match ctx.Interp.san with Some _ -> true | None -> false)
    || ctx.Interp.cfg.Interp.max_instrs > 0
    || (taped && match mode with MPar _ -> true | MSeq -> false)
  in
  if fallback then begin
    (Sim.stats ()).Stats.eng_fallbacks <-
      (Sim.stats ()).Stats.eng_fallbacks + 1;
    Interp.call_with_slots ctx fname args slots
  end
  else begin
    ctx.Interp.root_args <- args;
    let s = Sim.self () in
    let vdl, wall_stop, wall_ms = Sim.deadline_view () in
    let dl =
      match vdl, wall_stop with
      | None, None -> None
      | _ -> Some { vdl; wall_stop; wall_ms; tick = 0 }
    in
    let t =
      {
        ctx;
        cost = ctx.Interp.cfg.Interp.cost;
        st = Sim.stats ();
        mode;
        clock = { now = s.Sim.clock };
        socket = s.Sim.socket;
        team = None;
        defer = None;
        dl;
        retv = VUnit;
        rets = 0;
        yb = false;
        fcache = Hashtbl.create 8;
      }
    in
    match call_boxed prep ~taped ~slots t fname args with
    | v ->
      sync_out t;
      v, t.rets
    | exception ex ->
      sync_out t;
      raise ex
  end

let exec_call prep mode (ctx : Interp.ctx) fname args =
  fst (exec_call_slots prep mode ctx fname args [])

(** [call_fn prep choice] is a drop-in replacement for {!Interp.call}
    running on the selected substrate. *)
let call_fn prep choice : Interp.ctx -> string -> Value.t list -> Value.t =
  match choice with
  | Interp -> Interp.call
  | Seq -> fun ctx f args -> exec_call prep MSeq ctx f args
  | Par -> fun ctx f args -> exec_call prep (MPar (Pool.get ())) ctx f args

(** [call_fn_slots prep choice] is the slot-threading counterpart of
    {!call_fn}: a drop-in replacement for {!Interp.call_with_slots} for
    harnesses (the tape baseline) that seed argument slots and need the
    result slot back. *)
let call_fn_slots prep choice :
    Interp.ctx -> string -> Value.t list -> int list -> Value.t * int =
  match choice with
  | Interp -> Interp.call_with_slots
  | Seq -> fun ctx f args slots -> exec_call_slots prep MSeq ctx f args slots
  | Par ->
    fun ctx f args slots ->
      exec_call_slots prep (MPar (Pool.get ())) ctx f args slots
