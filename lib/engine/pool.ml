(** A persistent work-stealing pool of OCaml [Domain]s.

    The parallel runner of the execution engine schedules the members of a
    par-safe fork region (and their barrier-release continuations) as
    tasks on this pool. One deque per domain; a worker pops its own deque
    LIFO and steals FIFO from the others when empty; the thread that
    submits a region participates in execution through {!help_while}, so
    a pool of [n] domains gives [n + 1] runners.

    The pool is global and lazy: domains are spawned on first use and
    joined through [at_exit]. Sizing follows
    [Domain.recommended_domain_count () - 1] (the caller is the extra
    runner), clamped to [0, 15]; [PARAD_DOMAINS] overrides it, and a pool
    of size 0 degrades gracefully — every task runs in {!help_while} on
    the submitting thread, which keeps `--engine par` functional (and
    bit-identical, just not faster) on single-core hosts. *)

type task = unit -> unit

type deque = {
  lock : Mutex.t;
  mutable items : task list;  (** LIFO end at the head *)
}

type t = {
  deques : deque array;  (** one per worker domain *)
  size : int;
  m : Mutex.t;  (** sleep/wake coordination *)
  cv : Condition.t;
  mutable pending : int;  (** tasks submitted and not yet started *)
  mutable stop : bool;
  mutable rr : int;  (** round-robin submission cursor *)
  mutable domains : unit Domain.t list;
}

let push_deque d task =
  Mutex.lock d.lock;
  d.items <- task :: d.items;
  Mutex.unlock d.lock

let pop_deque d =
  Mutex.lock d.lock;
  let r =
    match d.items with
    | [] -> None
    | t :: rest ->
      d.items <- rest;
      Some t
  in
  Mutex.unlock d.lock;
  r

(* Steal from the FIFO end (the oldest task): classic deque discipline,
   which hands thieves the largest remaining chunks of work. *)
let steal_deque d =
  Mutex.lock d.lock;
  let r =
    match List.rev d.items with
    | [] -> None
    | t :: rest_rev ->
      d.items <- List.rev rest_rev;
      Some t
  in
  Mutex.unlock d.lock;
  r

let take p ~own =
  let n = Array.length p.deques in
  if n = 0 then None
  else
    match pop_deque p.deques.(own mod n) with
    | Some _ as r -> r
    | None ->
      let rec scan k =
        if k >= n then None
        else
          match steal_deque p.deques.((own + k) mod n) with
          | Some _ as r -> r
          | None -> scan (k + 1)
      in
      scan 1

let run_task p ~own task =
  Mutex.lock p.m;
  p.pending <- p.pending - 1;
  Mutex.unlock p.m;
  ignore (own : int);
  task ()

let worker p id () =
  let rec loop () =
    match take p ~own:id with
    | Some task ->
      run_task p ~own:id task;
      loop ()
    | None ->
      Mutex.lock p.m;
      while p.pending = 0 && not p.stop do
        Condition.wait p.cv p.m
      done;
      let stop = p.stop && p.pending = 0 in
      Mutex.unlock p.m;
      if not stop then loop ()
  in
  loop ()

let default_size () =
  match Sys.getenv_opt "PARAD_DOMAINS" with
  | Some s -> ( match int_of_string_opt s with Some n -> max 0 (min 15 n) | None -> 0)
  | None -> max 0 (min 15 (Domain.recommended_domain_count () - 1))

let instance : t option ref = ref None

let shutdown p =
  Mutex.lock p.m;
  p.stop <- true;
  Condition.broadcast p.cv;
  Mutex.unlock p.m;
  List.iter Domain.join p.domains;
  p.domains <- []

let get ?size () =
  match !instance with
  | Some p -> p
  | None ->
    let size =
      match size with Some n -> max 0 (min 15 n) | None -> default_size ()
    in
    let p =
      {
        deques =
          Array.init size (fun _ -> { lock = Mutex.create (); items = [] });
        size;
        m = Mutex.create ();
        cv = Condition.create ();
        pending = 0;
        stop = false;
        rr = 0;
        domains = [];
      }
    in
    p.domains <- List.init size (fun id -> Domain.spawn (worker p id));
    instance := Some p;
    at_exit (fun () ->
        match !instance with
        | Some q when q == p ->
          instance := None;
          shutdown p
        | _ -> ());
    p

(** Submit one task. With a 0-size pool the task is parked on a caller
    queue drained by {!help_while}. *)
let caller_q : task list ref = ref []

let submit p task =
  if p.size = 0 then caller_q := task :: !caller_q
  else begin
    Mutex.lock p.m;
    p.pending <- p.pending + 1;
    p.rr <- p.rr + 1;
    Mutex.unlock p.m;
    push_deque p.deques.(p.rr mod p.size) task;
    Mutex.lock p.m;
    Condition.broadcast p.cv;
    Mutex.unlock p.m
  end

(* Oldest caller-queue task, FIFO. *)
let caller_pop () =
  match List.rev !caller_q with
  | [] -> None
  | oldest :: rest_rev ->
    caller_q := List.rev rest_rev;
    Some oldest

(** Run tasks on the submitting thread until [done_ ()] — the caller's
    share of the region, and the only runner on a 0-size pool. *)
let help_while p done_ =
  let rec loop () =
    if not (done_ ()) then begin
      (match caller_pop () with
      | Some t -> t ()
      | None -> (
        match take p ~own:0 with
        | Some task -> run_task p ~own:0 task
        | None -> Domain.cpu_relax ()));
      loop ()
    end
  in
  loop ()
