(** Store-to-load forwarding, redundant-store elimination, and adjoint
    slot promotion for non-escaping allocations accessed at constant
    indices.

    The reverse-mode transform materializes SSA adjoints as slots in an
    "adjoint register" buffer; a real compiler (LLVM's SROA/mem2reg,
    which Enzyme relies on) promotes those slots to registers. This pass
    models that promotion:

    - within a segment, a load from a non-escaping allocation at a known
      constant index is replaced by the last value stored there, and
      stores overwritten (or freed) before any possible read are deleted;
    - allocations are zero-initialized ([Memory.alloc] fills with
      [zero_of]), so loads from never-written cells fold to a literal
      constant, and stores of that same value are dropped as redundant;
    - knowledge survives region boundaries: a child region only kills
      the cells it may write (per a syntactic write summary), and loop
      bodies are re-analyzed with a seeded entry state when a cell
      provably holds the same value at every iteration entry
      (the adjoint accumulate-then-zero pattern);
    - constant-index cells live through [If] regions via a per-branch
      merge: when the two branch exits disagree, the cell's value is
      promoted to a fresh [If] result fed by extra [Yield] operands —
      the SROA/mem2reg phi;
    - barriers only kill knowledge about buffers that are *shared*
      across the team; an allocation made inside the current [Fork]
      body is private to the executing strand (the same provenance fact
      [Race.analyze] uses) and keeps its forwarding state.

    Eligible buffers never escape (their pointer is used only as the
    direct operand of Load/Store/AtomicAdd/Free), so no call, spawn, or
    captured pointer can touch them; cross-strand interference on them
    is limited to the enclosing parallel region re-executing the same
    instructions, which the write summaries and barrier kills cover
    under the usual data-race-freedom assumption. *)

open Parad_ir
open Rewrite

module IH = Hashtbl

(* bases eligible for tracking: Alloc results used only as the direct
   pointer of Load/Store/AtomicAdd/Free *)
let eligible_bases (f : Func.t) =
  let alloc : (int, unit) IH.t = IH.create 16 in
  let bad : (int, unit) IH.t = IH.create 16 in
  Instr.iter_instrs
    (fun i ->
      (match i with
      | Instr.Alloc (v, _, _, _) -> IH.replace alloc (Var.id v) ()
      | _ -> ());
      let direct_ptr =
        match i with
        | Instr.Load (_, p, _) | Instr.Store (p, _, _)
        | Instr.AtomicAdd (p, _, _) | Instr.Free p -> Some (Var.id p)
        | _ -> None
      in
      List.iter
        (fun u ->
          if Some (Var.id u) <> direct_ptr && Ty.is_ptr (Var.ty u) then
            IH.replace bad (Var.id u) ())
        (Instr.uses i))
    f.body;
  fun id -> IH.mem alloc id && not (IH.mem bad id)

(* What a cell is known to hold: a specific SSA value, the allocation's
   zero fill (never written since), or nothing. *)
type aval = Val of Var.t | Zero | Unk

(* Syntactic may-write summary of an instruction list over eligible
   bases: constant-index cells written, and bases written at unknown
   indices / atomically / freed (treated as whole-base kills). *)
type summary = {
  s_cells : (int * int, unit) IH.t;
  s_bases : (int, unit) IH.t;
}

let summarize eligible cint instrs =
  let s = { s_cells = IH.create 16; s_bases = IH.create 8 } in
  let rec walk is =
    List.iter
      (fun (i : Instr.t) ->
        (match i with
        | Instr.Store (p, ix, _) | Instr.AtomicAdd (p, ix, _)
          when eligible (Var.id p) -> (
          match cint ix with
          | Some idx -> IH.replace s.s_cells (Var.id p, idx) ()
          | None -> IH.replace s.s_bases (Var.id p) ())
        | Instr.Free p when eligible (Var.id p) ->
          IH.replace s.s_bases (Var.id p) ()
        | _ -> ());
        List.iter (fun (r : Instr.region) -> walk r.Instr.body)
          (Instr.regions i))
      is
  in
  walk instrs;
  s

let run_func (f : Func.t) : Func.t =
  let eligible = eligible_bases f in
  let ctx = ctx_of f in
  (* constant environments; fresh zero constants register themselves *)
  let consts : (int, int) IH.t = IH.create 64 in
  let fconsts : (int, float) IH.t = IH.create 64 in
  let note_const (i : Instr.t) =
    match i with
    | Instr.Const (v, Instr.Cint x) -> IH.replace consts (Var.id v) x
    | Instr.Const (v, Instr.Cfloat x) -> IH.replace fconsts (Var.id v) x
    | _ -> ()
  in
  Instr.iter_instrs note_const f.body;
  let alias : (int, Var.t) IH.t = IH.create 32 in
  let rec sub v =
    match IH.find_opt alias (Var.id v) with
    | Some v' -> sub v'
    | None -> v
  in
  let cint v = IH.find_opt consts (Var.id v) in
  (* value equality strong enough to drop a redundant store: same SSA
     var, or two constants with identical bits *)
  let same_val a b =
    Var.id a = Var.id b
    || (match IH.find_opt fconsts (Var.id a), IH.find_opt fconsts (Var.id b)
        with
       | Some x, Some y ->
         Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
       | _ -> (
         match cint a, cint b with Some x, Some y -> x = y | _ -> false))
  in
  let is_plus_zero v =
    match IH.find_opt fconsts (Var.id v) with
    | Some x -> Int64.equal (Int64.bits_of_float x) 0L
    | None -> (match cint v with Some 0 -> true | _ -> false)
  in
  (* the zero fill of an allocation, as a constant, when representable *)
  let zero_const_of (ty : Ty.t) =
    match ty with
    | Ty.Float -> Some (Instr.Cfloat 0.0)
    | Ty.Int -> Some (Instr.Cint 0)
    | _ -> None
  in
  (* abstract state: explicit cell facts + per-base "still all zero"
     defaults (for eligible allocations never written at unknown index) *)
  let lookup known zerodef (key : int * int) =
    match IH.find_opt known key with
    | Some a -> a
    | None -> if IH.mem zerodef (fst key) then Zero else Unk
  in
  let kill_base known zerodef pending b =
    IH.filter_map_inplace
      (fun (b', _) v -> if b' = b then None else Some v)
      known;
    IH.remove zerodef b;
    (* pending stores to the base become observable *)
    IH.filter_map_inplace
      (fun (b', _) c -> if b' = b then None else Some c)
      pending
  in
  (* apply a child region's may-write summary to the parent state *)
  let apply_summary (s : summary) known zerodef pending =
    IH.iter (fun key () -> IH.replace known key Unk) s.s_cells;
    IH.iter (fun b () -> kill_base known zerodef pending b) s.s_bases
  in
  (* [go known zerodef private_tbl instrs] rewrites one region body,
     mutating [known]/[zerodef] to the body's exit state. [private_tbl]
     holds bases allocated inside the current Fork body (barrier-immune);
     [None] outside any fork. *)
  let rec go known zerodef private_tbl instrs =
    let pending : (int * int, Instr.t option ref) IH.t = IH.create 32 in
    let observe_all () = IH.reset pending in
    let out : Instr.t option ref list ref = ref [] in
    let emit i =
      let cell = ref (Some i) in
      out := cell :: !out;
      cell
    in
    (* rewrite a child region body from a seed copied off the parent *)
    let walk_child ?private_tbl:(pt = private_tbl) seed_known seed_zerodef
        (r : Instr.region) =
      { r with Instr.body = go seed_known seed_zerodef pt r.Instr.body }
    in
    let conservative_regions i =
      (* For / While / Fork / Workshare: kill the summary footprint in
         the parent, then walk children seeded with the surviving facts
         (sound for any trip count / strand interleaving: seeds only
         contain cells no execution of the region writes). *)
      let s =
        summarize eligible cint
          (List.concat_map (fun (r : Instr.region) -> r.Instr.body)
             (Instr.regions i))
      in
      observe_all ();
      apply_summary s known zerodef pending;
      s
    in
    (* Re-analyze a loop body with cells seeded to their loop-entry value
       when iteration provably re-establishes it (the adjoint
       accumulate-then-zero pattern): the entry value from outside
       matches the body-exit value of a conservative first analysis. *)
    let loop_body_with_seed ~outer_vals (s : summary) (r : Instr.region) =
      let pass seed_extra =
        let k = IH.copy known and z = IH.copy zerodef in
        List.iter (fun (key, a) -> IH.replace k key a) seed_extra;
        let r' = walk_child k z r in
        r', k, z
      in
      let r1, k1, z1 = pass [] in
      let stable =
        IH.fold
          (fun key () acc ->
            match IH.find_opt outer_vals key with
            | Some (Val v) -> (
              match lookup k1 z1 key with
              | Val v' when same_val v v' -> (key, Val v) :: acc
              | _ -> acc)
            | Some Zero -> (
              match lookup k1 z1 key with
              | Val v' when is_plus_zero v' -> (key, Zero) :: acc
              | Zero -> (key, Zero) :: acc
              | _ -> acc)
            | _ -> acc)
          s.s_cells []
      in
      if stable = [] then r1
      else begin
        let r2, k2, z2 = pass stable in
        (* the body re-establishes these at exit; republish them *)
        List.iter
          (fun (key, a) ->
            let ok =
              match a, lookup k2 z2 key with
              | Val v, Val v' -> same_val v v'
              | Zero, Zero -> true
              | Zero, Val v' -> is_plus_zero v'
              | _ -> false
            in
            if ok then IH.replace known key a)
          stable;
        r2
      end
    in
    List.iter
      (fun (i : Instr.t) ->
        let i = map_uses sub i in
        note_const i;
        match i with
        | Instr.If (rs, c, t, e) ->
          (* branches may read anything still pending *)
          observe_all ();
          let kt = IH.copy known and zt = IH.copy zerodef in
          let ke = IH.copy known and ze = IH.copy zerodef in
          let t' = walk_child kt zt t in
          let e' = walk_child ke ze e in
          (* merge the branch exits; disagreeing known cells become
             fresh If results (the mem2reg phi) *)
          let keys : (int * int, unit) IH.t = IH.create 16 in
          IH.iter (fun k _ -> IH.replace keys k ()) kt;
          IH.iter (fun k _ -> IH.replace keys k ()) ke;
          IH.reset known;
          IH.reset zerodef;
          IH.iter
            (fun b () -> if IH.mem ze b then IH.replace zerodef b ())
            zt;
          let promote = ref [] in
          IH.iter
            (fun key () ->
              let mt = lookup kt zt key and me = lookup ke ze key in
              let merged =
                match mt, me with
                | Unk, _ | _, Unk -> Unk
                | Zero, Zero -> Zero
                | Val a, Val b when same_val a b -> Val a
                | Val a, (Zero | Val _) when is_plus_zero a -> (
                  match me with
                  | Zero -> Zero
                  | Val b when is_plus_zero b -> Val a
                  | _ -> promote := (key, mt, me) :: !promote; Unk)
                | Zero, Val b when is_plus_zero b -> Zero
                | (Val _ | Zero), (Val _ | Zero) ->
                  promote := (key, mt, me) :: !promote;
                  Unk
              in
              match merged with
              | Unk ->
                if IH.mem zerodef (fst key) then IH.replace known key Unk
              | a -> IH.replace known key a)
            keys;
          (* materialize promoted cells: extend results and both yields *)
          let extra_res = ref [] and extra_t = ref [] and extra_e = ref [] in
          let materialize (extras : Instr.t list ref) side_zero_ty a =
            match a with
            | Val v -> Some v
            | Zero -> (
              match zero_const_of side_zero_ty with
              | Some c ->
                let z = fresh ctx side_zero_ty "mf.zero" in
                extras := Instr.Const (z, c) :: !extras;
                note_const (Instr.Const (z, c));
                Some z
              | None -> None)
            | Unk -> None
          in
          (* Reuse an existing result whose then/else yields already carry
             exactly these merged values — typically a phi a previous run
             of this pass materialized.  Without this, re-running the pass
             re-promotes the same cells into fresh results every time and
             the post-AD pipeline stops being idempotent. *)
          let matches a y =
            match a with
            | Val v -> same_val v y
            | Zero -> is_plus_zero y
            | Unk -> false
          in
          let reuse =
            let yields (r : Instr.region) =
              match List.rev r.Instr.body with
              | Instr.Yield vs :: _ -> Some vs
              | _ -> None
            in
            match yields t', yields e' with
            | Some yt, Some ye ->
              fun ty mt me ->
                let rec find rs yt ye =
                  match rs, yt, ye with
                  | r :: _, a :: _, bv :: _
                    when Var.ty r = ty && matches mt a && matches me bv ->
                    Some r
                  | _ :: rs', _ :: yt', _ :: ye' -> find rs' yt' ye'
                  | _ -> None
                in
                find rs yt ye
            | _ -> fun _ _ _ -> None
          in
          let aval_eq a bv =
            match a, bv with
            | Val x, Val y -> same_val x y
            | Zero, Zero -> true
            | _ -> false
          in
          let created = ref [] in
          let tpre = ref [] and epre = ref [] in
          List.iter
            (fun (key, mt, me) ->
              let ty =
                match mt, me with
                | Val v, _ | _, Val v -> Var.ty v
                | _ -> Ty.Float
              in
              match reuse ty mt me with
              | Some r -> IH.replace known key (Val r)
              | None -> (
                match
                  List.find_opt
                    (fun (ty', mt', me', _) ->
                      ty = ty' && aval_eq mt mt' && aval_eq me me')
                    !created
                with
                | Some (_, _, _, r) -> IH.replace known key (Val r)
                | None -> (
                  match materialize tpre ty mt, materialize epre ty me with
                  | Some vt, Some ve ->
                    let r = fresh ctx ty "mf.phi" in
                    extra_res := r :: !extra_res;
                    extra_t := vt :: !extra_t;
                    extra_e := ve :: !extra_e;
                    created := (ty, mt, me, r) :: !created;
                    IH.replace known key (Val r)
                  | _ -> ())))
            !promote;
          let extend (r : Instr.region) pre extras =
            match List.rev r.Instr.body with
            | Instr.Yield vs :: rest ->
              { r with
                Instr.body =
                  List.rev_append rest
                    (List.rev pre @ [ Instr.Yield (vs @ extras) ])
              }
            | _ -> r (* unterminated branch: leave untouched *)
          in
          if !extra_res = [] then ignore (emit (Instr.If (rs, c, t', e')))
          else begin
            let t' = extend t' !tpre (List.rev !extra_t) in
            let e' = extend e' !epre (List.rev !extra_e) in
            ignore
              (emit (Instr.If (rs @ List.rev !extra_res, c, t', e')))
          end
        | Instr.For r ->
          let outer_vals : (int * int, aval) IH.t = IH.create 16 in
          let s =
            summarize eligible cint r.body.Instr.body
          in
          IH.iter
            (fun key () ->
              IH.replace outer_vals key (lookup known zerodef key))
            s.s_cells;
          observe_all ();
          apply_summary s known zerodef pending;
          let body = loop_body_with_seed ~outer_vals s r.body in
          ignore (emit (Instr.For { r with body }))
        | Instr.Workshare r ->
          let outer_vals : (int * int, aval) IH.t = IH.create 16 in
          let s = summarize eligible cint r.body.Instr.body in
          IH.iter
            (fun key () ->
              IH.replace outer_vals key (lookup known zerodef key))
            s.s_cells;
          observe_all ();
          apply_summary s known zerodef pending;
          let body = loop_body_with_seed ~outer_vals s r.body in
          ignore (emit (Instr.Workshare { r with body }))
        | Instr.While { cond; body } ->
          let s =
            summarize eligible cint
              (cond.Instr.body @ body.Instr.body)
          in
          observe_all ();
          apply_summary s known zerodef pending;
          let cond' =
            walk_child (IH.copy known) (IH.copy zerodef) cond
          in
          let body' =
            walk_child (IH.copy known) (IH.copy zerodef) body
          in
          ignore (emit (Instr.While { cond = cond'; body = body' }))
        | Instr.Fork r ->
          ignore (conservative_regions i);
          let body =
            walk_child
              ~private_tbl:(Some (IH.create 16))
              (IH.copy known) (IH.copy zerodef) r.body
          in
          ignore (emit (Instr.Fork { r with body }))
        | Instr.Alloc (v, ety, _, _) ->
          ignore (emit i);
          if eligible (Var.id v) then begin
            (match private_tbl with
            | Some t -> IH.replace t (Var.id v) ()
            | None -> ());
            if zero_const_of ety <> None then
              IH.replace zerodef (Var.id v) ()
          end
        | Instr.Store (p, ix, x) when eligible (Var.id p) -> (
          match cint ix with
          | Some idx -> (
            let key = Var.id p, idx in
            let cur = lookup known zerodef key in
            let redundant =
              match cur with
              | Val y -> same_val y x
              | Zero -> is_plus_zero x
              | Unk -> false
            in
            if redundant then ()
            else begin
              (* previous unobserved store to the same cell is dead *)
              (match IH.find_opt pending key with
              | Some cell -> cell := None
              | None -> ());
              IH.replace known key (Val x);
              IH.replace pending key (emit i)
            end)
          | None ->
            kill_base known zerodef pending (Var.id p);
            ignore (emit i))
        | Instr.Load (v, p, ix) when eligible (Var.id p) -> (
          let observe_base () =
            IH.filter_map_inplace
              (fun (b, _) c -> if b = Var.id p then None else Some c)
              pending
          in
          match cint ix with
          | Some idx -> (
            let key = Var.id p, idx in
            match lookup known zerodef key with
            | Val value -> IH.replace alias (Var.id v) value
            | Zero -> (
              (* the cell still holds the allocation's zero fill;
                 materialize it as a constant in place of the load *)
              match zero_const_of (Var.ty v) with
              | Some c ->
                IH.remove alias (Var.id v);
                let ci = Instr.Const (v, c) in
                note_const ci;
                IH.replace known key (Val v);
                ignore (emit ci)
              | None ->
                observe_base ();
                IH.remove alias (Var.id v);
                IH.replace known key (Val v);
                ignore (emit i))
            | Unk ->
              (* reading an unknown cell observes all pending stores to
                 this base *)
              observe_base ();
              IH.remove alias (Var.id v);
              IH.replace known key (Val v);
              ignore (emit i))
          | None ->
            observe_base ();
            IH.remove alias (Var.id v);
            ignore (emit i))
        | Instr.AtomicAdd (p, ix, _) when eligible (Var.id p) -> (
          match cint ix with
          | Some idx ->
            let key = Var.id p, idx in
            IH.replace known key Unk;
            IH.remove pending key;
            ignore (emit i)
          | None ->
            kill_base known zerodef pending (Var.id p);
            ignore (emit i))
        | Instr.Free p when eligible (Var.id p) ->
          (* stores never observed before the free are dead *)
          IH.iter
            (fun (b, _) cell -> if b = Var.id p then cell := None)
            pending;
          kill_base known zerodef pending (Var.id p);
          ignore (emit i)
        | Instr.Barrier ->
          (* other strands may publish writes to shared buffers here;
             allocations made inside this Fork body stay private *)
          observe_all ();
          let is_private b =
            match private_tbl with
            | Some t -> IH.mem t b
            | None -> false
          in
          IH.filter_map_inplace
            (fun (b, _) v -> if is_private b then Some v else None)
            known;
          IH.filter_map_inplace
            (fun b v -> if is_private b then Some v else None)
            zerodef;
          ignore (emit i)
        | Instr.Return _ | Instr.Yield _ ->
          observe_all ();
          ignore (emit i)
        | i -> ignore (emit i))
      instrs;
    List.rev_map (fun cell -> !cell) !out |> List.filter_map Fun.id
  in
  let body = go (IH.create 32) (IH.create 8) None f.body in
  { f with body = subst_deep sub body; var_count = ctx.next }
