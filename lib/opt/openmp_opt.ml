(** Parallel-region optimizations (the paper's OpenMPOpt analog, §V-E).

    - {b Load hoisting}: loads inside a [Fork] (including inside its
      worksharing loops) whose address operands are defined outside the
      region are moved in front of it when nothing in the region may
      write memory. This is the extension the paper adds to LLVM's
      OpenMPOpt; its downstream effect on AD is the headline of Fig 9/10 —
      a hoisted load is a scope-0 SSA value the reverse sweep can use
      directly, so it stops being cached per-iteration.

    - {b Fork fusion}: two parallel regions separated only by movable
      allocation/arithmetic are merged into one region with a barrier
      between the bodies — exactly the forward+reverse fork pair the
      gradient emits (Fig 4), saving one fork/join overhead. *)

open Parad_ir
open Rewrite

(* ---- constant lifting ----

   Constants are pure and operand-free, so defining them at function entry
   dominates every use; lifting them first lets region-invariant loads
   whose index is a literal hoist cleanly. *)

let lift_consts (f : Func.t) : Func.t =
  let lifted = ref [] in
  let rec strip instrs =
    List.filter_map
      (fun (i : Instr.t) ->
        match i with
        | Instr.Const _ ->
          lifted := i :: !lifted;
          None
        | i ->
          Some
            (with_regions i
               (List.map
                  (fun (r : Instr.region) -> { r with Instr.body = strip r.body })
                  (Instr.regions i))))
      instrs
  in
  (* only strip from inside regions; top-level constants stay in place *)
  let body =
    List.map
      (fun (i : Instr.t) ->
        with_regions i
          (List.map
             (fun (r : Instr.region) -> { r with Instr.body = strip r.body })
             (Instr.regions i)))
      f.body
  in
  { f with body = List.rev !lifted @ body }

(* ---- load hoisting out of parallel regions ---- *)

let hoist_loads (f : Func.t) : Func.t =
  (* loads from readonly noalias parameters cannot be clobbered by the
     region's stores, so they hoist even from store-containing regions *)
  let ro_param v =
    match Func.param_attr f v with
    | Some a -> a.Func.readonly && a.Func.noalias
    | None -> false
  in
  let rec walk (scope : (int, unit) Hashtbl.t) instrs =
    let out = ref [] in
    List.iter
      (fun (i : Instr.t) ->
        let i =
          with_regions i
            (List.map
               (fun (r : Instr.region) ->
                 let s = Hashtbl.copy scope in
                 List.iter (fun v -> Hashtbl.replace s (Var.id v) ()) (Instr.defs i);
                 List.iter
                   (fun p -> Hashtbl.replace s (Var.id p) ())
                   r.Instr.params;
                 { r with Instr.body = walk s r.body })
               (Instr.regions i))
        in
        (match i with
        | Instr.Fork ({ body; _ } as r) ->
          let store_free = not (List.exists clobbers body.Instr.body) in
          (* Collect hoistable loads anywhere inside the fork (body and
             worksharing loops), in program order. *)
          let hoisted = ref [] in
          let rec scrub instrs =
            List.filter_map
              (fun (j : Instr.t) ->
                match j with
                | Instr.Load (_, p, ix)
                  when Hashtbl.mem scope (Var.id p)
                       && Hashtbl.mem scope (Var.id ix)
                       && (store_free || ro_param p) ->
                  hoisted := j :: !hoisted;
                  None
                | j ->
                  Some
                    (with_regions j
                       (List.map
                          (fun (rr : Instr.region) ->
                            { rr with Instr.body = scrub rr.body })
                          (Instr.regions j))))
              instrs
          in
          let kept = scrub body.Instr.body in
          out := !out @ List.rev !hoisted;
          out :=
            !out @ [ Instr.Fork { r with body = { body with body = kept } } ]
        | i -> out := !out @ [ i ]);
        List.iter (fun v -> Hashtbl.replace scope (Var.id v) ()) (Instr.defs i))
      instrs;
    !out
  in
  let scope = Hashtbl.create 64 in
  List.iter (fun p -> Hashtbl.replace scope (Var.id p) ()) f.params;
  { f with body = walk scope f.body }

(* ---- fork fusion ---- *)

(* instructions that can slide above a parallel region: they read no
   memory and have no visible effect ordering against it *)
let movable (i : Instr.t) =
  pure i
  ||
  match i with
  | Instr.Alloc _ -> true
  | Instr.Call (_, ("cache.new" | "cache.newf"), _) -> true
  | _ -> false

let fuse_forks (f : Func.t) : Func.t =
  let rec go instrs =
    let instrs =
      List.map
        (fun (i : Instr.t) ->
          with_regions i
            (List.map
               (fun (r : Instr.region) -> { r with Instr.body = go r.body })
               (Instr.regions i)))
        instrs
    in
    let rec fuse = function
      | Instr.Fork ({ nth = n1; tid = t1; body = b1 } as r1) :: rest -> (
        (* look ahead for a second fork with the same width source,
           skipping movable instructions *)
        let rec split acc = function
          | Instr.Fork { nth = n2; tid = t2; body = b2 } :: tail
            when Var.equal n1 n2 ->
            Some (List.rev acc, (t2, b2), tail)
          | j :: tail when movable j -> split (j :: acc) tail
          | _ -> None
        in
        match split [] rest with
        | Some (movables, (t2, b2), tail) ->
          (* rename the second body's params to the first's *)
          let n1p =
            match b1.Instr.params with [ _; q ] -> q | _ -> assert false
          in
          let n2p =
            match b2.Instr.params with [ _; q ] -> q | _ -> assert false
          in
          let s v =
            if Var.equal v t2 then t1
            else if Var.equal v n2p then n1p
            else v
          in
          let b2body = subst_deep s b2.Instr.body in
          let fused =
            Instr.Fork
              {
                r1 with
                body =
                  {
                    b1 with
                    Instr.body = b1.Instr.body @ (Instr.Barrier :: b2body);
                  };
              }
          in
          (* movables slide above the fused region *)
          fuse (movables @ (fused :: tail))
        | None -> Instr.Fork r1 :: fuse rest)
      | i :: rest -> i :: fuse rest
      | [] -> []
    in
    fuse instrs
  in
  { f with body = go f.body }

let run ?(fuse = true) (f : Func.t) =
  let f = lift_consts f in
  let f = hoist_loads f in
  if fuse then fuse_forks f else f
