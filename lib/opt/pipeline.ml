(** Pass manager and standard pipelines. *)

open Parad_ir

type pass = { name : string; run : Prog.t -> Func.t -> Func.t }

let fold = { name = "constfold"; run = (fun _ f -> Passes.fold_func f) }
let cse = { name = "cse"; run = (fun _ f -> Passes.cse_func f) }
let dce = { name = "dce"; run = (fun _ f -> Passes.dce_func f) }
let licm = { name = "licm"; run = (fun _ f -> Passes.licm_func f) }

let inline ?max_size () =
  { name = "inline"; run = (fun p f -> Inline.inline_func ?max_size p f) }

let openmp_opt ?fuse () =
  { name = "openmp-opt"; run = (fun _ f -> Openmp_opt.run ?fuse f) }

let mem_forward =
  { name = "mem-forward"; run = (fun _ f -> Mem_forward.run_func f) }

(** The default pre-differentiation pipeline (§V-E). The second [cse]
    merges the duplicates LICM hoists out of sibling loops, making one
    pipeline run a fixpoint (running it again is a no-op). *)
let o2 = [ inline (); fold; cse; licm; cse; dce ]

(** [o2] plus parallel-region optimization (the paper's "OpenMPOpt"
    configuration). OpenMPOpt hoists loads and cache allocations out of
    parallel regions, so [cse] runs once more after it. *)
let o2_openmp = [ inline (); fold; cse; licm; openmp_opt (); cse; dce ]

(** Post-AD cleanup: promote adjoint-register slots (mem2reg analog),
    fold, and sweep dead code. The second [mem_forward] picks up the
    stores the first round's forwarding left dead (their loads are gone
    only after cse/dce), which also makes the pipeline a fixpoint. Fork
    fusion (Fig 4) is kept separate as an ablation: see [post_ad_fuse]. *)
let post_ad = [ mem_forward; fold; cse; licm; cse; mem_forward; dce ]

let post_ad_fuse =
  [ mem_forward; fold; cse; licm; openmp_opt (); cse; mem_forward; dce ]

(** Apply passes to one function of a program, in order, verifying the
    result; returns a new program. *)
let run_on (prog : Prog.t) fname passes =
  let prog = Prog.copy prog in
  List.iter
    (fun pass ->
      let f = Prog.find_exn prog fname in
      let f' = pass.run prog f in
      (match Verifier.check_func f' with
      | () -> ()
      | exception Verifier.Ill_formed m ->
        invalid_arg
          (Fmt.str "pass %s broke function %s: %s" pass.name fname m));
      Prog.add prog f')
    passes;
  prog

(** Apply passes to every function. *)
let run (prog : Prog.t) passes =
  List.fold_left
    (fun prog (f : Func.t) -> run_on prog f.name passes)
    prog (Prog.functions prog)
