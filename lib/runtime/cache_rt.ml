(** Runtime backing for the AD engine's value caches (paper §IV-C).

    The reverse-pass transform emits [cache.*] intrinsic calls; each cache
    is a growable array of runtime values indexed by a linearized
    iteration/thread index computed in IR. Growth doubling gives the
    "dynamically reallocate" behaviour of caching case 3 (unknown trip
    counts) without a realloc instruction in the IR.

    Caches whose planned key type is [Ty.Float] use an unboxed
    [float array] fast path (["cache.newf"]) instead of boxed [Value.t]
    cells — the minimal-cache representation of §V-E; a write bitmap
    preserves read-before-write detection. The table also tracks cell
    occupancy so the runtime can report cells stored and the peak live
    cache footprint. *)

open Value

type storage =
  | Boxed of Value.t array
  | Floats of float array * Bytes.t  (** cells, written bitmap *)

type cache = {
  mutable s : storage;
  mutable freed : bool;
  mutable nwritten : int;  (** distinct cells written so far *)
}

type t = {
  mutable table : cache array;
  mutable n : int;
  mutable cells_written : int;
      (** total distinct cells ever written, across all caches *)
  mutable live_cells : int;  (** written cells of not-yet-freed caches *)
  mutable peak_cells : int;  (** high-water mark of [live_cells] *)
}

let mk_boxed capacity =
  Boxed (Array.make (max capacity 4) VUnit)

let mk_floats capacity =
  let n = max capacity 4 in
  Floats (Array.make n 0.0, Bytes.make n '\000')

let create () =
  {
    table =
      Array.init 8 (fun _ -> { s = Boxed [||]; freed = true; nwritten = 0 });
    n = 0;
    cells_written = 0;
    live_cells = 0;
    peak_cells = 0;
  }

let fresh ?(unboxed = false) t ~capacity =
  let c =
    {
      s = (if unboxed then mk_floats capacity else mk_boxed capacity);
      freed = false;
      nwritten = 0;
    }
  in
  if t.n = Array.length t.table then begin
    let bigger =
      Array.init (2 * t.n) (fun i ->
          if i < t.n then t.table.(i)
          else { s = Boxed [||]; freed = true; nwritten = 0 })
    in
    t.table <- bigger
  end;
  t.table.(t.n) <- c;
  t.n <- t.n + 1;
  t.n - 1

let get_cache t id =
  if id < 0 || id >= t.n then error "cache: unknown cache %d" id;
  let c = t.table.(id) in
  if c.freed then error "cache: use after free of cache %d" id;
  c

let is_unboxed t ~id =
  match (get_cache t id).s with Floats _ -> true | Boxed _ -> false

let note_written t c =
  c.nwritten <- c.nwritten + 1;
  t.cells_written <- t.cells_written + 1;
  t.live_cells <- t.live_cells + 1;
  if t.live_cells > t.peak_cells then t.peak_cells <- t.live_cells

let set t ~id ~idx v =
  let c = get_cache t id in
  if idx < 0 then error "cache: negative index %d" idx;
  match c.s with
  | Boxed cells ->
    let n = Array.length cells in
    let cells =
      if idx >= n then begin
        let bigger = Array.make (max (2 * n) (idx + 1)) VUnit in
        Array.blit cells 0 bigger 0 n;
        c.s <- Boxed bigger;
        bigger
      end
      else cells
    in
    if cells.(idx) = VUnit then note_written t c;
    cells.(idx) <- v
  | Floats (cells, written) ->
    let x =
      match v with
      | VFloat x -> x
      | _ -> error "cache %d: non-float value in a float cache" id
    in
    let n = Array.length cells in
    let cells, written =
      if idx >= n then begin
        let m = max (2 * n) (idx + 1) in
        let bigger = Array.make m 0.0 in
        Array.blit cells 0 bigger 0 n;
        let wbigger = Bytes.make m '\000' in
        Bytes.blit written 0 wbigger 0 n;
        c.s <- Floats (bigger, wbigger);
        bigger, wbigger
      end
      else cells, written
    in
    if Bytes.get written idx = '\000' then begin
      note_written t c;
      Bytes.set written idx '\001'
    end;
    cells.(idx) <- x

let get t ~id ~idx =
  let c = get_cache t id in
  (match c.s with
  | Boxed cells ->
    if idx < 0 || idx >= Array.length cells then
      error "cache %d: index %d out of range" id idx
  | Floats (cells, _) ->
    if idx < 0 || idx >= Array.length cells then
      error "cache %d: index %d out of range" id idx);
  match c.s with
  | Boxed cells -> (
    match cells.(idx) with
    | VUnit -> error "cache %d: slot %d read before write" id idx
    | v -> v)
  | Floats (cells, written) ->
    if Bytes.get written idx = '\000' then
      error "cache %d: slot %d read before write" id idx;
    VFloat cells.(idx)

let free t ~id =
  let c = get_cache t id in
  c.freed <- true;
  t.live_cells <- t.live_cells - c.nwritten;
  c.nwritten <- 0;
  c.s <- Boxed [||]

let cells_written t = t.cells_written
let live_cells t = t.live_cells
let peak_cells t = t.peak_cells

(* -- checkpoint support ------------------------------------------------ *)

(** All caches allocated so far, in id order, as [(cells, freed)]. Cells
    are copied (unboxed floats are boxed) so the caller owns a stable
    snapshot independent of the cache representation. *)
let export t =
  Array.init t.n (fun i ->
      let c = t.table.(i) in
      match c.s with
      | Boxed cells -> (Array.copy cells, c.freed)
      | Floats (cells, written) ->
        ( Array.init (Array.length cells) (fun j ->
              if Bytes.get written j = '\001' then VFloat cells.(j) else VUnit),
          c.freed ))

(** Replace the whole table with [blocks] (as produced by {!export});
    cache ids are reassigned densely from 0 so a restored run hands out
    the same ids the snapshotted run did. Occupancy counters are rebuilt
    from the snapshot. *)
let restore t blocks =
  let n = Array.length blocks in
  let table =
    Array.init (max 8 n) (fun _ ->
        { s = Boxed [||]; freed = true; nwritten = 0 })
  in
  t.live_cells <- 0;
  Array.iteri
    (fun i (cells, freed) ->
      let nwritten =
        Array.fold_left (fun acc v -> if v = VUnit then acc else acc + 1) 0 cells
      in
      table.(i) <- { s = Boxed cells; freed; nwritten };
      if not freed then t.live_cells <- t.live_cells + nwritten)
    blocks;
  if t.live_cells > t.peak_cells then t.peak_cells <- t.live_cells;
  t.table <- table;
  t.n <- n
