(** Runtime backing for the AD engine's value caches (paper §IV-C).

    The reverse-pass transform emits [cache.*] intrinsic calls; each cache
    is a growable array of runtime values indexed by a linearized
    iteration/thread index computed in IR. Growth doubling gives the
    "dynamically reallocate" behaviour of caching case 3 (unknown trip
    counts) without a realloc instruction in the IR.

    Caches whose planned key type is [Ty.Float] use an unboxed
    [float array] fast path (["cache.newf"]) instead of boxed [Value.t]
    cells — the minimal-cache representation of §V-E; a write bitmap
    preserves read-before-write detection. The table also tracks cell
    occupancy so the runtime can report cells stored and the peak live
    cache footprint. *)

open Value

type storage =
  | Boxed of Value.t array
  | Floats of float array * Bytes.t  (** cells, written bitmap *)

(** ABFT seal over a cache's float-valued cells: the coverage mask and
    FNV-1a digest frozen at seal time. Cells written after sealing land
    outside the mask and do not disturb the digest; a legitimate
    overwrite of a covered cell drops the seal (see {!set}), so any
    digest mismatch at verify time is a corruption of memory the
    program never rewrote — a silent bit flip. *)
type seal = {
  mask : Bytes.t;  (** '\001' where a float cell is covered *)
  covered : int;  (** population count of [mask] *)
  digest : int64;  (** FNV-1a over covered cells' bits, index order *)
}

type cache = {
  mutable s : storage;
  mutable freed : bool;
  mutable nwritten : int;  (** distinct cells written so far *)
  mutable seal : seal option;
}

type t = {
  mutable table : cache array;
  mutable n : int;
  mutable cells_written : int;
      (** total distinct cells ever written, across all caches *)
  mutable live_cells : int;  (** written cells of not-yet-freed caches *)
  mutable peak_cells : int;  (** high-water mark of [live_cells] *)
  mutable protect : bool;
      (** arm ABFT sealing: caches are sealed on first read and checked
          at checkpoint boundaries / free / run end. Off by default so
          corruption-free runs pay nothing. *)
}

let mk_boxed capacity =
  Boxed (Array.make (max capacity 4) VUnit)

let mk_floats capacity =
  let n = max capacity 4 in
  Floats (Array.make n 0.0, Bytes.make n '\000')

let create () =
  {
    table =
      Array.init 8 (fun _ ->
          { s = Boxed [||]; freed = true; nwritten = 0; seal = None });
    n = 0;
    cells_written = 0;
    live_cells = 0;
    peak_cells = 0;
    protect = false;
  }

let fresh ?(unboxed = false) t ~capacity =
  let c =
    {
      s = (if unboxed then mk_floats capacity else mk_boxed capacity);
      freed = false;
      nwritten = 0;
      seal = None;
    }
  in
  if t.n = Array.length t.table then begin
    let bigger =
      Array.init (2 * t.n) (fun i ->
          if i < t.n then t.table.(i)
          else { s = Boxed [||]; freed = true; nwritten = 0; seal = None })
    in
    t.table <- bigger
  end;
  t.table.(t.n) <- c;
  t.n <- t.n + 1;
  t.n - 1

let get_cache t id =
  if id < 0 || id >= t.n then error "cache: unknown cache %d" id;
  let c = t.table.(id) in
  if c.freed then error "cache: use after free of cache %d" id;
  c

let is_unboxed t ~id =
  match (get_cache t id).s with Floats _ -> true | Boxed _ -> false

(* -- ABFT seals -------------------------------------------------------- *)

(* FNV-1a over the raw bits of covered floats, in index order. Kept
   local: Checkpoint depends on this module, not the other way round. *)
let fnv_init = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv_float h x =
  let bits = Int64.bits_of_float x in
  let h = ref h in
  for k = 0 to 7 do
    let b =
      Int64.to_int (Int64.logand (Int64.shift_right_logical bits (8 * k)) 0xFFL)
    in
    h := Int64.mul (Int64.logxor !h (Int64.of_int b)) fnv_prime
  done;
  !h

let seal_cache c =
  match c.s with
  | Boxed cells ->
    let n = Array.length cells in
    let mask = Bytes.make n '\000' in
    let covered = ref 0
    and h = ref fnv_init in
    for i = 0 to n - 1 do
      match cells.(i) with
      | VFloat x ->
        Bytes.set mask i '\001';
        incr covered;
        h := fnv_float !h x
      | _ -> ()
    done;
    { mask; covered = !covered; digest = !h }
  | Floats (cells, written) ->
    let n = Array.length cells in
    let mask = Bytes.sub written 0 n in
    let covered = ref 0
    and h = ref fnv_init in
    for i = 0 to n - 1 do
      if Bytes.get mask i = '\001' then begin
        incr covered;
        h := fnv_float !h cells.(i)
      end
    done;
    { mask; covered = !covered; digest = !h }

let verify_cache c =
  match c.seal with
  | None -> true
  | Some s ->
    let m = Bytes.length s.mask in
    let h = ref fnv_init in
    (match c.s with
    | Boxed cells ->
      for i = 0 to m - 1 do
        if Bytes.get s.mask i = '\001' then
          match cells.(i) with
          | VFloat x -> h := fnv_float !h x
          (* a covered cell can only stop being a float through [set],
             which drops the seal — defensively treat it as corrupt *)
          | _ -> h := Int64.lognot !h
      done
    | Floats (cells, _) ->
      for i = 0 to m - 1 do
        if Bytes.get s.mask i = '\001' then h := fnv_float !h cells.(i)
      done);
    Int64.equal !h s.digest

(** (Re)seal every live cache with written cells. Returns the number of
    cells digested, for virtual-cost charging. *)
let seal_all t =
  let cells = ref 0 in
  for i = 0 to t.n - 1 do
    let c = t.table.(i) in
    if (not c.freed) && c.nwritten > 0 then begin
      let s = seal_cache c in
      c.seal <- Some s;
      cells := !cells + s.covered
    end
  done;
  !cells

(** True when at least one live cache is sealed — i.e. there is covered
    memory a pending bit flip could strike. The flip poll holds its
    event until this is true, so a plan's flip lands on detectable
    state instead of being consumed against an empty address space. *)
let has_sealed t =
  let rec scan i =
    i < t.n
    && ((not t.table.(i).freed) && t.table.(i).seal <> None || scan (i + 1))
  in
  scan 0

(** Check every sealed live cache against its seal. Returns
    [(cells_scanned, first_corrupt_cache_id)]. *)
let verify t =
  let scanned = ref 0
  and bad = ref None in
  for i = 0 to t.n - 1 do
    let c = t.table.(i) in
    match c.seal with
    | Some s when not c.freed ->
      scanned := !scanned + s.covered;
      if !bad = None && not (verify_cache c) then bad := Some i
    | _ -> ()
  done;
  (!scanned, !bad)

(** Sealed-cell count of one live cache (0 when unsealed or freed), so
    the caller can charge the verify scan to virtual time. *)
let covered_id t ~id =
  if id < 0 || id >= t.n then 0
  else
    let c = t.table.(id) in
    match c.seal with Some s when not c.freed -> s.covered | _ -> 0

(** Check one cache (before freeing it). [true] = intact or unsealed. *)
let verify_id t ~id =
  if id < 0 || id >= t.n then true
  else
    let c = t.table.(id) in
    c.freed || verify_cache c

(** Land one bit flip in sealed memory, bypassing {!set} so the seal
    stays armed and the next verify sees the damage. [cell] is reduced
    mod the sealed-cell population so every plan hits live, protected
    memory; returns the [(cache, index)] struck, or [None] when nothing
    is sealed yet (the flip is provably masked: no covered cell
    existed to corrupt). *)
let flip t ~cell ~bit =
  let total = ref 0 in
  for i = 0 to t.n - 1 do
    match t.table.(i).seal with
    | Some s when not t.table.(i).freed -> total := !total + s.covered
    | _ -> ()
  done;
  if !total = 0 then None
  else begin
    let target = ((cell mod !total) + !total) mod !total in
    let mask64 = Int64.shift_left 1L (bit land 63) in
    let hit = ref None
    and seen = ref 0 in
    (try
       for i = 0 to t.n - 1 do
         let c = t.table.(i) in
         match c.seal with
         | Some s when not c.freed ->
           if !seen + s.covered > target then begin
             (* the (target - seen)-th covered index of this cache *)
             let k = ref (target - !seen)
             and j = ref (-1) in
             (try
                for m = 0 to Bytes.length s.mask - 1 do
                  if Bytes.get s.mask m = '\001' then
                    if !k = 0 then begin
                      j := m;
                      raise Exit
                    end
                    else decr k
                done
              with Exit -> ());
             let xor x =
               Int64.float_of_bits (Int64.logxor (Int64.bits_of_float x) mask64)
             in
             (match c.s with
             | Floats (cells, _) -> cells.(!j) <- xor cells.(!j)
             | Boxed cells -> (
               match cells.(!j) with
               | VFloat x -> cells.(!j) <- VFloat (xor x)
               | _ -> ()));
             hit := Some (i, !j);
             raise Exit
           end
           else seen := !seen + s.covered
         | _ -> ()
       done
     with Exit -> ());
    !hit
  end

let note_written t c =
  c.nwritten <- c.nwritten + 1;
  t.cells_written <- t.cells_written + 1;
  t.live_cells <- t.live_cells + 1;
  if t.live_cells > t.peak_cells then t.peak_cells <- t.live_cells

let set t ~id ~idx v =
  let c = get_cache t id in
  if idx < 0 then error "cache: negative index %d" idx;
  (* a legitimate overwrite of a covered cell invalidates the frozen
     digest; drop the seal rather than report a false corruption (the
     cache is resealed at the next boundary) *)
  (match c.seal with
  | Some s when idx < Bytes.length s.mask && Bytes.get s.mask idx = '\001' ->
    c.seal <- None
  | _ -> ());
  match c.s with
  | Boxed cells ->
    let n = Array.length cells in
    let cells =
      if idx >= n then begin
        let bigger = Array.make (max (2 * n) (idx + 1)) VUnit in
        Array.blit cells 0 bigger 0 n;
        c.s <- Boxed bigger;
        bigger
      end
      else cells
    in
    (match cells.(idx) with VUnit -> note_written t c | _ -> ());
    cells.(idx) <- v
  | Floats (cells, written) ->
    let x =
      match v with
      | VFloat x -> x
      | _ -> error "cache %d: non-float value in a float cache" id
    in
    let n = Array.length cells in
    let cells, written =
      if idx >= n then begin
        let m = max (2 * n) (idx + 1) in
        let bigger = Array.make m 0.0 in
        Array.blit cells 0 bigger 0 n;
        let wbigger = Bytes.make m '\000' in
        Bytes.blit written 0 wbigger 0 n;
        c.s <- Floats (bigger, wbigger);
        bigger, wbigger
      end
      else cells, written
    in
    if Bytes.get written idx = '\000' then begin
      note_written t c;
      Bytes.set written idx '\001'
    end;
    cells.(idx) <- x

let get t ~id ~idx =
  let c = get_cache t id in
  (* seal on first read: once the reverse sweep starts consuming a
     cache its contents are supposed to be frozen, so this is the
     earliest point the whole read set can be covered *)
  if t.protect && c.seal = None && c.nwritten > 0 then
    c.seal <- Some (seal_cache c);
  (match c.s with
  | Boxed cells ->
    if idx < 0 || idx >= Array.length cells then
      error "cache %d: index %d out of range" id idx
  | Floats (cells, _) ->
    if idx < 0 || idx >= Array.length cells then
      error "cache %d: index %d out of range" id idx);
  match c.s with
  | Boxed cells -> (
    match cells.(idx) with
    | VUnit -> error "cache %d: slot %d read before write" id idx
    | v -> v)
  | Floats (cells, written) ->
    if Bytes.get written idx = '\000' then
      error "cache %d: slot %d read before write" id idx;
    VFloat cells.(idx)

(* Unboxed fast paths for the execution engine: same semantics (growth,
   occupancy, seal interaction, error messages) as {!set}/{!get} on a
   [Floats] cache without boxing the value; [Boxed] storage falls back to
   the boxed entry points. *)

(* Record-level entry points ([_c]): the execution engine resolves the
   cache record once per compiled call and reuses it for the
   representation test, the write and the read — {!set_f}/{!get_f} are
   these plus a {!get_cache}. *)
let set_f_c t c ~id ~idx x =
  match c.s with
  | Boxed _ -> set t ~id ~idx (VFloat x)
  | Floats (cells, written) ->
    if idx < 0 then error "cache: negative index %d" idx;
    (match c.seal with
    | Some s when idx < Bytes.length s.mask && Bytes.get s.mask idx = '\001' ->
      c.seal <- None
    | _ -> ());
    let n = Array.length cells in
    let cells, written =
      if idx >= n then begin
        let m = max (2 * n) (idx + 1) in
        let bigger = Array.make m 0.0 in
        Array.blit cells 0 bigger 0 n;
        let wbigger = Bytes.make m '\000' in
        Bytes.blit written 0 wbigger 0 n;
        c.s <- Floats (bigger, wbigger);
        bigger, wbigger
      end
      else cells, written
    in
    if Bytes.get written idx = '\000' then begin
      note_written t c;
      Bytes.set written idx '\001'
    end;
    cells.(idx) <- x

let set_f t ~id ~idx x = set_f_c t (get_cache t id) ~id ~idx x

let get_f_c t c ~id ~idx =
  match c.s with
  | Boxed _ -> Value.to_float (get t ~id ~idx)
  | Floats (cells, written) ->
    if t.protect && c.seal = None && c.nwritten > 0 then
      c.seal <- Some (seal_cache c);
    if idx < 0 || idx >= Array.length cells then
      error "cache %d: index %d out of range" id idx;
    if Bytes.get written idx = '\000' then
      error "cache %d: slot %d read before write" id idx;
    cells.(idx)

let get_f t ~id ~idx = get_f_c t (get_cache t id) ~id ~idx

let is_floats c = match c.s with Floats _ -> true | Boxed _ -> false

let free t ~id =
  let c = get_cache t id in
  c.freed <- true;
  t.live_cells <- t.live_cells - c.nwritten;
  c.nwritten <- 0;
  c.s <- Boxed [||];
  c.seal <- None

let cells_written t = t.cells_written
let live_cells t = t.live_cells
let peak_cells t = t.peak_cells

(* -- checkpoint support ------------------------------------------------ *)

(** All caches allocated so far, in id order, as [(cells, freed)]. Cells
    are copied (unboxed floats are boxed) so the caller owns a stable
    snapshot independent of the cache representation. *)
let export t =
  Array.init t.n (fun i ->
      let c = t.table.(i) in
      match c.s with
      | Boxed cells -> (Array.copy cells, c.freed)
      | Floats (cells, written) ->
        ( Array.init (Array.length cells) (fun j ->
              if Bytes.get written j = '\001' then VFloat cells.(j) else VUnit),
          c.freed ))

(** Replace the whole table with [blocks] (as produced by {!export});
    cache ids are reassigned densely from 0 so a restored run hands out
    the same ids the snapshotted run did. Occupancy counters are rebuilt
    from the snapshot. *)
let restore t blocks =
  let n = Array.length blocks in
  let table =
    Array.init (max 8 n) (fun _ ->
        { s = Boxed [||]; freed = true; nwritten = 0; seal = None })
  in
  t.live_cells <- 0;
  Array.iteri
    (fun i (cells, freed) ->
      let nwritten =
        Array.fold_left
          (fun acc v -> match v with VUnit -> acc | _ -> acc + 1)
          0 cells
      in
      (* seals do not survive a restore: the snapshot was taken from
         verified-clean state, and the restored caches are resealed at
         the next boundary / first read *)
      table.(i) <- { s = Boxed cells; freed; nwritten; seal = None };
      if not freed then t.live_cells <- t.live_cells + nwritten)
    blocks;
  if t.live_cells > t.peak_cells then t.peak_cells <- t.live_cells;
  t.table <- table;
  t.n <- n
