(** Runtime backing for the AD engine's value caches (paper §IV-C).

    The reverse-pass transform emits [cache.*] intrinsic calls; each cache
    is a growable array of runtime values indexed by a linearized
    iteration/thread index computed in IR. Growth doubling gives the
    "dynamically reallocate" behaviour of caching case 3 (unknown trip
    counts) without a realloc instruction in the IR. *)

open Value

type cache = { mutable cells : Value.t array; mutable freed : bool }

type t = { mutable table : cache array; mutable n : int }

let create () = { table = Array.make 8 { cells = [||]; freed = true }; n = 0 }

let fresh t ~capacity =
  let c = { cells = Array.make (max capacity 4) VUnit; freed = false } in
  if t.n = Array.length t.table then begin
    let bigger = Array.make (2 * t.n) c in
    Array.blit t.table 0 bigger 0 t.n;
    t.table <- bigger
  end;
  t.table.(t.n) <- c;
  t.n <- t.n + 1;
  t.n - 1

let get_cache t id =
  if id < 0 || id >= t.n then error "cache: unknown cache %d" id;
  let c = t.table.(id) in
  if c.freed then error "cache: use after free of cache %d" id;
  c

let set t ~id ~idx v =
  let c = get_cache t id in
  if idx < 0 then error "cache: negative index %d" idx;
  let n = Array.length c.cells in
  if idx >= n then begin
    let bigger = Array.make (max (2 * n) (idx + 1)) VUnit in
    Array.blit c.cells 0 bigger 0 n;
    c.cells <- bigger
  end;
  c.cells.(idx) <- v

let get t ~id ~idx =
  let c = get_cache t id in
  if idx < 0 || idx >= Array.length c.cells then
    error "cache %d: index %d out of range" id idx;
  match c.cells.(idx) with
  | VUnit -> error "cache %d: slot %d read before write" id idx
  | v -> v

let free t ~id =
  let c = get_cache t id in
  c.freed <- true;
  c.cells <- [||]

(* -- checkpoint support ------------------------------------------------ *)

(** All caches allocated so far, in id order, as [(cells, freed)]. Cells
    are copied so the caller owns a stable snapshot. *)
let export t =
  Array.init t.n (fun i ->
      let c = t.table.(i) in
      (Array.copy c.cells, c.freed))

(** Replace the whole table with [blocks] (as produced by {!export});
    cache ids are reassigned densely from 0 so a restored run hands out
    the same ids the snapshotted run did. *)
let restore t blocks =
  let n = Array.length blocks in
  let dummy = { cells = [||]; freed = true } in
  let table = Array.make (max 8 n) dummy in
  Array.iteri (fun i (cells, freed) -> table.(i) <- { cells; freed }) blocks;
  t.table <- table;
  t.n <- n
