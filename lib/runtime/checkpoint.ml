(** Checkpoint/restart of a rank's live state.

    A snapshot captures everything a replayed rank needs to resume at a
    program-designated point (the [parad.checkpoint] intrinsic, placed by
    the builder in an application's outer iteration loop): every memory
    buffer reachable from the program arguments (plus explicit extras
    named at the checkpoint site), the AD value caches, the MPI sequence
    counters and shadow-request table, and the rank's virtual clock.

    Snapshots are deterministic and byte-stable: buffers are serialized
    in buffer-id order, floats as their IEEE-754 bit patterns, and the
    scheduler itself is virtual-time deterministic — so two identical
    runs produce byte-identical snapshots (tested), and a snapshot plus a
    deterministic replay reproduces the original run bit-for-bit.

    Restore works by {e structural correspondence}: a replayed rank
    re-executes its preamble deterministically, so the n-th buffer it
    allocates is the same program object as the n-th buffer of the
    snapshotted run. Saved buffers whose id has a live counterpart are
    restored in place; saved buffers allocated during the skipped
    iterations (no counterpart) are resurrected fresh; every serialized
    pointer is remapped through that correspondence. Skipping itself is
    driven by {!Skip_iteration}: while a resume target is pending, the
    checkpoint intrinsic raises it and the interpreter's loop construct
    fast-forwards to the next iteration without executing the body.

    Consistency rule (see DESIGN.md): a checkpoint id is only globally
    usable once {e every} rank has a snapshot for it —
    {!latest_consistent} picks the newest such id for the supervised
    restart driver. *)

open Parad_ir
open Value

(** Raised by the [parad.checkpoint] intrinsic while fast-forwarding to a
    resume target; caught by the interpreter's loops, which skip the rest
    of the iteration body. *)
exception Skip_iteration

(** Raised when an ABFT region digest over live cache memory no longer
    matches its seal (see {!Cache_rt.seal}): a bit silently flipped in a
    cell the program never rewrote. [cr_cache] is the first cache whose
    digest failed, [cr_at] the virtual time of the check. The supervised
    recovery driver catches this and degrades to the newest consistent
    snapshot (taken from verified-clean state) instead of letting the
    corruption reach the gradient. *)
exception
  Corrupt_region of { cr_rank : int; cr_cache : int; cr_at : float }

(* ---- two-tier snapshot store ---- *)

type tier = Hot | Disk

(** Tiering policy of a store. [hot_budget = None] keeps every snapshot
    in the in-memory hot ring (the store-all baseline); [Some b] caps the
    ring at [b] snapshots per rank, evicting the oldest on overflow.
    [tiers = 2] demotes evicted snapshots to the byte-stable "disk" tier
    (restorable, but charged at disk bandwidth in the cost model);
    [tiers = 1] drops them outright — recovery then degrades to an older
    surviving snapshot or a cold restart. *)
type policy = { hot_budget : int option; tiers : int }

let default_policy = { hot_budget = None; tiers = 2 }

type entry = {
  mutable e_bytes : string;  (** payload while [Hot]; [""] once spilled *)
  e_sum : int64;  (** FNV-1a checksum of the pristine bytes *)
  e_cells : int;  (** payload cells, for bandwidth cost accounting *)
  mutable e_tier : tier;
  mutable e_path : string option;  (** spill file once demoted to [Disk] *)
}

type store = {
  snranks : int;
  policy : policy;
  snaps : (int * int, entry) Hashtbl.t;  (** (rank, ckpt id) -> entry *)
  hot : int Queue.t array;  (** per rank: hot-ring ids, oldest first *)
  sdir : string;  (** namespaced spill directory (created lazily) *)
  mutable sdir_made : bool;
}

(* Namespacing (ISSUE 7): every store spills under its own directory, so
   concurrent server requests — and concurrent CI jobs sharing a temp
   dir — cannot collide on snapshot files. The default namespace is
   unique per (process, store); an explicit [namespace] pins the path
   for callers that hand a run id across processes. *)
let ns_counter = ref 0

let fresh_namespace () =
  incr ns_counter;
  Printf.sprintf "%d-%d" (Unix.getpid ()) !ns_counter

let create_store ?(policy = default_policy) ?namespace ~nranks () =
  (match policy.hot_budget with
  | Some b when b < 1 ->
    error "checkpoint store: hot budget must be at least 1 (got %d)" b
  | _ -> ());
  if policy.tiers < 1 || policy.tiers > 2 then
    error "checkpoint store: tiers must be 1 or 2 (got %d)" policy.tiers;
  let ns =
    match namespace with Some ns -> ns | None -> fresh_namespace ()
  in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> ()
      | _ -> error "checkpoint store: bad namespace %S (use [A-Za-z0-9._-])" ns)
    ns;
  {
    snranks = nranks;
    policy;
    snaps = Hashtbl.create 32;
    hot = Array.init nranks (fun _ -> Queue.create ());
    sdir =
      Filename.concat (Filename.get_temp_dir_name ()) ("parad-snap-" ^ ns);
    sdir_made = false;
  }

let spill_dir store = store.sdir

let ensure_sdir store =
  if not store.sdir_made then begin
    (try Unix.mkdir store.sdir 0o700 with
    | Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    store.sdir_made <- true
  end

let spill_path store ~rank ~id =
  Filename.concat store.sdir (Printf.sprintf "r%d-c%d.snap" rank id)

let write_file path bytes =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc bytes)

(* [None] on any read failure: a vanished or unreadable spill file is
   indistinguishable from an evicted snapshot, and recovery already
   degrades cleanly on [Missing]. *)
let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        try Some (really_input_string ic (in_channel_length ic))
        with End_of_file | Sys_error _ -> None)

let remove_spill e =
  match e.e_path with
  | Some p ->
    (try Sys.remove p with Sys_error _ -> ());
    e.e_path <- None
  | None -> ()

(* Forget a snapshot entirely, deleting its spill file if any. *)
let drop_entry store key =
  match Hashtbl.find_opt store.snaps key with
  | None -> ()
  | Some e ->
    remove_spill e;
    Hashtbl.remove store.snaps key

(** Delete every spilled snapshot file and the namespace directory, and
    empty the store. Call when the run/request owning the store
    completes; stores whose snapshots a caller still reads (e.g. the
    recovery driver's [r_store]) must skip this. Idempotent. *)
let dispose store =
  Hashtbl.iter (fun _ e -> remove_spill e) store.snaps;
  Hashtbl.reset store.snaps;
  Array.iter Queue.clear store.hot;
  if store.sdir_made then begin
    (try Unix.rmdir store.sdir with Unix.Unix_error (_, _, _) -> ());
    store.sdir_made <- false
  end

(* 64-bit FNV-1a: cheap, deterministic, and sensitive to any single
   flipped byte — enough to model end-to-end snapshot integrity. *)
let checksum s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h :=
        Int64.mul
          (Int64.logxor !h (Int64.of_int (Char.code c)))
          0x100000001b3L)
    s;
  !h

type put_info = {
  p_bytes : int;  (** serialized size of the new snapshot *)
  p_evictions : int;  (** hot-ring evictions this put caused *)
  p_demoted_cells : int;  (** cells demoted to the disk tier (0 if dropped) *)
}

(** Insert a snapshot into the hot ring, evicting (demoting or dropping,
    per policy) the oldest hot snapshots of the same rank past the
    budget. *)
let put store ~rank ~id ~cells bytes =
  (* a re-taken id (replays revisit their sites) must not leak the old
     entry's spill file *)
  drop_entry store (rank, id);
  Hashtbl.replace store.snaps (rank, id)
    {
      e_bytes = bytes;
      e_sum = checksum bytes;
      e_cells = cells;
      e_tier = Hot;
      e_path = None;
    };
  let q = store.hot.(rank) in
  (* ...nor occupy two ring slots *)
  let q' = Queue.create () in
  Queue.iter (fun i -> if i <> id then Queue.add i q') q;
  Queue.clear q;
  Queue.transfer q' q;
  Queue.add id q;
  let evictions = ref 0 and demoted = ref 0 in
  (match store.policy.hot_budget with
  | None -> ()
  | Some budget ->
    while Queue.length q > budget do
      let old = Queue.pop q in
      incr evictions;
      match Hashtbl.find_opt store.snaps (rank, old) with
      | None -> ()
      | Some e ->
        if store.policy.tiers >= 2 then begin
          (* demotion is a real spill: bytes move to a namespaced file
             and the hot ring frees the memory *)
          ensure_sdir store;
          let path = spill_path store ~rank ~id:old in
          write_file path e.e_bytes;
          e.e_path <- Some path;
          e.e_bytes <- "";
          e.e_tier <- Disk;
          demoted := !demoted + e.e_cells
        end
        else drop_entry store (rank, old)
    done);
  { p_bytes = String.length bytes; p_evictions = !evictions;
    p_demoted_cells = !demoted }

type got = Got of string * tier | Corrupt | Missing

(** Fetch a snapshot, verifying its integrity checksum. A mismatch is
    reported as [Corrupt] so callers degrade to an older snapshot
    instead of replaying from garbage; a spilled snapshot whose file
    vanished (an external cleanup, a concurrent job misconfigured into
    the same namespace) reads as [Missing] for the same reason. *)
let get store ~rank ~id =
  match Hashtbl.find_opt store.snaps (rank, id) with
  | None -> Missing
  | Some e -> (
    let bytes =
      match e.e_path with None -> Some e.e_bytes | Some p -> read_file p
    in
    match bytes with
    | None -> Missing
    | Some b ->
      if Int64.equal (checksum b) e.e_sum then Got (b, e.e_tier) else Corrupt)

let snapshot_bytes store ~rank ~id =
  match get store ~rank ~id with Got (b, _) -> Some b | Corrupt | Missing -> None

let snapshot_tier store ~rank ~id =
  match Hashtbl.find_opt store.snaps (rank, id) with
  | Some e -> Some e.e_tier
  | None -> None

let valid store ~rank ~id =
  match get store ~rank ~id with Got _ -> true | Corrupt | Missing -> false

(** Fault-injection hook (tests, chaos soak): flip one payload byte so
    the checksum no longer matches. *)
let corrupt store ~rank ~id =
  match Hashtbl.find_opt store.snaps (rank, id) with
  | None -> error "checkpoint: cannot corrupt absent snapshot (%d, %d)" rank id
  | Some e -> (
    let flip s =
      let b = Bytes.of_string s in
      let i = Bytes.length b / 2 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x20));
      Bytes.to_string b
    in
    match e.e_path with
    | None -> e.e_bytes <- flip e.e_bytes
    | Some p -> (
      match read_file p with
      | Some s -> write_file p (flip s)
      | None -> error "checkpoint: cannot corrupt vanished spill file %s" p))

(** Drop checkpoint [id] on every rank — the binomial driver releasing a
    snapshot slot once the segments it guards are reversed. *)
let release store ~id =
  for rank = 0 to store.snranks - 1 do
    drop_entry store (rank, id);
    let q = store.hot.(rank) in
    let q' = Queue.create () in
    Queue.iter (fun i -> if i <> id then Queue.add i q') q;
    Queue.clear q;
    Queue.transfer q' q
  done

(** Newest checkpoint id for which every rank holds a *valid* snapshot,
    if any. Ranks pass checkpoints at different virtual times, so the
    newest id of any single rank may not be globally restorable yet; a
    corrupted or evicted snapshot likewise disqualifies its id, which is
    how recovery degrades to an older checkpoint instead of aborting. *)
let latest_consistent store =
  let ids =
    Hashtbl.fold
      (fun (r, id) _ acc -> if r = 0 then id :: acc else acc)
      store.snaps []
    |> List.sort_uniq (fun a b -> compare b a)
  in
  List.find_opt
    (fun id ->
      let ok = ref true in
      for r = 0 to store.snranks - 1 do
        if not (valid store ~rank:r ~id) then ok := false
      done;
      !ok)
    ids

(* ---- per-rank checkpoint session ---- *)

type session = {
  store : store;
  srank : int;
  mutable pending : int option;
      (** resume target: skip iterations until this checkpoint id, then
          restore from its snapshot *)
  mutable last_id : int;
      (** newest checkpoint id this rank has passed (taken, skipped or
          restored); the reverse-entry site [parad.checkpoint_rev]
          allocates [last_id + 1] so its snapshot orders after every
          forward-sweep snapshot *)
}

let session store ~rank ?resume () =
  { store; srank = rank; pending = resume; last_id = -1 }

(* ---- serialization (text tokens; deterministic by construction) ---- *)

let rec ty_code = function
  | Ty.Unit -> "U"
  | Ty.Bool -> "B"
  | Ty.Int -> "I"
  | Ty.Float -> "F"
  | Ty.Ptr t -> "P" ^ ty_code t

let ty_of_code s =
  let n = String.length s in
  let rec go i =
    if i >= n then error "checkpoint: bad type code %S" s
    else
      match s.[i] with
      | 'U' -> Ty.Unit
      | 'B' -> Ty.Bool
      | 'I' -> Ty.Int
      | 'F' -> Ty.Float
      | 'P' -> Ty.Ptr (go (i + 1))
      | _ -> error "checkpoint: bad type code %S" s
  in
  go 0

let kind_code = function
  | Instr.Heap -> "h"
  | Instr.Stack -> "s"
  | Instr.Gc -> "g"

let kind_of_code = function
  | "h" -> Instr.Heap
  | "s" -> Instr.Stack
  | "g" -> Instr.Gc
  | s -> error "checkpoint: bad buffer kind %S" s

let cell_code = function
  | VUnit -> "u"
  | VBool false -> "b0"
  | VBool true -> "b1"
  | VInt n -> "i" ^ string_of_int n
  | VFloat f -> "f" ^ Int64.to_string (Int64.bits_of_float f)
  | VPtr p -> Printf.sprintf "p%d:%d" p.buf.bid p.off
  | VNull ty -> "n" ^ ty_code ty

(* Decode one cell token; pointer targets are resolved through [lookup]
   (saved buffer id -> live buffer of the restored run). *)
let cell_of_code lookup s =
  let n = String.length s in
  if n = 0 then error "checkpoint: empty cell token";
  let rest () = String.sub s 1 (n - 1) in
  match s.[0] with
  | 'u' -> VUnit
  | 'b' -> VBool (rest () = "1")
  | 'i' -> VInt (int_of_string (rest ()))
  | 'f' -> VFloat (Int64.float_of_bits (Int64.of_string (rest ())))
  | 'n' -> VNull (ty_of_code (rest ()))
  | 'p' -> (
    match String.index_opt s ':' with
    | Some i ->
      let bid = int_of_string (String.sub s 1 (i - 1)) in
      let off = int_of_string (String.sub s (i + 1) (n - i - 1)) in
      VPtr { buf = lookup bid; off }
    | None -> error "checkpoint: bad pointer token %S" s)
  | _ -> error "checkpoint: bad cell token %S" s

(* ---- taking a snapshot ---- *)

(* Transitive pointer reachability from [roots], like the GC mark phase;
   freed buffers are recorded but their (poisoned) contents are not
   followed or kept. *)
let reachable roots =
  let seen : (int, buffer) Hashtbl.t = Hashtbl.create 64 in
  let rec mark v =
    match v with
    | VPtr p when not (Hashtbl.mem seen p.buf.bid) ->
      Hashtbl.add seen p.buf.bid p.buf;
      if not p.buf.freed then begin
        match p.buf.data with
        | VCells a -> Array.iter mark a
        | FCells _ -> ()
      end
    | VPtr _ | VUnit | VBool _ | VInt _ | VFloat _ | VNull _ -> ()
  in
  List.iter mark roots;
  Hashtbl.fold (fun _ b acc -> b :: acc) seen []
  |> List.sort (fun (a : buffer) b -> compare a.bid b.bid)

type taken = {
  t_cells : int;  (** cells captured, for cost accounting *)
  t_put : put_info;  (** store-side effects: bytes written, evictions *)
}

(** Snapshot rank state at checkpoint [id]. [roots] are the live values
    the buffer walk starts from — the entry function's arguments plus the
    extras listed at the checkpoint site; cache contents and MPI shadow
    buffers are added as roots implicitly. Rejects (with a clear error)
    checkpoints taken with an unwaited nonblocking request or inside an
    open collective: in-flight communication is not part of a rank-local
    snapshot. *)
let take session ~mem ~cache ~mpi ~roots ~id =
  let rank = session.srank in
  (match mpi with
  | None -> ()
  | Some m ->
    let n = Mpi_state.unwaited_requests m ~rank in
    if n > 0 then
      error
        "parad.checkpoint %d: rank %d has %d unwaited request(s); wait all \
         nonblocking sends/receives before checkpointing"
        id rank n;
    (match Mpi_state.open_collective m ~rank with
    | Some seq ->
      error
        "parad.checkpoint %d: rank %d is inside open collective #%d; \
         checkpoints must sit between completed collectives"
        id rank seq
    | None -> ());
    if not (Mpi_state.adj_idle m ~rank) then
      error
        "parad.checkpoint %d: rank %d has staged adjoint chunks or \
         unfulfilled adjoint expectations; flush and complete coalesced \
         adjoint communication before checkpointing"
        id rank);
  let shadows =
    match mpi with Some m -> Mpi_state.export_shadows m ~rank | None -> []
  in
  List.iter
    (fun (sid, (s : Mpi_state.shadow_req)) ->
      if s.srev <> None || s.stmp <> None || s.sexp <> None || s.sstaged then
        error
          "parad.checkpoint %d: rank %d: shadow request %d is mid-reverse; \
           checkpoints inside the reverse sweep are unsupported"
          id rank sid)
    shadows;
  let cache_blocks = Cache_rt.export cache in
  let all_roots =
    roots
    @ Array.to_list
        (Array.concat (Array.to_list (Array.map (fun (c, _) -> c) cache_blocks)))
    @ List.map (fun (_, (s : Mpi_state.shadow_req)) -> VPtr s.sptr) shadows
  in
  let bufs = reachable all_roots in
  ignore mem;
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let stats = Sim.stats () in
  pf "parad-ckpt 1\n";
  pf "rank %d id %d clock %Ld instrs %d tape %d\n" rank id
    (Int64.bits_of_float (Sim.now ()))
    stats.instrs stats.tape_entries;
  (match mpi with
  | None -> pf "mpi none\n"
  | Some m ->
    let next_req, next_shadow, coll_seq = Mpi_state.rank_counters m ~rank in
    pf "mpi %d %d %d\n" next_req next_shadow coll_seq);
  pf "cache %d\n" (Array.length cache_blocks);
  Array.iteri
    (fun cid (cells, freed) ->
      pf "block %d %d %d\n" cid (Array.length cells) (if freed then 1 else 0);
      Array.iter (fun v -> pf "%s " (cell_code v)) cells;
      pf "\n")
    cache_blocks;
  pf "buffers %d\n" (List.length bufs);
  let cells = ref 0 in
  List.iter
    (fun (buf : buffer) ->
      let n = cells_len buf.data in
      pf "buf %d %s %d %s %d %d\n" buf.bid (ty_code buf.elem) n
        (kind_code buf.kind) buf.socket
        (if buf.freed then 1 else 0);
      if not buf.freed then begin
        cells := !cells + n;
        for i = 0 to n - 1 do
          pf "%s " (cell_code (get_cell buf.data i))
        done;
        pf "\n"
      end)
    bufs;
  pf "shadows %d\n" (List.length shadows);
  List.iter
    (fun (sid, (s : Mpi_state.shadow_req)) ->
      pf "sh %d %s %d %d %d %d %d\n" sid
        (match s.skind with Mpi_state.SIsend -> "s" | Mpi_state.SIrecv -> "r")
        s.sptr.buf.bid s.sptr.off s.scount s.speer s.stag)
    shadows;
  pf "end\n";
  let info = put session.store ~rank ~id ~cells:!cells (Buffer.contents b) in
  { t_cells = !cells; t_put = info }

(* ---- restoring ---- *)

(** Raised instead of a plain runtime error when a restore target's
    snapshot is missing or fails its integrity check: the supervised
    restart driver catches this and degrades to an older consistent
    checkpoint rather than aborting the run. *)
exception
  Snapshot_unavailable of {
    su_rank : int;
    su_id : int;
    su_corrupt : bool;  (** checksum mismatch (vs. simply absent) *)
  }

type restored = {
  r_cells : int;  (** cells written back, for cost accounting *)
  r_clock : float;  (** the snapshotted rank's virtual clock *)
  r_tier : tier;  (** where the snapshot was fetched from *)
}

(* Token-stream reader over a snapshot. *)
type reader = { toks : string array; mutable pos : int }

let tok r =
  if r.pos >= Array.length r.toks then
    error "checkpoint: truncated snapshot";
  let t = r.toks.(r.pos) in
  r.pos <- r.pos + 1;
  t

let expect r what =
  let t = tok r in
  if t <> what then
    error "checkpoint: malformed snapshot: expected %S, found %S" what t

let int_tok r = int_of_string (tok r)

(* [Array.init]'s element-evaluation order is unspecified; the parser
   must consume tokens strictly in stream order. *)
let tabulate n f =
  if n = 0 then [||]
  else begin
    let a = Array.make n (f 0) in
    for i = 1 to n - 1 do
      a.(i) <- f i
    done;
    a
  end

(** Restore rank state from the snapshot for checkpoint [id], taken in a
    structurally identical run. Buffers are matched by id to the
    replaying run's allocations (the deterministic preamble guarantees
    correspondence); unmatched buffers — allocated during the iterations
    this replay skipped — are resurrected. *)
let restore session ~mem ~cache ~mpi ~id =
  let rank = session.srank in
  let bytes, tier =
    match get session.store ~rank ~id with
    | Got (s, t) -> s, t
    | Missing ->
      raise (Snapshot_unavailable { su_rank = rank; su_id = id; su_corrupt = false })
    | Corrupt ->
      raise (Snapshot_unavailable { su_rank = rank; su_id = id; su_corrupt = true })
  in
  let r =
    {
      toks =
        String.split_on_char '\n' bytes
        |> List.concat_map (String.split_on_char ' ')
        |> List.filter (fun s -> s <> "")
        |> Array.of_list;
      pos = 0;
    }
  in
  expect r "parad-ckpt";
  expect r "1";
  expect r "rank";
  let srank = int_tok r in
  if srank <> rank then
    error "checkpoint: snapshot of rank %d restored on rank %d" srank rank;
  expect r "id";
  let sid = int_tok r in
  if sid <> id then
    error "checkpoint: snapshot id %d does not match restore target %d" sid id;
  expect r "clock";
  let clock = Int64.float_of_bits (Int64.of_string (tok r)) in
  expect r "instrs";
  let _ = int_tok r in
  expect r "tape";
  let _ = int_tok r in
  expect r "mpi";
  let counters =
    match tok r with
    | "none" -> None
    | nr ->
      (* explicit sequencing: tuple components evaluate right-to-left,
         which would read the tokens out of stream order *)
      let next_req = int_of_string nr in
      let next_shadow = int_tok r in
      let coll_seq = int_tok r in
      Some (next_req, next_shadow, coll_seq)
  in
  expect r "cache";
  let ncache = int_tok r in
  (* First sweep the whole token stream structurally, recording raw
     tokens; decoding pointers needs the buffer map, which is only
     complete after all buffer headers are read. *)
  let cache_raw =
    tabulate ncache (fun cid ->
        expect r "block";
        let cid' = int_tok r in
        if cid' <> cid then error "checkpoint: cache block order broken";
        let len = int_tok r in
        let freed = int_tok r = 1 in
        (tabulate len (fun _ -> tok r), freed))
  in
  expect r "buffers";
  let nbufs = int_tok r in
  let bufs_raw =
    tabulate nbufs (fun _ ->
        let () = expect r "buf" in
        let bid = int_tok r in
        let elem = ty_of_code (tok r) in
        let size = int_tok r in
        let kind = kind_of_code (tok r) in
        let socket = int_tok r in
        let freed = int_tok r = 1 in
        let cells =
          if freed then [||] else tabulate size (fun _ -> tok r)
        in
        (bid, elem, size, kind, socket, freed, cells))
  in
  expect r "shadows";
  let nsh = int_tok r in
  let shadows_raw =
    tabulate nsh (fun _ ->
        let () = expect r "sh" in
        let sid = int_tok r in
        let skind =
          match tok r with
          | "s" -> Mpi_state.SIsend
          | "r" -> Mpi_state.SIrecv
          | k -> error "checkpoint: bad shadow kind %S" k
        in
        let bid = int_tok r in
        let off = int_tok r in
        let scount = int_tok r in
        let speer = int_tok r in
        let stag = int_tok r in
        (sid, skind, bid, off, scount, speer, stag))
  in
  expect r "end";
  (* Pass 1: bind every saved buffer id to a live buffer — the replay's
     structural counterpart when one exists, a resurrected buffer
     otherwise. *)
  let map : (int, buffer) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun (bid, elem, size, kind, socket, freed, _) ->
      let target =
        match Memory.find_bid mem bid with
        | Some (b : buffer) ->
          if not (Ty.equal b.elem elem) || cells_len b.data <> size then
            error
              "checkpoint: buffer %d changed shape between snapshot and \
               replay (program is not structurally deterministic)"
              bid;
          if freed && not b.freed then Memory.free mem b;
          if (not freed) && b.freed then
            error
              "checkpoint: buffer %d is freed in the replay but live in the \
               snapshot"
              bid;
          b
        | None ->
          let b = Memory.alloc mem ~elem ~size ~kind ~socket ~site:"checkpoint" in
          if freed then Memory.free mem b;
          b
      in
      Hashtbl.replace map bid target)
    bufs_raw;
  let lookup bid =
    match Hashtbl.find_opt map bid with
    | Some b -> b
    | None -> error "checkpoint: dangling pointer to unsaved buffer %d" bid
  in
  (* Pass 2: write cell contents back, remapping pointers. *)
  let cells = ref 0 in
  Array.iter
    (fun (bid, _, _, _, _, freed, raw) ->
      if not freed then begin
        let b = Hashtbl.find map bid in
        cells := !cells + Array.length raw;
        match b.data with
        | FCells a ->
          Array.iteri
            (fun i t -> a.(i) <- Value.to_float (cell_of_code lookup t))
            raw
        | VCells a ->
          Array.iteri (fun i t -> a.(i) <- cell_of_code lookup t) raw
      end)
    bufs_raw;
  Cache_rt.restore cache
    (Array.map
       (fun (raw, freed) -> (Array.map (cell_of_code lookup) raw, freed))
       cache_raw);
  (match mpi, counters with
  | Some m, Some (next_req, next_shadow, coll_seq) ->
    let shadows =
      Array.to_list shadows_raw
      |> List.map (fun (sid, skind, bid, off, scount, speer, stag) ->
             ( sid,
               {
                 Mpi_state.skind;
                 sptr = { buf = lookup bid; off };
                 scount;
                 speer;
                 stag;
                 srev = None;
                 stmp = None;
                 sexp = None;
                 sstaged = false;
               } ))
    in
    Mpi_state.restore_rank m ~rank ~next_req ~next_shadow ~coll_seq ~shadows
  | None, None -> ()
  | Some _, None | None, Some _ ->
    error "checkpoint: snapshot and replay disagree about MPI");
  session.pending <- None;
  { r_cells = !cells; r_clock = clock; r_tier = tier }

(* ---- raw segment snapshots (binomial adjoint driver) ---- *)

(** The binomial driver carries a program's loop state between simulator
    runs as plain per-rank float arrays plus the loop-carried scalar
    [dt]; these snapshots share the tiered store (and its eviction,
    checksums and consistency rule) with the intrinsic's full-state
    snapshots. Same determinism contract: floats serialize as IEEE-754
    bit patterns, so snapshots of identical states are byte-identical. *)
let encode_floats ~dt (arrays : float array array) =
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "parad-seg 1\n";
  pf "dt %Ld\n" (Int64.bits_of_float dt);
  pf "arrays %d\n" (Array.length arrays);
  Array.iter
    (fun a ->
      pf "arr %d\n" (Array.length a);
      Array.iter (fun x -> pf "%Ld " (Int64.bits_of_float x)) a;
      pf "\n")
    arrays;
  pf "end\n";
  Buffer.contents b

let decode_floats bytes =
  let r =
    {
      toks =
        String.split_on_char '\n' bytes
        |> List.concat_map (String.split_on_char ' ')
        |> List.filter (fun s -> s <> "")
        |> Array.of_list;
      pos = 0;
    }
  in
  expect r "parad-seg";
  expect r "1";
  expect r "dt";
  let dt = Int64.float_of_bits (Int64.of_string (tok r)) in
  expect r "arrays";
  let n = int_tok r in
  let arrays =
    tabulate n (fun _ ->
        let () = expect r "arr" in
        let len = int_tok r in
        tabulate len (fun _ -> Int64.float_of_bits (Int64.of_string (tok r))))
  in
  expect r "end";
  (dt, arrays)

let put_floats store ~rank ~id ~dt arrays =
  let cells = Array.fold_left (fun n a -> n + Array.length a) 1 arrays in
  put store ~rank ~id ~cells (encode_floats ~dt arrays)

(** [None] when the snapshot is missing or corrupt — callers degrade to
    an older checkpoint (re-advancing the primal) instead of aborting. *)
let get_floats store ~rank ~id =
  match get store ~rank ~id with
  | Got (bytes, tier) ->
    let dt, arrays = decode_floats bytes in
    Some (dt, arrays, tier)
  | Corrupt | Missing -> None
