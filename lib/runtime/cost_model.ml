(** The virtual-time cost model.

    Every instruction executed by the interpreter charges a cost (in
    abstract cycles) to the executing strand's virtual clock; the
    scheduler combines clocks at synchronization points. The model is the
    substitution for the paper's AWS c6i.metal machine (dual-socket, 32
    cores per socket): see DESIGN.md. Costs are deliberately simple —
    figure *shapes* (ratios, crossovers) are the reproduction target, not
    absolute cycle counts. *)

type t = {
  arith : float;  (** add/sub/mul/div/min/max, compares, selects, geps *)
  transcendental : float;  (** sqrt/sin/cos/exp/log/pow *)
  transcendental_remat : float;
      (** the same unit when re-evaluated inside a rematerialization chain
          of the reverse sweep: the recomputed expression is straight-line
          and independent of the adjoint dataflow, so a superscalar core
          hides it almost entirely behind the surrounding adjoint
          arithmetic — the charge models pipelined throughput, not the
          serial latency [transcendental] models on the primal path
          (calibrated against the paper's ~4x miniBUDE OMP overhead band,
          EXPERIMENTS.md) *)
  mem : float;  (** load/store of one cell, same socket *)
  numa_remote_mult : float;  (** multiplier for cross-socket cell access *)
  atomic : float;  (** atomic read-modify-write *)
  alloc_base : float;
  alloc_per_cell : float;
  gc_alloc_extra : float;  (** extra cost of a GC-managed allocation *)
  free : float;
  call : float;  (** user-function call overhead *)
  fork_base : float;  (** entering a parallel region *)
  fork_per_thread : float;
  join : float;  (** leaving a parallel region *)
  barrier_base : float;
  barrier_log : float;  (** multiplied by log2(width) *)
  task_spawn : float;
  task_sync : float;
  mpi_latency : float;  (** per message *)
  mpi_per_cell : float;  (** per 8-byte cell transferred *)
  cache_op : float;  (** AD cache store/load of one cell *)
  ckpt_base : float;  (** taking or restoring one checkpoint snapshot *)
  ckpt_per_cell : float;  (** per cell captured in / restored from a snapshot *)
  snap_disk_base : float;
      (** demoting a snapshot to / fetching it from the byte-stable
          "disk" tier of the two-tier store (seek + syscall analog) *)
  snap_disk_per_cell : float;
      (** per-cell bandwidth charge of a disk-tier transfer; deliberately
          much larger than [ckpt_per_cell], which models the in-memory
          hot ring *)
  restart_base : float;  (** relaunching a rank after a failure agreement *)
  tape_record : float;  (** operator-overloading baseline: record one stmt *)
  tape_reverse : float;  (** operator-overloading baseline: reverse one stmt *)
  cores_total : int;
  cores_per_socket : int;
  numa_spread_threshold : int;
      (** a team at least this wide is spread across both sockets *)
}

let default =
  {
    arith = 1.0;
    transcendental = 12.0;
    transcendental_remat = 2.0;
    mem = 3.0;
    numa_remote_mult = 2.2;
    atomic = 18.0;
    alloc_base = 120.0;
    alloc_per_cell = 0.4;
    gc_alloc_extra = 140.0;
    free = 40.0;
    call = 25.0;
    fork_base = 600.0;
    fork_per_thread = 12.0;
    join = 250.0;
    barrier_base = 60.0;
    barrier_log = 45.0;
    task_spawn = 260.0;
    task_sync = 60.0;
    mpi_latency = 4000.0;
    mpi_per_cell = 1.2;
    cache_op = 6.0;
    ckpt_base = 5000.0;
    ckpt_per_cell = 1.5;
    snap_disk_base = 20000.0;
    snap_disk_per_cell = 12.0;
    restart_base = 50000.0;
    tape_record = 30.0;
    tape_reverse = 40.0;
    cores_total = 64;
    cores_per_socket = 32;
    numa_spread_threshold = 32;
  }

(** Socket hosting member [index] of a team/job of [width] peers: teams
    narrower than the spread threshold stay on one socket; wider teams are
    split evenly across the two sockets (hyperthreading disabled, as in the
    paper's setup). *)
let socket_of t ~index ~width =
  if width >= t.numa_spread_threshold && width > 1 then index * 2 / width
  else 0

let log2f x = if x <= 1.0 then 0.0 else log x /. log 2.0
let barrier_cost t ~width = t.barrier_base +. (t.barrier_log *. log2f (float_of_int width))
let fork_cost t ~width = t.fork_base +. (t.fork_per_thread *. float_of_int width)
let message_cost t ~cells ~remote =
  let c = t.mpi_latency +. (t.mpi_per_cell *. float_of_int cells) in
  if remote then c *. t.numa_remote_mult else c

(** Cost of one [count]-cell collective over [nranks] ranks, modelled as
    recursive doubling: ceil(log2 n) pairwise exchange stages, where stage
    [s] pairs rank [r] with [r XOR 2^s]. Under [socket_of]'s split (lower
    half of a spread job on socket 0, upper half on socket 1) only the
    top-bit stage crosses sockets, so exactly one stage pays the NUMA
    multiplier — the earlier model charged every stage remote and doubled
    the stage count, serializing round-trips the network genuinely
    overlaps. Returns the cost together with the modelled message count
    (one per stage) so callers keep the stats honest. *)
let collective_cost t ~nranks ~count =
  if nranks <= 1 then 0.0, 0
  else begin
    let stages = int_of_float (Float.ceil (log2f (float_of_int nranks))) in
    let spread = nranks >= t.numa_spread_threshold in
    let c = ref 0.0 in
    for s = 0 to stages - 1 do
      (* the top-bit exchange pairs the two halves of the job; with the
         job split at nranks/2 that is the only cross-socket stage *)
      let remote = spread && s = stages - 1 in
      c := !c +. message_cost t ~cells:count ~remote
    done;
    !c, stages
  end
