(** High-level entry points: run a program single-rank or SPMD in virtual
    time, with helpers for building argument buffers. *)

open Parad_ir
open Value

type result = {
  values : Value.t array;  (** per-rank return values *)
  makespan : float;  (** modeled runtime (virtual cycles) *)
  stats : Stats.t;
}

(* Every entry point funnels through this wrapper so [Stats.wall_ns]
   reflects real host time spent simulating — including attempts that end
   in a structured failure (deadline, rank kill), which is why the clock
   is folded in via [Fun.protect]. *)
let timed_run ~cost ~stats ?deadline body =
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      stats.Stats.wall_ns <-
        stats.Stats.wall_ns
        + int_of_float ((Unix.gettimeofday () -. t0) *. 1e9))
    (fun () -> Sim.run ~cost ~stats ?deadline body)

(** Allocate a float buffer in [ctx]'s address space, initialized from
    [a]. *)
let floats (ctx : Interp.ctx) (a : float array) =
  let buf =
    Memory.alloc ctx.mem ~elem:Ty.Float ~size:(Array.length a) ~kind:Instr.Heap
      ~socket:0 ~site:"harness"
  in
  (match buf.data with
  | FCells dst -> Array.blit a 0 dst 0 (Array.length a)
  | VCells _ -> assert false);
  VPtr { buf; off = 0 }

let ints (ctx : Interp.ctx) (a : int array) =
  let buf =
    Memory.alloc ctx.mem ~elem:Ty.Int ~size:(Array.length a) ~kind:Instr.Heap
      ~socket:0 ~site:"harness"
  in
  (match buf.data with
  | VCells dst -> Array.iteri (fun i x -> dst.(i) <- VInt x) a
  | FCells _ -> assert false);
  VPtr { buf; off = 0 }

let zeros ctx n = floats ctx (Array.make n 0.0)

(** A 1-cell pointer buffer holding [v] — the descriptor indirection used
    by the Julia frontend. *)
let ptr_cell (ctx : Interp.ctx) (v : Value.t) =
  let cell_ty =
    match v with
    | VPtr p -> Ty.Ptr p.buf.elem
    | VNull t -> Ty.Ptr t
    | _ -> error "Exec.ptr_cell: not a pointer"
  in
  let buf =
    Memory.alloc ctx.mem ~elem:cell_ty ~size:1 ~kind:Instr.Gc ~socket:0
      ~site:"harness"
  in
  (match buf.data with
  | VCells a -> a.(0) <- v
  | FCells _ -> assert false);
  VPtr { buf; off = 0 }

(** Read back a float buffer. *)
let to_floats (v : Value.t) =
  match v with
  | VPtr { buf; off } ->
    Array.init
      (cells_len buf.data - off)
      (fun i -> to_float (get_cell buf.data (off + i)))
  | _ -> error "Exec.to_floats: not a pointer"

(** Run [fname] on a single rank. [setup] builds the argument list (e.g.
    with {!floats}); it runs inside the simulation. [faults] injects a
    deterministic fault plan (bit flips into sealed cache memory are the
    only events that apply to a communicator-free run). *)
let run ?(cfg = Interp.default_config) ?san ?faults ?deadline
    ?(call = Interp.call) prog ~fname ~setup =
  let stats = Stats.create () in
  let value, makespan, stats =
    timed_run ~cost:cfg.Interp.cost ~stats ?deadline (fun () ->
        let faults = Option.map (Faults.make ~nranks:1) faults in
        let ctx = Interp.make_ctx ~cfg ?san ?faults ~prog () in
        let args = setup ctx in
        let v = call ctx fname args in
        (* end-of-run ABFT sweep: an undetected flip must never leave
           the run as a silently wrong value *)
        Interp.verify_regions ctx;
        (match san with
        | Some s -> Sanitizer.report_leaks s ~rank:0 ~mem:ctx.Interp.mem
        | None -> ());
        v)
  in
  { values = [| value |]; makespan; stats }

(** Run [fname] on [nranks] ranks with distinct address spaces. [setup]
    builds each rank's arguments. Returns per-rank results.

    [faults] injects a deterministic fault plan into the message-passing
    runtime; [mpi_ref], when given, receives the run's {!Mpi_state.t} as
    soon as it exists, so callers can audit communication state even when
    the run terminates with {!Sim.Deadlock}. *)
let run_spmd ?(cfg = Interp.default_config) ?instrument ?faults ?mpi_ref ?san
    ?deadline ?(call = Interp.call) prog ~nranks ~fname ~setup =
  let stats = Stats.create () in
  let values = Array.make nranks VUnit in
  let (), makespan, stats =
    timed_run ~cost:cfg.Interp.cost ~stats ?deadline (fun () ->
        let mpi =
          Mpi_state.create ~cost:cfg.Interp.cost ~nranks ?faults
            ~coalesce:cfg.Interp.coalesce ()
        in
        (match mpi_ref with Some r -> r := Some mpi | None -> ());
        let ctxs =
          Array.init nranks (fun rank ->
              Interp.make_ctx ~cfg
                ?instrument:
                  (match instrument with
                  | Some f -> Some (f ~rank)
                  | None -> None)
                ~mpi ~rank ~nranks ?san ~prog ())
        in
        Sim.fork
          ~socket_of:(fun r -> mpi.Mpi_state.sockets.(r))
          ~width:nranks
          (fun ~tid:rank ~width:_ ->
            let ctx = ctxs.(rank) in
            let args = setup ctx ~rank in
            values.(rank) <- call ctx fname args;
            (* safety net: a program whose last adjoint op is a stage has
               no later blocking point to flush it — peers would park *)
            Mpi_state.adj_flush_all mpi ~rank;
            (* finalize semantics: a rank may complete without touching a
               peer that died after its last message was buffered; the
               failure must still surface as a structured Rank_failed, not
               a join deadlock on the parked victim *)
            Mpi_state.check_any_alive mpi ~rank;
            (* end-of-run ABFT sweep over this rank's protected caches *)
            Interp.verify_regions ctx;
            match san with
            | Some s -> Sanitizer.report_leaks s ~rank ~mem:ctx.Interp.mem
            | None -> ()))
  in
  { values; makespan; stats }

(** Run an arbitrary SPMD body (one call per rank) — used by harnesses
    that need several interpreter calls per rank (e.g. the tape baseline's
    forward-then-reverse sweeps). *)
let run_spmd_custom ?(cfg = Interp.default_config) ?instrument ?faults
    ?mpi_ref ?san ?deadline prog ~nranks ~body =
  let stats = Stats.create () in
  let (), makespan, stats =
    timed_run ~cost:cfg.Interp.cost ~stats ?deadline (fun () ->
        let mpi =
          Mpi_state.create ~cost:cfg.Interp.cost ~nranks ?faults
            ~coalesce:cfg.Interp.coalesce ()
        in
        (match mpi_ref with Some r -> r := Some mpi | None -> ());
        let ctxs =
          Array.init nranks (fun rank ->
              Interp.make_ctx ~cfg
                ?instrument:
                  (match instrument with
                  | Some f -> Some (f ~rank)
                  | None -> None)
                ~mpi ~rank ~nranks ?san ~prog ())
        in
        Sim.fork
          ~socket_of:(fun r -> mpi.Mpi_state.sockets.(r))
          ~width:nranks
          (fun ~tid:rank ~width:_ ->
            body ctxs.(rank) ~rank;
            Mpi_state.adj_flush_all mpi ~rank;
            Mpi_state.check_any_alive mpi ~rank;
            Interp.verify_regions ctxs.(rank);
            match san with
            | Some s ->
              Sanitizer.report_leaks s ~rank ~mem:ctxs.(rank).Interp.mem
            | None -> ()))
  in
  makespan, stats

(* ---- supervised recoverable execution ---- *)

type recovery = {
  r_restarts : int;  (** restarts the supervisor performed *)
  r_failures : Mpi_state.failure_notice list;  (** oldest first *)
  r_resumed_from : int option list;
      (** per restart: checkpoint id resumed from (None = cold restart,
          no globally-consistent checkpoint existed yet) *)
  r_store : Checkpoint.store;  (** snapshots accumulated across attempts *)
}

(** Run [fname] SPMD under supervision: ranks checkpoint at their
    [parad.checkpoint] sites into a shared store; when a rank is killed
    by the fault plan, the surviving ranks' structured
    {!Mpi_state.Rank_failed} aborts the attempt, the supervisor consumes
    the fired kill from the plan's budget, rebuilds the communicator, and
    replays every rank from the latest globally-consistent checkpoint
    (cold restart when none exists). Restart attempts start their virtual
    clocks at the failure's agreement time plus the restart cost, so the
    final makespan reflects lost work and recovery overhead. Shares one
    {!Stats.t} across attempts. Re-raises the failure once
    [max_restarts] is exhausted.

    A restore that finds its snapshot missing or corrupt (checksum
    mismatch) counts as a failed attempt too: the supervisor re-plans
    from {!Checkpoint.latest_consistent} — which skips invalid snapshots
    — so recovery degrades to an older checkpoint instead of aborting.
    [policy] configures the tiered snapshot store when the supervisor
    creates it; ignored when an explicit [store] is passed. *)
let run_spmd_recoverable ?(cfg = Interp.default_config) ?faults ?mpi_ref ?san
    ?(max_restarts = 8) ?store ?policy ?deadline ?(call = Interp.call) prog
    ~nranks ~fname ~setup =
  let stats = Stats.create () in
  let store =
    match store with
    | Some s -> s
    | None -> Checkpoint.create_store ?policy ~nranks ()
  in
  let values = Array.make nranks VUnit in
  let failures = ref [] and resumed = ref [] in
  let rec attempt plan ~base ~restarts ~resume =
    let outcome =
      try
        let (), makespan, _ =
          timed_run ~cost:cfg.Interp.cost ~stats ?deadline (fun () ->
              if base > 0.0 then Sim.set_clock base;
              let mpi =
                Mpi_state.create ~cost:cfg.Interp.cost ~nranks ~faults:plan
                  ~coalesce:cfg.Interp.coalesce ()
              in
              (match mpi_ref with Some r -> r := Some mpi | None -> ());
              let ctxs =
                Array.init nranks (fun rank ->
                    Interp.make_ctx ~cfg ~mpi ~rank ~nranks ?san
                      ~ckpt:(Checkpoint.session store ~rank ?resume ())
                      ~prog ())
              in
              Sim.fork
                ~socket_of:(fun r -> mpi.Mpi_state.sockets.(r))
                ~width:nranks
                (fun ~tid:rank ~width:_ ->
                  let ctx = ctxs.(rank) in
                  let args = setup ctx ~rank in
                  values.(rank) <- call ctx fname args;
                  Mpi_state.adj_flush_all mpi ~rank;
                  Mpi_state.check_any_alive mpi ~rank;
                  Interp.verify_regions ctx;
                  (* leaks are only meaningful on the attempt that
                     completes; failed attempts never reach this point *)
                  match san with
                  | Some s ->
                    Sanitizer.report_leaks s ~rank ~mem:ctx.Interp.mem
                  | None -> ()))
        in
        `Done makespan
      with
      | Mpi_state.Rank_failed n when restarts < max_restarts -> `Failed n
      | Checkpoint.Snapshot_unavailable { su_id; _ }
        when restarts < max_restarts ->
        `Bad_snapshot su_id
      | Mpi_state.Corrupt_message c when restarts < max_restarts ->
        `Corrupt_msg c
      | Checkpoint.Corrupt_region { cr_rank; cr_at; _ }
        when restarts < max_restarts ->
        `Corrupt_region (cr_rank, cr_at)
    in
    match outcome with
    | `Done makespan ->
      ( { values; makespan; stats },
        {
          r_restarts = restarts;
          r_failures = List.rev !failures;
          r_resumed_from = List.rev !resumed;
          r_store = store;
        } )
    | `Failed n ->
      stats.restarts <- stats.restarts + 1;
      failures := n :: !failures;
      let resume = Checkpoint.latest_consistent store in
      resumed := resume :: !resumed;
      let plan = Faults.consume_kill plan ~rank:n.Mpi_state.fn_failed in
      attempt plan
        ~base:(n.Mpi_state.fn_agreed_at +. cfg.Interp.cost.Cost_model.restart_base)
        ~restarts:(restarts + 1) ~resume
    | `Bad_snapshot id ->
      (* the resume target's snapshot turned out missing or corrupt:
         drop the id everywhere so it can't be selected again, and
         degrade to the next-oldest consistent checkpoint *)
      stats.restarts <- stats.restarts + 1;
      Checkpoint.release store ~id;
      let resume = Checkpoint.latest_consistent store in
      resumed := resume :: !resumed;
      attempt plan
        ~base:(base +. cfg.Interp.cost.Cost_model.restart_base)
        ~restarts:(restarts + 1) ~resume
    | `Corrupt_msg c ->
      (* retransmits exhausted on a corrupted in-flight message: consume
         the fired corruption from the plan's budget and replay from the
         latest consistent checkpoint *)
      stats.restarts <- stats.restarts + 1;
      stats.sdc_recovered <- stats.sdc_recovered + 1;
      let resume = Checkpoint.latest_consistent store in
      resumed := resume :: !resumed;
      let plan = Faults.consume_corrupt plan in
      attempt plan
        ~base:
          (c.Mpi_state.cm_at +. cfg.Interp.cost.Cost_model.restart_base)
        ~restarts:(restarts + 1) ~resume
    | `Corrupt_region (cr_rank, cr_at) ->
      (* a bit flip landed in sealed cache memory and was caught by an
         ABFT digest: the attempt's live state is poisoned, so degrade to
         the latest verified-clean snapshot and re-advance *)
      stats.restarts <- stats.restarts + 1;
      stats.sdc_recovered <- stats.sdc_recovered + 1;
      let resume = Checkpoint.latest_consistent store in
      resumed := resume :: !resumed;
      let plan = Faults.consume_flip plan ~rank:cr_rank in
      attempt plan
        ~base:(cr_at +. cfg.Interp.cost.Cost_model.restart_base)
        ~restarts:(restarts + 1) ~resume
  in
  attempt
    (Option.value faults ~default:Faults.none)
    ~base:0.0 ~restarts:0 ~resume:None

(** A pointer-table buffer (kernel-parameter struct): one cell per entry
    of [vs], which must all be pointers of the same element type. *)
let ptr_table (ctx : Interp.ctx) (vs : Value.t list) =
  match vs with
  | [] -> error "Exec.ptr_table: empty"
  | VPtr p :: _ ->
    let buf =
      Memory.alloc ctx.mem ~elem:(Ty.Ptr p.buf.elem) ~size:(List.length vs)
        ~kind:Instr.Heap ~socket:0 ~site:"harness"
    in
    (match buf.data with
    | VCells a -> List.iteri (fun i v -> a.(i) <- v) vs
    | FCells _ -> assert false);
    VPtr { buf; off = 0 }
  | _ -> error "Exec.ptr_table: not a pointer"
