(** Deterministic fault injection for the message-passing runtime.

    A {!plan} describes communication failures to inject into an SPMD
    execution: targeted message faults (drop / delay / duplicate), a
    seeded per-attempt random drop probability, rank stalls, and rank
    kills. Because the scheduler is virtual-time deterministic and the
    PRNG is seeded, the same plan produces bit-identical executions —
    every injected failure is exactly reproducible from its seed.

    Dropped transmission attempts are recovered by retransmission with
    exponential backoff (charged as extra in-flight latency, so gradients
    are unchanged and only virtual time grows). A message whose drops
    exceed [max_retries], or whose accumulated backoff exceeds
    [deadline], is {e lost}: the sender gives up, the loss is recorded
    for diagnosis, and any receive waiting on that channel eventually
    surfaces in the scheduler's wait-for report instead of hanging. *)

type action =
  | Drop of int  (** drop the first n transmission attempts, then deliver *)
  | Drop_all  (** every attempt dropped: the message is lost *)
  | Delay of float  (** extra in-flight latency, in virtual cycles *)
  | Duplicate  (** deliver an extra copy of the message *)

type rule = {
  r_src : int option;  (** None matches any sender *)
  r_dst : int option;
  r_tag : int option;
  r_action : action;
  r_limit : int;  (** apply to at most this many messages; -1 = all *)
}

type plan = {
  name : string;
  seed : int;
  drop_prob : float;  (** seeded per-attempt random drop probability *)
  max_retries : int;  (** retransmissions before a message is lost *)
  backoff : float;  (** first retransmit delay; doubles per attempt *)
  deadline : float;  (** sender gives up past this much added delay *)
  rules : rule list;
  stalls : (int * float * float) list;  (** rank, not-before time, delay *)
  kills : (int * float) list;  (** rank, not-before time *)
  flips : (int * int * int * float) list;
      (** silent bit flips in live memory: rank, cell, bit (0..63),
          not-before time. [cell] indexes the victim's sealed cache
          cells (mod the sealed population at strike time), so every
          flip lands on a cell the detection layer is accountable
          for. *)
  corrupts : (int * int * bool) list;
      (** in-flight packed-message corruption: 1-based global packed
          message ordinal, byte seed (picks the victim cell inside the
          payload), sticky. A non-sticky corruption damages one
          delivery and the retransmit is clean; a sticky one damages
          every retransmit until the sender's retry budget is
          exhausted. *)
}

let none =
  {
    name = "none";
    seed = 0;
    drop_prob = 0.0;
    max_retries = 5;
    backoff = 2_000.0;
    deadline = infinity;
    rules = [];
    stalls = [];
    kills = [];
    flips = [];
    corrupts = [];
  }

(* A message the sender gave up on, kept for diagnosis and post-run
   audit. *)
type lost = {
  l_src : int;
  l_dst : int;
  l_tag : int;
  l_attempts : int;
  l_time : float;  (** virtual time of the original send *)
}

type state = {
  plan : plan;
  mutable rng : int64;
  rule_used : int array;  (** messages each rule has been applied to *)
  stalled : bool array;  (** per-rank: stall already charged *)
  mutable lost_msgs : lost list;  (** reverse send order *)
  mutable injected : int;  (** total faults injected *)
  mutable flips_left : (int * int * int * float) list;
      (** bit flips not yet landed *)
  mutable corrupts_left : (int * int * bool) list;
      (** packed-message corruptions not yet landed *)
  mutable packed_seen : int;  (** global packed-message ordinal, 1-based *)
}

let make ~nranks plan =
  {
    plan;
    rng = Int64.of_int ((plan.seed * 2654435761) lxor 0x5DEECE66D);
    rule_used = Array.make (List.length plan.rules) 0;
    stalled = Array.make nranks false;
    lost_msgs = [];
    injected = 0;
    flips_left = plan.flips;
    corrupts_left = plan.corrupts;
    packed_seen = 0;
  }

(* splitmix64: one 64-bit draw per transmission attempt. Advancing the
   stream only in deterministic program order keeps runs reproducible. *)
let next_u64 st =
  let open Int64 in
  st.rng <- add st.rng 0x9E3779B97F4A7C15L;
  let z = st.rng in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let uniform st =
  Int64.to_float (Int64.shift_right_logical (next_u64 st) 11)
  *. (1.0 /. 9007199254740992.0)

let rule_matches r ~src ~dst ~tag =
  (match r.r_src with Some s -> s = src | None -> true)
  && (match r.r_dst with Some d -> d = dst | None -> true)
  && match r.r_tag with Some t -> t = tag | None -> true

type delivery = {
  extra : float;  (** added in-flight latency (delays + retransmits) *)
  copies : int;  (** duplicates to enqueue alongside the message *)
  retries : int;  (** retransmission attempts that were needed *)
}

let backoff_sum plan drops =
  let acc = ref 0.0 and d = ref plan.backoff in
  for _ = 1 to drops do
    acc := !acc +. !d;
    d := !d *. 2.0
  done;
  !acc

(** Decide the fate of one point-to-point message, advancing the fault
    state. Returns how to deliver it, or [`Lost attempts] if the sender
    exhausted its retries/deadline. *)
let on_send st ~src ~dst ~tag ~now =
  let p = st.plan in
  let drops = ref 0
  and extra = ref 0.0
  and copies = ref 0
  and doomed = ref false in
  List.iteri
    (fun i r ->
      if
        rule_matches r ~src ~dst ~tag
        && (r.r_limit < 0 || st.rule_used.(i) < r.r_limit)
      then begin
        st.rule_used.(i) <- st.rule_used.(i) + 1;
        st.injected <- st.injected + 1;
        match r.r_action with
        | Drop n -> drops := !drops + n
        | Drop_all -> doomed := true
        | Delay d -> extra := !extra +. d
        | Duplicate -> incr copies
      end)
    p.rules;
  if p.drop_prob > 0.0 then
    while (not !doomed) && !drops <= p.max_retries && uniform st < p.drop_prob
    do
      incr drops;
      st.injected <- st.injected + 1
    done;
  let retry_delay = backoff_sum p !drops in
  if !doomed || !drops > p.max_retries || retry_delay > p.deadline then begin
    let attempts = if !doomed then p.max_retries + 1 else !drops in
    st.lost_msgs <-
      { l_src = src; l_dst = dst; l_tag = tag; l_attempts = attempts;
        l_time = now }
      :: st.lost_msgs;
    `Lost attempts
  end
  else
    `Deliver { extra = !extra +. retry_delay; copies = !copies; retries = !drops }

(** Gate every runtime operation of [rank]: no fault, a one-time stall
    delay, or a kill (the caller must park the strand forever). *)
let rank_gate st ~rank ~now =
  match List.find_opt (fun (r, at) -> r = rank && now >= at) st.plan.kills with
  | Some (_, at) -> `Kill at
  | None -> (
    match
      List.find_opt
        (fun (r, at, _) -> r = rank && now >= at && not st.stalled.(rank))
        st.plan.stalls
    with
    | Some (_, _, d) ->
      st.stalled.(rank) <- true;
      st.injected <- st.injected + 1;
      `Stall d
    | None -> `Ok)

(** One pending bit flip for [rank] whose time has come, or [None].
    The flip is consumed from the state (it lands once per run); the
    caller applies it to live memory and bumps [Stats.sdc_injected]
    only if a target cell actually exists. *)
let flip_gate st ~rank ~now =
  let rec pick acc = function
    | [] -> None
    | (r, cell, bit, at) :: tl when r = rank && now >= at ->
      st.flips_left <- List.rev_append acc tl;
      st.injected <- st.injected + 1;
      Some (cell, bit)
    | h :: tl -> pick (h :: acc) tl
  in
  pick [] st.flips_left

(** Gate one packed-message send: advance the global packed ordinal and
    report whether this message is scheduled for corruption. Returns
    [(byte_seed, sticky)] when it is; a sticky entry re-fires on every
    retransmit of the same message (the caller keeps the returned pair
    attached to the message), a non-sticky one damages only the first
    delivery. Either way the entry is consumed here — the ordinal never
    repeats. *)
let corrupt_gate st =
  st.packed_seen <- st.packed_seen + 1;
  let rec pick acc = function
    | [] -> None
    | (n, byte, sticky) :: tl when n = st.packed_seen ->
      st.corrupts_left <- List.rev_append acc tl;
      st.injected <- st.injected + 1;
      Some (byte, sticky)
    | h :: tl -> pick (h :: acc) tl
  in
  pick [] st.corrupts_left

let lost st = List.rev st.lost_msgs

(** Messages lost on the (src, dst, tag) channel so far — used in
    wait-for descriptions of receives that will never match. *)
let lost_on st ~src ~dst ~tag =
  List.length
    (List.filter
       (fun l -> l.l_src = src && l.l_dst = dst && l.l_tag = tag)
       st.lost_msgs)

(* ---- named plans (CLI and tests) ---- *)

let plan_names =
  [ "none"; "drop-retry"; "flaky"; "dup"; "delay"; "blackhole"; "stall";
    "kill"; "flip"; "corrupt-msg" ]

(** Build a named plan. [rank] and [at] parameterize the rank-targeted
    plans (stall/kill/blackhole); defaults target rank 1 (or 0 when
    single-rank) from time 0. *)
let plan_of_name ?(seed = 42) ?rank ?(at = 0.0) ~nranks name =
  (* an out-of-range victim would make the plan silently inert (its
     stall/kill/rules never fire) — reject it loudly instead *)
  (match rank with
  | Some r when r < 0 || r >= nranks ->
    invalid_arg
      (Printf.sprintf
         "Faults.plan_of_name: victim rank %d out of range [0, %d)" r nranks)
  | _ -> ());
  let victim = match rank with Some r -> r | None -> min 1 (nranks - 1) in
  let base = { none with name; seed } in
  match name with
  | "none" -> base
  | "drop-retry" ->
    (* every message loses its first two transmission attempts; the
       retransmit path recovers all of them, so results are unchanged and
       only virtual time grows *)
    {
      base with
      rules =
        [ { r_src = None; r_dst = None; r_tag = None; r_action = Drop 2;
            r_limit = -1 } ];
    }
  | "flaky" ->
    (* seeded random attempt drops, always recovered within max_retries *)
    { base with drop_prob = 0.25; max_retries = 64 }
  | "dup" ->
    (* the first message is delivered twice *)
    {
      base with
      rules =
        [ { r_src = None; r_dst = None; r_tag = None; r_action = Duplicate;
            r_limit = 1 } ];
    }
  | "delay" ->
    (* every message from the victim rank is slowed by 50k cycles *)
    {
      base with
      rules =
        [ { r_src = Some victim; r_dst = None; r_tag = None;
            r_action = Delay 50_000.0; r_limit = -1 } ];
    }
  | "blackhole" ->
    (* every message from the victim rank is lost: unrecoverable *)
    {
      base with
      rules =
        [ { r_src = Some victim; r_dst = None; r_tag = None;
            r_action = Drop_all; r_limit = -1 } ];
    }
  | "stall" -> { base with stalls = [ victim, at, 200_000.0 ] }
  | "kill" -> { base with kills = [ victim, at ] }
  | "flip" ->
    (* one silent bit flip in the victim's live cache memory; override
       cell/bit via flip= in plan_of_spec *)
    { base with flips = [ victim, 0, 31, at ] }
  | "corrupt-msg" ->
    (* damage the first packed adjoint message in flight, once; the
       checksum trailer catches it and the retransmit is clean *)
    { base with corrupts = [ 1, 0, false ] }
  | _ ->
    invalid_arg
      (Printf.sprintf "Faults.plan_of_name: unknown plan %S (know: %s)" name
         (String.concat ", " plan_names))

(** Remove the first kill entry for [rank] from a plan. The supervised
    recovery driver consumes a fired kill before replaying, so each kill
    in the plan's budget fires at most once across restarts. *)
let consume_kill plan ~rank =
  let rec drop = function
    | [] -> []
    | (r, _) :: tl when r = rank -> tl
    | h :: tl -> h :: drop tl
  in
  { plan with kills = drop plan.kills }

(** Remove the first flip entry for [rank]: the supervised recovery
    driver consumes a detected flip before replaying from the snapshot,
    so each flip in the plan lands at most once across restarts. *)
let consume_flip plan ~rank =
  let rec drop = function
    | [] -> []
    | (r, _, _, _) :: tl when r = rank -> tl
    | h :: tl -> h :: drop tl
  in
  { plan with flips = drop plan.flips }

(** Remove the first sticky corruption entry. A sticky corruption
    exhausts the sender's retransmit budget and surfaces as
    [Corrupt_message]; the supervisor consumes it before replaying so
    the replay's sends go through clean. *)
let consume_corrupt plan =
  let rec drop = function
    | [] -> []
    | (_, _, true) :: tl -> tl
    | h :: tl -> h :: drop tl
  in
  { plan with corrupts = drop plan.corrupts }

(** Parse a plan spec: a plan name, optionally followed by
    [:key=val,...] overrides. Recognized keys: [seed], [victim], [at]
    (retarget the named plan), [retries], [backoff], [deadline], [prob]
    (tune recovery parameters), [kill=R@T], [stall=R@T@D],
    [flip=R@CELL@BIT@T] and [corrupt-msg=N@BYTE@sticky] (repeatable;
    append extra events, so multi-failure plans like
    ["kill:kill=2@0,kill=3@50000"] are expressible). Scalar keys may
    appear at most once — ["kill:at=0,at=500"] is rejected with
    [Invalid_argument] rather than silently keeping one of the values.
    Explicit [?seed]/[?rank]/[?at] arguments act as defaults that spec
    overrides win over. *)
let plan_of_spec ?seed ?rank ?at ~nranks spec =
  let bad fmt = Printf.ksprintf invalid_arg ("Faults.plan_of_spec: " ^^ fmt) in
  let name, overrides =
    match String.index_opt spec ':' with
    | None -> spec, []
    | Some i ->
      ( String.sub spec 0 i,
        String.sub spec (i + 1) (String.length spec - i - 1)
        |> String.split_on_char ','
        |> List.filter (fun s -> s <> "") )
  in
  let kv =
    List.map
      (fun s ->
        match String.index_opt s '=' with
        | Some i ->
          String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1)
        | None -> bad "override %S is not key=val" s)
      overrides
  in
  let int_of k v =
    try int_of_string v with _ -> bad "%s=%S is not an integer" k v
  in
  let float_of k v =
    try float_of_string v with _ -> bad "%s=%S is not a number" k v
  in
  (* scalar keys must appear at most once: a spec like
     "kill:at=0,at=500" is a conflict the caller should hear about,
     not a silent last-write-wins *)
  let scalar_keys =
    [ "seed"; "victim"; "at"; "retries"; "backoff"; "deadline"; "prob" ]
  in
  List.iter
    (fun k ->
      let n = List.length (List.filter (fun (k', _) -> k' = k) kv) in
      if n > 1 then
        bad "key %S given %d times; scalar keys may appear at most once" k n)
    scalar_keys;
  let seed =
    match List.assoc_opt "seed" kv with
    | Some v -> Some (int_of "seed" v)
    | None -> seed
  in
  let rank =
    match List.assoc_opt "victim" kv with
    | Some v -> Some (int_of "victim" v)
    | None -> rank
  in
  let at =
    match List.assoc_opt "at" kv with
    | Some v -> Some (float_of "at" v)
    | None -> at
  in
  let base = plan_of_name ?seed ?rank ?at ~nranks name in
  let check_rank k r =
    if r < 0 || r >= nranks then
      bad "%s targets rank %d, out of range [0, %d)" k r nranks;
    r
  in
  let plan =
    List.fold_left
      (fun p (k, v) ->
        match k with
        | "seed" | "victim" | "at" -> p (* consumed above *)
        | "retries" -> { p with max_retries = int_of k v }
        | "backoff" -> { p with backoff = float_of k v }
        | "deadline" -> { p with deadline = float_of k v }
        | "prob" -> { p with drop_prob = float_of k v }
        | "kill" -> (
          match String.split_on_char '@' v with
          | [ r ] ->
            { p with kills = p.kills @ [ check_rank k (int_of k r), 0.0 ] }
          | [ r; t ] ->
            {
              p with
              kills = p.kills @ [ check_rank k (int_of k r), float_of k t ];
            }
          | _ -> bad "kill=%S is not RANK or RANK@TIME" v)
        | "stall" -> (
          match String.split_on_char '@' v with
          | [ r; t; d ] ->
            {
              p with
              stalls =
                p.stalls
                @ [ check_rank k (int_of k r), float_of k t, float_of k d ];
            }
          | _ -> bad "stall=%S is not RANK@TIME@DELAY" v)
        | "flip" -> (
          let flip r c b t =
            let b = int_of k b in
            if b < 0 || b > 63 then bad "flip bit %d out of range [0, 63]" b;
            let c = int_of k c in
            if c < 0 then bad "flip cell %d is negative" c;
            {
              p with
              flips =
                p.flips @ [ check_rank k (int_of k r), c, b, float_of k t ];
            }
          in
          match String.split_on_char '@' v with
          | [ r; c; b ] -> flip r c b "0"
          | [ r; c; b; t ] -> flip r c b t
          | _ -> bad "flip=%S is not RANK@CELL@BIT or RANK@CELL@BIT@TIME" v)
        | "corrupt-msg" -> (
          let corrupt n b sticky =
            let n = int_of k n in
            if n < 1 then bad "corrupt-msg ordinal %d is not >= 1" n;
            let b = int_of k b in
            if b < 0 then bad "corrupt-msg byte %d is negative" b;
            { p with corrupts = p.corrupts @ [ n, b, sticky ] }
          in
          match String.split_on_char '@' v with
          | [ n ] -> corrupt n "0" false
          | [ n; b ] -> corrupt n b false
          | [ n; b; "sticky" ] -> corrupt n b true
          | _ -> bad "corrupt-msg=%S is not N, N@BYTE or N@BYTE@sticky" v)
        | _ ->
          bad
            "unknown key %S (know: seed, victim, at, retries, backoff, \
             deadline, prob, kill, stall, flip, corrupt-msg)"
            k)
      base kv
  in
  { plan with name = spec }

let pp_action ppf = function
  | Drop n -> Format.fprintf ppf "drop first %d attempt(s)" n
  | Drop_all -> Format.fprintf ppf "drop all attempts (lose)"
  | Delay d -> Format.fprintf ppf "delay by %.6g" d
  | Duplicate -> Format.fprintf ppf "duplicate"

let pp_opt ppf = function
  | Some v -> Format.fprintf ppf "%d" v
  | None -> Format.fprintf ppf "*"

let pp_plan ppf p =
  Format.fprintf ppf
    "fault plan %S (seed %d, drop_prob %.6g, max_retries %d, backoff %.6g)"
    p.name p.seed p.drop_prob p.max_retries p.backoff;
  List.iter
    (fun r ->
      Format.fprintf ppf "@\n  msg %a->%a tag %a: %a%s" pp_opt r.r_src pp_opt
        r.r_dst pp_opt r.r_tag pp_action r.r_action
        (if r.r_limit < 0 then ""
         else Printf.sprintf " (first %d msg(s))" r.r_limit))
    p.rules;
  List.iter
    (fun (r, at, d) ->
      Format.fprintf ppf "@\n  stall rank %d at t>=%.6g for %.6g" r at d)
    p.stalls;
  List.iter
    (fun (r, at) -> Format.fprintf ppf "@\n  kill rank %d at t>=%.6g" r at)
    p.kills;
  List.iter
    (fun (r, c, b, at) ->
      Format.fprintf ppf "@\n  flip rank %d cell %d bit %d at t>=%.6g" r c b
        at)
    p.flips;
  List.iter
    (fun (n, b, sticky) ->
      Format.fprintf ppf "@\n  corrupt packed msg #%d byte %d%s" n b
        (if sticky then " (sticky)" else ""))
    p.corrupts
