(** The IR interpreter.

    Executes a {!Parad_ir.Prog} program in virtual time on {!Sim} strands:
    sequential instructions charge costs; [Fork]/[Workshare]/[Barrier]/
    [Spawn]/[Sync] map onto the scheduler; intrinsic calls implement the
    message-passing runtime, the GC model, and the AD cache runtime.

    The interpreter also exposes an instrumentation interface
    ({!type:instrument}) used by the operator-overloading tape baseline:
    when installed, every float operation reports (slot, partial) pairs in
    CoDiPack's statement-level-tape style, and memory cells carry slots in
    side arrays. *)

open Parad_ir
open Value

exception Interp_error = Value.Runtime_error

type instrument = {
  record : (int * float) list -> int;
      (** record one statement; returns the lhs slot (0 if passive) *)
  buf_slots : Value.buffer -> int array;  (** side slot array of a buffer *)
  send_hook : peer:int -> tag:int -> slots:int array -> unit;
  recv_hook : peer:int -> tag:int -> count:int -> int array;
  allreduce_hook :
    kind:[ `Sum | `Min | `Max ] ->
    ins:float array * int array ->
    outs:float array ->
    int array;
  bcast_hook : root:int -> count:int -> slots:int array -> int array;
}

type config = {
  cost : Cost_model.t;
  nthreads : int;  (** width of [Fork] regions with width 0 (the default) *)
  gc_aggressive : bool;
      (** [gc.collect] really frees unpreserved unreachable GC buffers *)
  max_instrs : int;  (** fuel; 0 = unlimited *)
  coalesce : bool;
      (** adjoint-communication coalescing: stage outgoing adjoint sends
          and batch them into packed per-destination messages (ISSUE 5);
          off = one latency-charged message per forward exchange *)
}

let default_config =
  {
    cost = Cost_model.default;
    nthreads = 1;
    gc_aggressive = false;
    max_instrs = 0;
    coalesce = true;
  }

type ctx = {
  prog : Prog.t;
  cfg : config;
  mem : Memory.t;
  rank : int;
  nranks : int;
  mpi : Mpi_state.t option;
  cache : Cache_rt.t;
  instrument : instrument option;
  tasks : (int, Sim.task * Value.t ref) Hashtbl.t;
  mutable next_task : int;
  admap : (int, Value.t * Value.t) Hashtbl.t;
      (** AD shadow map keyed by primal task handle: (reverse handle, aux) *)
  preserves : (int, Value.buffer list) Hashtbl.t;
  mutable next_preserve : int;
  mutable executed : int;
  ckpt : Checkpoint.session option;
      (** checkpoint/restart session; [parad.checkpoint] is a no-op
          without one *)
  san : Sanitizer.t option;
      (** ParSan: when set, race/memory/gradient-integrity checking is
          active (shared by all ranks of a run) *)
  faults : Faults.state option;
      (** fault-injection state for non-MPI runs (SPMD runs resolve to
          the communicator's shared state instead); drives silent
          bit-flip injection into sealed cache memory *)
  mutable root_args : Value.t list;
      (** the entry function's arguments — the roots of a checkpoint's
          buffer reachability walk *)
  mutable remat_depth : int;
      (** nesting depth of [parad.remat_begin]/[parad.remat_end] regions:
          transcendentals re-evaluated inside a rematerialization chain are
          charged at the cheaper [transcendental_remat] rate *)
}

let make_ctx ?(cfg = default_config) ?instrument ?mpi ?faults ?(rank = 0)
    ?(nranks = 1) ?ckpt ?san ~prog () =
  (* SPMD runs share one fault state through the communicator; non-MPI
     runs carry their own. Either way, a plan with bit flips arms ABFT
     sealing on this rank's caches so every flip is detectable. *)
  let faults =
    match mpi with Some m -> m.Mpi_state.faults | None -> faults
  in
  let cache = Cache_rt.create () in
  (match faults with
  | Some fs when fs.Faults.plan.Faults.flips <> [] ->
    cache.Cache_rt.protect <- true
  | _ -> ());
  {
    prog;
    cfg;
    mem = Memory.create ~rank;
    rank;
    nranks;
    mpi;
    cache;
    instrument;
    tasks = Hashtbl.create 16;
    next_task = 0;
    admap = Hashtbl.create 16;
    preserves = Hashtbl.create 16;
    next_preserve = 0;
    executed = 0;
    ckpt;
    san;
    faults;
    root_args = [];
    remat_depth = 0;
  }

type frame = { vals : Value.t array; slots : int array option }

let new_frame ctx n =
  {
    vals = Array.make n VUnit;
    slots =
      (match ctx.instrument with
      | Some _ -> Some (Array.make n 0)
      | None -> None);
  }

let get fr v = fr.vals.(Var.id v)
let set fr v x = fr.vals.(Var.id v) <- x

let get_slot fr v =
  match fr.slots with Some s -> s.(Var.id v) | None -> 0

let set_slot fr v s =
  match fr.slots with Some a -> a.(Var.id v) <- s | None -> ()

(* Execution context threaded through a region: the call stack (for GC
   roots) and the enclosing parallel team, if any. *)
type ectx = {
  stack : frame list;  (** current frame first *)
  team : (int * int) option;  (** (tid, width) of the enclosing fork *)
  stack_allocs : Value.buffer list ref;  (** per-call stack allocations *)
  fname : string;  (** enclosing function, for sanitizer/memory provenance *)
  san_team : (int * int ref) option;
      (** RaceSan window: (dynamic region id, this thread's barrier epoch).
          Present only inside a fork of width > 1 with RaceSan active. *)
}

type outcome = ONext | OReturn of Value.t * int | OYield of (Value.t * int) list

let mpi_state ctx =
  match ctx.mpi with
  | Some m -> m
  | None -> error "MPI intrinsic outside an SPMD execution"

(* Land any due bit flip into this rank's sealed cache memory. Polled
   after cache reads and at checkpoint boundaries (right after
   resealing). The event stays pending until sealed memory exists to be
   struck — consuming it against an empty address space would make the
   trial a trivial no-op — so a due flip lands at the first poll that
   finds covered cells. One that never finds any (e.g. scheduled past
   the run's end) is provably masked: no protected value existed for it
   to corrupt. *)
let apply_flips ctx =
  match ctx.faults with
  | Some fs
    when fs.Faults.flips_left <> [] && Cache_rt.has_sealed ctx.cache -> (
    match Faults.flip_gate fs ~rank:ctx.rank ~now:(Sim.now ()) with
    | Some (cell, bit) -> (
      match Cache_rt.flip ctx.cache ~cell ~bit with
      | Some _ ->
        let st = Sim.stats () in
        st.sdc_injected <- st.sdc_injected + 1
      | None -> ())
    | None -> ())
  | _ -> ()

(* Raise the structured corruption notice for a failed region digest. *)
let corrupt_region ctx ~cache_id =
  let st = Sim.stats () in
  st.sdc_detected <- st.sdc_detected + 1;
  raise
    (Checkpoint.Corrupt_region
       { cr_rank = ctx.rank; cr_cache = cache_id; cr_at = Sim.now () })

(** Verify every sealed cache of [ctx] against its digest, charging the
    scan; raises {!Checkpoint.Corrupt_region} on the first mismatch.
    Called at checkpoint boundaries and at the end of a protected run. *)
let verify_regions ctx =
  if ctx.cache.Cache_rt.protect then begin
    let scanned, bad = Cache_rt.verify ctx.cache in
    Sim.charge (ctx.cfg.cost.mem *. float_of_int scanned);
    match bad with
    | Some cid -> corrupt_region ctx ~cache_id:cid
    | None -> ()
  end

let charge = Sim.charge

let charge_mem ctx (buf : Value.buffer) n =
  let c = ctx.cfg.cost in
  let mult =
    if buf.socket <> Sim.socket () then c.numa_remote_mult else 1.0
  in
  charge (c.mem *. mult *. float_of_int n)

let check_rank ctx (buf : Value.buffer) =
  if buf.rank <> ctx.rank then
    error "cross-rank memory access: buffer of rank %d touched by rank %d"
      buf.rank ctx.rank

(* Raw float cells of a k-lane group, bounds-checked once per group
   instead of once per lane. The adj.*_k intrinsics loop over these
   natively — that loop is the whole point of batching. *)
let fplane ~who (p : Value.ptr) ~base ~n =
  (* One combined liveness+bounds test on the hot path; the failure
     branch re-runs {!Memory.check_access} on each end of the group so
     the raised message is exactly the one the unfused per-cell checks
     would have produced. *)
  match p.buf.data with
  | FCells a ->
    let i = p.off + base in
    if p.buf.freed || i < 0 || i + n - 1 >= Array.length a then begin
      ignore (Memory.check_access ~who p base);
      ignore (Memory.check_access ~who p (base + n - 1))
    end;
    a
  | VCells _ ->
    ignore (Memory.check_access ~who p base);
    error "adj intrinsic on a boxed buffer (alloc at %s)" p.buf.asite

(* Float ops per lane of each adj.acc_k mode, for the virtual-time
   charge: the count the unrolled scalar emission would have paid. *)
(* host[ho..ho+k) += f(src[so..so+k)) with f selected by [mode]: one
   specialized tight loop per mode, the adjoint expression inline in the
   array store so no float crosses a branch join (nothing boxes inside
   the lane loop). Shared by the interpreter and the native engine
   closures — one implementation is what keeps their lane values
   bit-identical by construction. Modes 7/8/9 skip (or negate) the add
   instead of adding a selected 0.0: adjoint cells start at +0.0 and
   [+0.0 +. x] never yields -0.0, so an accumulated plane never holds
   -0.0 and skipping an add-of-zero is bitwise-neutral. *)
let adj_acc_lanes ~mode ~c1 ~c2 ~cond (ha : float array) ho
    (sa : float array) so k =
  let n = k - 1 in
  match mode with
  | 0 ->
    for l = 0 to n do
      Array.unsafe_set ha (ho + l)
        (Array.unsafe_get ha (ho + l) +. Array.unsafe_get sa (so + l))
    done
  | 1 ->
    for l = 0 to n do
      Array.unsafe_set ha (ho + l)
        (Array.unsafe_get ha (ho + l) -. Array.unsafe_get sa (so + l))
    done
  | 2 ->
    for l = 0 to n do
      Array.unsafe_set ha (ho + l)
        (Array.unsafe_get ha (ho + l) +. (Array.unsafe_get sa (so + l) *. c1))
    done
  | 3 ->
    for l = 0 to n do
      Array.unsafe_set ha (ho + l)
        (Array.unsafe_get ha (ho + l) +. (Array.unsafe_get sa (so + l) /. c1))
    done
  | 4 ->
    for l = 0 to n do
      Array.unsafe_set ha (ho + l)
        (Array.unsafe_get ha (ho + l) +. -.(Array.unsafe_get sa (so + l) *. c1))
    done
  | 5 ->
    for l = 0 to n do
      Array.unsafe_set ha (ho + l)
        (Array.unsafe_get ha (ho + l)
        +. -.(Array.unsafe_get sa (so + l) *. c1 /. c2))
    done
  | 6 ->
    for l = 0 to n do
      Array.unsafe_set ha (ho + l)
        (Array.unsafe_get ha (ho + l)
        +. (Array.unsafe_get sa (so + l) *. c1 /. c2))
    done
  | 7 ->
    if cond then
      for l = 0 to n do
        Array.unsafe_set ha (ho + l)
          (Array.unsafe_get ha (ho + l) +. Array.unsafe_get sa (so + l))
      done
  | 8 ->
    if not cond then
      for l = 0 to n do
        Array.unsafe_set ha (ho + l)
          (Array.unsafe_get ha (ho + l) +. Array.unsafe_get sa (so + l))
      done
  | 9 ->
    if cond then
      for l = 0 to n do
        Array.unsafe_set ha (ho + l)
          (Array.unsafe_get ha (ho + l) +. Array.unsafe_get sa (so + l))
      done
    else
      for l = 0 to n do
        Array.unsafe_set ha (ho + l)
          (Array.unsafe_get ha (ho + l) -. Array.unsafe_get sa (so + l))
      done
  | m -> error "adjoint accumulate: unknown mode %d" m

let adj_mode_flops = function
  | 0 -> 0
  | 1 | 2 | 3 | 7 | 8 -> 1
  | 4 | 6 | 9 -> 2
  | 5 -> 3
  | _ -> 0

(* ---- sanitizer hooks ---- *)

(* RaceSan: log one shadow-memory access. Only meaningful inside a
   fork of width > 1 ([san_team] is [None] otherwise). *)
let san_access ctx (e : ectx) (ptr : Value.ptr) idx kind =
  match ctx.san, e.san_team, e.team with
  | Some san, Some (region, ep), Some (tid, _) ->
    Sanitizer.on_access san ~rank:ctx.rank ~tid ~region ~epoch:!ep
      ~buf:ptr.buf ~cell:(ptr.off + idx) ~kind ~fn:e.fname ~time:(Sim.now ())
  | _ -> ()

let san_epoch_bump (e : ectx) =
  match e.san_team with Some (_, ep) -> incr ep | None -> ()

(* GradSan: first-origin check of a float produced by an arithmetic
   instruction. A result is a fresh origin when it is NaN with no NaN
   operand, or Inf with all-finite operands (Inf arising from Inf
   operands is propagation; NaN arising from NaN operands was flagged at
   its own origin). Returns the value to continue with — the poison in
   [Strict] mode aborts inside [Sanitizer.nonfinite], in [Degrade] mode
   it is quarantined to 0.0. *)
let san_produced ctx (e : ectx) san ~opname ~dst operands f =
  let nan_operand = List.exists Float.is_nan operands in
  let finite_operands = List.for_all Float.is_finite operands in
  if (Float.is_nan f && not nan_operand) || ((not (Float.is_nan f)) && finite_operands)
  then
    Sanitizer.nonfinite san ~rank:ctx.rank ~time:(Sim.now ())
      "%s = %s(%s) produced %h in %s (instr #%d)" dst opname
      (String.concat ", " (List.map (Fmt.str "%.17g") operands))
      f e.fname ctx.executed
  else f

(* ---- scalar semantics ---- *)

let fmin a b = if (a : float) <= b then a else b
let fmax a b = if (a : float) >= b then a else b

let eval_bin op a b =
  match op, a, b with
  | Instr.Add, VInt x, VInt y -> VInt (x + y)
  | Add, VFloat x, VFloat y -> VFloat (x +. y)
  | Sub, VInt x, VInt y -> VInt (x - y)
  | Sub, VFloat x, VFloat y -> VFloat (x -. y)
  | Mul, VInt x, VInt y -> VInt (x * y)
  | Mul, VFloat x, VFloat y -> VFloat (x *. y)
  | Div, VInt x, VInt y ->
    if y = 0 then error "integer division by zero" else VInt (x / y)
  | Div, VFloat x, VFloat y -> VFloat (x /. y)
  | Rem, VInt x, VInt y ->
    if y = 0 then error "integer remainder by zero" else VInt (x mod y)
  | Min, VInt x, VInt y -> VInt (min x y)
  | Min, VFloat x, VFloat y -> VFloat (fmin x y)
  | Max, VInt x, VInt y -> VInt (max x y)
  | Max, VFloat x, VFloat y -> VFloat (fmax x y)
  | Pow, VFloat x, VFloat y -> VFloat (Float.pow x y)
  | _ -> error "bad operands for %s" (Instr.binop_name op)

let eval_cmp op a b =
  let c =
    match a, b with
    | VInt x, VInt y -> Int.compare x y
    | VFloat x, VFloat y -> Float.compare x y
    | VBool x, VBool y -> Bool.compare x y
    | _ -> error "bad operands for comparison"
  in
  VBool
    (match op with
    | Instr.Eq -> c = 0
    | Ne -> c <> 0
    | Lt -> c < 0
    | Le -> c <= 0
    | Gt -> c > 0
    | Ge -> c >= 0)

let eval_un op a =
  match op, a with
  | Instr.Neg, VInt x -> VInt (-x)
  | Neg, VFloat x -> VFloat (-.x)
  | Sqrt, VFloat x -> VFloat (sqrt x)
  | Sin, VFloat x -> VFloat (sin x)
  | Cos, VFloat x -> VFloat (cos x)
  | Exp, VFloat x -> VFloat (exp x)
  | Log, VFloat x -> VFloat (log x)
  | Abs, VFloat x -> VFloat (Float.abs x)
  | Abs, VInt x -> VInt (abs x)
  | Floor, VFloat x -> VFloat (Float.of_int (int_of_float (floor x)))
  | ToFloat, VInt x -> VFloat (float_of_int x)
  | ToInt, VFloat x -> VInt (int_of_float x)
  | Not, VBool x -> VBool (not x)
  | _ -> error "bad operand for %s" (Instr.unop_name op)

(* Partial derivatives of a float binop w.r.t. each operand. *)
let bin_partials op x y r =
  match op with
  | Instr.Add -> 1.0, 1.0
  | Sub -> 1.0, -1.0
  | Mul -> y, x
  | Div -> 1.0 /. y, -.x /. (y *. y)
  | Min -> if x <= y then 1.0, 0.0 else 0.0, 1.0
  | Max -> if x >= y then 1.0, 0.0 else 0.0, 1.0
  | Pow -> y *. Float.pow x (y -. 1.0), r *. log x
  | Rem -> error "rem has no float derivative"

let un_partial op x r =
  match op with
  | Instr.Neg -> -1.0
  | Sqrt -> if r = 0.0 then 0.0 else 1.0 /. (2.0 *. r)
  | Sin -> cos x
  | Cos -> -.sin x
  | Exp -> r
  | Log -> 1.0 /. x
  | Abs -> if x >= 0.0 then 1.0 else -1.0
  | Floor -> 0.0
  | ToFloat | ToInt | Not -> 0.0

let is_float v = match v with VFloat _ -> true | _ -> false

(* ---- interpreter ---- *)

let fuel ctx =
  ctx.executed <- ctx.executed + 1;
  if ctx.cfg.max_instrs > 0 && ctx.executed > ctx.cfg.max_instrs then
    error "instruction budget exceeded (%d)" ctx.cfg.max_instrs

let rec exec_instrs ctx (e : ectx) (instrs : Instr.t list) : outcome =
  match instrs with
  | [] -> ONext
  | i :: rest -> (
    match exec_instr ctx e i with
    | ONext -> exec_instrs ctx e rest
    | (OReturn _ | OYield _) as o -> o)

and exec_instr ctx e (i : Instr.t) : outcome =
  let fr = List.hd e.stack in
  let st = Sim.stats () in
  fuel ctx;
  st.instrs <- st.instrs + 1;
  let c = ctx.cfg.cost in
  match i with
  | Const (v, k) ->
    charge c.arith;
    set fr v
      (match k with
      | Cunit -> VUnit
      | Cbool b -> VBool b
      | Cint n -> VInt n
      | Cfloat f -> VFloat f
      | Cnull t -> VNull t);
    set_slot fr v 0;
    ONext
  | Bin (v, op, a, b) ->
    let x = get fr a and y = get fr b in
    let r = eval_bin op x y in
    (if is_float r then begin
       st.flops <- st.flops + 1;
       charge
         (match op with
         | Pow ->
           if ctx.remat_depth > 0 then c.transcendental_remat
           else c.transcendental
         | _ -> c.arith)
     end
     else charge c.arith);
    let r =
      match ctx.san, r, x, y with
      | Some san, VFloat f, VFloat xf, VFloat yf
        when san.Sanitizer.grad_on && not (Float.is_finite f) ->
        VFloat
          (san_produced ctx e san ~opname:(Instr.binop_name op)
             ~dst:(Var.name v) [ xf; yf ] f)
      | _ -> r
    in
    set fr v r;
    (match ctx.instrument, x, y, r with
    | Some ins, VFloat xf, VFloat yf, VFloat rf ->
      let px, py = bin_partials op xf yf rf in
      set_slot fr v
        (ins.record [ get_slot fr a, px; get_slot fr b, py ])
    | _ -> set_slot fr v 0);
    ONext
  | Cmp (v, op, a, b) ->
    charge c.arith;
    set fr v (eval_cmp op (get fr a) (get fr b));
    set_slot fr v 0;
    ONext
  | Un (v, op, a) ->
    let x = get fr a in
    let r = eval_un op x in
    (if is_float r then begin
       st.flops <- st.flops + 1;
       charge
         (match op with
         | Sqrt | Sin | Cos | Exp | Log ->
           if ctx.remat_depth > 0 then c.transcendental_remat
           else c.transcendental
         | _ -> c.arith)
     end
     else charge c.arith);
    let r =
      match ctx.san, r, x with
      | Some san, VFloat f, VFloat xf
        when san.Sanitizer.grad_on && not (Float.is_finite f) ->
        VFloat
          (san_produced ctx e san ~opname:(Instr.unop_name op)
             ~dst:(Var.name v) [ xf ] f)
      | _ -> r
    in
    set fr v r;
    (match ctx.instrument, x, r with
    | Some ins, VFloat xf, VFloat rf ->
      set_slot fr v (ins.record [ get_slot fr a, un_partial op xf rf ])
    | _ -> set_slot fr v 0);
    ONext
  | Select (v, cond, a, b) ->
    charge c.arith;
    let t = to_bool (get fr cond) in
    let src = if t then a else b in
    set fr v (get fr src);
    set_slot fr v (get_slot fr src);
    ONext
  | Alloc (v, elem, n, kind) ->
    let size = to_int (get fr n) in
    st.allocs <- st.allocs + 1;
    st.alloc_cells <- st.alloc_cells + size;
    charge
      (c.alloc_base
      +. (c.alloc_per_cell *. float_of_int size)
      +. (match kind with Instr.Gc -> c.gc_alloc_extra | _ -> 0.0));
    let buf =
      Memory.alloc ctx.mem ~elem ~size ~kind ~socket:(Sim.socket ())
        ~site:(e.fname ^ "/" ^ Var.name v)
    in
    (match ctx.san with
    | Some san -> Sanitizer.on_alloc san ~rank:ctx.rank ~buf
    | None -> ());
    (match kind with
    | Instr.Stack -> e.stack_allocs := buf :: !(e.stack_allocs)
    | Instr.Heap | Instr.Gc -> ());
    set fr v (VPtr { buf; off = 0 });
    set_slot fr v 0;
    ONext
  | Free p ->
    charge c.free;
    st.frees <- st.frees + 1;
    (match get fr p with
    | VPtr { buf; off = _ } -> Memory.free ~site:e.fname ctx.mem buf
    | VNull _ -> ()
    | _ -> error "free of non-pointer");
    ONext
  | Load (v, p, ix) ->
    st.loads <- st.loads + 1;
    let ptr = to_ptr (get fr p) in
    check_rank ctx ptr.buf;
    charge_mem ctx ptr.buf 1;
    let idx = to_int (get fr ix) in
    let r = Memory.load ~who:e.fname ptr idx in
    let r =
      match ctx.san with
      | None -> r
      | Some san ->
        san_access ctx e ptr idx Sanitizer.Read;
        Sanitizer.on_load_init san ~rank:ctx.rank ~buf:ptr.buf
          ~cell:(ptr.off + idx) ~fn:e.fname ~time:(Sim.now ());
        (match r with
        | VFloat f when san.Sanitizer.grad_on && Float.is_nan f ->
          (* observed poison: the NaN entered memory outside a checked
             arithmetic op (e.g. corrupted input); scrub the cell so it
             is reported once *)
          let q =
            Sanitizer.nonfinite san ~rank:ctx.rank ~time:(Sim.now ())
              "load of NaN from buffer %d (alloc at %s) cell [%d] in %s \
               (instr #%d)"
              ptr.buf.bid ptr.buf.asite (ptr.off + idx) e.fname ctx.executed
          in
          Memory.store ptr idx (VFloat q);
          VFloat q
        | _ -> r)
    in
    set fr v r;
    (match ctx.instrument with
    | Some ins when is_float r ->
      set_slot fr v (ins.buf_slots ptr.buf).(ptr.off + idx)
    | _ -> set_slot fr v 0);
    ONext
  | Store (p, ix, x) ->
    st.stores <- st.stores + 1;
    let ptr = to_ptr (get fr p) in
    check_rank ctx ptr.buf;
    charge_mem ctx ptr.buf 1;
    let idx = to_int (get fr ix) in
    let v = get fr x in
    let v =
      match ctx.san with
      | None -> v
      | Some san ->
        san_access ctx e ptr idx Sanitizer.Write;
        Sanitizer.on_store_init san ~rank:ctx.rank ~buf:ptr.buf
          ~cell:(ptr.off + idx);
        (match v with
        | VFloat f when san.Sanitizer.grad_on && Float.is_nan f ->
          VFloat
            (Sanitizer.nonfinite san ~rank:ctx.rank ~time:(Sim.now ())
               "store of NaN to buffer %d (alloc at %s) cell [%d] in %s \
                (instr #%d)"
               ptr.buf.bid ptr.buf.asite (ptr.off + idx) e.fname ctx.executed)
        | _ -> v)
    in
    Memory.store ~who:e.fname ptr idx v;
    (match ctx.instrument with
    | Some ins when is_float v ->
      (ins.buf_slots ptr.buf).(ptr.off + idx) <- get_slot fr x
    | _ -> ());
    ONext
  | Gep (v, p, ix) ->
    charge c.arith;
    (match get fr p with
    | VPtr ptr ->
      set fr v (VPtr { ptr with off = ptr.off + to_int (get fr ix) })
    | VNull _ -> error "gep on null pointer"
    | _ -> error "gep on non-pointer");
    set_slot fr v 0;
    ONext
  | AtomicAdd (p, ix, x) ->
    st.atomics <- st.atomics + 1;
    charge c.atomic;
    let ptr = to_ptr (get fr p) in
    check_rank ctx ptr.buf;
    let idx = to_int (get fr ix) in
    let old = to_float (Memory.load ~who:e.fname ptr idx) in
    let v = to_float (get fr x) in
    let sum = old +. v in
    let sum =
      match ctx.san with
      | None -> sum
      | Some san ->
        san_access ctx e ptr idx Sanitizer.Atomic;
        Sanitizer.on_store_init san ~rank:ctx.rank ~buf:ptr.buf
          ~cell:(ptr.off + idx);
        if san.Sanitizer.grad_on && not (Float.is_finite sum) then begin
          (* quarantining an atomic accumulation drops the contribution
             but keeps what was already accumulated *)
          let q =
            san_produced ctx e san ~opname:"atomic_add"
              ~dst:(Fmt.str "b%d[%d]" ptr.buf.bid (ptr.off + idx))
              [ old; v ] sum
          in
          if q = 0.0 && not (Float.is_finite sum) then old else sum
        end
        else sum
    in
    Memory.store ~who:e.fname ptr idx (VFloat sum);
    (match ctx.instrument with
    | Some ins ->
      let slots = ins.buf_slots ptr.buf in
      let i = ptr.off + idx in
      slots.(i) <- ins.record [ slots.(i), 1.0; get_slot fr x, 1.0 ]
    | None -> ());
    ONext
  | Call (v, name, args) ->
    let r, slot = dispatch_call ctx e name args in
    set fr v r;
    set_slot fr v slot;
    ONext
  | Spawn (v, name, args) ->
    if ctx.instrument <> None then
      error "tape baseline cannot differentiate task parallelism";
    let fr_args = List.map (get fr) args in
    let id = ctx.next_task in
    ctx.next_task <- id + 1;
    let ret = ref VUnit in
    let task =
      Sim.spawn (fun () ->
          ret := fst (call_function ctx ~caller_stack:[] name fr_args []))
    in
    Hashtbl.add ctx.tasks id (task, ret);
    set fr v (VInt id);
    set_slot fr v 0;
    ONext
  | Sync h ->
    let id = to_int (get fr h) in
    (match Hashtbl.find_opt ctx.tasks id with
    | Some (t, _) -> Sim.sync t
    | None -> error "sync on unknown task %d" id);
    ONext
  | If (results, cond, then_r, else_r) ->
    charge c.arith;
    let r = if to_bool (get fr cond) then then_r else else_r in
    (match exec_instrs ctx e r.body with
    | OYield vs ->
      List.iter2
        (fun rv (x, s) ->
          set fr rv x;
          set_slot fr rv s)
        results vs;
      ONext
    | ONext -> error "if-region fell through without yield"
    | OReturn _ as o -> o)
  | For { iv; lo; hi; step; body } ->
    let lo = to_int (get fr lo)
    and hi = to_int (get fr hi)
    and sp = to_int (get fr step) in
    if sp <= 0 then error "for with non-positive step %d" sp;
    (* [Checkpoint.Skip_iteration] is the fast-forward signal of a
       resuming replay: the checkpoint intrinsic raises it while its
       resume target is still ahead, and the loop skips the rest of the
       iteration body. *)
    let rec go i =
      if i >= hi then ONext
      else begin
        charge c.arith;
        set fr iv (VInt i);
        match
          try exec_instrs ctx e body.body
          with Checkpoint.Skip_iteration -> ONext
        with
        | ONext -> go (i + sp)
        | (OReturn _ | OYield _) as o -> o
      end
    in
    go lo
  | While { cond; body } ->
    let rec go () =
      charge c.arith;
      match exec_instrs ctx e cond.body with
      | OYield [ (v, _) ] ->
        if to_bool v then begin
          match
            try exec_instrs ctx e body.body
            with Checkpoint.Skip_iteration -> ONext
          with
          | ONext -> go ()
          | (OReturn _ | OYield _) as o -> o
        end
        else ONext
      | _ -> error "while condition region must yield one bool"
    in
    go ()
  | Fork { tid; nth; body } ->
    if ctx.instrument <> None then
      error "tape baseline cannot differentiate fork/join parallelism";
    let width =
      match to_int (get fr nth) with
      | 0 -> ctx.cfg.nthreads
      | n when n > 0 -> n
      | n -> error "fork with negative width %d" n
    in
    let total = ctx.nranks * width in
    let socket_of t =
      Cost_model.socket_of c ~index:((ctx.rank * width) + t) ~width:total
    in
    let nth_var =
      match body.params with
      | [ _; q ] -> q
      | _ -> error "malformed fork body"
    in
    let san_region =
      match ctx.san with
      | Some san when width > 1 && san.Sanitizer.race_on ->
        Some (Sanitizer.fresh_region san)
      | _ -> None
    in
    Sim.fork ~socket_of ~width (fun ~tid:t ~width:w ->
        let child_fr =
          {
            vals = Array.copy fr.vals;
            slots = Option.map Array.copy fr.slots;
          }
        in
        set child_fr tid (VInt t);
        set child_fr nth_var (VInt w);
        let e' =
          {
            stack = child_fr :: List.tl e.stack;
            team = Some (t, w);
            stack_allocs = e.stack_allocs;
            fname = e.fname;
            san_team = Option.map (fun r -> r, ref 0) san_region;
          }
        in
        match exec_instrs ctx e' body.body with
        | ONext -> ()
        | OReturn _ | OYield _ -> error "fork body may not return/yield");
    ONext
  | Workshare { iv; lo; hi; body; schedule; nowait } ->
    let tid, width =
      match e.team with
      | Some tw -> tw
      | None -> error "workshare outside a fork"
    in
    let lo = to_int (get fr lo) and hi = to_int (get fr hi) in
    let len = max 0 (hi - lo) in
    (match schedule with
    | Instr.Chunked ->
      let start = lo + (len * tid / width) in
      let stop = lo + (len * (tid + 1) / width) in
      let rec go i =
        if i >= stop then ONext
        else begin
          charge c.arith;
          set fr iv (VInt i);
          match exec_instrs ctx e body.body with
          | ONext -> go (i + 1)
          | (OReturn _ | OYield _) as o -> o
        end
      in
      ignore (go start)
    | Instr.Cyclic ->
      let rec go i =
        if i >= hi then ONext
        else begin
          charge c.arith;
          set fr iv (VInt i);
          match exec_instrs ctx e body.body with
          | ONext -> go (i + width)
          | (OReturn _ | OYield _) as o -> o
        end
      in
      ignore (go (lo + tid)));
    if (not nowait) && width > 1 then begin
      Sim.barrier ();
      san_epoch_bump e
    end;
    ONext
  | Barrier ->
    (match e.team with
    | Some (_, w) when w > 1 ->
      Sim.barrier ();
      san_epoch_bump e
    | Some _ | None -> ());
    ONext
  | Return None -> OReturn (VUnit, 0)
  | Return (Some v) -> OReturn (get fr v, get_slot fr v)
  | Yield vs -> OYield (List.map (fun v -> get fr v, get_slot fr v) vs)

and call_function ctx ~caller_stack name (args : Value.t list)
    (arg_slots : int list) : Value.t * int =
  match Prog.find ctx.prog name with
  | None -> error "call to unknown function %S" name
  | Some f ->
    Sim.charge ctx.cfg.cost.call;
    (Sim.stats ()).calls <- (Sim.stats ()).calls + 1;
    if List.length args <> List.length f.params then
      error "call %s: arity mismatch" name;
    let fr = new_frame ctx f.var_count in
    List.iter2
      (fun p a ->
        if not (Ty.equal (Value.ty a) (Var.ty p)) then
          error "call %s: argument %s has type %a, expected %a" name
            (Var.name p) Ty.pp (Value.ty a) Ty.pp (Var.ty p);
        set fr p a)
      f.params args;
    (match fr.slots, arg_slots with
    | Some _, _ :: _ ->
      List.iteri
        (fun i s -> set_slot fr (List.nth f.params i) s)
        arg_slots
    | _ -> ());
    let stack_allocs = ref [] in
    let e =
      {
        stack = fr :: caller_stack;
        team = None;
        stack_allocs;
        fname = name;
        san_team = None;
      }
    in
    let out = exec_instrs ctx e f.body in
    List.iter
      (fun b -> if not b.freed then Memory.free ~site:name ctx.mem b)
      !stack_allocs;
    (match out with
    | OReturn (v, s) -> v, s
    | ONext when Ty.equal f.ret_ty Ty.Unit -> VUnit, 0
    | ONext | OYield _ -> error "function %s did not return" name)

and dispatch_call ctx e name args : Value.t * int =
  let fr = List.hd e.stack in
  let vals = List.map (get fr) args in
  if String.contains name '.' then intrinsic ctx e name args vals
  else
    call_function ctx ~caller_stack:e.stack name vals
      (List.map (get_slot fr) args)

and intrinsic ctx e name args vals : Value.t * int =
  let c = ctx.cfg.cost in
  let st = Sim.stats () in
  let int_arg n = to_int (List.nth vals n) in
  let float_arg n = to_float (List.nth vals n) in
  let ptr_arg n = to_ptr (List.nth vals n) in
  let unit_ = VUnit, 0 in
  charge c.arith;
  match name with
  | "omp.max_threads" -> VInt ctx.cfg.nthreads, 0
  (* ---- sanitizer ---- *)
  | "san.mark_private" ->
    (* Emitted by the reverse engine for every shadow buffer whose base
       the static thread-locality analysis classified private (so its
       accumulation skips atomics). RaceSan cross-validates: a dynamic
       race on a marked buffer is a miscompilation. No-op unsanitized. *)
    (match ctx.san, vals with
    | Some san, VPtr p :: _ ->
      Sanitizer.mark_private san ~rank:ctx.rank ~buf:p.buf
    | _ -> ());
    unit_
  (* ---- checkpoint/restart ---- *)
  | "parad.checkpoint" ->
    let extras = List.filter (function VPtr _ -> true | _ -> false) vals in
    checkpoint_site ctx e ~name ~explicit_id:(Some (int_arg 0)) ~extras
  | "parad.checkpoint_rev" ->
    (* reverse-entry site (emitted by the reverse engine between the
       forward and reverse sweeps): its id is allocated past every
       forward-sweep checkpoint this rank saw, so [latest_consistent]
       can pick it once all ranks reach their reverse sweeps *)
    checkpoint_site ctx e ~name ~explicit_id:None ~extras:[]
  (* ---- message passing ---- *)
  | "mpi.rank" -> VInt ctx.rank, 0
  | "mpi.size" -> VInt ctx.nranks, 0
  | "mpi.isend" ->
    let m = mpi_state ctx in
    let p = ptr_arg 0 and n = int_arg 1 and dst = int_arg 2 and tag = int_arg 3 in
    check_rank ctx p.buf;
    (* Under taping, the adjoint-MPI send entry records the slots of the
       sent cells at send time. *)
    (match ctx.instrument with
    | Some ins ->
      let bs = ins.buf_slots p.buf in
      ins.send_hook ~peer:dst ~tag ~slots:(Array.sub bs p.off n)
    | None -> ());
    let req = Mpi_state.isend m ~rank:ctx.rank ~ptr:p ~count:n ~dst ~tag in
    VInt req, 0
  | "mpi.irecv" ->
    let m = mpi_state ctx in
    let p = ptr_arg 0 and n = int_arg 1 and src = int_arg 2 and tag = int_arg 3 in
    check_rank ctx p.buf;
    let req = Mpi_state.irecv m ~rank:ctx.rank ~ptr:p ~count:n ~src ~tag in
    VInt req, 0
  | "mpi.wait" ->
    let m = mpi_state ctx in
    let pr = Mpi_state.wait m ~rank:ctx.rank ~req:(int_arg 0) in
    (* Under taping, received cells get fresh slots at wait time (when
       the data becomes visible), recorded as an adjoint-MPI receive. *)
    (match ctx.instrument, pr with
    | Some ins, Some pr ->
      let fresh =
        ins.recv_hook ~peer:pr.Mpi_state.psrc ~tag:pr.Mpi_state.ptag
          ~count:pr.Mpi_state.count
      in
      (match pr.Mpi_state.dst with
      | Some dst ->
        let bs = ins.buf_slots dst.buf in
        Array.blit fresh 0 bs dst.off pr.Mpi_state.count
      | None -> ())
    | _ -> ());
    unit_
  | "mpi.send" ->
    let m = mpi_state ctx in
    let p = ptr_arg 0 and n = int_arg 1 and dst = int_arg 2 and tag = int_arg 3 in
    check_rank ctx p.buf;
    (match ctx.instrument with
    | Some ins ->
      let bs = ins.buf_slots p.buf in
      ins.send_hook ~peer:dst ~tag ~slots:(Array.sub bs p.off n)
    | None -> ());
    let req = Mpi_state.isend m ~rank:ctx.rank ~ptr:p ~count:n ~dst ~tag in
    ignore (Mpi_state.wait m ~rank:ctx.rank ~req);
    unit_
  | "mpi.recv" ->
    let m = mpi_state ctx in
    let p = ptr_arg 0 and n = int_arg 1 and src = int_arg 2 and tag = int_arg 3 in
    check_rank ctx p.buf;
    let req = Mpi_state.irecv m ~rank:ctx.rank ~ptr:p ~count:n ~src ~tag in
    ignore (Mpi_state.wait m ~rank:ctx.rank ~req);
    (match ctx.instrument with
    | Some ins ->
      let fresh = ins.recv_hook ~peer:src ~tag ~count:n in
      let bs = ins.buf_slots p.buf in
      Array.blit fresh 0 bs p.off n
    | None -> ());
    unit_
  | "mpi.barrier" ->
    Mpi_state.barrier (mpi_state ctx) ~rank:ctx.rank;
    unit_
  | "mpi.allreduce_sum" | "mpi.allreduce_min" | "mpi.allreduce_max" ->
    let m = mpi_state ctx in
    let send = ptr_arg 0 and recv = ptr_arg 1 and n = int_arg 2 in
    check_rank ctx send.buf;
    check_rank ctx recv.buf;
    let kind =
      match name with
      | "mpi.allreduce_sum" -> Mpi_state.Csum
      | "mpi.allreduce_min" -> Mpi_state.Cmin
      | _ -> Mpi_state.Cmax
    in
    let in_vals =
      match ctx.instrument with
      | Some _ -> Some (Mpi_state.read_floats send n)
      | None -> None
    in
    Mpi_state.allreduce m ~rank:ctx.rank ~kind ~send ~recv ~count:n;
    (match ctx.instrument, in_vals with
    | Some ins, Some iv ->
      let bs = ins.buf_slots send.buf in
      let in_slots = Array.sub bs send.off n in
      let outs = Mpi_state.read_floats recv n in
      let k =
        match kind with
        | Mpi_state.Csum -> `Sum
        | Mpi_state.Cmin -> `Min
        | _ -> `Max
      in
      let out_slots = ins.allreduce_hook ~kind:k ~ins:(iv, in_slots) ~outs in
      let rs = ins.buf_slots recv.buf in
      Array.blit out_slots 0 rs recv.off n
    | _ -> ());
    unit_
  | "mpi.bcast" ->
    let m = mpi_state ctx in
    let p = ptr_arg 0 and n = int_arg 1 and root = int_arg 2 in
    check_rank ctx p.buf;
    Mpi_state.bcast m ~rank:ctx.rank ~root ~ptr:p ~count:n;
    (match ctx.instrument with
    | Some ins ->
      let bs = ins.buf_slots p.buf in
      let slots = Array.sub bs p.off n in
      let out = ins.bcast_hook ~root ~count:n ~slots in
      Array.blit out 0 bs p.off n
    | None -> ());
    unit_
  (* ---- GC model ---- *)
  | "gc.preserve_begin" ->
    let bufs =
      List.filter_map
        (fun v ->
          match v with
          | VPtr p ->
            p.buf.preserve <- p.buf.preserve + 1;
            Some p.buf
          | _ -> None)
        vals
    in
    let id = ctx.next_preserve in
    ctx.next_preserve <- id + 1;
    Hashtbl.add ctx.preserves id bufs;
    VInt id, 0
  | "gc.preserve_end" ->
    let id = int_arg 0 in
    (match Hashtbl.find_opt ctx.preserves id with
    | Some bufs ->
      List.iter (fun b -> b.preserve <- b.preserve - 1) bufs;
      Hashtbl.remove ctx.preserves id
    | None -> error "gc.preserve_end: unknown token %d" id);
    unit_
  | "gc.collect" ->
    if ctx.cfg.gc_aggressive then begin
      let roots =
        List.concat_map (fun f -> Array.to_list f.vals) e.stack
      in
      let n = Memory.gc_collect ctx.mem ~roots in
      VInt n, 0
    end
    else (VInt 0, 0)
  (* ---- AD cache runtime ---- *)
  | "cache.new" ->
    charge c.alloc_base;
    VInt (Cache_rt.fresh ctx.cache ~capacity:(int_arg 0)), 0
  | "cache.newf" ->
    (* Unboxed [float array] cache (planner emits this for Ty.Float
       slots): stores and loads are plain memory traffic, not boxed
       cache bookkeeping, so they are charged at [mem], not
       [cache_op]. *)
    charge c.alloc_base;
    VInt (Cache_rt.fresh ~unboxed:true ctx.cache ~capacity:(int_arg 0)), 0
  | "cache.set" ->
    let id = int_arg 0 in
    charge (if Cache_rt.is_unboxed ctx.cache ~id then c.mem else c.cache_op);
    st.cache_stores <- st.cache_stores + 1;
    let before = Cache_rt.cells_written ctx.cache in
    Cache_rt.set ctx.cache ~id ~idx:(int_arg 1) (List.nth vals 2);
    if Cache_rt.cells_written ctx.cache > before then begin
      st.cache_cells <- st.cache_cells + 1;
      let peak = Cache_rt.peak_cells ctx.cache in
      if peak > st.cache_peak then st.cache_peak <- peak
    end;
    unit_
  | "cache.get" ->
    let id = int_arg 0 in
    charge (if Cache_rt.is_unboxed ctx.cache ~id then c.mem else c.cache_op);
    st.cache_loads <- st.cache_loads + 1;
    let r = Cache_rt.get ctx.cache ~id ~idx:(int_arg 1) in
    (* the get sealed the cache on first read; only now can a pending
       flip land on covered (detectable) memory *)
    apply_flips ctx;
    r, 0
  | "cache.free" ->
    let id = int_arg 0 in
    (* last chance to catch a flip in this cache before its cells are
       released: the reverse sweep has consumed them all. The scan is
       charged like any other ABFT sweep — coverage is not free. *)
    if ctx.cache.Cache_rt.protect then begin
      Sim.charge
        (ctx.cfg.cost.mem
        *. float_of_int (Cache_rt.covered_id ctx.cache ~id));
      if not (Cache_rt.verify_id ctx.cache ~id) then
        corrupt_region ctx ~cache_id:id
    end;
    Cache_rt.free ctx.cache ~id;
    unit_
  (* ---- k-wide batched adjoint runtime (opts.seeds > 1) ----

     The reverse engine emits one of these per reverse statement instead
     of k unrolled scalar statements: each call loops natively over the
     contiguous k-lane group of a k-stride adjoint plane ([FCells]
     accessed raw after one bounds check per group), so the per-lane cost
     is a float op, not an interpreter dispatch. Per-lane arithmetic
     mirrors the scalar emission exactly — same ops, same order — which
     is what keeps every batched lane bit-identical to its standalone
     single-seed run. Charges model the same traffic the unrolled scalar
     sequence would have paid. *)
  | "adj.take_k" ->
    (* scratch[l] <- host[voff+l]; host[voff+l] <- 0  (read_adj, k-wide) *)
    let scr = ptr_arg 0 and host = ptr_arg 1 in
    let voff = int_arg 2 and k = int_arg 3 in
    let sa = fplane ~who:e.fname scr ~base:0 ~n:k in
    let ha = fplane ~who:e.fname host ~base:voff ~n:k in
    let so = scr.off and ho = host.off + voff in
    for l = 0 to k - 1 do
      sa.(so + l) <- ha.(ho + l);
      ha.(ho + l) <- 0.0
    done;
    charge_mem ctx host.buf (2 * k);
    unit_
  | "adj.acc_k" ->
    (* host[xoff+l] += f(scratch[l]) with f selected by [mode]; the
       lane-invariant coefficients c1/c2/cond are primal values resolved
       once, outside the call *)
    let host = ptr_arg 0
    and xoff = int_arg 1
    and scr = ptr_arg 2
    and mode = int_arg 3
    and c1 = float_arg 4
    and c2 = float_arg 5 in
    let cond = to_bool (List.nth vals 6) in
    let atomic = int_arg 7 <> 0 and k = int_arg 8 in
    let ha = fplane ~who:e.fname host ~base:xoff ~n:k in
    let sa = fplane ~who:e.fname scr ~base:0 ~n:k in
    let ho = host.off + xoff and so = scr.off in
    adj_acc_lanes ~mode ~c1 ~c2 ~cond ha ho sa so k;
    charge (c.arith *. float_of_int (k * (adj_mode_flops mode + 1)));
    if atomic then charge (c.atomic *. float_of_int k)
    else charge_mem ctx host.buf (2 * k);
    unit_
  | "adj.rev1_k" | "adj.rev2_k" ->
    (* One fused call per reverse statement: take the statement result's
       lane group into scratch (zeroing it), then fold it into one or
       two operand lane groups. Exactly [adj.take_k] followed by one or
       two [adj.acc_k]s, minus the per-call entry charges the split
       sequence would have paid. *)
    let scr = ptr_arg 0 and vhost = ptr_arg 1 in
    let voff = int_arg 2 in
    let nacc = if name = "adj.rev1_k" then 1 else 2 in
    let k = int_arg (3 + (7 * nacc)) in
    let sa = fplane ~who:e.fname scr ~base:0 ~n:k in
    let ha = fplane ~who:e.fname vhost ~base:voff ~n:k in
    let so = scr.off and ho = vhost.off + voff in
    for l = 0 to k - 1 do
      sa.(so + l) <- ha.(ho + l);
      ha.(ho + l) <- 0.0
    done;
    charge_mem ctx vhost.buf (2 * k);
    for a = 0 to nacc - 1 do
      let base = 3 + (7 * a) in
      let host = ptr_arg base
      and xoff = int_arg (base + 1)
      and mode = int_arg (base + 2)
      and c1 = float_arg (base + 3)
      and c2 = float_arg (base + 4) in
      let cond = to_bool (List.nth vals (base + 5)) in
      let atomic = int_arg (base + 6) <> 0 in
      let aa = fplane ~who:e.fname host ~base:xoff ~n:k in
      adj_acc_lanes ~mode ~c1 ~c2 ~cond aa (host.off + xoff) sa so k;
      charge (c.arith *. float_of_int (k * (adj_mode_flops mode + 1)));
      if atomic then charge (c.atomic *. float_of_int k)
      else charge_mem ctx host.buf (2 * k)
    done;
    unit_
  | "adj.mrev_k" ->
    (* Fused Load reversal: take the loaded value's lane group into
       scratch, then accumulate it into the shadow plane's lane group
       ([adj.take_k] followed by [adj.macc_k]). *)
    let scr = ptr_arg 0 and vhost = ptr_arg 1 in
    let voff = int_arg 2 in
    let sp = ptr_arg 3 and mb = int_arg 4 in
    let atomic = int_arg 5 <> 0 and k = int_arg 6 in
    let sa = fplane ~who:e.fname scr ~base:0 ~n:k in
    let ha = fplane ~who:e.fname vhost ~base:voff ~n:k in
    let so = scr.off and ho = vhost.off + voff in
    for l = 0 to k - 1 do
      sa.(so + l) <- ha.(ho + l);
      ha.(ho + l) <- 0.0
    done;
    charge_mem ctx vhost.buf (2 * k);
    let pa = fplane ~who:e.fname sp ~base:mb ~n:k in
    let po = sp.off + mb in
    for l = 0 to k - 1 do
      pa.(po + l) <- pa.(po + l) +. sa.(so + l)
    done;
    if atomic then charge (c.atomic *. float_of_int k)
    else begin
      charge (c.arith *. float_of_int k);
      charge_mem ctx sp.buf (2 * k)
    end;
    unit_
  | "adj.srev_k" | "adj.arev_k" ->
    (* Fused Store/AtomicAdd reversal: pull the shadow cell's lane group
       into scratch (zeroing it for a Store, leaving it for an AtomicAdd
       — all contributions share the final cell adjoint), then fold it
       into the stored operand's lane group (mode 0). *)
    let scr = ptr_arg 0 and sp = ptr_arg 1 in
    let mb = int_arg 2 in
    let h1 = ptr_arg 3 and o1 = int_arg 4 in
    let atomic = int_arg 5 <> 0 and k = int_arg 6 in
    let sa = fplane ~who:e.fname scr ~base:0 ~n:k in
    let pa = fplane ~who:e.fname sp ~base:mb ~n:k in
    let so = scr.off and po = sp.off + mb in
    if name = "adj.srev_k" then begin
      for l = 0 to k - 1 do
        sa.(so + l) <- pa.(po + l);
        pa.(po + l) <- 0.0
      done;
      charge_mem ctx sp.buf (2 * k)
    end
    else begin
      for l = 0 to k - 1 do
        sa.(so + l) <- pa.(po + l)
      done;
      charge_mem ctx sp.buf k
    end;
    let aa = fplane ~who:e.fname h1 ~base:o1 ~n:k in
    adj_acc_lanes ~mode:0 ~c1:0.0 ~c2:0.0 ~cond:false aa (h1.off + o1) sa
      so k;
    charge (c.arith *. float_of_int k);
    if atomic then charge (c.atomic *. float_of_int k)
    else charge_mem ctx h1.buf (2 * k);
    unit_
  | "adj.macc_k" ->
    (* shadow[mb+l] += scratch[l]  (accum_mem, k-wide) *)
    let sp = ptr_arg 0 and mb = int_arg 1 and scr = ptr_arg 2 in
    let atomic = int_arg 3 <> 0 and k = int_arg 4 in
    let pa = fplane ~who:e.fname sp ~base:mb ~n:k in
    let sa = fplane ~who:e.fname scr ~base:0 ~n:k in
    let po = sp.off + mb and so = scr.off in
    for l = 0 to k - 1 do
      pa.(po + l) <- pa.(po + l) +. sa.(so + l)
    done;
    if atomic then charge (c.atomic *. float_of_int k)
    else begin
      charge (c.arith *. float_of_int k);
      charge_mem ctx sp.buf (2 * k)
    end;
    unit_
  | "adj.mtake_k" ->
    (* scratch[l] <- shadow[mb+l]; shadow[mb+l] <- 0  (Store reversal) *)
    let sp = ptr_arg 0 and mb = int_arg 1 and scr = ptr_arg 2 in
    let k = int_arg 3 in
    let pa = fplane ~who:e.fname sp ~base:mb ~n:k in
    let sa = fplane ~who:e.fname scr ~base:0 ~n:k in
    let po = sp.off + mb and so = scr.off in
    for l = 0 to k - 1 do
      sa.(so + l) <- pa.(po + l);
      pa.(po + l) <- 0.0
    done;
    charge_mem ctx sp.buf (2 * k);
    unit_
  | "adj.mread_k" ->
    (* scratch[l] <- shadow[mb+l]  (AtomicAdd reversal: nothing zeroed) *)
    let sp = ptr_arg 0 and mb = int_arg 1 and scr = ptr_arg 2 in
    let k = int_arg 3 in
    let pa = fplane ~who:e.fname sp ~base:mb ~n:k in
    let sa = fplane ~who:e.fname scr ~base:0 ~n:k in
    let po = sp.off + mb and so = scr.off in
    for l = 0 to k - 1 do
      sa.(so + l) <- pa.(po + l)
    done;
    charge_mem ctx sp.buf k;
    unit_
  | "adj.pack_k" ->
    (* dst[doff+l] <- src[soff+l]  (d_args packing, param-major) *)
    let dst = ptr_arg 0 and doff = int_arg 1 in
    let src = ptr_arg 2 and soff = int_arg 3 in
    let k = int_arg 4 in
    let da = fplane ~who:e.fname dst ~base:doff ~n:k in
    let sa = fplane ~who:e.fname src ~base:soff ~n:k in
    let d0 = dst.off + doff and s0 = src.off + soff in
    for l = 0 to k - 1 do
      da.(d0 + l) <- sa.(s0 + l)
    done;
    charge_mem ctx dst.buf k;
    charge_mem ctx src.buf k;
    unit_
  (* ---- adjoint MPI runtime (generated by the AD engine) ---- *)
  | "mpi.adjnote_isend" | "mpi.adjnote_irecv" ->
    let m = mpi_state ctx in
    let p = ptr_arg 0 and n = int_arg 1 and peer = int_arg 2 and tag = int_arg 3 in
    let skind =
      if name = "mpi.adjnote_isend" then Mpi_state.SIsend else Mpi_state.SIrecv
    in
    let id =
      Mpi_state.shadow_note m ~rank:ctx.rank ~skind ~sptr:p ~scount:n
        ~speer:peer ~stag:tag
    in
    VInt id, 0
  | "mpi.adj_wait" ->
    (* Reverse of MPI_Wait: inspect the shadow request and spawn the dual
       nonblocking operation (Fig 5 of the paper). With coalescing, the
       dual of an Irecv stages an outgoing chunk (flushed as part of a
       packed per-destination message at the next blocking point) and the
       dual of an Isend registers an accumulate-into-shadow expectation —
       no per-exchange message, no temp buffer. *)
    let m = mpi_state ctx in
    let s = Mpi_state.shadow_find m ~rank:ctx.rank ~id:(int_arg 0) in
    let adj_tag = s.stag + 1_000_000 in
    (match s.skind, m.Mpi_state.coalesce with
    | Mpi_state.SIsend, true ->
      s.sexp <-
        Some
          (Mpi_state.adj_expect m ~rank:ctx.rank ~src:s.speer ~tag:adj_tag
             ~count:s.scount ~dst:s.sptr)
    | Mpi_state.SIrecv, true ->
      Mpi_state.adj_stage m ~rank:ctx.rank ~dst:s.speer ~tag:adj_tag
        ~count:s.scount ~sptr:s.sptr;
      s.sstaged <- true
    | Mpi_state.SIsend, false ->
      let buf =
        Memory.alloc ctx.mem ~elem:Ty.Float ~size:s.scount ~kind:Instr.Heap
          ~socket:(Sim.socket ()) ~site:name
      in
      let tmp = { buf; off = 0 } in
      s.stmp <- Some tmp;
      s.srev <-
        Some
          (Mpi_state.irecv m ~rank:ctx.rank ~ptr:tmp ~count:s.scount
             ~src:s.speer ~tag:adj_tag)
    | Mpi_state.SIrecv, false ->
      s.srev <-
        Some
          (Mpi_state.isend m ~rank:ctx.rank ~ptr:s.sptr ~count:s.scount
             ~dst:s.speer ~tag:adj_tag));
    unit_
  | "mpi.adj_isend_finish" ->
    (* Reverse of MPI_Isend: wait for the incoming adjoint and accumulate
       it into the shadow send buffer. Coalesced: complete the registered
       expectation, unpacking packed messages on demand (the accumulate is
       charged at unpack time). *)
    let m = mpi_state ctx in
    let s = Mpi_state.shadow_find m ~rank:ctx.rank ~id:(int_arg 0) in
    (match s.sexp, s.srev, s.stmp with
    | Some ex, _, _ ->
      Mpi_state.adj_complete m ~rank:ctx.rank ex;
      s.sexp <- None
    | None, Some req, Some tmp ->
      ignore (Mpi_state.wait m ~rank:ctx.rank ~req);
      charge (c.mem *. float_of_int (2 * s.scount));
      for i = 0 to s.scount - 1 do
        let cur = to_float (Memory.load s.sptr i) in
        Memory.store s.sptr i (VFloat (cur +. to_float (Memory.load tmp i)))
      done;
      Memory.free ctx.mem tmp.buf
    | _ -> error "mpi.adj_isend_finish before mpi.adj_wait");
    unit_
  | "mpi.adj_irecv_finish" ->
    (* Reverse of MPI_Irecv: wait for the adjoint send to complete, then
       zero the shadow receive buffer (its adjoint has been handed off).
       Coalesced: the chunk snapshot was taken when it was staged, so the
       shadow can be zeroed immediately — the packed send completes on the
       receiver's demand. *)
    let m = mpi_state ctx in
    let s = Mpi_state.shadow_find m ~rank:ctx.rank ~id:(int_arg 0) in
    if s.sstaged then begin
      s.sstaged <- false;
      charge (c.mem *. float_of_int s.scount);
      for i = 0 to s.scount - 1 do
        Memory.store s.sptr i (VFloat 0.0)
      done
    end
    else begin
      match s.srev with
      | Some req ->
        ignore (Mpi_state.wait m ~rank:ctx.rank ~req);
        charge (c.mem *. float_of_int s.scount);
        for i = 0 to s.scount - 1 do
          Memory.store s.sptr i (VFloat 0.0)
        done
      | None -> error "mpi.adj_irecv_finish before mpi.adj_wait"
    end;
    unit_
  | "mpi.adj_send" | "mpi.adj_send_post" ->
    (* Reverse of a blocking send: receive the adjoint and accumulate.
       The [_post] form is emitted by the coalescing reverse sweep: it
       only registers the expectation, and a later [mpi.adj_waitall]
       completes the whole batch. The plain form completes immediately. *)
    let m = mpi_state ctx in
    let d_p = ptr_arg 0 and n = int_arg 1 and peer = int_arg 2 and tag = int_arg 3 in
    if m.Mpi_state.coalesce then begin
      let ex =
        Mpi_state.adj_expect m ~rank:ctx.rank ~src:peer
          ~tag:(tag + 1_000_000) ~count:n ~dst:d_p
      in
      if name = "mpi.adj_send" then Mpi_state.adj_complete m ~rank:ctx.rank ex
    end
    else begin
      let buf =
        Memory.alloc ctx.mem ~elem:Ty.Float ~size:n ~kind:Instr.Heap
          ~socket:(Sim.socket ()) ~site:name
      in
      let tmp = { buf; off = 0 } in
      let req =
        Mpi_state.irecv m ~rank:ctx.rank ~ptr:tmp ~count:n ~src:peer
          ~tag:(tag + 1_000_000)
      in
      ignore (Mpi_state.wait m ~rank:ctx.rank ~req);
      charge (c.mem *. float_of_int (2 * n));
      for i = 0 to n - 1 do
        let cur = to_float (Memory.load d_p i) in
        Memory.store d_p i (VFloat (cur +. to_float (Memory.load tmp i)))
      done;
      Memory.free ctx.mem buf
    end;
    unit_
  | "mpi.adj_recv" | "mpi.adj_recv_post" ->
    (* Reverse of a blocking receive: send the shadow back, then zero it.
       Coalesced (either form): stage the chunk — the snapshot decouples
       the payload from the zeroing — and let the next blocking point
       flush it inside one packed message per destination. *)
    let m = mpi_state ctx in
    let d_p = ptr_arg 0 and n = int_arg 1 and peer = int_arg 2 and tag = int_arg 3 in
    if m.Mpi_state.coalesce then begin
      Mpi_state.adj_stage m ~rank:ctx.rank ~dst:peer ~tag:(tag + 1_000_000)
        ~count:n ~sptr:d_p;
      charge (c.mem *. float_of_int n);
      for i = 0 to n - 1 do
        Memory.store d_p i (VFloat 0.0)
      done
    end
    else begin
      let req =
        Mpi_state.isend m ~rank:ctx.rank ~ptr:d_p ~count:n ~dst:peer
          ~tag:(tag + 1_000_000)
      in
      ignore (Mpi_state.wait m ~rank:ctx.rank ~req);
      charge (c.mem *. float_of_int n);
      for i = 0 to n - 1 do
        Memory.store d_p i (VFloat 0.0)
      done
    end;
    unit_
  | "mpi.adj_waitall" ->
    (* Completion barrier of a batch of [_post]ed adjoint exchanges: flush
       every staged chunk, then drain packed messages until all registered
       expectations are fulfilled. No-op when coalescing is off (the
       [_post] forms completed eagerly). *)
    let m = mpi_state ctx in
    if m.Mpi_state.coalesce then Mpi_state.adj_complete_all m ~rank:ctx.rank;
    unit_
  | "parad.remat_begin" ->
    ctx.remat_depth <- ctx.remat_depth + 1;
    unit_
  | "parad.remat_end" ->
    if ctx.remat_depth > 0 then ctx.remat_depth <- ctx.remat_depth - 1;
    unit_
  | "mpi.adj_allreduce_sum" ->
    (* y = allreduce_sum(x)  =>  dx += allreduce_sum(dy); dy := 0 *)
    let m = mpi_state ctx in
    let d_send = ptr_arg 0 and d_recv = ptr_arg 1 and n = int_arg 2 in
    let buf =
      Memory.alloc ctx.mem ~elem:Ty.Float ~size:n ~kind:Instr.Heap
        ~socket:(Sim.socket ()) ~site:name
    in
    let tmp = { buf; off = 0 } in
    Mpi_state.allreduce m ~rank:ctx.rank ~kind:Mpi_state.Csum ~send:d_recv
      ~recv:tmp ~count:n;
    charge (c.mem *. float_of_int (3 * n));
    for i = 0 to n - 1 do
      let cur = to_float (Memory.load d_send i) in
      Memory.store d_send i (VFloat (cur +. to_float (Memory.load tmp i)));
      Memory.store d_recv i (VFloat 0.0)
    done;
    Memory.free ctx.mem buf;
    unit_
  | "mpi.adj_allreduce_minmax" ->
    (* y = allreduce_min/max(x): the adjoint flows to the rank(s) whose
       contribution equals the result.
       args: send (cached primal), res (cached primal result), d_send,
       d_recv, count *)
    let m = mpi_state ctx in
    let send = ptr_arg 0
    and res = ptr_arg 1
    and d_send = ptr_arg 2
    and d_recv = ptr_arg 3
    and n = int_arg 4 in
    let buf =
      Memory.alloc ctx.mem ~elem:Ty.Float ~size:n ~kind:Instr.Heap
        ~socket:(Sim.socket ()) ~site:name
    in
    let tmp = { buf; off = 0 } in
    Mpi_state.allreduce m ~rank:ctx.rank ~kind:Mpi_state.Csum ~send:d_recv
      ~recv:tmp ~count:n;
    charge (c.mem *. float_of_int (4 * n));
    for i = 0 to n - 1 do
      let mine = to_float (Memory.load send i) in
      let winner = to_float (Memory.load res i) in
      if mine = winner then begin
        let cur = to_float (Memory.load d_send i) in
        Memory.store d_send i (VFloat (cur +. to_float (Memory.load tmp i)))
      end;
      Memory.store d_recv i (VFloat 0.0)
    done;
    Memory.free ctx.mem buf;
    unit_
  | "mpi.adj_bcast" ->
    (* y_r = x_root  =>  dx_root := sum_r dy_r; dy_r := 0 for r <> root *)
    let m = mpi_state ctx in
    let d_p = ptr_arg 0 and n = int_arg 1 and root = int_arg 2 in
    let buf =
      Memory.alloc ctx.mem ~elem:Ty.Float ~size:n ~kind:Instr.Heap
        ~socket:(Sim.socket ()) ~site:name
    in
    let tmp = { buf; off = 0 } in
    Mpi_state.allreduce m ~rank:ctx.rank ~kind:Mpi_state.Csum ~send:d_p
      ~recv:tmp ~count:n;
    charge (c.mem *. float_of_int (2 * n));
    for i = 0 to n - 1 do
      if ctx.rank = root then
        Memory.store d_p i (Memory.load tmp i)
      else Memory.store d_p i (VFloat 0.0)
    done;
    Memory.free ctx.mem buf;
    unit_
  | "task.retval" ->
    (* Return value of a completed (synced) task — used by the AD engine
       to retrieve the augmented task's cache-block handle. *)
    let id = int_arg 0 in
    (match Hashtbl.find_opt ctx.tasks id with
    | Some (_, ret) -> !ret, 0
    | None -> error "task.retval: unknown task %d" id)
  | "ad.map_set" ->
    Hashtbl.replace ctx.admap (int_arg 0) (List.nth vals 1, List.nth vals 2);
    unit_
  | "ad.map_get1" ->
    (match Hashtbl.find_opt ctx.admap (int_arg 0) with
    | Some (v, _) -> v, 0
    | None -> error "ad.map_get1: unknown key %d" (int_arg 0))
  | "ad.map_get2" ->
    (match Hashtbl.find_opt ctx.admap (int_arg 0) with
    | Some (_, v) -> v, 0
    | None -> error "ad.map_get2: unknown key %d" (int_arg 0))
  (* ---- debugging ---- *)
  | "debug.print_f64" ->
    Format.eprintf "[rank %d] %s = %.17g@." ctx.rank
      (match args with a :: _ -> Var.name a | [] -> "?")
      (float_arg 0);
    unit_
  | _ -> error "unknown intrinsic %S" name

(* Shared implementation of the two checkpoint intrinsics.
   [explicit_id = Some i] is a program-designated site ([parad.checkpoint],
   id from the outer loop variable); [None] is the reverse-entry site
   ([parad.checkpoint_rev]), which allocates the next id after every site
   this rank has passed. Both ids replay deterministically, which is all
   the resume protocol needs. *)
and checkpoint_site ctx e ~name ~explicit_id ~extras : Value.t * int =
  let c = ctx.cfg.cost in
  let st = Sim.stats () in
  match ctx.ckpt with
  | None -> VUnit, 0 (* no session: checkpoint points cost one arith op *)
  | Some session ->
    if e.team <> None then error "%s inside a parallel region" name;
    if ctx.instrument <> None then
      error "%s: tape-instrumented runs cannot checkpoint" name;
    let id =
      match explicit_id with
      | Some i -> i
      | None -> session.Checkpoint.last_id + 1
    in
    session.Checkpoint.last_id <- max session.Checkpoint.last_id id;
    (match session.Checkpoint.pending with
    | Some target when id < target ->
      (* fast-forward: this iteration is already covered by the
         snapshot we are resuming from *)
      raise Checkpoint.Skip_iteration
    | Some target when id > target ->
      error
        "%s: replay reached checkpoint %d without passing resume target %d \
         (checkpoint ids must replay identically)"
        name id target
    | Some _ ->
      let { Checkpoint.r_cells; r_clock; r_tier } =
        Checkpoint.restore session ~mem:ctx.mem ~cache:ctx.cache ~mpi:ctx.mpi
          ~id
      in
      st.checkpoints_restored <- st.checkpoints_restored + 1;
      st.snap_restores <- st.snap_restores + 1;
      if r_clock > Sim.now () then Sim.set_clock r_clock;
      Sim.charge (c.ckpt_base +. (c.ckpt_per_cell *. float_of_int r_cells));
      (* a disk-tier fetch additionally pays the modelled bandwidth *)
      (match r_tier with
      | Checkpoint.Disk ->
        Sim.charge
          (c.snap_disk_base +. (c.snap_disk_per_cell *. float_of_int r_cells))
      | Checkpoint.Hot -> ());
      VUnit, 0
    | None ->
      (* ABFT boundary: verify the previous interval's seals BEFORE the
         snapshot — a flip since the last boundary must surface here, so
         every snapshot captures verified-clean state *)
      verify_regions ctx;
      let { Checkpoint.t_cells; t_put } =
        Checkpoint.take session ~mem:ctx.mem ~cache:ctx.cache ~mpi:ctx.mpi
          ~roots:(ctx.root_args @ extras) ~id
      in
      st.checkpoints_taken <- st.checkpoints_taken + 1;
      st.snap_count <- st.snap_count + 1;
      st.snap_bytes <- st.snap_bytes + t_put.Checkpoint.p_bytes;
      st.snap_evictions <- st.snap_evictions + t_put.Checkpoint.p_evictions;
      Sim.charge (c.ckpt_base +. (c.ckpt_per_cell *. float_of_int t_cells));
      (* demoting an evicted snapshot to the disk tier pays bandwidth *)
      if t_put.Checkpoint.p_demoted_cells > 0 then
        Sim.charge
          (c.snap_disk_base
          +. (c.snap_disk_per_cell
             *. float_of_int t_put.Checkpoint.p_demoted_cells));
      (* reseal over the just-snapshotted state, then let any due flip
         land on the fresh seals (detected at the next boundary) *)
      if ctx.cache.Cache_rt.protect then
        Sim.charge
          (c.mem *. float_of_int (Cache_rt.seal_all ctx.cache));
      apply_flips ctx;
      VUnit, 0)

(** Call [fname] in an existing context (must run inside {!Sim.run}). *)
let call ctx fname args =
  ctx.root_args <- args;
  fst (call_function ctx ~caller_stack:[] fname args [])

(** Call [fname] with tape slots for the arguments; returns value and
    return-value slot. *)
let call_with_slots ctx fname args slots =
  ctx.root_args <- args;
  call_function ctx ~caller_stack:[] fname args slots
