(** A rank's address space: allocation, bounds- and liveness-checked
    access. Distinct ranks get distinct address spaces (the MPI model of
    the paper, §IV-B). *)

open Parad_ir
open Value

type t = {
  rank : int;
  mutable next_bid : int;
  mutable live : buffer list;  (** GC-managed buffers, for collection *)
  mutable live_cells : int;
  mutable peak_cells : int;
  all : (int, buffer) Hashtbl.t;
      (** every buffer ever allocated, by id — the checkpoint subsystem
          matches snapshot buffers to their structural counterparts in a
          replayed run through this registry *)
}

let create ~rank =
  {
    rank;
    next_bid = 0;
    live = [];
    live_cells = 0;
    peak_cells = 0;
    all = Hashtbl.create 64;
  }

let find_bid t bid = Hashtbl.find_opt t.all bid

let alloc ?(site = "?") t ~elem ~size ~kind ~socket =
  if size < 0 then error "alloc of negative size %d" size;
  let buf =
    {
      bid = t.next_bid;
      elem;
      data =
        (match elem with
        | Ty.Float -> FCells (Array.make size 0.0)
        | _ -> VCells (Array.make size (zero_of elem)));
      kind;
      rank = t.rank;
      socket;
      freed = false;
      preserve = 0;
      asite = site;
      fsite = None;
    }
  in
  t.next_bid <- t.next_bid + 1;
  Hashtbl.replace t.all buf.bid buf;
  t.live_cells <- t.live_cells + size;
  if t.live_cells > t.peak_cells then t.peak_cells <- t.live_cells;
  (match kind with Instr.Gc -> t.live <- buf :: t.live | Instr.Stack | Instr.Heap -> ());
  buf

let free ?site t (buf : buffer) =
  if buf.freed then
    error "double free of buffer %d (alloc at %s, first freed at %s)" buf.bid
      buf.asite
      (Option.value buf.fsite ~default:"?");
  buf.freed <- true;
  buf.fsite <- site;
  t.live_cells <- t.live_cells - cells_len buf.data

(* [who] names the accessing context (function or harness entry point) so
   use-after-free reports name both ends of the stale access. *)
let check_access ?(who = "?") (p : ptr) idx =
  if p.buf.freed then
    error
      "use after free: buffer %d size %d (rank %d, alloc at %s, freed at %s, \
       stale access from %s)"
      p.buf.bid
      (cells_len p.buf.data)
      p.buf.rank p.buf.asite
      (Option.value p.buf.fsite ~default:"?")
      who;
  let i = p.off + idx in
  if i < 0 || i >= cells_len p.buf.data then
    error "out of bounds: buffer %d size %d index %d (alloc at %s)" p.buf.bid
      (cells_len p.buf.data) i p.buf.asite;
  i

let load ?who (p : ptr) idx =
  let i = check_access ?who p idx in
  get_cell p.buf.data i

let store ?who (p : ptr) idx v =
  let i = check_access ?who p idx in
  match p.buf.data, v with
  | FCells a, VFloat x -> a.(i) <- x
  | VCells a, v when Ty.equal (Value.ty v) p.buf.elem -> a.(i) <- v
  | _ ->
    error "store type mismatch: %a into %a buffer" Ty.pp (Value.ty v) Ty.pp
      p.buf.elem

(** Collect GC buffers that are neither preserved nor reachable from
    [roots] (transitively through stored pointers). Freed buffers are
    poisoned so stale accesses raise. Returns the number collected. *)
let gc_collect t ~roots =
  let reachable = Hashtbl.create 64 in
  let rec mark v =
    match v with
    | VPtr p when not (Hashtbl.mem reachable p.buf.bid) ->
      Hashtbl.add reachable p.buf.bid ();
      if not p.buf.freed then begin
        match p.buf.data with
        | VCells a -> Array.iter mark a
        | FCells _ -> ()
      end
    | VPtr _ | VUnit | VBool _ | VInt _ | VFloat _ | VNull _ -> ()
  in
  List.iter mark roots;
  let collected = ref 0 in
  t.live <-
    List.filter
      (fun (b : buffer) ->
        if b.freed then false
        else if b.preserve > 0 || Hashtbl.mem reachable b.bid then true
        else begin
          free ~site:"gc" t b;
          incr collected;
          false
        end)
      t.live;
  !collected
