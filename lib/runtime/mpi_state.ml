(** Message-passing runtime: per-rank address spaces communicate through
    buffered point-to-point messages and tree-costed collectives, all in
    virtual time. Matching is FIFO per (src, dst, tag) channel, which —
    together with run-to-block scheduling — makes executions deterministic.

    Also hosts the adjoint-MPI bookkeeping the AD engine generates calls
    to: shadow requests record what a wait synchronized so its adjoint can
    spawn the dual operation (paper §IV-B, Fig 5). *)

open Value

type msg = {
  payload : Value.t array;
  avail : float;  (** virtual time at which the receiver can complete *)
  mcorrupt : (Value.t array * int * bool) option;
      (** set when fault injection damaged this delivery in flight:
          the sender's pristine staged copy (the retransmit source),
          the byte seed that picked the flipped bit, and whether the
          corruption is sticky (re-applied to every retransmit). *)
}

type pending_recv = {
  dst : ptr option;  (** [None] for packed adjoint messages: the payload
                         stays in [matched] for demand-driven unpacking *)
  count : int;
  psrc : int;
  ptag : int;
  ev : Sim.event;
  mutable matched : msg option;
  mutable pfailed : int option;
      (** the sender rank died before matching this receive *)
}

type channel = {
  msgs : msg Queue.t;  (** sent, not yet matched *)
  recvs : pending_recv Queue.t;  (** posted, not yet matched *)
}

type coll_kind = Csum | Cmin | Cmax | Cbarrier | Cbcast of int  (** root *)

let coll_kind_name = function
  | Csum -> "allreduce(sum)"
  | Cmin -> "allreduce(min)"
  | Cmax -> "allreduce(max)"
  | Cbarrier -> "barrier"
  | Cbcast r -> Printf.sprintf "bcast(root %d)" r

type coll_slot = {
  kind : coll_kind;
  count : int;
  mutable carrived : int;
  mutable cmax : float;
  mutable acc : float array;
  cev : Sim.event;
  cwho : bool array;  (** which ranks have joined (for diagnosis) *)
  mutable cfailed : int option;
      (** a rank died before joining; the collective can never complete *)
}

(* A nonblocking request as seen by one rank. *)
type req =
  | RSend
  | RRecv of pending_recv

type shadow_kind = SIsend | SIrecv

(* ---- adjoint-communication coalescing (paper §VI / ISSUE 5) ----

   With coalescing on, the reverse sweep's outgoing adjoint contributions
   are not sent one latency-charged message per forward exchange. Instead
   each is *staged* as a chunk (an eager snapshot of the shadow values,
   exactly like [isend]'s buffered copy-out) keyed by destination rank;
   all chunks for one destination are flushed as a single packed message
   the moment the rank is about to block (a wait, a collective, or the
   demand for an incoming adjoint). The receiving side registers an
   *expectation* per incoming adjoint — where to accumulate, under which
   original tag — and unpacks arriving packed messages against those
   expectations on demand. Matching is FIFO per (source, original tag),
   mirroring the channel semantics of the uncoalesced path, so gradients
   are bit-identical (see DESIGN.md). *)

(** Packed adjoint messages travel on this dedicated tag, above the
    adjoint-tag band ([forward tag + 1_000_000]) used by the uncoalesced
    path. *)
let packed_tag = 2_000_000

type adj_chunk = {
  ck_tag : int;  (** adjoint tag, i.e. originating forward tag + 1M *)
  ck_count : int;
  ck_data : float array;  (** snapshot taken when the chunk was staged *)
}

type adj_exp = {
  ex_src : int;
  ex_tag : int;  (** adjoint tag the chunk must carry *)
  ex_count : int;
  ex_dst : ptr;  (** shadow buffer the arriving adjoint accumulates into *)
  mutable ex_done : bool;
}

(* Shadow request: what the AD-generated forward pass records so that the
   reverse of the corresponding wait knows which dual operation to spawn. *)
type shadow_req = {
  skind : shadow_kind;
  sptr : ptr;  (** shadow (derivative) buffer of the communicated data *)
  scount : int;
  speer : int;
  stag : int;
  mutable srev : int option;  (** request id of the spawned dual op *)
  mutable stmp : ptr option;  (** temp buffer receiving the adjoint (Isend) *)
  mutable sexp : adj_exp option;
      (** coalesced dual of an Isend: the registered expectation *)
  mutable sstaged : bool;  (** coalesced dual of an Irecv: chunk staged *)
}

type rank_state = {
  reqs : (int, req) Hashtbl.t;
  mutable next_req : int;
  shadows : (int, shadow_req) Hashtbl.t;
  mutable next_shadow : int;
  mutable coll_seq : int;
  mutable staged : (int * adj_chunk list ref) list;
      (** outgoing chunks per destination, in first-staged destination
          order; each chunk list is kept reversed (newest first) *)
  mutable exps : (int * adj_exp list ref) list;
      (** expectations per source, in registration order *)
  mutable orphans : (int * adj_chunk) list;
      (** (source, chunk) pairs that arrived in a packed message before
          their expectation was registered — a packet carries every chunk
          its sender staged, and the receiver may still be several
          reversal steps away from the matching exchange. Matched (FIFO,
          arrival order) when [adj_expect] registers the expectation. *)
}

type t = {
  nranks : int;
  coalesce : bool;  (** adjoint-communication coalescing enabled *)
  channels : (int * int * int, channel) Hashtbl.t;
  colls : (int, coll_slot) Hashtbl.t;  (** keyed by collective sequence no. *)
  ranks : rank_state array;
  sockets : int array;  (** socket of each rank *)
  faults : Faults.state option;
  dead : bool array;  (** ranks killed by fault injection *)
  mutable epoch : int;  (** failures observed so far (communicator epoch) *)
  mutable inflight : int;  (** packed adjoint messages sent, not consumed *)
}

(* ---- ULFM-style failure notification ----

   A kill no longer silently parks its peers: the communicator records
   the death, wakes every receive and collective that can never complete,
   and the first surviving rank to touch the dead rank raises a
   structured {!Rank_failed}. The notice carries the deterministic
   agreement outcome (survivor set, agreement completion time) so a
   supervisor can rebuild the communicator and charge recovery to the
   virtual clock. *)

type failure_notice = {
  fn_failed : int;  (** the rank that died *)
  fn_observed_by : int;  (** surviving rank that raised the notice *)
  fn_observed_at : float;  (** virtual time of observation *)
  fn_agreed_at : float;
      (** observation + deterministic agreement (a barrier-shaped vote
          over the survivors) *)
  fn_survivors : int list;
  fn_epoch : int;
}

exception Rank_failed of failure_notice

let pp_failure ppf n =
  Format.fprintf ppf
    "rank failure: rank %d killed; observed by rank %d at t=%.6g; %d \
     survivor(s) [%s]; agreement reached at t=%.6g (epoch %d)"
    n.fn_failed n.fn_observed_by n.fn_observed_at
    (List.length n.fn_survivors)
    (String.concat "; " (List.map string_of_int n.fn_survivors))
    n.fn_agreed_at n.fn_epoch

(* ---- silent-data-corruption detection on packed messages ----

   Every packed adjoint message carries an ABFT trailer: the FNV-1a
   digest of its cells, appended as one extra [VFloat] whose bits are
   the checksum. The receiver verifies the trailer before parsing the
   packet (a flipped header cell must never drive the unpacker), asks
   the sender's retained staging copy for a bounded number of
   retransmits on mismatch, and raises {!Corrupt_message} once the
   retry budget is spent — the same give-up ladder as dropped
   messages, but for corruption instead of loss. *)

type corruption_notice = {
  cm_src : int;  (** sender of the damaged packed message *)
  cm_dst : int;  (** receiver that detected the mismatch *)
  cm_at : float;  (** virtual time of detection *)
  cm_attempts : int;  (** retransmits tried before giving up *)
}

exception Corrupt_message of corruption_notice

let pp_corruption ppf c =
  Format.fprintf ppf
    "corrupt message: packed adjoint message %d->%d failed its checksum at \
     t=%.6g; %d retransmit(s) also corrupt — sender staging is poisoned"
    c.cm_src c.cm_dst c.cm_at c.cm_attempts

let () =
  Printexc.register_printer (function
    | Rank_failed n -> Some (Format.asprintf "%a" pp_failure n)
    | Corrupt_message c -> Some (Format.asprintf "%a" pp_corruption c)
    | _ -> None)

(* FNV-1a over the packet's cells in index order, each cell as a type
   byte plus its 64-bit pattern. (Checkpoint has a string checksum with
   the same constants, but depends on this module — hence the local
   copy over cells rather than an allocation-heavy serialize-and-hash.) *)
let packed_digest payload n =
  let h = ref 0xcbf29ce484222325L in
  let byte b =
    h := Int64.mul (Int64.logxor !h (Int64.of_int b)) 0x100000001b3L
  in
  for i = 0 to n - 1 do
    let tag, bits =
      match payload.(i) with
      | VInt k -> 0x69, Int64.of_int k
      | VFloat x -> 0x66, Int64.bits_of_float x
      | _ -> 0x75, 0L
    in
    byte tag;
    for k = 0 to 7 do
      byte (Int64.to_int (Int64.logand (Int64.shift_right_logical bits (8 * k)) 0xFFL))
    done
  done;
  !h

(** True when the packet's trailer matches its contents. *)
let verify_packed (m : msg) =
  let n = Array.length m.payload in
  n >= 2
  &&
  match m.payload.(n - 1) with
  | VFloat x ->
    Int64.equal (Int64.bits_of_float x) (packed_digest m.payload (n - 1))
  | _ -> false

(* Flip one bit of one cell, the seed picking both. Structural cells
   (chunk headers) are fair targets: verification runs before parsing,
   so a damaged header is detected, never interpreted. *)
let damage payload byte =
  let n = Array.length payload in
  let i = byte mod n in
  (match payload.(i) with
  | VFloat x ->
    payload.(i) <-
      VFloat
        (Int64.float_of_bits
           (Int64.logxor (Int64.bits_of_float x)
              (Int64.shift_left 1L (byte mod 52))))
  | VInt k -> payload.(i) <- VInt (k lxor (1 lsl (byte mod 30)))
  | _ -> ());
  payload

let create ~cost ~nranks ?faults ?(coalesce = true) () =
  {
    nranks;
    coalesce;
    channels = Hashtbl.create 64;
    colls = Hashtbl.create 16;
    ranks =
      Array.init nranks (fun _ ->
          {
            reqs = Hashtbl.create 16;
            next_req = 0;
            shadows = Hashtbl.create 16;
            next_shadow = 0;
            coll_seq = 0;
            staged = [];
            exps = [];
            orphans = [];
          });
    sockets =
      Array.init nranks (fun r ->
          Cost_model.socket_of cost ~index:r ~width:nranks);
    faults = Option.map (Faults.make ~nranks) faults;
    dead = Array.make nranks false;
    epoch = 0;
    inflight = 0;
  }

let survivors t =
  List.filter (fun r -> not t.dead.(r)) (List.init t.nranks Fun.id)

(** Raise the structured failure notice for [failed] on behalf of
    surviving [rank]. The deterministic agreement is modelled as a
    barrier-shaped vote over the survivors, charged before the raise so
    [fn_agreed_at] is consistent with the observer's clock. *)
let raise_failure t ~rank ~failed =
  let now = Sim.now () in
  let survivors = survivors t in
  let agree =
    Cost_model.barrier_cost (Sim.cost ()) ~width:(List.length survivors)
  in
  Sim.charge agree;
  let stats = Sim.stats () in
  stats.ranks_failed <- stats.ranks_failed + 1;
  raise
    (Rank_failed
       {
         fn_failed = failed;
         fn_observed_by = rank;
         fn_observed_at = now;
         fn_agreed_at = now +. agree;
         fn_survivors = survivors;
         fn_epoch = t.epoch;
       })

(* The dead rank will never send or join again: wake every unmatched
   receive on a channel it feeds and every collective it has not joined,
   so blocked survivors observe the failure instead of deadlocking. *)
let mark_rank_dead t ~failed =
  let now = Sim.now () in
  Hashtbl.iter
    (fun (src, _, _) ch ->
      if src = failed then
        Queue.iter
          (fun pr ->
            if pr.matched = None && pr.pfailed = None then begin
              pr.pfailed <- Some failed;
              Sim.event_fill pr.ev ~time:now
            end)
          ch.recvs)
    t.channels;
  Hashtbl.iter
    (fun _ slot ->
      if
        slot.carrived < t.nranks
        && (not slot.cwho.(failed))
        && slot.cfailed = None
      then begin
        slot.cfailed <- Some failed;
        Sim.event_fill slot.cev ~time:now
      end)
    t.colls

(* A survivor touching a dead peer observes the failure immediately —
   including a receive posted against an already-dead rank (no waiting
   out the retry deadline). *)
let check_peer_alive t ~rank ~peer =
  if peer >= 0 && peer < t.nranks && t.dead.(peer) then
    raise_failure t ~rank ~failed:peer

let check_any_alive t ~rank =
  match List.find_opt (fun r -> t.dead.(r)) (List.init t.nranks Fun.id) with
  | Some failed -> raise_failure t ~rank ~failed
  | None -> ()

(* Gate every MPI entry point: a stalled rank is charged a one-time
   delay; a killed rank notifies the communicator (waking peers that can
   never be matched) and parks forever — survivors then raise the
   structured failure at their next MPI call or wakeup. *)
let fault_gate t ~rank =
  match t.faults with
  | None -> ()
  | Some fs -> (
    match Faults.rank_gate fs ~rank ~now:(Sim.now ()) with
    | `Ok -> ()
    | `Stall d ->
      (Sim.stats ()).stalls_injected <- (Sim.stats ()).stalls_injected + 1;
      Sim.charge d
    | `Kill at ->
      if not t.dead.(rank) then begin
        t.dead.(rank) <- true;
        t.epoch <- t.epoch + 1;
        mark_rank_dead t ~failed:rank
      end;
      let ev =
        Sim.event
          ~label:(fun () ->
            Printf.sprintf "rank %d killed at t>=%.6g by fault plan" rank at)
          ()
      in
      Sim.event_wait ev)

let channel t ~src ~dst ~tag =
  match Hashtbl.find_opt t.channels (src, dst, tag) with
  | Some c -> c
  | None ->
    let c = { msgs = Queue.create (); recvs = Queue.create () } in
    Hashtbl.add t.channels (src, dst, tag) c;
    c

let fresh_req rs r =
  let id = rs.next_req in
  rs.next_req <- id + 1;
  Hashtbl.add rs.reqs id r;
  id

let remote t ~src ~dst = t.sockets.(src) <> t.sockets.(dst)

let read_cells p count =
  Array.init count (fun i -> Memory.load p i)

let write_cells p (a : Value.t array) =
  Array.iteri (fun i v -> Memory.store p i v) a

let deliver (pr : pending_recv) (m : msg) =
  (match pr.dst with
  | Some dst ->
    if Array.length m.payload <> pr.count then
      error "mpi: message size %d does not match recv count %d"
        (Array.length m.payload) pr.count;
    write_cells dst m.payload
  | None -> (* packed adjoint: unpacked on demand by the receiver *) ());
  pr.matched <- Some m;
  Sim.event_fill pr.ev ~time:m.avail

let post_msg ch m =
  if Queue.is_empty ch.recvs then Queue.add m ch.msgs
  else deliver (Queue.pop ch.recvs) m

(** Nonblocking send: buffered semantics — the payload is copied out
    eagerly, so the request completes locally. Returns a request id.

    Under fault injection, dropped transmission attempts are recovered by
    retransmission with exponential backoff (added to the message's
    in-flight latency); a message past its retry/deadline budget is lost
    and never enqueued — the loss is recorded for wait-for diagnosis. *)
let isend t ~rank ~ptr ~count ~dst ~tag =
  if dst < 0 || dst >= t.nranks then error "mpi.isend: bad destination %d" dst;
  fault_gate t ~rank;
  check_peer_alive t ~rank ~peer:dst;
  let cost = Sim.cost () in
  let stats = Sim.stats () in
  stats.messages <- stats.messages + 1;
  stats.message_cells <- stats.message_cells + count;
  (* Sender-side overhead: copying the payload out. *)
  Sim.charge
    ((cost.mpi_per_cell *. float_of_int count) +. (0.1 *. cost.mpi_latency));
  let payload = read_cells ptr count in
  let avail =
    Sim.now ()
    +. Cost_model.message_cost cost ~cells:count
         ~remote:(remote t ~src:rank ~dst)
  in
  let fate =
    match t.faults with
    | None -> `Deliver Faults.{ extra = 0.0; copies = 0; retries = 0 }
    | Some fs -> Faults.on_send fs ~src:rank ~dst ~tag ~now:(Sim.now ())
  in
  (match fate with
  | `Lost _ -> stats.messages_lost <- stats.messages_lost + 1
  | `Deliver { Faults.extra; copies; retries } ->
    stats.send_retries <- stats.send_retries + retries;
    stats.messages_duplicated <- stats.messages_duplicated + copies;
    let ch = channel t ~src:rank ~dst ~tag in
    post_msg ch { payload; avail = avail +. extra; mcorrupt = None };
    for _ = 1 to copies do
      post_msg ch
        { payload = Array.copy payload; avail = avail +. extra;
          mcorrupt = None }
    done);
  fresh_req t.ranks.(rank) RSend

(** Nonblocking receive. Returns a request id; data is visible after the
    matching [wait]. *)
let irecv t ~rank ~ptr ~count ~src ~tag =
  if src < 0 || src >= t.nranks then error "mpi.irecv: bad source %d" src;
  fault_gate t ~rank;
  check_peer_alive t ~rank ~peer:src;
  let cost = Sim.cost () in
  Sim.charge (0.1 *. cost.mpi_latency);
  let label () =
    let lost =
      match t.faults with
      | Some fs -> Faults.lost_on fs ~src ~dst:rank ~tag
      | None -> 0
    in
    Printf.sprintf
      "rank %d: recv from rank %d tag %d (%d cells) has no matching send%s"
      rank src tag count
      (if lost > 0 then
         Printf.sprintf " — %d message(s) on this channel lost by fault \
                          injection"
           lost
       else "")
  in
  let pr =
    {
      dst = Some ptr;
      count;
      psrc = src;
      ptag = tag;
      ev = Sim.event ~label ();
      matched = None;
      pfailed = None;
    }
  in
  let ch = channel t ~src ~dst:rank ~tag in
  if Queue.is_empty ch.msgs then Queue.add pr ch.recvs
  else deliver pr (Queue.pop ch.msgs);
  fresh_req t.ranks.(rank) (RRecv pr)

(* ---- adjoint-communication coalescing ---- *)

(** Stage one outgoing adjoint contribution for [dst]: snapshot the shadow
    values now (the same eager copy-out [isend] performs, so later writes
    to [sptr] — e.g. the zeroing an [adj_irecv_finish] does — cannot change
    what is sent) and charge the copy; the latency is charged once per
    packed message at flush time. *)
let adj_stage t ~rank ~dst ~tag ~count ~sptr =
  if dst < 0 || dst >= t.nranks then error "mpi adjoint: bad destination %d" dst;
  check_peer_alive t ~rank ~peer:dst;
  let cost = Sim.cost () in
  Sim.charge (cost.mpi_per_cell *. float_of_int count);
  let data = Array.init count (fun i -> to_float (Memory.load sptr i)) in
  let rs = t.ranks.(rank) in
  let chunks =
    match List.assoc_opt dst rs.staged with
    | Some r -> r
    | None ->
      let r = ref [] in
      rs.staged <- rs.staged @ [ dst, r ];
      r
  in
  chunks := { ck_tag = tag; ck_count = count; ck_data = data } :: !chunks

(* Fulfill [ex] with [data]: the read-accumulate-write the uncoalesced
   path performs at its blocking receive, charged identically. *)
let adj_fulfill ex data =
  Sim.charge ((Sim.cost ()).mem *. float_of_int (2 * ex.ex_count));
  Array.iteri
    (fun i x ->
      let cur = to_float (Memory.load ex.ex_dst i) in
      Memory.store ex.ex_dst i (VFloat (cur +. x)))
    data;
  ex.ex_done <- true

(** Register the expectation of one incoming adjoint contribution:
    [count] cells under adjoint tag [tag] from [src], to be accumulated
    into [dst] when a packed message carrying the matching chunk is
    unpacked. Nonblocking; completion is [adj_complete]. If the chunk
    already arrived — packets carry whole staging epochs, so chunks can
    outrun their expectations — it was parked as an orphan and is claimed
    (and accumulated) here, at exactly the program point the uncoalesced
    blocking path would have accumulated it. *)
let adj_expect t ~rank ~src ~tag ~count ~dst =
  if src < 0 || src >= t.nranks then error "mpi adjoint: bad source %d" src;
  check_peer_alive t ~rank ~peer:src;
  let rs = t.ranks.(rank) in
  let q =
    match List.assoc_opt src rs.exps with
    | Some r -> r
    | None ->
      let r = ref [] in
      rs.exps <- rs.exps @ [ src, r ];
      r
  in
  let ex = { ex_src = src; ex_tag = tag; ex_count = count; ex_dst = dst; ex_done = false } in
  q := !q @ [ ex ];
  (let rec claim acc = function
     | [] -> ()
     | (s, c) :: rest
       when s = src && c.ck_tag = tag && c.ck_count = count ->
       rs.orphans <- List.rev_append acc rest;
       adj_fulfill ex c.ck_data
     | o :: rest -> claim (o :: acc) rest
   in
   claim [] rs.orphans);
  ex

(** Flush every staged chunk of [rank] as one packed message per
    destination: a header cell with the chunk count, then per chunk its
    adjoint tag, cell count, and data. One message — one latency charge —
    regardless of how many forward exchanges contributed. Runs the same
    fault gate as [isend], so drop/delay/duplicate plans apply to packed
    adjoint traffic too. *)
let adj_flush_all t ~rank =
  let rs = t.ranks.(rank) in
  if rs.staged <> [] then begin
    let staged = rs.staged in
    rs.staged <- [];
    let cost = Sim.cost () in
    let stats = Sim.stats () in
    List.iter
      (fun (dst, chunks) ->
        let chunks = List.rev !chunks in
        (* one header cell, the chunks, one checksum trailer cell *)
        let cells =
          List.fold_left (fun acc c -> acc + c.ck_count + 2) 2 chunks
        in
        let payload = Array.make cells VUnit in
        payload.(0) <- VInt (List.length chunks);
        let pos = ref 1 in
        List.iter
          (fun c ->
            payload.(!pos) <- VInt c.ck_tag;
            payload.(!pos + 1) <- VInt c.ck_count;
            pos := !pos + 2;
            Array.iter
              (fun x ->
                payload.(!pos) <- VFloat x;
                incr pos)
              c.ck_data)
          chunks;
        payload.(cells - 1) <-
          VFloat (Int64.float_of_bits (packed_digest payload (cells - 1)));
        stats.messages <- stats.messages + 1;
        stats.message_cells <- stats.message_cells + cells;
        stats.msgs_sent <- stats.msgs_sent + 1;
        stats.cells_sent <- stats.cells_sent + cells;
        Sim.charge (0.1 *. cost.mpi_latency);
        let avail =
          Sim.now ()
          +. Cost_model.message_cost cost ~cells
               ~remote:(remote t ~src:rank ~dst)
        in
        (* the global packed ordinal advances whatever this message's
           fate, so a plan's corrupt-msg targets are stable under other
           injected faults *)
        let corrupted =
          match t.faults with
          | None -> None
          | Some fs -> Faults.corrupt_gate fs
        in
        let fate =
          match t.faults with
          | None -> `Deliver Faults.{ extra = 0.0; copies = 0; retries = 0 }
          | Some fs ->
            Faults.on_send fs ~src:rank ~dst ~tag:packed_tag ~now:(Sim.now ())
        in
        match fate with
        | `Lost _ -> stats.messages_lost <- stats.messages_lost + 1
        | `Deliver { Faults.extra; copies; retries } ->
          stats.send_retries <- stats.send_retries + retries;
          stats.messages_duplicated <- stats.messages_duplicated + copies;
          (match corrupted with
          | Some _ -> stats.sdc_injected <- stats.sdc_injected + 1
          | None -> ());
          let ch = channel t ~src:rank ~dst ~tag:packed_tag in
          let post () =
            t.inflight <- t.inflight + 1;
            if t.inflight > stats.max_inflight then
              stats.max_inflight <- t.inflight;
            let m =
              match corrupted with
              | None ->
                { payload = Array.copy payload; avail = avail +. extra;
                  mcorrupt = None }
              | Some (byte, sticky) ->
                { payload = damage (Array.copy payload) byte;
                  avail = avail +. extra;
                  mcorrupt = Some (payload, byte, sticky) }
            in
            post_msg ch m
          in
          post ();
          for _ = 1 to copies do post () done)
      staged
  end

(* Accumulate an arriving chunk into the first pending expectation from
   [src] with the same adjoint tag and count — FIFO per (source, tag),
   exactly the order the uncoalesced per-channel matching imposes. A
   packet carries every chunk its sender staged, so some chunks can
   outrun their expectation (the receiver has not reversed that exchange
   yet); those park as orphans until [adj_expect] claims them. *)
let adj_apply_chunk t ~rank ~src ~tag ~count data =
  let rs = t.ranks.(rank) in
  let ex =
    match List.assoc_opt src rs.exps with
    | None -> None
    | Some q ->
      List.find_opt
        (fun e -> (not e.ex_done) && e.ex_tag = tag && e.ex_count = count)
        !q
  in
  match ex with
  | None ->
    rs.orphans <-
      rs.orphans @ [ src, { ck_tag = tag; ck_count = count; ck_data = data } ]
  | Some ex -> adj_fulfill ex data

let adj_unpack t ~rank ~src (m : msg) =
  t.inflight <- t.inflight - 1;
  let pos = ref 0 in
  let geti () =
    let v = to_int m.payload.(!pos) in
    incr pos;
    v
  in
  let nchunks = geti () in
  for _ = 1 to nchunks do
    let tag = geti () in
    let count = geti () in
    let data =
      Array.init count (fun i -> to_float m.payload.(!pos + i))
    in
    pos := !pos + count;
    adj_apply_chunk t ~rank ~src ~tag ~count data
  done

(* Verify a packed message's checksum trailer; on mismatch, run the
   bounded retransmit ladder against the sender's retained staging copy
   (each round charged as backoff plus a fresh wire transfer), raising
   {!Corrupt_message} once the budget is spent. Returns the message to
   unpack — the original when intact, the recovered retransmit
   otherwise. *)
let check_packed t ~rank ~src (m : msg) =
  if verify_packed m then m
  else begin
    let stats = Sim.stats () in
    stats.sdc_detected <- stats.sdc_detected + 1;
    let p =
      match t.faults with Some fs -> fs.Faults.plan | None -> Faults.none
    in
    let cost = Sim.cost () in
    let cells = Array.length m.payload in
    let wire =
      Cost_model.message_cost cost ~cells ~remote:(remote t ~src ~dst:rank)
    in
    let backoff = ref p.Faults.backoff in
    let attempt = ref 0 in
    let fixed = ref None in
    while !fixed = None do
      if !attempt >= p.Faults.max_retries then
        raise
          (Corrupt_message
             { cm_src = src; cm_dst = rank; cm_at = Sim.now ();
               cm_attempts = !attempt });
      incr attempt;
      stats.msgs_retransmitted <- stats.msgs_retransmitted + 1;
      Sim.charge (!backoff +. wire);
      backoff := !backoff *. 2.0;
      let payload =
        match m.mcorrupt with
        | Some (clean, byte, true) ->
          (* sticky: the fault re-strikes every retransmit *)
          damage (Array.copy clean) byte
        | Some (clean, _, false) -> clean
        | None ->
          (* no pristine copy retained — corruption did not come from
             the injection gate, so retransmits cannot help *)
          raise
            (Corrupt_message
               { cm_src = src; cm_dst = rank; cm_at = Sim.now ();
                 cm_attempts = !attempt })
      in
      let m' = { m with payload; mcorrupt = None } in
      if verify_packed m' then fixed := Some m'
    done;
    stats.sdc_recovered <- stats.sdc_recovered + 1;
    Option.get !fixed
  end

(* Blocking receive of the next packed adjoint message from [src]. *)
let adj_recv_packed t ~rank ~src =
  fault_gate t ~rank;
  check_peer_alive t ~rank ~peer:src;
  let ch = channel t ~src ~dst:rank ~tag:packed_tag in
  let m =
    if not (Queue.is_empty ch.msgs) then begin
      let m = Queue.pop ch.msgs in
      (* the message is in flight until [avail]; jumping the clock there is
         what lets earlier accumulation compute overlap the transfer *)
      let now = Sim.now () in
      if m.avail > now then Sim.charge (m.avail -. now);
      m
    end
    else begin
      let label () =
        let lost =
          match t.faults with
          | Some fs -> Faults.lost_on fs ~src ~dst:rank ~tag:packed_tag
          | None -> 0
        in
        Printf.sprintf
          "rank %d: packed adjoint message from rank %d has not been sent%s"
          rank src
          (if lost > 0 then
             Printf.sprintf
               " — %d packed message(s) on this channel lost by fault \
                injection"
               lost
           else "")
      in
      let pr =
        {
          dst = None;
          count = 0;
          psrc = src;
          ptag = packed_tag;
          ev = Sim.event ~label ();
          matched = None;
          pfailed = None;
        }
      in
      Queue.add pr ch.recvs;
      Sim.event_wait pr.ev;
      (match pr.pfailed with
      | Some failed -> raise_failure t ~rank ~failed
      | None -> ());
      match pr.matched with
      | Some m -> m
      | None -> error "mpi adjoint: packed receive woke without a message"
    end
  in
  Sim.charge (0.1 *. (Sim.cost ()).mpi_latency);
  (* integrity check before any structural parse of the packet *)
  let m = check_packed t ~rank ~src m in
  adj_unpack t ~rank ~src m

(** Complete one expectation: flush our own staged chunks first (they may
    be exactly what the peer is blocked on), then drain packed messages
    from the expectation's source until it is fulfilled. *)
let adj_complete t ~rank ex =
  adj_flush_all t ~rank;
  while not ex.ex_done do
    adj_recv_packed t ~rank ~src:ex.ex_src
  done

(** Waitall-style completion of every registered expectation. *)
let adj_complete_all t ~rank =
  adj_flush_all t ~rank;
  let rs = t.ranks.(rank) in
  List.iter
    (fun (src, q) ->
      List.iter
        (fun ex ->
          while not ex.ex_done do
            adj_recv_packed t ~rank ~src
          done)
        !q)
    rs.exps;
  rs.exps <- []

(** True when [rank] has no staged chunks and no unfulfilled expectation —
    required of a valid checkpoint, like an empty request table. *)
let adj_idle t ~rank =
  let rs = t.ranks.(rank) in
  rs.staged = []
  && rs.orphans = []
  && List.for_all (fun (_, q) -> List.for_all (fun e -> e.ex_done) !q) rs.exps

(* deterministic exports for the communication audit *)
let export_staged t ~rank =
  List.map (fun (dst, chunks) -> dst, List.rev !chunks) t.ranks.(rank).staged

let export_unfulfilled t ~rank =
  List.concat_map
    (fun (_, q) -> List.filter (fun e -> not e.ex_done) !q)
    t.ranks.(rank).exps

let export_orphans t ~rank = t.ranks.(rank).orphans

(** Decode a packed payload back to its originating exchanges:
    (adjoint tag, cell count) per chunk, in staging order. *)
let decode_packed (m : msg) =
  let pos = ref 0 in
  let geti () =
    let v = to_int m.payload.(!pos) in
    incr pos;
    v
  in
  let nchunks = geti () in
  List.init nchunks (fun _ ->
      let tag = geti () in
      let count = geti () in
      pos := !pos + count;
      tag, count)

(** Wait for a request. For receives this blocks (in virtual time) until
    the message is available, then charges receiver-side overhead and
    returns the completed receive (so callers can instrument it). *)
let wait t ~rank ~req =
  fault_gate t ~rank;
  (* flush-before-block: staged adjoint chunks may be what the peer we
     are about to wait on is itself blocked on *)
  adj_flush_all t ~rank;
  let rs = t.ranks.(rank) in
  match Hashtbl.find_opt rs.reqs req with
  | None -> error "mpi.wait: unknown request %d on rank %d" req rank
  | Some RSend ->
    Hashtbl.remove rs.reqs req;
    None
  | Some (RRecv pr) ->
    Hashtbl.remove rs.reqs req;
    Sim.event_wait pr.ev;
    (match pr.pfailed with
    | Some failed -> raise_failure t ~rank ~failed
    | None -> ());
    Sim.charge (0.1 *. (Sim.cost ()).mpi_latency);
    Some pr

(* ---- collectives ----

   Ranks join collectives in global call order (the [coll_seq] counter);
   mismatched kinds or counts across ranks are detected. The last arrival
   combines contributions and releases everyone at
   [max(arrival) + tree cost]. *)

let coll_cost t ~count =
  fst (Cost_model.collective_cost (Sim.cost ()) ~nranks:t.nranks ~count)

let coll_kind_eq a b =
  match a, b with
  | Csum, Csum | Cmin, Cmin | Cmax, Cmax | Cbarrier, Cbarrier -> true
  | Cbcast r, Cbcast r' -> r = r'
  | (Csum | Cmin | Cmax | Cbarrier | Cbcast _), _ -> false

(* Join the current collective slot; returns it. *)
let coll_join t ~rank ~kind ~count ~contrib =
  fault_gate t ~rank;
  adj_flush_all t ~rank;
  check_any_alive t ~rank;
  let rs = t.ranks.(rank) in
  let seq = rs.coll_seq in
  rs.coll_seq <- seq + 1;
  let slot =
    match Hashtbl.find_opt t.colls seq with
    | Some s ->
      if not (coll_kind_eq s.kind kind) || s.count <> count then
        error
          "mpi: mismatched collective at sequence %d: rank %d called %s \
           (count %d) but the slot holds %s (count %d)"
          seq rank (coll_kind_name kind) count (coll_kind_name s.kind)
          s.count;
      s
    | None ->
      let init =
        match kind with
        | Csum | Cbarrier | Cbcast _ -> Array.make count 0.0
        | Cmin -> Array.make count infinity
        | Cmax -> Array.make count neg_infinity
      in
      let cwho = Array.make t.nranks false in
      let label () =
        let missing = ref [] in
        for r = t.nranks - 1 downto 0 do
          if not cwho.(r) then missing := r :: !missing
        done;
        Printf.sprintf "collective #%d %s (count %d): %d/%d ranks arrived, \
                        waiting for rank(s) [%s]"
          seq (coll_kind_name kind) count
          (t.nranks - List.length !missing)
          t.nranks
          (String.concat "; " (List.map string_of_int !missing))
      in
      let s =
        {
          kind;
          count;
          carrived = 0;
          cmax = 0.0;
          acc = init;
          cev = Sim.event ~label ();
          cwho;
          cfailed = None;
        }
      in
      Hashtbl.add t.colls seq s;
      s
  in
  slot.cwho.(rank) <- true;
  (match slot.kind, contrib with
  | Csum, Some c -> Array.iteri (fun i x -> slot.acc.(i) <- slot.acc.(i) +. x) c
  | Cmin, Some c ->
    Array.iteri (fun i x -> if x < slot.acc.(i) then slot.acc.(i) <- x) c
  | Cmax, Some c ->
    Array.iteri (fun i x -> if x > slot.acc.(i) then slot.acc.(i) <- x) c
  | Cbcast root, Some c -> if rank = root then Array.blit c 0 slot.acc 0 count
  | Cbarrier, None -> ()
  | _, None -> ()
  | Cbarrier, Some _ -> error "mpi: barrier with data");
  slot.carrived <- slot.carrived + 1;
  if Sim.now () > slot.cmax then slot.cmax <- Sim.now ();
  if slot.carrived = t.nranks then
    Sim.event_fill slot.cev ~time:(slot.cmax +. coll_cost t ~count);
  slot

let read_floats p count = Array.init count (fun i -> to_float (Memory.load p i))

let write_floats p (a : float array) =
  Array.iteri (fun i x -> Memory.store p i (VFloat x)) a

(** allreduce / reduce-to-all of [count] floats with operator [kind]. *)
let allreduce t ~rank ~kind ~send ~recv ~count =
  let stats = Sim.stats () in
  let _, stages = Cost_model.collective_cost (Sim.cost ()) ~nranks:t.nranks ~count in
  stats.messages <- stats.messages + stages;
  let contrib = read_floats send count in
  let slot = coll_join t ~rank ~kind ~count ~contrib:(Some contrib) in
  Sim.event_wait slot.cev;
  (match slot.cfailed with
  | Some failed -> raise_failure t ~rank ~failed
  | None -> ());
  write_floats recv slot.acc

let barrier t ~rank =
  let slot = coll_join t ~rank ~kind:Cbarrier ~count:0 ~contrib:None in
  Sim.event_wait slot.cev;
  match slot.cfailed with
  | Some failed -> raise_failure t ~rank ~failed
  | None -> ()

let bcast t ~rank ~root ~ptr ~count =
  let contrib = if rank = root then Some (read_floats ptr count) else None in
  let slot = coll_join t ~rank ~kind:(Cbcast root) ~count ~contrib in
  Sim.event_wait slot.cev;
  (match slot.cfailed with
  | Some failed -> raise_failure t ~rank ~failed
  | None -> ());
  if rank <> root then write_floats ptr slot.acc

(* ---- shadow requests (AD bookkeeping) ---- *)

let shadow_note t ~rank ~skind ~sptr ~scount ~speer ~stag =
  let rs = t.ranks.(rank) in
  let id = rs.next_shadow in
  rs.next_shadow <- id + 1;
  Hashtbl.add rs.shadows id
    {
      skind;
      sptr;
      scount;
      speer;
      stag;
      srev = None;
      stmp = None;
      sexp = None;
      sstaged = false;
    };
  id

let shadow_find t ~rank ~id =
  match Hashtbl.find_opt t.ranks.(rank).shadows id with
  | Some s -> s
  | None -> error "mpi: unknown shadow request %d on rank %d" id rank

(* ---- checkpoint support ----

   A checkpoint is only valid between MPI operations: no unwaited
   request, no collective the rank has joined but not completed. The
   counters and the shadow-request table are part of a rank's snapshot so
   a restored run hands out the same request/collective sequence numbers
   and can still run the reverse sweep over pre-checkpoint
   communication. *)

let unwaited_requests t ~rank = Hashtbl.length t.ranks.(rank).reqs

let open_collective t ~rank =
  Hashtbl.fold
    (fun seq slot acc ->
      if slot.cwho.(rank) && slot.carrived < t.nranks then Some seq else acc)
    t.colls None

let rank_counters t ~rank =
  let rs = t.ranks.(rank) in
  (rs.next_req, rs.next_shadow, rs.coll_seq)

(** Shadow requests of [rank], sorted by id (deterministic order for
    byte-stable snapshots). *)
let export_shadows t ~rank =
  Hashtbl.fold (fun id s acc -> (id, s) :: acc) t.ranks.(rank).shadows []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let restore_rank t ~rank ~next_req ~next_shadow ~coll_seq ~shadows =
  let rs = t.ranks.(rank) in
  Hashtbl.reset rs.reqs;
  rs.next_req <- next_req;
  rs.next_shadow <- next_shadow;
  rs.coll_seq <- coll_seq;
  Hashtbl.reset rs.shadows;
  List.iter (fun (id, s) -> Hashtbl.replace rs.shadows id s) shadows;
  (* a restored rank replays from a point with no adjoint staging in
     progress (checkpoints require [adj_idle]) *)
  rs.staged <- [];
  rs.exps <- [];
  rs.orphans <- []
