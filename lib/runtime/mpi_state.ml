(** Message-passing runtime: per-rank address spaces communicate through
    buffered point-to-point messages and tree-costed collectives, all in
    virtual time. Matching is FIFO per (src, dst, tag) channel, which —
    together with run-to-block scheduling — makes executions deterministic.

    Also hosts the adjoint-MPI bookkeeping the AD engine generates calls
    to: shadow requests record what a wait synchronized so its adjoint can
    spawn the dual operation (paper §IV-B, Fig 5). *)

open Value

type msg = {
  payload : Value.t array;
  avail : float;  (** virtual time at which the receiver can complete *)
}

type pending_recv = {
  dst : ptr;
  count : int;
  psrc : int;
  ptag : int;
  ev : Sim.event;
  mutable matched : msg option;
  mutable pfailed : int option;
      (** the sender rank died before matching this receive *)
}

type channel = {
  msgs : msg Queue.t;  (** sent, not yet matched *)
  recvs : pending_recv Queue.t;  (** posted, not yet matched *)
}

type coll_kind = Csum | Cmin | Cmax | Cbarrier | Cbcast of int  (** root *)

let coll_kind_name = function
  | Csum -> "allreduce(sum)"
  | Cmin -> "allreduce(min)"
  | Cmax -> "allreduce(max)"
  | Cbarrier -> "barrier"
  | Cbcast r -> Printf.sprintf "bcast(root %d)" r

type coll_slot = {
  kind : coll_kind;
  count : int;
  mutable carrived : int;
  mutable cmax : float;
  mutable acc : float array;
  cev : Sim.event;
  cwho : bool array;  (** which ranks have joined (for diagnosis) *)
  mutable cfailed : int option;
      (** a rank died before joining; the collective can never complete *)
}

(* A nonblocking request as seen by one rank. *)
type req =
  | RSend
  | RRecv of pending_recv

type shadow_kind = SIsend | SIrecv

(* Shadow request: what the AD-generated forward pass records so that the
   reverse of the corresponding wait knows which dual operation to spawn. *)
type shadow_req = {
  skind : shadow_kind;
  sptr : ptr;  (** shadow (derivative) buffer of the communicated data *)
  scount : int;
  speer : int;
  stag : int;
  mutable srev : int option;  (** request id of the spawned dual op *)
  mutable stmp : ptr option;  (** temp buffer receiving the adjoint (Isend) *)
}

type rank_state = {
  reqs : (int, req) Hashtbl.t;
  mutable next_req : int;
  shadows : (int, shadow_req) Hashtbl.t;
  mutable next_shadow : int;
  mutable coll_seq : int;
}

type t = {
  nranks : int;
  channels : (int * int * int, channel) Hashtbl.t;
  colls : (int, coll_slot) Hashtbl.t;  (** keyed by collective sequence no. *)
  ranks : rank_state array;
  sockets : int array;  (** socket of each rank *)
  faults : Faults.state option;
  dead : bool array;  (** ranks killed by fault injection *)
  mutable epoch : int;  (** failures observed so far (communicator epoch) *)
}

(* ---- ULFM-style failure notification ----

   A kill no longer silently parks its peers: the communicator records
   the death, wakes every receive and collective that can never complete,
   and the first surviving rank to touch the dead rank raises a
   structured {!Rank_failed}. The notice carries the deterministic
   agreement outcome (survivor set, agreement completion time) so a
   supervisor can rebuild the communicator and charge recovery to the
   virtual clock. *)

type failure_notice = {
  fn_failed : int;  (** the rank that died *)
  fn_observed_by : int;  (** surviving rank that raised the notice *)
  fn_observed_at : float;  (** virtual time of observation *)
  fn_agreed_at : float;
      (** observation + deterministic agreement (a barrier-shaped vote
          over the survivors) *)
  fn_survivors : int list;
  fn_epoch : int;
}

exception Rank_failed of failure_notice

let pp_failure ppf n =
  Format.fprintf ppf
    "rank failure: rank %d killed; observed by rank %d at t=%.6g; %d \
     survivor(s) [%s]; agreement reached at t=%.6g (epoch %d)"
    n.fn_failed n.fn_observed_by n.fn_observed_at
    (List.length n.fn_survivors)
    (String.concat "; " (List.map string_of_int n.fn_survivors))
    n.fn_agreed_at n.fn_epoch

let () =
  Printexc.register_printer (function
    | Rank_failed n -> Some (Format.asprintf "%a" pp_failure n)
    | _ -> None)

let create ~cost ~nranks ?faults () =
  {
    nranks;
    channels = Hashtbl.create 64;
    colls = Hashtbl.create 16;
    ranks =
      Array.init nranks (fun _ ->
          {
            reqs = Hashtbl.create 16;
            next_req = 0;
            shadows = Hashtbl.create 16;
            next_shadow = 0;
            coll_seq = 0;
          });
    sockets =
      Array.init nranks (fun r ->
          Cost_model.socket_of cost ~index:r ~width:nranks);
    faults = Option.map (Faults.make ~nranks) faults;
    dead = Array.make nranks false;
    epoch = 0;
  }

let survivors t =
  List.filter (fun r -> not t.dead.(r)) (List.init t.nranks Fun.id)

(** Raise the structured failure notice for [failed] on behalf of
    surviving [rank]. The deterministic agreement is modelled as a
    barrier-shaped vote over the survivors, charged before the raise so
    [fn_agreed_at] is consistent with the observer's clock. *)
let raise_failure t ~rank ~failed =
  let now = Sim.now () in
  let survivors = survivors t in
  let agree =
    Cost_model.barrier_cost (Sim.cost ()) ~width:(List.length survivors)
  in
  Sim.charge agree;
  let stats = Sim.stats () in
  stats.ranks_failed <- stats.ranks_failed + 1;
  raise
    (Rank_failed
       {
         fn_failed = failed;
         fn_observed_by = rank;
         fn_observed_at = now;
         fn_agreed_at = now +. agree;
         fn_survivors = survivors;
         fn_epoch = t.epoch;
       })

(* The dead rank will never send or join again: wake every unmatched
   receive on a channel it feeds and every collective it has not joined,
   so blocked survivors observe the failure instead of deadlocking. *)
let mark_rank_dead t ~failed =
  let now = Sim.now () in
  Hashtbl.iter
    (fun (src, _, _) ch ->
      if src = failed then
        Queue.iter
          (fun pr ->
            if pr.matched = None && pr.pfailed = None then begin
              pr.pfailed <- Some failed;
              Sim.event_fill pr.ev ~time:now
            end)
          ch.recvs)
    t.channels;
  Hashtbl.iter
    (fun _ slot ->
      if
        slot.carrived < t.nranks
        && (not slot.cwho.(failed))
        && slot.cfailed = None
      then begin
        slot.cfailed <- Some failed;
        Sim.event_fill slot.cev ~time:now
      end)
    t.colls

(* A survivor touching a dead peer observes the failure immediately —
   including a receive posted against an already-dead rank (no waiting
   out the retry deadline). *)
let check_peer_alive t ~rank ~peer =
  if peer >= 0 && peer < t.nranks && t.dead.(peer) then
    raise_failure t ~rank ~failed:peer

let check_any_alive t ~rank =
  match List.find_opt (fun r -> t.dead.(r)) (List.init t.nranks Fun.id) with
  | Some failed -> raise_failure t ~rank ~failed
  | None -> ()

(* Gate every MPI entry point: a stalled rank is charged a one-time
   delay; a killed rank notifies the communicator (waking peers that can
   never be matched) and parks forever — survivors then raise the
   structured failure at their next MPI call or wakeup. *)
let fault_gate t ~rank =
  match t.faults with
  | None -> ()
  | Some fs -> (
    match Faults.rank_gate fs ~rank ~now:(Sim.now ()) with
    | `Ok -> ()
    | `Stall d ->
      (Sim.stats ()).stalls_injected <- (Sim.stats ()).stalls_injected + 1;
      Sim.charge d
    | `Kill at ->
      if not t.dead.(rank) then begin
        t.dead.(rank) <- true;
        t.epoch <- t.epoch + 1;
        mark_rank_dead t ~failed:rank
      end;
      let ev =
        Sim.event
          ~label:(fun () ->
            Printf.sprintf "rank %d killed at t>=%.6g by fault plan" rank at)
          ()
      in
      Sim.event_wait ev)

let channel t ~src ~dst ~tag =
  match Hashtbl.find_opt t.channels (src, dst, tag) with
  | Some c -> c
  | None ->
    let c = { msgs = Queue.create (); recvs = Queue.create () } in
    Hashtbl.add t.channels (src, dst, tag) c;
    c

let fresh_req rs r =
  let id = rs.next_req in
  rs.next_req <- id + 1;
  Hashtbl.add rs.reqs id r;
  id

let remote t ~src ~dst = t.sockets.(src) <> t.sockets.(dst)

let read_cells p count =
  Array.init count (fun i -> Memory.load p i)

let write_cells p (a : Value.t array) =
  Array.iteri (fun i v -> Memory.store p i v) a

let deliver (pr : pending_recv) (m : msg) =
  if Array.length m.payload <> pr.count then
    error "mpi: message size %d does not match recv count %d"
      (Array.length m.payload) pr.count;
  write_cells pr.dst m.payload;
  pr.matched <- Some m;
  Sim.event_fill pr.ev ~time:m.avail

let post_msg ch m =
  if Queue.is_empty ch.recvs then Queue.add m ch.msgs
  else deliver (Queue.pop ch.recvs) m

(** Nonblocking send: buffered semantics — the payload is copied out
    eagerly, so the request completes locally. Returns a request id.

    Under fault injection, dropped transmission attempts are recovered by
    retransmission with exponential backoff (added to the message's
    in-flight latency); a message past its retry/deadline budget is lost
    and never enqueued — the loss is recorded for wait-for diagnosis. *)
let isend t ~rank ~ptr ~count ~dst ~tag =
  if dst < 0 || dst >= t.nranks then error "mpi.isend: bad destination %d" dst;
  fault_gate t ~rank;
  check_peer_alive t ~rank ~peer:dst;
  let cost = Sim.cost () in
  let stats = Sim.stats () in
  stats.messages <- stats.messages + 1;
  stats.message_cells <- stats.message_cells + count;
  (* Sender-side overhead: copying the payload out. *)
  Sim.charge
    ((cost.mpi_per_cell *. float_of_int count) +. (0.1 *. cost.mpi_latency));
  let payload = read_cells ptr count in
  let avail =
    Sim.now ()
    +. Cost_model.message_cost cost ~cells:count
         ~remote:(remote t ~src:rank ~dst)
  in
  let fate =
    match t.faults with
    | None -> `Deliver Faults.{ extra = 0.0; copies = 0; retries = 0 }
    | Some fs -> Faults.on_send fs ~src:rank ~dst ~tag ~now:(Sim.now ())
  in
  (match fate with
  | `Lost _ -> stats.messages_lost <- stats.messages_lost + 1
  | `Deliver { Faults.extra; copies; retries } ->
    stats.send_retries <- stats.send_retries + retries;
    stats.messages_duplicated <- stats.messages_duplicated + copies;
    let ch = channel t ~src:rank ~dst ~tag in
    post_msg ch { payload; avail = avail +. extra };
    for _ = 1 to copies do
      post_msg ch { payload = Array.copy payload; avail = avail +. extra }
    done);
  fresh_req t.ranks.(rank) RSend

(** Nonblocking receive. Returns a request id; data is visible after the
    matching [wait]. *)
let irecv t ~rank ~ptr ~count ~src ~tag =
  if src < 0 || src >= t.nranks then error "mpi.irecv: bad source %d" src;
  fault_gate t ~rank;
  check_peer_alive t ~rank ~peer:src;
  let cost = Sim.cost () in
  Sim.charge (0.1 *. cost.mpi_latency);
  let label () =
    let lost =
      match t.faults with
      | Some fs -> Faults.lost_on fs ~src ~dst:rank ~tag
      | None -> 0
    in
    Printf.sprintf
      "rank %d: recv from rank %d tag %d (%d cells) has no matching send%s"
      rank src tag count
      (if lost > 0 then
         Printf.sprintf " — %d message(s) on this channel lost by fault \
                          injection"
           lost
       else "")
  in
  let pr =
    {
      dst = ptr;
      count;
      psrc = src;
      ptag = tag;
      ev = Sim.event ~label ();
      matched = None;
      pfailed = None;
    }
  in
  let ch = channel t ~src ~dst:rank ~tag in
  if Queue.is_empty ch.msgs then Queue.add pr ch.recvs
  else deliver pr (Queue.pop ch.msgs);
  fresh_req t.ranks.(rank) (RRecv pr)

(** Wait for a request. For receives this blocks (in virtual time) until
    the message is available, then charges receiver-side overhead and
    returns the completed receive (so callers can instrument it). *)
let wait t ~rank ~req =
  fault_gate t ~rank;
  let rs = t.ranks.(rank) in
  match Hashtbl.find_opt rs.reqs req with
  | None -> error "mpi.wait: unknown request %d on rank %d" req rank
  | Some RSend ->
    Hashtbl.remove rs.reqs req;
    None
  | Some (RRecv pr) ->
    Hashtbl.remove rs.reqs req;
    Sim.event_wait pr.ev;
    (match pr.pfailed with
    | Some failed -> raise_failure t ~rank ~failed
    | None -> ());
    Sim.charge (0.1 *. (Sim.cost ()).mpi_latency);
    Some pr

(* ---- collectives ----

   Ranks join collectives in global call order (the [coll_seq] counter);
   mismatched kinds or counts across ranks are detected. The last arrival
   combines contributions and releases everyone at
   [max(arrival) + tree cost]. *)

let coll_cost t ~count =
  let cost = Sim.cost () in
  let stages = ceil (Cost_model.log2f (float_of_int t.nranks)) in
  let remote = t.nranks >= cost.numa_spread_threshold in
  2.0 *. stages *. Cost_model.message_cost cost ~cells:count ~remote

let coll_kind_eq a b =
  match a, b with
  | Csum, Csum | Cmin, Cmin | Cmax, Cmax | Cbarrier, Cbarrier -> true
  | Cbcast r, Cbcast r' -> r = r'
  | (Csum | Cmin | Cmax | Cbarrier | Cbcast _), _ -> false

(* Join the current collective slot; returns it. *)
let coll_join t ~rank ~kind ~count ~contrib =
  fault_gate t ~rank;
  check_any_alive t ~rank;
  let rs = t.ranks.(rank) in
  let seq = rs.coll_seq in
  rs.coll_seq <- seq + 1;
  let slot =
    match Hashtbl.find_opt t.colls seq with
    | Some s ->
      if not (coll_kind_eq s.kind kind) || s.count <> count then
        error
          "mpi: mismatched collective at sequence %d: rank %d called %s \
           (count %d) but the slot holds %s (count %d)"
          seq rank (coll_kind_name kind) count (coll_kind_name s.kind)
          s.count;
      s
    | None ->
      let init =
        match kind with
        | Csum | Cbarrier | Cbcast _ -> Array.make count 0.0
        | Cmin -> Array.make count infinity
        | Cmax -> Array.make count neg_infinity
      in
      let cwho = Array.make t.nranks false in
      let label () =
        let missing = ref [] in
        for r = t.nranks - 1 downto 0 do
          if not cwho.(r) then missing := r :: !missing
        done;
        Printf.sprintf "collective #%d %s (count %d): %d/%d ranks arrived, \
                        waiting for rank(s) [%s]"
          seq (coll_kind_name kind) count
          (t.nranks - List.length !missing)
          t.nranks
          (String.concat "; " (List.map string_of_int !missing))
      in
      let s =
        {
          kind;
          count;
          carrived = 0;
          cmax = 0.0;
          acc = init;
          cev = Sim.event ~label ();
          cwho;
          cfailed = None;
        }
      in
      Hashtbl.add t.colls seq s;
      s
  in
  slot.cwho.(rank) <- true;
  (match slot.kind, contrib with
  | Csum, Some c -> Array.iteri (fun i x -> slot.acc.(i) <- slot.acc.(i) +. x) c
  | Cmin, Some c ->
    Array.iteri (fun i x -> if x < slot.acc.(i) then slot.acc.(i) <- x) c
  | Cmax, Some c ->
    Array.iteri (fun i x -> if x > slot.acc.(i) then slot.acc.(i) <- x) c
  | Cbcast root, Some c -> if rank = root then Array.blit c 0 slot.acc 0 count
  | Cbarrier, None -> ()
  | _, None -> ()
  | Cbarrier, Some _ -> error "mpi: barrier with data");
  slot.carrived <- slot.carrived + 1;
  if Sim.now () > slot.cmax then slot.cmax <- Sim.now ();
  if slot.carrived = t.nranks then
    Sim.event_fill slot.cev ~time:(slot.cmax +. coll_cost t ~count);
  slot

let read_floats p count = Array.init count (fun i -> to_float (Memory.load p i))

let write_floats p (a : float array) =
  Array.iteri (fun i x -> Memory.store p i (VFloat x)) a

(** allreduce / reduce-to-all of [count] floats with operator [kind]. *)
let allreduce t ~rank ~kind ~send ~recv ~count =
  let stats = Sim.stats () in
  stats.messages <- stats.messages + (2 * int_of_float (ceil (Cost_model.log2f (float_of_int t.nranks))));
  let contrib = read_floats send count in
  let slot = coll_join t ~rank ~kind ~count ~contrib:(Some contrib) in
  Sim.event_wait slot.cev;
  (match slot.cfailed with
  | Some failed -> raise_failure t ~rank ~failed
  | None -> ());
  write_floats recv slot.acc

let barrier t ~rank =
  let slot = coll_join t ~rank ~kind:Cbarrier ~count:0 ~contrib:None in
  Sim.event_wait slot.cev;
  match slot.cfailed with
  | Some failed -> raise_failure t ~rank ~failed
  | None -> ()

let bcast t ~rank ~root ~ptr ~count =
  let contrib = if rank = root then Some (read_floats ptr count) else None in
  let slot = coll_join t ~rank ~kind:(Cbcast root) ~count ~contrib in
  Sim.event_wait slot.cev;
  (match slot.cfailed with
  | Some failed -> raise_failure t ~rank ~failed
  | None -> ());
  if rank <> root then write_floats ptr slot.acc

(* ---- shadow requests (AD bookkeeping) ---- *)

let shadow_note t ~rank ~skind ~sptr ~scount ~speer ~stag =
  let rs = t.ranks.(rank) in
  let id = rs.next_shadow in
  rs.next_shadow <- id + 1;
  Hashtbl.add rs.shadows id
    { skind; sptr; scount; speer; stag; srev = None; stmp = None };
  id

let shadow_find t ~rank ~id =
  match Hashtbl.find_opt t.ranks.(rank).shadows id with
  | Some s -> s
  | None -> error "mpi: unknown shadow request %d on rank %d" id rank

(* ---- checkpoint support ----

   A checkpoint is only valid between MPI operations: no unwaited
   request, no collective the rank has joined but not completed. The
   counters and the shadow-request table are part of a rank's snapshot so
   a restored run hands out the same request/collective sequence numbers
   and can still run the reverse sweep over pre-checkpoint
   communication. *)

let unwaited_requests t ~rank = Hashtbl.length t.ranks.(rank).reqs

let open_collective t ~rank =
  Hashtbl.fold
    (fun seq slot acc ->
      if slot.cwho.(rank) && slot.carrived < t.nranks then Some seq else acc)
    t.colls None

let rank_counters t ~rank =
  let rs = t.ranks.(rank) in
  (rs.next_req, rs.next_shadow, rs.coll_seq)

(** Shadow requests of [rank], sorted by id (deterministic order for
    byte-stable snapshots). *)
let export_shadows t ~rank =
  Hashtbl.fold (fun id s acc -> (id, s) :: acc) t.ranks.(rank).shadows []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let restore_rank t ~rank ~next_req ~next_shadow ~coll_seq ~shadows =
  let rs = t.ranks.(rank) in
  Hashtbl.reset rs.reqs;
  rs.next_req <- next_req;
  rs.next_shadow <- next_shadow;
  rs.coll_seq <- coll_seq;
  Hashtbl.reset rs.shadows;
  List.iter (fun (id, s) -> Hashtbl.replace rs.shadows id s) shadows
