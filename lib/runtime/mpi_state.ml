(** Message-passing runtime: per-rank address spaces communicate through
    buffered point-to-point messages and tree-costed collectives, all in
    virtual time. Matching is FIFO per (src, dst, tag) channel, which —
    together with run-to-block scheduling — makes executions deterministic.

    Also hosts the adjoint-MPI bookkeeping the AD engine generates calls
    to: shadow requests record what a wait synchronized so its adjoint can
    spawn the dual operation (paper §IV-B, Fig 5). *)

open Value

type msg = {
  payload : Value.t array;
  avail : float;  (** virtual time at which the receiver can complete *)
}

type pending_recv = {
  dst : ptr;
  count : int;
  psrc : int;
  ptag : int;
  ev : Sim.event;
  mutable matched : msg option;
}

type channel = {
  msgs : msg Queue.t;  (** sent, not yet matched *)
  recvs : pending_recv Queue.t;  (** posted, not yet matched *)
}

type coll_kind = Csum | Cmin | Cmax | Cbarrier | Cbcast of int  (** root *)

let coll_kind_name = function
  | Csum -> "allreduce(sum)"
  | Cmin -> "allreduce(min)"
  | Cmax -> "allreduce(max)"
  | Cbarrier -> "barrier"
  | Cbcast r -> Printf.sprintf "bcast(root %d)" r

type coll_slot = {
  kind : coll_kind;
  count : int;
  mutable carrived : int;
  mutable cmax : float;
  mutable acc : float array;
  cev : Sim.event;
  cwho : bool array;  (** which ranks have joined (for diagnosis) *)
}

(* A nonblocking request as seen by one rank. *)
type req =
  | RSend
  | RRecv of pending_recv

type shadow_kind = SIsend | SIrecv

(* Shadow request: what the AD-generated forward pass records so that the
   reverse of the corresponding wait knows which dual operation to spawn. *)
type shadow_req = {
  skind : shadow_kind;
  sptr : ptr;  (** shadow (derivative) buffer of the communicated data *)
  scount : int;
  speer : int;
  stag : int;
  mutable srev : int option;  (** request id of the spawned dual op *)
  mutable stmp : ptr option;  (** temp buffer receiving the adjoint (Isend) *)
}

type rank_state = {
  reqs : (int, req) Hashtbl.t;
  mutable next_req : int;
  shadows : (int, shadow_req) Hashtbl.t;
  mutable next_shadow : int;
  mutable coll_seq : int;
}

type t = {
  nranks : int;
  channels : (int * int * int, channel) Hashtbl.t;
  colls : (int, coll_slot) Hashtbl.t;  (** keyed by collective sequence no. *)
  ranks : rank_state array;
  sockets : int array;  (** socket of each rank *)
  faults : Faults.state option;
}

let create ~cost ~nranks ?faults () =
  {
    nranks;
    channels = Hashtbl.create 64;
    colls = Hashtbl.create 16;
    ranks =
      Array.init nranks (fun _ ->
          {
            reqs = Hashtbl.create 16;
            next_req = 0;
            shadows = Hashtbl.create 16;
            next_shadow = 0;
            coll_seq = 0;
          });
    sockets =
      Array.init nranks (fun r ->
          Cost_model.socket_of cost ~index:r ~width:nranks);
    faults = Option.map (Faults.make ~nranks) faults;
  }

(* Gate every MPI entry point: a stalled rank is charged a one-time
   delay; a killed rank parks forever on a labelled event, so the run
   terminates with a wait-for report naming it instead of hanging or
   corrupting gradients. *)
let fault_gate t ~rank =
  match t.faults with
  | None -> ()
  | Some fs -> (
    match Faults.rank_gate fs ~rank ~now:(Sim.now ()) with
    | `Ok -> ()
    | `Stall d ->
      (Sim.stats ()).stalls_injected <- (Sim.stats ()).stalls_injected + 1;
      Sim.charge d
    | `Kill at ->
      let ev =
        Sim.event
          ~label:(fun () ->
            Printf.sprintf "rank %d killed at t>=%.6g by fault plan" rank at)
          ()
      in
      Sim.event_wait ev)

let channel t ~src ~dst ~tag =
  match Hashtbl.find_opt t.channels (src, dst, tag) with
  | Some c -> c
  | None ->
    let c = { msgs = Queue.create (); recvs = Queue.create () } in
    Hashtbl.add t.channels (src, dst, tag) c;
    c

let fresh_req rs r =
  let id = rs.next_req in
  rs.next_req <- id + 1;
  Hashtbl.add rs.reqs id r;
  id

let remote t ~src ~dst = t.sockets.(src) <> t.sockets.(dst)

let read_cells p count =
  Array.init count (fun i -> Memory.load p i)

let write_cells p (a : Value.t array) =
  Array.iteri (fun i v -> Memory.store p i v) a

let deliver (pr : pending_recv) (m : msg) =
  if Array.length m.payload <> pr.count then
    error "mpi: message size %d does not match recv count %d"
      (Array.length m.payload) pr.count;
  write_cells pr.dst m.payload;
  pr.matched <- Some m;
  Sim.event_fill pr.ev ~time:m.avail

let post_msg ch m =
  if Queue.is_empty ch.recvs then Queue.add m ch.msgs
  else deliver (Queue.pop ch.recvs) m

(** Nonblocking send: buffered semantics — the payload is copied out
    eagerly, so the request completes locally. Returns a request id.

    Under fault injection, dropped transmission attempts are recovered by
    retransmission with exponential backoff (added to the message's
    in-flight latency); a message past its retry/deadline budget is lost
    and never enqueued — the loss is recorded for wait-for diagnosis. *)
let isend t ~rank ~ptr ~count ~dst ~tag =
  if dst < 0 || dst >= t.nranks then error "mpi.isend: bad destination %d" dst;
  fault_gate t ~rank;
  let cost = Sim.cost () in
  let stats = Sim.stats () in
  stats.messages <- stats.messages + 1;
  stats.message_cells <- stats.message_cells + count;
  (* Sender-side overhead: copying the payload out. *)
  Sim.charge
    ((cost.mpi_per_cell *. float_of_int count) +. (0.1 *. cost.mpi_latency));
  let payload = read_cells ptr count in
  let avail =
    Sim.now ()
    +. Cost_model.message_cost cost ~cells:count
         ~remote:(remote t ~src:rank ~dst)
  in
  let fate =
    match t.faults with
    | None -> `Deliver Faults.{ extra = 0.0; copies = 0; retries = 0 }
    | Some fs -> Faults.on_send fs ~src:rank ~dst ~tag ~now:(Sim.now ())
  in
  (match fate with
  | `Lost _ -> stats.messages_lost <- stats.messages_lost + 1
  | `Deliver { Faults.extra; copies; retries } ->
    stats.send_retries <- stats.send_retries + retries;
    stats.messages_duplicated <- stats.messages_duplicated + copies;
    let ch = channel t ~src:rank ~dst ~tag in
    post_msg ch { payload; avail = avail +. extra };
    for _ = 1 to copies do
      post_msg ch { payload = Array.copy payload; avail = avail +. extra }
    done);
  fresh_req t.ranks.(rank) RSend

(** Nonblocking receive. Returns a request id; data is visible after the
    matching [wait]. *)
let irecv t ~rank ~ptr ~count ~src ~tag =
  if src < 0 || src >= t.nranks then error "mpi.irecv: bad source %d" src;
  fault_gate t ~rank;
  let cost = Sim.cost () in
  Sim.charge (0.1 *. cost.mpi_latency);
  let label () =
    let lost =
      match t.faults with
      | Some fs -> Faults.lost_on fs ~src ~dst:rank ~tag
      | None -> 0
    in
    Printf.sprintf
      "rank %d: recv from rank %d tag %d (%d cells) has no matching send%s"
      rank src tag count
      (if lost > 0 then
         Printf.sprintf " — %d message(s) on this channel lost by fault \
                          injection"
           lost
       else "")
  in
  let pr =
    {
      dst = ptr;
      count;
      psrc = src;
      ptag = tag;
      ev = Sim.event ~label ();
      matched = None;
    }
  in
  let ch = channel t ~src ~dst:rank ~tag in
  if Queue.is_empty ch.msgs then Queue.add pr ch.recvs
  else deliver pr (Queue.pop ch.msgs);
  fresh_req t.ranks.(rank) (RRecv pr)

(** Wait for a request. For receives this blocks (in virtual time) until
    the message is available, then charges receiver-side overhead and
    returns the completed receive (so callers can instrument it). *)
let wait t ~rank ~req =
  fault_gate t ~rank;
  let rs = t.ranks.(rank) in
  match Hashtbl.find_opt rs.reqs req with
  | None -> error "mpi.wait: unknown request %d on rank %d" req rank
  | Some RSend ->
    Hashtbl.remove rs.reqs req;
    None
  | Some (RRecv pr) ->
    Hashtbl.remove rs.reqs req;
    Sim.event_wait pr.ev;
    Sim.charge (0.1 *. (Sim.cost ()).mpi_latency);
    Some pr

(* ---- collectives ----

   Ranks join collectives in global call order (the [coll_seq] counter);
   mismatched kinds or counts across ranks are detected. The last arrival
   combines contributions and releases everyone at
   [max(arrival) + tree cost]. *)

let coll_cost t ~count =
  let cost = Sim.cost () in
  let stages = ceil (Cost_model.log2f (float_of_int t.nranks)) in
  let remote = t.nranks >= cost.numa_spread_threshold in
  2.0 *. stages *. Cost_model.message_cost cost ~cells:count ~remote

let coll_kind_eq a b =
  match a, b with
  | Csum, Csum | Cmin, Cmin | Cmax, Cmax | Cbarrier, Cbarrier -> true
  | Cbcast r, Cbcast r' -> r = r'
  | (Csum | Cmin | Cmax | Cbarrier | Cbcast _), _ -> false

(* Join the current collective slot; returns it. *)
let coll_join t ~rank ~kind ~count ~contrib =
  fault_gate t ~rank;
  let rs = t.ranks.(rank) in
  let seq = rs.coll_seq in
  rs.coll_seq <- seq + 1;
  let slot =
    match Hashtbl.find_opt t.colls seq with
    | Some s ->
      if not (coll_kind_eq s.kind kind) || s.count <> count then
        error
          "mpi: mismatched collective at sequence %d: rank %d called %s \
           (count %d) but the slot holds %s (count %d)"
          seq rank (coll_kind_name kind) count (coll_kind_name s.kind)
          s.count;
      s
    | None ->
      let init =
        match kind with
        | Csum | Cbarrier | Cbcast _ -> Array.make count 0.0
        | Cmin -> Array.make count infinity
        | Cmax -> Array.make count neg_infinity
      in
      let cwho = Array.make t.nranks false in
      let label () =
        let missing = ref [] in
        for r = t.nranks - 1 downto 0 do
          if not cwho.(r) then missing := r :: !missing
        done;
        Printf.sprintf "collective #%d %s (count %d): %d/%d ranks arrived, \
                        waiting for rank(s) [%s]"
          seq (coll_kind_name kind) count
          (t.nranks - List.length !missing)
          t.nranks
          (String.concat "; " (List.map string_of_int !missing))
      in
      let s =
        {
          kind;
          count;
          carrived = 0;
          cmax = 0.0;
          acc = init;
          cev = Sim.event ~label ();
          cwho;
        }
      in
      Hashtbl.add t.colls seq s;
      s
  in
  slot.cwho.(rank) <- true;
  (match slot.kind, contrib with
  | Csum, Some c -> Array.iteri (fun i x -> slot.acc.(i) <- slot.acc.(i) +. x) c
  | Cmin, Some c ->
    Array.iteri (fun i x -> if x < slot.acc.(i) then slot.acc.(i) <- x) c
  | Cmax, Some c ->
    Array.iteri (fun i x -> if x > slot.acc.(i) then slot.acc.(i) <- x) c
  | Cbcast root, Some c -> if rank = root then Array.blit c 0 slot.acc 0 count
  | Cbarrier, None -> ()
  | _, None -> ()
  | Cbarrier, Some _ -> error "mpi: barrier with data");
  slot.carrived <- slot.carrived + 1;
  if Sim.now () > slot.cmax then slot.cmax <- Sim.now ();
  if slot.carrived = t.nranks then
    Sim.event_fill slot.cev ~time:(slot.cmax +. coll_cost t ~count);
  slot

let read_floats p count = Array.init count (fun i -> to_float (Memory.load p i))

let write_floats p (a : float array) =
  Array.iteri (fun i x -> Memory.store p i (VFloat x)) a

(** allreduce / reduce-to-all of [count] floats with operator [kind]. *)
let allreduce t ~rank ~kind ~send ~recv ~count =
  let stats = Sim.stats () in
  stats.messages <- stats.messages + (2 * int_of_float (ceil (Cost_model.log2f (float_of_int t.nranks))));
  let contrib = read_floats send count in
  let slot = coll_join t ~rank ~kind ~count ~contrib:(Some contrib) in
  Sim.event_wait slot.cev;
  write_floats recv slot.acc

let barrier t ~rank =
  let slot = coll_join t ~rank ~kind:Cbarrier ~count:0 ~contrib:None in
  Sim.event_wait slot.cev

let bcast t ~rank ~root ~ptr ~count =
  let contrib = if rank = root then Some (read_floats ptr count) else None in
  let slot = coll_join t ~rank ~kind:(Cbcast root) ~count ~contrib in
  Sim.event_wait slot.cev;
  if rank <> root then write_floats ptr slot.acc

(* ---- shadow requests (AD bookkeeping) ---- *)

let shadow_note t ~rank ~skind ~sptr ~scount ~speer ~stag =
  let rs = t.ranks.(rank) in
  let id = rs.next_shadow in
  rs.next_shadow <- id + 1;
  Hashtbl.add rs.shadows id
    { skind; sptr; scount; speer; stag; srev = None; stmp = None };
  id

let shadow_find t ~rank ~id =
  match Hashtbl.find_opt t.ranks.(rank).shadows id with
  | Some s -> s
  | None -> error "mpi: unknown shadow request %d on rank %d" id rank
