(** ParSan: a runtime sanitizer for the parallel AD runtime (§VI-A1).

    Three cooperating checkers, each individually toggleable:

    - {b RaceSan} logs per-thread shadow-memory accesses inside forked /
      workshared regions and flags any cell touched by two threads where at
      least one access is a non-atomic write. Detected races are
      cross-validated against the static thread-locality analysis
      ([Race.t]): the reverse engine marks every buffer whose base it
      classified thread-private with a [san.mark_private] intrinsic, and a
      dynamic race on a claimed-private cell is a {e miscompilation} — the
      static proof that justified dropping atomics was wrong. Plain races
      (no privacy claim) are ordinary findings.

    - {b MemSan} tracks per-cell initialization bitmaps (uninitialized
      reads, behind the pedantic [uninit] toggle since adjoint buffers
      legitimately read their zero initialization), and reports unfreed
      heap buffers with their allocation sites at region exit. Poison-on-
      free provenance itself lives in [Memory]/[Value] (alloc site, free
      site, stale accessor).

    - {b GradSan} does first-origin tracking of non-finite values: the
      first time a NaN enters the computation (observed at a load/store),
      or a NaN/Inf is {e produced} from all-finite operands, it records the
      instruction, operands, iteration ordinal, virtual time and rank. In
      [Strict] mode the run aborts with that provenance
      ([Nonfinite_strict]); in [Degrade] mode the value is quarantined
      (replaced by 0.0), counted in [Stats], and the run finishes with
      exit code 4 (recovered-but-degraded). Inf observed in memory is
      deliberately {e not} flagged: reduction identities (e.g. LULESH's
      [min] sentinel) store infinities legitimately.

    All state is keyed by (rank, buffer, cell) so one sanitizer instance
    serves every rank of an SPMD run; the deterministic simulator makes
    findings reproducible byte-for-byte. *)

type mode = Strict | Degrade

type fclass =
  | Race  (** cross-thread conflict, no static privacy claim *)
  | Miscompile  (** conflict on a cell the static analysis claimed private *)
  | Uninit  (** read of a never-stored cell (pedantic) *)
  | Leak  (** heap buffer never freed by region exit *)
  | Nonfinite  (** first origin of a NaN/Inf *)

type finding = {
  cls : fclass;
  rank : int;
  time : float;
  msg : string;
}

type access = Read | Write | Atomic

(* Per-cell access state for RaceSan. [w]/[r]/[a] hold the single thread
   id that wrote/read/atomically-updated the cell in the current
   (region, epoch), -1 for none, -2 for several distinct threads. *)
type cell = {
  mutable c_region : int;
  mutable c_epoch : int;
  mutable c_w : int;
  mutable c_r : int;
  mutable c_a : int;
  mutable c_flagged : bool;
}

type t = {
  race_on : bool;
  mem_on : bool;
  grad_on : bool;
  uninit_on : bool;  (** pedantic sub-checker of MemSan *)
  mode : mode;
  max_findings : int;  (** cap on retained finding records (counters keep counting) *)
  mutable findings_rev : finding list;
  mutable n_findings : int;
  mutable races : int;
  mutable miscompiles : int;
  mutable uninit_reads : int;
  mutable leaks : int;
  mutable nonfinite : int;
  mutable quarantined : int;
  cells : (int * int * int, cell) Hashtbl.t;  (** (rank, bid, cell) *)
  claimed : (int * int, unit) Hashtbl.t;  (** statically claimed private *)
  init_maps : (int * int, Bytes.t) Hashtbl.t;  (** per-cell init bits *)
  mutable regions : int;  (** fresh parallel-region id source *)
}

exception Nonfinite_strict of string
(** GradSan [Strict] abort, carrying first-origin provenance. *)

let create ?(race = true) ?(mem = true) ?(grad = true) ?(uninit = false)
    ?(mode = Strict) ?(max_findings = 200) () =
  {
    race_on = race;
    mem_on = mem;
    grad_on = grad;
    uninit_on = mem && uninit;
    mode;
    max_findings;
    findings_rev = [];
    n_findings = 0;
    races = 0;
    miscompiles = 0;
    uninit_reads = 0;
    leaks = 0;
    nonfinite = 0;
    quarantined = 0;
    cells = Hashtbl.create 1024;
    claimed = Hashtbl.create 64;
    init_maps = Hashtbl.create 64;
    regions = 0;
  }

let class_name = function
  | Race -> "race"
  | Miscompile -> "miscompilation"
  | Uninit -> "uninit-read"
  | Leak -> "leak"
  | Nonfinite -> "nonfinite"

let record t cls ~rank ~time fmt =
  Fmt.kstr
    (fun msg ->
      (match cls with
      | Race -> t.races <- t.races + 1
      | Miscompile -> t.miscompiles <- t.miscompiles + 1
      | Uninit -> t.uninit_reads <- t.uninit_reads + 1
      | Leak -> t.leaks <- t.leaks + 1
      | Nonfinite -> t.nonfinite <- t.nonfinite + 1);
      t.n_findings <- t.n_findings + 1;
      if t.n_findings <= t.max_findings then
        t.findings_rev <- { cls; rank; time; msg } :: t.findings_rev)
    fmt

(* ------------------------------------------------------------------ *)
(* RaceSan                                                             *)

(** Allocate a fresh id for a dynamic parallel region (one [Fork]
    execution). Cell state from other regions is invalidated lazily. *)
let fresh_region t =
  t.regions <- t.regions + 1;
  t.regions

(** The reverse engine's [san.mark_private] marker: the static analysis
    claims every access to [buf] is thread-private, so its accumulation
    skips atomics. *)
let mark_private t ~rank ~(buf : Value.buffer) =
  Hashtbl.replace t.claimed (rank, buf.bid) ()

let is_claimed t ~rank ~(buf : Value.buffer) =
  Hashtbl.mem t.claimed (rank, buf.bid)

let merge_tid slot tid = if slot = -1 || slot = tid then tid else -2

(* A conflict exists when a write is involved and two distinct threads
   touched the cell in the same (region, epoch) — epochs advance at
   barriers, which order accesses and reset the window. *)
let conflicting c =
  c.c_w = -2
  || (c.c_w >= 0
     && ((c.c_r >= 0 && c.c_r <> c.c_w)
        || c.c_r = -2
        || (c.c_a >= 0 && c.c_a <> c.c_w)
        || c.c_a = -2))

let on_access t ~rank ~tid ~region ~epoch ~(buf : Value.buffer) ~cell ~kind
    ~fn ~time =
  if t.race_on then begin
    let key = (rank, buf.bid, cell) in
    let c =
      match Hashtbl.find_opt t.cells key with
      | Some c -> c
      | None ->
        let c =
          {
            c_region = region;
            c_epoch = epoch;
            c_w = -1;
            c_r = -1;
            c_a = -1;
            c_flagged = false;
          }
        in
        Hashtbl.replace t.cells key c;
        c
    in
    if c.c_region <> region || c.c_epoch <> epoch then begin
      c.c_region <- region;
      c.c_epoch <- epoch;
      c.c_w <- -1;
      c.c_r <- -1;
      c.c_a <- -1;
      c.c_flagged <- false
    end;
    (match kind with
    | Read -> c.c_r <- merge_tid c.c_r tid
    | Write -> c.c_w <- merge_tid c.c_w tid
    | Atomic -> c.c_a <- merge_tid c.c_a tid);
    if (not c.c_flagged) && conflicting c then begin
      c.c_flagged <- true;
      if is_claimed t ~rank ~buf then
        record t Miscompile ~rank ~time
          "static analysis claimed buffer %d (alloc at %s) thread-private, \
           but cell [%d] is touched by multiple threads with a non-atomic \
           write (fn %s, thread %d, region %d)"
          buf.bid buf.asite cell fn tid region
      else
        record t Race ~rank ~time
          "data race: buffer %d (alloc at %s) cell [%d] touched by multiple \
           threads with a non-atomic write (fn %s, thread %d, region %d)"
          buf.bid buf.asite cell fn tid region
    end
  end

(* ------------------------------------------------------------------ *)
(* MemSan                                                              *)

let on_alloc t ~rank ~(buf : Value.buffer) =
  if t.mem_on then
    Hashtbl.replace t.init_maps (rank, buf.bid)
      (Bytes.make (Value.cells_len buf.data) '\000')

let on_store_init t ~rank ~(buf : Value.buffer) ~cell =
  if t.mem_on then
    match Hashtbl.find_opt t.init_maps (rank, buf.bid) with
    | Some bm when cell >= 0 && cell < Bytes.length bm ->
      Bytes.unsafe_set bm cell '\001'
    | _ -> ()

(* Buffers absent from [init_maps] (harness inputs, checkpoint-restored
   state) are considered fully initialized. *)
let on_load_init t ~rank ~(buf : Value.buffer) ~cell ~fn ~time =
  if t.uninit_on then
    match Hashtbl.find_opt t.init_maps (rank, buf.bid) with
    | Some bm
      when cell >= 0
           && cell < Bytes.length bm
           && Bytes.unsafe_get bm cell = '\000' ->
      Bytes.unsafe_set bm cell '\001' (* report each cell once *);
      record t Uninit ~rank ~time
        "read of uninitialized cell: buffer %d (alloc at %s) cell [%d] in %s"
        buf.bid buf.asite cell fn
    | _ -> ()

(** Leak check at region (rank) exit: heap buffers allocated by program
    [Alloc] instructions that were never freed. Harness- and checkpoint-
    owned buffers are exempt (the harness reads results from them after
    the run); GC buffers belong to the collector. *)
let report_leaks t ~rank ~(mem : Memory.t) =
  if t.mem_on then
    Hashtbl.fold (fun _ b acc -> b :: acc) mem.Memory.all []
    |> List.sort (fun (a : Value.buffer) b -> compare a.bid b.bid)
    |> List.iter (fun (b : Value.buffer) ->
           if
             b.Value.kind = Parad_ir.Instr.Heap
             && (not b.freed)
             && b.asite <> "harness"
             && b.asite <> "checkpoint"
           then
             record t Leak ~rank ~time:0.0
               "leaked buffer %d: %d cells allocated at %s, never freed"
               b.bid (Value.cells_len b.data) b.asite)

(* ------------------------------------------------------------------ *)
(* GradSan                                                             *)

(** First-origin report of a non-finite value. Returns the value to
    continue with: in [Degrade] mode the poison is quarantined to 0.0;
    [Strict] mode aborts with the provenance. *)
let nonfinite t ~rank ~time fmt =
  Fmt.kstr
    (fun msg ->
      record t Nonfinite ~rank ~time "%s" msg;
      (Sim.stats ()).Stats.nonfinite_found <-
        (Sim.stats ()).Stats.nonfinite_found + 1;
      match t.mode with
      | Strict ->
        raise (Nonfinite_strict (Fmt.str "rank %d t=%.0f: %s" rank time msg))
      | Degrade ->
        t.quarantined <- t.quarantined + 1;
        (Sim.stats ()).Stats.nonfinite_quarantined <-
          (Sim.stats ()).Stats.nonfinite_quarantined + 1;
        0.0)
    fmt

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)

let findings t = List.rev t.findings_rev
let clean t = t.n_findings = 0 && t.quarantined = 0

(** Exit-code protocol (extends PR 1/PR 2): 5 = miscompilation (a static
    thread-locality claim refuted at runtime), 4 = degraded (non-finite
    values quarantined), 1 = other findings, 0 = clean. *)
let exit_code t =
  if t.miscompiles > 0 then 5
  else if t.quarantined > 0 then 4
  else if t.n_findings > 0 then 1
  else 0

let pp_finding ppf f =
  Fmt.pf ppf "[%s] rank %d t=%.0f: %s" (class_name f.cls) f.rank f.time f.msg

let pp_report ppf t =
  Fmt.pf ppf "sanitizer: %d finding%s" t.n_findings
    (if t.n_findings = 1 then "" else "s");
  Fmt.pf ppf
    " (races=%d miscompilations=%d uninit=%d leaks=%d nonfinite=%d \
     quarantined=%d)"
    t.races t.miscompiles t.uninit_reads t.leaks t.nonfinite t.quarantined;
  List.iter (fun f -> Fmt.pf ppf "@.  %a" pp_finding f) (findings t);
  if t.n_findings > t.max_findings then
    Fmt.pf ppf "@.  ... %d further finding%s suppressed"
      (t.n_findings - t.max_findings)
      (if t.n_findings - t.max_findings = 1 then "" else "s")
