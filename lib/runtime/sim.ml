(** Deterministic virtual-time execution engine.

    Parallelism (fork/join teams, barriers, tasks, and the events behind
    message passing) is simulated with cooperative strands implemented on
    OCaml effect handlers. Each strand carries a virtual clock; running
    code charges costs to the current strand's clock, and synchronization
    points combine clocks (join and barrier take maxima, events carry
    ready-times). Scheduling is run-to-block with a FIFO ready queue, so
    executions are fully deterministic; for programs whose observable
    behaviour does not depend on interleaving (the only programs with
    defined semantics, cf. §VI-D of the paper) the virtual times are
    exactly those of a time-ordered interleaving.

    The engine supports nested teams: the SPMD harness creates one strand
    per MPI rank, and an OpenMP [Fork] inside a rank creates a sub-team. *)

open Effect
open Effect.Deep

(** One parked strand in a wait-for report: who is blocked, at what
    virtual time, and a human-readable description of the operation it is
    waiting on (receive peer/tag, collective arrivals, barrier, task). *)
type blocked = {
  b_sid : int;
  b_tid : int;  (** index within the creating team (rank id for SPMD) *)
  b_width : int;
  b_clock : float;
  b_desc : string;
}

(** Structured replacement for the old [Deadlock of string]: the full
    wait-for state at the moment the scheduler ran out of runnable
    strands. Deterministic (strand ids, clocks and descriptions are all
    functions of the virtual-time execution), so the rendered report is
    byte-identical across reruns of the same seed. *)
type diagnosis = {
  d_live : int;  (** strands created and not finished *)
  d_blocked : blocked list;  (** parked strands, sorted by strand id *)
  d_note : string;
}

exception Deadlock of diagnosis

(** Per-run execution deadline (ISSUE 7): [dl_cycles] bounds the virtual
    clock of any strand — exceeding it cancels the run with
    {!Deadline_exceeded} at the next cost charge — and [dl_wall_ms]
    arms a wall-clock watchdog (checked every few thousand charges and
    at every context switch) that catches runs whose *host* time
    explodes even though virtual time advances slowly. Both checks leave
    the engine cleanly unwound: the exception propagates through
    {!run}'s cleanup, so a long-lived caller (the gradient service) can
    classify the abort and keep serving. *)
type deadline = {
  dl_cycles : float option;  (** virtual-time budget, in cycles *)
  dl_wall_ms : float option;  (** wall-clock budget, in milliseconds *)
}

let no_deadline = { dl_cycles = None; dl_wall_ms = None }

type deadline_hit = {
  de_at : float;  (** virtual clock when the deadline tripped *)
  de_limit : float;  (** the budget: cycles, or the wall budget in ms *)
  de_wall : bool;  (** true = the wall-clock watchdog fired *)
}

exception Deadline_exceeded of deadline_hit

let pp_deadline_hit ppf d =
  if d.de_wall then
    Format.fprintf ppf
      "deadline exceeded: wall-clock watchdog fired after %gms (virtual \
       t=%.6g)"
      d.de_limit d.de_at
  else
    Format.fprintf ppf
      "deadline exceeded: virtual clock %.6g passed the %.6g-cycle budget"
      d.de_at d.de_limit

let () =
  Printexc.register_printer (function
    | Deadline_exceeded d -> Some (Format.asprintf "%a" pp_deadline_hit d)
    | _ -> None)

let pp_blocked ppf b =
  Format.fprintf ppf "strand %d (tid %d/%d, t=%.6g): %s" b.b_sid b.b_tid
    b.b_width b.b_clock b.b_desc

let pp_diagnosis ppf d =
  Format.fprintf ppf "deadlock: %s; %d live strand(s), %d parked:" d.d_note
    d.d_live
    (List.length d.d_blocked);
  List.iter (fun b -> Format.fprintf ppf "@\n  %a" pp_blocked b) d.d_blocked

let diagnosis_to_string d = Format.asprintf "%a" pp_diagnosis d

let () =
  Printexc.register_printer (function
    | Deadlock d -> Some (diagnosis_to_string d)
    | _ -> None)

type strand = {
  sid : int;
  mutable clock : float;
  tid : int;  (** index within the creating team (or rank id, or 0) *)
  width : int;  (** size of the creating team *)
  socket : int;
  team : team option;  (** team this strand belongs to, for barriers *)
}

and team = {
  twidth : int;
  mutable remaining : int;
  mutable max_finish : float;
  (* barrier rendezvous state *)
  mutable arrived : int;
  mutable bmax : float;
  mutable bwaiters : parked list;
}

and parked = P : strand * (unit, unit) continuation -> parked

type task = {
  mutable finished : float option;
  mutable twaiters : parked list;
}

type event = {
  mutable ready : float option;
  mutable ewaiters : parked list;
  mutable elabel : (unit -> string) option;
      (** wait-for description, rendered lazily at diagnosis time *)
}

type engine = {
  cost : Cost_model.t;
  stats : Stats.t;
  ready_q : (strand * (unit -> unit)) Queue.t;
  mutable current : strand;
  mutable nsid : int;
  mutable live : int;  (** strands created and not yet finished *)
  mutable makespan : float;
  parked_on : (int, strand * (unit -> string)) Hashtbl.t;
      (** sid -> (strand, blocked-on description) for every parked strand *)
  (* deadline enforcement; [guarded] caches "any deadline armed" so the
     per-charge hot path stays one branch on fault-free runs *)
  guarded : bool;
  vdeadline : float option;
  wall_stop : float option;  (** absolute [Unix.gettimeofday] cutoff *)
  wall_ms : float;  (** the configured wall budget, for the report *)
  mutable wall_tick : int;
}

type _ Effect.t +=
  | E_fork : int * (int -> int) * (tid:int -> width:int -> unit) -> unit Effect.t
      (** width, socket-of-tid, body *)
  | E_spawn : float * (unit -> unit) -> task Effect.t  (** start clock, body *)
  | E_sync : task -> unit Effect.t
  | E_barrier : unit Effect.t
  | E_wait : event -> unit Effect.t

let engine_ref : engine option ref = ref None

let eng () =
  match !engine_ref with
  | Some e -> e
  | None -> invalid_arg "Sim: no engine running (use Sim.run)"

let cost () = (eng ()).cost
let stats () = (eng ()).stats
let self () = (eng ()).current
let now () = (self ()).clock

(* Wall-clock probes cost a syscall; amortize them over charges. The
   mask trades detection latency for overhead — 4096 charges is well
   under a millisecond of host time. *)
let wall_mask = 4095

let check_deadline e clock =
  (match e.vdeadline with
  | Some d when clock > d ->
    raise (Deadline_exceeded { de_at = clock; de_limit = d; de_wall = false })
  | _ -> ());
  match e.wall_stop with
  | Some stop ->
    e.wall_tick <- e.wall_tick + 1;
    if e.wall_tick land wall_mask = 0 && Unix.gettimeofday () > stop then
      raise
        (Deadline_exceeded
           { de_at = clock; de_limit = e.wall_ms; de_wall = true })
  | None -> ()

let charge c =
  let e = eng () in
  let st = e.current in
  st.clock <- st.clock +. c;
  if e.guarded then check_deadline e st.clock
let set_clock t = (self ()).clock <- t
let socket () = (self ()).socket

(** The armed deadline of the running engine, as
    [(virtual_budget, wall_cutoff, wall_ms)] — read by the compiled
    execution engine so its native charge path enforces the same limits
    the interpreter's {!charge} does. *)
let deadline_view () =
  let e = eng () in
  (e.vdeadline, e.wall_stop, e.wall_ms)

let enqueue e st thunk = Queue.add (st, thunk) e.ready_q

let resume e st k =
  Hashtbl.remove e.parked_on st.sid;
  enqueue e st (fun () -> continue k ())

let park e st desc = Hashtbl.replace e.parked_on st.sid (st, desc)

let finish_strand e clock =
  e.live <- e.live - 1;
  if clock > e.makespan then e.makespan <- clock

(* Run [f] as the body of [st]; [on_finish] is invoked (on the scheduler
   stack) with the strand's final clock. The handler never resumes a
   continuation inline: parked strands go through the ready queue, keeping
   the scheduler stack depth constant. *)
let rec run_strand e st f (on_finish : float -> unit) =
  match_with f ()
    {
      retc =
        (fun () ->
          finish_strand e st.clock;
          on_finish st.clock);
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | E_fork (width, socket_of, body) ->
            Some
              (fun (k : (a, _) continuation) ->
                e.stats.forks <- e.stats.forks + 1;
                let t =
                  {
                    twidth = width;
                    remaining = width;
                    max_finish = 0.0;
                    arrived = 0;
                    bmax = 0.0;
                    bwaiters = [];
                  }
                in
                let start =
                  st.clock +. Cost_model.fork_cost e.cost ~width
                in
                let parent = st in
                for tid = 0 to width - 1 do
                  let child =
                    {
                      sid =
                        (e.nsid <- e.nsid + 1;
                         e.nsid);
                      clock = start;
                      tid;
                      width;
                      socket = socket_of tid;
                      team = Some t;
                    }
                  in
                  e.live <- e.live + 1;
                  enqueue e child (fun () ->
                      run_strand e child
                        (fun () -> body ~tid ~width)
                        (fun clock ->
                          if clock > t.max_finish then t.max_finish <- clock;
                          t.remaining <- t.remaining - 1;
                          if t.remaining = 0 then begin
                            parent.clock <- t.max_finish +. e.cost.join;
                            resume e parent k
                          end))
                done)
          | E_spawn (start, body) ->
            Some
              (fun (k : (a, _) continuation) ->
                e.stats.tasks <- e.stats.tasks + 1;
                let task = { finished = None; twaiters = [] } in
                let parent = st in
                let child =
                  {
                    sid =
                      (e.nsid <- e.nsid + 1;
                       e.nsid);
                    clock = start;
                    tid = st.tid;
                    width = st.width;
                    socket = st.socket;
                    team = st.team;
                  }
                in
                e.live <- e.live + 1;
                enqueue e child (fun () ->
                    run_strand e child body (fun clock ->
                        task.finished <- Some clock;
                        List.iter
                          (fun (P (w, wk)) ->
                            w.clock <-
                              Float.max w.clock clock +. e.cost.task_sync;
                            resume e w wk)
                          task.twaiters;
                        task.twaiters <- []));
                enqueue e parent (fun () -> continue k task))
          | E_sync task ->
            Some
              (fun (k : (a, _) continuation) ->
                match task.finished with
                | Some clock ->
                  st.clock <- Float.max st.clock clock +. e.cost.task_sync;
                  resume e st k
                | None ->
                  park e st (fun () -> "sync on an unfinished task");
                  task.twaiters <- P (st, k) :: task.twaiters)
          | E_barrier ->
            Some
              (fun (k : (a, _) continuation) ->
                e.stats.barriers <- e.stats.barriers + 1;
                match st.team with
                | None ->
                  (* A barrier with no team (width 1) is a no-op. *)
                  resume e st k
                | Some t ->
                  t.arrived <- t.arrived + 1;
                  if st.clock > t.bmax then t.bmax <- st.clock;
                  if t.arrived < t.twidth then begin
                    park e st (fun () ->
                        Printf.sprintf "team barrier (%d/%d arrived)"
                          t.arrived t.twidth);
                    t.bwaiters <- P (st, k) :: t.bwaiters
                  end
                  else begin
                    let release =
                      t.bmax +. Cost_model.barrier_cost e.cost ~width:t.twidth
                    in
                    st.clock <- release;
                    let waiters = t.bwaiters in
                    t.bwaiters <- [];
                    t.arrived <- 0;
                    t.bmax <- 0.0;
                    List.iter
                      (fun (P (w, wk)) ->
                        w.clock <- release;
                        resume e w wk)
                      waiters;
                    resume e st k
                  end)
          | E_wait ev ->
            Some
              (fun (k : (a, _) continuation) ->
                match ev.ready with
                | Some t ->
                  st.clock <- Float.max st.clock t;
                  resume e st k
                | None ->
                  park e st (fun () ->
                      match ev.elabel with
                      | Some f -> f ()
                      | None -> "an unfilled event");
                  ev.ewaiters <- P (st, k) :: ev.ewaiters)
          | _ -> None);
    }

(* ---- public API used from simulated code ---- *)

let fork ?socket_of ~width body =
  let e = eng () in
  let socket_of =
    match socket_of with
    | Some f -> f
    | None -> fun tid -> Cost_model.socket_of e.cost ~index:tid ~width
  in
  if width = 1 then begin
    (* Degenerate team: run inline, but still pay the overheads. *)
    charge (Cost_model.fork_cost e.cost ~width:1);
    body ~tid:0 ~width:1;
    charge e.cost.join
  end
  else perform (E_fork (width, socket_of, body))

let spawn body =
  let e = eng () in
  let st = self () in
  st.clock <- st.clock +. e.cost.task_spawn;
  perform (E_spawn (st.clock, body))

let sync task = perform (E_sync task)
let barrier () = perform E_barrier

let event ?label () = { ready = None; ewaiters = []; elabel = label }

(** Attach or replace the wait-for description of an event. The closure is
    evaluated only if the event ends up in a deadlock diagnosis. *)
let event_describe ev label = ev.elabel <- Some label

let event_fill ev ~time =
  let e = eng () in
  (match ev.ready with
  | Some _ -> invalid_arg "Sim.event_fill: already filled"
  | None -> ());
  ev.ready <- Some time;
  List.iter
    (fun (P (w, wk)) ->
      w.clock <- Float.max w.clock time;
      resume e w wk)
    ev.ewaiters;
  ev.ewaiters <- []

let event_wait ev = perform (E_wait ev)

(** Nonblocking readiness test: the fill time if the event has fired,
    [None] otherwise. Never parks the strand, so a reverse sweep can
    overlap in-flight adjoint messages with accumulation compute and only
    commit to [event_wait] when it genuinely runs out of local work. *)
let event_poll ev = ev.ready

(** Run [main] under a fresh engine. Returns the result, the makespan
    (largest strand finish time, i.e. the modeled runtime), and the
    engine's stats. *)
let run ?(cost = Cost_model.default) ?(stats = Stats.create ())
    ?(deadline = no_deadline) main =
  (match !engine_ref with
  | Some _ -> invalid_arg "Sim.run: engine already running (no nesting)"
  | None -> ());
  let root =
    { sid = 0; clock = 0.0; tid = 0; width = 1; socket = 0; team = None }
  in
  let vdeadline = deadline.dl_cycles in
  let wall_ms = Option.value deadline.dl_wall_ms ~default:0.0 in
  let wall_stop =
    Option.map
      (fun ms -> Unix.gettimeofday () +. (ms /. 1000.))
      deadline.dl_wall_ms
  in
  let e =
    {
      cost;
      stats;
      ready_q = Queue.create ();
      current = root;
      nsid = 0;
      live = 1;
      makespan = 0.0;
      parked_on = Hashtbl.create 16;
      guarded = vdeadline <> None || wall_stop <> None;
      vdeadline;
      wall_stop;
      wall_ms;
      wall_tick = 0;
    }
  in
  engine_ref := Some e;
  let result = ref None in
  let cleanup () = engine_ref := None in
  (try
     run_strand e root
       (fun () -> result := Some (main ()))
       (fun _ -> ());
     while not (Queue.is_empty e.ready_q) do
       let st, thunk = Queue.pop e.ready_q in
       e.current <- st;
       e.stats.context_switches <- e.stats.context_switches + 1;
       if e.guarded then check_deadline e st.clock;
       thunk ()
     done
   with ex ->
     cleanup ();
     raise ex);
  cleanup ();
  let diagnose note =
    let blocked =
      Hashtbl.fold
        (fun _ (st, desc) acc ->
          {
            b_sid = st.sid;
            b_tid = st.tid;
            b_width = st.width;
            b_clock = st.clock;
            b_desc = desc ();
          }
          :: acc)
        e.parked_on []
      |> List.sort (fun a b -> compare a.b_sid b.b_sid)
    in
    { d_live = e.live; d_blocked = blocked; d_note = note }
  in
  if e.live > 0 then
    raise
      (Deadlock
         (diagnose
            (Printf.sprintf "%d strand(s) blocked with empty ready queue"
               e.live)));
  match !result with
  | Some r -> r, e.makespan, e.stats
  | None -> raise (Deadlock (diagnose "main strand never completed"))
