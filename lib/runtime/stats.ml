(** Execution counters, shared by all strands of a run. *)

type t = {
  mutable instrs : int;
  mutable flops : int;
  mutable loads : int;
  mutable stores : int;
  mutable atomics : int;
  mutable allocs : int;
  mutable alloc_cells : int;
  mutable frees : int;
  mutable calls : int;
  mutable forks : int;
  mutable barriers : int;
  mutable tasks : int;
  mutable messages : int;
  mutable message_cells : int;
  (* adjoint-communication coalescing (zero when coalescing is off or the
     run has no adjoint exchanges) *)
  mutable msgs_sent : int;  (** packed adjoint messages actually sent *)
  mutable cells_sent : int;  (** cells in those packed messages, headers incl. *)
  mutable max_inflight : int;  (** peak packed messages in flight at once *)
  mutable cache_stores : int;
  mutable cache_loads : int;
  mutable cache_cells : int;  (** distinct cache cells ever written *)
  mutable cache_peak : int;  (** peak live cache footprint, in cells *)
  mutable tape_entries : int;
  mutable context_switches : int;
  (* fault injection (all zero on fault-free runs) *)
  mutable send_retries : int;  (** retransmissions after dropped attempts *)
  mutable messages_lost : int;  (** sends abandoned past retries/deadline *)
  mutable messages_duplicated : int;
  mutable stalls_injected : int;
  (* checkpoint/recovery (all zero on fault-free, checkpoint-free runs) *)
  mutable checkpoints_taken : int;
  mutable checkpoints_restored : int;
  mutable ranks_failed : int;  (** structured rank-failure notifications *)
  mutable restarts : int;  (** supervised restarts after a failure *)
  (* sanitizer (all zero on unsanitized runs) *)
  mutable nonfinite_found : int;  (** first-origin NaN/Inf detections *)
  mutable nonfinite_quarantined : int;  (** values zeroed in degrade mode *)
}

let create () =
  {
    instrs = 0;
    flops = 0;
    loads = 0;
    stores = 0;
    atomics = 0;
    allocs = 0;
    alloc_cells = 0;
    frees = 0;
    calls = 0;
    forks = 0;
    barriers = 0;
    tasks = 0;
    messages = 0;
    message_cells = 0;
    msgs_sent = 0;
    cells_sent = 0;
    max_inflight = 0;
    cache_stores = 0;
    cache_loads = 0;
    cache_cells = 0;
    cache_peak = 0;
    tape_entries = 0;
    context_switches = 0;
    send_retries = 0;
    messages_lost = 0;
    messages_duplicated = 0;
    stalls_injected = 0;
    checkpoints_taken = 0;
    checkpoints_restored = 0;
    ranks_failed = 0;
    restarts = 0;
    nonfinite_found = 0;
    nonfinite_quarantined = 0;
  }

let pp ppf s =
  Fmt.pf ppf
    "instrs=%d flops=%d loads=%d stores=%d atomics=%d allocs=%d calls=%d \
     forks=%d barriers=%d tasks=%d msgs=%d msg_cells=%d cache_st=%d \
     cache_ld=%d cache_cells=%d cache_peak=%d tape=%d"
    s.instrs s.flops s.loads s.stores s.atomics s.allocs s.calls s.forks
    s.barriers s.tasks s.messages s.message_cells s.cache_stores s.cache_loads
    s.cache_cells s.cache_peak s.tape_entries;
  if s.msgs_sent + s.cells_sent + s.max_inflight > 0 then
    Fmt.pf ppf " msgs_sent=%d cells_sent=%d max_inflight=%d" s.msgs_sent
      s.cells_sent s.max_inflight;
  if
    s.send_retries + s.messages_lost + s.messages_duplicated
    + s.stalls_injected
    > 0
  then
    Fmt.pf ppf " retries=%d lost=%d dup=%d stalls=%d" s.send_retries
      s.messages_lost s.messages_duplicated s.stalls_injected;
  if
    s.checkpoints_taken + s.checkpoints_restored + s.ranks_failed + s.restarts
    > 0
  then
    Fmt.pf ppf " ckpts=%d restored=%d failed_ranks=%d restarts=%d"
      s.checkpoints_taken s.checkpoints_restored s.ranks_failed s.restarts;
  if s.nonfinite_found + s.nonfinite_quarantined > 0 then
    Fmt.pf ppf " nonfinite=%d quarantined=%d" s.nonfinite_found
      s.nonfinite_quarantined
