(** Execution counters, shared by all strands of a run. *)

type t = {
  mutable instrs : int;
  mutable flops : int;
  mutable loads : int;
  mutable stores : int;
  mutable atomics : int;
  mutable allocs : int;
  mutable alloc_cells : int;
  mutable frees : int;
  mutable calls : int;
  mutable forks : int;
  mutable barriers : int;
  mutable tasks : int;
  mutable messages : int;
  mutable message_cells : int;
  (* adjoint-communication coalescing (zero when coalescing is off or the
     run has no adjoint exchanges) *)
  mutable msgs_sent : int;  (** packed adjoint messages actually sent *)
  mutable cells_sent : int;  (** cells in those packed messages, headers incl. *)
  mutable max_inflight : int;  (** peak packed messages in flight at once *)
  mutable cache_stores : int;
  mutable cache_loads : int;
  mutable cache_cells : int;  (** distinct cache cells ever written *)
  mutable cache_peak : int;  (** peak live cache footprint, in cells *)
  mutable tape_entries : int;
  mutable context_switches : int;
  (* fault injection (all zero on fault-free runs) *)
  mutable send_retries : int;  (** retransmissions after dropped attempts *)
  mutable messages_lost : int;  (** sends abandoned past retries/deadline *)
  mutable messages_duplicated : int;
  mutable stalls_injected : int;
  (* checkpoint/recovery (all zero on fault-free, checkpoint-free runs) *)
  mutable checkpoints_taken : int;
  mutable checkpoints_restored : int;
  mutable ranks_failed : int;  (** structured rank-failure notifications *)
  mutable restarts : int;  (** supervised restarts after a failure *)
  (* two-tier snapshot store (all zero when no store is in play) *)
  mutable snap_count : int;  (** snapshots written into the tiered store *)
  mutable snap_bytes : int;  (** serialized bytes of those snapshots *)
  mutable snap_evictions : int;
      (** hot-ring evictions: demotions to the disk tier, or drops when
          the store is configured hot-only *)
  mutable snap_restores : int;  (** snapshots read back out of the store *)
  (* sanitizer (all zero on unsanitized runs) *)
  mutable nonfinite_found : int;  (** first-origin NaN/Inf detections *)
  mutable nonfinite_quarantined : int;  (** values zeroed in degrade mode *)
  (* silent-data-corruption envelope (all zero on corruption-free runs) *)
  mutable sdc_injected : int;  (** bit flips actually landed by the plan *)
  mutable sdc_detected : int;  (** checksum/digest mismatches caught *)
  mutable sdc_recovered : int;  (** detections repaired (retransmit/restore) *)
  mutable msgs_retransmitted : int;
      (** packed messages re-fetched from the sender after a bad trailer *)
  mutable wall_ns : int;
      (** host wall-clock nanoseconds spent inside the simulator run(s)
          that produced these counters — real time, not modeled time, so
          it is *not* printed by {!pp} (figures compare virtual time) *)
  mutable eng_fallbacks : int;
      (** times a native-engine entry point handed a call (or a single
          intrinsic) back to the interpreter instead of running compiled
          code — zero on a fully engine-resident run *)
}

let create () =
  {
    instrs = 0;
    flops = 0;
    loads = 0;
    stores = 0;
    atomics = 0;
    allocs = 0;
    alloc_cells = 0;
    frees = 0;
    calls = 0;
    forks = 0;
    barriers = 0;
    tasks = 0;
    messages = 0;
    message_cells = 0;
    msgs_sent = 0;
    cells_sent = 0;
    max_inflight = 0;
    cache_stores = 0;
    cache_loads = 0;
    cache_cells = 0;
    cache_peak = 0;
    tape_entries = 0;
    context_switches = 0;
    send_retries = 0;
    messages_lost = 0;
    messages_duplicated = 0;
    stalls_injected = 0;
    checkpoints_taken = 0;
    checkpoints_restored = 0;
    ranks_failed = 0;
    restarts = 0;
    snap_count = 0;
    snap_bytes = 0;
    snap_evictions = 0;
    snap_restores = 0;
    nonfinite_found = 0;
    nonfinite_quarantined = 0;
    sdc_injected = 0;
    sdc_detected = 0;
    sdc_recovered = 0;
    msgs_retransmitted = 0;
    wall_ns = 0;
    eng_fallbacks = 0;
  }

let pp ppf s =
  Fmt.pf ppf
    "instrs=%d flops=%d loads=%d stores=%d atomics=%d allocs=%d calls=%d \
     forks=%d barriers=%d tasks=%d msgs=%d msg_cells=%d cache_st=%d \
     cache_ld=%d cache_cells=%d cache_peak=%d tape=%d"
    s.instrs s.flops s.loads s.stores s.atomics s.allocs s.calls s.forks
    s.barriers s.tasks s.messages s.message_cells s.cache_stores s.cache_loads
    s.cache_cells s.cache_peak s.tape_entries;
  if s.msgs_sent + s.cells_sent + s.max_inflight > 0 then
    Fmt.pf ppf " msgs_sent=%d cells_sent=%d max_inflight=%d" s.msgs_sent
      s.cells_sent s.max_inflight;
  if
    s.send_retries + s.messages_lost + s.messages_duplicated
    + s.stalls_injected
    > 0
  then
    Fmt.pf ppf " retries=%d lost=%d dup=%d stalls=%d" s.send_retries
      s.messages_lost s.messages_duplicated s.stalls_injected;
  if
    s.checkpoints_taken + s.checkpoints_restored + s.ranks_failed + s.restarts
    > 0
  then
    Fmt.pf ppf " ckpts=%d restored=%d failed_ranks=%d restarts=%d"
      s.checkpoints_taken s.checkpoints_restored s.ranks_failed s.restarts;
  if s.snap_count + s.snap_bytes + s.snap_evictions + s.snap_restores > 0 then
    Fmt.pf ppf " snap_count=%d snap_bytes=%d snap_evictions=%d snap_restores=%d"
      s.snap_count s.snap_bytes s.snap_evictions s.snap_restores;
  if s.nonfinite_found + s.nonfinite_quarantined > 0 then
    Fmt.pf ppf " nonfinite=%d quarantined=%d" s.nonfinite_found
      s.nonfinite_quarantined;
  if
    s.sdc_injected + s.sdc_detected + s.sdc_recovered + s.msgs_retransmitted
    > 0
  then
    Fmt.pf ppf " sdc_inj=%d sdc_det=%d sdc_rec=%d retrans=%d" s.sdc_injected
      s.sdc_detected s.sdc_recovered s.msgs_retransmitted;
  if s.eng_fallbacks > 0 then Fmt.pf ppf " eng_fallbacks=%d" s.eng_fallbacks

(** Fold [s] into [into]: counters add, peak watermarks take the max.
    Used by harnesses that drive one logical computation through several
    simulator runs (the checkpointed-adjoint driver) and need one honest
    aggregate — in particular an aggregate [cache_peak] that is the max
    live cache footprint of any single sweep, not a sum. *)
let merge ~into (s : t) =
  into.instrs <- into.instrs + s.instrs;
  into.flops <- into.flops + s.flops;
  into.loads <- into.loads + s.loads;
  into.stores <- into.stores + s.stores;
  into.atomics <- into.atomics + s.atomics;
  into.allocs <- into.allocs + s.allocs;
  into.alloc_cells <- into.alloc_cells + s.alloc_cells;
  into.frees <- into.frees + s.frees;
  into.calls <- into.calls + s.calls;
  into.forks <- into.forks + s.forks;
  into.barriers <- into.barriers + s.barriers;
  into.tasks <- into.tasks + s.tasks;
  into.messages <- into.messages + s.messages;
  into.message_cells <- into.message_cells + s.message_cells;
  into.msgs_sent <- into.msgs_sent + s.msgs_sent;
  into.cells_sent <- into.cells_sent + s.cells_sent;
  into.max_inflight <- max into.max_inflight s.max_inflight;
  into.cache_stores <- into.cache_stores + s.cache_stores;
  into.cache_loads <- into.cache_loads + s.cache_loads;
  into.cache_cells <- into.cache_cells + s.cache_cells;
  into.cache_peak <- max into.cache_peak s.cache_peak;
  into.tape_entries <- into.tape_entries + s.tape_entries;
  into.context_switches <- into.context_switches + s.context_switches;
  into.send_retries <- into.send_retries + s.send_retries;
  into.messages_lost <- into.messages_lost + s.messages_lost;
  into.messages_duplicated <- into.messages_duplicated + s.messages_duplicated;
  into.stalls_injected <- into.stalls_injected + s.stalls_injected;
  into.checkpoints_taken <- into.checkpoints_taken + s.checkpoints_taken;
  into.checkpoints_restored <- into.checkpoints_restored + s.checkpoints_restored;
  into.ranks_failed <- into.ranks_failed + s.ranks_failed;
  into.restarts <- into.restarts + s.restarts;
  into.snap_count <- into.snap_count + s.snap_count;
  into.snap_bytes <- into.snap_bytes + s.snap_bytes;
  into.snap_evictions <- into.snap_evictions + s.snap_evictions;
  into.snap_restores <- into.snap_restores + s.snap_restores;
  into.nonfinite_found <- into.nonfinite_found + s.nonfinite_found;
  into.nonfinite_quarantined <-
    into.nonfinite_quarantined + s.nonfinite_quarantined;
  into.sdc_injected <- into.sdc_injected + s.sdc_injected;
  into.sdc_detected <- into.sdc_detected + s.sdc_detected;
  into.sdc_recovered <- into.sdc_recovered + s.sdc_recovered;
  into.msgs_retransmitted <- into.msgs_retransmitted + s.msgs_retransmitted;
  into.wall_ns <- into.wall_ns + s.wall_ns;
  into.eng_fallbacks <- into.eng_fallbacks + s.eng_fallbacks
