(** Runtime values and buffers.

    A pointer is a (buffer, offset) pair; buffers are homogeneous arrays of
    values owned by one rank's address space. Use-after-free is detected
    (buffers are poisoned, not reused), which the GC-preservation tests
    rely on. *)

open Parad_ir

type t =
  | VUnit
  | VBool of bool
  | VInt of int
  | VFloat of float
  | VPtr of ptr
  | VNull of Ty.t

and ptr = { buf : buffer; off : int }

(* Float buffers store raw floats ([FCells]) so the hot Load/Store path of
   the execution engine moves unboxed values; every other element type
   keeps boxed cells ([VCells]). The [Memory] API boxes on [load], so the
   interpreter is unaffected by the representation. *)
and cells = VCells of t array | FCells of float array

and buffer = {
  bid : int;
  elem : Ty.t;
  mutable data : cells;
  kind : Instr.alloc_kind;
  rank : int;  (** owning address space *)
  socket : int;  (** NUMA placement: socket of the allocating strand *)
  mutable freed : bool;
  mutable preserve : int;  (** GC preservation count *)
  asite : string;  (** allocation site, e.g. ["fn/var"] or ["harness"] *)
  mutable fsite : string option;  (** site of the [Free] that poisoned it *)
}

exception Runtime_error of string

let error fmt = Fmt.kstr (fun s -> raise (Runtime_error s)) fmt

let cells_len = function
  | VCells a -> Array.length a
  | FCells a -> Array.length a

(* Boxing view of one cell, representation-independent. *)
let get_cell cells i =
  match cells with VCells a -> a.(i) | FCells a -> VFloat a.(i)

let ty = function
  | VUnit -> Ty.Unit
  | VBool _ -> Ty.Bool
  | VInt _ -> Ty.Int
  | VFloat _ -> Ty.Float
  | VPtr p -> Ty.Ptr p.buf.elem
  | VNull t -> Ty.Ptr t

let to_float = function
  | VFloat x -> x
  | v -> error "expected float, got %a" Ty.pp (ty v)

let to_int = function
  | VInt x -> x
  | v -> error "expected int, got %a" Ty.pp (ty v)

let to_bool = function
  | VBool x -> x
  | v -> error "expected bool, got %a" Ty.pp (ty v)

let to_ptr = function
  | VPtr p -> p
  | VNull _ -> error "null pointer dereference"
  | v -> error "expected pointer, got %a" Ty.pp (ty v)

let zero_of = function
  | Ty.Unit -> VUnit
  | Ty.Bool -> VBool false
  | Ty.Int -> VInt 0
  | Ty.Float -> VFloat 0.0
  | Ty.Ptr t -> VNull t

let pp ppf = function
  | VUnit -> Fmt.string ppf "()"
  | VBool b -> Fmt.bool ppf b
  | VInt i -> Fmt.int ppf i
  | VFloat f -> Fmt.pf ppf "%.17g" f
  | VPtr p -> Fmt.pf ppf "&b%d[%d]" p.buf.bid p.off
  | VNull _ -> Fmt.string ppf "null"
