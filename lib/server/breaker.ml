(** Per-plan-key circuit breaker.

    One poisoned program (a fault plan that deadlocks, a flag combination
    that always trips the sanitizer) must not monopolize the worker pool:
    after [k] consecutive failures on a key, the breaker opens and
    requests on that key are rejected immediately (class
    [breaker_open]) without executing. After [cooldown] further
    submissions on the key, it half-opens: the next request runs as a
    probe — success closes the breaker (a recovery), failure re-opens
    it for another cooldown.

    Time is counted in submissions on the key, not wall time: the
    service's admission model is virtual-time deterministic, and a
    submission-counted cooldown keeps trip/half-open/recover sequences
    exactly reproducible under seeded chaos (the [parad slam]
    acceptance criterion). *)

type state =
  | Closed
  | Open of int  (** submissions on this key remaining until half-open *)
  | Half_open  (** next outcome decides: close (recovery) or re-open *)

type t = {
  k : int;  (** consecutive failures that trip the breaker *)
  cooldown : int;  (** rejected submissions before half-opening *)
  mutable state : state;
  mutable consecutive : int;  (** consecutive failures while closed *)
  mutable trips : int;
  mutable probes : int;
  mutable recoveries : int;
}

let create ~k ~cooldown =
  if k < 1 then invalid_arg "Breaker.create: k must be >= 1";
  if cooldown < 1 then invalid_arg "Breaker.create: cooldown must be >= 1";
  {
    k;
    cooldown;
    state = Closed;
    consecutive = 0;
    trips = 0;
    probes = 0;
    recoveries = 0;
  }

type admission = Admit | Probe | Reject

(** Called once per submission on the key, before execution. [Reject]
    means answer [breaker_open] without running; [Probe] admits the
    half-open trial request. *)
let admit t =
  match t.state with
  | Closed -> Admit
  | Half_open ->
    t.probes <- t.probes + 1;
    Probe
  | Open 1 ->
    (* the last cooldown submission is still rejected; the next probes *)
    t.state <- Half_open;
    Reject
  | Open n ->
    t.state <- Open (n - 1);
    Reject

(** Record the outcome of an admitted (or probe) execution. *)
let record t ~ok =
  match t.state with
  | Open _ -> ()  (* rejected requests never report outcomes *)
  | Half_open ->
    if ok then begin
      t.state <- Closed;
      t.consecutive <- 0;
      t.recoveries <- t.recoveries + 1
    end
    else begin
      t.state <- Open t.cooldown;
      t.trips <- t.trips + 1
    end
  | Closed ->
    if ok then t.consecutive <- 0
    else begin
      t.consecutive <- t.consecutive + 1;
      if t.consecutive >= t.k then begin
        t.state <- Open t.cooldown;
        t.consecutive <- 0;
        t.trips <- t.trips + 1
      end
    end

let state t = t.state

let state_name t =
  match t.state with
  | Closed -> "closed"
  | Open _ -> "open"
  | Half_open -> "half-open"
