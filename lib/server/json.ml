(** Minimal JSON for the gradient service's newline-delimited protocol.

    Hand-rolled on purpose: the build carries no JSON dependency, and
    the protocol needs only flat objects of scalars. Printing is
    deterministic (fields in construction order, floats via [%.17g] so
    values round-trip bit-exactly); parsing is a plain recursive-descent
    over the full grammar, returning [Error] — never an exception — on
    malformed input so the server can classify bad requests. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ---- printing ---- *)

let escape b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let number f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else if Float.is_nan f then "\"nan\""
  else if f = Float.infinity then "\"inf\""
  else if f = Float.neg_infinity then "\"-inf\""
  else Printf.sprintf "%.17g" f

let rec emit b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Num f -> Buffer.add_string b (number f)
  | Str s -> escape b s
  | Arr xs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char b ',';
        emit b x)
      xs;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        escape b k;
        Buffer.add_char b ':';
        emit b v)
      fields;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  emit b v;
  Buffer.contents b

(* ---- parsing ---- *)

exception Bad of string

type cursor = { s : string; mutable pos : int }

let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance c;
    skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> fail "expected %C at offset %d, found %C" ch c.pos x
  | None -> fail "expected %C at offset %d, found end of input" ch c.pos

let literal c word v =
  let n = String.length word in
  if
    c.pos + n <= String.length c.s
    && String.sub c.s c.pos n = word
  then begin
    c.pos <- c.pos + n;
    v
  end
  else fail "bad literal at offset %d" c.pos

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
      advance c;
      match peek c with
      | None -> fail "unterminated escape"
      | Some e ->
        advance c;
        (match e with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          if c.pos + 4 > String.length c.s then fail "truncated \\u escape";
          let hex = String.sub c.s c.pos 4 in
          c.pos <- c.pos + 4;
          let code =
            try int_of_string ("0x" ^ hex)
            with _ -> fail "bad \\u escape %S" hex
          in
          (* protocol strings are ASCII; encode the BMP scalar as UTF-8 *)
          if code < 0x80 then Buffer.add_char b (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char b (Char.chr (0xc0 lor (code lsr 6)));
            Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
          end
          else begin
            Buffer.add_char b (Char.chr (0xe0 lor (code lsr 12)));
            Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
            Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
          end
        | e -> fail "bad escape \\%c" e);
        go ())
    | Some ch ->
      advance c;
      Buffer.add_char b ch;
      go ()
  in
  go ();
  Buffer.contents b

let parse_number c =
  let start = c.pos in
  let numchar = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek c with Some ch -> numchar ch | None -> false) do
    advance c
  done;
  let tok = String.sub c.s start (c.pos - start) in
  match float_of_string_opt tok with
  | Some f -> Num f
  | None -> fail "bad number %S at offset %d" tok start

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail "unexpected end of input"
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          fields ((k, v) :: acc)
        | Some '}' ->
          advance c;
          List.rev ((k, v) :: acc)
        | _ -> fail "expected ',' or '}' at offset %d" c.pos
      in
      Obj (fields [])
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      Arr []
    end
    else begin
      let rec elems acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          elems (v :: acc)
        | Some ']' ->
          advance c;
          List.rev (v :: acc)
        | _ -> fail "expected ',' or ']' at offset %d" c.pos
      in
      Arr (elems [])
    end
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> parse_number c

let of_string s =
  let c = { s; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos <> String.length s then
      Error (Printf.sprintf "trailing garbage at offset %d" c.pos)
    else Ok v
  | exception Bad m -> Error m

(* ---- typed accessors (lenient field lookup for requests) ---- *)

let mem k = function Obj fields -> List.mem_assoc k fields | _ -> false

let field k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let str_field k v =
  match field k v with Some (Str s) -> Some s | _ -> None

let num_field k v =
  match field k v with Some (Num f) -> Some f | _ -> None

let bool_field k v =
  match field k v with Some (Bool b) -> Some b | _ -> None

let int_field k v =
  match num_field k v with
  | Some f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None
