(** LRU cache of compiled gradient plans.

    The expensive part of a request is the pipeline (reverse generation +
    post-AD optimization), not interpretation; a warm hit skips it
    entirely. Keys are the canonical plan-key strings built by
    {!Service.plan_key}; payloads are immutable compiled programs, so
    sharing one payload across many requests is safe by construction.

    Exact LRU over an association list: capacities are small (default 8,
    a plan is a whole compiled program pair), so O(n) reordering is
    noise next to a single compile. Hit/miss acquisition wall times are
    accumulated for the warm-speedup figure BENCH_serve.json gates. *)

type 'a t = {
  cap : int;
  mutable items : (string * 'a) list;  (** most recently used first *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable hit_ns : float;  (** total wall time spent on hit lookups *)
  mutable miss_ns : float;  (** total wall time spent compiling on miss *)
}

let create ~cap =
  if cap < 1 then invalid_arg "Plan_cache.create: cap must be >= 1";
  {
    cap;
    items = [];
    hits = 0;
    misses = 0;
    evictions = 0;
    hit_ns = 0.0;
    miss_ns = 0.0;
  }

let length t = List.length t.items
let mem t key = List.mem_assoc key t.items

(** The keys currently cached, most recently used first. *)
let keys t = List.map fst t.items

let now_ns () = Unix.gettimeofday () *. 1e9

(* Move [key] to the front; assumes present. *)
let promote t key =
  let v = List.assoc key t.items in
  t.items <- (key, v) :: List.remove_assoc key t.items;
  v

(** Fetch the plan under [key], calling [compile] (and caching the
    result, evicting the coldest entry past capacity) on a miss.
    Returns the plan and whether it was warm. *)
let get_or_compile t key ~compile =
  let t0 = now_ns () in
  if mem t key then begin
    let v = promote t key in
    t.hits <- t.hits + 1;
    t.hit_ns <- t.hit_ns +. (now_ns () -. t0);
    v, true
  end
  else begin
    let v = compile () in
    t.items <- (key, v) :: t.items;
    if List.length t.items > t.cap then begin
      t.items <- List.filteri (fun i _ -> i < t.cap) t.items;
      t.evictions <- t.evictions + 1
    end;
    t.misses <- t.misses + 1;
    t.miss_ns <- t.miss_ns +. (now_ns () -. t0);
    v, false
  end

(** Drop one key (used on compile-time poisoning, not on run failures:
    a plan whose *execution* failed is still a valid plan). *)
let remove t key = t.items <- List.remove_assoc key t.items
