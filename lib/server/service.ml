(** The gradient service: plan caching + a robustness envelope.

    One service instance owns an LRU cache of compiled plans
    ({!Plan_cache}), a per-plan-key circuit breaker ({!Breaker}), and a
    deterministic virtual-time worker-pool model. Requests arrive as
    newline-delimited JSON (socket or stdin batch), execute one at a
    time against the shared simulator — the engine in [Sim] is global
    and non-reentrant, so "concurrency" is a queueing model over
    virtual time, exactly like the rest of the repo models parallel
    hardware — and leave as classified JSON responses. No request
    outcome, including a deadlock, a sanitizer abort, a rank failure or
    a deadline bust, may take the daemon down: {!submit} catches
    everything and classifies it through the exit-code taxonomy
    (README), extended here with 6 = deadline exceeded, 7 = overloaded
    (admission shed), 8 = breaker open.

    Request lifecycle: parse → validate (bad fields answer [invalid],
    code 2, without touching the pool) → breaker admission → queue
    admission (bounded; sheds with [overloaded] beyond the cap) →
    plan-cache acquisition (compile on miss) → execution with
    retry-with-backoff for transient failures (a consumed rank kill, a
    missing snapshot) → classification. Per-request [Stats] are fresh
    records, so nothing leaks between requests; the checkpoint stores a
    request creates spill under per-request namespaces and are disposed
    with the request. *)

open Parad_runtime
module L = Apps_lulesh.Lulesh
module MB = Apps_minibude.Minibude

(* ---- classification ---- *)

(** Response classes, each mapped to the documented exit-code taxonomy.
    Every response carries exactly one. *)
let class_code = function
  | "ok" -> 0
  | "findings" -> 1
  | "invalid" | "runtime_error" | "san_strict" | "error" -> 2
  | "deadlock" | "rank_failed" -> 3
  | "degraded" -> 4
  | "miscompile" -> 5
  | "deadline" -> 6
  | "overloaded" -> 7
  | "breaker_open" -> 8
  | "corrupted" -> 9
  | c -> invalid_arg ("Service.class_code: unknown class " ^ c)

(* ---- requests ---- *)

type app = Lulesh of L.flavor | Bude of MB.variant

type request = {
  rq_id : int;
  rq_app : app;
  rq_nranks : int;
  rq_nthreads : int;
  rq_depth : int;  (** recompute depth (plan option) *)
  rq_budget : int;  (** snapshot budget; > 0 selects the binomial driver *)
  rq_coalesce : bool;
  rq_seeds : int;
      (** adjoint seed lanes; > 1 selects the batched sweep (one taping
          pass, one k-wide reverse sweep — lane [l] seeded with [l + 1]) *)
  rq_niter : int;
  rq_nx : int;
  rq_escale : float;
  rq_nposes : int;
  rq_faults : Faults.plan option;
  rq_inject_nan : int option;
  rq_san : Sanitizer.mode option;
  rq_deadline : Sim.deadline;
  rq_engine : Parad_engine.Engine.choice;
      (** execution substrate: the tree-walking interpreter or the lowered
          slot-addressed engine (sequential / work-stealing pool) *)
}

let lulesh_flavor = function
  | "seq" -> Some L.Seq
  | "omp" -> Some L.Omp
  | "raja" -> Some L.Raja_
  | "mpi" -> Some L.Mpi
  | "hybrid" -> Some L.Hybrid
  | "raja-mpi" -> Some L.RajaMpi
  | "julia" | "jl" -> Some L.Jlmpi
  | _ -> None

let bude_variant = function
  | "seq" -> Some MB.Seq
  | "omp" -> Some MB.Omp
  | "julia" -> Some MB.Julia
  | _ -> None

exception Invalid of string

let invalid fmt = Printf.ksprintf (fun m -> raise (Invalid m)) fmt

let is_pow2 n = n > 0 && n land (n - 1) = 0

(** Decode and validate one request object. Unknown fields are ignored
    (forward compatibility); bad values raise {!Invalid} with a precise
    message that lands verbatim in the [error] field of the response. *)
let request_of_json ~default_watchdog_ms j =
  let id = Option.value (Json.int_field "id" j) ~default:0 in
  let geti k default lo =
    match Json.field k j with
    | None -> default
    | Some _ -> (
      match Json.int_field k j with
      | Some v when v >= lo -> v
      | Some v -> invalid "field %S: %d out of range (min %d)" k v lo
      | None -> invalid "field %S: expected an integer" k)
  in
  let getf k default =
    match Json.field k j with
    | None -> default
    | Some _ -> (
      match Json.num_field k j with
      | Some v -> v
      | None -> invalid "field %S: expected a number" k)
  in
  let app =
    match Json.str_field "app" j with
    | None | Some "lulesh" -> (
      let f = Option.value (Json.str_field "flavor" j) ~default:"mpi" in
      match lulesh_flavor f with
      | Some fl -> Lulesh fl
      | None -> invalid "unknown lulesh flavor %S" f)
    | Some "bude" | Some "minibude" -> (
      let f = Option.value (Json.str_field "flavor" j) ~default:"omp" in
      match bude_variant f with
      | Some v -> Bude v
      | None -> invalid "unknown bude variant %S" f)
    | Some a -> invalid "unknown app %S" a
  in
  let nranks = geti "nranks" 1 1 in
  if not (is_pow2 nranks) then invalid "nranks must be a power of two";
  (match app with
  | Lulesh fl when nranks > 1 && not (L.uses_mpi fl) ->
    invalid "flavor %S is not MPI-capable; nranks must be 1" (L.flavor_name fl)
  | Bude _ when nranks > 1 -> invalid "bude is single-rank; nranks must be 1"
  | _ -> ());
  let nthreads = geti "nthreads" 1 1 in
  let depth = geti "recompute_depth" 0 0 in
  let budget = geti "snap_budget" 0 0 in
  (match app with
  | Bude _ when budget > 0 ->
    invalid "snap_budget applies only to lulesh requests"
  | _ -> ());
  let coalesce =
    Option.value (Json.bool_field "coalesce" j) ~default:true
  in
  let seeds = geti "seeds" 1 1 in
  (match app with
  | Lulesh fl when seeds > 1 && L.uses_mpi fl ->
    invalid
      "flavor %S cannot batch seeds (the MPI adjoint runtime exchanges \
       single-stride planes); use a shared-memory flavor"
      (L.flavor_name fl)
  | _ -> ());
  if seeds > 1 && budget > 0 then
    invalid
      "snap_budget cannot combine with seeds > 1 (the binomial driver \
       replays single-seed sweeps)";
  let niter = geti "niter" 2 1 in
  let nx = geti "nx" 2 2 in
  let escale = getf "escale" 1.0 in
  if not (Float.is_finite escale) || escale <= 0.0 then
    invalid "escale must be finite and > 0";
  let nposes = geti "nposes" 8 1 in
  let faults =
    match Json.str_field "faults" j with
    | None -> None
    | Some spec -> (
      let seed = Json.int_field "fault_seed" j in
      let rank = Json.int_field "fault_rank" j in
      let at = Json.num_field "fault_at" j in
      match Faults.plan_of_spec ?seed ?rank ?at ~nranks spec with
      | p -> Some p
      | exception Invalid_argument m -> invalid "bad fault plan: %s" m)
  in
  let inject_nan = Json.int_field "inject_nan" j in
  if seeds > 1 && inject_nan <> None then
    invalid "inject_nan is not supported with seeds > 1";
  let san =
    match Json.str_field "sanitize" j with
    | None | Some "off" -> None
    | Some "on" | Some "degrade" -> Some Sanitizer.Degrade
    | Some "strict" -> Some Sanitizer.Strict
    | Some m -> invalid "unknown sanitize mode %S" m
  in
  let deadline =
    let cyc =
      match Json.field "deadline_cycles" j with
      | None -> None
      | Some _ -> (
        match Json.num_field "deadline_cycles" j with
        | Some v when v > 0.0 -> Some v
        | _ -> invalid "deadline_cycles must be a number > 0")
    in
    let ms =
      match Json.field "deadline_ms" j with
      | None -> default_watchdog_ms
      | Some _ -> (
        match Json.num_field "deadline_ms" j with
        | Some v when v > 0.0 -> Some v
        | _ -> invalid "deadline_ms must be a number > 0")
    in
    { Sim.dl_cycles = cyc; dl_wall_ms = ms }
  in
  let engine =
    match Json.str_field "engine" j with
    | None -> Parad_engine.Engine.Interp
    | Some s -> (
      match Parad_engine.Engine.choice_of_string s with
      | Some e -> e
      | None -> invalid "unknown engine %S (interp|seq|par)" s)
  in
  {
    rq_id = id;
    rq_app = app;
    rq_nranks = nranks;
    rq_nthreads = nthreads;
    rq_depth = depth;
    rq_budget = budget;
    rq_coalesce = coalesce;
    rq_seeds = seeds;
    rq_niter = niter;
    rq_nx = nx;
    rq_escale = escale;
    rq_nposes = nposes;
    rq_faults = faults;
    rq_inject_nan = inject_nan;
    rq_san = san;
    rq_deadline = deadline;
    rq_engine = engine;
  }

(** Canonical plan-cache key (DESIGN.md "gradient service"):
    app|flavor|r<ranks>|t<threads>|d<recompute-depth>|b<snap-budget>|c<coalesce>|s<seeds>.
    Everything that shapes the *compiled programs* is in the key — the
    seed width is, because the adjoint kernels are emitted with k-stride
    accumulation; mesh size, horizon, faults, sanitizer and deadline are
    per-request execution state and deliberately are not. *)
let plan_key rq =
  let app, flavor =
    match rq.rq_app with
    | Lulesh fl -> "lulesh", L.flavor_name fl
    | Bude v -> "bude", MB.variant_name v
  in
  Printf.sprintf "%s|%s|r%d|t%d|d%d|b%d|c%d|s%d" app flavor rq.rq_nranks
    rq.rq_nthreads rq.rq_depth rq.rq_budget
    (if rq.rq_coalesce then 1 else 0)
    rq.rq_seeds

(** Everything that determines the *bits* of a fault-free,
    sanitizer-free run: the plan key plus the per-request execution
    state. The simulator is deterministic, so two requests with equal
    signatures are the same sweep — the basis for seed-batched
    coalescing in {!submit}. *)
let exec_sig rq =
  let fo = function None -> "-" | Some f -> Printf.sprintf "%h" f in
  Printf.sprintf "%s|n%d|x%d|e%h|p%d|g%s|dc%s|dw%s" (plan_key rq) rq.rq_niter
    rq.rq_nx rq.rq_escale rq.rq_nposes
    (Parad_engine.Engine.choice_to_string rq.rq_engine)
    (fo rq.rq_deadline.Sim.dl_cycles)
    (fo rq.rq_deadline.Sim.dl_wall_ms)

(* ---- compiled-plan payloads ---- *)

type plan = Plulesh of L.compiled | Pbude of MB.compiled

let compile_plan rq =
  let opts =
    {
      Parad_core.Plan.default_options with
      recompute_depth = rq.rq_depth;
      coalesce_comm = rq.rq_coalesce;
      seeds = rq.rq_seeds;
    }
  in
  match rq.rq_app with
  | Lulesh fl -> Plulesh (L.compile ~opts ~steps:(rq.rq_budget > 0) fl)
  | Bude v -> Pbude (MB.compile ~opts ~ntasks:rq.rq_nthreads v)

(* ---- gradient digest (bit-identity witness) ---- *)

let fnv_init = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv_byte h b =
  Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) fnv_prime

let fnv_float h x =
  let bits = Int64.bits_of_float x in
  let h = ref h in
  for i = 0 to 7 do
    h := fnv_byte !h (Int64.to_int (Int64.shift_right_logical bits (8 * i)))
  done;
  !h

let digest_floats h a = Array.fold_left fnv_float h a

(** FNV-1a over the IEEE-754 bit patterns of every gradient component:
    equal digests mean bit-identical gradients. The warm-vs-cold
    equality assertions in [parad slam] and the plan-cache tests
    compare these. *)
let fold_lulesh h (g : L.grad_result) =
  let h = fnv_float h g.L.g_total in
  let h = Array.fold_left digest_floats h g.L.d_coords in
  Array.fold_left digest_floats h g.L.d_energy

let digest_lulesh g = Printf.sprintf "%016Lx" (fold_lulesh fnv_init g)

(** Batched digest: the lane digests chained in lane order, so it covers
    every adjoint column of the sweep. *)
let digest_lulesh_lanes gs =
  Printf.sprintf "%016Lx" (Array.fold_left fold_lulesh fnv_init gs)

let fold_bude h (g : MB.grad_result) =
  let h = digest_floats h g.MB.g_energies in
  let h = digest_floats h g.MB.d_lig in
  let h = digest_floats h g.MB.d_pro in
  digest_floats h g.MB.d_poses

let digest_bude g = Printf.sprintf "%016Lx" (fold_bude fnv_init g)

let digest_bude_lanes gs =
  Printf.sprintf "%016Lx" (Array.fold_left fold_bude fnv_init gs)

(* ---- service state ---- *)

type exec_result = {
  x_class : string;
  x_error : string option;
  x_digest : string option;
  x_total : float option;
  x_cycles : float;  (** virtual makespan of the (final) attempt *)
  x_instrs : int;
  x_wall_ns : int;  (** host wall-clock spent inside the simulator *)
  x_retries : int;
}

type config = {
  workers : int;  (** virtual worker-pool width *)
  queue_cap : int;  (** queued (not yet started) requests before shedding *)
  cache_cap : int;  (** LRU plan-cache capacity *)
  breaker_k : int;  (** consecutive failures that trip a key's breaker *)
  breaker_cooldown : int;  (** rejected submissions before half-open *)
  retries : int;  (** retry budget for transient failures *)
  backoff_cycles : float;  (** virtual backoff base; doubles per retry *)
  arrival_gap : float;  (** virtual cycles between request arrivals *)
  watchdog_ms : float option;  (** default wall watchdog per request *)
}

let default_config =
  {
    workers = 4;
    queue_cap = 8;
    cache_cap = 8;
    breaker_k = 3;
    breaker_cooldown = 4;
    retries = 2;
    backoff_cycles = 10_000.0;
    arrival_gap = 0.0;
    watchdog_ms = Some 30_000.0;
  }

(** Last completed seed-batched sweep on a plan key. A later request
    with the same execution signature that arrives before [sw_finish]
    would have queued behind it — instead it coalesces: the simulator is
    deterministic, so the in-flight sweep's lanes *are* its lanes, and
    it rides along without consuming a worker. *)
type sweep = {
  sw_sig : string;  (** {!exec_sig} of the request that ran the sweep *)
  sw_finish : float;  (** virtual completion time of the sweep *)
  sw_result : exec_result;
}

type t = {
  cfg : config;
  cache : plan Plan_cache.t;
  breakers : (string, Breaker.t) Hashtbl.t;
  sweeps : (string, sweep) Hashtbl.t;
      (** per plan key: the most recent coalescible batched sweep *)
  pool : float array;  (** per virtual worker: free-at time *)
  mutable vnow : float;  (** virtual arrival clock *)
  mutable starts : float list;  (** start times of admitted requests *)
  (* counters *)
  mutable submitted : int;
  mutable executed : int;
  mutable coalesced : int;
      (** requests served by riding an in-flight batched sweep *)
  mutable shed : int;
  mutable breaker_rejects : int;
  mutable retries_total : int;
  mutable wall_ns : int;
      (** host wall-clock spent inside the simulator across every
          executed request (riders add nothing: no execution) *)
  mutable by_class : (string * int) list;
  mutable latencies : float list;  (** virtual latencies, newest first *)
  mutable draining : bool;
}

let create ?(cfg = default_config) () =
  if cfg.workers < 1 then invalid_arg "Service.create: workers must be >= 1";
  if cfg.queue_cap < 0 then invalid_arg "Service.create: queue_cap < 0";
  {
    cfg;
    cache = Plan_cache.create ~cap:cfg.cache_cap;
    breakers = Hashtbl.create 16;
    sweeps = Hashtbl.create 16;
    pool = Array.make cfg.workers 0.0;
    vnow = 0.0;
    starts = [];
    submitted = 0;
    executed = 0;
    coalesced = 0;
    shed = 0;
    breaker_rejects = 0;
    retries_total = 0;
    wall_ns = 0;
    by_class = [];
    latencies = [];
    draining = false;
  }

let breaker_for t key =
  match Hashtbl.find_opt t.breakers key with
  | Some b -> b
  | None ->
    let b =
      Breaker.create ~k:t.cfg.breaker_k ~cooldown:t.cfg.breaker_cooldown
    in
    Hashtbl.add t.breakers key b;
    b

let count_class t cls =
  t.by_class <-
    (match List.assoc_opt cls t.by_class with
    | Some n -> (cls, n + 1) :: List.remove_assoc cls t.by_class
    | None -> (cls, 1) :: t.by_class)

(* ---- execution ---- *)

let lulesh_input rq =
  {
    L.nx = rq.rq_nx;
    ny = rq.rq_nx;
    nz = (if rq.rq_nranks > 1 then rq.rq_nranks * 2 else 4);
    niter = rq.rq_niter;
    dt0 = 0.01;
    escale = rq.rq_escale;
  }

(* One attempt; raises on failure. Returns (class, digest, total,
   makespan, instrs, wall_ns) — class can still be degraded/findings
   when a sanitizer ran in degrade mode. *)
let attempt rq plan ~faults =
  let san = Option.map (fun mode -> Sanitizer.create ~mode ()) rq.rq_san in
  let deadline = rq.rq_deadline in
  let sanitizer_class () =
    match san with
    | None -> "ok"
    | Some s -> (
      match Sanitizer.exit_code s with
      | 0 -> "ok"
      | 1 -> "findings"
      | 4 -> "degraded"
      | 5 -> "miscompile"
      | _ -> "findings")
  in
  match plan, rq.rq_app with
  | Plulesh c, Lulesh _ when rq.rq_budget > 0 ->
    (* binomial driver: no sanitizer hook, but fault-supervised *)
    let b =
      L.gradient_binomial ~nthreads:rq.rq_nthreads ~nranks:rq.rq_nranks
        ?faults ~compiled:c ~deadline ~engine:rq.rq_engine
        ~budget:rq.rq_budget
        (match rq.rq_app with Lulesh fl -> fl | Bude _ -> assert false)
        (lulesh_input rq)
    in
    let g = b.L.b_grad in
    ( (if b.L.b_degraded > 0 then "degraded" else "ok"),
      digest_lulesh g,
      g.L.g_total,
      g.L.g_makespan,
      g.L.g_stats.Stats.instrs,
      g.L.g_stats.Stats.wall_ns )
  | Plulesh c, Lulesh _ when rq.rq_seeds > 1 ->
    (* one taping pass, one k-wide reverse sweep: lane [l] seeded with
       [l + 1], matching `parad grad --seeds` *)
    let d_rets =
      Array.init rq.rq_seeds (fun l -> 1.0 +. float_of_int l)
    in
    let gs =
      L.gradient_batched ~nthreads:rq.rq_nthreads ?faults ?san ~deadline
        ~engine:rq.rq_engine c ~d_rets (lulesh_input rq)
    in
    ( sanitizer_class (),
      digest_lulesh_lanes gs,
      gs.(0).L.g_total,
      gs.(0).L.g_makespan,
      gs.(0).L.g_stats.Stats.instrs,
      gs.(0).L.g_stats.Stats.wall_ns )
  | Plulesh c, Lulesh _ ->
    let g =
      L.gradient_compiled ~nthreads:rq.rq_nthreads ~nranks:rq.rq_nranks
        ?faults ?san ?inject_nan:rq.rq_inject_nan ~deadline
        ~engine:rq.rq_engine c (lulesh_input rq)
    in
    ( sanitizer_class (),
      digest_lulesh g,
      g.L.g_total,
      g.L.g_makespan,
      g.L.g_stats.Stats.instrs,
      g.L.g_stats.Stats.wall_ns )
  | Pbude c, Bude _ when rq.rq_seeds > 1 ->
    let inp = MB.deck ~nposes:rq.rq_nposes ~natlig:4 ~natpro:6 in
    let ge_seeds =
      Array.init rq.rq_seeds (fun l -> 1.0 +. float_of_int l)
    in
    let gs =
      MB.gradient_batched ~nthreads:rq.rq_nthreads ?san ?faults ~deadline
        ~engine:rq.rq_engine c ~ge_seeds inp
    in
    ( sanitizer_class (),
      digest_bude_lanes gs,
      Array.fold_left ( +. ) 0.0 gs.(0).MB.g_energies,
      gs.(0).MB.g_makespan,
      gs.(0).MB.g_stats.Stats.instrs,
      gs.(0).MB.g_stats.Stats.wall_ns )
  | Pbude c, Bude _ ->
    let inp = MB.deck ~nposes:rq.rq_nposes ~natlig:4 ~natpro:6 in
    let g =
      MB.gradient_compiled ~nthreads:rq.rq_nthreads ?san ?faults ~deadline
        ~engine:rq.rq_engine c inp
    in
    ( sanitizer_class (),
      digest_bude g,
      Array.fold_left ( +. ) 0.0 g.MB.g_energies,
      g.MB.g_makespan,
      g.MB.g_stats.Stats.instrs,
      g.MB.g_stats.Stats.wall_ns )
  | Plulesh _, Bude _ | Pbude _, Lulesh _ ->
    invalid_arg "Service.attempt: plan/app mismatch (cache key collision)"

(** Classify an execution exception. Total: every exception maps to a
    documented class — an uncaught backtrace out of a request is a
    server bug by definition. *)
let classify_exn = function
  | Invalid m -> "invalid", m
  | Sim.Deadline_exceeded d ->
    "deadline", Format.asprintf "%a" Sim.pp_deadline_hit d
  | Sim.Deadlock d ->
    "deadlock", Format.asprintf "%a" Sim.pp_diagnosis d
  | Mpi_state.Rank_failed n ->
    ( "rank_failed",
      Printf.sprintf "rank %d failed at t=%.0f" n.Mpi_state.fn_failed
        n.Mpi_state.fn_agreed_at )
  | Sanitizer.Nonfinite_strict m -> "san_strict", m
  | Checkpoint.Snapshot_unavailable { su_rank; su_id; su_corrupt } ->
    ( "runtime_error",
      Printf.sprintf "snapshot (%d, %d) %s" su_rank su_id
        (if su_corrupt then "corrupt" else "missing") )
  | Mpi_state.Corrupt_message c ->
    ( "corrupted",
      Printf.sprintf "message %d->%d corrupt at t=%.0f (%d attempts)"
        c.Mpi_state.cm_src c.Mpi_state.cm_dst c.Mpi_state.cm_at
        c.Mpi_state.cm_attempts )
  | Checkpoint.Corrupt_region { cr_rank; cr_cache; cr_at } ->
    ( "corrupted",
      Printf.sprintf "rank %d cache %d digest mismatch at t=%.0f" cr_rank
        cr_cache cr_at )
  | Value.Runtime_error m -> "runtime_error", m
  | Invalid_argument m -> "runtime_error", m
  | Failure m -> "error", m
  | e -> "error", Printexc.to_string e

let transient = function
  | Mpi_state.Rank_failed _ | Checkpoint.Snapshot_unavailable _
  | Mpi_state.Corrupt_message _ | Checkpoint.Corrupt_region _ ->
    true
  | _ -> false

(* Execute with retry-with-backoff. A rank kill is consumed from the
   fault plan before the retry (ULFM-style: the failed incarnation is
   gone), so a deterministic retry genuinely succeeds; detected data
   corruption likewise consumes the fired flip or message-corruption
   event from the plan's budget; other transient failures retry with
   unchanged state and are bounded by the budget. *)
let execute t rq plan =
  let rec go ~faults ~tries ~backoff =
    match attempt rq plan ~faults with
    | cls, digest, total, cycles, instrs, wall_ns ->
      {
        x_class = cls;
        x_error = None;
        x_digest = Some digest;
        x_total = Some total;
        x_cycles = cycles +. backoff;
        x_instrs = instrs;
        x_wall_ns = wall_ns;
        x_retries = tries;
      }
    | exception e when transient e && tries < t.cfg.retries ->
      t.retries_total <- t.retries_total + 1;
      let faults =
        match e, faults with
        | Mpi_state.Rank_failed n, Some p ->
          Some (Faults.consume_kill p ~rank:n.Mpi_state.fn_failed)
        | Mpi_state.Corrupt_message _, Some p ->
          Some (Faults.consume_corrupt p)
        | Checkpoint.Corrupt_region { cr_rank; _ }, Some p ->
          Some (Faults.consume_flip p ~rank:cr_rank)
        | _ -> faults
      in
      let pause = t.cfg.backoff_cycles *. Float.of_int (1 lsl tries) in
      go ~faults ~tries:(tries + 1) ~backoff:(backoff +. pause)
    | exception e ->
      let cls, msg = classify_exn e in
      {
        x_class = cls;
        x_error = Some msg;
        x_digest = None;
        x_total = None;
        x_cycles = backoff;
        x_instrs = 0;
        x_wall_ns = 0;
        x_retries = tries;
      }
  in
  go ~faults:rq.rq_faults ~tries:0 ~backoff:0.0

(* ---- responses ---- *)

let respond ?digest ?total ?error ?(cached = false) ?(coalesced = false)
    ?(queue = 0.0) ?(exec = 0.0) ?(retries = 0) ?key ~id cls =
  let open Json in
  let f = Printf.sprintf "%.17g" in
  Obj
    ([ "id", Num (float_of_int id); "class", Str cls;
       "code", Num (float_of_int (class_code cls)) ]
    @ (match key with Some k -> [ "plan_key", Str k ] | None -> [])
    @ [ "cached", Bool cached ]
    @ (if coalesced then [ "coalesced", Bool true ] else [])
    @ (match digest with Some d -> [ "digest", Str d ] | None -> [])
    @ (match total with Some v -> [ "total", Str (f v) ] | None -> [])
    @ [
        "queue_cycles", Num queue;
        "exec_cycles", Num exec;
        "latency_cycles", Num (queue +. exec);
        "retries", Num (float_of_int retries);
      ]
    @ match error with Some m -> [ "error", Str m ] | None -> [])

(* Arrival model: by default the client is closed-loop — a request
   arrives no earlier than the next worker becomes free, so a healthy
   stream never sheds. A request carrying ["burst": true] arrives at
   the *same* virtual instant as the previous one, which is how
   overload is expressed: burst past [workers] + [queue_cap] and the
   tail sheds deterministically. *)
let arrival_of t j =
  if Json.bool_field "burst" j = Some true then t.vnow
  else begin
    let free = Array.fold_left Float.min t.pool.(0) t.pool in
    let a = Float.max t.vnow free in
    t.vnow <- a +. t.cfg.arrival_gap;
    a
  end

(** Admit, execute and classify one already-parsed request. Never
    raises. *)
let submit t j =
  t.submitted <- t.submitted + 1;
  let arrival = arrival_of t j in
  let id = Option.value (Json.int_field "id" j) ~default:t.submitted in
  match
    request_of_json ~default_watchdog_ms:t.cfg.watchdog_ms j
  with
  | exception Invalid m ->
    count_class t "invalid";
    respond ~id ~error:m "invalid"
  | exception e ->
    let cls, m = classify_exn e in
    count_class t cls;
    respond ~id ~error:m cls
  | rq -> (
    let key = plan_key rq in
    let breaker = breaker_for t key in
    if t.draining then begin
      count_class t "overloaded";
      respond ~id ~key ~error:"draining" "overloaded"
    end
    else
      (* seed-batched coalescing: a deterministic k-lane request that
         would queue behind an identical in-flight sweep rides it
         instead — one sweep serves both, no worker consumed *)
      let coalescible =
        rq.rq_seeds > 1 && rq.rq_faults = None && rq.rq_san = None
        && rq.rq_inject_nan = None
      in
      let rider =
        if coalescible then
          match Hashtbl.find_opt t.sweeps key with
          | Some sw when sw.sw_sig = exec_sig rq && arrival < sw.sw_finish
            ->
            Some sw
          | _ -> None
        else None
      in
      match rider with
      | Some sw ->
        t.coalesced <- t.coalesced + 1;
        let queue = sw.sw_finish -. arrival in
        t.latencies <- queue :: t.latencies;
        count_class t sw.sw_result.x_class;
        respond ~id ~key ~cached:true ~coalesced:true
          ?digest:sw.sw_result.x_digest ?total:sw.sw_result.x_total ~queue
          ~exec:0.0 sw.sw_result.x_class
      | None -> (
      match Breaker.admit breaker with
      | Breaker.Reject ->
        t.breaker_rejects <- t.breaker_rejects + 1;
        count_class t "breaker_open";
        respond ~id ~key ~error:"circuit breaker open" "breaker_open"
      | Breaker.Admit | Breaker.Probe -> (
        (* bounded admission: requests that would start later than
           [arrival] are queued; past the cap we shed instead *)
        let w = ref 0 in
        Array.iteri (fun i free -> if free < t.pool.(!w) then w := i) t.pool;
        let start = Float.max arrival t.pool.(!w) in
        t.starts <- List.filter (fun s -> s > arrival) t.starts;
        if start > arrival && List.length t.starts >= t.cfg.queue_cap then begin
          t.shed <- t.shed + 1;
          count_class t "overloaded";
          (* shedding is not a plan failure: the breaker is not charged *)
          respond ~id ~key ~error:"admission queue full" "overloaded"
        end
        else begin
          t.starts <- start :: t.starts;
          match
            Plan_cache.get_or_compile t.cache key ~compile:(fun () ->
                compile_plan rq)
          with
          | exception e ->
            (* a plan that cannot compile poisons its key *)
            let cls, m = classify_exn e in
            Breaker.record breaker ~ok:false;
            count_class t cls;
            respond ~id ~key ~error:m cls
          | plan, cached ->
            let r = execute t rq plan in
            t.executed <- t.executed + 1;
            t.wall_ns <- t.wall_ns + r.x_wall_ns;
            if coalescible && r.x_error = None && r.x_digest <> None then
              Hashtbl.replace t.sweeps key
                {
                  sw_sig = exec_sig rq;
                  sw_finish = start +. r.x_cycles;
                  sw_result = r;
                };
            let ok = class_code r.x_class <= 1 || r.x_class = "degraded" in
            Breaker.record breaker ~ok;
            let queue = start -. arrival in
            t.pool.(!w) <- start +. r.x_cycles;
            t.latencies <- (queue +. r.x_cycles) :: t.latencies;
            count_class t r.x_class;
            respond ~id ~key ~cached ?digest:r.x_digest ?total:r.x_total
              ?error:r.x_error ~queue ~exec:r.x_cycles ~retries:r.x_retries
              r.x_class
        end)))

(* ---- summary / drain ---- *)

let percentile p xs =
  match List.sort compare xs with
  | [] -> 0.0
  | sorted ->
    let n = List.length sorted in
    let i = min (n - 1) (int_of_float (Float.of_int n *. p)) in
    List.nth sorted i

let breaker_totals t =
  Hashtbl.fold
    (fun _ (b : Breaker.t) (tr, pr, rec_) ->
      (tr + b.Breaker.trips, pr + b.Breaker.probes, rec_ + b.Breaker.recoveries))
    t.breakers (0, 0, 0)

let summary t =
  let trips, probes, recoveries = breaker_totals t in
  let open Json in
  Obj
    [
      "event", Str "summary";
      "submitted", Num (float_of_int t.submitted);
      "executed", Num (float_of_int t.executed);
      "coalesced", Num (float_of_int t.coalesced);
      "shed", Num (float_of_int t.shed);
      "breaker_rejects", Num (float_of_int t.breaker_rejects);
      "retries", Num (float_of_int t.retries_total);
      "cache_hits", Num (float_of_int t.cache.Plan_cache.hits);
      "cache_misses", Num (float_of_int t.cache.Plan_cache.misses);
      "cache_evictions", Num (float_of_int t.cache.Plan_cache.evictions);
      "breaker_trips", Num (float_of_int trips);
      "breaker_probes", Num (float_of_int probes);
      "breaker_recoveries", Num (float_of_int recoveries);
      "p50_cycles", Num (percentile 0.50 t.latencies);
      "p95_cycles", Num (percentile 0.95 t.latencies);
      "wall_ns", Num (float_of_int t.wall_ns);
      "classes",
      Obj
        (List.sort compare t.by_class
        |> List.map (fun (c, n) -> c, Num (float_of_int n)));
    ]

(** Graceful drain: refuse new work (subsequent submissions answer
    [overloaded]/"draining") and return the final summary. The virtual
    pool needs no waiting — execution is synchronous — so draining is
    exact, not best-effort. *)
let drain t =
  t.draining <- true;
  match summary t with
  | Json.Obj fields -> Json.Obj (("event", Json.Str "drained") :: List.remove_assoc "event" fields)
  | j -> j

(** One protocol line in, one out. Control lines: [{"cmd": "stats"}]
    and [{"cmd": "drain"}]. Anything unparseable is an [invalid]
    response, not a dead connection. *)
let handle_line t line =
  let reply =
    match Json.of_string (String.trim line) with
    | Error m -> respond ~id:0 ~error:("bad JSON: " ^ m) "invalid"
    | Ok j -> (
      match Json.str_field "cmd" j with
      | Some "stats" -> summary t
      | Some "drain" | Some "shutdown" -> drain t
      | Some c -> respond ~id:0 ~error:("unknown cmd " ^ c) "invalid"
      | None -> submit t j)
  in
  Json.to_string reply
