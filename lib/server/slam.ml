(** [parad slam]: a seeded chaos client for the gradient service.

    Drives a {!Service.t} through its full protocol surface (every
    request and response passes through the JSON codec, exactly as on
    the socket) with splitmix64-drawn request mixes, and checks the
    service's robustness contract:

    - every response is classified (a [class] field with a documented
      code 0–9) — no request, however hostile, produces an unclassified
      error or kills the daemon;
    - warm-plan gradients are bit-identical to cold compiles (digest
      equality on repeat requests, and binomial-vs-monolithic equality
      across distinct plan keys);
    - overload bursts shed with structured [overloaded] responses;
    - a poisoned plan key trips its circuit breaker and, after the
      cooldown, half-opens and recovers;
    - drain is graceful: a summary is produced and late requests are
      refused with a classified response.

    Deterministic end to end: the request stream is a pure function of
    the seed and the simulator is virtual-time deterministic, so a
    failing slam replays exactly. *)

(* splitmix64, same stream construction as the checkpoint chaos soak *)
type rng = { mutable s : int64 }

let rng seed = { s = Int64.of_int (0x9e3779b9 + (seed * 0x85ebca6b)) }

let next r =
  r.s <- Int64.add r.s 0x9e3779b97f4a7c15L;
  let z = r.s in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let draw_int r bound =
  Int64.to_int (Int64.unsigned_rem (next r) (Int64.of_int bound))

let draw_bool r p =
  Int64.to_float (Int64.shift_right_logical (next r) 11)
  /. 9007199254740992.0
  < p

type report = {
  s_seed : int;
  s_requests : int;  (** protocol lines sent, control lines excluded *)
  s_responses : int;
  s_unclassified : int;  (** responses without a documented class/code *)
  s_mismatches : int;  (** warm digests that differed from cold *)
  s_shed : int;
  s_trips : int;
  s_recoveries : int;
  s_drained : bool;
  s_classes : (string * int) list;  (** class histogram, sorted *)
}

let num f j =
  match Json.num_field f j with Some v -> Some v | None -> None

(* one exchange: request object in, parsed response out *)
let call svc ~stats j =
  let line = Service.handle_line svc (Json.to_string j) in
  match Json.of_string line with
  | Error m -> failwith ("slam: server emitted unparseable JSON: " ^ m)
  | Ok r ->
    (match Json.str_field "class" r with
    | Some cls -> (
      stats := (cls, 1 + Option.value (List.assoc_opt cls !stats) ~default:0)
               :: List.remove_assoc cls !stats;
      match num "code" r with
      | Some c when c >= 0.0 && c <= 9.0 -> ()
      | _ -> failwith ("slam: response with undocumented code: " ^ line))
    | None ->
      if Json.str_field "event" r = None then
        failwith ("slam: unclassified response: " ^ line));
    r

let obj = List.filter_map (fun (k, v) -> Option.map (fun v -> k, v) v)

let req fields = Json.Obj (obj fields)

let some_num v = Some (Json.Num v)
let some_str s = Some (Json.Str s)

(** Run one slam of [trials] mixed chaos requests (plus the directed
    warm/cold, overload, breaker and drain phases — the total is
    [trials] + ~30). [log], when given, receives one line per phase. *)
let run ?(trials = 50) ?log ~seed () : report =
  let say fmt =
    Printf.ksprintf (fun m -> match log with Some f -> f m | None -> ()) fmt
  in
  let cfg =
    {
      Service.default_config with
      workers = 2;
      queue_cap = 2;
      cache_cap = 6;
      breaker_k = 2;
      breaker_cooldown = 2;
      retries = 2;
      (* wall watchdog off for determinism; virtual deadlines only *)
      watchdog_ms = None;
    }
  in
  let svc = Service.create ~cfg () in
  let stats = ref [] in
  let sent = ref 0 and responses = ref 0 in
  let unclassified = ref 0 and mismatches = ref 0 in
  let send j =
    incr sent;
    match call svc ~stats j with
    | r ->
      incr responses;
      r
    | exception Failure m ->
      incr responses;
      incr unclassified;
      say "UNCLASSIFIED: %s" m;
      Json.Obj []
  in
  let digest_of r = Json.str_field "digest" r in

  (* phase 1: warm-plan bit-identity. Cold compile, then repeats on the
     warm plan; then the binomial driver (a different plan key) must
     produce the same gradient bits as the monolithic sweep. *)
  say "phase warm/cold: digests must be bit-identical";
  let base flavor nranks =
    [ "flavor", some_str flavor; "nranks", some_num (float_of_int nranks);
      "niter", some_num 2.0 ]
  in
  let check_warm fields =
    let cold = send (req fields) in
    let warm = send (req fields) in
    (match Json.bool_field "cached" warm with
    | Some true -> ()
    | _ -> incr mismatches);
    if digest_of cold = None || digest_of cold <> digest_of warm then begin
      incr mismatches;
      say "MISMATCH: warm digest differs: %s" (Json.to_string warm)
    end;
    digest_of cold
  in
  let d_mono = check_warm (base "mpi" 2) in
  ignore (check_warm (("app", some_str "bude") :: base "omp" 1));
  let d_binom =
    check_warm (("snap_budget", some_num 2.0) :: base "mpi" 2)
  in
  if d_mono = None || d_mono <> d_binom then begin
    incr mismatches;
    say "MISMATCH: binomial digest differs from store-all"
  end;

  (* phase 2: seeded chaos mix *)
  say "phase chaos: %d seeded mixed requests" trials;
  let r = rng seed in
  for i = 1 to trials do
    let fields =
      match draw_int r 10 with
      | 0 ->
        (* plain valid request, varied shape *)
        ("niter", some_num (float_of_int (1 + draw_int r 3)))
        :: base (if draw_bool r 0.5 then "mpi" else "seq")
             (if draw_bool r 0.5 then 2 else 1)
      | 1 ->
        (* invalid flags *)
        (match draw_int r 4 with
        | 0 -> [ "flavor", some_str "cuda" ]
        | 1 -> [ "nranks", some_num 3.0 ]
        | 2 -> [ "niter", some_num (-1.0) ]
        | _ -> [ "app", some_str "lulesh"; "escale", some_num 0.0 ])
      | 2 ->
        (* recoverable fault plan: the retry path consumes the kill *)
        ("faults", some_str "kill")
        :: ("fault_seed", some_num (float_of_int (draw_int r 1000)))
        :: base "mpi" 2
      | 3 ->
        (* kill mid-run at a drawn virtual time (including mid-reverse) *)
        ("faults", some_str "kill")
        :: ("fault_at", some_num (float_of_int (draw_int r 2_000_000)))
        :: base "mpi" 2
      | 4 ->
        (* unrecoverable: blackhole → deadlock, classified code 3 *)
        ("faults", some_str "blackhole") :: base "mpi" 2
      | 5 ->
        (* NaN injection under the sanitizer, strict or degrade *)
        ("inject_nan", some_num (float_of_int (draw_int r 4)))
        :: ("sanitize", some_str (if draw_bool r 0.5 then "strict" else "on"))
        :: base "omp" 1
      | 6 ->
        (* deadline-busting horizon: a virtual budget far below the work *)
        ("deadline_cycles", some_num (float_of_int (1 + draw_int r 50_000)))
        :: ("niter", some_num 4.0) :: base "mpi" 2
      | 7 ->
        (* binomial under a drawn budget *)
        ("snap_budget", some_num (float_of_int (1 + draw_int r 3)))
        :: ("niter", some_num (float_of_int (2 + draw_int r 4)))
        :: base "mpi" 2
      | 8 ->
        (* SDC bit flip into sealed cache memory; the retry path
           consumes the fired flip so the replay is clean — on either
           app (bude exercises the single-rank envelope) *)
        let spec =
          Printf.sprintf "none:flip=0@%d@%d@%d" (draw_int r 10_000)
            (draw_int r 64)
            (draw_int r 500_000)
        in
        let tail =
          if draw_bool r 0.5 then ("app", some_str "bude") :: base "omp" 1
          else base "mpi" 2
        in
        ("faults", some_str spec) :: tail
      | _ ->
        (* SDC in-flight message corruption: non-sticky recovers by
           retransmit alone; sticky exhausts the ladder and leans on the
           request retry budget (or classifies as corrupted, code 9) *)
        let spec =
          Printf.sprintf "none:retries=3,corrupt-msg=%d@%d%s"
            (1 + draw_int r 4) (draw_int r 512)
            (if draw_bool r 0.5 then "@sticky" else "")
        in
        ("faults", some_str spec) :: base "mpi" 2
    in
    let j = req (("id", some_num (float_of_int (1000 + i))) :: fields) in
    ignore (send j)
  done;

  (* phase 3: overload burst — all arrivals at one virtual instant, 2
     workers, queue cap 2 → deterministic shedding *)
  say "phase overload: burst of 8 into workers=2 cap=2";
  for i = 1 to 8 do
    ignore
      (send
         (req
            (("id", some_num (float_of_int (2000 + i)))
            :: ("burst", Some (Json.Bool true))
            :: base "seq" 1)))
  done;

  (* phase 4: trip the breaker on one key, then watch it recover. The
     fault plan is not part of the plan key, so poisoned and clean
     requests share a breaker. *)
  say "phase breaker: trip with deadlocks, then recover";
  let hybrid = base "hybrid" 2 in
  for _ = 1 to cfg.Service.breaker_k do
    ignore (send (req (("faults", some_str "blackhole") :: hybrid)))
  done;
  let rejected = ref 0 in
  for _ = 1 to cfg.Service.breaker_cooldown do
    let r = send (req hybrid) in
    if Json.str_field "class" r = Some "breaker_open" then incr rejected
  done;
  let probe = send (req hybrid) in
  if Json.str_field "class" probe <> Some "ok" then begin
    incr unclassified;
    say "BREAKER: probe did not recover: %s" (Json.to_string probe)
  end;

  (* phase 5: graceful drain — summary out, late requests refused *)
  say "phase drain";
  let drained =
    match
      Json.of_string
        (Service.handle_line svc {|{"cmd": "drain"}|})
    with
    | Ok d -> Json.str_field "event" d = Some "drained"
    | Error _ -> false
  in
  let late = send (req (base "seq" 1)) in
  if Json.str_field "class" late <> Some "overloaded" then incr unclassified;

  let trips, _, recoveries = Service.breaker_totals svc in
  {
    s_seed = seed;
    s_requests = !sent;
    s_responses = !responses;
    s_unclassified = !unclassified;
    s_mismatches = !mismatches;
    s_shed = svc.Service.shed;
    s_trips = trips;
    s_recoveries = recoveries;
    s_drained = drained;
    s_classes = List.sort compare !stats;
  }

(** The slam passes iff nothing was unclassified, warm results matched
    cold bit-for-bit, overload shed at least once, the breaker tripped
    and recovered, and the drain was graceful. *)
let passed r =
  r.s_unclassified = 0 && r.s_mismatches = 0 && r.s_shed > 0 && r.s_trips > 0
  && r.s_recoveries > 0 && r.s_drained
