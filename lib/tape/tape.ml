(** Operator-overloading tape AD — the CoDiPack baseline of the paper's
    evaluation, with an adjoint-MPI extension (the AMPI-style libraries of
    §II).

    Instead of transforming code, the interpreter is instrumented: every
    executed float statement appends a (lhs-slot, (arg-slot, partial)...)
    entry to a per-rank Jacobian tape, memory cells carry slots in side
    arrays, and MPI operations append communication entries. The reverse
    sweep interprets the tape backwards, exchanging adjoints over the same
    (simulated) network in reversed order.

    Like CoDiPack, the baseline cannot differentiate fork/join or task
    parallelism (the interpreter rejects [Fork]/[Spawn] under
    instrumentation) — only serial and MPI codes, which is exactly the
    paper's comparison setup (CoDiPack cannot differentiate OpenMP
    LULESH).

    Costs: each recorded statement charges [tape_record], each reversed
    one [tape_reverse] — the "high serial gradient overhead" whose
    interaction with MPI scaling Fig 8 dissects. *)

open Parad_runtime
open Value

type kind = KSum | KMin | KMax

type entry =
  | Stmt of { lhs : int; args : (int * float) array }
  | Send of { peer : int; tag : int; slots : int array }
  | Recv of { peer : int; tag : int; slots : int array }
  | Allreduce of {
      kind : kind;
      in_slots : int array;
      in_vals : float array;
      out_slots : int array;
      out_vals : float array;
    }
  | Bcast of { root : int; in_slots : int array; out_slots : int array }

type t = {
  rank : int;
  mutable entries : entry array;
  mutable n : int;
  mutable next_slot : int;  (** slot 0 is the passive slot *)
  buf_slots : (int, int array) Hashtbl.t;
  activated : (int, int array) Hashtbl.t;
      (** activation-time slots of input buffers, by buffer id *)
}

let create ~rank =
  {
    rank;
    entries = Array.make 1024 (Stmt { lhs = 0; args = [||] });
    n = 0;
    next_slot = 1;
    buf_slots = Hashtbl.create 64;
    activated = Hashtbl.create 8;
  }

let length t = t.n
let slots t = t.next_slot

let push t e =
  if t.n = Array.length t.entries then begin
    let bigger = Array.make (2 * t.n) e in
    Array.blit t.entries 0 bigger 0 t.n;
    t.entries <- bigger
  end;
  t.entries.(t.n) <- e;
  t.n <- t.n + 1;
  (Sim.stats ()).Stats.tape_entries <- (Sim.stats ()).Stats.tape_entries + 1

let fresh t =
  let s = t.next_slot in
  t.next_slot <- s + 1;
  s

let buf_slots t (buf : buffer) =
  match Hashtbl.find_opt t.buf_slots buf.bid with
  | Some a -> a
  | None ->
    let a = Array.make (cells_len buf.data) 0 in
    Hashtbl.replace t.buf_slots buf.bid a;
    a

(** Mark a buffer's cells as active inputs: each gets a fresh slot, and
    the activation snapshot is kept so input adjoints can be read back
    after the reverse sweep. *)
let activate t (v : Value.t) =
  match v with
  | VPtr { buf; off = 0 } ->
    let a = buf_slots t buf in
    for i = 0 to Array.length a - 1 do
      a.(i) <- fresh t
    done;
    Hashtbl.replace t.activated buf.bid (Array.copy a)
  | _ -> error "Tape.activate: need a whole-buffer pointer"

(** The interpreter instrumentation hooks. *)
let instrument t : Interp.instrument =
  {
    Interp.record =
      (fun args ->
        if List.for_all (fun (s, _) -> s = 0) args then 0
        else begin
          Sim.charge (Sim.cost ()).Cost_model.tape_record;
          let lhs = fresh t in
          push t (Stmt { lhs; args = Array.of_list args });
          lhs
        end);
    buf_slots = (fun buf -> buf_slots t buf);
    send_hook =
      (fun ~peer ~tag ~slots -> push t (Send { peer; tag; slots }));
    recv_hook =
      (fun ~peer ~tag ~count ->
        let slots = Array.init count (fun _ -> fresh t) in
        push t (Recv { peer; tag; slots });
        slots);
    allreduce_hook =
      (fun ~kind ~ins:(in_vals, in_slots) ~outs ->
        let kind =
          match kind with `Sum -> KSum | `Min -> KMin | `Max -> KMax
        in
        let out_slots = Array.map (fun _ -> fresh t) outs in
        push t
          (Allreduce
             { kind; in_slots; in_vals; out_slots; out_vals = Array.copy outs });
        out_slots);
    bcast_hook =
      (fun ~root ~count ~slots ->
        ignore count;
        if t.rank = root then begin
          push t (Bcast { root; in_slots = slots; out_slots = slots });
          slots
        end
        else begin
          let out = Array.map (fun _ -> fresh t) slots in
          push t (Bcast { root; in_slots = [||]; out_slots = out });
          out
        end);
  }

(* ---- reverse sweep ---- *)

type sweep = { tape : t; adj : float array }

let sweep t = { tape = t; adj = Array.make t.next_slot 0.0 }

(** Seed d(loss)/d(current cell values) of a buffer. *)
let seed sw (v : Value.t) (s : float array) =
  match v with
  | VPtr { buf; off = 0 } ->
    let a = buf_slots sw.tape buf in
    Array.iteri
      (fun i x -> if a.(i) <> 0 then sw.adj.(a.(i)) <- sw.adj.(a.(i)) +. x)
      s
  | _ -> error "Tape.seed: need a whole-buffer pointer"

let seed_slot sw slot x = if slot <> 0 then sw.adj.(slot) <- sw.adj.(slot) +. x

(** Adjoints of an activated input buffer (activation-time slots). *)
let adjoint_of sw (v : Value.t) =
  match v with
  | VPtr { buf; off = 0 } -> (
    match Hashtbl.find_opt sw.tape.activated buf.bid with
    | Some slots -> Array.map (fun s -> sw.adj.(s)) slots
    | None -> error "Tape.adjoint_of: buffer was not activated")
  | _ -> error "Tape.adjoint_of: need a whole-buffer pointer"

let adj_tag_base = 2_000_000

(* temp buffer helpers for reverse communication *)
let with_temp (ctx : Interp.ctx) n f =
  let buf =
    Memory.alloc ctx.mem ~elem:Parad_ir.Ty.Float ~size:n ~kind:Parad_ir.Instr.Heap
      ~socket:(Sim.socket ())
  in
  let p = { buf; off = 0 } in
  let r = f p in
  Memory.free ctx.mem buf;
  r

(** Interpret the tape backwards, exchanging adjoints over the network in
    reversed order. Must run inside the same SPMD simulation as the
    forward sweep (each rank calls this on its own tape). *)
let reverse sw (ctx : Interp.ctx) =
  let t = sw.tape in
  let adj = sw.adj in
  let cost = Sim.cost () in
  let mpi () =
    match ctx.Interp.mpi with
    | Some m -> m
    | None -> error "tape reverse: MPI entry outside an SPMD run"
  in
  for k = t.n - 1 downto 0 do
    Sim.charge cost.Cost_model.tape_reverse;
    match t.entries.(k) with
    | Stmt { lhs; args } ->
      let d = adj.(lhs) in
      if d <> 0.0 then
        Array.iter (fun (s, p) -> if s <> 0 then adj.(s) <- adj.(s) +. (d *. p)) args
    | Send { peer; tag; slots } ->
      (* reverse of a send: receive the adjoint contribution *)
      let n = Array.length slots in
      with_temp ctx n (fun p ->
          let req =
            Mpi_state.irecv (mpi ()) ~rank:ctx.Interp.rank ~ptr:p ~count:n
              ~src:peer ~tag:(tag + adj_tag_base)
          in
          ignore (Mpi_state.wait (mpi ()) ~rank:ctx.Interp.rank ~req);
          Array.iteri
            (fun i s ->
              if s <> 0 then
                adj.(s) <- adj.(s) +. to_float (Memory.load p i))
            slots)
    | Recv { peer; tag; slots } ->
      (* reverse of a receive: send the accumulated adjoints back *)
      let n = Array.length slots in
      with_temp ctx n (fun p ->
          Array.iteri (fun i s -> Memory.store p i (VFloat adj.(s))) slots;
          let req =
            Mpi_state.isend (mpi ()) ~rank:ctx.Interp.rank ~ptr:p ~count:n
              ~dst:peer ~tag:(tag + adj_tag_base)
          in
          ignore (Mpi_state.wait (mpi ()) ~rank:ctx.Interp.rank ~req))
    | Allreduce { kind; in_slots; in_vals; out_slots; out_vals } ->
      let n = Array.length out_slots in
      with_temp ctx n (fun send_p ->
          with_temp ctx n (fun recv_p ->
              Array.iteri
                (fun i s -> Memory.store send_p i (VFloat adj.(s)))
                out_slots;
              Mpi_state.allreduce (mpi ()) ~rank:ctx.Interp.rank
                ~kind:Mpi_state.Csum ~send:send_p ~recv:recv_p ~count:n;
              for i = 0 to n - 1 do
                let w = to_float (Memory.load recv_p i) in
                match kind with
                | KSum ->
                  if in_slots.(i) <> 0 then
                    adj.(in_slots.(i)) <- adj.(in_slots.(i)) +. w
                | KMin | KMax ->
                  if in_slots.(i) <> 0 && in_vals.(i) = out_vals.(i) then
                    adj.(in_slots.(i)) <- adj.(in_slots.(i)) +. w
              done))
    | Bcast { root; in_slots; out_slots } ->
      let n = Array.length out_slots in
      with_temp ctx n (fun send_p ->
          with_temp ctx n (fun recv_p ->
              Array.iteri
                (fun i s ->
                  (* the root's own out adjoints stay local (same slots);
                     non-roots contribute theirs *)
                  Memory.store send_p i
                    (VFloat (if ctx.Interp.rank = root then 0.0 else adj.(s))))
                out_slots;
              Mpi_state.allreduce (mpi ()) ~rank:ctx.Interp.rank
                ~kind:Mpi_state.Csum ~send:send_p ~recv:recv_p ~count:n;
              if ctx.Interp.rank = root then
                for i = 0 to n - 1 do
                  if in_slots.(i) <> 0 then
                    adj.(in_slots.(i)) <-
                      adj.(in_slots.(i)) +. to_float (Memory.load recv_p i)
                done))
  done
