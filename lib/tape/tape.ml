(** Operator-overloading tape AD — the CoDiPack baseline of the paper's
    evaluation, with an adjoint-MPI extension (the AMPI-style libraries of
    §II).

    Instead of transforming code, the interpreter is instrumented: every
    executed float statement appends a (lhs-slot, (arg-slot, partial)...)
    entry to a per-rank Jacobian tape, memory cells carry slots in side
    arrays, and MPI operations append communication entries. The reverse
    sweep interprets the tape backwards, exchanging adjoints over the same
    (simulated) network in reversed order.

    Like CoDiPack, the baseline cannot differentiate fork/join or task
    parallelism (the interpreter rejects [Fork]/[Spawn] under
    instrumentation) — only serial and MPI codes, which is exactly the
    paper's comparison setup (CoDiPack cannot differentiate OpenMP
    LULESH).

    Costs: each recorded statement charges [tape_record], each reversed
    one [tape_reverse] — the "high serial gradient overhead" whose
    interaction with MPI scaling Fig 8 dissects. *)

open Parad_runtime
open Value

type kind = KSum | KMin | KMax

type entry =
  | Stmt of { lhs : int; args : (int * float) array }
  | Send of { peer : int; tag : int; slots : int array }
  | Recv of { peer : int; tag : int; slots : int array }
  | Allreduce of {
      kind : kind;
      in_slots : int array;
      in_vals : float array;
      out_slots : int array;
      out_vals : float array;
    }
  | Bcast of { root : int; in_slots : int array; out_slots : int array }

type t = {
  rank : int;
  mutable entries : entry array;
  mutable n : int;
  mutable next_slot : int;  (** slot 0 is the passive slot *)
  buf_slots : (int, int array) Hashtbl.t;
  activated : (int, int array) Hashtbl.t;
      (** activation-time slots of input buffers, by buffer id *)
}

let create ~rank =
  {
    rank;
    entries = Array.make 1024 (Stmt { lhs = 0; args = [||] });
    n = 0;
    next_slot = 1;
    buf_slots = Hashtbl.create 64;
    activated = Hashtbl.create 8;
  }

let length t = t.n
let slots t = t.next_slot

let push t e =
  if t.n = Array.length t.entries then begin
    let bigger = Array.make (2 * t.n) e in
    Array.blit t.entries 0 bigger 0 t.n;
    t.entries <- bigger
  end;
  t.entries.(t.n) <- e;
  t.n <- t.n + 1;
  (Sim.stats ()).Stats.tape_entries <- (Sim.stats ()).Stats.tape_entries + 1

let fresh t =
  let s = t.next_slot in
  t.next_slot <- s + 1;
  s

let buf_slots t (buf : buffer) =
  match Hashtbl.find_opt t.buf_slots buf.bid with
  | Some a -> a
  | None ->
    let a = Array.make (cells_len buf.data) 0 in
    Hashtbl.replace t.buf_slots buf.bid a;
    a

(** Mark a buffer's cells as active inputs: each gets a fresh slot, and
    the activation snapshot is kept so input adjoints can be read back
    after the reverse sweep. *)
let activate t (v : Value.t) =
  match v with
  | VPtr { buf; off = 0 } ->
    let a = buf_slots t buf in
    for i = 0 to Array.length a - 1 do
      a.(i) <- fresh t
    done;
    Hashtbl.replace t.activated buf.bid (Array.copy a)
  | _ -> error "Tape.activate: need a whole-buffer pointer"

(** The interpreter instrumentation hooks. *)
let instrument t : Interp.instrument =
  {
    Interp.record =
      (fun args ->
        if List.for_all (fun (s, _) -> s = 0) args then 0
        else begin
          Sim.charge (Sim.cost ()).Cost_model.tape_record;
          let lhs = fresh t in
          push t (Stmt { lhs; args = Array.of_list args });
          lhs
        end);
    buf_slots = (fun buf -> buf_slots t buf);
    send_hook =
      (fun ~peer ~tag ~slots -> push t (Send { peer; tag; slots }));
    recv_hook =
      (fun ~peer ~tag ~count ->
        let slots = Array.init count (fun _ -> fresh t) in
        push t (Recv { peer; tag; slots });
        slots);
    allreduce_hook =
      (fun ~kind ~ins:(in_vals, in_slots) ~outs ->
        let kind =
          match kind with `Sum -> KSum | `Min -> KMin | `Max -> KMax
        in
        let out_slots = Array.map (fun _ -> fresh t) outs in
        push t
          (Allreduce
             { kind; in_slots; in_vals; out_slots; out_vals = Array.copy outs });
        out_slots);
    bcast_hook =
      (fun ~root ~count ~slots ->
        ignore count;
        if t.rank = root then begin
          push t (Bcast { root; in_slots = slots; out_slots = slots });
          slots
        end
        else begin
          let out = Array.map (fun _ -> fresh t) slots in
          push t (Bcast { root; in_slots = [||]; out_slots = out });
          out
        end);
  }

(* ---- reverse sweep ---- *)

type sweep = { tape : t; adj : float array }

let sweep t = { tape = t; adj = Array.make t.next_slot 0.0 }

(** Seed d(loss)/d(current cell values) of a buffer. *)
let seed sw (v : Value.t) (s : float array) =
  match v with
  | VPtr { buf; off = 0 } ->
    let a = buf_slots sw.tape buf in
    Array.iteri
      (fun i x -> if a.(i) <> 0 then sw.adj.(a.(i)) <- sw.adj.(a.(i)) +. x)
      s
  | _ -> error "Tape.seed: need a whole-buffer pointer"

let seed_slot sw slot x = if slot <> 0 then sw.adj.(slot) <- sw.adj.(slot) +. x

(** Adjoints of an activated input buffer (activation-time slots). *)
let adjoint_of sw (v : Value.t) =
  match v with
  | VPtr { buf; off = 0 } -> (
    match Hashtbl.find_opt sw.tape.activated buf.bid with
    | Some slots -> Array.map (fun s -> sw.adj.(s)) slots
    | None -> error "Tape.adjoint_of: buffer was not activated")
  | _ -> error "Tape.adjoint_of: need a whole-buffer pointer"

let adj_tag_base = 2_000_000

(* temp buffer helpers for reverse communication *)
let with_temp (ctx : Interp.ctx) n f =
  let buf =
    Memory.alloc ctx.mem ~elem:Parad_ir.Ty.Float ~size:n ~kind:Parad_ir.Instr.Heap
      ~socket:(Sim.socket ())
  in
  let p = { buf; off = 0 } in
  let r = f p in
  Memory.free ctx.mem buf;
  r

let mpi_of (ctx : Interp.ctx) =
  match ctx.Interp.mpi with
  | Some m -> m
  | None -> error "tape reverse: MPI entry outside an SPMD run"

(* Reverse one communication entry: the network part of the sweep,
   shared by the entry-interpreting sweep and the lowered program.
   [Stmt] entries never reach it. *)
let reverse_comm adj (ctx : Interp.ctx) entry =
  let mpi () = mpi_of ctx in
  match entry with
  | Stmt _ -> assert false
  | Send { peer; tag; slots } ->
      (* reverse of a send: receive the adjoint contribution *)
      let n = Array.length slots in
      with_temp ctx n (fun p ->
          let req =
            Mpi_state.irecv (mpi ()) ~rank:ctx.Interp.rank ~ptr:p ~count:n
              ~src:peer ~tag:(tag + adj_tag_base)
          in
          ignore (Mpi_state.wait (mpi ()) ~rank:ctx.Interp.rank ~req);
          Array.iteri
            (fun i s ->
              if s <> 0 then
                adj.(s) <- adj.(s) +. to_float (Memory.load p i))
            slots)
  | Recv { peer; tag; slots } ->
      (* reverse of a receive: send the accumulated adjoints back *)
      let n = Array.length slots in
      with_temp ctx n (fun p ->
          Array.iteri (fun i s -> Memory.store p i (VFloat adj.(s))) slots;
          let req =
            Mpi_state.isend (mpi ()) ~rank:ctx.Interp.rank ~ptr:p ~count:n
              ~dst:peer ~tag:(tag + adj_tag_base)
          in
          ignore (Mpi_state.wait (mpi ()) ~rank:ctx.Interp.rank ~req))
  | Allreduce { kind; in_slots; in_vals; out_slots; out_vals } ->
      let n = Array.length out_slots in
      with_temp ctx n (fun send_p ->
          with_temp ctx n (fun recv_p ->
              Array.iteri
                (fun i s -> Memory.store send_p i (VFloat adj.(s)))
                out_slots;
              Mpi_state.allreduce (mpi ()) ~rank:ctx.Interp.rank
                ~kind:Mpi_state.Csum ~send:send_p ~recv:recv_p ~count:n;
              for i = 0 to n - 1 do
                let w = to_float (Memory.load recv_p i) in
                match kind with
                | KSum ->
                  if in_slots.(i) <> 0 then
                    adj.(in_slots.(i)) <- adj.(in_slots.(i)) +. w
                | KMin | KMax ->
                  if in_slots.(i) <> 0 && in_vals.(i) = out_vals.(i) then
                    adj.(in_slots.(i)) <- adj.(in_slots.(i)) +. w
              done))
  | Bcast { root; in_slots; out_slots } ->
      let n = Array.length out_slots in
      with_temp ctx n (fun send_p ->
          with_temp ctx n (fun recv_p ->
              Array.iteri
                (fun i s ->
                  (* the root's own out adjoints stay local (same slots);
                     non-roots contribute theirs *)
                  Memory.store send_p i
                    (VFloat (if ctx.Interp.rank = root then 0.0 else adj.(s))))
                out_slots;
              Mpi_state.allreduce (mpi ()) ~rank:ctx.Interp.rank
                ~kind:Mpi_state.Csum ~send:send_p ~recv:recv_p ~count:n;
              if ctx.Interp.rank = root then
                for i = 0 to n - 1 do
                  if in_slots.(i) <> 0 then
                    adj.(in_slots.(i)) <-
                      adj.(in_slots.(i)) +. to_float (Memory.load recv_p i)
                done))

(** Interpret the tape backwards, exchanging adjoints over the network in
    reversed order. Must run inside the same SPMD simulation as the
    forward sweep (each rank calls this on its own tape). *)
let reverse sw (ctx : Interp.ctx) =
  let t = sw.tape in
  let adj = sw.adj in
  let cost = Sim.cost () in
  for k = t.n - 1 downto 0 do
    Sim.charge cost.Cost_model.tape_reverse;
    match t.entries.(k) with
    | Stmt { lhs; args } ->
      let d = adj.(lhs) in
      if d <> 0.0 then
        Array.iter
          (fun (s, p) -> if s <> 0 then adj.(s) <- adj.(s) +. (d *. p))
          args
    | e -> reverse_comm adj ctx e
  done

(* ---- lowered adjoint program ----

   [lower] linearizes the tape once into a structure-of-arrays program:
   runs of consecutive [Stmt] entries become one flat segment (lhs
   column, CSR-style argument offsets, slot and partial columns) and
   each communication entry stays a program step of its own. The
   reverse sweep over a segment is then a tight loop over unboxed int
   and float arrays — no constructor matching, no per-entry tuple
   chasing — which is what an engine-compiled reverse sweep executes.

   The lowered sweep charges [tape_reverse] per original entry inside
   the segment loop, so its makespan is identical (to the last bit) to
   the entry-interpreting sweep, and the adjoint arithmetic is the same
   operations in the same order — FNV-identical gradients. *)

type lop =
  | LRun of {
      count : int;  (** rows (original [Stmt] entries), oldest first *)
      lhs : int array;
      off : int array;  (** row [r]'s args live at \[off r, off (r+1)) *)
      aslot : int array;
      ap : float array;
    }
  | LComm of entry

type lowered = lop array

let lower t : lowered =
  let ops = ref [] in
  let k = ref 0 in
  while !k < t.n do
    match t.entries.(!k) with
    | Stmt _ ->
      let start = !k in
      let nargs = ref 0 in
      while
        !k < t.n
        && match t.entries.(!k) with
           | Stmt { args; _ } ->
             nargs := !nargs + Array.length args;
             true
           | _ -> false
      do
        incr k
      done;
      let count = !k - start in
      let lhs = Array.make count 0
      and off = Array.make (count + 1) 0
      and aslot = Array.make (max !nargs 1) 0
      and ap = Array.make (max !nargs 1) 0.0 in
      let w = ref 0 in
      for r = 0 to count - 1 do
        match t.entries.(start + r) with
        | Stmt { lhs = l; args } ->
          lhs.(r) <- l;
          off.(r) <- !w;
          Array.iter
            (fun (s, p) ->
              aslot.(!w) <- s;
              ap.(!w) <- p;
              incr w)
            args
        | _ -> assert false
      done;
      off.(count) <- !w;
      ops := LRun { count; lhs; off; aslot; ap } :: !ops
    | e ->
      ops := LComm e :: !ops;
      incr k
  done;
  (* built newest-first: already the reverse execution order *)
  Array.of_list !ops

(** Run the reverse sweep through the lowered program. Interchangeable
    with {!reverse}: same adjoints bit for bit, same makespan. *)
let reverse_lowered sw (ctx : Interp.ctx) =
  let prog = lower sw.tape in
  let adj = sw.adj in
  let cost = Sim.cost () in
  let c_rev = cost.Cost_model.tape_reverse in
  Array.iter
    (function
      | LComm e ->
        Sim.charge c_rev;
        reverse_comm adj ctx e
      | LRun { count; lhs; off; aslot; ap } ->
        for r = count - 1 downto 0 do
          Sim.charge c_rev;
          let d = Array.unsafe_get adj (Array.unsafe_get lhs r) in
          if d <> 0.0 then
            for a = Array.unsafe_get off r to Array.unsafe_get off (r + 1) - 1
            do
              let s = Array.unsafe_get aslot a in
              if s <> 0 then
                Array.unsafe_set adj s
                  (Array.unsafe_get adj s +. (d *. Array.unsafe_get ap a))
            done
        done)
    prog

(* ---- batched multi-seed sweeps ----

   One reverse pass propagating [width] independent seed vectors at
   once through slot-major adjoint planes ([badj.(s * width + lane)]).
   Each lane's arithmetic is the scalar sweep's, in the scalar sweep's
   order — lane [l] is bit-identical to a standalone {!reverse} seeded
   with lane [l]'s seeds — but the tape walk, the partials, and the
   communication latency are paid once instead of [width] times. Each
   entry charges one [tape_reverse] regardless of width: the virtual
   cost model agrees with the host-time amortization. All ranks of an
   SPMD run must use the same [width]. *)

type bsweep = { btape : t; width : int; badj : float array }

let sweep_batched ~width t =
  if width < 1 then error "Tape.sweep_batched: width must be >= 1";
  { btape = t; width; badj = Array.make (t.next_slot * width) 0.0 }

(** Seed lane [lane] with d(loss_lane)/d(current cell values). *)
let seed_batched bsw ~lane (v : Value.t) (s : float array) =
  match v with
  | VPtr { buf; off = 0 } ->
    let a = buf_slots bsw.btape buf
    and w = bsw.width in
    Array.iteri
      (fun i x ->
        if a.(i) <> 0 then
          bsw.badj.((a.(i) * w) + lane) <- bsw.badj.((a.(i) * w) + lane) +. x)
      s
  | _ -> error "Tape.seed_batched: need a whole-buffer pointer"

let seed_slot_batched bsw ~lane slot x =
  if slot <> 0 then
    bsw.badj.((slot * bsw.width) + lane) <-
      bsw.badj.((slot * bsw.width) + lane) +. x

(** Lane [lane]'s adjoints of an activated input buffer. *)
let adjoint_of_batched bsw ~lane (v : Value.t) =
  match v with
  | VPtr { buf; off = 0 } -> (
    match Hashtbl.find_opt bsw.btape.activated buf.bid with
    | Some slots ->
      Array.map (fun s -> bsw.badj.((s * bsw.width) + lane)) slots
    | None -> error "Tape.adjoint_of_batched: buffer was not activated")
  | _ -> error "Tape.adjoint_of_batched: need a whole-buffer pointer"

(* Reverse one communication entry k-wide: one exchange of [n * width]
   cells, lane-major within each slot, standing in for [width] scalar
   exchanges. *)
let reverse_comm_batched badj width (ctx : Interp.ctx) entry =
  let mpi () = mpi_of ctx in
  let w = width in
  match entry with
  | Stmt _ -> assert false
  | Send { peer; tag; slots } ->
    let n = Array.length slots in
    with_temp ctx (n * w) (fun p ->
        let req =
          Mpi_state.irecv (mpi ()) ~rank:ctx.Interp.rank ~ptr:p ~count:(n * w)
            ~src:peer ~tag:(tag + adj_tag_base)
        in
        ignore (Mpi_state.wait (mpi ()) ~rank:ctx.Interp.rank ~req);
        Array.iteri
          (fun i s ->
            if s <> 0 then
              for l = 0 to w - 1 do
                badj.((s * w) + l) <-
                  badj.((s * w) + l) +. to_float (Memory.load p ((i * w) + l))
              done)
          slots)
  | Recv { peer; tag; slots } ->
    let n = Array.length slots in
    with_temp ctx (n * w) (fun p ->
        Array.iteri
          (fun i s ->
            for l = 0 to w - 1 do
              Memory.store p ((i * w) + l) (VFloat badj.((s * w) + l))
            done)
          slots;
        let req =
          Mpi_state.isend (mpi ()) ~rank:ctx.Interp.rank ~ptr:p ~count:(n * w)
            ~dst:peer ~tag:(tag + adj_tag_base)
        in
        ignore (Mpi_state.wait (mpi ()) ~rank:ctx.Interp.rank ~req))
  | Allreduce { kind; in_slots; in_vals; out_slots; out_vals } ->
    let n = Array.length out_slots in
    with_temp ctx (n * w) (fun send_p ->
        with_temp ctx (n * w) (fun recv_p ->
            Array.iteri
              (fun i s ->
                for l = 0 to w - 1 do
                  Memory.store send_p ((i * w) + l) (VFloat badj.((s * w) + l))
                done)
              out_slots;
            Mpi_state.allreduce (mpi ()) ~rank:ctx.Interp.rank
              ~kind:Mpi_state.Csum ~send:send_p ~recv:recv_p ~count:(n * w);
            for i = 0 to n - 1 do
              match kind with
              | KSum ->
                if in_slots.(i) <> 0 then
                  for l = 0 to w - 1 do
                    badj.((in_slots.(i) * w) + l) <-
                      badj.((in_slots.(i) * w) + l)
                      +. to_float (Memory.load recv_p ((i * w) + l))
                  done
              | KMin | KMax ->
                if in_slots.(i) <> 0 && in_vals.(i) = out_vals.(i) then
                  for l = 0 to w - 1 do
                    badj.((in_slots.(i) * w) + l) <-
                      badj.((in_slots.(i) * w) + l)
                      +. to_float (Memory.load recv_p ((i * w) + l))
                  done
            done))
  | Bcast { root; in_slots; out_slots } ->
    let n = Array.length out_slots in
    with_temp ctx (n * w) (fun send_p ->
        with_temp ctx (n * w) (fun recv_p ->
            Array.iteri
              (fun i s ->
                for l = 0 to w - 1 do
                  Memory.store send_p ((i * w) + l)
                    (VFloat
                       (if ctx.Interp.rank = root then 0.0
                        else badj.((s * w) + l)))
                done)
              out_slots;
            Mpi_state.allreduce (mpi ()) ~rank:ctx.Interp.rank
              ~kind:Mpi_state.Csum ~send:send_p ~recv:recv_p ~count:(n * w);
            if ctx.Interp.rank = root then
              for i = 0 to n - 1 do
                if in_slots.(i) <> 0 then
                  for l = 0 to w - 1 do
                    badj.((in_slots.(i) * w) + l) <-
                      badj.((in_slots.(i) * w) + l)
                      +. to_float (Memory.load recv_p ((i * w) + l))
                  done
              done))

(** One batched reverse sweep through the lowered program: [width]
    seed vectors for one tape walk. *)
let reverse_batched bsw (ctx : Interp.ctx) =
  let prog = lower bsw.btape in
  let badj = bsw.badj
  and w = bsw.width in
  let cost = Sim.cost () in
  let c_rev = cost.Cost_model.tape_reverse in
  Array.iter
    (function
      | LComm e ->
        Sim.charge c_rev;
        reverse_comm_batched badj w ctx e
      | LRun { count; lhs; off; aslot; ap } ->
        for r = count - 1 downto 0 do
          Sim.charge c_rev;
          let base = Array.unsafe_get lhs r * w in
          for l = 0 to w - 1 do
            let d = Array.unsafe_get badj (base + l) in
            if d <> 0.0 then
              for
                a = Array.unsafe_get off r to Array.unsafe_get off (r + 1) - 1
              do
                let s = Array.unsafe_get aslot a in
                if s <> 0 then begin
                  let j = (s * w) + l in
                  Array.unsafe_set badj j
                    (Array.unsafe_get badj j +. (d *. Array.unsafe_get ap a))
                end
              done
          done
        done)
    prog
