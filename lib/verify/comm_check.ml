(** Post-run communication audit (MUST-style MPI correctness checking).

    After an SPMD execution — successful or deadlocked — the
    {!Parad_runtime.Mpi_state.t} retains every channel queue, request
    table and collective slot. [audit] sweeps them for the silent
    communication errors a real MPI checker reports: sends that no
    receive ever matched, receives that no send ever matched, requests
    that were never waited on (their completion was never observed, so
    the adjoint-MPI rules could not fire), collectives some rank never
    joined, ranks whose collective call counts diverge, and messages lost
    by fault injection. Issues are sorted, so the rendered report is
    deterministic and byte-identical across reruns. *)

open Parad_runtime

type issue =
  | Unmatched_send of { src : int; dst : int; tag : int; msgs : int }
      (** messages still queued on a channel: sent, never received *)
  | Unmatched_recv of { src : int; dst : int; tag : int; recvs : int }
      (** posted receives that never matched a send *)
  | Unwaited_request of { rank : int; req : int; kind : string }
      (** isend/irecv whose completion was never waited on *)
  | Incomplete_collective of {
      seq : int;
      kind : string;
      arrived : int;
      expected : int;
      missing : int list;
    }
  | Collective_skew of {
      min_rank : int;
      min_calls : int;
      max_rank : int;
      max_calls : int;
    }  (** ranks disagree on how many collectives they joined *)
  | Lost_message of {
      src : int;
      dst : int;
      tag : int;
      attempts : int;
      time : float;
    }  (** sender gave up after fault-injected drops *)
  | Unmatched_packed of { src : int; dst : int; chunks : (int * int) list }
      (** a packed adjoint message still queued, decoded back to its
          originating exchanges as (adjoint tag, cell count) pairs *)
  | Residual_staged of { rank : int; dst : int; chunks : (int * int) list }
      (** adjoint chunks staged for [dst] that no flush ever sent *)
  | Unfulfilled_expectation of {
      rank : int;
      src : int;
      tag : int;
      count : int;
    }  (** a registered adjoint expectation no packed chunk ever met *)
  | Orphan_chunk of { rank : int; src : int; tag : int; count : int }
      (** an unpacked adjoint chunk no expectation ever claimed *)

(* Name a coalesced chunk by the forward exchange it answers: adjoint
   traffic runs on the forward tag shifted by 1_000_000 (see
   Interp's mpi.adj_* intrinsics), so the originating tag is recoverable
   from the packed header alone. *)
let pp_origin (tag, count) =
  if tag >= 1_000_000 then
    Printf.sprintf "adjoint of tag %d (%d cells)" (tag - 1_000_000) count
  else Printf.sprintf "tag %d (%d cells)" tag count

let pp_issue ppf = function
  | Unmatched_send { src; dst; tag; msgs } ->
    Format.fprintf ppf
      "unmatched send: %d message(s) from rank %d to rank %d tag %d never \
       received"
      msgs src dst tag
  | Unmatched_recv { src; dst; tag; recvs } ->
    Format.fprintf ppf
      "unmatched recv: rank %d posted %d receive(s) from rank %d tag %d \
       that no send matched"
      dst recvs src tag
  | Unwaited_request { rank; req; kind } ->
    Format.fprintf ppf "unwaited request: rank %d never waited on %s \
                        request %d"
      rank kind req
  | Incomplete_collective { seq; kind; arrived; expected; missing } ->
    Format.fprintf ppf
      "incomplete collective: #%d %s reached %d/%d ranks, missing [%s]" seq
      kind arrived expected
      (String.concat "; " (List.map string_of_int missing))
  | Collective_skew { min_rank; min_calls; max_rank; max_calls } ->
    Format.fprintf ppf
      "collective skew: rank %d joined %d collective(s) but rank %d joined \
       %d"
      min_rank min_calls max_rank max_calls
  | Lost_message { src; dst; tag; attempts; time } ->
    Format.fprintf ppf
      "lost message: rank %d -> rank %d tag %d abandoned after %d \
       attempt(s) (sent at t=%.6g)%s"
      src dst tag attempts time
      (if tag = Mpi_state.packed_tag then " [packed adjoint]" else "")
  | Unmatched_packed { src; dst; chunks } ->
    Format.fprintf ppf
      "unmatched packed adjoint message: rank %d -> rank %d carrying %d \
       chunk(s) [%s] never received"
      src dst (List.length chunks)
      (String.concat "; " (List.map pp_origin chunks))
  | Residual_staged { rank; dst; chunks } ->
    Format.fprintf ppf
      "residual staged adjoints: rank %d still holds %d chunk(s) [%s] for \
       rank %d that were never flushed"
      rank (List.length chunks)
      (String.concat "; " (List.map pp_origin chunks))
      dst
  | Unfulfilled_expectation { rank; src; tag; count } ->
    Format.fprintf ppf
      "unfulfilled adjoint expectation: rank %d still waits on %s from \
       rank %d"
      rank (pp_origin (tag, count)) src
  | Orphan_chunk { rank; src; tag; count } ->
    Format.fprintf ppf
      "orphan adjoint chunk: rank %d unpacked %s from rank %d that no \
       expectation claimed"
      rank (pp_origin (tag, count)) src

(** Sweep a finished (or deadlocked) run's MPI state for communication
    errors. The result is sorted and deterministic. *)
let audit (m : Mpi_state.t) : issue list =
  let channel_issues =
    Hashtbl.fold
      (fun (src, dst, tag) (ch : Mpi_state.channel) acc ->
        let acc =
          if Queue.is_empty ch.Mpi_state.msgs then acc
          else if tag = Mpi_state.packed_tag then
            (* decode each leftover packed message back to the forward
               exchanges whose adjoints it carries, so the report names
               what actually went missing *)
            Queue.fold
              (fun acc msg ->
                Unmatched_packed
                  { src; dst; chunks = Mpi_state.decode_packed msg }
                :: acc)
              acc ch.Mpi_state.msgs
          else
            Unmatched_send
              { src; dst; tag; msgs = Queue.length ch.Mpi_state.msgs }
            :: acc
        in
        if Queue.is_empty ch.Mpi_state.recvs then acc
        else
          Unmatched_recv
            { src; dst; tag; recvs = Queue.length ch.Mpi_state.recvs }
          :: acc)
      m.Mpi_state.channels []
    |> List.sort compare
  in
  let request_issues =
    Array.to_list m.Mpi_state.ranks
    |> List.mapi (fun rank (rs : Mpi_state.rank_state) ->
           Hashtbl.fold
             (fun req r acc ->
               let kind =
                 match r with
                 | Mpi_state.RSend -> "isend"
                 | Mpi_state.RRecv _ -> "irecv"
               in
               Unwaited_request { rank; req; kind } :: acc)
             rs.Mpi_state.reqs []
           |> List.sort compare)
    |> List.concat
  in
  let coll_issues =
    Hashtbl.fold
      (fun seq (s : Mpi_state.coll_slot) acc ->
        if s.Mpi_state.carrived >= m.Mpi_state.nranks then acc
        else
          let missing = ref [] in
          for r = m.Mpi_state.nranks - 1 downto 0 do
            if not s.Mpi_state.cwho.(r) then missing := r :: !missing
          done;
          Incomplete_collective
            {
              seq;
              kind = Mpi_state.coll_kind_name s.Mpi_state.kind;
              arrived = s.Mpi_state.carrived;
              expected = m.Mpi_state.nranks;
              missing = !missing;
            }
          :: acc)
      m.Mpi_state.colls []
    |> List.sort compare
  in
  let skew_issues =
    if m.Mpi_state.nranks < 2 then []
    else begin
      let calls r = m.Mpi_state.ranks.(r).Mpi_state.coll_seq in
      let mini = ref 0 and maxi = ref 0 in
      for r = 1 to m.Mpi_state.nranks - 1 do
        if calls r < calls !mini then mini := r;
        if calls r > calls !maxi then maxi := r
      done;
      if calls !mini = calls !maxi then []
      else
        [
          Collective_skew
            {
              min_rank = !mini;
              min_calls = calls !mini;
              max_rank = !maxi;
              max_calls = calls !maxi;
            };
        ]
    end
  in
  let lost_issues =
    match m.Mpi_state.faults with
    | None -> []
    | Some fs ->
      List.map
        (fun (l : Faults.lost) ->
          Lost_message
            {
              src = l.Faults.l_src;
              dst = l.Faults.l_dst;
              tag = l.Faults.l_tag;
              attempts = l.Faults.l_attempts;
              time = l.Faults.l_time;
            })
        (Faults.lost fs)
  in
  let adj_issues =
    List.init m.Mpi_state.nranks (fun rank ->
        let staged =
          List.map
            (fun (dst, chunks) ->
              Residual_staged
                {
                  rank;
                  dst;
                  chunks =
                    List.map
                      (fun (c : Mpi_state.adj_chunk) ->
                        c.Mpi_state.ck_tag, c.Mpi_state.ck_count)
                      chunks;
                })
            (Mpi_state.export_staged m ~rank)
        in
        let exps =
          List.map
            (fun (e : Mpi_state.adj_exp) ->
              Unfulfilled_expectation
                {
                  rank;
                  src = e.Mpi_state.ex_src;
                  tag = e.Mpi_state.ex_tag;
                  count = e.Mpi_state.ex_count;
                })
            (Mpi_state.export_unfulfilled m ~rank)
        in
        let orphans =
          List.map
            (fun (src, (c : Mpi_state.adj_chunk)) ->
              Orphan_chunk
                {
                  rank;
                  src;
                  tag = c.Mpi_state.ck_tag;
                  count = c.Mpi_state.ck_count;
                })
            (Mpi_state.export_orphans m ~rank)
        in
        List.sort compare (staged @ exps @ orphans))
    |> List.concat
  in
  channel_issues @ request_issues @ coll_issues @ skew_issues @ adj_issues
  @ lost_issues

(** Render an audit as one string; ["communication clean"] when empty. *)
let report (issues : issue list) =
  match issues with
  | [] -> "communication clean"
  | _ ->
    Format.asprintf "%d communication issue(s):%a" (List.length issues)
      (fun ppf ->
        List.iter (fun i -> Format.fprintf ppf "@\n  %a" pp_issue i))
      issues
