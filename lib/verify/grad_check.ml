(** Gradient verification (paper §VII).

    The paper's "fast mode" check compares a single projection of the
    Jacobian computed three ways: reverse mode with all output shadows
    seeded, forward perturbation of all inputs at once, and finite
    differences. For small problems we also check the full per-coordinate
    gradient against central differences.

    Loss convention: for a function with arguments
    [buffers..., ints..., scalars...] and per-pointer-argument seed
    vectors s_p (default ones) plus a return seed r,

    {v loss = r * ret + sum_p sum_j s_p[j] * p_final[j] v}

    Reverse mode computes d(loss)/d(inputs): buffer shadows are seeded
    with s_p and hold d(loss)/d(p_initial[j]) on exit; scalar argument
    adjoints land in the gradient function's [d_args] buffer. *)

open Parad_ir
open Parad_runtime
module V = Value

type arg =
  | ABuf of float array
  | AHidden of float array
      (** a buffer that participates in activation/seeding but is not
          itself an argument (it is reached through an [ATable]) *)
  | ATable of int list
      (** a pointer-table (kernel-parameter struct) argument whose cells
          point at the [ABuf]/[AHidden] buffers with those indices *)
  | AIntBuf of int array
  | AInt of int
  | AScalar of float

type gradient = {
  primal : float;  (** primal return (0.0 for unit returns) *)
  d_bufs : float array list;  (** adjoint per [ABuf] argument, in order *)
  d_scalars : float array;  (** adjoints of [AScalar] arguments, in order *)
  makespan : float;
  stats : Stats.t;
}

let ret_float (f : Func.t) = Ty.equal f.ret_ty Ty.Float

let scalar_count args =
  List.length (List.filter (function AScalar _ -> true | _ -> false) args)

let default_seeds args =
  List.filter_map
    (function
      | ABuf a | AHidden a -> Some (Array.make (Array.length a) 1.0)
      | _ -> None)
    args

(* Build interpreter values for [args]; returns the argument values plus
   the float buffers in ABuf/AHidden occurrence order (hidden buffers
   produce no argument value). *)
let build_args (ctx : Interp.ctx) args =
  let bufs = ref [] in
  let nth_buf i =
    match List.nth_opt (List.rev !bufs) i with
    | Some v -> v
    | None -> invalid_arg "ATable index out of range"
  in
  let vals =
    List.filter_map
      (function
        | ABuf a ->
          let v = Exec.floats ctx a in
          bufs := v :: !bufs;
          Some v
        | AHidden a ->
          bufs := Exec.floats ctx a :: !bufs;
          None
        | ATable idxs -> Some (Exec.ptr_table ctx (List.map nth_buf idxs))
        | AIntBuf a -> Some (Exec.ints ctx a)
        | AInt i -> Some (V.VInt i)
        | AScalar x -> Some (V.VFloat x))
      args
  in
  vals, List.rev !bufs

(** Run the primal; returns (return value, final buffer contents, result
    record). *)
let run_primal ?(cfg = Interp.default_config) prog fname args =
  let f = Prog.find_exn prog fname in
  let finals = ref [] in
  let res =
    Exec.run ~cfg prog ~fname ~setup:(fun ctx ->
        let vals, bufs = build_args ctx args in
        finals := bufs;
        vals)
  in
  let ret = if ret_float f then V.to_float res.Exec.values.(0) else 0.0 in
  ret, List.map Exec.to_floats !finals, res

(** The scalar loss described in the module docstring. *)
let loss ?(cfg = Interp.default_config) ?seeds ?(d_ret = 1.0) prog fname args =
  let f = Prog.find_exn prog fname in
  let seeds = match seeds with Some s -> s | None -> default_seeds args in
  let finals = ref [] in
  let res =
    Exec.run ~cfg prog ~fname ~setup:(fun ctx ->
        let vals, bufs = build_args ctx args in
        finals := bufs;
        vals)
  in
  let ret =
    if ret_float f then V.to_float res.Exec.values.(0) else 0.0
  in
  let acc = ref (d_ret *. ret) in
  List.iter2
    (fun bufv seed ->
      let a = Exec.to_floats bufv in
      Array.iteri (fun j s -> acc := !acc +. (s *. a.(j))) seed)
    !finals seeds;
  !acc

(* Differentiate and (by default) run the post-AD cleanup pipeline, which
   models the register promotion Enzyme gets from running inside LLVM. *)
let differentiate ?(opts = Parad_core.Plan.default_options)
    ?(post_opt = true) prog fname =
  let dprog, dname = Parad_core.Reverse.gradient ~opts prog fname in
  let dprog =
    if post_opt then Parad_opt.Pipeline.run dprog Parad_opt.Pipeline.post_ad
    else dprog
  in
  dprog, dname

(** Reverse-mode gradient via the AD engine. *)
let reverse ?(cfg = Interp.default_config) ?san ?opts ?post_opt
    ?seeds ?(d_ret = 1.0) prog fname args =
  let f = Prog.find_exn prog fname in
  let seeds = match seeds with Some s -> s | None -> default_seeds args in
  let dprog, dname = differentiate ?opts ?post_opt prog fname in
  let nscal = scalar_count args in
  let shadows = ref [] in
  let dargs_buf = ref V.VUnit in
  let res =
    Exec.run ~cfg ?san dprog ~fname:dname ~setup:(fun ctx ->
        let vals, _ = build_args ctx args in
        let shadow_vals =
          List.map (fun s -> Exec.floats ctx (Array.copy s)) seeds
        in
        shadows := shadow_vals;
        let tail =
          (if ret_float f then [ V.VFloat d_ret ] else [])
          @
          if nscal > 0 then begin
            let d = Exec.zeros ctx (max 1 nscal) in
            dargs_buf := d;
            [ d ]
          end
          else []
        in
        vals @ shadow_vals @ tail)
  in
  {
    primal = (if ret_float f then V.to_float res.Exec.values.(0) else 0.0);
    d_bufs = List.map Exec.to_floats !shadows;
    d_scalars =
      (if nscal > 0 then Exec.to_floats !dargs_buf else [||]);
    makespan = res.Exec.makespan;
    stats = res.Exec.stats;
  }

(** Central-difference gradient of the loss w.r.t. every float input
    coordinate (buffer cells and scalar arguments). *)
let finite_difference ?(cfg = Interp.default_config) ?seeds ?(d_ret = 1.0)
    ?(h = 1e-6) prog fname args =
  let seeds =
    match seeds with Some s -> s | None -> default_seeds args
  in
  let perturb args ~buf_idx ~cell ~scal_idx ~delta =
    List.mapi
      (fun _ a -> a)
      args
    |> List.fold_left
         (fun (bi, si, acc) a ->
           match a with
           | ABuf arr ->
             let arr' =
               if bi = buf_idx then begin
                 let c = Array.copy arr in
                 c.(cell) <- c.(cell) +. delta;
                 c
               end
               else arr
             in
             bi + 1, si, ABuf arr' :: acc
           | AHidden arr ->
             let arr' =
               if bi = buf_idx then begin
                 let c = Array.copy arr in
                 c.(cell) <- c.(cell) +. delta;
                 c
               end
               else arr
             in
             bi + 1, si, AHidden arr' :: acc
           | AScalar x ->
             let x' = if si = scal_idx then x +. delta else x in
             bi, si + 1, AScalar x' :: acc
           | AInt _ | AIntBuf _ | ATable _ -> bi, si, a :: acc)
         (0, 0, [])
    |> fun (_, _, acc) -> List.rev acc
  in
  let eval args = loss ~cfg ~seeds ~d_ret prog fname args in
  let d_bufs =
    List.filteri
      (fun _ a -> match a with ABuf _ | AHidden _ -> true | _ -> false)
      args
    |> List.mapi (fun bi a ->
           match a with
           | ABuf arr | AHidden arr ->
             Array.init (Array.length arr) (fun j ->
                 let up =
                   eval (perturb args ~buf_idx:bi ~cell:j ~scal_idx:(-1) ~delta:h)
                 in
                 let dn =
                   eval
                     (perturb args ~buf_idx:bi ~cell:j ~scal_idx:(-1)
                        ~delta:(-.h))
                 in
                 (up -. dn) /. (2.0 *. h))
           | _ -> assert false)
  in
  let nscal = scalar_count args in
  let d_scalars =
    Array.init nscal (fun si ->
        let up = eval (perturb args ~buf_idx:(-1) ~cell:0 ~scal_idx:si ~delta:h) in
        let dn =
          eval (perturb args ~buf_idx:(-1) ~cell:0 ~scal_idx:si ~delta:(-.h))
        in
        (up -. dn) /. (2.0 *. h))
  in
  d_bufs, d_scalars

(** Compare reverse mode against central differences; returns the largest
    relative error. *)
let check ?cfg ?opts ?seeds ?d_ret ?h ?(tol = 1e-4) prog fname args =
  let g = reverse ?cfg ?opts ?seeds ?d_ret prog fname args in
  let fd_bufs, fd_scal = finite_difference ?cfg ?seeds ?d_ret ?h prog fname args in
  let worst = ref 0.0 in
  let cmp a b =
    let scale = Float.max 1.0 (Float.max (Float.abs a) (Float.abs b)) in
    let e = Float.abs (a -. b) /. scale in
    if e > !worst then worst := e
  in
  List.iter2 (fun g fd -> Array.iter2 cmp g fd) g.d_bufs fd_bufs;
  Array.iter2 cmp g.d_scalars fd_scal;
  if !worst > tol then
    Error
      (Fmt.str "gradient mismatch: max relative error %.3e (tol %.1e)" !worst
         tol)
  else Ok !worst

(* ---- SPMD (message passing) verification ----

   Loss over an SPMD execution:
     loss = sum_r [ d_ret(r) * ret_r + sum_p seeds(r)_p . p_final ]
   Reverse mode runs the gradient function on every rank with shadows
   seeded per rank; finite differences perturb one rank's input
   coordinate and re-run the whole SPMD program. *)

type spmd_gradient = {
  s_primals : float array;  (** per-rank returns *)
  s_d_bufs : float array list array;  (** per-rank buffer adjoints *)
  s_d_scalars : float array array;  (** per-rank scalar-arg adjoints *)
  s_makespan : float;
  s_stats : Stats.t;
}

let loss_spmd ?(cfg = Interp.default_config) ?faults ~nranks ~args ~seeds
    ~d_ret prog fname =
  let f = Prog.find_exn prog fname in
  let finals = Array.make nranks [] in
  let res =
    Exec.run_spmd ~cfg ?faults prog ~nranks ~fname ~setup:(fun ctx ~rank ->
        let vals, bufs = build_args ctx (args ~rank) in
        finals.(rank) <- bufs;
        vals)
  in
  let acc = ref 0.0 in
  for r = 0 to nranks - 1 do
    let ret =
      if ret_float f then V.to_float res.Exec.values.(r) else 0.0
    in
    acc := !acc +. (d_ret ~rank:r *. ret);
    List.iter2
      (fun bufv seed ->
        let a = Exec.to_floats bufv in
        Array.iteri (fun j s -> acc := !acc +. (s *. a.(j))) seed)
      finals.(r) (seeds ~rank:r)
  done;
  !acc

let reverse_spmd ?(cfg = Interp.default_config) ?opts ?post_opt ?faults
    ~nranks ~args ~seeds ~d_ret prog fname =
  (* the emission option is the single coalescing knob: disabling it also
     disables the runtime packing, giving the true uncoalesced baseline *)
  let cfg =
    match opts with
    | Some o when not o.Parad_core.Plan.coalesce_comm -> { cfg with Interp.coalesce = false }
    | _ -> cfg
  in
  let f = Prog.find_exn prog fname in
  let dprog, dname = differentiate ?opts ?post_opt prog fname in
  let nscal = scalar_count (args ~rank:0) in
  let shadows = Array.make nranks [] in
  let dargs = Array.make nranks V.VUnit in
  let res =
    Exec.run_spmd ~cfg ?faults dprog ~nranks ~fname:dname
      ~setup:(fun ctx ~rank ->
        let vals, _ = build_args ctx (args ~rank) in
        let shadow_vals =
          List.map
            (fun s -> Exec.floats ctx (Array.copy s))
            (seeds ~rank)
        in
        shadows.(rank) <- shadow_vals;
        let tail =
          (if ret_float f then [ V.VFloat (d_ret ~rank) ] else [])
          @
          if nscal > 0 then begin
            let d = Exec.zeros ctx (max 1 nscal) in
            dargs.(rank) <- d;
            [ d ]
          end
          else []
        in
        vals @ shadow_vals @ tail)
  in
  {
    s_primals =
      Array.map
        (fun v -> if ret_float f then V.to_float v else 0.0)
        res.Exec.values;
    s_d_bufs = Array.map (List.map Exec.to_floats) shadows;
    s_d_scalars =
      Array.init nranks (fun r ->
          if nscal > 0 then Exec.to_floats dargs.(r) else [||]);
    s_makespan = res.Exec.makespan;
    s_stats = res.Exec.stats;
  }

(** Reverse-mode SPMD gradient under a fault plan with checkpoint/restart
    recovery: on a rank kill the supervised driver restores every rank
    from the latest globally-consistent checkpoint and replays. Returns
    the gradient together with the recovery record (restart count,
    failure notices, resume points). The [setup] closure is re-invoked on
    every attempt, so the shadow/adjoint buffers read out afterwards
    belong to the final (successful) attempt. *)
let reverse_spmd_recoverable ?(cfg = Interp.default_config) ?opts ?post_opt
    ?faults ?max_restarts ?store ~nranks ~args ~seeds ~d_ret prog fname =
  let cfg =
    match opts with
    | Some o when not o.Parad_core.Plan.coalesce_comm -> { cfg with Interp.coalesce = false }
    | _ -> cfg
  in
  let f = Prog.find_exn prog fname in
  let dprog, dname = differentiate ?opts ?post_opt prog fname in
  let nscal = scalar_count (args ~rank:0) in
  let shadows = Array.make nranks [] in
  let dargs = Array.make nranks V.VUnit in
  let res, recovery =
    Exec.run_spmd_recoverable ~cfg ?faults ?max_restarts ?store dprog ~nranks
      ~fname:dname ~setup:(fun ctx ~rank ->
        let vals, _ = build_args ctx (args ~rank) in
        let shadow_vals =
          List.map
            (fun s -> Exec.floats ctx (Array.copy s))
            (seeds ~rank)
        in
        shadows.(rank) <- shadow_vals;
        let tail =
          (if ret_float f then [ V.VFloat (d_ret ~rank) ] else [])
          @
          if nscal > 0 then begin
            let d = Exec.zeros ctx (max 1 nscal) in
            dargs.(rank) <- d;
            [ d ]
          end
          else []
        in
        vals @ shadow_vals @ tail)
  in
  ( {
      s_primals =
        Array.map
          (fun v -> if ret_float f then V.to_float v else 0.0)
          res.Exec.values;
      s_d_bufs = Array.map (List.map Exec.to_floats) shadows;
      s_d_scalars =
        Array.init nranks (fun r ->
            if nscal > 0 then Exec.to_floats dargs.(r) else [||]);
      s_makespan = res.Exec.makespan;
      s_stats = res.Exec.stats;
    },
    recovery )

(** Assert that the gradient computed through kill-and-recover is
    bit-identical to the faultless gradient: every adjoint cell, every
    scalar adjoint, and every primal return must match exactly (compared
    through [Int64.bits_of_float], so NaNs and signed zeros count too).
    Returns the recovery record on success so callers can additionally
    assert that restarts actually happened. *)
let check_recovery ?cfg ?opts ?post_opt ~faults ?max_restarts ~nranks ~args
    ~seeds ~d_ret prog fname =
  let clean =
    reverse_spmd ?cfg ?opts ?post_opt ~nranks ~args ~seeds ~d_ret prog fname
  in
  let recovered, recovery =
    reverse_spmd_recoverable ?cfg ?opts ?post_opt ~faults ?max_restarts
      ~nranks ~args ~seeds ~d_ret prog fname
  in
  let bad = ref [] in
  let cmp what a b =
    if Int64.bits_of_float a <> Int64.bits_of_float b then
      bad := Fmt.str "%s: clean %h vs recovered %h" what a b :: !bad
  in
  for r = 0 to nranks - 1 do
    cmp (Fmt.str "rank %d primal" r) clean.s_primals.(r)
      recovered.s_primals.(r);
    List.iteri
      (fun bi (ca, ra) ->
        Array.iteri
          (fun j c -> cmp (Fmt.str "rank %d buf %d[%d]" r bi j) c ra.(j))
          ca)
      (List.combine clean.s_d_bufs.(r) recovered.s_d_bufs.(r));
    Array.iteri
      (fun si c ->
        cmp (Fmt.str "rank %d scalar %d" r si) c
          recovered.s_d_scalars.(r).(si))
      clean.s_d_scalars.(r)
  done;
  match !bad with
  | [] -> Ok (recovered, recovery)
  | errs ->
    Error
      (Fmt.str "recovered gradient differs from faultless run:@,%a"
         Fmt.(list ~sep:(any "@,") string)
         (List.rev errs))

(** Compare SPMD reverse mode against central differences over every
    buffer coordinate of every rank. *)
let check_spmd ?cfg ?opts ?faults ~nranks ~args ~seeds ~d_ret ?(h = 1e-6)
    ?(tol = 1e-4) prog fname =
  let g =
    reverse_spmd ?cfg ?opts ?faults ~nranks ~args ~seeds ~d_ret prog fname
  in
  let worst = ref 0.0 in
  for r = 0 to nranks - 1 do
    let rargs = args ~rank:r in
    let bufs =
      List.filter_map (function ABuf a -> Some a | _ -> None) rargs
    in
    List.iteri
      (fun bi arr ->
        Array.iteri
          (fun j _ ->
            let eval delta =
              let args ~rank =
                if rank <> r then args ~rank
                else
                  List.fold_left
                    (fun (bi', acc) a ->
                      match a with
                      | ABuf arr' ->
                        let arr' =
                          if bi' = bi then begin
                            let c = Array.copy arr' in
                            c.(j) <- c.(j) +. delta;
                            c
                          end
                          else arr'
                        in
                        bi' + 1, ABuf arr' :: acc
                      | a -> bi', a :: acc)
                    (0, []) rargs
                  |> fun (_, acc) -> List.rev acc
              in
              loss_spmd ?cfg ?faults ~nranks ~args ~seeds ~d_ret prog fname
            in
            let fd = (eval h -. eval (-.h)) /. (2.0 *. h) in
            let ad = (List.nth g.s_d_bufs.(r) bi).(j) in
            let scale = Float.max 1.0 (Float.max (Float.abs fd) (Float.abs ad)) in
            let e = Float.abs (fd -. ad) /. scale in
            if e > !worst then worst := e)
          arr)
      bufs
  done;
  if !worst > tol then
    Error (Fmt.str "spmd gradient mismatch: max relative error %.3e" !worst)
  else Ok !worst
