(** Driver for the operator-overloading tape baseline using the same
    argument/seed conventions as {!Grad_check}, so the two tools (and
    finite differences) can be compared on identical programs — the
    paper's §VII methodology. *)

open Parad_runtime
module GC = Grad_check
module Tape = Parad_tape.Tape
module V = Value

(** Run the tape baseline over an SPMD execution; returns per-rank input
    adjoints in the same shape as {!Grad_check.reverse_spmd}. Buffers are
    activated as inputs; seeds apply to final buffer contents; [d_ret]
    seeds each rank's return value.

    [call_slots] substitutes the slot-threading entry point that runs the
    taped primal — pass [Engine.call_fn_slots prep Engine.Seq] to record
    the tape from engine-compiled code (identical tape, FNV-identical
    adjoints, identical makespan). [lowered] reverses through the
    linearized adjoint program ({!Tape.lower}) instead of the
    entry-at-a-time interpreter. *)
let reverse_spmd ?(cfg = Interp.default_config) ?faults ?san
    ?(call_slots = Interp.call_with_slots) ?(lowered = false) ~nranks ~args
    ~seeds ~d_ret prog fname =
  let f = Parad_ir.Prog.find_exn prog fname in
  let ret_float = GC.ret_float f in
  let tapes = Array.init nranks (fun rank -> Tape.create ~rank) in
  let grads = Array.make nranks [] in
  let primals = Array.make nranks 0.0 in
  let makespan, stats =
    Exec.run_spmd_custom ~cfg ?faults ?san
      ~instrument:(fun ~rank -> Tape.instrument tapes.(rank))
      prog ~nranks
      ~body:(fun ctx ~rank ->
        let t = tapes.(rank) in
        let vals, bufs = GC.build_args ctx (args ~rank) in
        List.iter (Tape.activate t) bufs;
        let ret, ret_slot =
          call_slots ctx fname vals (List.map (fun _ -> 0) vals)
        in
        if ret_float then primals.(rank) <- V.to_float ret;
        (* reverse sweep, still inside the simulation *)
        let sw = Tape.sweep t in
        List.iter2 (Tape.seed sw) bufs (seeds ~rank);
        if ret_float then Tape.seed_slot sw ret_slot (d_ret ~rank);
        (if lowered then Tape.reverse_lowered sw ctx
         else Tape.reverse sw ctx);
        grads.(rank) <- List.map (Tape.adjoint_of sw) bufs)
  in
  ( {
      GC.s_primals = primals;
      s_d_bufs = grads;
      s_d_scalars = Array.make nranks [||];
      s_makespan = makespan;
      s_stats = stats;
    },
    tapes )

(** Single-rank convenience wrapper. *)
let reverse ?cfg ?faults ?san ?call_slots ?lowered ?seeds ?(d_ret = 1.0)
    prog fname args =
  let seeds_l =
    match seeds with Some s -> s | None -> GC.default_seeds args
  in
  let g, tapes =
    reverse_spmd ?cfg ?faults ?san ?call_slots ?lowered ~nranks:1
      ~args:(fun ~rank:_ -> args)
      ~seeds:(fun ~rank:_ -> seeds_l)
      ~d_ret:(fun ~rank:_ -> d_ret)
      prog fname
  in
  ( {
      GC.primal = g.GC.s_primals.(0);
      d_bufs = g.GC.s_d_bufs.(0);
      d_scalars = [||];
      makespan = g.GC.s_makespan;
      stats = g.GC.s_stats;
    },
    tapes.(0) )
