#!/bin/sh
# Full verification gate: build, run every test suite, then smoke-check
# the fault-injection CLI scenarios and their exit-code protocol
# (0 clean, 1 audit issues, 2 runtime error, 3 deadlock).
set -eu
cd "$(dirname "$0")/.."

echo "== dune build =="
dune build @all

echo "== dune runtest =="
dune runtest

PARAD="dune exec bin/parad.exe --"
expect_exit() {
  want=$1
  shift
  echo "== parad $* (expect exit $want) =="
  set +e
  $PARAD "$@" > /tmp/parad-check.out 2>&1
  got=$?
  set -e
  if [ "$got" -ne "$want" ]; then
    echo "FAIL: parad $* exited $got, expected $want"
    cat /tmp/parad-check.out
    exit 1
  fi
}

COMMON="--flavor mpi --ranks 4 --size 2 --iters 2"

# faultless run is clean
expect_exit 0 faults --plan none $COMMON

# recoverable drops: same gradient, clean audit
expect_exit 0 faults --plan drop-retry $COMMON
grep -q "retries=" /tmp/parad-check.out || {
  echo "FAIL: drop-retry run did not report retries"
  exit 1
}

# a duplicated message leaves an unmatched send -> dirty audit
expect_exit 1 faults --plan dup $COMMON

# killing a rank deadlocks the ring -> structured wait-for report
expect_exit 3 faults --plan kill $COMMON
grep -q "deadlock:" /tmp/parad-check.out || {
  echo "FAIL: kill run printed no structured diagnosis"
  exit 1
}

# losing every message from a rank deadlocks too, with lost messages
# named in the audit
expect_exit 3 faults --plan blackhole $COMMON
grep -q "lost message" /tmp/parad-check.out || {
  echo "FAIL: blackhole run named no lost messages"
  exit 1
}

# seeded plans are deterministic: two runs, byte-identical output
$PARAD faults --plan blackhole $COMMON > /tmp/parad-a.out 2>&1 || true
$PARAD faults --plan blackhole $COMMON > /tmp/parad-b.out 2>&1 || true
cmp -s /tmp/parad-a.out /tmp/parad-b.out || {
  echo "FAIL: blackhole diagnosis differs across reruns"
  diff /tmp/parad-a.out /tmp/parad-b.out || true
  exit 1
}

echo "all checks passed"
